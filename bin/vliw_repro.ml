(* vliw-repro: command-line front end for the reproduction.

     vliw-repro list                      benchmarks in the suite
     vliw-repro config                    the simulated machine (Table 2)
     vliw-repro experiment fig8 ...       regenerate figures/tables
     vliw-repro compile gsmdec            schedules of one benchmark
     vliw-repro run gsmdec --arch=...     simulate one benchmark *)

open Cmdliner
module E = Vliw_experiments
module Pool = Vliw_parallel.Pool
module Pipeline = Vliw_core.Pipeline
module Schedule = Vliw_sched.Schedule
module Loop = Vliw_ir.Loop
module WL = Vliw_workloads
module Stats = Vliw_sim.Stats

let ppf = Format.std_formatter

(* ---------------------------------------------------------------- list *)

let list_cmd =
  let doc = "List the benchmarks of the synthetic Mediabench suite." in
  let run () =
    List.iter
      (fun (b : WL.Benchspec.t) ->
        let size, share = WL.Benchspec.dominant_size b in
        Format.fprintf ppf "%-10s %2d loops  %dB data (%.0f%%)  %s@."
          b.WL.Benchspec.name
          (List.length b.WL.Benchspec.kernels)
          size (100.0 *. share) b.WL.Benchspec.description)
      WL.Mediabench.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* -------------------------------------------------------------- config *)

let config_cmd =
  let doc = "Print the simulated machine configuration (Table 2)." in
  let run () = Format.fprintf ppf "%a@." Vliw_arch.Config.pp Vliw_arch.Config.default in
  Cmd.v (Cmd.info "config" ~doc) Term.(const run $ const ())

(* ---------------------------------------------------------- experiment *)

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment engine (default: all cores). \
           $(docv) = 1 runs strictly sequentially; the rendered output is \
           byte-identical either way.")

let apply_jobs jobs = if jobs >= 1 then Pool.set_default_jobs jobs

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Run the static analyzer (DDG linter + deep schedule verifier) \
           on every compiled loop; abort with the diagnostic report if any \
           invariant is violated.")

let apply_check check = if check then Vliw_analysis.Analyze.install_check_hook ()

let experiment_cmd =
  let doc = "Regenerate one of the paper's tables or figures." in
  let names =
    Arg.(
      non_empty
      & pos_all
          (enum
             [
               ("table1", `Table1); ("table2", `Table2); ("ex1", `Ex1);
               ("fig4", `Fig4); ("fig5", `Fig5); ("fig6", `Fig6);
               ("fig7", `Fig7); ("fig8", `Fig8);
               ("ablation-hints", `Hints); ("ablation-chains", `Chains);
               ("ablation-interleave", `Interleave);
               ("ablation-clusters", `Clusters);
               ("ablation-traffic", `Traffic);
               ("ablation-unroll", `Unroll); ("csv", `Csv);
             ])
          []
      & info [] ~docv:"EXPERIMENT")
  in
  let run jobs check names =
    apply_jobs jobs;
    apply_check check;
    let ctx = E.Context.create () in
    List.iter
      (function
        | `Table1 -> E.Table1.run ppf
        | `Table2 -> E.Table2.run ppf ctx
        | `Ex1 -> E.Worked_example.run ppf ctx
        | `Fig4 -> E.Fig4.run ppf ctx
        | `Fig5 -> E.Fig5.run ppf ctx
        | `Fig6 -> E.Fig6.run ppf ctx
        | `Fig7 -> E.Fig7.run ppf ctx
        | `Fig8 -> E.Fig8.run ppf ctx
        | `Hints -> E.Ablation_hints.run ppf ctx
        | `Chains -> E.Ablation_chains.run ppf ctx
        | `Interleave -> E.Ablation_interleave.run ppf ctx
        | `Clusters -> E.Ablation_clusters.run ppf ctx
        | `Traffic -> E.Ablation_traffic.run ppf ctx
        | `Unroll -> E.Ablation_unroll.run ppf ctx
        | `Csv -> E.Csv_export.run ppf ctx)
      names
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run $ jobs_arg $ check_arg $ names)

(* ------------------------------------------------------ shared options *)

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (see $(b,list)).")

let heuristic_arg =
  Arg.(
    value
    & opt (enum [ ("ipbc", `Ipbc); ("ibc", `Ibc) ]) `Ipbc
    & info [ "heuristic" ] ~docv:"H" ~doc:"Cluster heuristic: ipbc or ibc.")

let strategy_arg =
  let open Vliw_core.Unroll_select in
  Arg.(
    value
    & opt
        (enum
           [
             ("selective", Selective); ("ouf", Ouf_unrolling);
             ("none", No_unrolling); ("xN", Unroll_times_n);
           ])
        Selective
    & info [ "unroll" ] ~docv:"S"
        ~doc:"Unrolling strategy: selective, ouf, none or xN.")

let find_bench name =
  try Ok (WL.Mediabench.find name)
  with Not_found ->
    Error
      (Printf.sprintf "unknown benchmark %S (try: %s)" name
         (String.concat ", " WL.Mediabench.names))

(* ------------------------------------------------------------- compile *)

let compile_cmd =
  let doc = "Compile a benchmark's loops and print their schedules." in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:"Also print each loop's modulo-scheduled kernel table.")
  in
  let run name heuristic strategy dump check =
    apply_check check;
    match find_bench name with
    | Error e -> prerr_endline e; exit 2
    | Ok bench ->
        let ctx = E.Context.create () in
        let spec = E.Context.interleaved ~strategy heuristic in
        List.iter
          (fun (c : Pipeline.compiled) ->
            Format.fprintf ppf
              "loop %-12s UF=%-2d II=%-3d SC=%d copies=%-3d WB=%.2f \
               maxlive=%-3d est=%d@."
              c.Pipeline.source.Loop.name c.Pipeline.unroll_factor
              c.Pipeline.schedule.Schedule.ii
              (Schedule.stage_count c.Pipeline.schedule)
              (Schedule.n_copies c.Pipeline.schedule)
              (Schedule.workload_balance c.Pipeline.schedule)
              (Vliw_sched.Regpressure.total_max_live c.Pipeline.loop.Loop.ddg
                 ~latency:(fun i -> c.Pipeline.latencies.(i))
                 c.Pipeline.schedule)
              c.Pipeline.estimated_cycles;
            if dump then
              Format.fprintf ppf "%a@."
                (Schedule.pp_kernel c.Pipeline.loop.Loop.ddg)
                c.Pipeline.schedule)
          (E.Context.compiled ctx bench spec)
  in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const run $ bench_arg $ heuristic_arg $ strategy_arg $ dump_arg
      $ check_arg)

(* ----------------------------------------------------------------- run *)

let arch_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("interleaved", Vliw_sim.Machine.Word_interleaved { attraction_buffers = false });
             ("interleaved+ab", Vliw_sim.Machine.Word_interleaved { attraction_buffers = true });
             ("multivliw", Vliw_sim.Machine.Multivliw);
             ("unified1", Vliw_sim.Machine.Unified { slow = false });
             ("unified5", Vliw_sim.Machine.Unified { slow = true });
           ])
        (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true })
    & info [ "arch" ] ~docv:"ARCH"
        ~doc:
          "Memory system: interleaved, interleaved+ab, multivliw, unified1 \
           or unified5.")

let run_cmd =
  let doc = "Simulate a benchmark and print its execution statistics." in
  let run name heuristic strategy arch check =
    apply_check check;
    match find_bench name with
    | Error e -> prerr_endline e; exit 2
    | Ok bench ->
        let ctx = E.Context.create () in
        let target =
          match arch with
          | Vliw_sim.Machine.Unified { slow } ->
              { E.Context.target = Pipeline.Unified { slow };
                strategy; aligned = true }
          | Vliw_sim.Machine.Multivliw ->
              { E.Context.target = Pipeline.Multivliw; strategy;
                aligned = true }
          | Vliw_sim.Machine.Word_interleaved _ ->
              E.Context.interleaved ~strategy heuristic
        in
        let stats = E.Context.run ctx bench target ~arch () in
        Format.fprintf ppf "%s on %s:@.%a@.local-hit ratio: %.3f@."
          bench.WL.Benchspec.name
          (Vliw_sim.Machine.arch_to_string arch)
          Stats.pp stats (Stats.local_hit_ratio stats)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ bench_arg $ heuristic_arg $ strategy_arg $ arch_arg
      $ check_arg)

(* ------------------------------------------------------------- analyze *)

let benches_arg ~what =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"BENCHMARK"
        ~doc:
          (Printf.sprintf "Benchmarks to %s (default: the whole suite)."
             what))

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit one machine-readable JSON document instead of the \
           human-readable report.")

let validate_benches names =
  let names = if names = [] then None else Some names in
  (match names with
  | None -> ()
  | Some ns -> (
      match List.filter (fun n -> Result.is_error (find_bench n)) ns with
      | [] -> ()
      | bad :: _ ->
          (match find_bench bad with
          | Error e -> prerr_endline e
          | Ok _ -> ());
          exit 2));
  names

let analyze_cmd =
  let doc =
    "Run every static-analysis pass — config validator, DDG linter, deep \
     schedule verifier, address-plan cross-check, sim-invariant auditor \
     and the static-locality conservation law — over the whole suite \
     (all backends, both heuristics). Exits non-zero if any invariant is \
     violated."
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Also print info-severity diagnostics.")
  in
  let concurrency_arg =
    Arg.(
      value & flag
      & info [ "concurrency" ]
          ~doc:
            "Run the concurrency sanitizer instead of the artefact \
             passes: record the pool, the single-flight memos and a \
             scripted serve session through the sync shim, analyze the \
             traces for races / lock-order cycles / condition lints, \
             and explore the closed scenarios under the DPOR \
             interleaving explorer.")
  in
  let mutations_arg =
    Arg.(
      value & flag
      & info [ "mutations" ]
          ~doc:
            "With $(b,--concurrency): run the known-bad mutant suite \
             instead of the clean run and fail unless every mutant is \
             caught by its expected pass id.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int64 Vliw_concsan.Concsan.default_seed
      & info [ "seed" ]
          ~docv:"SEED"
          ~doc:
            "Seed for the interleaving explorer's schedule shuffles \
             (with $(b,--concurrency)); a fixed seed makes the scenario \
             section byte-identical across runs and $(b,--jobs) \
             settings.")
  in
  let run jobs verbose json concurrency mutations seed names =
    apply_jobs jobs;
    if concurrency then
      if mutations then begin
        if not (Vliw_concsan.Concsan.run_mutations ~seed ppf) then exit 1
      end
      else begin
        let summary = Vliw_concsan.Concsan.run ~seed ~json ppf in
        if summary.Vliw_concsan.Concsan.errors > 0 then exit 1
      end
    else begin
      let names = validate_benches names in
      let summary =
        Vliw_analysis.Analyze.run_all ?benchmarks:names ~verbose ~json ppf
      in
      if not (Vliw_analysis.Analyze.ok summary) then exit 1
    end
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run $ jobs_arg $ verbose_arg $ json_arg $ concurrency_arg
      $ mutations_arg $ seed_arg
      $ benches_arg ~what:"analyze")

(* ------------------------------------------------------------- explain *)

let explain_cmd =
  let doc =
    "Explain every compiled schedule: achieved II against recurrence / \
     resource / copy / bus lower bounds with a ranked cycle-loss budget, \
     provable cluster-locality verdicts from the congruence analysis, \
     the unroll candidates weighed by the selective search, and \
     missed-locality lints."
  in
  let oracle_arg =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:
            "Also certify every loop whose achieved II exceeds its MII \
             through the exact CP modulo-scheduling oracle and print the \
             optimality leaderboard (heuristic II / proven optimal II / \
             verdict). Every SAT witness is re-checked by the deep \
             schedule verifier; exits non-zero on a soundness violation.")
  in
  let oracle_budget_arg =
    Arg.(
      value
      & opt int Vliw_analysis.Oracle.default_budget
      & info [ "oracle-budget" ] ~docv:"N"
          ~doc:
            "Per-II probe budget for the oracle, counted in solver \
             decisions and conflicts (never wall-clock, so results are \
             identical across hosts and $(b,--jobs) settings). Implies \
             $(b,--oracle). Default: 300000.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:
            "Also write the oracle leaderboard as CSV to $(docv) \
             (requires $(b,--oracle)).")
  in
  let run jobs json oracle oracle_budget csv names =
    apply_jobs jobs;
    let names = validate_benches names in
    let oracle =
      oracle || oracle_budget <> Vliw_analysis.Oracle.default_budget
      || csv <> None
    in
    let ctx = E.Context.create () in
    let summary =
      Vliw_analysis.Explain.run_all ?benchmarks:names ~json
        ?oracle_budget:(if oracle then Some oracle_budget else None)
        ~oracle_memo:(E.Context.oracle_memo ctx)
        ppf
    in
    let rows = summary.Vliw_analysis.Explain.leaderboard in
    (match csv with
    | Some path when oracle ->
        let p = E.Csv_export.leaderboard ~path rows in
        if not json then Format.fprintf ppf "wrote %s@." p
    | _ -> ());
    if
      List.exists
        (fun (r : Vliw_analysis.Explain.oracle_row) ->
          not (Vliw_analysis.Oracle.sound r.Vliw_analysis.Explain.o_cert))
        rows
    then exit 1
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ jobs_arg $ json_arg $ oracle_arg $ oracle_budget_arg
      $ csv_arg $ benches_arg ~what:"explain")

(* --------------------------------------------------------------- sweep *)

let sweep_cmd =
  let doc =
    "Design-space exploration: sweep a grid of machine configurations \
     (clusters x interleaving x register buses x cache geometry x \
     attraction-buffer capacity), compile each schedule-relevant config \
     once through the shared memo, simulate each plan group's cells as \
     one lockstep batch, prune provably-dominated bus levels, and print \
     the Pareto frontier of cycles vs inter-cluster traffic vs hardware \
     cost."
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Use the reduced seconds-scale grid (the runtest/CI \
             configuration) instead of the full >= 1000-cell grid.")
  in
  let no_prune_arg =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Exhaustive sweep: simulate every bus level even when a lower \
             level compiled without a single bus-window rejection (the \
             condition under which higher levels are provably dominated).")
  in
  let trip_cap_arg =
    Arg.(
      value
      & opt int 512
      & info [ "trip-cap" ] ~docv:"N"
          ~doc:
            "Source iterations simulated per loop (0 = all).  Every cell \
             of a plan group is cut identically, so relative comparisons \
             stand; the default keeps the full grid in seconds-to-minutes \
             territory.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also write the frontier as $(docv)/dse-pareto-frontier.csv.")
  in
  let run jobs json smoke no_prune trip_cap csv names =
    apply_jobs jobs;
    let names = validate_benches names in
    let benches =
      Option.map (List.map WL.Mediabench.find) names
    in
    let grid =
      if smoke then E.Dse.smoke_grid else E.Dse.default_grid
    in
    let ctx = E.Context.create () in
    let t0 = Unix.gettimeofday () in
    let result =
      E.Dse.sweep ~grid ?benches ~prune:(not no_prune) ~trip_cap ctx
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    (* Throughput over the whole grid: pruned cells count — covering
       them without simulating them is the point of the pruning rule. *)
    let cells_per_s =
      if wall_s > 0.0 then float_of_int result.E.Dse.grid_cells_total /. wall_s
      else 0.0
    in
    (match csv with
    | None -> ()
    | Some dir ->
        let path = E.Csv_export.frontier ~dir result in
        if not json then Format.fprintf ppf "wrote %s@." path);
    if json then
      E.Dse.pp_json ppf ~wall_s ~cells_per_s
        ~memo:(E.Context.memo_stats ctx) result
    else begin
      E.Dse.pp_human ppf result;
      (* Counters and wall-clock go to stderr: stdout stays byte-identical
         at any --jobs (memo hit/miss splits and timing are
         scheduling-dependent; the report above is not). *)
      let eppf = Format.err_formatter in
      let stats = E.Context.memo_stats ctx in
      List.iter
        (fun (name, (s : Vliw_parallel.Memo.stats)) ->
          Format.fprintf eppf
            "memo %-9s %d resident, %d hits / %d misses, %d evictions@."
            name s.Vliw_parallel.Memo.size s.Vliw_parallel.Memo.hits
            s.Vliw_parallel.Memo.misses s.Vliw_parallel.Memo.evictions)
        stats;
      Format.fprintf eppf "%.1f cells/s (%d cells in %.2fs)@."
        cells_per_s result.E.Dse.grid_cells_total wall_s
    end
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ jobs_arg $ json_arg $ smoke_arg $ no_prune_arg
      $ trip_cap_arg $ csv_arg $ benches_arg ~what:"sweep")

(* ----------------------------------------------------------------- dot *)

let dot_cmd =
  let doc =
    "Emit a Graphviz rendering of one compiled loop's DDG, nodes coloured \
     by assigned cluster."
  in
  let loop_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"LOOP" ~doc:"Loop name (see $(b,compile)).")
  in
  let run name loop_name heuristic strategy =
    match find_bench name with
    | Error e -> prerr_endline e; exit 2
    | Ok bench -> (
        let ctx = E.Context.create () in
        let spec = E.Context.interleaved ~strategy heuristic in
        match
          List.find_opt
            (fun (c : Pipeline.compiled) ->
              c.Pipeline.source.Loop.name = loop_name)
            (E.Context.compiled ctx bench spec)
        with
        | None ->
            Printf.eprintf "no loop %S in %s\n" loop_name name;
            exit 2
        | Some c ->
            Vliw_ir.Dot.scheduled ppf c.Pipeline.loop.Loop.ddg
              ~cluster:(fun v -> c.Pipeline.schedule.Schedule.cluster.(v)))
  in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ bench_arg $ loop_arg $ heuristic_arg $ strategy_arg)

(* --------------------------------------------------------------- serve *)

let serve_cmd =
  let doc =
    "Run the resident compile service: a long-lived loop reading \
     newline-delimited JSON requests (compile / simulate / analyze / \
     explain / oracle / sweep-cell / health / drain) and writing one JSON \
     response line per request, sharing one compile/trace/oracle memo \
     context across the whole session. Robust by contract: malformed \
     input gets structured errors, deadlines are deterministic work-unit \
     budgets, worker crashes are isolated, the dispatch queue sheds under \
     overload, and SIGINT drains gracefully."
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket instead of stdin/stdout; each \
             accepted connection is served as one session (sequentially), \
             sharing the memo context across sessions.")
  in
  let serve_jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains serving requests concurrently (default 1: \
             handle requests inline). Responses are emitted in request \
             order at any setting.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int 128
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Dispatch-queue bound when $(b,--jobs) > 1; requests beyond it \
             are shed with an \"overloaded\" response.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Deterministic fault injection: corrupt/crash/exhaust/shed a \
             seeded ~1/3 of requests to prove every failure path yields a \
             structured response. Same seed, same faults, every host.")
  in
  let times_arg =
    Arg.(
      value & flag
      & info [ "times" ]
          ~doc:
            "Add wall-clock \"ms\" fields to responses and the queue \
             high-watermark to the drained line (off by default: \
             wall-clock breaks replay byte-identity).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"UNITS"
          ~doc:
            "Default per-request deadline in deterministic work units for \
             requests that carry no \"deadline\" field (default: \
             effectively unbounded).")
  in
  let run socket jobs queue chaos times deadline =
    let drain_flag = Atomic.make false in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Atomic.set drain_flag true));
    let ctx = E.Context.create () in
    let session ~input ~output =
      Vliw_service.Serve.run ~jobs ~queue_cap:queue ?chaos ~wall_times:times
        ?default_deadline:deadline ~drain_flag ~ctx ~input ~output ()
    in
    match socket with
    | None ->
        let outcome = session ~input:Unix.stdin ~output:stdout in
        Printf.eprintf "serve: drained (%s), %d requests\n%!"
          outcome.Vliw_service.Serve.reason
          outcome.Vliw_service.Serve.counters.Vliw_service.Serve.accepted
    | Some path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 8;
        Printf.eprintf "serve: listening on %s\n%!" path;
        let rec accept_loop () =
          if Atomic.get drain_flag then ()
          else begin
            (* Poll the listener so SIGINT is honoured while idle. *)
            match Unix.select [ sock ] [] [] 0.5 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
            | [], _, _ -> accept_loop ()
            | _ -> (
                match Unix.accept sock with
                | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    accept_loop ()
                | fd, _ ->
                    let output = Unix.out_channel_of_descr fd in
                    let outcome = session ~input:fd ~output in
                    Printf.eprintf "serve: session drained (%s), %d requests\n%!"
                      outcome.Vliw_service.Serve.reason
                      outcome.Vliw_service.Serve.counters
                        .Vliw_service.Serve.accepted;
                    (try close_out output with Sys_error _ -> ());
                    accept_loop ())
          end
        in
        accept_loop ();
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ serve_jobs_arg $ queue_arg $ chaos_arg
      $ times_arg $ deadline_arg)

(* ---------------------------------------------------------------- main *)

let () =
  let doc =
    "Reproduction of 'Effective Instruction Scheduling Techniques for an \
     Interleaved Cache Clustered VLIW Processor' (MICRO-35, 2002)."
  in
  let info = Cmd.info "vliw-repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; config_cmd; experiment_cmd; compile_cmd; run_cmd;
            analyze_cmd; explain_cmd; sweep_cmd; serve_cmd; dot_cmd;
          ]))
