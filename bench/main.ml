(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md's experiment index) and
   times the compiler itself with bechamel.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe fig4 fig8  -- run a subset *)

module E = Vliw_experiments

let ppf = Format.std_formatter

let banner name =
  Format.fprintf ppf "@.==== %s ====@.@." name

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler pipeline (engineering
   bench; not a paper artefact). *)

let perf () =
  let open Bechamel in
  let cfg = Vliw_arch.Config.default in
  let bench = Vliw_workloads.Mediabench.find "gsmdec" in
  let loop = List.hd (Vliw_workloads.Benchspec.loops bench) in
  let layout =
    Vliw_workloads.Layout.create cfg ~aligned:true
      ~run:Vliw_workloads.Layout.Profile_run ~seed:7
  in
  let profiler = Vliw_workloads.Profiling.profiler cfg layout in
  let compile target strategy () =
    ignore (Vliw_core.Pipeline.compile cfg ~target ~strategy ~profiler loop)
  in
  let interleaved h =
    Vliw_core.Pipeline.Interleaved { heuristic = h; chains = true }
  in
  let exec () =
    let c =
      Vliw_core.Pipeline.compile cfg ~target:(interleaved `Ipbc)
        ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
    in
    let exec_layout =
      Vliw_workloads.Layout.create cfg ~aligned:true
        ~run:Vliw_workloads.Layout.Execution_run ~seed:7
    in
    let machine =
      Vliw_sim.Machine.create cfg
        (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true })
    in
    let addr_of =
      Vliw_workloads.Layout.addr_fn exec_layout
        c.Vliw_core.Pipeline.loop.Vliw_ir.Loop.ddg
    in
    ignore (Vliw_sim.Executor.run_loop cfg machine c ~addr_of ())
  in
  let tests =
    Test.make_grouped ~name:"vliw" ~fmt:"%s %s"
      [
        Test.make ~name:"compile/ipbc-selective"
          (Staged.stage (compile (interleaved `Ipbc) Vliw_core.Unroll_select.Selective));
        Test.make ~name:"compile/ibc-ouf"
          (Staged.stage (compile (interleaved `Ibc) Vliw_core.Unroll_select.Ouf_unrolling));
        Test.make ~name:"compile/base-unified"
          (Staged.stage
             (compile (Vliw_core.Pipeline.Unified { slow = true })
                Vliw_core.Unroll_select.Selective));
        Test.make ~name:"compile+simulate/ipbc" (Staged.stage exec);
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg_b instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Format.fprintf ppf "bechamel (monotonic clock, ns/run):@.";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Format.fprintf ppf "  %-32s %12.0f ns@." name t
      | Some [] | None -> Format.fprintf ppf "  %-32s (no estimate)@." name)
    results;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)

let experiments ctx =
  [
    ("table1", fun () -> E.Table1.run ppf);
    ("table2", fun () -> E.Table2.run ppf ctx);
    ("ex1", fun () -> E.Worked_example.run ppf ctx);
    ("fig4", fun () -> E.Fig4.run ppf ctx);
    ("fig5", fun () -> E.Fig5.run ppf ctx);
    ("fig6", fun () -> E.Fig6.run ppf ctx);
    ("fig7", fun () -> E.Fig7.run ppf ctx);
    ("fig8", fun () -> E.Fig8.run ppf ctx);
    ("ablation-hints", fun () -> E.Ablation_hints.run ppf ctx);
    ("ablation-chains", fun () -> E.Ablation_chains.run ppf ctx);
    ("ablation-interleave", fun () -> E.Ablation_interleave.run ppf ctx);
    ("ablation-clusters", fun () -> E.Ablation_clusters.run ppf ctx);
    ("ablation-traffic", fun () -> E.Ablation_traffic.run ppf ctx);
    ("ablation-unroll", fun () -> E.Ablation_unroll.run ppf ctx);
    ("csv", fun () -> E.Csv_export.run ppf ctx);
    ("perf", perf);
  ]

let () =
  let ctx = E.Context.create () in
  let all = experiments ctx in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f ->
          banner name;
          f ()
      | None ->
          Format.fprintf ppf "unknown experiment %S; available: %s@." name
            (String.concat ", " (List.map fst all));
          exit 2)
    requested
