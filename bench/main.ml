(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md's experiment index) and
   times the compiler itself with bechamel.

     dune exec bench/main.exe                      -- run everything
     dune exec bench/main.exe fig4 fig8            -- run a subset
     dune exec bench/main.exe -- --jobs 4 fig4     -- 4 worker domains

   --jobs N (default: all cores) sizes the domain pool the experiment
   drivers fan their per-benchmark cells out on; --jobs 1 reproduces the
   strictly sequential run.  Either way the rendered output is
   byte-identical (see DESIGN.md, "Performance & parallel runner"). *)

module E = Vliw_experiments
module Pool = Vliw_parallel.Pool

let ppf = Format.std_formatter

let banner name =
  Format.fprintf ppf "@.==== %s ====@.@." name

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler pipeline (engineering
   bench; not a paper artefact). *)

(* ------------------------------------------------ BENCH_compile.json *)

(* Machine-readable perf trajectory: bechamel's ns/run per compile-path
   micro-benchmark plus the end-to-end wall-clock of fig4 at jobs=1 and
   jobs=N.  Future PRs compare against this file to catch compile-path
   regressions (> 5% on the bechamel side) and parallel-runner
   regressions. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Render fig4 into a buffer on a fresh context (so compilation cost is
   included both times) and return (wall-clock seconds, output). *)
let timed_fig4 ~jobs =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let buf = Buffer.create 65536 in
      let bppf = Format.formatter_of_buffer buf in
      let ctx = E.Context.create () in
      let t0 = Unix.gettimeofday () in
      E.Fig4.run bppf ctx;
      Format.pp_print_flush bppf ();
      (Unix.gettimeofday () -. t0, Buffer.contents buf))

(* The full static-analysis sweep (all benchmarks x backends x
   heuristics), sequential so the number tracks single-core analyzer
   cost, not pool scaling. *)
let timed_analyze () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let buf = Buffer.create 65536 in
      let bppf = Format.formatter_of_buffer buf in
      let t0 = Unix.gettimeofday () in
      let summary = Vliw_analysis.Analyze.run_all bppf in
      Format.pp_print_flush bppf ();
      (Unix.gettimeofday () -. t0, summary))

(* The batched sweep the tentpole targets: fig6 (AB on/off x heuristics)
   plus the traffic ablation on a fresh context at jobs=1, so the number
   tracks the single-core cost of one compile of every swept plan plus
   the batched simulations — the end-to-end figure the >=2x acceptance
   criterion is stated against. *)
let timed_sweep () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let buf = Buffer.create 65536 in
      let bppf = Format.formatter_of_buffer buf in
      let ctx = E.Context.create () in
      let t0 = Unix.gettimeofday () in
      E.Fig6.run bppf ctx;
      E.Ablation_traffic.run bppf ctx;
      Format.pp_print_flush bppf ();
      Unix.gettimeofday () -. t0)

(* Previous value of a "key": wall_s-style float in the old
   BENCH_compile.json, if one exists — enough JSON scanning to apply the
   regression warnings against the committed baseline. *)
let previous_json_float ~key =
  match In_channel.with_open_text "BENCH_compile.json" In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> (
      let needle = Printf.sprintf "\"%s\"" key in
      match String.index_opt text '{' with
      | None -> None
      | Some _ -> (
          let rec find i =
            if i + String.length needle > String.length text then None
            else if String.sub text i (String.length needle) = needle then
              Some (i + String.length needle)
            else find (i + 1)
          in
          match find 0 with
          | None -> None
          | Some i ->
              let j = ref i in
              while
                !j < String.length text
                && (text.[!j] = ':' || text.[!j] = ' ')
              do
                incr j
              done;
              let k = ref !j in
              while
                !k < String.length text
                && (match text.[!k] with
                   | '0' .. '9' | '.' | '-' -> true
                   | _ -> false)
              do
                incr k
              done;
              float_of_string_opt (String.sub text !j (!k - !j))))

(* The DSE autopilot on its full default grid (>= 1000 cells over the
   whole suite), sequential on a fresh context — the source of the
   sweep_cells_per_s trajectory key.  Afterwards, the >=2x criterion:
   the plan-group path evaluates one 72-cell group from cold (compile
   each benchmark's plan once, resolve each address trace once, one
   lockstep batch per benchmark), against a solo-cell baseline that
   evaluates a sample of the same cells the way a naive autopilot
   would — each on its own cold context, paying compile, trace and
   simulation in isolation.  Both sides are throughput (cells/s) over
   identical per-cell work, so the ratio is what grouping + batching
   actually buys. *)
let timed_dse () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let ctx = E.Context.create () in
      let t0 = Unix.gettimeofday () in
      let r = E.Dse.sweep ctx in
      let wall = Unix.gettimeofday () -. t0 in
      let spec = E.Context.interleaved `Ipbc in
      let fam = List.hd (E.Dse.enumerate E.Dse.default_grid) in
      let plan, cells = List.hd fam.E.Dse.f_levels in
      let mk_cell (ccfg, ab) =
        E.Context.cell ~cfg:ccfg
          (Vliw_sim.Machine.Word_interleaved { attraction_buffers = ab > 0 })
      in
      let benches =
        List.map Vliw_workloads.Mediabench.find
          [ "gsmdec"; "epicdec"; "jpegenc" ]
      in
      let bcells = List.map mk_cell cells in
      let t1 = Unix.gettimeofday () in
      let batch_ctx = E.Context.with_cfg (E.Context.create ()) plan in
      List.iter
        (fun b ->
          ignore (E.Context.run_batch batch_ctx b spec ~trip_cap:512 bcells))
        benches;
      let batched_s = Unix.gettimeofday () -. t1 in
      let batched_rate =
        if batched_s > 0.0 then float_of_int (List.length bcells) /. batched_s
        else 0.0
      in
      (* Every 9th cell: 8 of the 72, spanning the cache/AB range. *)
      let sample = List.filteri (fun i _ -> i mod 9 = 0) cells in
      let t2 = Unix.gettimeofday () in
      List.iter
        (fun cell ->
          let solo_ctx = E.Context.with_cfg (E.Context.create ()) plan in
          List.iter
            (fun b ->
              ignore
                (E.Context.run_batch solo_ctx b spec ~trip_cap:512
                   [ mk_cell cell ]))
            benches)
        sample;
      let solo_s = Unix.gettimeofday () -. t2 in
      let solo_rate =
        if solo_s > 0.0 then float_of_int (List.length sample) /. solo_s
        else 0.0
      in
      (wall, r, batched_rate, solo_rate, List.length bcells))

(* The explain sweep (attribution + locality abstract interpretation
   over every compiled loop), sequential for the same reason. *)
let timed_explain () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let buf = Buffer.create 65536 in
      let bppf = Format.formatter_of_buffer buf in
      let t0 = Unix.gettimeofday () in
      let summary = Vliw_analysis.Explain.run_all bppf in
      Format.pp_print_flush bppf ();
      (Unix.gettimeofday () -. t0, summary))

(* The exact-II oracle on a bounded gap-loop subset (four certifications
   that all close within the default budget), sequential on a fresh
   memo.  Budgets are decision counts so the certified results are
   host-independent; only this wall-clock figure tracks the solver's
   engineering cost. *)
let oracle_bench_subset = [ "gsmdec"; "jpegdec"; "rasta" ]

let timed_oracle () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let buf = Buffer.create 65536 in
      let bppf = Format.formatter_of_buffer buf in
      let ctx = E.Context.create () in
      let t0 = Unix.gettimeofday () in
      let summary =
        Vliw_analysis.Explain.run_all ~benchmarks:oracle_bench_subset
          ~oracle_budget:Vliw_analysis.Oracle.default_budget
          ~oracle_memo:(E.Context.oracle_memo ctx) bppf
      in
      Format.pp_print_flush bppf ();
      (Unix.gettimeofday () -. t0, summary))

(* The resident compile service, end to end: a pipelined client drives
   thousands of mixed requests (health probes, compiles and batched
   simulations that hit the shared memos after their first occurrence)
   through [Serve.run] on a pipe-pair stdio transport.  The server runs
   in its own domain at jobs=1 — the figure tracks the per-request
   overhead of the service loop itself (decode, dispatch, in-order
   emission), which is what a resident service must keep flat.
   Wall-times are enabled so every response carries its handler-side
   ["ms"] figure; p99 over those is the tail-latency trajectory key. *)
let serve_request_count = 2400

let timed_serve () =
  let module Serve = Vliw_service.Serve in
  let module Proto = Vliw_service.Proto in
  let mix =
    [|
      {|{"req":"health"}|};
      {|{"req":"compile","bench":"gsmdec"}|};
      {|{"req":"simulate","bench":"gsmdec","trip_cap":32}|};
      {|{"req":"compile","bench":"rasta"}|};
      {|{"req":"simulate","bench":"rasta","arch":"interleaved+ab","trip_cap":32}|};
      {|{"req":"compile","bench":"gsmdec","heuristic":"ibc"}|};
    |]
  in
  let r, w = Unix.pipe () in
  let path = Filename.temp_file "vliw_bench_serve" ".out" in
  let out = open_out path in
  let t0 = Unix.gettimeofday () in
  let server =
    Domain.spawn (fun () ->
        Serve.run ~jobs:1 ~wall_times:true ~input:r ~output:out ())
  in
  let send line =
    let line = line ^ "\n" in
    let len = String.length line in
    let sent = ref 0 in
    while !sent < len do
      sent := !sent + Unix.write_substring w line !sent (len - !sent)
    done
  in
  for i = 0 to serve_request_count - 1 do
    send mix.(i mod Array.length mix)
  done;
  send {|{"req":"drain"}|};
  Unix.close w;
  let outcome = Domain.join server in
  let wall = Unix.gettimeofday () -. t0 in
  Unix.close r;
  close_out out;
  (* Handler-side latency distribution from the per-response ms field. *)
  let ms = ref [] in
  In_channel.with_open_text path (fun ic ->
      try
        while true do
          match Proto.parse (input_line ic) with
          | Ok (Proto.Obj fields) -> (
              match List.assoc_opt "ms" fields with
              | Some (Proto.Float v) -> ms := v :: !ms
              | Some (Proto.Int v) -> ms := float_of_int v :: !ms
              | _ -> ())
          | Ok _ | Error _ -> ()
        done
      with End_of_file -> ());
  Sys.remove path;
  let lat = Array.of_list !ms in
  Array.sort compare lat;
  let p99 =
    if Array.length lat = 0 then 0.0
    else lat.(min (Array.length lat - 1) (Array.length lat * 99 / 100))
  in
  let rps =
    if wall > 0.0 then float_of_int outcome.Serve.counters.Serve.accepted /. wall
    else 0.0
  in
  (wall, rps, p99, outcome)

(* The concurrency sanitizer, end to end: record the pool/memo and
   serve workloads through the sync shim, analyze both traces under
   lockset + happens-before, and explore every closed scenario with the
   DPOR explorer.  The wall-clock bounds what the concsan CI gate costs
   per run; a blow-up here means the shim, the trace analyzer, or the
   explorer's pruning regressed. *)
let timed_concsan () =
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let t0 = Unix.gettimeofday () in
  let summary =
    Vliw_concsan.Concsan.run ~seed:Vliw_concsan.Concsan.default_seed null_ppf
  in
  (Unix.gettimeofday () -. t0, summary)

let write_bench_json ~estimates =
  let n = max 2 (Pool.default_jobs ()) in
  let effective = Pool.effective_jobs n in
  (* On a host whose hardware parallelism is 1 the pool degrades
     [--jobs n] to a sequential run, so a second measurement would time
     the identical code path and the ratio would be pure timer noise:
     skip the redundant run and record only the sequential figure. *)
  let degenerate = effective <= 1 in
  let seq_s, seq_out = timed_fig4 ~jobs:1 in
  let par =
    if degenerate then None
    else
      let par_s, par_out = timed_fig4 ~jobs:n in
      Some
        ( par_s,
          String.equal seq_out par_out,
          if par_s > 0.0 then seq_s /. par_s else 1.0 )
  in
  let prev_sweep_s = previous_json_float ~key:"sweep_fig6_wall_s" in
  let prev_cells_per_s = previous_json_float ~key:"sweep_cells_per_s" in
  let sweep_s = timed_sweep () in
  let dse_wall, dse_r, dse_batched_rate, dse_solo_rate, dse_group_cells =
    timed_dse ()
  in
  let dse_cells_per_s =
    if dse_wall > 0.0 then
      float_of_int dse_r.E.Dse.grid_cells_total /. dse_wall
    else 0.0
  in
  let dse_speedup =
    if dse_solo_rate > 0.0 then dse_batched_rate /. dse_solo_rate else 1.0
  in
  (* <= 1.0 means a batch of 8 cells beats 8 independent runs. *)
  let batched_vs_8_solo =
    match
      ( List.assoc_opt "vliw simulate/ipbc" estimates,
        List.assoc_opt "vliw simulate-batched/ipbc" estimates )
    with
    | Some solo, Some batched when solo > 0.0 -> Some (batched /. (8.0 *. solo))
    | _ -> None
  in
  let analyze_s, analyze_summary = timed_analyze () in
  let explain_s, explain_summary = timed_explain () in
  let prev_oracle_s = previous_json_float ~key:"oracle_wall_s" in
  let oracle_s, oracle_summary = timed_oracle () in
  let prev_serve_rps = previous_json_float ~key:"serve_req_per_s" in
  let prev_serve_p99 = previous_json_float ~key:"serve_p99_ms" in
  let serve_wall, serve_rps, serve_p99, serve_outcome = timed_serve () in
  let prev_concsan_s = previous_json_float ~key:"concsan_wall_s" in
  let concsan_s, concsan_summary = timed_concsan () in
  let oracle_rows = oracle_summary.Vliw_analysis.Explain.leaderboard in
  let oracle_closed =
    List.length
      (List.filter
         (fun (r : Vliw_analysis.Explain.oracle_row) ->
           r.Vliw_analysis.Explain.o_cert.Vliw_analysis.Oracle.verdict
           <> Vliw_analysis.Oracle.Unknown)
         oracle_rows)
  in
  let oracle_unsound =
    List.length
      (List.filter
         (fun (r : Vliw_analysis.Explain.oracle_row) ->
           not (Vliw_analysis.Oracle.sound r.Vliw_analysis.Explain.o_cert))
         oracle_rows)
  in
  let path = "BENCH_compile.json" in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 1,\n";
  p "  \"bechamel_ns_per_run\": {\n";
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) estimates in
  List.iteri
    (fun i (name, ns) ->
      p "    \"%s\": %.1f%s\n" (json_escape name) ns
        (if i = List.length sorted - 1 then "" else ","))
    sorted;
  p "  },\n";
  (match batched_vs_8_solo with
  | Some ratio -> p "  \"simulate_batched_vs_8_solo_ratio\": %.3f,\n" ratio
  | None -> ());
  p "  \"fig4_wall_s\": {\n";
  p "    \"jobs_1\": %.3f,\n" seq_s;
  (match par with
  | None ->
      p "    \"n\": %d,\n" n;
      p "    \"effective_jobs\": %d,\n" effective;
      p "    \"skipped_degenerate\": true\n"
  | Some (par_s, identical, speedup) ->
      p "    \"jobs_n\": %.3f,\n" par_s;
      p "    \"n\": %d,\n" n;
      p "    \"effective_jobs\": %d,\n" effective;
      p "    \"skipped_degenerate\": false,\n";
      p "    \"speedup\": %.3f,\n" speedup;
      p "    \"identical\": %b\n" identical);
  p "  },\n";
  p "  \"sweep_fig6_wall_s\": %.3f,\n" sweep_s;
  p "  \"sweep_cells_per_s\": %.1f,\n" dse_cells_per_s;
  p "  \"sweep_dse\": {\n";
  p "    \"wall_s\": %.3f,\n" dse_wall;
  p "    \"grid_cells\": %d,\n" dse_r.E.Dse.grid_cells_total;
  p "    \"evaluated_cells\": %d,\n" (List.length dse_r.E.Dse.evaluated);
  p "    \"pruned_cells\": %d,\n" dse_r.E.Dse.pruned_cells;
  p "    \"frontier_cells\": %d,\n" (List.length dse_r.E.Dse.frontier);
  p "    \"batched_vs_solo_speedup\": %.2f\n" dse_speedup;
  p "  },\n";
  p "  \"analyze\": {\n";
  p "    \"wall_s\": %.3f,\n" analyze_s;
  p "    \"errors\": %d,\n" analyze_summary.Vliw_analysis.Analyze.errors;
  p "    \"warnings\": %d\n" analyze_summary.Vliw_analysis.Analyze.warnings;
  p "  },\n";
  p "  \"explain\": {\n";
  p "    \"wall_s\": %.3f,\n" explain_s;
  p "    \"loops\": %d,\n" explain_summary.Vliw_analysis.Explain.loops;
  p "    \"gaps\": %d,\n" explain_summary.Vliw_analysis.Explain.gaps;
  p "    \"lints\": %d\n" explain_summary.Vliw_analysis.Explain.lints;
  p "  },\n";
  p "  \"oracle\": {\n";
  p "    \"oracle_wall_s\": %.3f,\n" oracle_s;
  p "    \"benchmarks\": %d,\n" (List.length oracle_bench_subset);
  p "    \"certified\": %d,\n" (List.length oracle_rows);
  p "    \"closed\": %d,\n" oracle_closed;
  p "    \"unsound\": %d\n" oracle_unsound;
  p "  },\n";
  let sc = serve_outcome.Vliw_service.Serve.counters in
  p "  \"serve\": {\n";
  p "    \"wall_s\": %.3f,\n" serve_wall;
  p "    \"requests\": %d,\n" sc.Vliw_service.Serve.accepted;
  p "    \"ok\": %d,\n" sc.Vliw_service.Serve.ok;
  p "    \"errors\": %d,\n" sc.Vliw_service.Serve.errors;
  p "    \"internal_errors\": %d,\n" sc.Vliw_service.Serve.internal_errors;
  p "    \"serve_req_per_s\": %.1f,\n" serve_rps;
  p "    \"serve_p99_ms\": %.3f\n" serve_p99;
  p "  },\n";
  p "  \"concsan\": {\n";
  p "    \"concsan_wall_s\": %.3f,\n" concsan_s;
  p "    \"trace_events\": %d,\n" concsan_summary.Vliw_concsan.Concsan.trace_events;
  p "    \"trace_threads\": %d,\n" concsan_summary.Vliw_concsan.Concsan.trace_threads;
  p "    \"scenarios\": %d,\n" concsan_summary.Vliw_concsan.Concsan.scenarios;
  p "    \"executions\": %d,\n" concsan_summary.Vliw_concsan.Concsan.executions;
  p "    \"errors\": %d,\n" concsan_summary.Vliw_concsan.Concsan.errors;
  p "    \"warnings\": %d\n" concsan_summary.Vliw_concsan.Concsan.warnings;
  p "  }\n";
  p "}\n";
  close_out oc;
  (match par with
  | None ->
      Format.fprintf ppf
        "fig4 wall-clock: %.2fs (jobs=%d degrades to sequential on this \
         1-core host; scaling run skipped)@."
        seq_s n
  | Some (par_s, identical, speedup) ->
      Format.fprintf ppf
        "fig4 wall-clock: %.2fs sequential, %.2fs with %d jobs (speedup \
         %.2fx, outputs %s)@."
        seq_s par_s n speedup
        (if identical then "identical" else "DIFFERENT");
      if speedup < 1.0 then
        Format.fprintf ppf
          "*** WARNING: parallel fig4 is SLOWER than sequential (speedup \
           %.2fx < 1.0) — the domain pool is hurting on this host ***@."
          speedup);
  Format.fprintf ppf
    "fig6+traffic sweep wall-clock: %.2fs sequential on a fresh context@."
    sweep_s;
  (* Same regression-warning discipline as the analyze/explain pair:
     compare against the committed baseline's value when one exists. *)
  (match prev_sweep_s with
  | Some prev when prev > 0.0 && sweep_s > 1.25 *. prev ->
      Format.fprintf ppf
        "*** WARNING: fig6+traffic sweep (%.2fs) regressed more than 25%% \
         over the committed baseline (%.2fs) — the batched executor or the \
         compile path got slower ***@."
        sweep_s prev
  | Some _ | None -> ());
  (* A batch of 8 cells shares one plan traversal; if it is not even
     beating 8 independent single-cell runs, batching has regressed into
     pure overhead. *)
  (match batched_vs_8_solo with
  | Some ratio ->
      Format.fprintf ppf
        "simulate-batched/ipbc vs 8x simulate/ipbc: %.3fx (< 1.0 means the \
         batch wins)@."
        ratio;
      if ratio > 1.0 then
        Format.fprintf ppf
          "*** WARNING: simulate-batched/ipbc is slower than 8 independent \
           simulate/ipbc runs (ratio %.3f > 1.0) — lockstep batching is pure \
           overhead on this host ***@."
          ratio
  | None -> ());
  Format.fprintf ppf
    "dse sweep wall-clock: %.2fs sequential (%d cells, %.1f cells/s; pruning \
     skipped %d cells, frontier %d)@."
    dse_wall dse_r.E.Dse.grid_cells_total dse_cells_per_s
    dse_r.E.Dse.pruned_cells
    (List.length dse_r.E.Dse.frontier);
  Format.fprintf ppf
    "dse plan-group batching: %d-cell group from cold, %.1f cells/s batched \
     vs %.1f cells/s solo (%.1fx)@."
    dse_group_cells dse_batched_rate dse_solo_rate dse_speedup;
  if dse_speedup < 2.0 then
    Format.fprintf ppf
      "*** WARNING: batched sweep cells are under 2x a solo-cell baseline \
       (%.2fx) — lockstep batching has regressed ***@."
      dse_speedup;
  (match prev_cells_per_s with
  | Some prev when prev > 0.0 && dse_cells_per_s < 0.75 *. prev ->
      Format.fprintf ppf
        "*** WARNING: sweep throughput (%.1f cells/s) regressed more than \
         25%% below the committed baseline (%.1f cells/s) ***@."
        dse_cells_per_s prev
  | Some _ | None -> ());
  Format.fprintf ppf
    "analyze wall-clock: %.2fs sequential for the whole suite (%d errors, \
     %d warnings)@."
    analyze_s analyze_summary.Vliw_analysis.Analyze.errors
    analyze_summary.Vliw_analysis.Analyze.warnings;
  Format.fprintf ppf
    "explain wall-clock: %.2fs sequential for the whole suite (%d loops, \
     %d II>MII, %d lints)@."
    explain_s explain_summary.Vliw_analysis.Explain.loops
    explain_summary.Vliw_analysis.Explain.gaps
    explain_summary.Vliw_analysis.Explain.lints;
  (* explain re-compiles everything analyze compiles but never
     simulates, so it should stay in the same ballpark — far slower
     means the abstract interpretation or the bound tower regressed. *)
  if explain_s > (2.0 *. analyze_s) +. 1.0 then
    Format.fprintf ppf
      "*** WARNING: explain sweep (%.2fs) is far slower than the analyze \
       sweep (%.2fs) — the static analyzers have regressed ***@."
      explain_s analyze_s;
  Format.fprintf ppf
    "oracle wall-clock: %.2fs sequential on %d benchmarks (%d gap loops \
     certified, %d closed, %d soundness violations)@."
    oracle_s
    (List.length oracle_bench_subset)
    (List.length oracle_rows) oracle_closed oracle_unsound;
  (match prev_oracle_s with
  | Some prev when prev > 0.0 && oracle_s > 1.25 *. prev ->
      Format.fprintf ppf
        "*** WARNING: oracle sweep (%.2fs) regressed more than 25%% over \
         the committed baseline (%.2fs) — the CP solver or its propagators \
         got slower ***@."
        oracle_s prev
  | Some _ | None -> ());
  if oracle_unsound > 0 then begin
    Format.fprintf ppf
      "ERROR: oracle produced %d unsound certifications@." oracle_unsound;
    exit 1
  end;
  let sc = serve_outcome.Vliw_service.Serve.counters in
  Format.fprintf ppf
    "serve: %d mixed requests in %.2fs at jobs=1 (%.0f req/s, p99 handler \
     latency %.2f ms)@."
    sc.Vliw_service.Serve.accepted serve_wall serve_rps serve_p99;
  (* The drive mix is entirely well-formed, so anything but "ok" means
     the service loop itself regressed. *)
  if
    sc.Vliw_service.Serve.errors > 0
    || sc.Vliw_service.Serve.internal_errors > 0
    || sc.Vliw_service.Serve.timeouts > 0
    || sc.Vliw_service.Serve.shed > 0
  then begin
    Format.fprintf ppf
      "ERROR: serve bench saw non-ok responses on a well-formed mix \
       (errors=%d internal=%d timeouts=%d shed=%d)@."
      sc.Vliw_service.Serve.errors sc.Vliw_service.Serve.internal_errors
      sc.Vliw_service.Serve.timeouts sc.Vliw_service.Serve.shed;
    exit 1
  end;
  (match prev_serve_rps with
  | Some prev when prev > 0.0 && serve_rps < 0.75 *. prev ->
      Format.fprintf ppf
        "*** WARNING: serve throughput (%.0f req/s) regressed more than \
         25%% below the committed baseline (%.0f req/s) — the service \
         loop's per-request overhead grew ***@."
        serve_rps prev
  | Some _ | None -> ());
  (match prev_serve_p99 with
  | Some prev when prev > 0.0 && serve_p99 > 1.25 *. prev ->
      Format.fprintf ppf
        "*** WARNING: serve p99 handler latency (%.2f ms) regressed more \
         than 25%% over the committed baseline (%.2f ms) ***@."
        serve_p99 prev
  | Some _ | None -> ());
  Format.fprintf ppf
    "concsan wall-clock: %.2fs (%d trace events over %d threads, %d \
     scenarios / %d interleavings explored, %d errors, %d warnings)@."
    concsan_s concsan_summary.Vliw_concsan.Concsan.trace_events
    concsan_summary.Vliw_concsan.Concsan.trace_threads
    concsan_summary.Vliw_concsan.Concsan.scenarios
    concsan_summary.Vliw_concsan.Concsan.executions
    concsan_summary.Vliw_concsan.Concsan.errors
    concsan_summary.Vliw_concsan.Concsan.warnings;
  if concsan_summary.Vliw_concsan.Concsan.errors > 0 then begin
    Format.fprintf ppf
      "ERROR: concsan found %d error-severity concurrency diagnostics@."
      concsan_summary.Vliw_concsan.Concsan.errors;
    exit 1
  end;
  (match prev_concsan_s with
  | Some prev when prev > 0.0 && concsan_s > 1.25 *. prev ->
      Format.fprintf ppf
        "*** WARNING: concsan run (%.2fs) regressed more than 25%% over \
         the committed baseline (%.2fs) — the sync shim, trace analyzer, \
         or DPOR explorer got slower ***@."
        concsan_s prev
  | Some _ | None -> ());
  Format.fprintf ppf "wrote %s@.@." path;
  match par with
  | Some (_, false, _) ->
      Format.fprintf ppf
        "ERROR: parallel fig4 output diverged from sequential@.";
      exit 1
  | Some (_, true, _) | None -> ()

let perf () =
  let open Bechamel in
  let cfg = Vliw_arch.Config.default in
  let bench = Vliw_workloads.Mediabench.find "gsmdec" in
  let loop = List.hd (Vliw_workloads.Benchspec.loops bench) in
  let layout =
    Vliw_workloads.Layout.create cfg ~aligned:true
      ~run:Vliw_workloads.Layout.Profile_run ~seed:7
  in
  let profiler = Vliw_workloads.Profiling.profiler cfg layout in
  let compile target strategy () =
    ignore (Vliw_core.Pipeline.compile cfg ~target ~strategy ~profiler loop)
  in
  let interleaved h =
    Vliw_core.Pipeline.Interleaved { heuristic = h; chains = true }
  in
  let exec () =
    let c =
      Vliw_core.Pipeline.compile cfg ~target:(interleaved `Ipbc)
        ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
    in
    let exec_layout =
      Vliw_workloads.Layout.create cfg ~aligned:true
        ~run:Vliw_workloads.Layout.Execution_run ~seed:7
    in
    let machine =
      Vliw_sim.Machine.create cfg
        (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true })
    in
    let addr_of =
      Vliw_workloads.Layout.addr_fn exec_layout
        c.Vliw_core.Pipeline.loop.Vliw_ir.Loop.ddg
    in
    ignore (Vliw_sim.Executor.run_loop cfg machine c ~addr_of ())
  in
  (* Simulate-only: compilation and the staged address plan are hoisted
     out of the measured closure, so this cell times the access-plan
     kernel itself (machine creation included — it is part of running a
     loop from cold). *)
  let sim_compiled =
    Vliw_core.Pipeline.compile cfg ~target:(interleaved `Ipbc)
      ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
  in
  let sim_addr_of =
    let exec_layout =
      Vliw_workloads.Layout.create cfg ~aligned:true
        ~run:Vliw_workloads.Layout.Execution_run ~seed:7
    in
    Vliw_workloads.Layout.addr_fn exec_layout
      sim_compiled.Vliw_core.Pipeline.loop.Vliw_ir.Loop.ddg
  in
  let simulate () =
    let machine =
      Vliw_sim.Machine.create cfg
        (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true })
    in
    ignore
      (Vliw_sim.Executor.run_loop cfg machine sim_compiled
         ~addr_of:sim_addr_of ())
  in
  (* Lockstep sweep of 8 AB capacities over one plan traversal — the
     batched counterpart of [simulate], sharing its pre-resolved trace
     the way the experiment drivers do through Context. *)
  let sim_trace =
    Vliw_sim.Executor.address_trace sim_compiled ~addr_of:sim_addr_of
  in
  let batched_points =
    List.map
      (fun ab ->
        (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true },
         Some ab))
      [ 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  let simulate_batched () =
    let machines = Vliw_sim.Machine.create_batch cfg batched_points in
    let cells =
      Array.map
        (fun m -> { Vliw_sim.Executor.machine = m; attractable = None })
        machines
    in
    ignore
      (Vliw_sim.Executor.run_loop_batched cfg cells sim_compiled
         ~addr_trace:sim_trace ())
  in
  let tests =
    Test.make_grouped ~name:"vliw" ~fmt:"%s %s"
      [
        Test.make ~name:"compile/ipbc-selective"
          (Staged.stage (compile (interleaved `Ipbc) Vliw_core.Unroll_select.Selective));
        Test.make ~name:"compile/ibc-ouf"
          (Staged.stage (compile (interleaved `Ibc) Vliw_core.Unroll_select.Ouf_unrolling));
        Test.make ~name:"compile/base-unified"
          (Staged.stage
             (compile (Vliw_core.Pipeline.Unified { slow = true })
                Vliw_core.Unroll_select.Selective));
        Test.make ~name:"compile+simulate/ipbc" (Staged.stage exec);
        Test.make ~name:"simulate/ipbc" (Staged.stage simulate);
        Test.make ~name:"simulate-batched/ipbc" (Staged.stage simulate_batched);
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    let raw = Benchmark.all cfg_b instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> (name, t) :: acc
        | Some [] | None -> acc)
      results []
  in
  Format.fprintf ppf "bechamel (monotonic clock, ns/run):@.";
  List.iter
    (fun (name, t) -> Format.fprintf ppf "  %-32s %12.0f ns@." name t)
    (List.sort (fun (a, _) (b, _) -> compare a b) estimates);
  Format.fprintf ppf "@.";
  write_bench_json ~estimates

(* ------------------------------------------------------------------ *)

(* One executor run per memory-system backend — no bechamel, just a
   deterministic summary line each.  Wired into the `smoke` alias (and
   thus `dune runtest`), so a regression in any of the kernel's
   specialized inner loops fails the test suite without waiting for the
   full benchmark run. *)
let sim_smoke () =
  let cfg = Vliw_arch.Config.default in
  let bench = Vliw_workloads.Mediabench.find "gsmdec" in
  let loop = List.hd (Vliw_workloads.Benchspec.loops bench) in
  let layout =
    Vliw_workloads.Layout.create cfg ~aligned:true
      ~run:Vliw_workloads.Layout.Profile_run ~seed:7
  in
  let profiler = Vliw_workloads.Profiling.profiler cfg layout in
  let exec_layout =
    Vliw_workloads.Layout.create cfg ~aligned:true
      ~run:Vliw_workloads.Layout.Execution_run ~seed:7
  in
  let run name target arch =
    let c =
      Vliw_core.Pipeline.compile cfg ~target
        ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
    in
    let machine = Vliw_sim.Machine.create cfg arch in
    let addr_of =
      Vliw_workloads.Layout.addr_fn exec_layout
        c.Vliw_core.Pipeline.loop.Vliw_ir.Loop.ddg
    in
    let stats = Vliw_sim.Executor.run_loop cfg machine c ~addr_of () in
    Format.fprintf ppf "  %-24s accesses=%d stall=%d compute=%d@." name
      (Vliw_sim.Stats.total_accesses stats)
      (Vliw_sim.Stats.stall_cycles stats)
      (Vliw_sim.Stats.compute_cycles stats)
  in
  let interleaved h =
    Vliw_core.Pipeline.Interleaved { heuristic = h; chains = true }
  in
  run "interleaved+AB" (interleaved `Ipbc)
    (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true });
  run "interleaved-AB" (interleaved `Ipbc)
    (Vliw_sim.Machine.Word_interleaved { attraction_buffers = false });
  run "unified/L5"
    (Vliw_core.Pipeline.Unified { slow = true })
    (Vliw_sim.Machine.Unified { slow = true });
  run "multiVLIW" Vliw_core.Pipeline.Multivliw Vliw_sim.Machine.Multivliw

let experiments ctx =
  [
    ("table1", fun () -> E.Table1.run ppf);
    ("table2", fun () -> E.Table2.run ppf ctx);
    ("ex1", fun () -> E.Worked_example.run ppf ctx);
    ("fig4", fun () -> E.Fig4.run ppf ctx);
    ("fig5", fun () -> E.Fig5.run ppf ctx);
    ("fig6", fun () -> E.Fig6.run ppf ctx);
    ("fig7", fun () -> E.Fig7.run ppf ctx);
    ("fig8", fun () -> E.Fig8.run ppf ctx);
    ("ablation-hints", fun () -> E.Ablation_hints.run ppf ctx);
    ("ablation-chains", fun () -> E.Ablation_chains.run ppf ctx);
    ("ablation-interleave", fun () -> E.Ablation_interleave.run ppf ctx);
    ("ablation-clusters", fun () -> E.Ablation_clusters.run ppf ctx);
    ("ablation-traffic", fun () -> E.Ablation_traffic.run ppf ctx);
    ("ablation-unroll", fun () -> E.Ablation_unroll.run ppf ctx);
    ("csv", fun () -> E.Csv_export.run ppf ctx);
    ("sim-smoke", fun () -> sim_smoke ());
    ( "serve",
      fun () ->
        let wall, rps, p99, outcome = timed_serve () in
        let c = outcome.Vliw_service.Serve.counters in
        Format.fprintf ppf
          "%d mixed requests in %.2fs at jobs=1: %.0f req/s, p99 handler \
           latency %.2f ms (ok=%d errors=%d timeouts=%d internal=%d \
           shed=%d, drained by %s)@."
          c.Vliw_service.Serve.accepted wall rps p99
          c.Vliw_service.Serve.ok c.Vliw_service.Serve.errors
          c.Vliw_service.Serve.timeouts
          c.Vliw_service.Serve.internal_errors c.Vliw_service.Serve.shed
          outcome.Vliw_service.Serve.reason );
    ("perf", perf);
  ]

let usage () =
  Format.fprintf ppf
    "usage: main.exe [--jobs N] [EXPERIMENT...]@.  --jobs N   worker \
     domains (default: all cores; 1 = sequential)@.";
  exit 2

let set_jobs s =
  match int_of_string_opt s with
  | Some j when j >= 1 -> Pool.set_default_jobs j
  | _ ->
      Format.fprintf ppf "invalid --jobs value %S (expected integer >= 1)@." s;
      exit 2

(* Split --jobs/-j out of argv; everything else is an experiment name. *)
let rec parse_args names = function
  | [] -> List.rev names
  | ("--jobs" | "-j") :: [] -> usage ()
  | ("--jobs" | "-j") :: n :: rest ->
      set_jobs n;
      parse_args names rest
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      set_jobs (String.sub arg 7 (String.length arg - 7));
      parse_args names rest
  | ("--help" | "-h") :: _ -> usage ()
  | name :: rest -> parse_args (name :: names) rest

let () =
  let names = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let ctx = E.Context.create () in
  let all = experiments ctx in
  let requested = match names with [] -> List.map fst all | _ -> names in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f ->
          banner name;
          f ()
      | None ->
          Format.fprintf ppf "unknown experiment %S; available: %s@." name
            (String.concat ", " (List.map fst all));
          exit 2)
    requested
