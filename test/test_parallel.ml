(* The domain pool and the parallel experiment engine: ordering,
   exception propagation, nested maps, the thread-safe compile memo
   (single-flight), the config-fingerprinted cache key, and the
   determinism guarantee — jobs=N output byte-identical to jobs=1. *)

module Config = Vliw_arch.Config
module Context = Vliw_experiments.Context
module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module WL = Vliw_workloads

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string
let ci = Alcotest.int
let cil = Alcotest.(list int)

(* ----------------------------------------------------------- the pool *)

let test_map_ordered_preserves_order () =
  let xs = List.init 100 Fun.id in
  let f x = (x * 7) + 3 in
  check cil "jobs=4 equals List.map" (List.map f xs)
    (Pool.map_ordered ~jobs:4 f xs);
  check cil "jobs=1 equals List.map" (List.map f xs)
    (Pool.map_ordered ~jobs:1 f xs);
  check cil "empty list" [] (Pool.map_ordered ~jobs:4 f []);
  check cil "singleton" [ f 9 ] (Pool.map_ordered ~jobs:4 f [ 9 ])

let test_map_ordered_random_lists () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"map_ordered = List.map"
       QCheck.(list small_int)
       (fun xs ->
         let f x = (x * x) - (3 * x) in
         Pool.map_ordered ~jobs:3 f xs = List.map f xs))

let test_exception_propagates () =
  match
    Pool.map_ordered ~jobs:4
      (fun i -> if i >= 5 then failwith (Printf.sprintf "boom%d" i) else i)
      (List.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m ->
      (* The earliest failing element wins, as in a sequential map. *)
      check cs "earliest failure re-raised" "boom5" m

let test_nested_map_runs_sequentially () =
  (* A task that maps again must not deadlock on the shared queue. *)
  let expected =
    List.map
      (fun i -> List.fold_left ( + ) 0 (List.map (fun j -> i * j) (List.init 5 Fun.id)))
      (List.init 8 Fun.id)
  in
  let got =
    Pool.map_ordered ~jobs:4
      (fun i ->
        List.fold_left ( + ) 0
          (Pool.map_ordered ~jobs:4 (fun j -> i * j) (List.init 5 Fun.id)))
      (List.init 8 Fun.id)
  in
  check cil "nested map" expected got

let test_explicit_pool_lifecycle () =
  let p = Pool.create ~jobs:4 () in
  let xs = List.init 20 Fun.id in
  check cil "first batch" (List.map succ xs) (Pool.map p succ xs);
  check cil "pool is reusable" (List.map succ xs) (Pool.map p succ xs);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  check cil "map after shutdown degrades to sequential" (List.map succ xs)
    (Pool.map p succ xs)

exception Worker_died

let test_shutdown_joins_all_domains_despite_dead_worker () =
  (* Regression: shutdown must join *every* worker domain even when
     one of them died of an escaped exception — killing one worker
     must not orphan the rest or wedge shutdown.  ~clamp:false forces
     real worker domains even on a 1-core host; unsafe_inject_for_test
     bypasses map's exception capture so the task genuinely kills its
     worker. *)
  let p = Pool.create ~clamp:false ~jobs:3 () in
  check cb "real multi-domain pool" true (Pool.jobs p = 3);
  check cb "raw task injected" true
    (Pool.unsafe_inject_for_test p (fun () -> raise Worker_died));
  (* Give the doomed task time to be picked up before stopping. *)
  Unix.sleepf 0.05;
  (match Pool.shutdown p with
  | () -> ()
  | exception Worker_died -> ());
  (* All domains are joined: a second shutdown is a settled no-op and
     the pool degrades to sequential instead of hanging. *)
  Pool.shutdown p;
  check cil "pool usable (sequentially) after teardown" [ 1; 2; 3 ]
    (Pool.map p succ [ 0; 1; 2 ]);
  check cb "injection refused after shutdown" false
    (Pool.unsafe_inject_for_test p ignore)

(* ------------------------------------------------- cache key + memo *)

let bench name = WL.Mediabench.find name

let test_cache_key_includes_fingerprint () =
  let spec = Context.interleaved `Ipbc in
  let b = bench "gsmdec" in
  let ctx = Context.create () in
  let same = Context.create () in
  let other_cfg =
    Context.create ~cfg:{ Config.default with Config.ab_entries = 8 } ()
  in
  let other_seed = Context.create ~seed:8 () in
  check cs "equal configs give equal keys" (Context.cache_key ctx b spec)
    (Context.cache_key same b spec);
  check cb "differing config changes the key" false
    (Context.cache_key ctx b spec = Context.cache_key other_cfg b spec);
  check cb "differing seed changes the key" false
    (Context.cache_key ctx b spec = Context.cache_key other_seed b spec)

let test_memo_single_flight () =
  (* Hammer one key from 8 domains: single-flight means exactly one
     compilation, so every caller gets the physically same list. *)
  let ctx = Context.create () in
  let spec = Context.interleaved `Ipbc in
  let results =
    Pool.map_ordered ~jobs:8
      (fun _ -> Context.compiled ctx (bench "gsmdec") spec)
      (List.init 8 Fun.id)
  in
  match results with
  | [] -> Alcotest.fail "no results"
  | first :: rest ->
      List.iteri
        (fun i cs ->
          check cb (Printf.sprintf "caller %d shares the compilation" (i + 1))
            true (cs == first))
        rest

let test_memo_contention_raw_domains () =
  (* Hammer the sharded memo with raw domains — the pool clamps its
     worker count to the hardware's parallelism, so on a 1-core host it
     would serialize and never actually contend.  Domain.spawn bypasses
     the clamp: 4 domains on the same key must share one compilation
     (single-flight per shard), and 4 domains on disjoint keys must each
     land its own entry that a later lookup hits physically. *)
  let ctx = Context.create () in
  let spec = Context.interleaved `Ipbc in
  (* Same key from every domain. *)
  let same =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Context.compiled ctx (bench "gsmdec") spec))
    |> List.map Domain.join
  in
  (match same with
  | first :: rest ->
      List.iteri
        (fun i cs ->
          check cb
            (Printf.sprintf "same-key domain %d shares the compilation" (i + 1))
            true (cs == first))
        rest
  | [] -> Alcotest.fail "no results");
  (* Disjoint keys concurrently: every key compiles once and is cached. *)
  let names = [ "epicdec"; "jpegenc"; "pgpdec"; "rasta" ] in
  let disjoint =
    List.map
      (fun n -> Domain.spawn (fun () -> Context.compiled ctx (bench n) spec))
      names
    |> List.map Domain.join
  in
  List.iter2
    (fun n cs ->
      check cb (n ^ " re-fetch hits the entry the domain installed") true
        (Context.compiled ctx (bench n) spec == cs))
    names disjoint

(* ----------------------------------------------- bounded memo (cap) *)

let test_memo_cap_evicts_fifo () =
  let memo = Vliw_parallel.Memo.create ~shards:1 ~cap:3 () in
  let computed = ref 0 in
  let get k =
    Vliw_parallel.Memo.get memo k (fun () ->
        incr computed;
        String.length k)
  in
  List.iter (fun k -> ignore (get k)) [ "a"; "bb"; "ccc"; "dddd"; "eeeee" ];
  let s = Vliw_parallel.Memo.stats memo in
  check ci "resident size bounded by cap" 3 s.Vliw_parallel.Memo.size;
  check ci "two oldest entries evicted" 2 s.Vliw_parallel.Memo.evictions;
  check ci "five misses" 5 s.Vliw_parallel.Memo.misses;
  check ci "no hits yet" 0 s.Vliw_parallel.Memo.hits;
  (* Evicted keys recompute (correctly); resident keys hit. *)
  check ci "evicted key recomputes the same value" 1 (get "a");
  check ci "recompute ran" 6 !computed;
  check ci "resident key answers from the table" 5 (get "eeeee");
  check ci "hit did not recompute" 6 !computed;
  let s = Vliw_parallel.Memo.stats memo in
  check ci "hit counted" 1 s.Vliw_parallel.Memo.hits;
  check ci "size still bounded" 3 s.Vliw_parallel.Memo.size

let test_memo_cap_contention () =
  (* Raw domains hammering a memo whose cap is far below the working
     set: every get must still return the key's own value (an evicted
     key just recomputes), and the counters must balance. *)
  let memo = Vliw_parallel.Memo.create ~shards:2 ~cap:4 () in
  let keys = List.init 16 (fun i -> Printf.sprintf "k%02d" i) in
  let rounds = 5 in
  let computes = Atomic.make 0 in
  let worker () =
    List.concat_map
      (fun _ ->
        List.map
          (fun k ->
            ( k,
              Vliw_parallel.Memo.get memo k (fun () ->
                  Atomic.incr computes;
                  "v:" ^ k) ))
          keys)
      (List.init rounds Fun.id)
  in
  let results =
    List.init 4 (fun _ -> Domain.spawn worker) |> List.concat_map Domain.join
  in
  List.iter
    (fun (k, v) -> check cs "every get returns its key's value" ("v:" ^ k) v)
    results;
  let s = Vliw_parallel.Memo.stats memo in
  (* The counters are atomics behind the sync shim, so under real
     contention the totals are exact, not approximate. *)
  check ci "hits + misses = total gets"
    (4 * rounds * List.length keys)
    (s.Vliw_parallel.Memo.hits + s.Vliw_parallel.Memo.misses);
  check ci "misses = computations that actually ran" (Atomic.get computes)
    s.Vliw_parallel.Memo.misses;
  check ci "every computed entry is resident or evicted"
    (Atomic.get computes)
    (s.Vliw_parallel.Memo.size + s.Vliw_parallel.Memo.evictions);
  check cb "size stays within the (rounded-up) cap" true
    (s.Vliw_parallel.Memo.size <= 4 + 2);
  check cb "the small cap forced evictions" true
    (s.Vliw_parallel.Memo.evictions > 0)

let test_context_memo_stats_surface () =
  (* Context surfaces its two memo tables' counters for the sweep's
     --json output. *)
  let ctx = Context.create () in
  let spec = Context.interleaved `Ipbc in
  ignore (Context.compiled ctx (bench "gsmdec") spec);
  ignore (Context.compiled ctx (bench "gsmdec") spec);
  match List.assoc_opt "compiles" (Context.memo_stats ctx) with
  | None -> Alcotest.fail "no 'compiles' entry in memo_stats"
  | Some s ->
      check ci "one compile resident" 1 s.Vliw_parallel.Memo.size;
      check ci "second fetch hit" 1 s.Vliw_parallel.Memo.hits;
      check ci "first fetch missed" 1 s.Vliw_parallel.Memo.misses

(* --------------------------------------------------- determinism *)

let with_default_jobs jobs f =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) f

let test_schedules_deterministic_across_jobs () =
  let spec = Context.interleaved `Ipbc in
  let names = [ "gsmdec"; "epicdec"; "jpegenc" ] in
  let compile jobs =
    with_default_jobs jobs (fun () ->
        let ctx = Context.create () in
        Pool.map_ordered (fun n -> Context.compiled ctx (bench n) spec) names)
  in
  let seq = compile 1 and par = compile 4 in
  List.iter2
    (fun cs1 cs2 ->
      List.iter2
        (fun (c1 : Pipeline.compiled) (c2 : Pipeline.compiled) ->
          check cb "schedule equal across jobs" true
            (c1.Pipeline.schedule = c2.Pipeline.schedule);
          check cb "unroll factor equal across jobs" true
            (c1.Pipeline.unroll_factor = c2.Pipeline.unroll_factor))
        cs1 cs2)
    seq par

(* ------------------------------------- single-flight crash hardening *)

exception Flight_crash

(* A computation that raises while holding a single-flight slot must
   release the claim: the next caller of the key recomputes (fresh
   miss) instead of inheriting a poisoned entry or blocking forever.
   This is the property the compile service's crash isolation and
   deadline cancellation both lean on. *)
let test_memo_crashed_flight_releases_slot () =
  let memo : int Vliw_parallel.Memo.t = Vliw_parallel.Memo.create () in
  let computes = Atomic.make 0 in
  (match
     Vliw_parallel.Memo.get memo "key" (fun () ->
         Atomic.incr computes;
         raise Flight_crash)
   with
  | _ -> Alcotest.fail "expected the computation's exception"
  | exception Flight_crash -> ());
  (* The key is free again: a second caller recomputes successfully. *)
  let v =
    Vliw_parallel.Memo.get memo "key" (fun () ->
        Atomic.incr computes;
        41)
  in
  check ci "second caller recomputed" 41 v;
  check ci "both attempts actually computed" 2 (Atomic.get computes);
  let st = Vliw_parallel.Memo.stats memo in
  check ci "two misses (crash + recompute)" 2 st.Vliw_parallel.Memo.misses;
  check ci "one resident entry" 1 st.Vliw_parallel.Memo.size

let test_memo_crashed_flight_waiters_retry () =
  (* Concurrent flavour: one domain crashes while holding the claim,
     the domains blocked on it must wake, retry and succeed. *)
  let memo : int Vliw_parallel.Memo.t = Vliw_parallel.Memo.create () in
  let first_in = Atomic.make false in
  let crasher =
    Domain.spawn (fun () ->
        match
          Vliw_parallel.Memo.get memo "key" (fun () ->
              Atomic.set first_in true;
              (* Hold the claim long enough for waiters to block. *)
              Unix.sleepf 0.05;
              raise Flight_crash)
        with
        | _ -> `Computed
        | exception Flight_crash -> `Crashed)
  in
  while not (Atomic.get first_in) do
    Domain.cpu_relax ()
  done;
  let waiters =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            Vliw_parallel.Memo.get memo "key" (fun () -> 100 + i)))
  in
  check cb "first flight crashed" true (Domain.join crasher = `Crashed);
  let results = List.map Domain.join waiters in
  (* Exactly one waiter recomputed; the others saw its result. *)
  (match results with
  | r :: rest ->
      check cb "waiter recomputed a real value" true (r >= 100 && r < 103);
      List.iter (fun r' -> check ci "waiters agree" r r') rest
  | [] -> assert false);
  let st = Vliw_parallel.Memo.stats memo in
  check ci "crash + one recompute = two misses" 2
    st.Vliw_parallel.Memo.misses

(* ------------------------------------------------ cancellation tokens *)

let test_cancel_token_budget_trips_deterministically () =
  let module Cancel = Vliw_parallel.Cancel in
  let work budget =
    let token = Cancel.create ~budget in
    match
      Cancel.with_token token (fun () ->
          for i = 1 to 100 do
            Cancel.tick ~stage:(Printf.sprintf "step %d" i) 1
          done;
          `Finished)
    with
    | v -> v
    | exception Cancel.Cancelled { stage; spent; budget } ->
        `Cancelled (stage, spent, budget)
  in
  check cb "large budget finishes" true (work 1000 = `Finished);
  (match work 7 with
  | `Cancelled (stage, spent, budget) ->
      check cs "trips at the 8th tick exactly" "step 8" stage;
      check ci "spent counts the tripping tick" 8 spent;
      check ci "budget echoed" 7 budget
  | `Finished -> Alcotest.fail "budget 7 must cancel");
  (* Replay: the same budget cancels at the same tick. *)
  check cb "deterministic replay" true (work 7 = work 7)

let test_cancel_token_scoped_and_restored () =
  let module Cancel = Vliw_parallel.Cancel in
  check cb "no token outside scope" true (Cancel.active () = None);
  let token = Cancel.create ~budget:5 in
  (match
     Cancel.with_token token (fun () ->
         Cancel.tick 1;
         Cancel.remaining ())
   with
  | Some r -> check ci "remaining inside scope" 4 r
  | None -> Alcotest.fail "token must be visible inside with_token");
  check cb "token uninstalled after scope" true (Cancel.active () = None);
  (* ticks outside any scope are free no-ops *)
  Cancel.tick 1_000_000;
  check cb "cancelled flight releases memo slot" true
    (let memo : int Vliw_parallel.Memo.t = Vliw_parallel.Memo.create () in
     let t = Cancel.create ~budget:0 in
     (match
        Cancel.with_token t (fun () ->
            Vliw_parallel.Memo.get memo "k" (fun () ->
                Cancel.tick ~stage:"inside flight" 1;
                0))
      with
     | _ -> false
     | exception Cancel.Cancelled _ ->
         (* the claim was released: a fresh caller recomputes *)
         Vliw_parallel.Memo.get memo "k" (fun () -> 7) = 7))

let render_fig4 ctx =
  let buf = Buffer.create 65536 in
  let ppf = Format.formatter_of_buffer buf in
  Vliw_experiments.Fig4.run ppf ctx;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_fig4_output_byte_identical_across_jobs () =
  let seq = with_default_jobs 1 (fun () -> render_fig4 (Context.create ())) in
  let par = with_default_jobs 4 (fun () -> render_fig4 (Context.create ())) in
  check cs "fig4 rendering byte-identical at jobs=4" seq par

let suite =
  [
    ("pool: map_ordered preserves order", `Quick, test_map_ordered_preserves_order);
    ("pool: map_ordered equals List.map (random)", `Quick,
     test_map_ordered_random_lists);
    ("pool: earliest exception propagates", `Quick, test_exception_propagates);
    ("pool: nested maps don't deadlock", `Quick, test_nested_map_runs_sequentially);
    ("pool: create/reuse/shutdown", `Quick, test_explicit_pool_lifecycle);
    ("pool: shutdown joins all domains despite a dead worker", `Quick,
     test_shutdown_joins_all_domains_despite_dead_worker);
    ("context: cache key carries config fingerprint", `Quick,
     test_cache_key_includes_fingerprint);
    ("context: memo is single-flight under contention", `Slow,
     test_memo_single_flight);
    ("context: sharded memo holds under raw-domain contention", `Slow,
     test_memo_contention_raw_domains);
    ("memo: crashed flight releases its slot (regression)", `Quick,
     test_memo_crashed_flight_releases_slot);
    ("memo: waiters retry after a crashed flight", `Slow,
     test_memo_crashed_flight_waiters_retry);
    ("cancel: budget trips at a deterministic tick", `Quick,
     test_cancel_token_budget_trips_deterministically);
    ("cancel: token is scoped and memo-safe", `Quick,
     test_cancel_token_scoped_and_restored);
    ("memo: cap evicts FIFO and counts hits/misses/evictions", `Quick,
     test_memo_cap_evicts_fifo);
    ("memo: capped memo stays correct under domain contention", `Slow,
     test_memo_cap_contention);
    ("context: memo_stats surfaces both tables", `Quick,
     test_context_memo_stats_surface);
    ("determinism: schedules equal at jobs=1 and jobs=4", `Slow,
     test_schedules_deterministic_across_jobs);
    ("determinism: fig4 byte-identical at jobs=1 and jobs=4", `Slow,
     test_fig4_output_byte_identical_across_jobs);
  ]
