(* Unit tests for the report tables. *)

module Table = Vliw_report.Table

let check = Alcotest.check

let test_make_validation () =
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Table.make: row \"b\" has 1 values, expected 2")
    (fun () ->
      ignore
        (Table.make ~title:"t" ~columns:[ "x"; "y" ]
           [ ("a", [ 1.0; 2.0 ]); ("b", [ 1.0 ]) ]))

let test_render () =
  let t =
    Table.make ~title:"demo" ~note:"n" ~columns:[ "col" ]
      [ ("row", [ 0.5 ]) ]
  in
  let s = Format.asprintf "%a" (Table.render ~precision:2) t in
  check Alcotest.bool "title present" true
    (String.length s > 0 && String.sub s 0 4 = "demo");
  let csv = Format.asprintf "%a" Table.render_csv t in
  check Alcotest.bool "csv has header" true
    (String.sub csv 0 9 = "benchmark")

let test_bar () =
  check Alcotest.int "full bar" 10 (String.length (Table.bar ~width:10 1.0));
  check Alcotest.string "empty bar" (String.make 10 ' ')
    (Table.bar ~width:10 0.0);
  check Alcotest.string "clamped" (String.make 10 '#')
    (Table.bar ~width:10 2.0)

let test_stacked_bar () =
  let s = Table.stacked_bar ~width:10 [ 0.5; 0.5 ] in
  check Alcotest.int "width respected" 10 (String.length s);
  check Alcotest.string "half and half" "#####=====" s;
  check Alcotest.string "zero total blank" (String.make 4 ' ')
    (Table.stacked_bar ~width:4 [ 0.0; 0.0 ])

let suite =
  [
    ("table: ragged rows rejected", `Quick, test_make_validation);
    ("table: renders title and csv", `Quick, test_render);
    ("table: bar", `Quick, test_bar);
    ("table: stacked bar", `Quick, test_stacked_bar);
  ]
