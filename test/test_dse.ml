(* The DSE autopilot: Pareto frontier algebra, grid enumeration
   validity (qcheck), jobs-independence of a small sweep, the
   prune-never-drops-a-frontier-point guarantee, and the frontier CSV
   export. *)

module Config = Vliw_arch.Config
module Context = Vliw_experiments.Context
module Csv_export = Vliw_experiments.Csv_export
module Dse = Vliw_experiments.Dse
module Pareto = Vliw_experiments.Pareto
module Pool = Vliw_parallel.Pool
module WL = Vliw_workloads

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------- pareto *)

let test_dominates () =
  check cb "strictly better dominates" true
    (Pareto.dominates [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  check cb "better on one axis, equal elsewhere, dominates" true
    (Pareto.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  check cb "equal vectors do not dominate" false
    (Pareto.dominates [| 1.0; 1.0 |] [| 1.0; 1.0 |]);
  check cb "trade-off does not dominate" false
    (Pareto.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |]);
  check cb "worse does not dominate" false
    (Pareto.dominates [| 3.0; 3.0 |] [| 2.0; 2.0 |])

let test_frontier_basic () =
  let pts =
    [
      Pareto.point "a" [| 1.0; 4.0 |];
      Pareto.point "b" [| 2.0; 2.0 |];
      Pareto.point "c" [| 3.0; 3.0 |] (* dominated by b *);
      Pareto.point "d" [| 4.0; 1.0 |];
    ]
  in
  let f = List.map (fun p -> p.Pareto.tag) (Pareto.frontier pts) in
  check Alcotest.(list string) "dominated point drops, order kept"
    [ "a"; "b"; "d" ] f

let test_frontier_keeps_ties () =
  (* Equal objective vectors never dominate each other, so every tied
     copy survives — the sweep relies on this for exact set compares. *)
  let pts =
    [
      Pareto.point "x" [| 1.0; 1.0 |];
      Pareto.point "y" [| 1.0; 1.0 |];
      Pareto.point "z" [| 0.5; 2.0 |];
    ]
  in
  let f = List.map (fun p -> p.Pareto.tag) (Pareto.frontier pts) in
  check Alcotest.(list string) "ties all survive" [ "x"; "y"; "z" ] f

(* ------------------------------------------- grid enumeration (qcheck) *)

(* Grids mixing valid and junk dimension values: enumerate must emit
   only Config.validate-clean plans and cells, silently filtering the
   rest, and must respect the unroll cap. *)
let grid_gen =
  let open QCheck.Gen in
  let pick pool = list_size (int_range 1 3) (oneofl pool) in
  let* clusters = pick [ 1; 2; 3; 4; 6; 8 ] in
  let* interleavings = pick [ 1; 2; 3; 4; 8 ] in
  let* buses = pick [ 0; 1; 2; 4; 5; 16 ] in
  let* occupancies = pick [ 1; 2; 4 ] in
  let* cache_sizes = pick [ 512; 2048; 3000; 4096 ] in
  let* associativities = pick [ 1; 2; 3; 4; 8 ] in
  let* ab_capacities = pick [ 0; 1; 2; 8; 64 ] in
  let+ max_unroll_cap = oneofl [ 4; 8; 16; 32 ] in
  {
    Dse.clusters;
    interleavings;
    buses;
    occupancies;
    cache_sizes;
    associativities;
    ab_capacities;
    max_unroll_cap;
  }

let print_grid (g : Dse.grid) =
  let l xs = String.concat ";" (List.map string_of_int xs) in
  Printf.sprintf
    "{clusters=[%s] il=[%s] buses=[%s] occ=[%s] cache=[%s] assoc=[%s] \
     ab=[%s] cap=%d}"
    (l g.Dse.clusters) (l g.Dse.interleavings) (l g.Dse.buses)
    (l g.Dse.occupancies) (l g.Dse.cache_sizes) (l g.Dse.associativities)
    (l g.Dse.ab_capacities) g.Dse.max_unroll_cap

let test_enumerate_only_valid_configs () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"enumerate emits only valid configs"
       (QCheck.make ~print:print_grid grid_gen)
       (fun grid ->
         let fams = Dse.enumerate grid in
         List.for_all
           (fun (f : Dse.family) ->
             f.Dse.f_clusters * f.Dse.f_interleaving <= grid.Dse.max_unroll_cap
             && List.for_all
                  (fun (plan, cells) ->
                    Result.is_ok (Config.validate plan)
                    && List.for_all
                         (fun (c, _) -> Result.is_ok (Config.validate c))
                         cells)
                  f.Dse.f_levels)
           fams))

(* ------------------------------------------------------- golden sweeps *)

(* A seconds-scale grid: one plan family (2 clusters, interleave 2)
   whose 8-bus level compiles rejection-free, so the 16-bus level is
   prunable. *)
let tiny_grid =
  {
    Dse.clusters = [ 2 ];
    interleavings = [ 2 ];
    buses = [ 2; 8; 16 ];
    occupancies = [ 2 ];
    cache_sizes = [ 4096 ];
    associativities = [ 2 ];
    ab_capacities = [ 0; 16 ];
    max_unroll_cap = 16;
  }

let benches = List.map WL.Mediabench.find [ "gsmdec"; "epicdec"; "jpegenc" ]

let with_default_jobs jobs f =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) f

let run_tiny ~jobs ~prune =
  with_default_jobs jobs (fun () ->
      Dse.sweep ~grid:tiny_grid ~benches ~prune ~trip_cap:64
        (Context.create ()))

let frontier_key (r : Dse.cell_result) =
  ( r.Dse.r_clusters,
    r.Dse.r_interleaving,
    r.Dse.r_buses,
    r.Dse.r_occupancy,
    r.Dse.r_cache_size,
    r.Dse.r_associativity,
    r.Dse.r_ab,
    r.Dse.r_cycles,
    r.Dse.r_traffic )

let test_sweep_deterministic_across_jobs () =
  let a = run_tiny ~jobs:1 ~prune:true in
  let b = run_tiny ~jobs:2 ~prune:true in
  check cb "whole result equal at jobs=1 and jobs=2" true (a = b);
  check ci "frontier non-empty" (List.length a.Dse.frontier)
    (max 1 (List.length a.Dse.frontier))

let test_prune_preserves_frontier () =
  let pruned = run_tiny ~jobs:2 ~prune:true in
  let exhaustive = run_tiny ~jobs:2 ~prune:false in
  check cb "pruning fired on the tiny grid" true (pruned.Dse.pruned_cells > 0);
  check ci "exhaustive evaluated every cell" exhaustive.Dse.grid_cells_total
    (List.length exhaustive.Dse.evaluated);
  check ci "pruned evaluated fewer cells"
    (exhaustive.Dse.grid_cells_total - pruned.Dse.pruned_cells)
    (List.length pruned.Dse.evaluated);
  (* The guarantee under test: a rejection-free level's higher-bus twins
     compile byte-identically and cost strictly more, so dropping them
     never drops a frontier point. *)
  let key_set r = List.sort compare (List.map frontier_key r.Dse.frontier) in
  check cb "pruned frontier equals exhaustive frontier" true
    (key_set pruned = key_set exhaustive)

(* ---------------------------------------------------------------- csv *)

let test_csv_frontier () =
  let r = run_tiny ~jobs:1 ~prune:true in
  let dir = Filename.temp_file "dse" "" in
  Sys.remove dir;
  let path = Csv_export.frontier ~dir r in
  let lines =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match lines with
  | header :: _ ->
      check cb "header names every swept dimension" true
        (List.for_all (contains header)
           [ "clusters"; "buses"; "cache_size"; "cycles"; "traffic"; "cost" ])
  | [] -> Alcotest.fail "empty csv");
  check ci "one row per frontier cell"
    (List.length r.Dse.frontier)
    (List.length lines - 1);
  List.iter (fun l -> Sys.remove (Filename.concat dir l))
    (Array.to_list (Sys.readdir dir));
  Sys.rmdir dir

let suite =
  [
    ("pareto: dominance relation", `Quick, test_dominates);
    ("pareto: frontier drops dominated, keeps order", `Quick,
     test_frontier_basic);
    ("pareto: equal vectors all survive", `Quick, test_frontier_keeps_ties);
    ("dse: enumerate emits only validate-clean configs (qcheck)", `Quick,
     test_enumerate_only_valid_configs);
    ("dse: sweep byte-identical at jobs=1 and jobs=2", `Slow,
     test_sweep_deterministic_across_jobs);
    ("dse: pruning never drops a frontier point", `Slow,
     test_prune_preserves_frontier);
    ("dse: frontier csv has a row per frontier cell", `Quick,
     test_csv_frontier);
  ]
