(* Structural checks on every experiment driver: the tables regenerate,
   have the right shape, and their values are internally consistent. *)

module Table = Vliw_report.Table
module Context = Vliw_experiments.Context
module E = Vliw_experiments

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let ctx = Context.create ()
let n_benchmarks = List.length Vliw_workloads.Mediabench.all

let rows_ok ?(expect = n_benchmarks + 1) t =
  check ci (Table.title t ^ ": row count") expect (List.length (Table.rows t))

let values_in_range ?(lo = 0.0) ?(hi = 1.0) t =
  List.iter
    (fun (label, values) ->
      List.iter
        (fun v ->
          check cb
            (Printf.sprintf "%s/%s in [%g, %g]" (Table.title t) label lo hi)
            true
            (v >= lo -. 1e-9 && v <= hi +. 1e-9))
        values)
    (Table.rows t)

let test_fig4_tables () =
  let tables = E.Fig4.tables ctx in
  check ci "four variants + summary" 5 (List.length tables);
  List.iter
    (fun t ->
      rows_ok t;
      values_in_range t)
    tables;
  (* Access-class fractions sum to ~1 in the per-variant tables. *)
  List.iteri
    (fun i t ->
      if i < 4 then
        List.iter
          (fun (label, values) ->
            let sum = List.fold_left ( +. ) 0.0 values in
            check cb (label ^ ": fractions sum to 1") true
              (abs_float (sum -. 1.0) < 1e-6))
          (Table.rows t))
    tables

let test_fig4_gains_positive () =
  let align_gain, unroll_gain = E.Fig4.local_hit_gains ctx in
  check cb "alignment gain positive" true (align_gain > 0.05);
  check cb "unrolling gain positive" true (unroll_gain > 0.15)

let test_fig5_tables () =
  List.iter
    (fun t ->
      (* Benchmarks without remote-hit stall are dropped, as in the
         paper, so only bound the row count. *)
      check cb
        (Table.title t ^ ": plausible row count")
        true
        (List.length (Table.rows t) >= 6
        && List.length (Table.rows t) <= n_benchmarks);
      values_in_range t)
    (E.Fig5.tables ctx)

let test_fig6_tables () =
  match E.Fig6.tables ctx with
  | [ normalized; ibc_break; ipbc_break ] ->
      values_in_range ~hi:3.0 normalized;
      (* IBC without buffers is the normalization base. *)
      List.iter
        (fun (label, values) ->
          if label <> "AMEAN" then
            check (Alcotest.float 1e-9) (label ^ " IBC base") 1.0
              (List.nth values 0))
        (Table.rows normalized);
      List.iter values_in_range [ ibc_break; ipbc_break ]
  | _ -> Alcotest.fail "expected three tables"

let test_fig6_claims () =
  let r_ibc, r_ipbc = E.Fig6.ab_reduction ctx in
  check cb "AB reduce stall (IBC)" true (r_ibc > 0.2);
  check cb "AB reduce stall (IPBC)" true (r_ipbc > 0.2);
  let s_ibc, s_ipbc = E.Fig6.remote_hit_share ctx in
  check cb "remote hits dominate (IBC)" true (s_ibc > 0.5);
  check cb "remote hits dominate (IPBC)" true (s_ipbc > 0.5)

let test_fig7_table () =
  let t = E.Fig7.table ctx in
  rows_ok ~expect:n_benchmarks t;
  values_in_range ~lo:0.25 ~hi:1.0 t;
  (* Unrolling improves balance for (almost) every benchmark. *)
  let improved =
    List.filter
      (fun (_, values) ->
        match values with
        | [ no_unroll; ouf; _ ] -> ouf <= no_unroll +. 1e-9
        | _ -> false)
      (Table.rows t)
  in
  check cb "unrolling improves balance broadly" true
    (List.length improved >= n_benchmarks - 2)

let test_fig8_tables () =
  match E.Fig8.tables ctx with
  | [ total; stall ] ->
      rows_ok total;
      rows_ok stall;
      values_in_range ~hi:5.0 total;
      values_in_range ~hi:5.0 stall;
      (* Stall is part of the total. *)
      List.iter2
        (fun (label, totals) (_, stalls) ->
          List.iter2
            (fun t s ->
              check cb (label ^ ": stall <= total") true (s <= t +. 1e-9))
            totals stalls)
        (Table.rows total) (Table.rows stall)
  | _ -> Alcotest.fail "expected two tables"

let test_fig8_headline_ordering () =
  let hs = E.Fig8.headline ctx in
  let get k = List.assoc k hs in
  check cb "IBC <= IPBC" true (get "IBC" <= get "IPBC" +. 1e-9);
  check cb "interleaved beats the slow unified cache" true
    (get "IBC" < get "Unified(L=5)");
  check cb "everything >= the optimistic unified cache" true
    (List.for_all (fun (_, v) -> v >= 0.95) hs)

let test_sweeps () =
  let t = E.Ablation_interleave.table ~seed:7 in
  rows_ok t;
  let row name = List.assoc name (Table.rows t) in
  (match row "gsmdec" with
  | [ i2; _; i8 ] ->
      check cb "gsm prefers small interleaving over 8B" true (i2 < i8)
  | _ -> Alcotest.fail "unexpected row shape");
  let t2 = E.Ablation_clusters.table ~seed:7 in
  rows_ok t2;
  match List.assoc "AMEAN" (Table.rows t2) with
  | [ c2; c4; _ ] -> check cb "4 clusters beat 2 on the mean" true (c4 < c2)
  | _ -> Alcotest.fail "unexpected row shape"

let test_csv_export () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "vliw_csv_test" in
  let paths = E.Csv_export.export ~dir ctx in
  check cb "several files written" true (List.length paths >= 10);
  List.iter
    (fun p ->
      check cb (p ^ " exists") true (Sys.file_exists p);
      let ic = open_in p in
      let header = input_line ic in
      close_in ic;
      check cb (p ^ " has a csv header") true
        (String.length header >= 9 && String.sub header 0 9 = "benchmark"))
    paths

let test_traffic_tables () =
  match E.Ablation_traffic.tables ctx with
  | [ interleaved; multivliw ] ->
      rows_ok interleaved;
      rows_ok multivliw;
      (* The interleaved design has no coherence columns at all. *)
      check cb "interleaved columns protocol-free" true
        (not (List.mem "invalidations" (Table.columns interleaved)));
      check cb "multivliw reports invalidations" true
        (List.mem "invalidations" (Table.columns multivliw))
  | _ -> Alcotest.fail "expected two tables"

let test_unroll_tables () =
  match E.Ablation_unroll.tables ctx with
  | [ cycles; code ] ->
      rows_ok cycles;
      rows_ok code;
      (* Selective is never worse than the fixed strategies, and
         unrolling never shrinks code. *)
      List.iter
        (fun (label, values) ->
          match values with
          | [ none; xn; ouf; sel ] ->
              check cb (label ^ ": selective minimal") true
                (sel <= none +. 1e-6 && sel <= xn +. 1e-6 && sel <= ouf +. 1e-6)
          | _ -> Alcotest.fail "unexpected row shape")
        (Table.rows cycles);
      List.iter
        (fun (label, values) ->
          match values with
          | [ none; _; ouf; _ ] ->
              check cb (label ^ ": OUF code at least as large") true
                (ouf >= none -. 1e-6)
          | _ -> Alcotest.fail "unexpected row shape")
        (Table.rows code)
  | _ -> Alcotest.fail "expected two tables"

let test_ablation_tables () =
  let hints = E.Ablation_hints.table ctx in
  check ci "hints: four rows" 4 (List.length (Table.rows hints));
  let chains = E.Ablation_chains.table ctx in
  (match Table.rows chains with
  | [ (_, with_chains); (_, without) ] ->
      (* no-chains: less stall, more local hits. *)
      check cb "chains cost stall" true
        (List.nth without 1 <= List.nth with_chains 1);
      check cb "chains cost locality" true
        (List.nth without 2 >= List.nth with_chains 2)
  | _ -> Alcotest.fail "expected two rows")

(* Regression bands for the headline numbers recorded in EXPERIMENTS.md:
   loose enough to survive benign refactors, tight enough to catch a
   model regression. *)
let test_headline_regression () =
  let hs = E.Fig8.headline ctx in
  let within name lo hi =
    let v = List.assoc name hs in
    check cb (Printf.sprintf "%s in [%.2f, %.2f] (got %.3f)" name lo hi v)
      true
      (v >= lo && v <= hi)
  in
  within "IPBC" 1.05 1.40;
  within "IBC" 1.02 1.30;
  within "MultiVLIW" 0.95 1.25;
  within "Unified(L=5)" 1.15 1.60;
  let align_gain, unroll_gain = E.Fig4.local_hit_gains ctx in
  check cb "alignment gain band" true
    (align_gain > 0.10 && align_gain < 0.35);
  check cb "unrolling gain band" true
    (unroll_gain > 0.20 && unroll_gain < 0.45);
  let r_ibc, r_ipbc = E.Fig6.ab_reduction ctx in
  check cb "AB reduction band (IBC)" true (r_ibc > 0.30 && r_ibc < 0.75);
  check cb "AB reduction band (IPBC)" true (r_ipbc > 0.30 && r_ipbc < 0.75)

let suite =
  [
    ("fig4: shape and consistency", `Slow, test_fig4_tables);
    ("fig4: headline gains", `Slow, test_fig4_gains_positive);
    ("fig5: shape", `Slow, test_fig5_tables);
    ("fig6: shape and base", `Slow, test_fig6_tables);
    ("fig6: headline claims", `Slow, test_fig6_claims);
    ("fig7: shape and claim", `Slow, test_fig7_table);
    ("fig8: shape and stall component", `Slow, test_fig8_tables);
    ("fig8: headline ordering", `Slow, test_fig8_headline_ordering);
    ("sweeps: interleaving and clusters", `Slow, test_sweeps);
    ("csv export", `Slow, test_csv_export);
    ("traffic tables", `Slow, test_traffic_tables);
    ("unroll strategy tables", `Slow, test_unroll_tables);
    ("ablation tables", `Slow, test_ablation_tables);
    ("headline regression bands", `Slow, test_headline_regression);
  ]
