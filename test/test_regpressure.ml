(* Unit tests for the MaxLive register-pressure estimator. *)

open Vliw_ir
module Config = Vliw_arch.Config
module Engine = Vliw_sched.Engine
module Regpressure = Vliw_sched.Regpressure
module Schedule = Vliw_sched.Schedule

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cfg = Config.default

(* producer -> consumer; the consumer defines no value, so the producer's
   is the only lifetime. *)
let chain_ddg () =
  let b = Builder.create () in
  let p = Builder.add b ~dests:[ 0 ] Opcode.Int_alu in
  let c = Builder.add b ~srcs:[ 0 ] Opcode.Int_alu in
  Builder.flow b p c;
  Builder.build b

let hand_schedule ~ii ~cluster0 ~cluster1 ~t0 ~t1 =
  {
    Schedule.ii;
    n_clusters = 4;
    cluster = [| cluster0; cluster1 |];
    start = [| t0; t1 |];
    copies = [];
  }

let test_short_lifetime () =
  let g = chain_ddg () in
  let s = hand_schedule ~ii:4 ~cluster0:0 ~cluster1:0 ~t0:0 ~t1:1 in
  let live = Regpressure.max_live g ~latency:(Ddg.default_latency g) s in
  check ci "one value live in cluster 0" 1 live.(0);
  check ci "nothing in cluster 1" 0 live.(1)

let test_long_lifetime_overlaps () =
  (* A lifetime spanning 2.5 IIs has 3 overlapping instances. *)
  let g = chain_ddg () in
  let s = hand_schedule ~ii:4 ~cluster0:0 ~cluster1:0 ~t0:0 ~t1:10 in
  let live = Regpressure.max_live g ~latency:(Ddg.default_latency g) s in
  check cb "pipelined lifetimes overlap" true (live.(0) >= 3)

let test_latency_extends_lifetime () =
  let g = chain_ddg () in
  let s = hand_schedule ~ii:2 ~cluster0:0 ~cluster1:0 ~t0:0 ~t1:1 in
  let short = Regpressure.total_max_live g ~latency:(fun _ -> 1) s in
  (* Same schedule, but pretend the producer takes 9 cycles: its value
     occupies more overlapped iterations. *)
  let long = Regpressure.total_max_live g ~latency:(fun v -> if v = 0 then 9 else 1) s in
  check cb "longer latency raises pressure" true (long > short)

let test_copy_opens_remote_lifetime () =
  let g = chain_ddg () in
  let s =
    {
      Schedule.ii = 4;
      n_clusters = 4;
      cluster = [| 0; 2 |];
      start = [| 0; 5 |];
      copies =
        [ { Schedule.src_op = 0; from_cluster = 0; to_cluster = 2; start = 1 } ];
    }
  in
  let live = Regpressure.max_live g ~latency:(Ddg.default_latency g) s in
  check cb "value lives in producer cluster" true (live.(0) >= 1);
  check cb "copy target holds a value too" true (live.(2) >= 1)

let test_whole_suite_pressure_reasonable () =
  (* Every compiled benchmark loop fits a generous register file. *)
  let ctx = Vliw_experiments.Context.create () in
  List.iter
    (fun bench ->
      List.iter
        (fun (c : Vliw_core.Pipeline.compiled) ->
          let total =
            Regpressure.total_max_live c.Vliw_core.Pipeline.loop.Loop.ddg
              ~latency:(fun i -> c.Vliw_core.Pipeline.latencies.(i))
              c.Vliw_core.Pipeline.schedule
          in
          check cb
            (bench.Vliw_workloads.Benchspec.name ^ " pressure sane")
            true
            (total > 0 && total < 1024))
        (Vliw_experiments.Context.compiled ctx bench
           (Vliw_experiments.Context.interleaved `Ipbc)))
    Vliw_workloads.Mediabench.all

let suite =
  [
    ("maxlive: short lifetime", `Quick, test_short_lifetime);
    ("maxlive: pipelined overlap", `Quick, test_long_lifetime_overlaps);
    ("maxlive: latency raises pressure", `Quick, test_latency_extends_lifetime);
    ("maxlive: copies open remote lifetimes", `Quick, test_copy_opens_remote_lifetime);
    ("maxlive: suite-wide sanity", `Slow, test_whole_suite_pressure_reasonable);
  ]
