(* Unit tests for the simulator: statistics bookkeeping, the machine
   dispatch and the lockstep executor's stall model. *)

open Vliw_ir
module Access = Vliw_arch.Access
module Config = Vliw_arch.Config
module Pipeline = Vliw_core.Pipeline
module Profile = Vliw_core.Profile
module Executor = Vliw_sim.Executor
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module Chains = Vliw_core.Chains
module Schedule = Vliw_sched.Schedule

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cfg = Config.default

(* -------------------------------------------------------------- stats *)

let test_stats_counts () =
  let s = Stats.create () in
  Stats.count_access s Access.Local_hit;
  Stats.count_access s Access.Local_hit;
  Stats.count_access s Access.Remote_hit;
  Stats.count_stall s Access.Remote_hit ~cycles:4;
  Stats.add_compute s 100;
  check ci "local hits" 2 (Stats.accesses s Access.Local_hit);
  check ci "total" 3 (Stats.total_accesses s);
  check ci "stall" 4 (Stats.stall_cycles s);
  check ci "total cycles" 104 (Stats.total_cycles s);
  check (Alcotest.float 1e-9) "ratio" (2.0 /. 3.0) (Stats.local_hit_ratio s)

let test_stats_accumulate_scale () =
  let a = Stats.create () and b = Stats.create () in
  Stats.count_access a Access.Local_hit;
  Stats.add_compute a 10;
  Stats.count_access b Access.Remote_miss;
  Stats.count_stall b Access.Remote_miss ~cycles:7;
  Stats.accumulate ~into:a b;
  check ci "merged accesses" 2 (Stats.total_accesses a);
  check ci "merged stall" 7 (Stats.stall_cycles a);
  let half = Stats.scale a 0.5 in
  check ci "scaled compute" 5 (Stats.compute_cycles half);
  check ci "original intact" 10 (Stats.compute_cycles a)

let test_stats_factors () =
  let s = Stats.create () in
  Stats.count_stall_factor s Stats.Granularity;
  Stats.count_stall_factor s Stats.Granularity;
  Stats.count_stall_factor s Stats.Not_in_preferred;
  check ci "granularity" 2 (Stats.factor_count s Stats.Granularity);
  check ci "not preferred" 1 (Stats.factor_count s Stats.Not_in_preferred);
  check ci "unclear untouched" 0 (Stats.factor_count s Stats.Unclear_preferred)

(* ------------------------------------------------------------ machine *)

let test_machine_dispatch () =
  List.iter
    (fun arch ->
      let m = Machine.create cfg arch in
      let r = Machine.access m ~now:0 ~cluster:0 ~addr:0 ~store:false () in
      check cb
        (Machine.arch_to_string arch ^ " first access misses")
        true
        (r.Access.kind = Access.Local_miss || r.Access.kind = Access.Remote_miss);
      Machine.end_of_loop m)
    [
      Machine.Word_interleaved { attraction_buffers = true };
      Machine.Word_interleaved { attraction_buffers = false };
      Machine.Unified { slow = false };
      Machine.Multivliw;
    ]

(* ----------------------------------------------------------- executor *)

(* Hand-built "compiled" loop: one load in cluster 0 with a controllable
   assigned latency, accessing a fixed address each iteration. *)
let compiled_of ~assigned_latency ~cluster ~granularity ~trip =
  let b = Builder.create () in
  let l =
    Builder.add b ~dests:[ 0 ]
      ~mem:(Mem_access.make ~symbol:"x" ~stride:0 ~granularity ())
      Opcode.Load
  in
  ignore l;
  let g = Builder.build b in
  let loop = Loop.make ~name:"unit" ~trip_count:trip g in
  let profile = Profile.empty ~n_ops:1 in
  profile.(0) <-
    Some
      (Profile.make_op ~hit_rate:1.0
         ~cluster_fractions:[| 1.0; 0.0; 0.0; 0.0 |] ~accesses:trip);
  {
    Pipeline.source = loop;
    target = Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
    unroll_factor = 1;
    loop;
    profile;
    latencies = [| assigned_latency |];
    chains = Chains.build g;
    schedule =
      { Schedule.ii = 4; n_clusters = 4; cluster = [| cluster |];
        start = [| 0 |]; copies = [] };
    estimated_cycles = trip * 4;
    considered = [];
    bus_window_rejections = 0;
  }

let run ?attractable ~assigned_latency ~cluster ?(granularity = 4) ?(trip = 10)
    ?(arch = Machine.Word_interleaved { attraction_buffers = false })
    ?(addr = 0) () =
  let c = compiled_of ~assigned_latency ~cluster ~granularity ~trip in
  let machine = Machine.create cfg arch in
  Executor.run_loop cfg machine c ~addr_of:(fun ~op:_ ~iter:_ -> addr)
    ?attractable ()

let test_executor_no_stall_when_covered () =
  (* Assigned latency 15 covers even the cold remote miss. *)
  let s = run ~assigned_latency:15 ~cluster:1 () in
  check ci "no stall" 0 (Stats.stall_cycles s);
  check ci "compute = (trip + SC - 1) * II" 40 (Stats.compute_cycles s)

let test_executor_stall_equals_uncovered_latency () =
  (* Local accesses with assigned latency 1: only the cold miss stalls,
     by (miss latency - 1). *)
  let s = run ~assigned_latency:1 ~cluster:0 () in
  check ci "one cold stall" (cfg.Config.lat_local_miss - 1)
    (Stats.stall_cycles s);
  check ci "stall attributed to the miss" (cfg.Config.lat_local_miss - 1)
    (Stats.stall_of s Access.Local_miss)

let test_executor_remote_hit_stall () =
  (* Cluster 1 reads cluster-0 data every iteration at assigned lat 1:
     cold remote miss once, then remote hits stalling 4 each. *)
  let trip = 10 in
  let s = run ~assigned_latency:1 ~cluster:1 ~trip () in
  check ci "remote-hit stall"
    ((trip - 1) * (cfg.Config.lat_remote_hit - 1))
    (Stats.stall_of s Access.Remote_hit);
  check ci "plus the cold miss" (cfg.Config.lat_remote_miss - 1)
    (Stats.stall_of s Access.Remote_miss)

let test_executor_ab_removes_remote_stall () =
  let trip = 10 in
  let s =
    run ~assigned_latency:1 ~cluster:1 ~trip
      ~arch:(Machine.Word_interleaved { attraction_buffers = true })
      ()
  in
  (* Cold miss stalls; the first remote hit attracts; later accesses are
     AB-local. *)
  check ci "a single remote-hit stall remains"
    (cfg.Config.lat_remote_hit - 1)
    (Stats.stall_of s Access.Remote_hit);
  check cb "local hits appear" true (Stats.accesses s Access.Local_hit > 0)

let test_executor_attractable_flags () =
  let trip = 10 in
  let s =
    run ~assigned_latency:1 ~cluster:1 ~trip ~attractable:[| false |]
      ~arch:(Machine.Word_interleaved { attraction_buffers = true })
      ()
  in
  check ci "suppressed attraction keeps remote hits"
    ((trip - 1) * (cfg.Config.lat_remote_hit - 1))
    (Stats.stall_of s Access.Remote_hit)

let test_executor_wide_access () =
  (* 8-byte elements span two clusters: even from its first word's home
     cluster the access classifies by the slower (remote) part. *)
  let s = run ~assigned_latency:15 ~cluster:0 ~granularity:8 () in
  check cb "wide accesses are never plain local hits" true
    (Stats.accesses s Access.Local_hit = 0);
  check cb "remote hits observed" true
    (Stats.accesses s Access.Remote_hit > 0);
  check ci "but fully covered by the latency: no stall" 0
    (Stats.stall_cycles s)

let test_executor_store_never_stalls () =
  let b = Builder.create () in
  let _ =
    Builder.add b ~srcs:[ 0 ]
      ~mem:(Mem_access.make ~symbol:"x" ~stride:0 ~granularity:4 ())
      Opcode.Store
  in
  let g = Builder.build b in
  let loop = Loop.make ~name:"st" ~trip_count:10 g in
  let profile = Profile.empty ~n_ops:1 in
  let c =
    {
      Pipeline.source = loop;
      target = Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
      unroll_factor = 1;
      loop;
      profile;
      latencies = [| 1 |];
      chains = Chains.build g;
      schedule =
        { Schedule.ii = 4; n_clusters = 4; cluster = [| 1 |];
          start = [| 0 |]; copies = [] };
      estimated_cycles = 40;
      considered = [];
      bus_window_rejections = 0;
    }
  in
  let machine =
    Machine.create cfg (Machine.Word_interleaved { attraction_buffers = false })
  in
  let s =
    Executor.run_loop cfg machine c ~addr_of:(fun ~op:_ ~iter:_ -> 0) ()
  in
  check ci "stores never stall" 0 (Stats.stall_cycles s);
  check cb "but are classified" true (Stats.total_accesses s > 0)

let test_executor_factor_classification () =
  (* Stalling remote hits of an op scheduled away from its preferred
     cluster are tagged Not_in_preferred; stride 0 is a multiple of NxI,
     granularity 4 is not wide, distribution 1.0 is clear. *)
  let s = run ~assigned_latency:1 ~cluster:1 ~trip:10 () in
  check cb "not-in-preferred flagged" true
    (Stats.factor_count s Stats.Not_in_preferred > 0);
  check ci "granularity not flagged" 0 (Stats.factor_count s Stats.Granularity);
  check ci "multi-cluster not flagged" 0
    (Stats.factor_count s Stats.More_than_one_cluster);
  check ci "unclear not flagged" 0
    (Stats.factor_count s Stats.Unclear_preferred)

(* ------------------------------------------- golden equivalence suite *)

(* The access-plan kernel (run_loop) against the list-based executable
   specification (run_loop_reference): bit-identical Stats and traffic
   counters on real benchmarks, across every memory-system backend, with
   and without attraction hints. *)

module WL = Vliw_workloads

let golden_archs =
  [
    ( "interleaved+AB",
      Machine.Word_interleaved { attraction_buffers = true },
      Pipeline.Interleaved { heuristic = `Ipbc; chains = true } );
    ( "interleaved-AB",
      Machine.Word_interleaved { attraction_buffers = false },
      Pipeline.Interleaved { heuristic = `Ipbc; chains = true } );
    ( "unified/L5",
      Machine.Unified { slow = true },
      Pipeline.Unified { slow = true } );
    ("multiVLIW", Machine.Multivliw, Pipeline.Multivliw);
  ]

let test_kernel_matches_reference () =
  let traffic = Alcotest.(list (pair string int)) in
  let layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:7
  in
  let profiler = WL.Profiling.profiler cfg layout in
  let exec_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed:7
  in
  List.iter
    (fun bname ->
      let b = WL.Mediabench.find bname in
      List.iter
        (fun (aname, arch, target) ->
          List.iter
            (fun loop ->
              let c =
                Pipeline.compile cfg ~target
                  ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
              in
              let addr_of =
                WL.Layout.addr_fn exec_layout c.Pipeline.loop.Loop.ddg
              in
              let attractable =
                match arch with
                | Machine.Word_interleaved { attraction_buffers = true } ->
                    Some
                      (Vliw_core.Hints.attractable cfg c.Pipeline.loop.Loop.ddg
                         ~profile:c.Pipeline.profile
                         ~schedule:c.Pipeline.schedule ())
                | _ -> None
              in
              let tag =
                Printf.sprintf "%s/%s/%s" bname aname loop.Loop.name
              in
              let m_new = Machine.create cfg arch in
              let m_ref = Machine.create cfg arch in
              let s_new =
                Executor.run_loop cfg m_new c ~addr_of ?attractable ()
              in
              let s_ref =
                Executor.run_loop_reference cfg m_ref c ~addr_of ?attractable
                  ()
              in
              check cb (tag ^ ": stats bit-identical") true
                (Stats.equal s_new s_ref);
              check traffic
                (tag ^ ": traffic counters identical")
                (Machine.traffic_summary m_ref)
                (Machine.traffic_summary m_new);
              (* Both executors' results must also satisfy the simulator
                 conservation laws, not just agree with each other. *)
              let ddg = c.Pipeline.loop.Loop.ddg in
              let max_parts =
                List.fold_left
                  (fun acc op ->
                    match (Ddg.op ddg op).Operation.mem with
                    | None -> acc
                    | Some m ->
                        max acc
                          ((m.Mem_access.granularity
                            + cfg.Config.interleaving_factor - 1)
                          / cfg.Config.interleaving_factor))
                  1 (Ddg.memory_ops ddg)
              in
              let diags =
                Vliw_analysis.Audit_sim.audit_stats ~arch
                  ~n_mem_ops:(List.length (Ddg.memory_ops ddg))
                  ~trip:c.Pipeline.loop.Loop.trip_count
                  ~ii:c.Pipeline.schedule.Schedule.ii
                  ~stage_count:(Schedule.stage_count c.Pipeline.schedule)
                  ~where:tag s_ref
                @ Vliw_analysis.Audit_sim.audit_traffic ~arch ~stats:s_ref
                    ~traffic:(Machine.traffic_summary m_ref)
                    ~max_parts ~where:tag ()
              in
              check ci
                (tag ^ ": sim invariants hold")
                0
                (Vliw_analysis.Diagnostic.n_errors diags))
            (WL.Benchspec.loops b))
        golden_archs)
    [ "gsmdec"; "epicdec"; "mpeg2dec" ]

(* The batched lockstep executor against both the kernel and the
   reference, on one plan per backend target: a batch mixing every
   attraction-buffer capacity fig6/the hints ablation sweep with all
   four backend machines must yield, cell by cell, exactly the Stats
   and traffic of a solo run of that configuration. *)
let batched_cells =
  List.map
    (fun ab ->
      (Printf.sprintf "AB-%d" ab,
       Machine.Word_interleaved { attraction_buffers = true }, Some ab))
    [ 2; 4; 8; 16; 32; 64; 128; 256 ]
  @ [
      ("interleaved+AB", Machine.Word_interleaved { attraction_buffers = true },
       None);
      ("interleaved-AB",
       Machine.Word_interleaved { attraction_buffers = false }, None);
      ("unified/L5", Machine.Unified { slow = true }, None);
      ("multiVLIW", Machine.Multivliw, None);
    ]

let test_batched_matches_reference () =
  let traffic = Alcotest.(list (pair string int)) in
  let layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:7
  in
  let profiler = WL.Profiling.profiler cfg layout in
  let exec_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed:7
  in
  let b = WL.Mediabench.find "gsmdec" in
  List.iter
    (fun target ->
      List.iter
        (fun loop ->
          let c =
            Pipeline.compile cfg ~target
              ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
          in
          let addr_of = WL.Layout.addr_fn exec_layout c.Pipeline.loop.Loop.ddg in
          let addr_trace = Executor.address_trace c ~addr_of in
          let cell_cfg ab =
            match ab with
            | None -> cfg
            | Some n -> { cfg with Config.ab_entries = n }
          in
          let attractable_of arch ab =
            match arch with
            | Machine.Word_interleaved { attraction_buffers = true } ->
                Some
                  (Vliw_core.Hints.attractable (cell_cfg ab)
                     c.Pipeline.loop.Loop.ddg ~profile:c.Pipeline.profile
                     ~schedule:c.Pipeline.schedule ())
            | _ -> None
          in
          let machines =
            Machine.create_batch cfg
              (List.map (fun (_, arch, ab) -> (arch, ab)) batched_cells)
          in
          let cells =
            Array.of_list
              (List.mapi
                 (fun j (_, arch, ab) ->
                   { Executor.machine = machines.(j);
                     attractable = attractable_of arch ab })
                 batched_cells)
          in
          let batched = Executor.run_loop_batched cfg cells c ~addr_trace () in
          List.iteri
            (fun j (cname, arch, ab) ->
              let tag =
                Printf.sprintf "gsmdec/%s/%s/%s"
                  (Pipeline.target_to_string target)
                  loop.Loop.name cname
              in
              let ccfg = cell_cfg ab in
              let attractable = attractable_of arch ab in
              let m_solo = Machine.create ccfg arch in
              let s_solo =
                Executor.run_loop ccfg m_solo c ~addr_trace ?attractable ()
              in
              let m_ref = Machine.create ccfg arch in
              let s_ref =
                Executor.run_loop_reference ccfg m_ref c ~addr_of ?attractable
                  ()
              in
              check cb (tag ^ ": batched = run_loop stats") true
                (Stats.equal batched.(j) s_solo);
              check cb (tag ^ ": batched = reference stats") true
                (Stats.equal batched.(j) s_ref);
              check traffic
                (tag ^ ": batched traffic = run_loop traffic")
                (Machine.traffic_summary m_solo)
                (Machine.traffic_summary machines.(j));
              check traffic
                (tag ^ ": batched traffic = reference traffic")
                (Machine.traffic_summary m_ref)
                (Machine.traffic_summary machines.(j)))
            batched_cells)
        (WL.Benchspec.loops b))
    [
      Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
      Pipeline.Interleaved { heuristic = `Ibc; chains = true };
      Pipeline.Unified { slow = true };
      Pipeline.Multivliw;
    ]

let suite =
  [
    ("stats: counters", `Quick, test_stats_counts);
    ("stats: accumulate and scale", `Quick, test_stats_accumulate_scale);
    ("stats: stall factors", `Quick, test_stats_factors);
    ("machine: dispatch over architectures", `Quick, test_machine_dispatch);
    ("executor: covered latency never stalls", `Quick, test_executor_no_stall_when_covered);
    ("executor: stall equals uncovered latency", `Quick, test_executor_stall_equals_uncovered_latency);
    ("executor: remote hits stall", `Quick, test_executor_remote_hit_stall);
    ("executor: attraction buffers remove stall", `Quick, test_executor_ab_removes_remote_stall);
    ("executor: attractable hints respected", `Quick, test_executor_attractable_flags);
    ("executor: wide accesses partly remote", `Quick, test_executor_wide_access);
    ("executor: stores never stall", `Quick, test_executor_store_never_stalls);
    ("executor: figure-5 factor flags", `Quick, test_executor_factor_classification);
    ("executor: kernel matches reference on all backends", `Slow,
     test_kernel_matches_reference);
    ("executor: batched sweep matches kernel and reference", `Slow,
     test_batched_matches_reference);
  ]
