let () =
  Alcotest.run "vliw-repro"
    [
      ("ir", Test_ir.suite);
      ("arch", Test_arch.suite);
      ("sched", Test_sched.suite);
      ("core", Test_core.suite);
      ("sim", Test_sim.suite);
      ("workloads", Test_workloads.suite);
      ("report", Test_report.suite);
      ("regpressure", Test_regpressure.suite);
      ("disambiguation", Test_disambiguation.suite);
      ("parallel", Test_parallel.suite);
      ("experiments", Test_experiments.suite);
      ("dse", Test_dse.suite);
      ("analysis", Test_analysis.suite);
      ("oracle", Test_oracle.suite);
      ("locality", Test_locality.suite);
      ("service", Test_service.suite);
      ("concsan", Test_concsan.suite);
      ("figures", Test_figures.suite);
      ("properties", Test_props.suite);
    ]
