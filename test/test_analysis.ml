(* Mutation tests for the static-analysis layer: every deliberate
   corruption of a DDG, schedule, config, statistics record or traffic
   summary must be flagged under its expected pass id, and the pristine
   artefacts must come back clean.  The DDG corruptions are applied to
   every benchmark of the suite, so the linter is exercised against each
   real graph shape, not one synthetic example. *)

open Vliw_ir
module A = Vliw_analysis
module D = Vliw_analysis.Diagnostic
module Config = Vliw_arch.Config
module Engine = Vliw_sched.Engine
module Schedule = Vliw_sched.Schedule
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module WL = Vliw_workloads

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cfg = Config.default

let has severity pass diags =
  List.exists (fun d -> d.D.pass = pass && d.D.severity = severity) diags

let assert_flagged what severity pass diags =
  if not (has severity pass diags) then
    Alcotest.failf "%s: expected a %s diagnostic from %s, got:@.%a" what
      (match severity with
      | D.Error -> "error"
      | D.Warn -> "warning"
      | D.Info -> "info")
      pass
      (Fmt.list ~sep:Fmt.cut D.pp)
      diags

let assert_clean what diags =
  if D.n_errors diags > 0 || D.n_warnings diags > 0 then
    Alcotest.failf "%s: expected a clean report, got:@.%a" what
      (Fmt.list ~sep:Fmt.cut D.pp)
      diags

(* --------------------------------------------------- DDG corruptions *)

(* Each mutation takes a pristine (ops, edges) pair and returns the
   corrupted pair; the linter must flag it with the given pass id. *)
let edge ?(kind = Edge.Reg_flow) ?(distance = 0) src dst =
  { Edge.src; dst; kind; distance }

let first_mem_op ops =
  let n = Array.length ops in
  let rec find i =
    if i >= n then None
    else if Operation.is_memory ops.(i) then Some i
    else find (i + 1)
  in
  find 0

let ddg_mutations =
  [
    ( "dangling endpoint", D.Error, "ddg/endpoint",
      fun ops edges -> (ops, edge (Array.length ops + 3) 0 :: edges) );
    ( "negative distance", D.Error, "ddg/negative-distance",
      fun ops edges ->
        ( ops,
          match edges with
          | e -> { (List.hd e) with Edge.distance = -1 } :: List.tl e ) );
    ( "absurd distance", D.Warn, "ddg/absurd-distance",
      fun ops edges ->
        (ops, { (List.hd edges) with Edge.distance = 1000 } :: List.tl edges)
    );
    ( "zero-distance self edge", D.Error, "ddg/self-zero",
      fun ops edges -> (ops, edge 0 0 :: edges) );
    ( "duplicate edge", D.Error, "ddg/duplicate-edge",
      fun ops edges -> (ops, List.hd edges :: edges) );
    ( "redundant parallel edge", D.Warn, "ddg/redundant-edge",
      fun ops edges ->
        let e = List.hd edges in
        (ops, { e with Edge.distance = e.Edge.distance + 1 } :: edges) );
    ( "copy opcode in source graph", D.Error, "ddg/copy-opcode",
      fun ops edges ->
        let n = Array.length ops in
        let copy =
          {
            Operation.id = n;
            opcode = Opcode.Copy;
            dests = [ 0 ];
            srcs = [];
            mem = None;
          }
        in
        (Array.append ops [| copy |], edge 0 n :: edges) );
    ( "stripped memory descriptor", D.Error, "ddg/mem-descriptor",
      fun ops edges ->
        (match first_mem_op ops with
        | Some i -> ops.(i) <- { (ops.(i)) with Operation.mem = None }
        | None -> Alcotest.fail "benchmark loop without memory ops");
        (ops, edges) );
    ( "granularity 3", D.Error, "ddg/mem-descriptor",
      fun ops edges ->
        (match first_mem_op ops with
        | Some i ->
            let m = Option.get ops.(i).Operation.mem in
            ops.(i) <-
              {
                (ops.(i)) with
                Operation.mem = Some { m with Mem_access.granularity = 3 };
              }
        | None -> Alcotest.fail "benchmark loop without memory ops");
        (ops, edges) );
    ( "isolated operation", D.Warn, "ddg/unreachable",
      fun ops edges ->
        let n = Array.length ops in
        let orphan =
          {
            Operation.id = n;
            opcode = Opcode.Int_alu;
            dests = [ 0 ];
            srcs = [];
            mem = None;
          }
        in
        (Array.append ops [| orphan |], edges) );
    ( "zero-distance positive cycle", D.Error, "ddg/zero-cycle",
      fun ops edges ->
        let n = Array.length ops in
        let node id =
          {
            Operation.id;
            opcode = Opcode.Int_alu;
            dests = [ 0 ];
            srcs = [];
            mem = None;
          }
        in
        ( Array.append ops [| node n; node (n + 1) |],
          edge n (n + 1) :: edge (n + 1) n :: edges ) );
    ( "non-dense operation ids", D.Error, "ddg/op-id",
      fun ops edges ->
        ops.(0) <- Operation.with_id ops.(0) (Array.length ops + 7);
        (ops, edges) );
  ]

let test_ddg_mutations () =
  List.iter
    (fun (b : WL.Benchspec.t) ->
      let loop = List.hd (WL.Benchspec.loops b) in
      let ddg = loop.Loop.ddg in
      assert_clean
        (Printf.sprintf "%s pristine" b.WL.Benchspec.name)
        (A.Lint_ddg.lint ddg);
      List.iter
        (fun (what, severity, pass, mutate) ->
          let ops, edges = mutate (Array.copy (Ddg.ops ddg)) (Ddg.edges ddg) in
          assert_flagged
            (Printf.sprintf "%s: %s" b.WL.Benchspec.name what)
            severity pass
            (A.Lint_ddg.lint_raw ops edges))
        ddg_mutations)
    WL.Mediabench.all

let test_independent_recmii () =
  List.iter
    (fun (b : WL.Benchspec.t) ->
      List.iter
        (fun (loop : Loop.t) ->
          let g = loop.Loop.ddg in
          let latency = Ddg.default_latency g in
          check ci
            (Printf.sprintf "%s/%s" b.WL.Benchspec.name loop.Loop.name)
            (Mii.rec_mii g ~latency)
            (A.Lint_ddg.independent_rec_mii g ~latency))
        (WL.Benchspec.loops b))
    WL.Mediabench.all

(* ---------------------------------------------- schedule corruptions *)

let mem ?(stride = 4) symbol = Mem_access.make ~symbol ~stride ~granularity:4 ()

(* load(c0) -> add(c1) -> store(c1): the forced split makes the engine
   insert a copy for the load's value. *)
let cross_cluster_case () =
  let b = Builder.create () in
  let l = Builder.add b ~dests:[ 0 ] ~mem:(mem "x") Opcode.Load in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let s = Builder.add b ~srcs:[ 1 ] ~mem:(mem "y") Opcode.Store in
  Builder.flow b l c;
  Builder.flow b c s;
  let g = Builder.build b in
  let hooks =
    {
      Engine.reset = (fun () -> ());
      choice = (fun op -> Engine.Forced (if op = 0 then 0 else 1));
      on_scheduled = (fun ~op:_ ~cluster:_ -> ());
    }
  in
  match Engine.schedule cfg g ~latency:(Ddg.default_latency g) ~hooks () with
  | None -> Alcotest.fail "cross-cluster case did not schedule"
  | Some sched ->
      check cb "engine inserted a copy" true (Schedule.n_copies sched > 0);
      (g, sched)

let clone (s : Schedule.t) =
  {
    s with
    Schedule.cluster = Array.copy s.Schedule.cluster;
    start = Array.copy s.Schedule.start;
  }

let verify g sched =
  A.Verify_schedule.verify cfg g ~latency:(Ddg.default_latency g) sched

let test_schedule_mutations () =
  let g, sched = cross_cluster_case () in
  assert_clean "pristine cross-cluster schedule" (verify g sched);
  let copy0 = List.hd sched.Schedule.copies in
  (* Dropping every copy starves the cross-cluster consumer. *)
  assert_flagged "dropped copies" D.Error "sched/copy-coverage"
    (verify g { (clone sched) with Schedule.copies = [] });
  (* A copy issued before its producer's value exists. *)
  assert_flagged "premature copy" D.Error "sched/copy-early"
    (verify g
       {
         (clone sched) with
         Schedule.copies =
           List.map
             (fun (cp : Schedule.copy) ->
               { cp with Schedule.start = sched.Schedule.start.(0) })
             sched.Schedule.copies;
       });
  (* A copy departing from a cluster that does not hold the value. *)
  assert_flagged "copy from wrong cluster" D.Error "sched/copy-cluster"
    (verify g
       {
         (clone sched) with
         Schedule.copies =
           List.map
             (fun cp ->
               { cp with Schedule.from_cluster = cp.Schedule.to_cluster })
             sched.Schedule.copies;
       });
  (* A copy nobody reads. *)
  assert_flagged "orphan copy" D.Warn "sched/orphan-copy"
    (verify g
       {
         (clone sched) with
         Schedule.copies =
           { copy0 with Schedule.to_cluster = 2 } :: sched.Schedule.copies;
       });
  (* More simultaneous copies than the half-frequency buses can carry. *)
  assert_flagged "bus oversubscription" D.Error "sched/bus-capacity"
    (verify g
       {
         (clone sched) with
         Schedule.copies =
           List.init (cfg.Config.n_reg_buses + 1) (fun _ -> copy0)
           @ sched.Schedule.copies;
       });
  (* Negative start cycle. *)
  let corrupt = clone sched in
  corrupt.Schedule.start.(1) <- -1;
  assert_flagged "negative start" D.Error "sched/range" (verify g corrupt);
  (* Same-cluster dependence scheduled too tight. *)
  let corrupt = clone sched in
  corrupt.Schedule.start.(2) <- corrupt.Schedule.start.(1);
  assert_flagged "dependence violation" D.Error "sched/dependence"
    (verify g corrupt)

let test_mem_colocation () =
  (* load -> add -> store on one symbol with a loop-carried memory
     dependence: the chain must stay on one cluster. *)
  let b = Builder.create () in
  let l = Builder.add b ~dests:[ 0 ] ~mem:(mem "x") Opcode.Load in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let s = Builder.add b ~srcs:[ 1 ] ~mem:(mem "x") Opcode.Store in
  Builder.flow b l c;
  Builder.flow b c s;
  Builder.dep b ~kind:Edge.Mem_flow ~distance:1 s l;
  let g = Builder.build b in
  match Engine.schedule cfg g ~latency:(Ddg.default_latency g) () with
  | None -> Alcotest.fail "memory chain did not schedule"
  | Some sched ->
      assert_clean "pristine chain schedule" (verify g sched);
      let corrupt = clone sched in
      corrupt.Schedule.cluster.(2) <-
        (corrupt.Schedule.cluster.(2) + 1) mod cfg.Config.n_clusters;
      assert_flagged "memory op moved off its chain" D.Error
        "sched/mem-colocate" (verify g corrupt)

let test_fu_capacity () =
  (* Two independent loads forced onto cluster 0 (one memory unit), then
     collapsed onto the same cycle. *)
  let b = Builder.create () in
  let l1 = Builder.add b ~dests:[ 0 ] ~mem:(mem "a") Opcode.Load in
  let s1 = Builder.add b ~srcs:[ 0 ] ~mem:(mem "b") Opcode.Store in
  let l2 = Builder.add b ~dests:[ 1 ] ~mem:(mem "c") Opcode.Load in
  let s2 = Builder.add b ~srcs:[ 1 ] ~mem:(mem "d") Opcode.Store in
  Builder.flow b l1 s1;
  Builder.flow b l2 s2;
  let g = Builder.build b in
  let hooks =
    {
      Engine.reset = (fun () -> ());
      choice = (fun _ -> Engine.Forced 0);
      on_scheduled = (fun ~op:_ ~cluster:_ -> ());
    }
  in
  match Engine.schedule cfg g ~latency:(Ddg.default_latency g) ~hooks () with
  | None -> Alcotest.fail "two-stream case did not schedule"
  | Some sched ->
      assert_clean "pristine two-stream schedule" (verify g sched);
      let corrupt = clone sched in
      corrupt.Schedule.start.(2) <- corrupt.Schedule.start.(0);
      assert_flagged "two loads on one memory unit" D.Error
        "sched/fu-capacity" (verify g corrupt)

(* ------------------------------------------------ config corruptions *)

let test_config_mutations () =
  assert_clean "pristine config" (A.Check_config.check cfg);
  assert_flagged "interleaving does not divide the cache" D.Error
    "config/geometry"
    (A.Check_config.check { cfg with Config.interleaving_factor = 3 });
  assert_flagged "AB set wider than the buffer" D.Error "config/geometry"
    (A.Check_config.check
       { cfg with Config.ab_entries = 2; Config.ab_associativity = 8 });
  assert_flagged "non-ascending latency ladder" D.Error
    "config/latency-ladder"
    (A.Check_config.check { cfg with Config.lat_remote_hit = 0 });
  assert_flagged "collapsed latency levels" D.Warn "config/latency-ladder"
    (A.Check_config.check
       { cfg with Config.lat_remote_hit = cfg.Config.lat_local_hit });
  assert_flagged "zero clusters" D.Error "config/positive"
    (A.Check_config.check { cfg with Config.n_clusters = 0 })

(* -------------------------------------------- simulation corruptions *)

let audit ?(arch = Machine.Word_interleaved { attraction_buffers = true })
    ?(n_mem_ops = 2) ?(trip = 3) ?(ii = 2) ?(stage_count = 1) stats =
  A.Audit_sim.audit_stats ~arch ~n_mem_ops ~trip ~ii ~stage_count stats

let well_formed_stats ?(trip = 3) ?(n_mem_ops = 2) ?(ii = 2)
    ?(stage_count = 1) () =
  let stats = Stats.create () in
  for _ = 1 to trip * n_mem_ops do
    Stats.count_access stats Vliw_arch.Access.Local_hit
  done;
  Stats.add_compute stats ((trip + stage_count - 1) * ii);
  stats

let test_stats_mutations () =
  assert_clean "pristine stats" (audit (well_formed_stats ()));
  (* One access short of trip x mem-ops. *)
  let stats = well_formed_stats ~n_mem_ops:1 () in
  assert_flagged "dropped access" D.Error "sim/access-count"
    (audit stats);
  (* Compute cycles that cannot come from (trip + SC - 1) x II. *)
  let stats = well_formed_stats () in
  Stats.add_compute stats 1;
  assert_flagged "compute drift" D.Error "sim/compute" (audit stats);
  (* Stall time booked on a local hit. *)
  let stats = well_formed_stats () in
  Stats.count_stall stats Vliw_arch.Access.Local_hit ~cycles:3;
  assert_flagged "local-hit stall" D.Error "sim/local-hit-stall"
    (audit stats);
  (* A remote hit on a unified cache. *)
  let stats = well_formed_stats ~n_mem_ops:1 () in
  for _ = 1 to 3 do
    Stats.count_access stats Vliw_arch.Access.Remote_hit
  done;
  assert_flagged "remote hit on unified" D.Error "sim/class"
    (audit ~arch:(Machine.Unified { slow = true }) stats);
  (* A factor counted more often than remote hits occurred. *)
  let stats = well_formed_stats ~n_mem_ops:1 () in
  for _ = 1 to 3 do
    Stats.count_access stats Vliw_arch.Access.Remote_hit
  done;
  for _ = 1 to 5 do
    Stats.count_stall_factor stats Stats.Granularity
  done;
  assert_flagged "overcounted factor" D.Error "sim/factor-bound"
    (audit stats)

let test_traffic_mutations () =
  let arch = Machine.Word_interleaved { attraction_buffers = true } in
  let stats = Stats.create () in
  Stats.count_access stats Vliw_arch.Access.Remote_hit;
  Stats.count_access stats Vliw_arch.Access.Remote_hit;
  let balanced =
    [ ("remote words", 2); ("block fills", 0); ("attractions", 0) ]
  in
  assert_clean "balanced traffic"
    (A.Audit_sim.audit_traffic ~arch ~stats ~traffic:balanced ());
  assert_flagged "unknown counter" D.Error "sim/traffic-keys"
    (A.Audit_sim.audit_traffic ~arch ~stats
       ~traffic:(("bogus", 1) :: balanced) ());
  assert_flagged "remote words out of balance" D.Error "sim/remote-balance"
    (A.Audit_sim.audit_traffic ~arch ~stats
       ~traffic:[ ("remote words", 5); ("block fills", 0); ("attractions", 0) ]
       ());
  assert_flagged "fills without misses" D.Error "sim/fill-balance"
    (A.Audit_sim.audit_traffic ~arch ~stats
       ~traffic:[ ("remote words", 2); ("block fills", 4); ("attractions", 0) ]
       ());
  assert_flagged "attractions with buffers off" D.Error
    "sim/attraction-bound"
    (A.Audit_sim.audit_traffic
       ~arch:(Machine.Word_interleaved { attraction_buffers = false })
       ~stats
       ~traffic:[ ("remote words", 2); ("block fills", 0); ("attractions", 1) ]
       ());
  assert_flagged "unwatched bus transactions" D.Error "sim/snoop-balance"
    (A.Audit_sim.audit_traffic ~arch:Machine.Multivliw ~stats
       ~traffic:
         [
           ("invalidations", 0); ("cache-to-cache", 2); ("memory fills", 0);
           ("snoops", 1);
         ]
       ())

(* ------------------------------------------------- end-to-end driver *)

let test_analyze_one_bench () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let summary = A.Analyze.run_all ~benchmarks:[ "gsmdec" ] ppf in
  Format.pp_print_flush ppf ();
  check cb "no errors" true (A.Analyze.ok summary);
  check ci "benchmarks" 1 summary.A.Analyze.benchmarks;
  check ci "loop compiles" 16 summary.A.Analyze.loops;
  check ci "simulation cells" 6 summary.A.Analyze.cells;
  check cb "report mentions the verdict" true
    (let s = Buffer.contents buf in
     let needle = "all invariants hold" in
     let nl = String.length needle in
     let rec scan i =
       i + nl <= String.length s
       && (String.sub s i nl = needle || scan (i + 1))
     in
     scan 0)

let suite =
  [
    Alcotest.test_case "ddg mutations x suite" `Quick test_ddg_mutations;
    Alcotest.test_case "independent RecMII agrees" `Quick
      test_independent_recmii;
    Alcotest.test_case "schedule mutations" `Quick test_schedule_mutations;
    Alcotest.test_case "memory co-location" `Quick test_mem_colocation;
    Alcotest.test_case "FU capacity" `Quick test_fu_capacity;
    Alcotest.test_case "config mutations" `Quick test_config_mutations;
    Alcotest.test_case "stats mutations" `Quick test_stats_mutations;
    Alcotest.test_case "traffic mutations" `Quick test_traffic_mutations;
    Alcotest.test_case "analyze driver on one benchmark" `Quick
      test_analyze_one_bench;
  ]
