(* Unit tests for the synthetic Mediabench suite: PRNG, layouts,
   kernel generation, profiling and the benchmark roster. *)

open Vliw_ir
module Config = Vliw_arch.Config
module Profile = Vliw_core.Profile
module WL = Vliw_workloads

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cfg = Config.default

(* --------------------------------------------------------------- prng *)

let test_prng_determinism () =
  let a = WL.Prng.create ~seed:42 and b = WL.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check ci "same stream" (WL.Prng.next_int a ~bound:1000)
      (WL.Prng.next_int b ~bound:1000)
  done

let test_prng_bounds () =
  let t = WL.Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = WL.Prng.next_int t ~bound:7 in
    check cb "in range" true (v >= 0 && v < 7);
    let f = WL.Prng.next_float t in
    check cb "float in range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.next_int: bound <= 0") (fun () ->
      ignore (WL.Prng.next_int t ~bound:0))

let test_prng_hash_non_negative () =
  for a = -50 to 50 do
    check cb "hash2 non-negative" true (WL.Prng.hash2 a (a * 7919) >= 0)
  done

(* ------------------------------------------------------------- layout *)

let heap_access symbol =
  Mem_access.make ~storage:Mem_access.Heap ~symbol ~stride:4 ~granularity:4
    ~footprint:1024 ()

let global_access symbol =
  Mem_access.make ~symbol ~stride:4 ~granularity:4 ~footprint:1024 ()

let test_layout_global_stability () =
  let p = WL.Layout.create cfg ~aligned:false ~run:WL.Layout.Profile_run ~seed:7 in
  let e = WL.Layout.create cfg ~aligned:false ~run:WL.Layout.Execution_run ~seed:7 in
  let m = global_access "g" in
  check ci "global base identical across runs" (WL.Layout.base_of p m)
    (WL.Layout.base_of e m)

let test_layout_heap_moves () =
  let p = WL.Layout.create cfg ~aligned:false ~run:WL.Layout.Profile_run ~seed:7 in
  let e = WL.Layout.create cfg ~aligned:false ~run:WL.Layout.Execution_run ~seed:7 in
  let m = heap_access "h" in
  check cb "heap base moves between runs" true
    (WL.Layout.base_of p m <> WL.Layout.base_of e m)

let test_layout_alignment () =
  let t = WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed:7 in
  let ni = Config.max_unroll cfg in
  List.iter
    (fun sym ->
      check ci
        (Printf.sprintf "aligned heap base of %s" sym)
        0
        (WL.Layout.base_of t (heap_access sym) mod ni))
    [ "a"; "b"; "c"; "d" ]

let test_layout_strided_addresses () =
  let t = WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:7 in
  let m = heap_access "s" in
  let a0 = WL.Layout.address t m ~op:0 ~iter:0 in
  let a1 = WL.Layout.address t m ~op:0 ~iter:1 in
  check ci "stride respected" 4 (a1 - a0);
  (* Footprint wrap: iteration footprint/stride lands back on base. *)
  let awrap = WL.Layout.address t m ~op:0 ~iter:(1024 / 4) in
  check ci "wraps inside the footprint" a0 awrap

let test_layout_indirect_in_footprint () =
  let t = WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:7 in
  let m =
    Mem_access.make ~storage:Mem_access.Heap ~symbol:"ind" ~stride:2
      ~granularity:2 ~footprint:512 ~indirect:true ()
  in
  let base = WL.Layout.base_of t m in
  for iter = 0 to 200 do
    let a = WL.Layout.address t m ~op:3 ~iter in
    check cb "inside footprint" true (a >= base && a < base + 512);
    check ci "granularity aligned" 0 ((a - base) mod 2)
  done

(* ------------------------------------------------------------- kernel *)

let test_kernel_structure () =
  let spec =
    WL.Kernel.make ~compute_per_load:2 ~name:"k" ~trip_count:64
      [
        WL.Kernel.load "a";
        WL.Kernel.store "b";
      ]
  in
  let loop = WL.Kernel.build spec in
  (* load + 2 compute + store *)
  check ci "op count" 4 (Ddg.n_ops loop.Loop.ddg);
  check ci "memory ops" 2 (List.length (Ddg.memory_ops loop.Loop.ddg));
  check ci "trip" 64 loop.Loop.trip_count

let test_kernel_chain_edges () =
  let spec =
    WL.Kernel.make ~compute_per_load:0 ~name:"k" ~trip_count:64
      [
        WL.Kernel.load ~chain:0 "a";
        WL.Kernel.load ~chain:0 "b";
        WL.Kernel.store ~chain:0 "c";
        WL.Kernel.load "free";
      ]
  in
  let loop = WL.Kernel.build spec in
  let chains = Vliw_core.Chains.build loop.Loop.ddg in
  check ci "chained ops plus the free one" 2 (Vliw_core.Chains.n_chains chains);
  check ci "chain of three" 3 (Vliw_core.Chains.longest chains)

let test_kernel_carried_recurrence () =
  let spec =
    WL.Kernel.make ~compute_per_load:2 ~name:"k" ~trip_count:64
      [ WL.Kernel.load "x"; WL.Kernel.store ~carried:true "x" ]
  in
  let loop = WL.Kernel.build spec in
  let recs = Scc.recurrences loop.Loop.ddg in
  check ci "one recurrence" 1 (List.length recs);
  (* The recurrence spans load, computes and store. *)
  check ci "recurrence spans the chain" 4 (List.length (List.hd recs))

let test_kernel_self_carried () =
  let spec =
    WL.Kernel.make ~compute_per_load:1 ~name:"k" ~trip_count:64
      [ WL.Kernel.load ~self_carried:true "p" ]
  in
  let loop = WL.Kernel.build spec in
  let recs = Scc.recurrences loop.Loop.ddg in
  check ci "self recurrence" 1 (List.length recs)

let test_kernel_accumulators () =
  let spec =
    WL.Kernel.make ~compute_per_load:1 ~accumulators:2 ~name:"k"
      ~trip_count:64 [ WL.Kernel.load "a" ]
  in
  let loop = WL.Kernel.build spec in
  check ci "two accumulator recurrences" 2
    (List.length (Scc.recurrences loop.Loop.ddg))

let test_kernel_empty_rejected () =
  Alcotest.check_raises "no refs"
    (Invalid_argument "Kernel.build: no memory references") (fun () ->
      ignore (WL.Kernel.build (WL.Kernel.make ~name:"k" ~trip_count:1 [])))

(* ---------------------------------------------------------- profiling *)

let test_profiling_small_footprint_hits () =
  let layout = WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:7 in
  let spec =
    WL.Kernel.make ~name:"k" ~trip_count:4096
      [ WL.Kernel.load ~footprint:512 "hot" ]
  in
  let loop = WL.Kernel.build spec in
  let profile = WL.Profiling.profile_loop cfg layout loop in
  match Profile.get profile 0 with
  | None -> Alcotest.fail "load not profiled"
  | Some p ->
      check cb "hot array mostly hits" true (p.Profile.hit_rate > 0.95);
      let sum = Array.fold_left ( +. ) 0.0 p.Profile.cluster_fractions in
      check (Alcotest.float 1e-6) "fractions sum to one" 1.0 sum

let test_profiling_stride16_concentrated () =
  (* The gsmdec example: 16-byte stride + aligned base = one cluster. *)
  let layout = WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:7 in
  let spec =
    WL.Kernel.make ~name:"k" ~trip_count:1024
      [
        WL.Kernel.load ~storage:Mem_access.Heap ~granularity:2 ~stride:16
          ~footprint:240 "dyn";
      ]
  in
  let loop = WL.Kernel.build spec in
  let profile = WL.Profiling.profile_loop cfg layout loop in
  match Profile.get profile 0 with
  | None -> Alcotest.fail "load not profiled"
  | Some p ->
      check (Alcotest.float 1e-6) "distribution 1.0" 1.0
        (Profile.distribution p)

let test_profiling_unaligned_cluster_moves () =
  (* Without alignment the same operation's preferred cluster usually
     moves between the two runs - the motivation for padding. *)
  let spec =
    WL.Kernel.make ~name:"k" ~trip_count:1024
      [
        WL.Kernel.load ~storage:Mem_access.Heap ~granularity:2 ~stride:16
          ~footprint:240 "gsm_dyn_test";
      ]
  in
  let loop = WL.Kernel.build spec in
  let pref run =
    let layout = WL.Layout.create cfg ~aligned:false ~run ~seed:7 in
    match Profile.get (WL.Profiling.profile_loop cfg layout loop) 0 with
    | Some p -> Profile.preferred_cluster p
    | None -> Alcotest.fail "load not profiled"
  in
  (* Not guaranteed for every symbol; this one is chosen to differ. *)
  check cb "preferred cluster moves without alignment" true
    (pref WL.Layout.Profile_run <> pref WL.Layout.Execution_run)

(* ----------------------------------------------------------- suite *)

let test_mediabench_roster () =
  check ci "fourteen benchmarks" 14 (List.length WL.Mediabench.all);
  let names = WL.Mediabench.names in
  check ci "unique names" 14 (List.length (List.sort_uniq compare names));
  check cb "find works" true
    ((WL.Mediabench.find "gsmdec").WL.Benchspec.name = "gsmdec")

let test_mediabench_builds () =
  List.iter
    (fun b ->
      let loops = WL.Benchspec.loops b in
      check cb (b.WL.Benchspec.name ^ " has loops") true (loops <> []);
      List.iter
        (fun (l : Loop.t) ->
          check cb
            (Printf.sprintf "%s/%s trip count multiple of max unroll"
               b.WL.Benchspec.name l.Loop.name)
            true
            (l.Loop.trip_count mod Config.max_unroll cfg = 0))
        loops)
    WL.Mediabench.all

let test_mediabench_characteristics () =
  let dominant name = WL.Benchspec.dominant_size (WL.Mediabench.find name) in
  check ci "jpegdec is byte-dominated" 1 (fst (dominant "jpegdec"));
  check ci "gsmdec is 2-byte" 2 (fst (dominant "gsmdec"));
  check ci "mpeg2dec is double-heavy" 8 (fst (dominant "mpeg2dec"));
  check ci "pgpdec is word-dominated" 4 (fst (dominant "pgpdec"));
  check cb "pegwitdec mostly indirect" true
    (WL.Benchspec.indirect_share (WL.Mediabench.find "pegwitdec") > 0.7);
  check cb "pegwitenc mostly direct" true
    (WL.Benchspec.indirect_share (WL.Mediabench.find "pegwitenc") < 0.3)

let suite =
  [
    ("prng: deterministic", `Quick, test_prng_determinism);
    ("prng: bounds", `Quick, test_prng_bounds);
    ("prng: hash2 non-negative", `Quick, test_prng_hash_non_negative);
    ("layout: globals are stable", `Quick, test_layout_global_stability);
    ("layout: heap moves between runs", `Quick, test_layout_heap_moves);
    ("layout: alignment pads to NxI", `Quick, test_layout_alignment);
    ("layout: strided addresses", `Quick, test_layout_strided_addresses);
    ("layout: indirect stays in footprint", `Quick, test_layout_indirect_in_footprint);
    ("kernel: structure", `Quick, test_kernel_structure);
    ("kernel: chain edges", `Quick, test_kernel_chain_edges);
    ("kernel: carried store recurrence", `Quick, test_kernel_carried_recurrence);
    ("kernel: self-carried load recurrence", `Quick, test_kernel_self_carried);
    ("kernel: accumulators", `Quick, test_kernel_accumulators);
    ("kernel: empty spec rejected", `Quick, test_kernel_empty_rejected);
    ("profiling: hot arrays hit", `Quick, test_profiling_small_footprint_hits);
    ("profiling: stride 16 concentrates", `Quick, test_profiling_stride16_concentrated);
    ("profiling: unaligned preferred cluster moves", `Quick, test_profiling_unaligned_cluster_moves);
    ("mediabench: roster", `Quick, test_mediabench_roster);
    ("mediabench: loops build", `Quick, test_mediabench_builds);
    ("mediabench: characteristics", `Quick, test_mediabench_characteristics);
  ]
