(* Unit tests for the vliw_ir substrate: opcodes, operations, edges,
   DDGs, SCC/recurrence analysis, MII and unrolling. *)

open Vliw_ir

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* --------------------------------------------------------------- DDGs *)

(* A diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. *)
let diamond () =
  let b = Builder.create () in
  let n0 = Builder.add b Opcode.Int_alu ~dests:[ 0 ] in
  let n1 = Builder.add b Opcode.Int_alu ~dests:[ 1 ] in
  let n2 = Builder.add b Opcode.Int_alu ~dests:[ 2 ] in
  let n3 = Builder.add b Opcode.Int_alu ~dests:[ 3 ] in
  Builder.flow b n0 n1;
  Builder.flow b n0 n2;
  Builder.flow b n1 n3;
  Builder.flow b n2 n3;
  Builder.build b

(* A 2-node recurrence with distance 1 and an extra feeder node. *)
let small_recurrence () =
  let b = Builder.create () in
  let n0 = Builder.add b Opcode.Int_alu in
  let n1 = Builder.add b Opcode.Int_mul in
  let n2 = Builder.add b Opcode.Int_alu in
  Builder.flow b n0 n1;
  Builder.flow b n1 n2;
  Builder.flow b ~distance:1 n2 n1;
  Builder.build b

let mem symbol = Mem_access.make ~symbol ~stride:4 ~granularity:4 ()

(* ------------------------------------------------------------- opcode *)

let test_fu_class () =
  check cb "load is memory" true (Opcode.is_memory Opcode.Load);
  check cb "store is memory" true (Opcode.is_memory Opcode.Store);
  check cb "add is not memory" false (Opcode.is_memory Opcode.Int_alu);
  Alcotest.(check string) "copy on int fu" "Int"
    (match Opcode.fu_class Opcode.Copy with
    | Opcode.Int_fu -> "Int"
    | Opcode.Fp_fu -> "Fp"
    | Opcode.Mem_fu -> "Mem");
  check ci "div latency" 6 (Opcode.default_latency Opcode.Int_div);
  check ci "store latency" 1 (Opcode.default_latency Opcode.Store)

let test_opcode_strings () =
  List.iter
    (fun op ->
      check cb
        (Printf.sprintf "to_string %s non-empty" (Opcode.to_string op))
        true
        (String.length (Opcode.to_string op) > 0))
    [
      Opcode.Int_alu; Opcode.Int_mul; Opcode.Int_div; Opcode.Fp_alu;
      Opcode.Fp_mul; Opcode.Fp_div; Opcode.Load; Opcode.Store; Opcode.Copy;
    ]

(* ---------------------------------------------------------- operation *)

let test_operation_validation () =
  Alcotest.check_raises "memory opcode needs descriptor"
    (Invalid_argument "Operation.make: memory opcode without access descriptor")
    (fun () -> ignore (Operation.make ~id:0 Opcode.Load));
  Alcotest.check_raises "non-memory opcode rejects descriptor"
    (Invalid_argument "Operation.make: access descriptor on non-memory opcode")
    (fun () -> ignore (Operation.make ~id:0 ~mem:(mem "a") Opcode.Int_alu))

let test_operation_predicates () =
  let l = Operation.make ~id:0 ~mem:(mem "a") Opcode.Load in
  let s = Operation.make ~id:1 ~mem:(mem "a") Opcode.Store in
  check cb "load is_load" true (Operation.is_load l);
  check cb "load not is_store" false (Operation.is_store l);
  check cb "store is_store" true (Operation.is_store s);
  check cb "store is memory" true (Operation.is_memory s);
  check ci "with_id" 7 (Operation.with_id l 7).Operation.id

(* --------------------------------------------------------------- edge *)

let test_edge () =
  Alcotest.check_raises "negative distance rejected"
    (Invalid_argument "Edge.make: negative distance") (fun () ->
      ignore (Edge.make ~distance:(-1) ~src:0 ~dst:1 ()));
  check cb "mem kind" true (Edge.is_memory_kind Edge.Mem_unresolved);
  check cb "reg kind" false (Edge.is_memory_kind Edge.Reg_anti)

(* ---------------------------------------------------------------- ddg *)

let test_ddg_structure () =
  let g = diamond () in
  check ci "n_ops" 4 (Ddg.n_ops g);
  check ci "succs of 0" 2 (List.length (Ddg.succs g 0));
  check ci "preds of 3" 2 (List.length (Ddg.preds g 3));
  check ci "no memory ops" 0 (List.length (Ddg.memory_ops g))

let test_ddg_validation () =
  let op i = Operation.make ~id:i Opcode.Int_alu in
  Alcotest.check_raises "non-dense ids"
    (Invalid_argument "Ddg.make: non-dense ids") (fun () ->
      ignore (Ddg.make [| Operation.make ~id:1 Opcode.Int_alu |] []));
  Alcotest.check_raises "edge out of range"
    (Invalid_argument "Ddg.make: edge endpoint out of range") (fun () ->
      ignore (Ddg.make [| op 0 |] [ Edge.make ~src:0 ~dst:3 () ]))

let test_effective_latency () =
  let g = small_recurrence () in
  let latency i = Ddg.default_latency g i in
  let e kind = Edge.make ~kind ~src:1 ~dst:2 () in
  check ci "reg flow uses producer latency" 2
    (Ddg.effective_latency ~latency (e Edge.Reg_flow));
  check ci "anti is free" 0 (Ddg.effective_latency ~latency (e Edge.Reg_anti));
  check ci "output serializes" 1
    (Ddg.effective_latency ~latency (e Edge.Reg_out));
  check ci "memory serializes" 1
    (Ddg.effective_latency ~latency (e Edge.Mem_flow))

(* ---------------------------------------------------------------- scc *)

let test_scc_dag () =
  let g = diamond () in
  check ci "four singletons" 4 (List.length (Scc.components g));
  check ci "no recurrences" 0 (List.length (Scc.recurrences g))

let test_scc_cycle () =
  let g = small_recurrence () in
  let recs = Scc.recurrences g in
  check ci "one recurrence" 1 (List.length recs);
  check ci "two nodes in it" 2 (List.length (List.hd recs));
  let comp = Scc.component_of g in
  check cb "1 and 2 share component" true (comp 1 = comp 2);
  check cb "0 is alone" true (comp 0 <> comp 1)

let test_scc_self_loop () =
  let b = Builder.create () in
  let n0 = Builder.add b Opcode.Int_alu in
  Builder.flow b ~distance:1 n0 n0;
  let g = Builder.build b in
  check ci "self loop is a recurrence" 1 (List.length (Scc.recurrences g))

let test_scc_partition () =
  let g = small_recurrence () in
  let all = List.concat (Scc.components g) in
  check ci "components partition nodes" (Ddg.n_ops g)
    (List.length (List.sort_uniq compare all))

(* ---------------------------------------------------------------- mii *)

let test_mii_simple_cycle () =
  let g = small_recurrence () in
  let latency i = Ddg.default_latency g i in
  (* Cycle: n1 (mul, lat 2) -> n2 (add, lat 1) -> n1 with distance 1:
     II = 2 + 1 = 3. *)
  check ci "rec_mii" 3 (Mii.rec_mii g ~latency);
  check cb "feasible at 3" true
    (Mii.feasible g ~latency ~nodes:[ 1; 2 ] ~ii:3);
  check cb "infeasible at 2" false
    (Mii.feasible g ~latency ~nodes:[ 1; 2 ] ~ii:2)

let test_mii_dag () =
  let g = diamond () in
  check ci "dag has rec_mii 1" 1
    (Mii.rec_mii g ~latency:(Ddg.default_latency g))

let test_mii_infeasible () =
  let b = Builder.create () in
  let n0 = Builder.add b Opcode.Int_alu in
  Builder.flow b n0 n0;
  (* zero-distance positive cycle *)
  let g = Builder.build b in
  Alcotest.check_raises "zero-distance cycle" Mii.Infeasible (fun () ->
      ignore (Mii.recurrence_ii g ~latency:(Ddg.default_latency g) [ n0 ]))

let test_mii_latency_scaling () =
  let g = small_recurrence () in
  let base = Mii.rec_mii g ~latency:(Ddg.default_latency g) in
  let heavier i = Ddg.default_latency g i + 5 in
  check cb "larger latency, larger II" true
    (Mii.rec_mii g ~latency:heavier > base)

let test_mii_solver_matches_oneshot () =
  let g = small_recurrence () in
  let latency i = Ddg.default_latency g i in
  let nodes = List.hd (Scc.recurrences g) in
  let s = Mii.solver g ~nodes in
  check ci "solver = one-shot" (Mii.recurrence_ii g ~latency nodes)
    (Mii.solve s ~latency)

(* ------------------------------------------------------------- unroll *)

let mem_loop () =
  let b = Builder.create () in
  let l =
    Builder.add b ~dests:[ 0 ]
      ~mem:(Mem_access.make ~symbol:"a" ~offset:8 ~stride:4 ~granularity:4 ())
      Opcode.Load
  in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let s =
    Builder.add b ~srcs:[ 1 ]
      ~mem:(Mem_access.make ~symbol:"b" ~stride:4 ~granularity:4 ())
      Opcode.Store
  in
  Builder.flow b l c;
  Builder.flow b c s;
  Builder.dep b ~kind:Edge.Mem_flow ~distance:2 s l;
  Builder.build b

let test_unroll_identity () =
  let g = mem_loop () in
  check cb "factor 1 is identity" true (Unroll.ddg g ~factor:1 == g)

let test_unroll_counts () =
  let g = mem_loop () in
  let u = Unroll.ddg g ~factor:4 in
  check ci "ops x4" (4 * Ddg.n_ops g) (Ddg.n_ops u);
  check ci "edges x4" (4 * List.length (Ddg.edges g))
    (List.length (Ddg.edges u))

let test_unroll_mem_rewrite () =
  let g = mem_loop () in
  let u = Unroll.ddg g ~factor:4 in
  (* Copy k of the load (original id 0) has id k. *)
  List.iter
    (fun k ->
      match (Ddg.op u k).Operation.mem with
      | Some m ->
          check ci
            (Printf.sprintf "offset of copy %d" k)
            (8 + (4 * k))
            m.Mem_access.offset;
          check ci "stride scaled" 16 m.Mem_access.stride
      | None -> Alcotest.fail "expected memory op")
    [ 0; 1; 2; 3 ]

let test_unroll_distance_invariant () =
  (* For every original edge the distances of its unrolled copies sum to
     the original distance. *)
  let g = mem_loop () in
  let factor = 4 in
  let u = Unroll.ddg g ~factor in
  let total_distance edges =
    List.fold_left (fun acc (e : Edge.t) -> acc + e.Edge.distance) 0 edges
  in
  check ci "total distance preserved"
    (total_distance (Ddg.edges g))
    (total_distance (Ddg.edges u))

let test_unroll_id_mapping () =
  let factor = 4 in
  for id = 0 to 11 do
    let orig = Unroll.original_id ~factor id in
    let k = Unroll.copy_index ~factor id in
    check ci "roundtrip" id ((orig * factor) + k)
  done

let test_loop_unrolled () =
  let g = mem_loop () in
  let loop = Loop.make ~name:"t" ~trip_count:64 g in
  let u = Loop.unrolled loop ~factor:4 in
  check ci "trip divided" 16 u.Loop.trip_count;
  check ci "ops multiplied" 12 (Ddg.n_ops u.Loop.ddg);
  Alcotest.check_raises "bad trip count"
    (Invalid_argument "Loop.make: non-positive trip count") (fun () ->
      ignore (Loop.make ~name:"t" ~trip_count:0 g))

let suite =
  [
    ("opcode: fu classes and latencies", `Quick, test_fu_class);
    ("opcode: printable", `Quick, test_opcode_strings);
    ("operation: descriptor validation", `Quick, test_operation_validation);
    ("operation: predicates", `Quick, test_operation_predicates);
    ("edge: validation and kinds", `Quick, test_edge);
    ("ddg: structure", `Quick, test_ddg_structure);
    ("ddg: validation", `Quick, test_ddg_validation);
    ("ddg: effective latency per kind", `Quick, test_effective_latency);
    ("scc: dag has only singletons", `Quick, test_scc_dag);
    ("scc: cycle detected", `Quick, test_scc_cycle);
    ("scc: self loop is a recurrence", `Quick, test_scc_self_loop);
    ("scc: components partition", `Quick, test_scc_partition);
    ("mii: simple cycle", `Quick, test_mii_simple_cycle);
    ("mii: dag", `Quick, test_mii_dag);
    ("mii: infeasible zero-distance cycle", `Quick, test_mii_infeasible);
    ("mii: monotone in latency", `Quick, test_mii_latency_scaling);
    ("mii: solver consistency", `Quick, test_mii_solver_matches_oneshot);
    ("unroll: factor one", `Quick, test_unroll_identity);
    ("unroll: counts", `Quick, test_unroll_counts);
    ("unroll: memory rewrite", `Quick, test_unroll_mem_rewrite);
    ("unroll: distance invariant", `Quick, test_unroll_distance_invariant);
    ("unroll: id mapping", `Quick, test_unroll_id_mapping);
    ("loop: unrolled bookkeeping", `Quick, test_loop_unrolled);
  ]
