(* Unit tests for the memory-disambiguation substrate. *)

open Vliw_ir
module Disambiguation = Vliw_core.Disambiguation

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let access ?(offset = 0) ?(stride = 4) ?(granularity = 4) ?(indirect = false)
    symbol =
  Mem_access.make ~symbol ~offset ~stride ~granularity ~indirect ()

let two_op_ddg a_mem a_store b_mem b_store =
  let b = Builder.create () in
  let add mem is_store =
    if is_store then Builder.add b ~srcs:[ 0 ] ~mem Opcode.Store
    else Builder.add b ~dests:[ Builder.fresh_reg b ] ~mem Opcode.Load
  in
  let _ = add a_mem a_store in
  let _ = add b_mem b_store in
  Builder.build b

let edges_of g = Disambiguation.dependences g

let test_different_symbols_independent () =
  let g = two_op_ddg (access "a") true (access "b") false in
  check ci "no edge across symbols" 0 (List.length (edges_of g))

let test_loads_never_depend () =
  let g = two_op_ddg (access "a") false (access "a") false in
  check ci "load-load pairs ignored" 0 (List.length (edges_of g))

let test_same_address_same_iteration () =
  let g = two_op_ddg (access "a") true (access "a") false in
  match edges_of g with
  | [ e ] ->
      check cb "store -> load" true (e.Edge.src = 0 && e.Edge.dst = 1);
      check ci "distance 0" 0 e.Edge.distance;
      check cb "true flow dependence" true (e.Edge.kind = Edge.Mem_flow)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_loop_carried_distance () =
  (* store a[i] ; load a[i+2]: the load at iteration i reads what the
     store wrote at iteration i+2 -> load -> store? No: store writes
     o=0+4i, load reads 8+4i: store at iteration i+2 hits the load's
     iteration-i address -> dependence load -> store would be wrong; the
     conflict is  store(i+2) = load(i), so the *load* is first:
     anti-dependence load -> store with distance 2. *)
  let g = two_op_ddg (access ~offset:0 "a") true (access ~offset:8 "a") false in
  match edges_of g with
  | [ e ] ->
      check cb "later-writer direction" true (e.Edge.src = 1 && e.Edge.dst = 0);
      check ci "distance 2" 2 e.Edge.distance;
      check cb "anti dependence" true (e.Edge.kind = Edge.Mem_anti)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_forward_flow_distance () =
  (* store a[i+8B] ; load a[i]: store(i) = load(i+2): store first,
     flow store -> load with distance 2. *)
  let g = two_op_ddg (access ~offset:8 "a") true (access ~offset:0 "a") false in
  match edges_of g with
  | [ e ] ->
      check cb "store -> load" true (e.Edge.src = 0 && e.Edge.dst = 1);
      check ci "distance 2" 2 e.Edge.distance;
      check cb "flow" true (e.Edge.kind = Edge.Mem_flow)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_phase_mismatch_independent () =
  (* Offsets differing by 2 with stride 4 and 2-byte elements never
     touch the same bytes. *)
  let g =
    two_op_ddg
      (access ~offset:0 ~granularity:2 "a")
      true
      (access ~offset:2 ~granularity:2 "a")
      false
  in
  check ci "provably disjoint" 0 (List.length (edges_of g))

let test_phase_overlap_unresolved () =
  (* 4-byte elements at offsets 0 and 2 with stride 4 do overlap. *)
  let g = two_op_ddg (access ~offset:0 "a") true (access ~offset:2 "a") false in
  match edges_of g with
  | [ e ] -> check cb "unresolved" true (e.Edge.kind = Edge.Mem_unresolved)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_indirect_unresolved () =
  let g =
    two_op_ddg (access "a") true (access ~indirect:true "a") false
  in
  match edges_of g with
  | [ e ] -> check cb "indirect unresolved" true (e.Edge.kind = Edge.Mem_unresolved)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_store_store_output () =
  let g = two_op_ddg (access "a") true (access "a") true in
  match edges_of g with
  | [ e ] -> check cb "output dependence" true (e.Edge.kind = Edge.Mem_out)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es))

let test_scalars () =
  let g =
    two_op_ddg (access ~stride:0 "a") true (access ~stride:0 "a") false
  in
  (match edges_of g with
  | [ e ] ->
      check ci "scalar conflict distance 0" 0 e.Edge.distance;
      check cb "flow" true (e.Edge.kind = Edge.Mem_flow)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es)));
  let g2 =
    two_op_ddg (access ~stride:0 ~offset:0 "a") true
      (access ~stride:0 ~offset:8 "a") false
  in
  check ci "disjoint scalars" 0 (List.length (edges_of g2))

let test_existing_edges_respected () =
  let b = Builder.create () in
  let s = Builder.add b ~srcs:[ 0 ] ~mem:(access "a") Opcode.Store in
  let l = Builder.add b ~dests:[ 1 ] ~mem:(access "a") Opcode.Load in
  Builder.dep b ~kind:Edge.Mem_flow s l;
  let g = Builder.build b in
  check ci "already-connected pair skipped" 0
    (List.length (Disambiguation.dependences g))

let test_augment_makes_chains () =
  let g = two_op_ddg (access "a") true (access "a") false in
  let g' = Disambiguation.augment g in
  let chains = Vliw_core.Chains.build g' in
  check ci "augmented deps create one chain" 1
    (Vliw_core.Chains.n_chains chains);
  check ci "of both ops" 2 (Vliw_core.Chains.longest chains)

let test_augmented_pipeline_end_to_end () =
  (* A loop whose memory dependences come *only* from disambiguation:
     the pipeline schedules it with the derived chain kept in one
     cluster and the schedule validates. *)
  let b = Builder.create () in
  let acc footprint sym offset =
    Mem_access.make ~storage:Mem_access.Heap ~symbol:sym ~offset ~stride:4
      ~granularity:4 ~footprint ()
  in
  let l = Builder.add b ~dests:[ 0 ] ~mem:(acc 1024 "dd_buf" 0) Opcode.Load in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let st = Builder.add b ~srcs:[ 1 ] ~mem:(acc 1024 "dd_buf" 8) Opcode.Store in
  Builder.flow b l c;
  Builder.flow b c st;
  let g = Disambiguation.augment (Builder.build b) in
  check cb "a dependence was derived" true
    (List.exists (fun (e : Edge.t) -> Edge.is_memory_kind e.Edge.kind)
       (Ddg.edges g));
  let loop = Loop.make ~name:"dd" ~trip_count:160 g in
  let cfg = Vliw_arch.Config.default in
  let profiler (lp : Loop.t) =
    let profile = Vliw_core.Profile.empty ~n_ops:(Ddg.n_ops lp.Loop.ddg) in
    List.iter
      (fun i ->
        profile.(i) <-
          Some
            (Vliw_core.Profile.make_op ~hit_rate:0.95
               ~cluster_fractions:[| 1.0; 0.0; 0.0; 0.0 |] ~accesses:100))
      (Ddg.memory_ops lp.Loop.ddg);
    profile
  in
  let compiled =
    Vliw_core.Pipeline.compile cfg
      ~target:(Vliw_core.Pipeline.Interleaved { heuristic = `Ipbc; chains = true })
      ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
  in
  (match
     Vliw_sched.Schedule.validate cfg compiled.Vliw_core.Pipeline.loop.Loop.ddg
       ~latency:(fun i -> compiled.Vliw_core.Pipeline.latencies.(i))
       compiled.Vliw_core.Pipeline.schedule
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Memory ops of the derived chain share a cluster. *)
  let sched = compiled.Vliw_core.Pipeline.schedule in
  let ddg = compiled.Vliw_core.Pipeline.loop.Loop.ddg in
  let mem_clusters =
    List.map (fun v -> sched.Vliw_sched.Schedule.cluster.(v)) (Ddg.memory_ops ddg)
  in
  check ci "one cluster for the derived chain" 1
    (List.length (List.sort_uniq compare mem_clusters))

let suite =
  [
    ("different symbols are independent", `Quick, test_different_symbols_independent);
    ("load pairs never depend", `Quick, test_loads_never_depend);
    ("same address, same iteration", `Quick, test_same_address_same_iteration);
    ("loop-carried anti dependence", `Quick, test_loop_carried_distance);
    ("loop-carried flow dependence", `Quick, test_forward_flow_distance);
    ("disjoint phases are independent", `Quick, test_phase_mismatch_independent);
    ("overlapping phases unresolved", `Quick, test_phase_overlap_unresolved);
    ("indirect accesses unresolved", `Quick, test_indirect_unresolved);
    ("store-store output dependence", `Quick, test_store_store_output);
    ("scalar conflicts", `Quick, test_scalars);
    ("explicit edges respected", `Quick, test_existing_edges_respected);
    ("augment feeds the chain builder", `Quick, test_augment_makes_chains);
    ("augmented pipeline end to end", `Quick, test_augmented_pipeline_end_to_end);
  ]
