(* Integration tests: the experiment drivers end-to-end on single
   benchmarks, checking the paper's qualitative claims hold on the
   generated suite. *)

module Access = Vliw_arch.Access
module Config = Vliw_arch.Config
module Pipeline = Vliw_core.Pipeline
module US = Vliw_core.Unroll_select
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module Context = Vliw_experiments.Context
module WL = Vliw_workloads

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* One shared context: compilations are cached across test cases. *)
let ctx = Context.create ()

let no_ab = Machine.Word_interleaved { attraction_buffers = false }
let with_ab = Machine.Word_interleaved { attraction_buffers = true }

let bench name = WL.Mediabench.find name

let test_context_caching () =
  let spec = Context.interleaved `Ipbc in
  let a = Context.compiled ctx (bench "gsmdec") spec in
  let b = Context.compiled ctx (bench "gsmdec") spec in
  check cb "same compilation object" true (a == b)

let test_unrolling_raises_local_hits () =
  List.iter
    (fun name ->
      let lh strategy =
        Stats.local_hit_ratio
          (Context.run ctx (bench name)
             (Context.interleaved ~strategy `Ipbc)
             ~arch:no_ab ())
      in
      check cb
        (name ^ ": OUF raises the local-hit ratio")
        true
        (lh US.Ouf_unrolling > lh US.No_unrolling +. 0.1))
    [ "gsmdec"; "g721dec"; "jpegenc" ]

let test_alignment_raises_local_hits () =
  let lh aligned =
    Stats.local_hit_ratio
      (Context.run ctx (bench "gsmdec")
         (Context.interleaved ~strategy:US.Ouf_unrolling ~aligned `Ipbc)
         ~arch:no_ab ())
  in
  check cb "alignment helps gsmdec" true (lh true > lh false +. 0.1)

let test_chains_cost_local_hits () =
  List.iter
    (fun name ->
      let lh chains =
        Stats.local_hit_ratio
          (Context.run ctx (bench name)
             (Context.interleaved ~chains ~strategy:US.Ouf_unrolling `Ipbc)
             ~arch:no_ab ())
      in
      check cb (name ^ ": chains cost local hits") true
        (lh false > lh true +. 0.05))
    [ "epicdec"; "pgpdec"; "rasta" ]

let test_g721_no_stall () =
  List.iter
    (fun name ->
      let s =
        Context.run ctx (bench name) (Context.interleaved `Ipbc) ~arch:no_ab ()
      in
      check ci (name ^ " is stall-free") 0 (Stats.stall_cycles s))
    [ "g721dec"; "g721enc" ]

let test_ab_reduces_stall () =
  List.iter
    (fun name ->
      let stall arch =
        Stats.stall_cycles
          (Context.run ctx (bench name) (Context.interleaved `Ibc) ~arch ())
      in
      check cb (name ^ ": AB reduces stall") true
        (stall with_ab < stall no_ab))
    [ "epicdec"; "rasta"; "pgpdec"; "gsmdec" ]

let test_remote_hits_dominate_stall () =
  let s =
    Context.run ctx (bench "rasta") (Context.interleaved `Ibc) ~arch:no_ab ()
  in
  let rh = Stats.stall_of s Access.Remote_hit in
  check cb "remote hits are the main stall source" true
    (rh * 2 > Stats.stall_cycles s)

let test_mpeg2dec_doubles_no_stall () =
  (* Double-precision accesses are remote but scheduled with large
     latencies: they generate remote traffic yet no remote-miss stall. *)
  let s =
    Context.run ctx (bench "mpeg2dec") (Context.interleaved `Ipbc)
      ~arch:no_ab ()
  in
  check cb "plenty of remote accesses" true
    (Stats.accesses s Access.Remote_hit + Stats.accesses s Access.Remote_miss
     > 1000);
  check ci "no remote-miss stall" 0 (Stats.stall_of s Access.Remote_miss)

let test_architecture_ordering () =
  (* On the whole-suite AMEAN the paper's ordering is
     Unified(L=1) <= multiVLIW <= interleaved <= Unified(L=5); spot-check
     the two headline inequalities on chain-light benchmarks. *)
  let total spec arch =
    Stats.total_cycles (Context.run ctx (bench "gsmdec") spec ~arch ())
  in
  let ipbc = total (Context.interleaved `Ipbc) with_ab in
  let unified_fast =
    total
      { Context.target = Pipeline.Unified { slow = false };
        strategy = US.Selective; aligned = true }
      (Machine.Unified { slow = false })
  in
  let unified_slow =
    total
      { Context.target = Pipeline.Unified { slow = true };
        strategy = US.Selective; aligned = true }
      (Machine.Unified { slow = true })
  in
  check cb "interleaved beats the 5-cycle unified cache" true
    (ipbc < unified_slow);
  check cb "the 1-cycle unified cache is the upper bound" true
    (unified_fast <= ipbc)

let test_workload_balance_range () =
  List.iter
    (fun b ->
      let wb =
        Context.weighted_balance
          (Context.compiled ctx b (Context.interleaved `Ipbc))
      in
      check cb (b.WL.Benchspec.name ^ " balance in range") true
        (wb >= 0.25 -. 1e-9 && wb <= 1.0 +. 1e-9))
    WL.Mediabench.all

let test_every_benchmark_schedules_validly () =
  List.iter
    (fun b ->
      List.iter
        (fun (c : Pipeline.compiled) ->
          match
            Vliw_sched.Schedule.validate (Context.cfg ctx)
              c.Pipeline.loop.Vliw_ir.Loop.ddg
              ~latency:(fun i -> c.Pipeline.latencies.(i))
              c.Pipeline.schedule
          with
          | Ok () -> ()
          | Error e ->
              Alcotest.fail
                (Printf.sprintf "%s/%s: %s" b.WL.Benchspec.name
                   c.Pipeline.source.Vliw_ir.Loop.name e))
        (Context.compiled ctx b (Context.interleaved `Ibc)))
    WL.Mediabench.all

let test_hints_help_epicdec () =
  let stall hints =
    Stats.stall_cycles
      (Context.run ctx (bench "epicdec") (Context.interleaved `Ipbc)
         ~arch:with_ab ~ab_entries:8 ~hints ())
  in
  check cb "hints do not hurt with an 8-entry buffer" true
    (stall true <= stall false)

let test_worked_example_full () =
  let lat = Vliw_experiments.Worked_example.assigned ctx in
  check ci "n1" 4 lat.(Vliw_experiments.Worked_example.n1);
  check ci "n2" 1 lat.(Vliw_experiments.Worked_example.n2);
  check ci "n6" 1 lat.(Vliw_experiments.Worked_example.n6)

let suite =
  [
    ("context: compilation caching", `Quick, test_context_caching);
    ("claim: unrolling raises local hits", `Slow, test_unrolling_raises_local_hits);
    ("claim: alignment raises local hits", `Slow, test_alignment_raises_local_hits);
    ("claim: chains cost local hits", `Slow, test_chains_cost_local_hits);
    ("claim: g721 has no stall", `Slow, test_g721_no_stall);
    ("claim: attraction buffers reduce stall", `Slow, test_ab_reduces_stall);
    ("claim: remote hits dominate stall", `Slow, test_remote_hits_dominate_stall);
    ("claim: covered doubles do not stall", `Slow, test_mpeg2dec_doubles_no_stall);
    ("claim: architecture ordering", `Slow, test_architecture_ordering);
    ("schedules: balance in range", `Slow, test_workload_balance_range);
    ("schedules: whole suite validates", `Slow, test_every_benchmark_schedules_validly);
    ("ablation: hints help epicdec", `Slow, test_hints_help_epicdec);
    ("worked example: final latencies", `Quick, test_worked_example_full);
  ]
