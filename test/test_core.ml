(* Unit tests for vliw_core: profiles, memory-dependent chains, the
   latency-assignment pass (against the paper's worked example), unroll
   selection, cluster heuristics, hints and the full pipeline. *)

open Vliw_ir
module Config = Vliw_arch.Config
module Chains = Vliw_core.Chains
module Cluster_heuristic = Vliw_core.Cluster_heuristic
module Hints = Vliw_core.Hints
module Latency_assign = Vliw_core.Latency_assign
module Pipeline = Vliw_core.Pipeline
module Profile = Vliw_core.Profile
module Unroll_select = Vliw_core.Unroll_select
module Engine = Vliw_sched.Engine
module Schedule = Vliw_sched.Schedule
module WE = Vliw_experiments.Worked_example
module Context = Vliw_experiments.Context

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cf = Alcotest.float
let cfg = Config.default
let ctx = Context.create ()

let op_profile ?(accesses = 1000) ~hit ~fractions () =
  Profile.make_op ~hit_rate:hit ~cluster_fractions:fractions ~accesses

(* ------------------------------------------------------------ profile *)

let test_profile_basics () =
  let p = op_profile ~hit:0.8 ~fractions:[| 0.1; 0.6; 0.2; 0.1 |] () in
  check ci "preferred" 1 (Profile.preferred_cluster p);
  check (cf 1e-9) "distribution" 0.6 (Profile.distribution p);
  check (cf 1e-9) "local ratio" 0.6 (Profile.local_ratio p);
  Alcotest.check_raises "bad hit rate"
    (Invalid_argument "Profile.make_op: hit rate outside [0, 1]") (fun () ->
      ignore (op_profile ~hit:1.5 ~fractions:[| 1.0 |] ()))

let test_profile_weighted () =
  let profile = Profile.empty ~n_ops:3 in
  profile.(0) <-
    Some (op_profile ~accesses:100 ~hit:1.0 ~fractions:[| 1.0; 0.0 |] ());
  profile.(2) <-
    Some (op_profile ~accesses:300 ~hit:1.0 ~fractions:[| 0.0; 1.0 |] ());
  let votes = Profile.weighted_accesses profile [ 0; 2 ] in
  check (cf 1e-6) "cluster 0 votes" 100.0 votes.(0);
  check (cf 1e-6) "cluster 1 votes" 300.0 votes.(1)

(* ------------------------------------------------------------- chains *)

let mem symbol = Mem_access.make ~symbol ~stride:4 ~granularity:4 ()

let chain_ddg () =
  let b = Builder.create () in
  let l1 = Builder.add b ~dests:[ 0 ] ~mem:(mem "a") Opcode.Load in
  let l2 = Builder.add b ~dests:[ 1 ] ~mem:(mem "b") Opcode.Load in
  let c = Builder.add b ~dests:[ 2 ] ~srcs:[ 0; 1 ] Opcode.Int_alu in
  let s1 = Builder.add b ~srcs:[ 2 ] ~mem:(mem "c") Opcode.Store in
  let l3 = Builder.add b ~dests:[ 3 ] ~mem:(mem "d") Opcode.Load in
  Builder.flow b l1 c;
  Builder.flow b l2 c;
  Builder.flow b c s1;
  Builder.dep b ~kind:Edge.Mem_unresolved l1 s1;
  Builder.dep b ~kind:Edge.Mem_anti l2 s1;
  let g = Builder.build b in
  (g, l1, l2, c, s1, l3)

let test_chains_components () =
  let g, l1, l2, _, s1, l3 = chain_ddg () in
  let chains = Chains.build g in
  check ci "two chains" 2 (Chains.n_chains chains);
  check cb "l1 and s1 together" true
    (Chains.chain_of chains l1 = Chains.chain_of chains s1);
  check cb "l2 joins through the anti edge" true
    (Chains.chain_of chains l2 = Chains.chain_of chains s1);
  check cb "l3 alone" true
    (Chains.chain_of chains l3 <> Chains.chain_of chains l1);
  check ci "longest chain" 3 (Chains.longest chains)

let test_chains_non_memory () =
  let g, _, _, c, _, _ = chain_ddg () in
  let chains = Chains.build g in
  check cb "ALU op has no chain" true (Chains.chain_of chains c = None)

(* The register-flow edge l1 -> c -> s1 must NOT merge chains: only
   memory dependences define them. *)
let test_chains_ignore_register_edges () =
  let b = Builder.create () in
  let l1 = Builder.add b ~dests:[ 0 ] ~mem:(mem "a") Opcode.Load in
  let s1 = Builder.add b ~srcs:[ 0 ] ~mem:(mem "b") Opcode.Store in
  Builder.flow b l1 s1;
  let g = Builder.build b in
  let chains = Chains.build g in
  check cb "register flow does not chain" true
    (Chains.chain_of chains l1 <> Chains.chain_of chains s1)

(* --------------------------------------------------- latency assignment *)

(* The paper's own example is the strongest test we have: the expected
   stall estimates reproduce the printed table, and the final
   assignment is n1 = 4, n2 = 1, n6 = 1. *)

let test_expected_stall_matches_paper () =
  let p_n2 = op_profile ~hit:0.9 ~fractions:[| 0.5; 0.5; 0.0; 0.0 |] () in
  let stall lat =
    Latency_assign.expected_stall cfg ~mode:Latency_assign.Four_level p_n2
      ~lat
  in
  check (cf 1e-9) "n2 at RM" 0.0 (stall 15);
  check (cf 1e-9) "n2 to LM" 0.25 (stall 10);
  check (cf 1e-9) "n2 to RH" 0.75 (stall 5);
  check (cf 1e-9) "n2 to LH" 2.95 (stall 1);
  let p_n1 = op_profile ~hit:0.6 ~fractions:[| 0.5; 0.5; 0.0; 0.0 |] () in
  let stall1 lat =
    Latency_assign.expected_stall cfg ~mode:Latency_assign.Four_level p_n1
      ~lat
  in
  check (cf 1e-9) "n1 to LM" 1.0 (stall1 10);
  check (cf 1e-9) "n1 to RH" 3.0 (stall1 5);
  (* The paper prints 6.8 here; the formula that reproduces every other
     cell gives 5.8 (see DESIGN.md). *)
  check (cf 1e-9) "n1 to LH" 5.8 (stall1 1)

let test_benefit_table_matches_paper () =
  let rows = WE.benefit_table ctx in
  let find node lat =
    let _, _, d_ii, d_stall, b =
      List.find (fun (n, l, _, _, _) -> n = node && l = lat) rows
    in
    (d_ii, d_stall, b)
  in
  let d_ii, d_stall, b = find "n2" 10 in
  check (cf 1e-9) "n2->LM dII" 5.0 d_ii;
  check (cf 1e-9) "n2->LM dStall" 0.25 d_stall;
  check (cf 1e-6) "n2->LM B" 20.0 b;
  let _, _, b = find "n2" 5 in
  check (cf 1e-3) "n2->RH B" 13.333 b;
  let _, _, b = find "n2" 1 in
  check (cf 1e-3) "n2->LH B" 4.745 b;
  let d_ii, _, b = find "n1" 10 in
  check (cf 1e-9) "n1->LM dII" 5.0 d_ii;
  check (cf 1e-6) "n1->LM B" 5.0 b

let test_assignment_matches_paper () =
  let lat = WE.assigned ctx in
  check ci "n1 gets the recurrence slack" 4 lat.(WE.n1);
  check ci "n2 reduced to local hit" 1 lat.(WE.n2);
  check ci "n6 reduced to local hit" 1 lat.(WE.n6)

let test_target_mii_matches_paper () =
  check ci "MII 8" 8
    (Latency_assign.target_mii cfg (WE.ddg ())
       ~mode:Latency_assign.Four_level)

let test_two_level_mode () =
  let g = WE.ddg () in
  let profile = WE.profile () in
  let mode = Latency_assign.Two_level { hit = 1; miss = 11 } in
  let lat = Latency_assign.assign cfg g ~mode ~profile in
  check cb "loads end on the two-level ladder or between" true
    (List.for_all (fun v -> lat.(v) >= 1 && lat.(v) <= 11)
       [ WE.n1; WE.n2; WE.n6 ]);
  check ci "ladder levels" 2
    (List.length (Latency_assign.levels cfg mode))

let test_non_recurrence_loads_keep_max () =
  let b = Builder.create () in
  let l = Builder.add b ~dests:[ 0 ] ~mem:(mem "a") Opcode.Load in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  Builder.flow b l c;
  let g = Builder.build b in
  let profile = Profile.empty ~n_ops:2 in
  profile.(l) <-
    Some (op_profile ~hit:0.9 ~fractions:[| 1.0; 0.0; 0.0; 0.0 |] ());
  let lat =
    Latency_assign.assign cfg g ~mode:Latency_assign.Four_level ~profile
  in
  check ci "unconstrained load stays at remote miss"
    cfg.Config.lat_remote_miss lat.(l)

let test_stores_keep_unit_latency () =
  let lat = WE.assigned ctx in
  check ci "store latency 1" 1 lat.(3)

(* ---------------------------------------------------- unroll selection *)

let test_individual_factor_table () =
  let f ?(granularity = 4) ?(indirect = false) ~hit stride =
    Unroll_select.individual_factor cfg ~hit_rate:hit
      (Mem_access.make ~symbol:"a" ~indirect ~stride ~granularity ())
  in
  let some = Alcotest.(option ci) in
  check some "stride 4 -> 4" (Some 4) (f ~hit:1.0 4);
  check some "stride 2 -> 8" (Some 8) (f ~hit:1.0 2 ~granularity:2);
  check some "stride 6 -> 8" (Some 8) (f ~hit:1.0 6 ~granularity:2);
  check some "stride 16 -> 1" (Some 1) (f ~hit:1.0 16);
  check some "stride 3 -> 16" (Some 16) (f ~hit:1.0 3 ~granularity:1);
  check some "negative stride" (Some 4) (f ~hit:1.0 (-4));
  check some "indirect excluded" None (f ~hit:1.0 ~indirect:true 4);
  check some "zero hit rate excluded" None (f ~hit:0.0 4);
  check some "wide element excluded" None (f ~hit:1.0 8 ~granularity:8)

let test_ouf_lcm_and_cap () =
  let b = Builder.create () in
  let add stride granularity sym =
    ignore
      (Builder.add b ~dests:[ Builder.fresh_reg b ]
         ~mem:(Mem_access.make ~symbol:sym ~stride ~granularity ())
         Opcode.Load)
  in
  add 4 4 "a";
  (* Ui = 4 *)
  add 2 2 "b";
  (* Ui = 8 *)
  let g = Builder.build b in
  let profile = Profile.empty ~n_ops:2 in
  for i = 0 to 1 do
    profile.(i) <-
      Some (op_profile ~hit:1.0 ~fractions:[| 1.0; 0.0; 0.0; 0.0 |] ())
  done;
  check ci "lcm(4,8)" 8 (Unroll_select.ouf cfg g ~profile);
  check (Alcotest.list ci) "selective candidates" [ 1; 4; 8 ]
    (Unroll_select.candidate_factors cfg g ~profile Unroll_select.Selective)

let test_estimated_cycles () =
  check ci "(trip + SC - 1) * II" 105
    (Unroll_select.estimated_cycles ~trip_count:100 ~ii:1 ~stage_count:6)

(* --------------------------------------------------- cluster heuristics *)

let test_chain_cluster_vote () =
  let g, l1, l2, _, s1, _ = chain_ddg () in
  let chains = Chains.build g in
  let profile = Profile.empty ~n_ops:(Ddg.n_ops g) in
  profile.(l1) <-
    Some (op_profile ~accesses:100 ~hit:1.0 ~fractions:[| 1.0; 0.0; 0.0; 0.0 |] ());
  profile.(l2) <-
    Some (op_profile ~accesses:500 ~hit:1.0 ~fractions:[| 0.0; 0.0; 1.0; 0.0 |] ());
  profile.(s1) <-
    Some (op_profile ~accesses:100 ~hit:1.0 ~fractions:[| 1.0; 0.0; 0.0; 0.0 |] ());
  let c = Option.get (Chains.chain_of chains l1) in
  check ci "heaviest member wins the vote" 2
    (Cluster_heuristic.chain_cluster chains profile c)

let test_ibc_hooks_pin_chain () =
  let g, l1, _, _, s1, _ = chain_ddg () in
  let chains = Chains.build g in
  let hooks = Cluster_heuristic.hooks g (Cluster_heuristic.Ibc chains) in
  check cb "first chain member free" true (hooks.Engine.choice l1 = Engine.Free);
  hooks.Engine.on_scheduled ~op:l1 ~cluster:3;
  check cb "rest of the chain pinned" true
    (hooks.Engine.choice s1 = Engine.Forced 3);
  hooks.Engine.reset ();
  check cb "reset unpins" true (hooks.Engine.choice s1 = Engine.Free)

let test_ipbc_hooks_forced () =
  let g, l1, l2, c, s1, _ = chain_ddg () in
  let chains = Chains.build g in
  let profile = Profile.empty ~n_ops:(Ddg.n_ops g) in
  List.iter
    (fun i ->
      profile.(i) <-
        Some (op_profile ~hit:1.0 ~fractions:[| 0.0; 1.0; 0.0; 0.0 |] ()))
    [ l1; l2; s1 ];
  let hooks =
    Cluster_heuristic.hooks g (Cluster_heuristic.Ipbc (chains, profile))
  in
  check cb "memory op forced to preferred" true
    (hooks.Engine.choice l1 = Engine.Forced 1);
  check cb "non-memory op free" true (hooks.Engine.choice c = Engine.Free)

(* -------------------------------------------------------------- hints *)

let test_hints_top_k () =
  let b = Builder.create () in
  let mk sym = Builder.add b ~dests:[ Builder.fresh_reg b ] ~mem:(mem sym) Opcode.Load in
  let l1 = mk "a" and l2 = mk "b" and l3 = mk "c" in
  let g = Builder.build b in
  let profile = Profile.empty ~n_ops:3 in
  let set i accesses fractions =
    profile.(i) <- Some (op_profile ~accesses ~hit:1.0 ~fractions ())
  in
  set l1 1000 [| 0.0; 1.0; 0.0; 0.0 |];
  (* remote from cluster 0: big benefit *)
  set l2 10 [| 0.0; 1.0; 0.0; 0.0 |];
  (* small benefit *)
  set l3 1000 [| 1.0; 0.0; 0.0; 0.0 |];
  (* local: zero benefit *)
  let schedule =
    { Schedule.ii = 1; n_clusters = 4; cluster = [| 0; 0; 0 |];
      start = [| 0; 0; 0 |]; copies = [] }
  in
  let flags = Hints.attractable cfg g ~profile ~schedule ~k:1 () in
  check cb "largest benefit marked" true flags.(l1);
  check cb "smaller benefit cut by k" false flags.(l2);
  check cb "local op never marked" false flags.(l3)

(* ------------------------------------------------------------ pipeline *)

let small_loop () =
  let b = Builder.create () in
  let l =
    Builder.add b ~dests:[ 0 ]
      ~mem:(Mem_access.make ~symbol:"arr" ~stride:4 ~granularity:4 ~footprint:1024 ())
      Opcode.Load
  in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let s =
    Builder.add b ~srcs:[ 1 ]
      ~mem:(Mem_access.make ~symbol:"out" ~stride:4 ~granularity:4 ~footprint:1024 ())
      Opcode.Store
  in
  Builder.flow b l c;
  Builder.flow b c s;
  Loop.make ~name:"small" ~trip_count:160 (Builder.build b)

let trivial_profiler (loop : Loop.t) =
  let n = Ddg.n_ops loop.Loop.ddg in
  let profile = Profile.empty ~n_ops:n in
  List.iter
    (fun i ->
      profile.(i) <-
        Some (op_profile ~hit:0.95 ~fractions:[| 1.0; 0.0; 0.0; 0.0 |] ()))
    (Ddg.memory_ops loop.Loop.ddg);
  profile

let all_targets =
  [
    Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
    Pipeline.Interleaved { heuristic = `Ibc; chains = true };
    Pipeline.Interleaved { heuristic = `Ipbc; chains = false };
    Pipeline.Unified { slow = false };
    Pipeline.Unified { slow = true };
    Pipeline.Multivliw;
  ]

let test_pipeline_all_targets () =
  List.iter
    (fun target ->
      let c =
        Pipeline.compile cfg ~target ~strategy:Unroll_select.Selective
          ~profiler:trivial_profiler (small_loop ())
      in
      match
        Schedule.validate cfg c.Pipeline.loop.Loop.ddg
          ~latency:(fun i -> c.Pipeline.latencies.(i))
          ~allow_cross_cluster_mem:(Pipeline.allow_cross_cluster_mem target)
          c.Pipeline.schedule
      with
      | Ok () -> ()
      | Error e ->
          Alcotest.fail (Pipeline.target_to_string target ^ ": " ^ e))
    all_targets

let test_pipeline_selective_not_worse () =
  let compile strategy =
    (Pipeline.compile cfg
       ~target:(Pipeline.Interleaved { heuristic = `Ipbc; chains = true })
       ~strategy ~profiler:trivial_profiler (small_loop ()))
      .Pipeline.estimated_cycles
  in
  let selective = compile Unroll_select.Selective in
  check cb "selective <= no unrolling" true
    (selective <= compile Unroll_select.No_unrolling);
  check cb "selective <= OUF" true
    (selective <= compile Unroll_select.Ouf_unrolling)

let test_pipeline_mode_of_target () =
  (match Pipeline.mode_of_target cfg (Pipeline.Unified { slow = true }) with
  | Latency_assign.Two_level { hit; miss } ->
      check ci "slow hit" 5 hit;
      check ci "slow miss" 15 miss
  | Latency_assign.Four_level -> Alcotest.fail "expected two-level");
  match
    Pipeline.mode_of_target cfg
      (Pipeline.Interleaved { heuristic = `Ibc; chains = true })
  with
  | Latency_assign.Four_level -> ()
  | Latency_assign.Two_level _ -> Alcotest.fail "expected four-level"

let suite =
  [
    ("profile: basics", `Quick, test_profile_basics);
    ("profile: weighted votes", `Quick, test_profile_weighted);
    ("chains: components", `Quick, test_chains_components);
    ("chains: non-memory excluded", `Quick, test_chains_non_memory);
    ("chains: register edges ignored", `Quick, test_chains_ignore_register_edges);
    ("latency: stall estimates match the paper", `Quick, test_expected_stall_matches_paper);
    ("latency: benefit table matches the paper", `Quick, test_benefit_table_matches_paper);
    ("latency: final assignment matches the paper", `Quick, test_assignment_matches_paper);
    ("latency: MII matches the paper", `Quick, test_target_mii_matches_paper);
    ("latency: two-level mode", `Quick, test_two_level_mode);
    ("latency: non-recurrence loads keep max", `Quick, test_non_recurrence_loads_keep_max);
    ("latency: stores stay at one cycle", `Quick, test_stores_keep_unit_latency);
    ("unroll-select: individual factors", `Quick, test_individual_factor_table);
    ("unroll-select: lcm and candidates", `Quick, test_ouf_lcm_and_cap);
    ("unroll-select: Texec formula", `Quick, test_estimated_cycles);
    ("heuristics: chain vote", `Quick, test_chain_cluster_vote);
    ("heuristics: IBC pins chains while scheduling", `Quick, test_ibc_hooks_pin_chain);
    ("heuristics: IPBC pre-resolves", `Quick, test_ipbc_hooks_forced);
    ("hints: top-k attractable", `Quick, test_hints_top_k);
    ("pipeline: compiles and validates on every target", `Quick, test_pipeline_all_targets);
    ("pipeline: selective unrolling never worse", `Quick, test_pipeline_selective_not_worse);
    ("pipeline: latency modes per target", `Quick, test_pipeline_mode_of_target);
  ]
