(* Property-based tests (qcheck): schedule validity over random loops,
   unrolling invariants, MII monotonicity, LRU equivalence with a
   reference model, and statistical estimators. *)

open Vliw_ir
module Config = Vliw_arch.Config
module Engine = Vliw_sched.Engine
module Ordering = Vliw_sched.Ordering
module Resources = Vliw_sched.Resources
module Schedule = Vliw_sched.Schedule
module Set_assoc = Vliw_arch.Set_assoc
module Latency_assign = Vliw_core.Latency_assign
module Profile = Vliw_core.Profile

let cfg = Config.default

(* ------------------------------------------- random DDG generation *)

(* A loop description drawn from a seed: random opcodes, forward edges
   with distance 0, backward/self edges with distance >= 1 (so no
   zero-distance cycles can appear). *)
let build_random_ddg rng =
  let n = 2 + QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound 14) in
  let gen_int bound = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound) in
  let b = Builder.create () in
  for i = 0 to n - 1 do
    let id =
      match gen_int 4 with
      | 0 ->
          Builder.add b
            ~dests:[ Builder.fresh_reg b ]
            ~mem:
              (Mem_access.make
                 ~symbol:(Printf.sprintf "s%d" (gen_int 3))
                 ~stride:(4 * (1 + gen_int 3))
                 ~granularity:4 ())
            Opcode.Load
      | 1 ->
          Builder.add b ~srcs:[ 0 ]
            ~mem:
              (Mem_access.make
                 ~symbol:(Printf.sprintf "s%d" (gen_int 3))
                 ~stride:4 ~granularity:4 ())
            Opcode.Store
      | 2 -> Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Fp_alu
      | 3 -> Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Int_mul
      | _ -> Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Int_alu
    in
    ignore id;
    if i > 0 then begin
      (* a forward edge from a random earlier node *)
      let src = gen_int (i - 1) in
      let kind =
        match gen_int 3 with
        | 0 -> Edge.Reg_flow
        | 1 -> Edge.Reg_anti
        | _ -> Edge.Reg_flow
      in
      Builder.dep b ~kind src i
    end;
    (* occasionally a loop-carried back edge *)
    if i > 1 && gen_int 3 = 0 then
      Builder.dep b ~kind:Edge.Reg_flow ~distance:(1 + gen_int 1) i (gen_int i)
  done;
  Builder.build b

let make_test ~name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name
       QCheck.(make Gen.(int_bound 1_000_000))
       prop)

let random_ddg_prop ~name f =
  make_test ~name (fun seed ->
      let rng = Random.State.make [| seed |] in
      f (build_random_ddg rng))

(* ---------------------------------------------------------- properties *)

let prop_schedule_validates =
  random_ddg_prop ~name:"every random loop schedules and validates" (fun g ->
      let latency i = Ddg.default_latency g i in
      match Engine.schedule cfg g ~latency () with
      | None -> false
      | Some s -> (
          match Schedule.validate cfg g ~latency s with
          | Ok () -> true
          | Error _ -> false))

let prop_schedule_ii_at_least_mii =
  random_ddg_prop ~name:"achieved II is never below MII" (fun g ->
      let latency i = Ddg.default_latency g i in
      match Engine.schedule cfg g ~latency () with
      | None -> false
      | Some s -> s.Schedule.ii >= Resources.mii cfg g ~latency)

let prop_ordering_permutation =
  random_ddg_prop ~name:"SMS ordering is a permutation" (fun g ->
      let latency i = Ddg.default_latency g i in
      let ii = Resources.mii cfg g ~latency in
      let order = Ordering.order g ~latency ~ii in
      List.sort compare order = List.init (Ddg.n_ops g) (fun i -> i))

let prop_unroll_counts =
  random_ddg_prop ~name:"unrolling scales ops and edges by the factor"
    (fun g ->
      List.for_all
        (fun factor ->
          let u = Unroll.ddg g ~factor in
          Ddg.n_ops u = factor * Ddg.n_ops g
          && List.length (Ddg.edges u) = factor * List.length (Ddg.edges g))
        [ 2; 3; 4 ])

let prop_unroll_distance_sum =
  random_ddg_prop ~name:"unrolling preserves total dependence distance"
    (fun g ->
      let sum edges =
        List.fold_left (fun acc (e : Edge.t) -> acc + e.Edge.distance) 0 edges
      in
      List.for_all
        (fun factor -> sum (Ddg.edges (Unroll.ddg g ~factor)) = sum (Ddg.edges g))
        [ 2; 4; 8 ])

let prop_unroll_preserves_mii_scaled =
  random_ddg_prop ~name:"RecMII of the unrolled loop is at most factor x RecMII"
    (fun g ->
      let latency i = Ddg.default_latency g i in
      let base = Mii.rec_mii g ~latency in
      let factor = 4 in
      let u = Unroll.ddg g ~factor in
      let latency_u i = Ddg.default_latency u i in
      Mii.rec_mii u ~latency:latency_u <= factor * base)

let prop_mii_monotone =
  random_ddg_prop ~name:"RecMII is monotone in latencies" (fun g ->
      let latency i = Ddg.default_latency g i in
      let heavier i = latency i + 3 in
      Mii.rec_mii g ~latency <= Mii.rec_mii g ~latency:heavier)

(* LRU set-associative array vs. a naive reference model. *)
let prop_set_assoc_matches_reference =
  make_test ~name:"set-assoc array matches a reference LRU model"
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let gen_int bound = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound) in
      let sets = 2 and ways = 2 in
      let t = Set_assoc.create ~sets ~ways in
      (* reference: per set, most-recent-first list of keys *)
      let reference = Array.make sets [] in
      let ref_lookup key =
        let s = key mod sets in
        if List.mem key reference.(s) then begin
          reference.(s) <- key :: List.filter (( <> ) key) reference.(s);
          true
        end
        else false
      in
      let ref_insert key =
        let s = key mod sets in
        if not (ref_lookup key) then
          reference.(s) <-
            key
            :: (if List.length reference.(s) >= ways then
                  List.filteri (fun i _ -> i < ways - 1) reference.(s)
                else reference.(s))
      in
      let ok = ref true in
      for _ = 1 to 200 do
        let key = gen_int 11 in
        match gen_int 2 with
        | 0 -> if Set_assoc.lookup t key <> ref_lookup key then ok := false
        | 1 ->
            ignore (Set_assoc.insert t key);
            ref_insert key
        | _ ->
            if Set_assoc.contains t key <> List.mem key (reference.(key mod sets))
            then ok := false
      done;
      !ok)

let prop_expected_stall_monotone =
  make_test ~name:"expected stall decreases as the assigned latency grows"
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let gen_f () =
        QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.float_bound_inclusive 1.0)
      in
      let hit = gen_f () and l0 = gen_f () in
      let p =
        Profile.make_op ~hit_rate:hit
          ~cluster_fractions:[| l0; 1.0 -. l0; 0.0; 0.0 |]
          ~accesses:100
      in
      let stall lat =
        Latency_assign.expected_stall cfg ~mode:Latency_assign.Four_level p
          ~lat
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> stall a >= stall b -. 1e-9 && non_increasing rest
        | _ -> true
      in
      non_increasing [ 1; 3; 5; 8; 10; 12; 15; 20 ])

let prop_assignment_within_ladder =
  random_ddg_prop ~name:"assigned latencies stay within the ladder + slack"
    (fun g ->
      let profile = Profile.empty ~n_ops:(Ddg.n_ops g) in
      List.iter
        (fun i ->
          profile.(i) <-
            Some
              (Profile.make_op ~hit_rate:0.8
                 ~cluster_fractions:[| 0.7; 0.1; 0.1; 0.1 |] ~accesses:100))
        (Ddg.memory_ops g);
      let lat =
        Latency_assign.assign cfg g ~mode:Latency_assign.Four_level ~profile
      in
      List.for_all
        (fun i ->
          (not (Operation.is_load (Ddg.op g i))) || lat.(i) >= 1)
        (List.init (Ddg.n_ops g) Fun.id))

let prop_stacked_bar_width =
  make_test ~name:"stacked bars always have the requested width"
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let gen_f () =
        QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.float_bound_inclusive 1.0)
      in
      let segments = List.init 5 (fun _ -> gen_f ()) in
      String.length (Vliw_report.Table.stacked_bar ~width:30 segments) = 30)

let prop_prng_bound =
  make_test ~name:"prng stays within its bound" (fun seed ->
      let t = Vliw_workloads.Prng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Vliw_workloads.Prng.next_int t ~bound:13 in
        if v < 0 || v >= 13 then ok := false
      done;
      !ok)

let suite =
  [
    prop_schedule_validates;
    prop_schedule_ii_at_least_mii;
    prop_ordering_permutation;
    prop_unroll_counts;
    prop_unroll_distance_sum;
    prop_unroll_preserves_mii_scaled;
    prop_mii_monotone;
    prop_set_assoc_matches_reference;
    prop_expected_stall_monotone;
    prop_assignment_within_ladder;
    prop_stacked_bar_width;
    prop_prng_bound;
  ]

(* ------------------------------------------------- cache-layer properties *)

(* MSI invariant: no block is ever Modified in one cluster while resident
   anywhere else. *)
let prop_msi_single_writer =
  make_test ~name:"MSI: a Modified block has no other holders" (fun seed ->
      let rng = Random.State.make [| seed |] in
      let gen_int bound =
        QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound)
      in
      let c = Vliw_arch.Coherent_cache.create cfg in
      let ok = ref true in
      for step = 0 to 300 do
        let cluster = gen_int 3 in
        let block = gen_int 9 in
        let store = gen_int 1 = 1 in
        ignore
          (Vliw_arch.Coherent_cache.access c ~now:(step * 20) ~cluster
             ~addr:(block * cfg.Vliw_arch.Config.block_size)
             ~store);
        for b = 0 to 9 do
          let holders =
            List.filter
              (fun cl ->
                Vliw_arch.Coherent_cache.state c ~cluster:cl ~block:b
                <> `Invalid)
              [ 0; 1; 2; 3 ]
          in
          let modified =
            List.filter
              (fun cl ->
                Vliw_arch.Coherent_cache.state c ~cluster:cl ~block:b
                = `Modified)
              holders
          in
          if modified <> [] && List.length holders > 1 then ok := false
        done
      done;
      !ok)

(* The interleaved cache never claims a *local* hit for a remote word
   unless an attraction buffer supplied it. *)
let prop_interleaved_locality_honest =
  make_test ~name:"interleaved: local hits are local (no AB)" (fun seed ->
      let rng = Random.State.make [| seed |] in
      let gen_int bound =
        QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound)
      in
      let c = Vliw_arch.Interleaved_cache.create cfg in
      let ok = ref true in
      for step = 0 to 300 do
        let cluster = gen_int 3 in
        let addr = 4 * gen_int 200 in
        let r =
          Vliw_arch.Interleaved_cache.access c ~now:(step * 30) ~cluster ~addr
            ~store:(gen_int 1 = 1) ()
        in
        let local = Vliw_arch.Config.cluster_of_addr cfg addr = cluster in
        (match r.Vliw_arch.Access.kind with
        | Vliw_arch.Access.Local_hit | Vliw_arch.Access.Local_miss ->
            if not local then ok := false
        | Vliw_arch.Access.Remote_hit | Vliw_arch.Access.Remote_miss ->
            if local then ok := false
        | Vliw_arch.Access.Combined -> ());
        if r.Vliw_arch.Access.ready_at < (step * 30) + 1 then ok := false
      done;
      !ok)

(* End-to-end determinism: compiling and simulating the same benchmark
   twice yields identical statistics. *)
let prop_simulation_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:4 ~name:"simulation is deterministic"
       QCheck.(make Gen.(int_bound 2))
       (fun i ->
         let bench = List.nth Vliw_workloads.Mediabench.all i in
         let once () =
           let ctx = Vliw_experiments.Context.create () in
           let s =
             Vliw_experiments.Context.run ctx bench
               (Vliw_experiments.Context.interleaved `Ipbc)
               ~arch:
                 (Vliw_sim.Machine.Word_interleaved
                    { attraction_buffers = true })
               ()
           in
           ( Vliw_sim.Stats.total_cycles s,
             Vliw_sim.Stats.total_accesses s,
             Vliw_sim.Stats.local_hit_ratio s )
         in
         once () = once ()))

(* Batch composition: a batched run is the product of independent
   per-cell simulations — restricting a batch to any subset of its
   cells (here: a random subset, re-run as its own smaller batch) must
   reproduce the subset's statistics and traffic exactly.  State leaking
   across cells (a shared tag array, a stall clock indexed off the wrong
   cell) breaks this immediately. *)
let batch_fixture =
  lazy
    (let layout =
       Vliw_workloads.Layout.create cfg ~aligned:true
         ~run:Vliw_workloads.Layout.Profile_run ~seed:7
     in
     let profiler = Vliw_workloads.Profiling.profiler cfg layout in
     let loop =
       List.hd
         (Vliw_workloads.Benchspec.loops
            (Vliw_workloads.Mediabench.find "gsmdec"))
     in
     let c =
       Vliw_core.Pipeline.compile cfg
         ~target:(Vliw_core.Pipeline.Interleaved { heuristic = `Ipbc; chains = true })
         ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
     in
     let exec_layout =
       Vliw_workloads.Layout.create cfg ~aligned:true
         ~run:Vliw_workloads.Layout.Execution_run ~seed:7
     in
     let addr_trace =
       Vliw_sim.Executor.address_trace c
         ~addr_of:
           (Vliw_workloads.Layout.addr_fn exec_layout
              c.Vliw_core.Pipeline.loop.Loop.ddg)
     in
     (c, addr_trace))

let batch_points =
  let wi ab = (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }, ab) in
  [
    wi (Some 2); wi (Some 8); wi (Some 32); wi (Some 256); wi None;
    (Vliw_sim.Machine.Word_interleaved { attraction_buffers = false }, None);
    (Vliw_sim.Machine.Unified { slow = true }, None);
    (Vliw_sim.Machine.Multivliw, None);
  ]

let run_batch_points points =
  let c, addr_trace = Lazy.force batch_fixture in
  let machines = Vliw_sim.Machine.create_batch cfg points in
  let cells =
    Array.map
      (fun m -> { Vliw_sim.Executor.machine = m; attractable = None })
      machines
  in
  let stats = Vliw_sim.Executor.run_loop_batched cfg cells c ~addr_trace () in
  Array.to_list
    (Array.mapi
       (fun j s -> (s, Vliw_sim.Machine.traffic_summary machines.(j)))
       stats)

let prop_batch_composition =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"batched sweep composes over subsets"
       QCheck.(make Gen.(int_bound 1_000_000))
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let subset =
           List.filter (fun _ -> Random.State.bool rng) batch_points
         in
         let subset = if subset = [] then [ List.hd batch_points ] else subset in
         let full = run_batch_points batch_points in
         let sub = run_batch_points subset in
         let of_full =
           List.filter_map
             (fun (p, r) -> if List.mem p subset then Some (p, r) else None)
             (List.combine batch_points full)
         in
         List.for_all2
           (fun (_, (s_full, t_full)) (s_sub, t_sub) ->
             Vliw_sim.Stats.equal s_full s_sub && t_full = t_sub)
           of_full sub))

let suite =
  suite
  @ [
      prop_msi_single_writer;
      prop_interleaved_locality_honest;
      prop_simulation_deterministic;
      prop_batch_composition;
    ]
