(* The resident compile service: wire-protocol unit tests, an
   end-to-end stdio session (mixed valid / malformed / oversized /
   deadline-exceeding requests, one structured response line per
   request, byte-identical replay across --jobs), deterministic
   cancellation, and the seeded chaos harness (every injected fault
   yields exactly the structured response its kind demands, and the
   service stays live through all of them). *)

module Proto = Vliw_service.Proto
module Faults = Vliw_service.Faults
module Serve = Vliw_service.Serve

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

(* --------------------------------------------------------------- proto *)

let test_json_roundtrip () =
  let cases =
    [
      ({|null|}, Proto.Null);
      ({|true|}, Proto.Bool true);
      ({|-42|}, Proto.Int (-42));
      ({|"a\"b\\c\nd"|}, Proto.String "a\"b\\c\nd");
      ({|[1,[2,3],{}]|},
       Proto.List [ Proto.Int 1; Proto.List [ Proto.Int 2; Proto.Int 3 ];
                    Proto.Obj [] ]);
      ({|{"k":"v","n":7}|},
       Proto.Obj [ ("k", Proto.String "v"); ("n", Proto.Int 7) ]);
    ]
  in
  List.iter
    (fun (text, v) ->
      (match Proto.parse text with
      | Ok got -> check cb ("parse " ^ text) true (got = v)
      | Error e -> Alcotest.fail (text ^ ": " ^ e));
      match Proto.parse (Proto.to_string v) with
      | Ok got -> check cb ("reparse " ^ text) true (got = v)
      | Error e -> Alcotest.fail ("reparse " ^ text ^ ": " ^ e))
    cases;
  (* \uXXXX escapes decode to UTF-8 *)
  match Proto.parse {|"éA"|} with
  | Ok (Proto.String s) -> check cs "unicode escape" "\xc3\xa9A" s
  | _ -> Alcotest.fail "unicode escape"

let test_json_rejects_malformed () =
  let bad =
    [
      ""; "{"; "[1,"; {|{"a":}|}; {|"unterminated|}; {|{"a":1}garbage|};
      "tru"; "01a"; {|{"a" 1}|}; "\xff{}"; "\"\x01\"";
      (* nesting past the depth bound *)
      String.concat "" (List.init 40 (fun _ -> "[")) ^ "1"
      ^ String.concat "" (List.init 40 (fun _ -> "]"));
    ]
  in
  List.iter
    (fun text ->
      match Proto.parse text with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" text)
      | Error _ -> ())
    bad

let decode_err line =
  match Proto.decode line with
  | Ok _ -> Alcotest.fail (Printf.sprintf "decoded %S" line)
  | Error e -> e.Proto.kind

let test_decode_strictness () =
  check cs "unknown request" "unknown_request"
    (decode_err {|{"req":"frobnicate"}|});
  check cs "missing req" "missing_field" (decode_err {|{"bench":"gsmdec"}|});
  check cs "missing bench" "missing_field" (decode_err {|{"req":"compile"}|});
  check cs "ill-typed bench" "bad_field"
    (decode_err {|{"req":"compile","bench":42}|});
  check cs "unknown field rejected, not ignored" "unknown_field"
    (decode_err {|{"req":"health","extra":true}|});
  check cs "bad heuristic" "bad_field"
    (decode_err {|{"req":"compile","bench":"g","heuristic":"magic"}|});
  check cs "bad arch" "bad_field"
    (decode_err {|{"req":"simulate","bench":"g","arch":"tpu"}|});
  check cs "non-positive deadline" "bad_field"
    (decode_err {|{"req":"health","deadline":0}|});
  check cs "non-object" "not_object" (decode_err {|[1,2]|});
  match Proto.decode {|{"req":"compile","bench":"gsmdec","id":"x","deadline":9}|} with
  | Ok { Proto.id = Some "x"; deadline = Some 9; req = Proto.Compile _ } -> ()
  | _ -> Alcotest.fail "well-formed compile envelope"

let test_fault_plan_deterministic () =
  let p1 = Faults.create ~seed:42 and p2 = Faults.create ~seed:42 in
  let p3 = Faults.create ~seed:43 in
  let kinds p = List.init 500 (Faults.for_request p) in
  check cb "same seed, same plan" true (kinds p1 = kinds p2);
  check cb "different seed, different plan" true (kinds p1 <> kinds p3);
  let faulted = List.filter Option.is_some (kinds p1) in
  check cb "a meaningful fraction is faulted" true
    (List.length faulted > 100 && List.length faulted < 250);
  (* corruption is guaranteed un-parseable *)
  List.iter
    (fun seq ->
      let line = {|{"req":"health"}|} in
      match Proto.parse (Faults.corrupt p1 seq line) with
      | Ok _ -> Alcotest.fail "corrupted line still parsed"
      | Error _ -> ())
    [ 0; 1; 2; 3; 17; 255 ]

(* --------------------------------------------------- session harness *)

(* Run one stdio session in-process: write the request lines into a
   pipe, serve until EOF/drain, read the response lines back from a
   temp file.  Sessions stay far below the pipe's 64K capacity. *)
let run_session ?(jobs = 1) ?chaos ?max_line ?default_deadline lines =
  let r, w = Unix.pipe () in
  let path = Filename.temp_file "vliw_serve_test" ".out" in
  let out = open_out path in
  let payload = String.concat "\n" lines ^ "\n" in
  let len = String.length payload in
  assert (Unix.write_substring w payload 0 len = len);
  Unix.close w;
  let outcome =
    Serve.run ~jobs ?chaos ?max_line ?default_deadline ~input:r ~output:out ()
  in
  Unix.close r;
  close_out out;
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  close_in ic;
  Sys.remove path;
  (outcome, responses)

let status_of line =
  match Proto.parse line with
  | Error e -> Alcotest.fail (Printf.sprintf "unstructured response %S: %s" line e)
  | Ok (Proto.Obj fields) -> (
      (match List.assoc_opt "schema_version" fields with
      | Some (Proto.Int _) -> ()
      | _ -> Alcotest.fail ("response without schema_version: " ^ line));
      (match List.assoc_opt "seq" fields with
      | Some (Proto.Int _) -> ()
      | _ -> Alcotest.fail ("response without seq: " ^ line));
      match List.assoc_opt "status" fields with
      | Some (Proto.String s) -> s
      | _ -> Alcotest.fail ("response without status: " ^ line))
  | Ok _ -> Alcotest.fail ("non-object response: " ^ line)

(* Mixed session: valid, malformed, oversized, unknown, ill-typed and
   deadline-exceeding requests.  The deadline-bearing request uses a
   memo key (gsmdec x IBC) nothing else in the session touches, so its
   timeout cannot race a single-flight waiter at jobs > 1. *)
let mixed_session =
  [
    {|{"req":"health"}|};
    {|{"req":"compile","bench":"gsmdec","id":"c1"}|};
    {|{"req":"compile","bench":"gsmdec","heuristic":"ibc","deadline":2,"id":"slow"}|};
    "this is not json";
    {|{"req":"frobnicate"}|};
    {|{"req":"compile","bench":42}|};
    "{\"req\":\"health\",\"pad\":\"" ^ String.make 400 'x' ^ "\"}";
    {|{"req":"compile","bench":"no-such-bench"}|};
    {|{"req":"simulate","bench":"gsmdec","arch":"interleaved+ab","trip_cap":64}|};
    {|{"req":"compile","bench":"gsmdec"}|};
    {|{"req":"health","id":"h2"}|};
    {|{"req":"drain","id":"bye"}|};
  ]

let test_e2e_one_response_per_request () =
  let outcome, responses = run_session ~max_line:256 mixed_session in
  check ci "one response line per request line"
    (List.length mixed_session) (List.length responses);
  check cs "drained by request" "request" outcome.Serve.reason;
  let statuses = List.map status_of responses in
  let count s = List.length (List.filter (String.equal s) statuses) in
  check ci "three ok (two health + simulate... )" 5 (count "ok");
  check ci "one deterministic timeout" 1 (count "timeout");
  check ci "five structured errors" 5 (count "error");
  check ci "one drained line" 1 (count "drained");
  check ci "no internal errors in a chaos-free session" 0
    (count "internal_error");
  (* the timeout response carries its partial attribution *)
  let timeout_line =
    List.find (fun l -> status_of l = "timeout") responses
  in
  check cb "timeout names its stage" true
    (match Proto.parse timeout_line with
    | Ok (Proto.Obj f) -> (
        (match List.assoc_opt "stage" f with
        | Some (Proto.String s) ->
            String.length s > 0
            && (match List.assoc_opt "work" f with
               | Some (Proto.Int w) -> w > 2
               | _ -> false)
        | _ -> false))
    | _ -> false)

let test_e2e_replay_byte_identical_across_jobs () =
  let _, r1 = run_session ~jobs:1 ~max_line:256 mixed_session in
  let _, r3 = run_session ~jobs:3 ~max_line:256 mixed_session in
  check ci "same response count" (List.length r1) (List.length r3);
  List.iteri
    (fun i (a, b) ->
      check cs (Printf.sprintf "response %d byte-identical" i) a b)
    (List.combine r1 r3)

(* ----------------------------------------------------------- chaos *)

let chaos_seed = 42

let chaos_session =
  List.concat
    (List.init 6 (fun i ->
         [
           Printf.sprintf {|{"req":"health","id":"h%d"}|} i;
           {|{"req":"compile","bench":"gsmdec"}|};
           {|{"req":"simulate","bench":"gsmdec","trip_cap":32}|};
           {|{"req":"compile","bench":"rasta"}|};
           "garbage line";
         ]))
  @ [ {|{"req":"drain"}|} ]

let test_chaos_all_responses_structured () =
  let outcome, responses =
    run_session ~jobs:2 ~chaos:chaos_seed chaos_session
  in
  (* If the plan corrupts the trailing drain request, its line becomes
     a structured parse error and the session drains at EOF instead —
     one extra "drained" line.  Deterministic either way. *)
  let plan = Faults.create ~seed:chaos_seed in
  let drain_seq = List.length chaos_session - 1 in
  let drain_corrupted =
    Faults.for_request plan drain_seq = Some Faults.Decode_corruption
  in
  check ci "one structured response per request, chaos included"
    (List.length chaos_session + if drain_corrupted then 1 else 0)
    (List.length responses);
  check cs "service drained cleanly through every fault"
    (if drain_corrupted then "eof" else "request")
    outcome.Serve.reason;
  let statuses = Array.of_list (List.map status_of responses) in
  Array.iter
    (fun s ->
      check cb ("known status " ^ s) true
        (List.mem s
           [ "ok"; "error"; "timeout"; "overloaded"; "internal_error";
             "drained" ]))
    statuses;
  (* Cross-check every injected fault against the status it must
     produce.  Decode corruption always yields a parse error; the other
     kinds only apply to dispatched (non-control) requests. *)
  List.iteri
    (fun seq line ->
      (* Worker-level faults only reach requests that decode into
         dispatched work; control requests and undecodable lines answer
         before the fault site. *)
      let dispatched =
        match Proto.decode line with
        | Ok { Proto.req = Proto.Health | Proto.Drain; _ } -> false
        | Ok _ -> true
        | Error _ -> false
      in
      match Faults.for_request plan seq with
      | Some Faults.Decode_corruption ->
          check cs
            (Printf.sprintf "seq %d: corruption => structured error" seq)
            "error" statuses.(seq)
      | Some Faults.Worker_exception when dispatched ->
          check cs
            (Printf.sprintf "seq %d: injected crash => internal_error" seq)
            "internal_error" statuses.(seq)
      | Some Faults.Budget_exhaustion when dispatched ->
          check cs
            (Printf.sprintf "seq %d: injected exhaustion => timeout" seq)
            "timeout" statuses.(seq)
      | Some Faults.Queue_full when dispatched ->
          check cs
            (Printf.sprintf "seq %d: injected queue-full => overloaded" seq)
            "overloaded" statuses.(seq)
      | _ -> ())
    chaos_session;
  (* The service survived: the post-chaos drain still reports counters
     adding up to the accepted total. *)
  let c = outcome.Serve.counters in
  check ci "counters account for every request" c.Serve.accepted
    (c.Serve.ok + c.Serve.errors + c.Serve.timeouts + c.Serve.internal_errors
    + c.Serve.shed
    + if drain_corrupted then 0 else 1 (* the drain request itself *))

let test_chaos_replay_byte_identical () =
  let _, r1 = run_session ~jobs:1 ~chaos:chaos_seed chaos_session in
  let _, r2 = run_session ~jobs:2 ~chaos:chaos_seed chaos_session in
  check cb "chaos session replays byte-identically" true (r1 = r2)

(* ------------------------------------------------- deadline semantics *)

let test_timeout_deterministic_and_memo_safe () =
  (* Same starved request twice in one session: both time out with the
     SAME work/stage attribution (the cancelled flight released its
     single-flight slot, so the second attempt recomputes from zero
     rather than inheriting state), and a third uncapped attempt
     succeeds on the untouched key. *)
  let session =
    [
      {|{"req":"compile","bench":"rasta","heuristic":"ibc","deadline":3}|};
      {|{"req":"compile","bench":"rasta","heuristic":"ibc","deadline":3}|};
      {|{"req":"compile","bench":"rasta","heuristic":"ibc"}|};
      {|{"req":"drain"}|};
    ]
  in
  let _, responses = run_session session in
  match responses with
  | [ t1; t2; ok; _drained ] ->
      check cs "first attempt times out" "timeout" (status_of t1);
      check cb "second timeout is byte-identical modulo seq" true
        (let strip l =
           match (Proto.parse l : (Proto.json, string) result) with
           | Ok (Proto.Obj f) -> List.remove_assoc "seq" f
           | _ -> []
         in
         strip t1 = strip t2 && strip t1 <> []);
      check cs "uncapped retry succeeds on the freed key" "ok"
        (status_of ok)
  | _ -> Alcotest.fail "expected exactly four responses"

let suite =
  [
    ("proto: JSON round-trips", `Quick, test_json_roundtrip);
    ("proto: malformed JSON rejected", `Quick, test_json_rejects_malformed);
    ("proto: strict envelope decoding", `Quick, test_decode_strictness);
    ("faults: plan is a pure function of seed", `Quick,
     test_fault_plan_deterministic);
    ("serve: one structured response per request", `Slow,
     test_e2e_one_response_per_request);
    ("serve: replay byte-identical at jobs=1 vs jobs=3", `Slow,
     test_e2e_replay_byte_identical_across_jobs);
    ("serve: chaos session is 100% structured", `Slow,
     test_chaos_all_responses_structured);
    ("serve: chaos replay byte-identical across jobs", `Slow,
     test_chaos_replay_byte_identical);
    ("serve: timeouts deterministic, memo slot released", `Slow,
     test_timeout_deterministic_and_memo_safe);
  ]
