(* Unit tests for the modulo-scheduling engine: resource MII, the
   reservation table, the SMS ordering and the scheduler itself. *)

open Vliw_ir
module Config = Vliw_arch.Config
module Engine = Vliw_sched.Engine
module Mrt = Vliw_sched.Mrt
module Ordering = Vliw_sched.Ordering
module Resources = Vliw_sched.Resources
module Schedule = Vliw_sched.Schedule

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cfg = Config.default

let mem ?(stride = 4) symbol =
  Mem_access.make ~symbol ~stride ~granularity:4 ()

(* A loop with 8 independent load->add->store streams: enough work to
   exercise every cluster. *)
let wide_loop ?(streams = 8) () =
  let b = Builder.create () in
  for i = 0 to streams - 1 do
    let l =
      Builder.add b
        ~dests:[ Builder.fresh_reg b ]
        ~mem:(mem (Printf.sprintf "a%d" i))
        Opcode.Load
    in
    let c =
      Builder.add b ~dests:[ Builder.fresh_reg b ] ~srcs:[] Opcode.Int_alu
    in
    let s =
      Builder.add b ~srcs:[]
        ~mem:(mem (Printf.sprintf "b%d" i))
        Opcode.Store
    in
    Builder.flow b l c;
    Builder.flow b c s
  done;
  Builder.build b

let chain_loop () =
  (* load -> add -> store with a loop-carried memory dependence. *)
  let b = Builder.create () in
  let l = Builder.add b ~dests:[ 0 ] ~mem:(mem "x") Opcode.Load in
  let c = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let s = Builder.add b ~srcs:[ 1 ] ~mem:(mem "x") Opcode.Store in
  Builder.flow b l c;
  Builder.flow b c s;
  Builder.dep b ~kind:Edge.Mem_flow ~distance:1 s l;
  Builder.build b

let default_latency g i = Ddg.default_latency g i

(* ---------------------------------------------------------- resources *)

let test_res_mii () =
  let g = wide_loop () in
  (* 8 loads + 8 stores on 4 memory units -> ResMII 4. *)
  check ci "mem-bound" 4 (Resources.res_mii cfg g);
  let g2 = wide_loop ~streams:2 () in
  check ci "small loop" 1 (Resources.res_mii cfg g2)

let test_mii_combines () =
  let g = chain_loop () in
  let latency = default_latency g in
  check ci "recurrence dominates" 3 (Resources.mii cfg g ~latency)

(* ---------------------------------------------------------------- mrt *)

let test_mrt_fu_capacity () =
  let mrt = Mrt.create cfg ~ii:2 in
  check cb "free initially" true
    (Mrt.fu_free mrt ~cluster:0 ~fu:Opcode.Mem_fu ~cycle:0);
  Mrt.reserve_fu mrt ~cluster:0 ~fu:Opcode.Mem_fu ~cycle:0;
  check cb "one mem unit per cluster" false
    (Mrt.fu_free mrt ~cluster:0 ~fu:Opcode.Mem_fu ~cycle:0);
  check cb "same unit at the wrapped cycle" false
    (Mrt.fu_free mrt ~cluster:0 ~fu:Opcode.Mem_fu ~cycle:2);
  check cb "other cycle free" true
    (Mrt.fu_free mrt ~cluster:0 ~fu:Opcode.Mem_fu ~cycle:1);
  check cb "other cluster free" true
    (Mrt.fu_free mrt ~cluster:1 ~fu:Opcode.Mem_fu ~cycle:0)

let test_mrt_issue_width () =
  let mrt = Mrt.create cfg ~ii:1 in
  for _ = 1 to cfg.Config.issue_width_per_cluster do
    Mrt.reserve_issue mrt ~cluster:0 ~cycle:0
  done;
  check cb "issue width exhausted" false (Mrt.issue_free mrt ~cluster:0 ~cycle:0);
  check cb "fu blocked by issue" false
    (Mrt.fu_free mrt ~cluster:0 ~fu:Opcode.Int_fu ~cycle:0)

let test_mrt_bus_occupancy () =
  let mrt = Mrt.create cfg ~ii:4 in
  (* 4 buses, each transfer holds 2 cycles: cycles 0-1 take one bus each. *)
  for _ = 1 to cfg.Config.n_reg_buses do
    Mrt.reserve_reg_bus mrt ~cycle:0
  done;
  check cb "cycle 0 saturated" false (Mrt.reg_bus_free mrt ~cycle:0);
  (* A transfer at cycle 1 would overlap cycle 1 (used 4x) - blocked. *)
  check cb "overlap blocked" false (Mrt.reg_bus_free mrt ~cycle:1);
  check cb "cycle 2 free" true (Mrt.reg_bus_free mrt ~cycle:2)

let test_mrt_bus_wrap () =
  (* II=1: a 2-cycle transfer charges the single slot twice. *)
  let mrt = Mrt.create cfg ~ii:1 in
  Mrt.reserve_reg_bus mrt ~cycle:0;
  Mrt.reserve_reg_bus mrt ~cycle:0;
  check cb "two transfers fill four bus-slots" false
    (Mrt.reg_bus_free mrt ~cycle:0)

let test_mrt_bus_scratch_reuse () =
  (* Regression for the allocation-free bus_window_usage: interleaved
     probes at different cycles must not corrupt each other's accounting
     (the scratch buffer is refilled per call), and wrap-around charging
     is unchanged. *)
  let mrt = Mrt.create cfg ~ii:2 in
  (* Occupancy 2 at II=2: every transfer covers both slots, regardless
     of its start cycle. *)
  for k = 1 to cfg.Config.n_reg_buses do
    check cb "probe cycle 0 before reserve" true (Mrt.reg_bus_free mrt ~cycle:0);
    check cb "probe cycle 1 before reserve" true (Mrt.reg_bus_free mrt ~cycle:1);
    Mrt.reserve_reg_bus mrt ~cycle:(k mod 2)
  done;
  check cb "slot 0 saturated" false (Mrt.reg_bus_free mrt ~cycle:0);
  check cb "slot 1 saturated" false (Mrt.reg_bus_free mrt ~cycle:1);
  (* II=3: a transfer at cycle 2 wraps into slot 0; after n_reg_buses of
     them, slots 0 and 2 hold 4 transfers each and every start cycle's
     window hits one of them. *)
  let m3 = Mrt.create cfg ~ii:3 in
  for _ = 1 to cfg.Config.n_reg_buses do
    check cb "wrapped reserve fits" true (Mrt.reg_bus_free m3 ~cycle:2);
    Mrt.reserve_reg_bus m3 ~cycle:2
  done;
  check cb "window 0-1 hits slot 0" false (Mrt.reg_bus_free m3 ~cycle:0);
  check cb "window 1-2 hits slot 2" false (Mrt.reg_bus_free m3 ~cycle:1);
  check cb "window 2-0 hits both" false (Mrt.reg_bus_free m3 ~cycle:2)

let test_mrt_snapshot () =
  let mrt = Mrt.create cfg ~ii:2 in
  let snap = Mrt.snapshot mrt in
  Mrt.reserve_fu mrt ~cluster:0 ~fu:Opcode.Int_fu ~cycle:0;
  Mrt.reserve_reg_bus mrt ~cycle:0;
  Mrt.restore mrt snap;
  check cb "fu restored" true
    (Mrt.fu_free mrt ~cluster:0 ~fu:Opcode.Int_fu ~cycle:0);
  check cb "bus restored" true (Mrt.reg_bus_free mrt ~cycle:0);
  check ci "load restored" 0 (Mrt.cluster_load mrt 0)

(* ------------------------------------------------------------ ordering *)

let is_permutation g order =
  List.sort compare order = List.init (Ddg.n_ops g) (fun i -> i)

let test_ordering_permutation () =
  List.iter
    (fun g ->
      let latency = default_latency g in
      let ii = Resources.mii cfg g ~latency in
      check cb "permutation" true
        (is_permutation g (Ordering.order g ~latency ~ii)))
    [ wide_loop (); chain_loop () ]

let test_ordering_recurrence_first () =
  let b = Builder.create () in
  (* A feeder chain into a recurrence: the recurrence must come first. *)
  let f = Builder.add b Opcode.Int_alu in
  let r1 = Builder.add b Opcode.Int_alu in
  let r2 = Builder.add b Opcode.Int_mul in
  Builder.flow b f r1;
  Builder.flow b r1 r2;
  Builder.flow b ~distance:1 r2 r1;
  let g = Builder.build b in
  let order = Ordering.order g ~latency:(default_latency g) ~ii:3 in
  check cb "recurrence node ordered before feeder" true
    (match order with first :: _ -> first = r1 || first = r2 | [] -> false)

let test_ordering_neighbour_property () =
  (* SMS property: when a node is ordered, the already-ordered nodes do
     not contain both its predecessors and its successors - except for
     at most one node per recurrence. *)
  let g = chain_loop () in
  let latency = default_latency g in
  let order = Ordering.order g ~latency ~ii:3 in
  let seen = Array.make (Ddg.n_ops g) false in
  let violations = ref 0 in
  List.iter
    (fun v ->
      let has_pred =
        List.exists (fun (e : Edge.t) -> seen.(e.Edge.src)) (Ddg.preds g v)
      and has_succ =
        List.exists (fun (e : Edge.t) -> seen.(e.Edge.dst)) (Ddg.succs g v)
      in
      if has_pred && has_succ then incr violations;
      seen.(v) <- true)
    order;
  check cb "at most one closing node per recurrence" true
    (!violations <= List.length (Scc.recurrences g))

let test_depths () =
  let g = chain_loop () in
  let estart, height = Ordering.depths g ~latency:(default_latency g) ~ii:3 in
  check ci "source starts at zero" 0 estart.(0);
  check cb "consumer later than producer" true (estart.(1) >= 1);
  check cb "producer has height" true (height.(0) >= height.(2))

(* -------------------------------------------------------------- engine *)

let schedule ?hooks ?allow_cross_cluster_mem g =
  Engine.schedule cfg g ~latency:(default_latency g) ?hooks
    ?allow_cross_cluster_mem ()

let test_engine_schedules_and_validates () =
  List.iter
    (fun g ->
      match schedule g with
      | None -> Alcotest.fail "scheduling failed"
      | Some s -> (
          match
            Schedule.validate cfg g ~latency:(default_latency g) s
          with
          | Ok () -> ()
          | Error e -> Alcotest.fail e))
    [ wide_loop (); chain_loop (); wide_loop ~streams:3 () ]

let test_engine_achieves_mii () =
  let g = wide_loop () in
  match schedule g with
  | None -> Alcotest.fail "scheduling failed"
  | Some s ->
      check ci "II equals ResMII for independent streams" 4
        s.Schedule.ii

let test_engine_forced_cluster () =
  let g = wide_loop ~streams:4 () in
  let hooks =
    { Engine.default_hooks with
      Engine.choice =
        (fun v ->
          if Operation.is_memory (Ddg.op g v) then Engine.Forced 2
          else Engine.Free);
    }
  in
  match schedule ~hooks g with
  | None -> Alcotest.fail "scheduling failed"
  | Some s ->
      Array.iteri
        (fun i c ->
          if Operation.is_memory (Ddg.op g i) then
            check ci (Printf.sprintf "op %d forced" i) 2 c)
        s.Schedule.cluster;
      (* All 8 memory ops on one memory unit: II at least 8. *)
      check cb "II inflated by forcing" true (s.Schedule.ii >= 8)

let test_engine_inserts_copies () =
  (* Producer forced to cluster 0, consumer store to cluster 3. *)
  let b = Builder.create () in
  let l = Builder.add b ~dests:[ 0 ] ~mem:(mem "a") Opcode.Load in
  let s = Builder.add b ~srcs:[ 0 ] ~mem:(mem "b") Opcode.Store in
  Builder.flow b l s;
  let g = Builder.build b in
  let hooks =
    { Engine.default_hooks with
      Engine.choice =
        (fun v -> if v = l then Engine.Forced 0 else Engine.Forced 3);
    }
  in
  match schedule ~hooks ~allow_cross_cluster_mem:true g with
  | None -> Alcotest.fail "scheduling failed"
  | Some sc ->
      check ci "one copy inserted" 1 (Schedule.n_copies sc);
      (match sc.Schedule.copies with
      | [ cp ] ->
          check ci "from producer cluster" 0 cp.Schedule.from_cluster;
          check ci "to consumer cluster" 3 cp.Schedule.to_cluster;
          check cb "after the load completes" true
            (cp.Schedule.start >= sc.Schedule.start.(l) + 1)
      | _ -> Alcotest.fail "expected exactly one copy");
      (match Schedule.validate cfg g ~latency:(default_latency g) sc with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_engine_memory_same_cluster () =
  let g = chain_loop () in
  match schedule g with
  | None -> Alcotest.fail "scheduling failed"
  | Some s ->
      check ci "memory-dependent ops share a cluster"
        s.Schedule.cluster.(0) s.Schedule.cluster.(2)

let test_validate_rejects_tampering () =
  let g = chain_loop () in
  match schedule g with
  | None -> Alcotest.fail "scheduling failed"
  | Some s ->
      let broken = { s with Schedule.start = Array.copy s.Schedule.start } in
      broken.Schedule.start.(2) <- 0;
      (* store before its producer *)
      check cb "validator catches timing violations" true
        (Result.is_error
           (Schedule.validate cfg g ~latency:(default_latency g) broken))

let test_schedule_metrics () =
  let g = wide_loop () in
  match schedule g with
  | None -> Alcotest.fail "scheduling failed"
  | Some s ->
      check cb "stage count positive" true (Schedule.stage_count s >= 1);
      let wb = Schedule.workload_balance s in
      check cb "balance in range" true (wb >= 0.25 && wb <= 1.0);
      let total =
        List.fold_left
          (fun acc c -> acc + Schedule.ops_in_cluster s c)
          0 [ 0; 1; 2; 3 ]
      in
      check ci "ops partitioned over clusters" (Ddg.n_ops g) total

let test_engine_max_ii_gives_none () =
  let g = wide_loop () in
  check cb "impossible II budget" true
    (Engine.schedule cfg g ~latency:(default_latency g) ~min_ii:1 ~max_ii:1 ()
     = None)

(* The 16-node graph (found by random search) on which the greedy
   single-pass scheduler wedges at *every* II: the node closing one of
   the recurrences always finds an empty zero-distance window.  The
   engine must recover — by hoisting the wedged node or, at worst, by
   the sequential fallback — and still produce a valid schedule. *)
let wedge_graph () =
  let b = Builder.create () in
  let mem' sym = Mem_access.make ~symbol:sym ~stride:4 ~granularity:4 () in
  let n0 = Builder.add b ~dests:[ 0 ] Opcode.Int_mul in
  let n1 = Builder.add b ~srcs:[ 0 ] ~mem:(mem' "s2") Opcode.Store in
  let n2 = Builder.add b ~dests:[ 1 ] Opcode.Int_alu in
  let n3 = Builder.add b ~srcs:[ 0 ] ~mem:(mem' "s2") Opcode.Store in
  let n4 = Builder.add b ~srcs:[ 0 ] ~mem:(mem' "s1") Opcode.Store in
  let n5 = Builder.add b ~dests:[ 2 ] Opcode.Fp_alu in
  let n6 = Builder.add b ~srcs:[ 0 ] ~mem:(mem' "s1") Opcode.Store in
  let n7 = Builder.add b ~dests:[ 3 ] Opcode.Int_mul in
  let n8 = Builder.add b ~dests:[ 4 ] Opcode.Int_alu in
  let n9 = Builder.add b ~dests:[ 5 ] ~mem:(mem' "s2") Opcode.Load in
  let n10 = Builder.add b ~dests:[ 6 ] Opcode.Int_alu in
  let n11 = Builder.add b ~srcs:[ 0 ] ~mem:(mem' "s0") Opcode.Store in
  let n12 = Builder.add b ~dests:[ 7 ] Opcode.Fp_alu in
  let n13 = Builder.add b ~dests:[ 8 ] Opcode.Int_mul in
  let n14 = Builder.add b ~dests:[ 9 ] Opcode.Int_mul in
  let n15 = Builder.add b ~dests:[ 10 ] Opcode.Fp_alu in
  Builder.flow b n0 n1;
  Builder.flow b n1 n2;
  Builder.flow b n1 n3;
  Builder.flow b n2 n4;
  Builder.flow b ~distance:2 n4 n1;
  Builder.flow b n2 n5;
  Builder.flow b ~distance:2 n5 n3;
  Builder.flow b n0 n6;
  Builder.flow b n3 n7;
  Builder.flow b n5 n8;
  Builder.flow b n5 n9;
  Builder.flow b n7 n10;
  Builder.flow b n4 n11;
  Builder.flow b ~distance:2 n11 n5;
  Builder.flow b n4 n12;
  Builder.flow b n10 n13;
  Builder.flow b ~distance:2 n13 n11;
  Builder.flow b n10 n14;
  Builder.flow b ~distance:2 n14 n5;
  Builder.dep b ~kind:Edge.Reg_anti n7 n15;
  Builder.build b

let test_wedge_recovery () =
  let g = wedge_graph () in
  let latency = default_latency g in
  match Engine.schedule cfg g ~latency () with
  | None -> Alcotest.fail "engine must recover from the wedge"
  | Some s -> (
      match Schedule.validate cfg g ~latency s with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_infeasible_loop_raises () =
  (* A zero-distance positive cycle cannot be scheduled at any II. *)
  let b = Builder.create () in
  let n0 = Builder.add b Opcode.Int_alu in
  let n1 = Builder.add b Opcode.Int_alu in
  Builder.flow b n0 n1;
  Builder.flow b n1 n0;
  let g = Builder.build b in
  Alcotest.check_raises "infeasible loops raise" Mii.Infeasible (fun () ->
      ignore (Engine.schedule cfg g ~latency:(default_latency g) ()))

let test_kernel_dump () =
  let g = chain_loop () in
  match schedule g with
  | None -> Alcotest.fail "scheduling failed"
  | Some s ->
      let text = Format.asprintf "%a" (Schedule.pp_kernel g) s in
      check cb "mentions the II" true
        (String.length text > 0
        && String.sub text 0 7 = "kernel ");
      (* Every operation appears exactly once. *)
      List.iter
        (fun needle ->
          let occurrences =
            let n = ref 0 in
            for i = 0 to String.length text - String.length needle do
              if String.sub text i (String.length needle) = needle then incr n
            done;
            !n
          in
          check ci (needle ^ " appears once") 1 occurrences)
        [ "load.n0"; "add.n1"; "store.n2" ]

let test_dot_export () =
  let g = chain_loop () in
  let text = Format.asprintf "%a" Vliw_ir.Dot.ddg g in
  check cb "digraph wrapper" true
    (String.sub text 0 11 = "digraph ddg");
  check cb "memory node is a box" true
    (let needle = "shape=box" in
     let rec find i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let suite =
  [
    ("resources: res_mii", `Quick, test_res_mii);
    ("resources: mii combines rec and res", `Quick, test_mii_combines);
    ("mrt: fu capacity", `Quick, test_mrt_fu_capacity);
    ("mrt: issue width", `Quick, test_mrt_issue_width);
    ("mrt: bus occupancy", `Quick, test_mrt_bus_occupancy);
    ("mrt: bus wrap at small II", `Quick, test_mrt_bus_wrap);
    ("mrt: bus scratch reuse keeps wrap accounting", `Quick,
     test_mrt_bus_scratch_reuse);
    ("mrt: snapshot/restore", `Quick, test_mrt_snapshot);
    ("ordering: permutation", `Quick, test_ordering_permutation);
    ("ordering: recurrences first", `Quick, test_ordering_recurrence_first);
    ("ordering: neighbour property", `Quick, test_ordering_neighbour_property);
    ("ordering: depths", `Quick, test_depths);
    ("engine: schedules valid", `Quick, test_engine_schedules_and_validates);
    ("engine: achieves MII", `Quick, test_engine_achieves_mii);
    ("engine: forced clusters respected", `Quick, test_engine_forced_cluster);
    ("engine: copy insertion", `Quick, test_engine_inserts_copies);
    ("engine: memory ops share cluster", `Quick, test_engine_memory_same_cluster);
    ("schedule: validator rejects tampering", `Quick, test_validate_rejects_tampering);
    ("schedule: metrics", `Quick, test_schedule_metrics);
    ("engine: bounded II search can fail", `Quick, test_engine_max_ii_gives_none);
    ("schedule: kernel dump", `Quick, test_kernel_dump);
    ("ir: dot export", `Quick, test_dot_export);
    ("engine: wedge recovery", `Quick, test_wedge_recovery);
    ("engine: infeasible loops raise", `Quick, test_infeasible_loop_raises);
  ]
