(* The exact modulo-scheduling oracle and its CP core: solver unit
   tests, handcrafted feasibility/infeasibility cases, and qcheck
   properties tying the oracle to the heuristic scheduler and the
   independent verifier on random loops. *)

open Vliw_ir
module Config = Vliw_arch.Config
module Engine = Vliw_sched.Engine
module Cpsolver = Vliw_analysis.Cpsolver
module Oracle = Vliw_analysis.Oracle
module Lint_ddg = Vliw_analysis.Lint_ddg
module Verify_schedule = Vliw_analysis.Verify_schedule
module Diagnostic = Vliw_analysis.Diagnostic

let cfg = Config.default

(* ------------------------------------------------------ CP solver *)

(* n vars over d values, pairwise distinct (pigeonhole when n > d). *)
let all_diff n d =
  let s = Cpsolver.create () in
  let vars = Array.init n (fun _ -> -1) in
  for i = 0 to n - 1 do
    vars.(i) <- Cpsolver.new_var s ~size:d
  done;
  Cpsolver.on_assign s (fun v ->
      let x = Cpsolver.value s v in
      Array.iter (fun w -> if w <> v then Cpsolver.remove s w x) vars);
  let order = Array.copy vars in
  (s, vars, order)

let test_cpsolver_sat () =
  let s, vars, order = all_diff 3 3 in
  let r, stats =
    Cpsolver.solve s ~order ~max_decisions:1000 ~max_conflicts:1000 ()
  in
  Alcotest.(check bool) "sat" true (r = Cpsolver.Sat);
  let seen = Array.make 3 false in
  Array.iter (fun v -> seen.(Cpsolver.value s v) <- true) vars;
  Alcotest.(check bool) "distinct" true (Array.for_all Fun.id seen);
  Alcotest.(check bool) "took decisions" true (stats.Cpsolver.decisions > 0)

let test_cpsolver_pigeonhole () =
  let s, _, order = all_diff 4 3 in
  let r, _ =
    Cpsolver.solve s ~order ~max_decisions:10_000 ~max_conflicts:10_000 ()
  in
  Alcotest.(check bool) "unsat" true (r = Cpsolver.Unsat)

let test_cpsolver_budget () =
  let s, _, order = all_diff 4 3 in
  let r, stats =
    Cpsolver.solve s ~order ~max_decisions:2 ~max_conflicts:10_000 ()
  in
  Alcotest.(check bool) "budget" true (r = Cpsolver.Budget_exhausted);
  Alcotest.(check int) "counted" 3 stats.Cpsolver.decisions

let test_cpsolver_propagation () =
  (* forcing chain: v0 = 1 removes 1 everywhere; all domains size 2 *)
  let s = Cpsolver.create () in
  let a = Cpsolver.new_var s ~size:2 in
  let b = Cpsolver.new_var s ~size:2 in
  Cpsolver.on_assign s (fun v ->
      if v = a then Cpsolver.remove s b (Cpsolver.value s a));
  Cpsolver.assign s a 1;
  Cpsolver.propagate s;
  Alcotest.(check int) "b forced" 0 (Cpsolver.value s b)

(* ------------------------------------------------- handcrafted DDGs *)

let latency ddg = Ddg.default_latency ddg

let independent_ints n =
  let b = Builder.create () in
  for _ = 1 to n do
    ignore (Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Int_alu)
  done;
  Builder.build b

let heuristic_ii ddg =
  match Engine.schedule cfg ddg ~latency:(latency ddg) () with
  | Some sch -> sch.Vliw_sched.Schedule.ii
  | None -> Alcotest.fail "heuristic scheduler returned no schedule"

let test_optimal_independent () =
  (* 8 single-cycle int ops over 4 clusters with 1 int FU each: the
     heuristic reaches the resource floor, so the oracle proves
     optimality without a single probe *)
  let ddg = independent_ints 8 in
  let hii = heuristic_ii ddg in
  let cert = Oracle.certify cfg ddg ~latency:(latency ddg) ~heuristic_ii:hii () in
  Alcotest.(check bool) "sound" true (Oracle.sound cert);
  Alcotest.(check int) "floor" 2 cert.Oracle.floor;
  Alcotest.(check bool)
    "optimal" true
    (cert.Oracle.verdict = Oracle.Optimal && cert.Oracle.minimal_ii = Some hii);
  Alcotest.(check int) "no probes" 0 (List.length cert.Oracle.probes)

let test_infeasible_below_resmii () =
  (* 9 int ops cannot fit 4 int FUs in ii = 2: exhaustive refutation *)
  let ddg = independent_ints 9 in
  let d, _ =
    Oracle.decide cfg ddg ~latency:(latency ddg) ~ii:2 ~budget:100_000 ()
  in
  Alcotest.(check bool) "infeasible" true (d = Oracle.Infeasible)

let test_infeasible_below_recmii () =
  (* self-recurrence of an Int_mul: rec_mii = its latency; one below is
     refuted by the positive-cycle propagator, not by any shortcut *)
  let b = Builder.create () in
  let r = Builder.fresh_reg b in
  let a = Builder.add b ~dests:[ r ] ~srcs:[ r ] Opcode.Int_mul in
  Builder.flow b ~distance:1 a a;
  let ddg = Builder.build b in
  let rec_mii = Mii.rec_mii ddg ~latency:(latency ddg) in
  Alcotest.(check bool) "recurrence exists" true (rec_mii > 1);
  let d, _ =
    Oracle.decide cfg ddg ~latency:(latency ddg) ~ii:(rec_mii - 1)
      ~budget:100_000 ()
  in
  Alcotest.(check bool) "infeasible" true (d = Oracle.Infeasible);
  let d, _ =
    Oracle.decide cfg ddg ~latency:(latency ddg) ~ii:rec_mii ~budget:100_000 ()
  in
  match d with
  | Oracle.Feasible w ->
      let diags =
        Verify_schedule.verify cfg ddg ~latency:(latency ddg) ~where:"test" w
      in
      Alcotest.(check int) "witness clean" 0 (Diagnostic.n_errors diags)
  | _ -> Alcotest.fail "expected a witness at rec_mii"

let test_cross_cluster_gap () =
  (* a producer feeding many consumers across clusters: the oracle must
     insert copies, respect bus windows, and still find the minimum *)
  let b = Builder.create () in
  let r = Builder.fresh_reg b in
  let p = Builder.add b ~dests:[ r ] Opcode.Int_alu in
  for _ = 1 to 7 do
    let c = Builder.add b ~dests:[ Builder.fresh_reg b ] ~srcs:[ r ] Opcode.Int_alu in
    Builder.flow b p c
  done;
  let ddg = Builder.build b in
  let hii = heuristic_ii ddg in
  let cert = Oracle.certify cfg ddg ~latency:(latency ddg) ~heuristic_ii:hii () in
  Alcotest.(check bool) "sound" true (Oracle.sound cert);
  Alcotest.(check bool)
    "closed" true
    (cert.Oracle.verdict <> Oracle.Unknown);
  match cert.Oracle.witness with
  | Some w ->
      let diags =
        Verify_schedule.verify cfg ddg ~latency:(latency ddg) ~where:"test" w
      in
      Alcotest.(check int) "witness clean" 0 (Diagnostic.n_errors diags)
  | None -> ()

let test_certify_deterministic () =
  let ddg = independent_ints 9 in
  let hii = heuristic_ii ddg in
  let run () =
    let c = Oracle.certify cfg ddg ~latency:(latency ddg) ~heuristic_ii:hii () in
    (c.Oracle.minimal_ii, c.Oracle.infeasible_below, c.Oracle.decisions,
     c.Oracle.conflicts)
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

(* ------------------------------------------------------ properties *)

(* Random loops: forward register edges at distance 0, loop-carried
   back edges at distance >= 1 (never a zero-distance cycle), memory
   edges only between memory operations. *)
let build_random_ddg rng =
  let gen_int bound = QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound) in
  let n = 2 + gen_int 8 in
  let b = Builder.create () in
  let mem_ops = ref [] in
  for i = 0 to n - 1 do
    let id =
      match gen_int 4 with
      | 0 ->
          let id =
            Builder.add b
              ~dests:[ Builder.fresh_reg b ]
              ~mem:
                (Mem_access.make
                   ~symbol:(Printf.sprintf "s%d" (gen_int 2))
                   ~stride:(4 * (1 + gen_int 3))
                   ~granularity:4 ())
              Opcode.Load
          in
          mem_ops := id :: !mem_ops;
          id
      | 1 -> Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Fp_mul
      | 2 -> Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Int_mul
      | _ -> Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Int_alu
    in
    ignore id;
    if i > 0 then begin
      let kind = if gen_int 3 = 0 then Edge.Reg_anti else Edge.Reg_flow in
      Builder.dep b ~kind (gen_int (i - 1)) i
    end;
    if i > 1 && gen_int 3 = 0 then
      Builder.dep b ~kind:Edge.Reg_flow ~distance:(1 + gen_int 1) i (gen_int i)
  done;
  (match !mem_ops with
  | a :: b' :: _ -> Builder.dep b ~kind:Edge.Mem_flow ~distance:1 b' a
  | _ -> ());
  Builder.build b

let make_test ~name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name
       QCheck.(make Gen.(int_bound 1_000_000))
       prop)

let random_ddg_prop ~name f =
  make_test ~name (fun seed ->
      let rng = Random.State.make [| seed |] in
      f (build_random_ddg rng))

(* Independent recomputation of the oracle's RecMII floor: only cycles
   of flow and memory edges survive clustering (cross-cluster anti/out
   dependences are unconstrained in this machine model). *)
let independent_floor ddg ~latency =
  let kept =
    List.filter
      (fun (e : Edge.t) ->
        match e.Edge.kind with
        | Edge.Reg_anti | Edge.Reg_out -> false
        | _ -> true)
      (Ddg.edges ddg)
  in
  Lint_ddg.independent_rec_mii (Ddg.make (Ddg.ops ddg) kept) ~latency

let prop_oracle_brackets_heuristic =
  random_ddg_prop ~name:"oracle: sound, >= flow RecMII, <= heuristic II"
    (fun ddg ->
      let lat = latency ddg in
      let hii = heuristic_ii ddg in
      let cert =
        Oracle.certify cfg ddg ~latency:lat ~budget:30_000 ~heuristic_ii:hii ()
      in
      let independent = independent_floor ddg ~latency:lat in
      Oracle.sound cert
      && cert.Oracle.floor <= hii
      && (match cert.Oracle.minimal_ii with
         | Some m -> m >= independent && m <= hii
         | None -> cert.Oracle.verdict = Oracle.Unknown)
      && cert.Oracle.infeasible_below >= cert.Oracle.floor)

let prop_witness_verifies =
  random_ddg_prop ~name:"oracle: every SAT witness passes verify_schedule"
    (fun ddg ->
      let lat = latency ddg in
      let hii = heuristic_ii ddg in
      match Oracle.decide cfg ddg ~latency:lat ~ii:hii ~budget:30_000 () with
      | Oracle.Feasible w, _ ->
          let diags =
            Verify_schedule.verify cfg ddg ~latency:lat ~where:"prop" w
          in
          Diagnostic.n_errors diags = 0
      | Oracle.Infeasible, _ ->
          (* the heuristic found a schedule at this II: claiming
             infeasibility here would be a soundness bug *)
          false
      | Oracle.Out_of_budget, _ -> true)

let prop_rejects_below_recmii =
  random_ddg_prop ~name:"oracle: mutation below the floor is rejected"
    (fun ddg ->
      let lat = latency ddg in
      let floor = independent_floor ddg ~latency:lat in
      floor <= 1
      ||
      match
        Oracle.decide cfg ddg ~latency:lat ~ii:(floor - 1) ~budget:30_000 ()
      with
      | Oracle.Feasible _, _ -> false
      | (Oracle.Infeasible | Oracle.Out_of_budget), _ -> true)

(* -------------------------------------------- leaderboard plumbing *)

module Explain = Vliw_analysis.Explain
module Analyze = Vliw_analysis.Analyze
module Pool = Vliw_parallel.Pool

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* One small gap benchmark (jpegdec/huffman, II=2 over MII=1) rendered
   to JSON under an explicit worker-domain count. *)
let render_explain ~jobs =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      let summary =
        Explain.run_all ~benchmarks:[ "jpegdec" ] ~json:true
          ~oracle_budget:Oracle.default_budget ppf
      in
      Format.pp_print_flush ppf ();
      (summary, Buffer.contents buf))

let test_leaderboard_deterministic () =
  let s1, out1 = render_explain ~jobs:1 in
  let s2, out2 = render_explain ~jobs:2 in
  Alcotest.(check string) "byte-identical at --jobs 1 vs --jobs 2" out1 out2;
  Alcotest.(check int) "one gap loop certified" 1
    (List.length s1.Explain.leaderboard);
  Alcotest.(check int) "same rows both ways"
    (List.length s1.Explain.leaderboard)
    (List.length s2.Explain.leaderboard);
  List.iter
    (fun (row : Explain.oracle_row) ->
      Alcotest.(check bool) "row is sound" true (Oracle.sound row.Explain.o_cert))
    s1.Explain.leaderboard

let test_schema_version_stamped () =
  let _, explain_json = render_explain ~jobs:1 in
  let stamp =
    Printf.sprintf "\"schema_version\": %d" Explain.schema_version
  in
  Alcotest.(check bool) "explain --json carries schema_version" true
    (contains explain_json stamp);
  Alcotest.(check bool) "explain --json carries leaderboard" true
    (contains explain_json "\"leaderboard\"");
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let _ = Analyze.run_all ~benchmarks:[ "epicdec" ] ~json:true ppf in
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "analyze --json carries schema_version" true
    (contains (Buffer.contents buf) stamp)

(* A starvation budget forces Out_of_budget on the gap loop's first
   probe: the verdict must render as unknown(budget) WITH its partial
   result — work spent and the floor proven so far — in both the human
   leaderboard and the per-loop JSON, and stay distinguishable from
   loops where the oracle was never attempted ("oracle":null). *)
let test_unknown_budget_reports_partial_result () =
  let render ~json =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    let summary =
      Explain.run_all ~benchmarks:[ "jpegdec" ] ~json ~oracle_budget:2 ppf
    in
    Format.pp_print_flush ppf ();
    (summary, Buffer.contents buf)
  in
  let summary, human = render ~json:false in
  let rows = summary.Explain.leaderboard in
  Alcotest.(check bool) "at least one row starved" true
    (List.exists
       (fun (r : Explain.oracle_row) ->
         r.Explain.o_cert.Oracle.verdict = Oracle.Unknown)
       rows);
  List.iter
    (fun (r : Explain.oracle_row) ->
      let c = r.Explain.o_cert in
      if c.Oracle.verdict = Oracle.Unknown then begin
        Alcotest.(check bool) "starved row burned work" true
          (c.Oracle.decisions + c.Oracle.conflicts > 0);
        Alcotest.(check bool) "floor proven so far is sound" true
          (c.Oracle.infeasible_below >= c.Oracle.floor
          && c.Oracle.infeasible_below <= c.Oracle.heuristic_ii)
      end)
    rows;
  Alcotest.(check bool) "human leaderboard names the verdict" true
    (contains human "unknown(budget)");
  Alcotest.(check bool) "human leaderboard carries work spent" true
    (contains human "[spent ");
  Alcotest.(check bool) "human leaderboard carries the proven floor" true
    (contains human "proven]");
  let _, json_out = render ~json:true in
  Alcotest.(check bool) "per-loop JSON carries the starved certificate" true
    (contains json_out {|"oracle":{"verdict":"unknown(budget)"|});
  Alcotest.(check bool) "JSON distinguishes not-attempted loops" true
    (contains json_out {|"oracle":null|});
  Alcotest.(check bool) "starved JSON reports decisions spent" true
    (contains json_out {|"decisions":|});
  Alcotest.(check bool) "starved JSON reports the proven floor" true
    (contains json_out {|"proven_floor":|})

let suite =
  [
    Alcotest.test_case "cpsolver: all-diff sat" `Quick test_cpsolver_sat;
    Alcotest.test_case "cpsolver: pigeonhole unsat" `Quick
      test_cpsolver_pigeonhole;
    Alcotest.test_case "cpsolver: decision budget" `Quick test_cpsolver_budget;
    Alcotest.test_case "cpsolver: propagation forces" `Quick
      test_cpsolver_propagation;
    Alcotest.test_case "oracle: independent ops optimal" `Quick
      test_optimal_independent;
    Alcotest.test_case "oracle: refutes below ResMII" `Quick
      test_infeasible_below_resmii;
    Alcotest.test_case "oracle: refutes below RecMII, witness at RecMII"
      `Quick test_infeasible_below_recmii;
    Alcotest.test_case "oracle: cross-cluster copies" `Quick
      test_cross_cluster_gap;
    Alcotest.test_case "oracle: deterministic reruns" `Quick
      test_certify_deterministic;
    Alcotest.test_case "leaderboard: byte-identical across --jobs" `Quick
      test_leaderboard_deterministic;
    Alcotest.test_case "leaderboard: unknown(budget) carries partial result"
      `Quick test_unknown_budget_reports_partial_result;
    Alcotest.test_case "json: schema_version stamped" `Quick
      test_schema_version_stamped;
    prop_oracle_brackets_heuristic;
    prop_witness_verifies;
    prop_rejects_below_recmii;
  ]
