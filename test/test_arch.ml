(* Unit tests for the vliw_arch substrate: configuration, set-associative
   arrays, the word-interleaved cache with attraction buffers, the
   unified cache and the MSI-coherent multiVLIW cache. *)

open Vliw_arch

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cfg = Config.default

let kind =
  Alcotest.testable Access.pp_kind (fun a b -> a = b)

(* ------------------------------------------------------------- config *)

let test_config_default () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check ci "module size" 2048 (Config.module_size cfg);
  check ci "subblock size" 8 (Config.subblock_size cfg);
  check ci "max unroll" 16 (Config.max_unroll cfg)

let test_config_validation () =
  let bad = { cfg with Config.n_clusters = 3 } in
  check cb "non-pow2 clusters rejected" true
    (Result.is_error (Config.validate bad));
  let bad = { cfg with Config.lat_remote_hit = 0 } in
  check cb "unordered latencies rejected" true
    (Result.is_error (Config.validate bad))

let test_addr_mapping () =
  check ci "addr 0 -> cluster 0" 0 (Config.cluster_of_addr cfg 0);
  check ci "addr 4 -> cluster 1" 1 (Config.cluster_of_addr cfg 4);
  check ci "addr 12 -> cluster 3" 3 (Config.cluster_of_addr cfg 12);
  check ci "addr 16 wraps to cluster 0" 0 (Config.cluster_of_addr cfg 16);
  check ci "block of 33" 1 (Config.block_of_addr cfg 33)

let test_access_latency () =
  check ci "local hit" 1 (Access.latency cfg Access.Local_hit);
  check ci "remote miss" 15 (Access.latency cfg Access.Remote_miss);
  Alcotest.check_raises "combined has no latency"
    (Invalid_argument "Access.latency: Combined has no fixed latency")
    (fun () -> ignore (Access.latency cfg Access.Combined))

(* ---------------------------------------------------------- set-assoc *)

let test_set_assoc_basic () =
  let t = Set_assoc.create ~sets:2 ~ways:2 in
  check cb "miss on empty" false (Set_assoc.lookup t 0);
  check cb "no eviction when filling" true (Set_assoc.insert t 0 = None);
  check cb "hit after insert" true (Set_assoc.lookup t 0);
  check ci "occupancy" 1 (Set_assoc.occupancy t)

let test_set_assoc_lru () =
  let t = Set_assoc.create ~sets:1 ~ways:2 in
  ignore (Set_assoc.insert t 10);
  ignore (Set_assoc.insert t 20);
  (* Touch 10 so 20 becomes LRU. *)
  ignore (Set_assoc.lookup t 10);
  check (Alcotest.option ci) "20 evicted" (Some 20) (Set_assoc.insert t 30);
  check cb "10 survived" true (Set_assoc.contains t 10)

let test_set_assoc_contains_no_touch () =
  let t = Set_assoc.create ~sets:1 ~ways:2 in
  ignore (Set_assoc.insert t 10);
  ignore (Set_assoc.insert t 20);
  (* contains must not refresh 10's LRU position. *)
  ignore (Set_assoc.contains t 10);
  check (Alcotest.option ci) "10 still LRU" (Some 10) (Set_assoc.insert t 30)

let test_set_assoc_reinsert () =
  let t = Set_assoc.create ~sets:1 ~ways:2 in
  ignore (Set_assoc.insert t 10);
  ignore (Set_assoc.insert t 20);
  check (Alcotest.option ci) "reinsert evicts nothing" None
    (Set_assoc.insert t 10);
  check (Alcotest.option ci) "20 now LRU... refreshed 10 stays" (Some 20)
    (Set_assoc.insert t 30)

let test_set_assoc_invalidate_flush () =
  let t = Set_assoc.create ~sets:2 ~ways:2 in
  ignore (Set_assoc.insert t 0);
  ignore (Set_assoc.insert t 1);
  Set_assoc.invalidate t 0;
  check cb "invalidated" false (Set_assoc.contains t 0);
  Set_assoc.flush t;
  check ci "flush empties" 0 (Set_assoc.occupancy t)

let test_set_assoc_no_alias () =
  (* Two keys mapping to the same set must not be confused. *)
  let t = Set_assoc.create ~sets:2 ~ways:2 in
  ignore (Set_assoc.insert t 2);
  check cb "4 not present despite same set" false (Set_assoc.contains t 4)

(* --------------------------------------------------- attraction buffer *)

let test_ab_basic () =
  let ab = Attraction_buffer.create cfg in
  check cb "empty" false (Attraction_buffer.holds ab ~cluster:0 ~block:1 ~home:2);
  Attraction_buffer.attract ab ~cluster:0 ~block:1 ~home:2;
  check cb "held after attract" true
    (Attraction_buffer.holds ab ~cluster:0 ~block:1 ~home:2);
  check cb "per-cluster isolation" false
    (Attraction_buffer.holds ab ~cluster:1 ~block:1 ~home:2);
  check cb "per-home isolation" false
    (Attraction_buffer.holds ab ~cluster:0 ~block:1 ~home:3);
  Attraction_buffer.flush ab;
  check ci "flushed" 0 (Attraction_buffer.occupancy ab 0)

let test_ab_capacity () =
  let ab = Attraction_buffer.create cfg in
  (* Attract twice the capacity in subblocks of consecutive blocks (the
     pattern strided loops produce): occupancy is bounded by capacity
     and, with subblock-address indexing, reaches it. *)
  for b = 0 to 7 do
    for home = 0 to 3 do
      Attraction_buffer.attract ab ~cluster:0 ~block:b ~home
    done
  done;
  check ci "bounded by capacity" cfg.Config.ab_entries
    (Attraction_buffer.occupancy ab 0)

(* --------------------------------------------------- interleaved cache *)

let access c ?(attract = true) ?(store = false) ~now ~cluster addr =
  Interleaved_cache.access c ~attract ~now ~cluster ~addr ~store ()

let test_interleaved_classification () =
  let c = Interleaved_cache.create cfg in
  (* Address 0 is homed at cluster 0.  First access: local miss. *)
  let r = access c ~now:0 ~cluster:0 0 in
  check kind "cold local miss" Access.Local_miss r.Access.kind;
  check ci "miss latency" cfg.Config.lat_local_miss r.Access.ready_at;
  (* Long after the fill: local hit. *)
  let r = access c ~now:100 ~cluster:0 0 in
  check kind "local hit" Access.Local_hit r.Access.kind;
  (* Same word from cluster 1: remote hit. *)
  let r = access c ~now:200 ~cluster:1 0 in
  check kind "remote hit" Access.Remote_hit r.Access.kind;
  check ci "remote hit latency" (200 + cfg.Config.lat_remote_hit)
    r.Access.ready_at;
  (* Cold block from the wrong cluster: remote miss. *)
  let r = access c ~now:300 ~cluster:1 4096 in
  check kind "remote miss" Access.Remote_miss r.Access.kind

let test_interleaved_combined () =
  let c = Interleaved_cache.create cfg in
  ignore (access c ~now:0 ~cluster:0 0);
  (* Another access to the same block while the fill is pending. *)
  let r = access c ~now:1 ~cluster:0 4 in
  check kind "combined while pending" Access.Combined r.Access.kind;
  check ci "combined completes with the fill" cfg.Config.lat_local_miss
    r.Access.ready_at

let test_interleaved_ab_attract () =
  let c = Interleaved_cache.create ~with_ab:true cfg in
  ignore (access c ~now:0 ~cluster:0 0);
  (* Remote hit from cluster 1 attracts the subblock... *)
  let r = access c ~now:100 ~cluster:1 0 in
  check kind "remote hit" Access.Remote_hit r.Access.kind;
  (* ...so the next access from cluster 1 is a local hit. *)
  let r = access c ~now:200 ~cluster:1 0 in
  check kind "AB turns it local" Access.Local_hit r.Access.kind;
  check ci "AB occupancy" 1 (Interleaved_cache.ab_occupancy c 1);
  (* Flush between loops drops it. *)
  Interleaved_cache.end_of_loop c;
  let r = access c ~now:300 ~cluster:1 0 in
  check kind "flushed: remote again" Access.Remote_hit r.Access.kind

let test_interleaved_ab_suppressed () =
  let c = Interleaved_cache.create ~with_ab:true cfg in
  ignore (access c ~now:0 ~cluster:0 0);
  ignore (access c ~attract:false ~now:100 ~cluster:1 0);
  let r = access c ~attract:false ~now:200 ~cluster:1 0 in
  check kind "no attraction without the hint" Access.Remote_hit r.Access.kind

let test_interleaved_store_no_attract () =
  let c = Interleaved_cache.create ~with_ab:true cfg in
  ignore (access c ~now:0 ~cluster:0 0);
  ignore (access c ~store:true ~now:100 ~cluster:1 0);
  let r = access c ~now:200 ~cluster:1 0 in
  check kind "stores do not attract" Access.Remote_hit r.Access.kind

let test_interleaved_whole_block_pending () =
  let c = Interleaved_cache.create cfg in
  ignore (access c ~now:0 ~cluster:0 0);
  (* A different subblock of the same block is also in flight. *)
  let r = access c ~now:1 ~cluster:1 4 in
  check kind "other subblock combined" Access.Combined r.Access.kind

(* ------------------------------------------------------ unified cache *)

let test_unified () =
  let c = Unified_cache.create ~slow:false cfg in
  let r = Unified_cache.access c ~now:0 ~addr:0 in
  check kind "cold miss" Access.Local_miss r.Access.kind;
  check ci "miss = hit + next level" (1 + cfg.Config.lat_next_level)
    r.Access.ready_at;
  let r = Unified_cache.access c ~now:50 ~addr:0 in
  check kind "warm hit" Access.Local_hit r.Access.kind;
  let slow = Unified_cache.create ~slow:true cfg in
  check ci "slow hit latency" 5 (Unified_cache.hit_latency slow);
  let r = Unified_cache.access c ~now:51 ~addr:4096 in
  check kind "second cold miss" Access.Local_miss r.Access.kind;
  let r = Unified_cache.access c ~now:52 ~addr:4100 in
  check kind "combined with pending fill" Access.Combined r.Access.kind

(* ----------------------------------------------------- coherent cache *)

let state = Alcotest.of_pp (fun ppf s ->
    Format.pp_print_string ppf
      (match s with
      | `Modified -> "M" | `Shared -> "S" | `Invalid -> "I"))

let test_coherent_load_sharing () =
  let c = Coherent_cache.create cfg in
  let r = Coherent_cache.access c ~now:0 ~cluster:0 ~addr:0 ~store:false in
  check kind "cold fill from memory" Access.Local_miss r.Access.kind;
  check state "filled shared" `Shared (Coherent_cache.state c ~cluster:0 ~block:0);
  (* Cluster 1 loads the same block: cache-to-cache. *)
  let r = Coherent_cache.access c ~now:100 ~cluster:1 ~addr:0 ~store:false in
  check kind "cache-to-cache transfer" Access.Remote_hit r.Access.kind;
  check state "requester shared" `Shared (Coherent_cache.state c ~cluster:1 ~block:0);
  (* Now both hit locally. *)
  let r = Coherent_cache.access c ~now:200 ~cluster:0 ~addr:0 ~store:false in
  check kind "local hit for 0" Access.Local_hit r.Access.kind;
  let r = Coherent_cache.access c ~now:201 ~cluster:1 ~addr:0 ~store:false in
  check kind "local hit for 1" Access.Local_hit r.Access.kind

let test_coherent_store_invalidates () =
  let c = Coherent_cache.create cfg in
  ignore (Coherent_cache.access c ~now:0 ~cluster:0 ~addr:0 ~store:false);
  ignore (Coherent_cache.access c ~now:100 ~cluster:1 ~addr:0 ~store:false);
  (* Store from cluster 0 upgrades and invalidates cluster 1. *)
  let r = Coherent_cache.access c ~now:200 ~cluster:0 ~addr:0 ~store:true in
  check kind "upgrade in place" Access.Local_hit r.Access.kind;
  check state "writer modified" `Modified
    (Coherent_cache.state c ~cluster:0 ~block:0);
  check state "sharer invalidated" `Invalid
    (Coherent_cache.state c ~cluster:1 ~block:0);
  (* Cluster 1's next load is served cache-to-cache from the owner. *)
  let r = Coherent_cache.access c ~now:300 ~cluster:1 ~addr:0 ~store:false in
  check kind "dirty transfer" Access.Remote_hit r.Access.kind;
  check state "owner demoted to shared" `Shared
    (Coherent_cache.state c ~cluster:0 ~block:0)

let test_coherent_store_miss () =
  let c = Coherent_cache.create cfg in
  let r = Coherent_cache.access c ~now:0 ~cluster:2 ~addr:64 ~store:true in
  check kind "write-allocate from memory" Access.Local_miss r.Access.kind;
  check state "modified" `Modified (Coherent_cache.state c ~cluster:2 ~block:2)

let test_coherent_capacity () =
  let c = Coherent_cache.create cfg in
  (* One cluster's cache holds 64 blocks; stream 128 through it. *)
  for b = 0 to 127 do
    ignore
      (Coherent_cache.access c ~now:(b * 20) ~cluster:0
         ~addr:(b * cfg.Config.block_size) ~store:false)
  done;
  check state "early block evicted" `Invalid
    (Coherent_cache.state c ~cluster:0 ~block:0)

let test_interleaved_traffic () =
  let c = Interleaved_cache.create ~with_ab:true cfg in
  ignore (access c ~now:0 ~cluster:0 0);        (* local fill *)
  ignore (access c ~now:100 ~cluster:1 0);      (* remote hit + attraction *)
  ignore (access c ~now:200 ~cluster:1 4096);   (* remote miss *)
  let tr = Interleaved_cache.traffic c in
  check ci "remote words" 2 tr.Interleaved_cache.remote_words;
  check ci "block fills" 2 tr.Interleaved_cache.block_fills;
  check ci "attractions" 1 tr.Interleaved_cache.attractions

let test_coherent_traffic () =
  let c = Coherent_cache.create cfg in
  ignore (Coherent_cache.access c ~now:0 ~cluster:0 ~addr:0 ~store:false);
  ignore (Coherent_cache.access c ~now:100 ~cluster:1 ~addr:0 ~store:false);
  ignore (Coherent_cache.access c ~now:200 ~cluster:0 ~addr:0 ~store:true);
  let tr = Coherent_cache.traffic c in
  check ci "one invalidation" 1 tr.Coherent_cache.invalidations;
  check ci "one cache-to-cache transfer" 1 tr.Coherent_cache.cache_to_cache;
  check ci "one memory fill" 1 tr.Coherent_cache.memory_fills;
  check cb "snoops counted" true (tr.Coherent_cache.snoops >= 2)

let suite =
  [
    ("config: defaults valid", `Quick, test_config_default);
    ("config: validation", `Quick, test_config_validation);
    ("config: address mapping", `Quick, test_addr_mapping);
    ("access: latencies", `Quick, test_access_latency);
    ("set-assoc: basics", `Quick, test_set_assoc_basic);
    ("set-assoc: LRU order", `Quick, test_set_assoc_lru);
    ("set-assoc: contains does not touch", `Quick, test_set_assoc_contains_no_touch);
    ("set-assoc: reinsert refreshes", `Quick, test_set_assoc_reinsert);
    ("set-assoc: invalidate and flush", `Quick, test_set_assoc_invalidate_flush);
    ("set-assoc: full keys, no aliasing", `Quick, test_set_assoc_no_alias);
    ("attraction buffer: basics", `Quick, test_ab_basic);
    ("attraction buffer: capacity", `Quick, test_ab_capacity);
    ("interleaved: classification", `Quick, test_interleaved_classification);
    ("interleaved: combined accesses", `Quick, test_interleaved_combined);
    ("interleaved: attraction", `Quick, test_interleaved_ab_attract);
    ("interleaved: hint suppression", `Quick, test_interleaved_ab_suppressed);
    ("interleaved: stores do not attract", `Quick, test_interleaved_store_no_attract);
    ("interleaved: block-wide pending", `Quick, test_interleaved_whole_block_pending);
    ("unified: hit/miss/combined", `Quick, test_unified);
    ("coherent: load sharing", `Quick, test_coherent_load_sharing);
    ("coherent: store invalidation", `Quick, test_coherent_store_invalidates);
    ("coherent: write allocate", `Quick, test_coherent_store_miss);
    ("coherent: capacity eviction", `Quick, test_coherent_capacity);
    ("interleaved: traffic counters", `Quick, test_interleaved_traffic);
    ("coherent: traffic counters", `Quick, test_coherent_traffic);
  ]
