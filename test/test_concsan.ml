(* The concurrency sanitizer: the trace analyzer on clean and mutant
   histories, the DPOR explorer on the closed scenarios, seed
   replayability, and the full driver's clean bill of health. *)

module Sync = Vliw_parallel.Sync
module D = Vliw_analysis.Diagnostic
module Vsched = Vliw_concsan.Vsched
module Scenarios = Vliw_concsan.Scenarios
module Mutations = Vliw_concsan.Mutations
module Concsan = Vliw_concsan.Concsan

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let seed = 42L

let null_ppf =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* ------------------------------------------------ trace analyzer *)

let test_hbrace_clean_on_disciplined_code () =
  (* A correctly locked producer/consumer leaves no diagnostics. *)
  let (), tr =
    Sync.record_scope (fun () ->
        let m = Sync.mutex ~name:"t.m" () in
        let cv = Sync.condition ~name:"t.cv" () in
        let c = Sync.cell ~name:"t.data" () in
        let ready = ref false in
        let consumer =
          Sync.spawn (fun () ->
              Sync.lock m;
              Sync.read c;
              while not !ready do
                Sync.wait cv m;
                Sync.read c
              done;
              Sync.unlock m)
        in
        let producer =
          Sync.spawn (fun () ->
              Sync.lock m;
              Sync.write c;
              ready := true;
              Sync.signal cv;
              Sync.unlock m)
        in
        Sync.join consumer;
        Sync.join producer)
  in
  let diags = Vliw_concsan.Hbrace.analyze tr in
  check ci "no diagnostics on clean code" 0 (List.length diags)

let test_hbrace_fork_join_orders_unlocked_access () =
  (* Parent writes before fork and after join with no lock: the
     fork/join happens-before edges order it — no race. *)
  let (), tr =
    Sync.record_scope (fun () ->
        let c = Sync.cell ~name:"t.cell" () in
        let x = ref 0 in
        Sync.write c;
        x := 1;
        let h =
          Sync.spawn (fun () ->
              Sync.write c;
              x := 2)
        in
        Sync.join h;
        Sync.write c;
        x := 3)
  in
  check ci "fork/join edges suppress the race" 0
    (List.length (Vliw_concsan.Hbrace.analyze tr))

(* ------------------------------------------------ mutation suite *)

let test_mutations_caught_by_expected_pass () =
  List.iter
    (fun (m : Mutations.t) ->
      let diags = m.Mutations.m_run () in
      check cb
        (Printf.sprintf "mutant %s flagged by %s" m.Mutations.m_name
           m.Mutations.m_expected)
        true
        (List.exists
           (fun d -> d.D.pass = m.Mutations.m_expected)
           diags))
    (Mutations.all ~seed)

(* ------------------------------------------------ explorer *)

let test_scenarios_hold_under_exploration () =
  List.iter
    (fun (sc : Vsched.scenario) ->
      let o = Vsched.explore ~seed sc in
      check ci
        (Printf.sprintf "scenario %s has no failures" sc.Vsched.name)
        0
        (List.length o.Vsched.failures);
      check cb
        (Printf.sprintf "scenario %s explored more than one interleaving"
           sc.Vsched.name)
        true (o.Vsched.executions > 1))
    Scenarios.all

let test_explorer_seed_replayable () =
  let a = Concsan.scenario_report ~seed () in
  let b = Concsan.scenario_report ~seed () in
  check cs "scenario report byte-identical for a fixed seed" a b;
  (* A different seed shuffles the search order but must reach the
     same verdicts (it explores the same space). *)
  let c = Concsan.scenario_report ~seed:7L () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check cb "different seed still finds no failures" false
    (contains c "  failure ")

let test_deadlock_detected_deterministically () =
  (* The missing-claim-release mutant must deadlock under exploration
     at any seed, and the reported schedule must replay identically. *)
  let run s =
    Vsched.explore ~seed:s (Mutations.missing_claim_release_scenario ())
  in
  let o1 = run seed and o2 = run seed in
  check cb "deadlock found" true
    (List.exists
       (fun (f : Vsched.failure) -> f.Vsched.pass = "concsan/deadlock")
       o1.Vsched.failures);
  check cb "same seed, same failures" true
    (o1.Vsched.failures = o2.Vsched.failures);
  let o3 = run 1234L in
  check cb "other seeds find the deadlock too" true
    (List.exists
       (fun (f : Vsched.failure) -> f.Vsched.pass = "concsan/deadlock")
       o3.Vsched.failures)

(* Satellite property: a cancelled flight's memo slot is always
   re-claimable — explored across random scheduler seeds. *)
let test_cancel_release_property_across_seeds () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25
       ~name:"cancelled flight re-claimable at every exploration seed"
       QCheck.(make Gen.(int_bound 1_000_000))
       (fun s ->
         let o =
           Vsched.explore ~seed:(Int64.of_int s)
             Scenarios.memo_cancel_release
         in
         o.Vsched.failures = []))

(* ------------------------------------------------ full driver *)

let test_driver_clean_run () =
  let summary = Concsan.run ~seed null_ppf in
  check ci "zero error diagnostics on main" 0 summary.Concsan.errors;
  check ci "all scenarios ran" (List.length Scenarios.all)
    summary.Concsan.scenarios;
  check cb "recorded traces are non-trivial" true
    (summary.Concsan.trace_events > 100 && summary.Concsan.trace_threads >= 5)

let test_mutation_driver_catches_everything () =
  check cb "run_mutations reports full catch" true
    (Concsan.run_mutations ~seed null_ppf)

let suite =
  [
    ("hbrace: clean locked code yields no diagnostics", `Quick,
     test_hbrace_clean_on_disciplined_code);
    ("hbrace: fork/join edges order unlocked accesses", `Quick,
     test_hbrace_fork_join_orders_unlocked_access);
    ("mutations: every bug class caught by its pass id", `Slow,
     test_mutations_caught_by_expected_pass);
    ("vsched: closed scenarios hold under DPOR", `Slow,
     test_scenarios_hold_under_exploration);
    ("vsched: exploration is seed-replayable", `Slow,
     test_explorer_seed_replayable);
    ("vsched: claim-leak deadlock found at every seed", `Quick,
     test_deadlock_detected_deterministically);
    ("vsched: cancelled flight re-claimable (qcheck seeds)", `Slow,
     test_cancel_release_property_across_seeds);
    ("driver: clean run has zero errors", `Slow, test_driver_clean_run);
    ("driver: mutation suite fully caught", `Slow,
     test_mutation_driver_catches_everything);
  ]
