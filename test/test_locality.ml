(* Properties and unit tests for the congruence-lattice locality
   analysis and the II-bound attribution: lattice laws (join, widening,
   step closure), soundness of the abstract transfer function against
   brute-force address enumeration, the conservation-law checker's pass
   ids, the attribution budget identity, and the missed-locality lint. *)

open Vliw_ir
module A = Vliw_analysis
module D = Vliw_analysis.Diagnostic
module Locality = Vliw_analysis.Locality
module Lattice = Vliw_analysis.Locality.Lattice
module Attribution = Vliw_analysis.Attribution
module Explain = Vliw_analysis.Explain
module Config = Vliw_arch.Config
module Access = Vliw_arch.Access
module Chains = Vliw_core.Chains
module Pipeline = Vliw_core.Pipeline
module Profile = Vliw_core.Profile
module Schedule = Vliw_sched.Schedule
module Stats = Vliw_sim.Stats
module WL = Vliw_workloads

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cfg = Config.default
let modulus = Locality.locality_modulus cfg

let make_test ~name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name
       QCheck.(make Gen.(int_bound 1_000_000))
       prop)

let with_rng f seed =
  let rng = Random.State.make [| seed |] in
  f (fun bound -> QCheck.Gen.generate1 ~rand:rng (QCheck.Gen.int_bound bound))

let random_lattice gi =
  let t = ref (Lattice.bot ~modulus) in
  for _ = 0 to gi modulus do
    t := Lattice.join !t (Lattice.of_residue ~modulus (gi (modulus - 1)))
  done;
  !t

(* ------------------------------------------------------- lattice laws *)

let prop_join_commutative =
  make_test ~name:"lattice: join is commutative"
    (with_rng (fun gi ->
         let a = random_lattice gi and b = random_lattice gi in
         Lattice.equal (Lattice.join a b) (Lattice.join b a)))

let prop_join_associative =
  make_test ~name:"lattice: join is associative"
    (with_rng (fun gi ->
         let a = random_lattice gi
         and b = random_lattice gi
         and c = random_lattice gi in
         Lattice.equal
           (Lattice.join a (Lattice.join b c))
           (Lattice.join (Lattice.join a b) c)))

let prop_join_idempotent_and_bounds =
  make_test ~name:"lattice: join is idempotent and an upper bound"
    (with_rng (fun gi ->
         let a = random_lattice gi and b = random_lattice gi in
         Lattice.equal (Lattice.join a a) a
         && Lattice.leq a (Lattice.join a b)
         && Lattice.leq b (Lattice.join a b)))

let prop_widen_monotone =
  make_test ~name:"lattice: widening covers both arguments and is monotone"
    (with_rng (fun gi ->
         let a = random_lattice gi and b = random_lattice gi in
         let a' = Lattice.join a (random_lattice gi) in
         Lattice.leq a (Lattice.widen a b)
         && Lattice.leq b (Lattice.widen a b)
         && Lattice.leq (Lattice.widen a b) (Lattice.widen a' b)))

let prop_step_closure_closed =
  make_test ~name:"lattice: step closure contains every +k*step residue"
    (with_rng (fun gi ->
         let t = random_lattice gi in
         let step = gi 40 - 20 in
         let c = Lattice.step_closure t step in
         Lattice.leq t c
         && Lattice.equal (Lattice.step_closure c step) c
         && List.for_all
              (fun r ->
                List.for_all
                  (fun k -> Lattice.mem c (r + (k * step)))
                  [ 1; 2; 3; 7 ])
              (Lattice.residues t)))

(* --------------------------------------------------- transfer soundness *)

let random_descriptor gi =
  let storage =
    match gi 2 with
    | 0 -> Mem_access.Global
    | 1 -> Mem_access.Stack
    | _ -> Mem_access.Heap
  in
  Mem_access.make ~storage
    ~offset:(gi 63)
    ~indirect:(gi 3 = 0)
    ~footprint:[| 0; 48; 64; 96; 128; 2048 |].(gi 5)
    ~symbol:(Printf.sprintf "s%d" (gi 5))
    ~stride:(gi 64 - 32)
    ~granularity:[| 1; 2; 4; 8 |].(gi 3)
    ()

let prop_transfer_sound =
  make_test
    ~name:"op_stream contains every address the layout generates (mod M)"
    (with_rng (fun gi ->
         let m = random_descriptor gi in
         let layout =
           WL.Layout.create cfg
             ~aligned:(gi 1 = 0)
             ~run:(if gi 1 = 0 then WL.Layout.Profile_run else WL.Layout.Execution_run)
             ~seed:(gi 1000)
         in
         let stream = Locality.op_stream cfg layout m in
         let ok = ref true in
         for iter = 0 to 300 do
           let addr = WL.Layout.address layout m ~op:0 ~iter in
           if not (Lattice.mem stream addr) then ok := false
         done;
         !ok))

let test_classify_singleton () =
  let base = 4 * 5 in
  (* residue 20 mod 16 = 4 -> cluster 1 *)
  let stream = Lattice.of_residue ~modulus base in
  let home = Config.cluster_of_addr cfg base in
  check cb "assigned = home is Local" true
    (Locality.classify cfg ~assigned:home ~parts:1 stream = Locality.Local);
  check cb "assigned <> home is Remote" true
    (Locality.classify cfg
       ~assigned:((home + 1) mod cfg.Config.n_clusters)
       ~parts:1 stream
    = Locality.Remote);
  (* A two-part element reaches the next cluster too: local nowhere. *)
  check cb "wide element is Mixed for its home" true
    (Locality.classify cfg ~assigned:home ~parts:2 stream = Locality.Mixed)

let test_step_closure_gcd_wrap () =
  (* Stride 6 wrapping in a 16-byte footprint reaches every multiple of
     gcd(6,16) = 2 — the closure must be exactly the even residues. *)
  let stream = Lattice.step_closure (Lattice.of_residue ~modulus 0) 2 in
  check ci "8 residues" 8 (Lattice.cardinal stream);
  check cb "even residues in" true (Lattice.mem stream 6);
  check cb "odd residues out" false (Lattice.mem stream 7)

(* ------------------------------------------- conservation-law checker *)

let fake_bounds ~trip ~n_local ~n_remote ~n_mixed =
  {
    Locality.verdicts = [];
    trip;
    n_local;
    n_remote;
    n_mixed;
    trip_local = trip * n_local;
    trip_remote = trip * n_remote;
    trip_total = trip * (n_local + n_remote + n_mixed);
  }

let stats_of counts =
  let s = Stats.create () in
  List.iter
    (fun (kind, n) ->
      for _ = 1 to n do
        Stats.count_access s kind
      done)
    counts;
  s

let has severity pass diags =
  List.exists (fun d -> d.D.pass = pass && d.D.severity = severity) diags

let test_check_stats_clean () =
  let bounds = fake_bounds ~trip:10 ~n_local:2 ~n_remote:1 ~n_mixed:1 in
  let stats =
    stats_of
      [ (Access.Local_hit, 20); (Access.Remote_hit, 10);
        (Access.Local_miss, 5); (Access.Remote_miss, 5) ]
  in
  List.iter
    (fun attraction_buffers ->
      check ci "no diagnostics" 0
        (List.length
           (Locality.check_stats ~attraction_buffers ~bounds ~stats
              ~where:"t")))
    [ false; true ]

let test_check_stats_remote_bound () =
  (* 2 provably-local ops x 10 iterations, but 25 remote classifications:
     at most (4 - 2) x 10 = 20 could legally be remote. *)
  let bounds = fake_bounds ~trip:10 ~n_local:2 ~n_remote:1 ~n_mixed:1 in
  let stats =
    stats_of [ (Access.Remote_hit, 25); (Access.Local_hit, 15) ]
  in
  check cb "remote-bound violated" true
    (has D.Error "locality/remote-bound"
       (Locality.check_stats ~attraction_buffers:false ~bounds ~stats
          ~where:"t"))

let test_check_stats_local_bound_ab () =
  (* With attraction buffers a remote word may classify Local_hit, so
     only local *misses* are bounded; without them the same stats must
     be flagged. *)
  let bounds = fake_bounds ~trip:10 ~n_local:0 ~n_remote:4 ~n_mixed:0 in
  let stats = stats_of [ (Access.Local_hit, 40) ] in
  check cb "AB tolerates attracted local hits" false
    (has D.Error "locality/local-bound"
       (Locality.check_stats ~attraction_buffers:true ~bounds ~stats
          ~where:"t"));
  check cb "no-AB flags them" true
    (has D.Error "locality/local-bound"
       (Locality.check_stats ~attraction_buffers:false ~bounds ~stats
          ~where:"t"))

let test_check_stats_floors () =
  let bounds = fake_bounds ~trip:10 ~n_local:2 ~n_remote:2 ~n_mixed:0 in
  let stats =
    stats_of [ (Access.Local_hit, 5); (Access.Remote_hit, 35) ]
  in
  check cb "local-floor violated" true
    (has D.Error "locality/local-floor"
       (Locality.check_stats ~attraction_buffers:false ~bounds ~stats
          ~where:"t"));
  let stats = stats_of [ (Access.Local_hit, 35); (Access.Remote_hit, 5) ] in
  check cb "remote-floor violated" true
    (has D.Error "locality/remote-floor"
       (Locality.check_stats ~attraction_buffers:false ~bounds ~stats
          ~where:"t"))

(* --------------------------------------------------------- attribution *)

let test_attribution_budget_identity () =
  (* Over real compiled loops: II >= MII >= floor MII, every bound is at
     most the achieved II, and the ranked budget sums exactly to
     II - floor MII. *)
  List.iter
    (fun bench_name ->
      let bench = WL.Mediabench.find bench_name in
      List.iter
        (fun (r : Explain.loop_report) ->
          let a = r.Explain.attribution in
          let where = r.Explain.bench ^ "/" ^ r.Explain.loop in
          check cb (where ^ ": II >= MII") true
            (a.Attribution.ii >= a.Attribution.mii);
          check cb (where ^ ": MII >= floor") true
            (a.Attribution.mii >= a.Attribution.mii_floor);
          List.iter
            (fun b -> check cb (where ^ ": bound <= II") true (b <= a.Attribution.ii))
            [
              a.Attribution.rec_mii; a.Attribution.res_mii;
              a.Attribution.cluster_bound.Attribution.value;
              a.Attribution.copy_bound.Attribution.value;
              a.Attribution.bus_bound;
            ];
          check ci
            (where ^ ": budget sums to II - floor MII")
            (a.Attribution.ii - a.Attribution.mii_floor)
            (List.fold_left
               (fun acc (t : Attribution.term) -> acc + t.Attribution.cycles)
               0 a.Attribution.budget);
          List.iter
            (fun (t : Attribution.term) ->
              check cb (where ^ ": budget terms positive") true
                (t.Attribution.cycles > 0))
            a.Attribution.budget;
          check cb (where ^ ": unroll factor among candidates") true
            (List.mem_assoc r.Explain.unroll_factor r.Explain.considered))
        (Explain.explain_bench cfg ~seed:7 bench))
    [ "gsmdec"; "epicdec" ]

(* ------------------------------------------------ missed-locality lint *)

let compiled_one_load ~assigned ~latency =
  let b = Builder.create () in
  let m = Mem_access.make ~symbol:"lint_probe" ~stride:0 ~granularity:4 () in
  let _ = Builder.add b ~dests:[ Builder.fresh_reg b ] ~mem:m Opcode.Load in
  let g = Builder.build b in
  let loop = Loop.make ~name:"unit" ~trip_count:10 g in
  {
    Pipeline.source = loop;
    target = Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
    unroll_factor = 1;
    loop;
    profile = Profile.empty ~n_ops:1;
    latencies = [| latency |];
    chains = Chains.build g;
    schedule =
      { Schedule.ii = 1; n_clusters = 4; cluster = [| assigned |];
        start = [| 0 |]; copies = [] };
    estimated_cycles = 10;
    considered = [];
    bus_window_rejections = 0;
  }

let test_missed_locality_lint () =
  let layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed:7
  in
  (* Find the scalar's provable home first, then pin it elsewhere. *)
  let probe = compiled_one_load ~assigned:0 ~latency:1 in
  let home =
    match (Locality.analyze cfg layout probe).Locality.verdicts with
    | [ { Locality.clusters = [ h ]; _ } ] -> h
    | _ -> Alcotest.fail "scalar load must have a singleton home"
  in
  let away = (home + 1) mod cfg.Config.n_clusters in
  check cb "mispinned chain is flagged" true
    (has D.Warn "attr/missed-locality"
       (Attribution.missed_locality cfg layout ~where:"t"
          (compiled_one_load ~assigned:away ~latency:1)));
  check ci "well-pinned chain is clean" 0
    (List.length
       (Attribution.missed_locality cfg layout ~where:"t"
          (compiled_one_load ~assigned:home ~latency:1)));
  check ci "covered latency leaves nothing to save" 0
    (List.length
       (Attribution.missed_locality cfg layout ~where:"t"
          (compiled_one_load ~assigned:away
             ~latency:cfg.Config.lat_remote_hit)))

let suite =
  [
    prop_join_commutative;
    prop_join_associative;
    prop_join_idempotent_and_bounds;
    prop_widen_monotone;
    prop_step_closure_closed;
    prop_transfer_sound;
    Alcotest.test_case "classify singleton streams" `Quick
      test_classify_singleton;
    Alcotest.test_case "step closure of a wrapping stride" `Quick
      test_step_closure_gcd_wrap;
    Alcotest.test_case "conservation law: clean stats pass" `Quick
      test_check_stats_clean;
    Alcotest.test_case "conservation law: remote bound" `Quick
      test_check_stats_remote_bound;
    Alcotest.test_case "conservation law: local bound vs AB" `Quick
      test_check_stats_local_bound_ab;
    Alcotest.test_case "conservation law: floors" `Quick
      test_check_stats_floors;
    Alcotest.test_case "attribution budget identity on real loops" `Quick
      test_attribution_budget_identity;
    Alcotest.test_case "missed-locality lint" `Quick
      test_missed_locality_lint;
  ]
