(* IBC vs IPBC on the jpegenc "loop 67" scenario (Section 5.3).

     dune exec examples/heuristic_duel.exe

   The paper's example: IBC schedules the loop with a tighter II (it
   minimizes register-to-register communication), while IPBC pays extra
   copies to put every memory instruction in its preferred cluster — and
   gets the lower stall time in exchange.  Attraction Buffers then let
   IBC keep its compute advantage while fixing most of its stall. *)

module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Schedule = Vliw_sched.Schedule
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module Context = Vliw_experiments.Context
module WL = Vliw_workloads

let () =
  let ctx = Context.create () in
  let bench = WL.Mediabench.find "jpegenc" in
  let describe label spec =
    Format.printf "%s:@." label;
    List.iter
      (fun (c : Pipeline.compiled) ->
        Format.printf "  %-8s UF=%-2d II=%-3d copies=%-3d balance=%.2f@."
          c.Pipeline.source.Loop.name c.Pipeline.unroll_factor
          c.Pipeline.schedule.Schedule.ii
          (Schedule.n_copies c.Pipeline.schedule)
          (Schedule.workload_balance c.Pipeline.schedule))
      (Context.compiled ctx bench spec);
    List.iter
      (fun (arch, aname) ->
        let s = Context.run ctx bench spec ~arch () in
        Format.printf "  on %-16s compute=%-7d stall=%-6d local-hit=%.2f@."
          aname (Stats.compute_cycles s) (Stats.stall_cycles s)
          (Stats.local_hit_ratio s))
      [
        (Machine.Word_interleaved { attraction_buffers = false }, "interleaved");
        (Machine.Word_interleaved { attraction_buffers = true }, "interleaved+AB");
      ]
  in
  describe "IBC (build chains while scheduling)" (Context.interleaved `Ibc);
  describe "IPBC (pre-build chains, preferred clusters)"
    (Context.interleaved `Ipbc)
