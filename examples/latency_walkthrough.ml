(* The paper's Section 4.3.3 worked example, step by step.

     dune exec examples/latency_walkthrough.exe

   Rebuilds Figure 3's data-dependence graph (two recurrences; REC1
   holds loads n1/n2, REC2 load n6), prints the STEP-1 benefit table and
   runs the full latency-assignment pass; the final latencies match the
   paper: n1 = 4 (local hit + slack), n2 = 1, n6 = 1. *)

module WE = Vliw_experiments.Worked_example
module Context = Vliw_experiments.Context
module Mii = Vliw_ir.Mii
module Scc = Vliw_ir.Scc

let () =
  let ctx = Context.create () in
  let g = WE.ddg () in
  Format.printf "The DDG (Figure 3):@.%a@." Vliw_ir.Ddg.pp g;
  let recs = Scc.recurrences g in
  Format.printf "recurrences found: %d@." (List.length recs);
  List.iter
    (fun nodes ->
      let latency v = Vliw_ir.Ddg.default_latency g v in
      let label = if List.mem WE.n1 nodes then "REC1" else "REC2" in
      Format.printf "  %s = {%s}, II with unit-latency loads = %d@." label
        (String.concat ", " (List.map (Printf.sprintf "n%d") nodes))
        (Mii.recurrence_ii g ~latency nodes))
    recs;
  WE.run Format.std_formatter ctx
