(* Roll your own benchmark and race it across the four memory systems.

     dune exec examples/custom_kernel.exe

   Uses the Kernel DSL to describe a small image-blur loop (two strided
   input rows, one weight table, one output row) and compares the
   word-interleaved cache (both heuristics), the multiVLIW, and the two
   unified-cache configurations on it. *)

module Kernel = Vliw_workloads.Kernel
module Pipeline = Vliw_core.Pipeline
module US = Vliw_core.Unroll_select
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module Context = Vliw_experiments.Context

let blur =
  {
    Vliw_workloads.Benchspec.name = "blur";
    description = "3-tap vertical blur over a 16KB image";
    kernels =
      [
        Kernel.make ~name:"blur_row" ~trip_count:3200 ~compute_per_load:2
          ~use_fp:true
          [
            Kernel.load ~storage:Vliw_ir.Mem_access.Heap ~footprint:16384
              "row_above";
            Kernel.load ~storage:Vliw_ir.Mem_access.Heap ~footprint:16384
              ~offset:4 "row_below";
            Kernel.load ~footprint:64 "weights";
            Kernel.store ~storage:Vliw_ir.Mem_access.Heap ~footprint:16384
              "row_out";
          ];
      ];
  }

let () =
  let ctx = Context.create () in
  Format.printf "%-18s %10s %8s %10s@." "configuration" "compute" "stall"
    "local-hit";
  List.iter
    (fun (label, spec, arch) ->
      let s = Context.run ctx blur spec ~arch () in
      Format.printf "%-18s %10d %8d %10.2f@." label (Stats.compute_cycles s)
        (Stats.stall_cycles s)
        (Stats.local_hit_ratio s))
    [
      ( "interleaved/IPBC",
        Context.interleaved `Ipbc,
        Machine.Word_interleaved { attraction_buffers = true } );
      ( "interleaved/IBC",
        Context.interleaved `Ibc,
        Machine.Word_interleaved { attraction_buffers = true } );
      ( "multiVLIW",
        { Context.target = Pipeline.Multivliw; strategy = US.Selective;
          aligned = true },
        Machine.Multivliw );
      ( "unified L=1",
        { Context.target = Pipeline.Unified { slow = false };
          strategy = US.Selective; aligned = true },
        Machine.Unified { slow = false } );
      ( "unified L=5",
        { Context.target = Pipeline.Unified { slow = true };
          strategy = US.Selective; aligned = true },
        Machine.Unified { slow = true } );
    ]
