(* Attraction Buffers under the microscope.

     dune exec examples/attraction_demo.exe

   Drives the word-interleaved cache directly: a remote hit attracts its
   whole subblock into the requesting cluster's buffer, the next access
   is local, a store does not attract, and the buffer is flushed between
   loops.  Then shows the buffer overflowing under epicdec's
   19-instruction chain and the compiler's "attractable" hints fixing
   the thrash (Section 5.2). *)

module Access = Vliw_arch.Access
module Config = Vliw_arch.Config
module IC = Vliw_arch.Interleaved_cache
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module Context = Vliw_experiments.Context
module WL = Vliw_workloads

let show what (r : Access.t) =
  Format.printf "  %-34s -> %-11s (ready at %d)@." what
    (Access.kind_to_string r.Access.kind)
    r.Access.ready_at

let () =
  let cfg = Config.default in
  let c = IC.create ~with_ab:true cfg in
  Format.printf "Word 0 lives in cluster 0; cluster 1 wants it.@.";
  show "cluster 0 reads word 0 (cold)" (IC.access c ~now:0 ~cluster:0 ~addr:0 ~store:false ());
  show "cluster 1 reads word 0" (IC.access c ~now:100 ~cluster:1 ~addr:0 ~store:false ());
  show "cluster 1 reads word 0 again" (IC.access c ~now:200 ~cluster:1 ~addr:0 ~store:false ());
  show "cluster 1 reads word 16 (same subblock)"
    (IC.access c ~now:300 ~cluster:1 ~addr:16 ~store:false ());
  IC.end_of_loop c;
  show "after the inter-loop flush" (IC.access c ~now:400 ~cluster:1 ~addr:0 ~store:false ());
  Format.printf "@.The epicdec overflow (whole-benchmark stall cycles):@.";
  let ctx = Context.create () in
  let bench = WL.Mediabench.find "epicdec" in
  let spec = Context.interleaved `Ipbc in
  List.iter
    (fun (label, ab_entries, hints) ->
      let s =
        Context.run ctx bench spec
          ~arch:(Machine.Word_interleaved { attraction_buffers = true })
          ~ab_entries ~hints ()
      in
      Format.printf "  %-28s stall = %d@." label (Stats.stall_cycles s))
    [
      ("16-entry buffers", 16, false);
      ("16-entry buffers + hints", 16, true);
      ("8-entry buffers", 8, false);
      ("8-entry buffers + hints", 8, true);
    ]
