(* Quickstart: build a loop, compile it for the interleaved-cache
   clustered VLIW, and simulate it.

     dune exec examples/quickstart.exe

   The loop is the paper's introductory example:

     for (i = 0; i < MAX; i++) {
       ld  r3, a[i]
       r4 = computations on r3
       st  r4, b[i]
     }

   With a 4-cluster machine and 4-byte interleaving, 3 of every 4
   accesses are remote unless the loop is unrolled; the pipeline unrolls
   it by N x I / stride = 4 and every memory operation becomes
   single-cluster. *)

module Builder = Vliw_ir.Builder
module Mem_access = Vliw_ir.Mem_access
module Opcode = Vliw_ir.Opcode
module Loop = Vliw_ir.Loop
module Config = Vliw_arch.Config
module Pipeline = Vliw_core.Pipeline
module Schedule = Vliw_sched.Schedule
module WL = Vliw_workloads

let build_loop () =
  let b = Builder.create () in
  let access symbol =
    Mem_access.make ~storage:Mem_access.Heap ~symbol ~stride:4 ~granularity:4
      ~footprint:2048 ()
  in
  let load = Builder.add b ~dests:[ 0 ] ~mem:(access "a") Opcode.Load in
  let c1 = Builder.add b ~dests:[ 1 ] ~srcs:[ 0 ] Opcode.Int_alu in
  let c2 = Builder.add b ~dests:[ 2 ] ~srcs:[ 1 ] Opcode.Int_mul in
  let store = Builder.add b ~srcs:[ 2 ] ~mem:(access "b") Opcode.Store in
  Builder.flow b load c1;
  Builder.flow b c1 c2;
  Builder.flow b c2 store;
  Loop.make ~name:"quickstart" ~trip_count:1600 (Builder.build b)

let () =
  let cfg = Config.default in
  let loop = build_loop () in

  (* The "profile run": measure hit rates and per-cluster access
     distributions on the profile data set. *)
  let profile_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed:42
  in
  let profiler = WL.Profiling.profiler cfg profile_layout in

  (* Compile: unroll (selective), assign latencies, order, schedule. *)
  let compiled =
    Pipeline.compile cfg
      ~target:(Pipeline.Interleaved { heuristic = `Ipbc; chains = true })
      ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
  in
  Format.printf "unroll factor: %d@." compiled.Pipeline.unroll_factor;
  Format.printf "II = %d, stage count = %d, copies = %d@."
    compiled.Pipeline.schedule.Schedule.ii
    (Schedule.stage_count compiled.Pipeline.schedule)
    (Schedule.n_copies compiled.Pipeline.schedule);

  (* The "execution run": simulate against a different data layout. *)
  let exec_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed:42
  in
  let machine =
    Vliw_sim.Machine.create cfg
      (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true })
  in
  let addr_of =
    WL.Layout.addr_fn exec_layout compiled.Pipeline.loop.Loop.ddg
  in
  let stats = Vliw_sim.Executor.run_loop cfg machine compiled ~addr_of () in
  Format.printf "%a@." Vliw_sim.Stats.pp stats;
  Format.printf "local-hit ratio: %.2f (unrolling made the accesses local)@."
    (Vliw_sim.Stats.local_hit_ratio stats)
