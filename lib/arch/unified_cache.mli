(** The centralized L1 data cache of the baseline clustered architecture:
    8KB, 5 read/write ports, with either an optimistic 1-cycle or a
    realistic 5-cycle total access time (Section 5.1 of the paper).
    Every access is "local"; classification uses [Local_hit]/[Local_miss]
    and [Combined] for requests merged with an in-flight fill. *)

type t

val create : slow:bool -> Config.t -> t
(** [slow:true] selects the 5-cycle access time, [slow:false] 1 cycle. *)

val hit_latency : t -> int

val access : t -> now:int -> addr:int -> Access.t

val access_into : t -> Access.scratch -> now:int -> addr:int -> unit
(** Allocation-free variant of {!access}: identical semantics, result
    written into the caller's scratch slot. *)

val end_of_loop : t -> unit
(** Forget pending-fill bookkeeping between loops. *)
