(* Each way stores (key, stamp); stamp is a monotonic use counter, the
   smallest stamp in a set is the LRU victim.  Sets are small (2-4 ways),
   so linear scans are the right tool. *)

type entry = { mutable key : int; mutable stamp : int; mutable valid : bool }

type t = {
  n_sets : int;
  n_ways : int;
  entries : entry array array;  (** [set].(way) *)
  mutable clock : int;
}

let create ~sets ~ways =
  if sets <= 0 || ways <= 0 then invalid_arg "Set_assoc.create";
  {
    n_sets = sets;
    n_ways = ways;
    entries =
      Array.init sets (fun _ ->
          Array.init ways (fun _ -> { key = 0; stamp = 0; valid = false }));
    clock = 0;
  }

let sets t = t.n_sets
let ways t = t.n_ways

let set_of t key = key mod t.n_sets

let find_way t key =
  let set = t.entries.(set_of t key) in
  let rec scan i =
    if i >= t.n_ways then None
    else if set.(i).valid && set.(i).key = key then Some set.(i)
    else scan (i + 1)
  in
  scan 0

let contains t key = Option.is_some (find_way t key)

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

let lookup t key =
  match find_way t key with
  | Some e ->
      touch t e;
      true
  | None -> false

let insert t key =
  match find_way t key with
  | Some e ->
      touch t e;
      None
  | None ->
      let set = t.entries.(set_of t key) in
      let victim = ref set.(0) in
      Array.iter
        (fun e ->
          if not e.valid then begin
            if !victim.valid then victim := e
          end
          else if !victim.valid && e.stamp < !victim.stamp then victim := e)
        set;
      let evicted = if !victim.valid then Some !victim.key else None in
      !victim.key <- key;
      !victim.valid <- true;
      touch t !victim;
      evicted

let invalidate t key =
  match find_way t key with Some e -> e.valid <- false | None -> ()

let flush t =
  Array.iter (fun set -> Array.iter (fun e -> e.valid <- false) set) t.entries

let occupancy t =
  Array.fold_left
    (fun acc set ->
      Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) acc set)
    0 t.entries

let iter_keys t f =
  Array.iter
    (fun set -> Array.iter (fun e -> if e.valid then f e.key) set)
    t.entries
