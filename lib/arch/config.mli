(** Machine configuration (Table 2 of the paper).

    One record describes the whole processor family; which L1 organization
    is in force (word-interleaved, unified, multiVLIW) is chosen by the
    simulator, not here. *)

type t = {
  n_clusters : int;  (** 4 *)
  int_fus_per_cluster : int;  (** 1 *)
  fp_fus_per_cluster : int;  (** 1 *)
  mem_fus_per_cluster : int;  (** 1 *)
  issue_width_per_cluster : int;  (** issue slots per cluster per cycle *)
  n_reg_buses : int;  (** 4, at 1/2 core frequency *)
  n_mem_buses : int;  (** 4, at 1/2 core frequency *)
  bus_occupancy : int;  (** cycles one transfer holds a bus (2: half freq.) *)
  reg_copy_latency : int;  (** producer->consumer cycles across clusters *)
  cache_size : int;  (** total L1 bytes (8KB) *)
  block_size : int;  (** 32 *)
  associativity : int;  (** 2 *)
  interleaving_factor : int;  (** bytes per interleaving unit (4) *)
  lat_local_hit : int;  (** 1 *)
  lat_remote_hit : int;  (** 5 = bus + access + bus *)
  lat_local_miss : int;  (** 10 *)
  lat_remote_miss : int;  (** 15 *)
  lat_unified_fast : int;  (** optimistic unified-cache hit (1) *)
  lat_unified_slow : int;  (** realistic unified-cache hit (5) *)
  lat_next_level : int;  (** 10-cycle total, always hits *)
  ab_entries : int;  (** attraction-buffer entries per cluster (16) *)
  ab_associativity : int;  (** 2 *)
}

val default : t
(** The configuration of Table 2. *)

val module_size : t -> int
(** Bytes of one cache module ([cache_size / n_clusters]). *)

val subblock_size : t -> int
(** Bytes of a block mapped to one cluster
    ([block_size / n_clusters], 8 for the default configuration). *)

val max_unroll : t -> int
(** N x I: the paper's maximum unrolling factor, in *iterations* — used
    with byte strides (see {!Vliw_core.Unroll_select}). *)

val cluster_of_addr : t -> int -> int
(** Home cluster of a byte address under word interleaving. *)

val block_of_addr : t -> int -> int

val validate : t -> (unit, string) result
(** Check internal consistency (powers of two, divisibility). *)

val fingerprint : t -> string
(** A short hex digest covering every field — equal iff the two
    configurations are equal.  Used to key compilation memos so entries
    can never be reused across differing machine configs. *)

val short_name : t -> string
(** Compact label over the schedule-relevant dimensions only
    ([c<clusters>·i<interleave>·b<reg buses>·o<occupancy>]) — the
    design-space sweep's plan-group tag.  Cache geometry and
    attraction-buffer shape are deliberately excluded: they do not
    affect scheduling at the sweep's shared base geometry. *)

val pp : Format.formatter -> t -> unit
(** Render the configuration as the rows of Table 2. *)
