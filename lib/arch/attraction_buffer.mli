(** Attraction Buffers (Section 3 of the paper): one small set-associative
    buffer per cluster that keeps copies of *remote* subblocks.  A remote
    access attracts the whole subblock; later accesses by the same cluster
    to that subblock are satisfied locally.  Coherence is the scheduler's
    job (memory-dependent chains) plus a flush between loops. *)

type t

val create : Config.t -> t
(** One buffer per cluster, [ab_entries] entries, [ab_associativity]-way. *)

val holds : t -> cluster:int -> block:int -> home:int -> bool
(** Does [cluster]'s buffer hold the subblock of [block] homed at cluster
    [home]?  Refreshes LRU on a hit. *)

val attract : t -> cluster:int -> block:int -> home:int -> unit
(** Bring a remote subblock into [cluster]'s buffer (evicting LRU). *)

val flush : t -> unit
(** Empty every cluster's buffer (executed between loops). *)

val flush_cluster : t -> int -> unit

val occupancy : t -> int -> int
(** Valid entries in one cluster's buffer. *)
