type t = {
  n_clusters : int;
  int_fus_per_cluster : int;
  fp_fus_per_cluster : int;
  mem_fus_per_cluster : int;
  issue_width_per_cluster : int;
  n_reg_buses : int;
  n_mem_buses : int;
  bus_occupancy : int;
  reg_copy_latency : int;
  cache_size : int;
  block_size : int;
  associativity : int;
  interleaving_factor : int;
  lat_local_hit : int;
  lat_remote_hit : int;
  lat_local_miss : int;
  lat_remote_miss : int;
  lat_unified_fast : int;
  lat_unified_slow : int;
  lat_next_level : int;
  ab_entries : int;
  ab_associativity : int;
}

let default =
  {
    n_clusters = 4;
    int_fus_per_cluster = 1;
    fp_fus_per_cluster = 1;
    mem_fus_per_cluster = 1;
    issue_width_per_cluster = 4;
    n_reg_buses = 4;
    n_mem_buses = 4;
    bus_occupancy = 2;
    reg_copy_latency = 2;
    cache_size = 8192;
    block_size = 32;
    associativity = 2;
    interleaving_factor = 4;
    lat_local_hit = 1;
    lat_remote_hit = 5;
    lat_local_miss = 10;
    lat_remote_miss = 15;
    lat_unified_fast = 1;
    lat_unified_slow = 5;
    lat_next_level = 10;
    ab_entries = 16;
    ab_associativity = 2;
  }

let module_size t = t.cache_size / t.n_clusters
let subblock_size t = t.block_size / t.n_clusters
let max_unroll t = t.n_clusters * t.interleaving_factor

let cluster_of_addr t addr = addr / t.interleaving_factor mod t.n_clusters
let block_of_addr t addr = addr / t.block_size

let is_pow2 x = x > 0 && x land (x - 1) = 0

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (is_pow2 t.n_clusters) "n_clusters must be a power of two" in
  let* () = check (is_pow2 t.block_size) "block_size must be a power of two" in
  let* () =
    check (is_pow2 t.interleaving_factor)
      "interleaving_factor must be a power of two"
  in
  let* () =
    check
      (t.cache_size mod (t.n_clusters * t.block_size) = 0)
      "cache_size must be divisible by n_clusters * block_size"
  in
  let* () =
    check
      (t.block_size mod (t.n_clusters * t.interleaving_factor) = 0)
      "block must hold at least one interleaving unit per cluster"
  in
  let* () =
    check
      (t.lat_local_hit <= t.lat_remote_hit
      && t.lat_remote_hit <= t.lat_local_miss
      && t.lat_local_miss <= t.lat_remote_miss)
      "memory latencies must be ordered LH <= RH <= LM <= RM"
  in
  check
    (t.ab_entries mod t.ab_associativity = 0)
    "ab_entries must be divisible by ab_associativity"

(* The record is all immediate fields, so Marshal is a canonical byte
   representation: two configs digest equal iff every field is equal. *)
let fingerprint t = Digest.to_hex (Digest.string (Marshal.to_string t []))

(* Only the dimensions the scheduler can see: cluster count,
   interleaving factor, bus count and occupancy identify a plan group
   of the design-space sweep (cache geometry and AB shape are
   simulation-side).  Two configs with equal short names therefore
   compile every loop identically at the sweep's base geometry. *)
let short_name t =
  Printf.sprintf "c%d·i%d·b%d·o%d" t.n_clusters t.interleaving_factor
    t.n_reg_buses t.bus_occupancy

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Number of clusters        %d@,\
     Functional units          %d FP / %d Integer / %d Memory per cluster@,\
     Cache                     %dKB total, %dB blocks, %d-way, %d/%d cycle \
     latency@,\
     Register buses            %d (transfer holds a bus %d cycles)@,\
     Memory buses              %d (transfer holds a bus %d cycles)@,\
     Next memory level         %d cycle total latency, always hit@,\
     Interleaving factor       %d bytes@,\
     Attraction buffers        %d-entry, %d-way per cluster@]"
    t.n_clusters t.fp_fus_per_cluster t.int_fus_per_cluster
    t.mem_fus_per_cluster (t.cache_size / 1024) t.block_size t.associativity
    t.lat_local_hit t.lat_remote_hit t.n_reg_buses t.bus_occupancy
    t.n_mem_buses t.bus_occupancy t.lat_next_level t.interleaving_factor
    t.ab_entries t.ab_associativity
