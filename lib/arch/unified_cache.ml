type t = {
  cfg : Config.t;
  tags : Set_assoc.t;
  hit_lat : int;
  pending : (int, int) Hashtbl.t;  (** block -> fill-ready cycle *)
}

let create ~slow (cfg : Config.t) =
  let n_blocks = cfg.Config.cache_size / cfg.Config.block_size in
  {
    cfg;
    tags =
      Set_assoc.create
        ~sets:(n_blocks / cfg.Config.associativity)
        ~ways:cfg.Config.associativity;
    hit_lat =
      (if slow then cfg.Config.lat_unified_slow else cfg.Config.lat_unified_fast);
    pending = Hashtbl.create 64;
  }

let hit_latency t = t.hit_lat

let access t ~now ~addr =
  let block = Config.block_of_addr t.cfg addr in
  match Hashtbl.find_opt t.pending block with
  | Some ready when ready > now -> { Access.kind = Access.Combined; ready_at = ready }
  | Some _ | None ->
      if Set_assoc.lookup t.tags block then
        { Access.kind = Access.Local_hit; ready_at = now + t.hit_lat }
      else begin
        ignore (Set_assoc.insert t.tags block);
        let ready = now + t.hit_lat + t.cfg.Config.lat_next_level in
        Hashtbl.replace t.pending block ready;
        { Access.kind = Access.Local_miss; ready_at = ready }
      end

let end_of_loop t = Hashtbl.reset t.pending
