type t = {
  cfg : Config.t;
  tags : Set_assoc.t;
  hit_lat : int;
  pending : Int_table.t;  (** block -> fill-ready cycle *)
}

let create ~slow (cfg : Config.t) =
  let n_blocks = cfg.Config.cache_size / cfg.Config.block_size in
  {
    cfg;
    tags =
      Set_assoc.create
        ~sets:(n_blocks / cfg.Config.associativity)
        ~ways:cfg.Config.associativity;
    hit_lat =
      (if slow then cfg.Config.lat_unified_slow else cfg.Config.lat_unified_fast);
    pending = Int_table.create 64;
  }

let hit_latency t = t.hit_lat

let access_into t (out : Access.scratch) ~now ~addr =
  let block = Config.block_of_addr t.cfg addr in
  let ready = Int_table.find t.pending block ~default:(-1) in
  if ready > now then begin
    out.Access.s_kind <- Access.Combined;
    out.Access.s_ready_at <- ready
  end
  else if Set_assoc.lookup t.tags block then begin
    out.Access.s_kind <- Access.Local_hit;
    out.Access.s_ready_at <- now + t.hit_lat
  end
  else begin
    ignore (Set_assoc.insert t.tags block);
    let ready = now + t.hit_lat + t.cfg.Config.lat_next_level in
    Int_table.set t.pending block ready;
    out.Access.s_kind <- Access.Local_miss;
    out.Access.s_ready_at <- ready
  end

let access t ~now ~addr =
  let out = Access.scratch () in
  access_into t out ~now ~addr;
  Access.of_scratch out

let end_of_loop t = Int_table.reset t.pending
