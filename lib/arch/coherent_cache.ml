type mstate = Modified | Shared

type traffic = {
  invalidations : int;
  cache_to_cache : int;
  memory_fills : int;
  snoops : int;
}

type t = {
  cfg : Config.t;
  caches : Set_assoc.t array;  (** per-cluster residency + LRU *)
  states : (int, mstate) Hashtbl.t;  (** cluster * n_blocks_space + block *)
  pending : (int, int) Hashtbl.t;  (** same key -> fill-ready cycle *)
  mutable stats : traffic;
}

(* Key packing: blocks are unbounded, clusters are not, so the cluster is
   the low component. *)
let key t ~cluster ~block = (block * t.cfg.Config.n_clusters) + cluster

let create (cfg : Config.t) =
  let blocks_per_cluster =
    cfg.Config.cache_size / cfg.Config.n_clusters / cfg.Config.block_size
  in
  {
    cfg;
    caches =
      Array.init cfg.Config.n_clusters (fun _ ->
          Set_assoc.create
            ~sets:(blocks_per_cluster / cfg.Config.associativity)
            ~ways:cfg.Config.associativity);
    states = Hashtbl.create 256;
    pending = Hashtbl.create 64;
    stats = { invalidations = 0; cache_to_cache = 0; memory_fills = 0; snoops = 0 };
  }

let state_of t ~cluster ~block = Hashtbl.find_opt t.states (key t ~cluster ~block)

let set_state t ~cluster ~block st =
  Hashtbl.replace t.states (key t ~cluster ~block) st

let drop_state t ~cluster ~block = Hashtbl.remove t.states (key t ~cluster ~block)

let holders t ~block ~except =
  let acc = ref [] in
  for c = t.cfg.Config.n_clusters - 1 downto 0 do
    if c <> except && Option.is_some (state_of t ~cluster:c ~block) then
      acc := c :: !acc
  done;
  !acc

let install t ~cluster ~block st =
  (match Set_assoc.insert t.caches.(cluster) block with
  | Some evicted -> drop_state t ~cluster ~block:evicted
  | None -> ());
  set_state t ~cluster ~block st

let invalidate_others t ~block ~except =
  let victims = holders t ~block ~except in
  t.stats <-
    {
      t.stats with
      invalidations = t.stats.invalidations + List.length victims;
      snoops = t.stats.snoops + (if victims = [] then 0 else 1);
    };
  List.iter
    (fun c ->
      Set_assoc.invalidate t.caches.(c) block;
      drop_state t ~cluster:c ~block)
    victims

let access t ~now ~cluster ~addr ~store =
  let cfg = t.cfg in
  let block = Config.block_of_addr cfg addr in
  let k = key t ~cluster ~block in
  match Hashtbl.find_opt t.pending k with
  | Some ready when ready > now -> { Access.kind = Access.Combined; ready_at = ready }
  | Some _ | None -> (
      let local_state =
        if Set_assoc.lookup t.caches.(cluster) block then
          state_of t ~cluster ~block
        else None
      in
      match local_state with
      | Some Modified ->
          { Access.kind = Access.Local_hit; ready_at = now + cfg.Config.lat_local_hit }
      | Some Shared ->
          if store then invalidate_others t ~block ~except:cluster;
          if store then set_state t ~cluster ~block Modified;
          { Access.kind = Access.Local_hit; ready_at = now + cfg.Config.lat_local_hit }
      | None ->
          let others = holders t ~block ~except:cluster in
          if others <> [] then begin
            (* Cache-to-cache transfer over the memory buses. *)
            if store then invalidate_others t ~block ~except:cluster
            else
              List.iter
                (fun c -> set_state t ~cluster:c ~block Shared)
                others;
            install t ~cluster ~block (if store then Modified else Shared);
            t.stats <-
              {
                t.stats with
                cache_to_cache = t.stats.cache_to_cache + 1;
                snoops = t.stats.snoops + 1;
              };
            let ready = now + cfg.Config.lat_remote_hit in
            Hashtbl.replace t.pending k ready;
            { Access.kind = Access.Remote_hit; ready_at = ready }
          end
          else begin
            install t ~cluster ~block (if store then Modified else Shared);
            t.stats <-
              {
                t.stats with
                memory_fills = t.stats.memory_fills + 1;
                snoops = t.stats.snoops + 1;
              };
            let ready = now + cfg.Config.lat_local_miss in
            Hashtbl.replace t.pending k ready;
            { Access.kind = Access.Local_miss; ready_at = ready }
          end)

let end_of_loop t = Hashtbl.reset t.pending

let state t ~cluster ~block =
  if not (Set_assoc.contains t.caches.(cluster) block) then `Invalid
  else
    match state_of t ~cluster ~block with
    | Some Modified -> `Modified
    | Some Shared -> `Shared
    | None -> `Invalid

let traffic t = t.stats
