type mstate = Modified | Shared

type traffic = {
  mutable invalidations : int;
  mutable cache_to_cache : int;
  mutable memory_fills : int;
  mutable snoops : int;
}

type t = {
  cfg : Config.t;
  caches : Set_assoc.t array;  (** per-cluster residency + LRU *)
  states : (int, mstate) Hashtbl.t;  (** cluster * n_blocks_space + block *)
  pending : Int_table.t;  (** same key -> fill-ready cycle *)
  stats : traffic;
}

(* Key packing: blocks are unbounded, clusters are not, so the cluster is
   the low component. *)
let key t ~cluster ~block = (block * t.cfg.Config.n_clusters) + cluster

let create (cfg : Config.t) =
  let blocks_per_cluster =
    cfg.Config.cache_size / cfg.Config.n_clusters / cfg.Config.block_size
  in
  {
    cfg;
    caches =
      Array.init cfg.Config.n_clusters (fun _ ->
          Set_assoc.create
            ~sets:(blocks_per_cluster / cfg.Config.associativity)
            ~ways:cfg.Config.associativity);
    states = Hashtbl.create 256;
    pending = Int_table.create 64;
    stats = { invalidations = 0; cache_to_cache = 0; memory_fills = 0; snoops = 0 };
  }

let state_of t ~cluster ~block = Hashtbl.find_opt t.states (key t ~cluster ~block)

let set_state t ~cluster ~block st =
  Hashtbl.replace t.states (key t ~cluster ~block) st

let drop_state t ~cluster ~block = Hashtbl.remove t.states (key t ~cluster ~block)

let holders t ~block ~except =
  let acc = ref [] in
  for c = t.cfg.Config.n_clusters - 1 downto 0 do
    if c <> except && Option.is_some (state_of t ~cluster:c ~block) then
      acc := c :: !acc
  done;
  !acc

(* Allocation-free holder scan for the hit paths: most accesses only
   need to know whether *some* other cluster holds the block. *)
let has_holder t ~block ~except =
  let n = t.cfg.Config.n_clusters in
  let rec scan c =
    c < n
    && ((c <> except && Hashtbl.mem t.states (key t ~cluster:c ~block))
       || scan (c + 1))
  in
  scan 0

let install t ~cluster ~block st =
  (match Set_assoc.insert t.caches.(cluster) block with
  | Some evicted -> drop_state t ~cluster ~block:evicted
  | None -> ());
  set_state t ~cluster ~block st

let invalidate_others t ~block ~except =
  let victims = holders t ~block ~except in
  t.stats.invalidations <- t.stats.invalidations + List.length victims;
  if victims <> [] then t.stats.snoops <- t.stats.snoops + 1;
  List.iter
    (fun c ->
      Set_assoc.invalidate t.caches.(c) block;
      drop_state t ~cluster:c ~block)
    victims

let access_into t (out : Access.scratch) ~now ~cluster ~addr ~store =
  let cfg = t.cfg in
  let block = Config.block_of_addr cfg addr in
  let k = key t ~cluster ~block in
  let pending_ready = Int_table.find t.pending k ~default:(-1) in
  if pending_ready > now then begin
    out.Access.s_kind <- Access.Combined;
    out.Access.s_ready_at <- pending_ready
  end
  else
    let local_state =
      if Set_assoc.lookup t.caches.(cluster) block then
        state_of t ~cluster ~block
      else None
    in
    match local_state with
    | Some Modified ->
        out.Access.s_kind <- Access.Local_hit;
        out.Access.s_ready_at <- now + cfg.Config.lat_local_hit
    | Some Shared ->
        if store then begin
          invalidate_others t ~block ~except:cluster;
          set_state t ~cluster ~block Modified
        end;
        out.Access.s_kind <- Access.Local_hit;
        out.Access.s_ready_at <- now + cfg.Config.lat_local_hit
    | None ->
        if has_holder t ~block ~except:cluster then begin
          (* Cache-to-cache transfer over the memory buses. *)
          if store then invalidate_others t ~block ~except:cluster
          else
            List.iter
              (fun c -> set_state t ~cluster:c ~block Shared)
              (holders t ~block ~except:cluster);
          install t ~cluster ~block (if store then Modified else Shared);
          t.stats.cache_to_cache <- t.stats.cache_to_cache + 1;
          t.stats.snoops <- t.stats.snoops + 1;
          let ready = now + cfg.Config.lat_remote_hit in
          Int_table.set t.pending k ready;
          out.Access.s_kind <- Access.Remote_hit;
          out.Access.s_ready_at <- ready
        end
        else begin
          install t ~cluster ~block (if store then Modified else Shared);
          t.stats.memory_fills <- t.stats.memory_fills + 1;
          t.stats.snoops <- t.stats.snoops + 1;
          let ready = now + cfg.Config.lat_local_miss in
          Int_table.set t.pending k ready;
          out.Access.s_kind <- Access.Local_miss;
          out.Access.s_ready_at <- ready
        end

let access t ~now ~cluster ~addr ~store =
  let out = Access.scratch () in
  access_into t out ~now ~cluster ~addr ~store;
  Access.of_scratch out

let end_of_loop t = Int_table.reset t.pending

let state t ~cluster ~block =
  if not (Set_assoc.contains t.caches.(cluster) block) then `Invalid
  else
    match state_of t ~cluster ~block with
    | Some Modified -> `Modified
    | Some Shared -> `Shared
    | None -> `Invalid

let traffic t = t.stats
