type kind = Local_hit | Remote_hit | Local_miss | Remote_miss | Combined

type t = { kind : kind; ready_at : int }

type scratch = { mutable s_kind : kind; mutable s_ready_at : int }

let scratch () = { s_kind = Local_hit; s_ready_at = 0 }
let of_scratch s = { kind = s.s_kind; ready_at = s.s_ready_at }

let latency (cfg : Config.t) = function
  | Local_hit -> cfg.Config.lat_local_hit
  | Remote_hit -> cfg.Config.lat_remote_hit
  | Local_miss -> cfg.Config.lat_local_miss
  | Remote_miss -> cfg.Config.lat_remote_miss
  | Combined -> invalid_arg "Access.latency: Combined has no fixed latency"

let all_kinds = [ Local_hit; Remote_hit; Local_miss; Remote_miss; Combined ]

let kind_to_string = function
  | Local_hit -> "local hit"
  | Remote_hit -> "remote hit"
  | Local_miss -> "local miss"
  | Remote_miss -> "remote miss"
  | Combined -> "combined"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)
