type traffic = {
  remote_words : int;
  block_fills : int;
  attractions : int;
}

type t = {
  cfg : Config.t;
  tags : Set_assoc.t;  (** replicated tags: presence of whole blocks *)
  ab : Attraction_buffer.t option;
  mutable stats : traffic;
  pending : (int, int) Hashtbl.t;
      (** (block * n_clusters + home) -> ready cycle of the in-flight
          request for that subblock *)
}

let create ?(with_ab = false) cfg =
  let n_blocks = cfg.Config.cache_size / cfg.Config.block_size in
  {
    cfg;
    tags =
      Set_assoc.create
        ~sets:(n_blocks / cfg.Config.associativity)
        ~ways:cfg.Config.associativity;
    ab = (if with_ab then Some (Attraction_buffer.create cfg) else None);
    stats = { remote_words = 0; block_fills = 0; attractions = 0 };
    pending = Hashtbl.create 64;
  }

let config t = t.cfg
let has_ab t = Option.is_some t.ab

let pending_key t ~block ~home = (block * t.cfg.Config.n_clusters) + home

let pending_ready t ~now ~block ~home =
  match Hashtbl.find_opt t.pending (pending_key t ~block ~home) with
  | Some ready when ready > now -> Some ready
  | Some _ | None -> None

let set_pending t ~block ~home ~ready =
  Hashtbl.replace t.pending (pending_key t ~block ~home) ready

let access t ?(attract = true) ~now ~cluster ~addr ~store () =
  let cfg = t.cfg in
  let home = Config.cluster_of_addr cfg addr in
  let block = Config.block_of_addr cfg addr in
  let local = home = cluster in
  let ab_hit =
    (not local)
    &&
    match t.ab with
    | Some ab -> Attraction_buffer.holds ab ~cluster ~block ~home
    | None -> false
  in
  if ab_hit then
    (* Satisfied from the local attraction buffer at local-hit latency.
       A store also updates the home module; chains guarantee no other
       cluster reads the stale home copy meanwhile, so no extra cost. *)
    { Access.kind = Access.Local_hit; ready_at = now + cfg.Config.lat_local_hit }
  else
    match pending_ready t ~now ~block ~home with
    | Some ready -> { Access.kind = Access.Combined; ready_at = ready }
    | None ->
        if Set_assoc.lookup t.tags block then
          if local then
            {
              Access.kind = Access.Local_hit;
              ready_at = now + cfg.Config.lat_local_hit;
            }
          else begin
            let ready = now + cfg.Config.lat_remote_hit in
            set_pending t ~block ~home ~ready;
            t.stats <- { t.stats with remote_words = t.stats.remote_words + 1 };
            (match t.ab with
            | Some ab when attract && not store ->
                Attraction_buffer.attract ab ~cluster ~block ~home;
                t.stats <- { t.stats with attractions = t.stats.attractions + 1 }
            | Some _ | None -> ());
            { Access.kind = Access.Remote_hit; ready_at = ready }
          end
        else begin
          (* Miss: the whole block is fetched; every subblock is in
             flight until the fill completes. *)
          ignore (Set_assoc.insert t.tags block);
          t.stats <-
            {
              t.stats with
              block_fills = t.stats.block_fills + 1;
              remote_words =
                (t.stats.remote_words + if local then 0 else 1);
            };
          let lat =
            if local then cfg.Config.lat_local_miss
            else cfg.Config.lat_remote_miss
          in
          let ready = now + lat in
          for m = 0 to cfg.Config.n_clusters - 1 do
            set_pending t ~block ~home:m ~ready
          done;
          let kind =
            if local then Access.Local_miss else Access.Remote_miss
          in
          { Access.kind; ready_at = ready }
        end

let end_of_loop t =
  Hashtbl.reset t.pending;
  match t.ab with Some ab -> Attraction_buffer.flush ab | None -> ()

let ab_occupancy t c =
  match t.ab with Some ab -> Attraction_buffer.occupancy ab c | None -> 0

let resident t ~block = Set_assoc.contains t.tags block

let traffic t = t.stats
