type traffic = {
  mutable remote_words : int;
  mutable block_fills : int;
  mutable attractions : int;
}

type t = {
  cfg : Config.t;
  tags : Set_assoc.t;  (** replicated tags: presence of whole blocks *)
  ab : Attraction_buffer.t option;
  stats : traffic;
  pending : Int_table.t;
      (** (block * n_clusters + home) -> ready cycle of the in-flight
          request for that subblock *)
}

let create ?(with_ab = false) cfg =
  let n_blocks = cfg.Config.cache_size / cfg.Config.block_size in
  {
    cfg;
    tags =
      Set_assoc.create
        ~sets:(n_blocks / cfg.Config.associativity)
        ~ways:cfg.Config.associativity;
    ab = (if with_ab then Some (Attraction_buffer.create cfg) else None);
    stats = { remote_words = 0; block_fills = 0; attractions = 0 };
    pending = Int_table.create 64;
  }

let config t = t.cfg
let has_ab t = Option.is_some t.ab

let pending_key t ~block ~home = (block * t.cfg.Config.n_clusters) + home

(* -1 = nothing in flight for that subblock (ready cycles are >= 0). *)
let pending_ready t ~now ~block ~home =
  let ready =
    Int_table.find t.pending (pending_key t ~block ~home) ~default:(-1)
  in
  if ready > now then ready else -1

let set_pending t ~block ~home ~ready =
  Int_table.set t.pending (pending_key t ~block ~home) ready

(* The allocation-free core: writes the classification and ready cycle
   into [out] instead of returning a fresh record.  [attract] is a
   mandatory label here — the optional-argument wrapper below would
   otherwise box a [Some b] on every call from the simulation loop. *)
let access_into t (out : Access.scratch) ~attract ~now ~cluster ~addr ~store =
  let cfg = t.cfg in
  let home = Config.cluster_of_addr cfg addr in
  let block = Config.block_of_addr cfg addr in
  let local = home = cluster in
  let ab_hit =
    (not local)
    &&
    match t.ab with
    | Some ab -> Attraction_buffer.holds ab ~cluster ~block ~home
    | None -> false
  in
  if ab_hit then begin
    (* Satisfied from the local attraction buffer at local-hit latency.
       A store also updates the home module; chains guarantee no other
       cluster reads the stale home copy meanwhile, so no extra cost. *)
    out.Access.s_kind <- Access.Local_hit;
    out.Access.s_ready_at <- now + cfg.Config.lat_local_hit
  end
  else
    let ready = pending_ready t ~now ~block ~home in
    if ready >= 0 then begin
      out.Access.s_kind <- Access.Combined;
      out.Access.s_ready_at <- ready
    end
    else if Set_assoc.lookup t.tags block then
      if local then begin
        out.Access.s_kind <- Access.Local_hit;
        out.Access.s_ready_at <- now + cfg.Config.lat_local_hit
      end
      else begin
        let ready = now + cfg.Config.lat_remote_hit in
        set_pending t ~block ~home ~ready;
        t.stats.remote_words <- t.stats.remote_words + 1;
        (match t.ab with
        | Some ab when attract && not store ->
            Attraction_buffer.attract ab ~cluster ~block ~home;
            t.stats.attractions <- t.stats.attractions + 1
        | Some _ | None -> ());
        out.Access.s_kind <- Access.Remote_hit;
        out.Access.s_ready_at <- ready
      end
    else begin
      (* Miss: the whole block is fetched; every subblock is in
         flight until the fill completes. *)
      ignore (Set_assoc.insert t.tags block);
      t.stats.block_fills <- t.stats.block_fills + 1;
      if not local then t.stats.remote_words <- t.stats.remote_words + 1;
      let lat =
        if local then cfg.Config.lat_local_miss
        else cfg.Config.lat_remote_miss
      in
      let ready = now + lat in
      for m = 0 to cfg.Config.n_clusters - 1 do
        set_pending t ~block ~home:m ~ready
      done;
      out.Access.s_kind <-
        (if local then Access.Local_miss else Access.Remote_miss);
      out.Access.s_ready_at <- ready
    end

let access t ?(attract = true) ~now ~cluster ~addr ~store () =
  let out = Access.scratch () in
  access_into t out ~attract ~now ~cluster ~addr ~store;
  Access.of_scratch out

let end_of_loop t =
  Int_table.reset t.pending;
  match t.ab with Some ab -> Attraction_buffer.flush ab | None -> ()

let ab_occupancy t c =
  match t.ab with Some ab -> Attraction_buffer.occupancy ab c | None -> 0

let resident t ~block = Set_assoc.contains t.tags block

let traffic t = t.stats
