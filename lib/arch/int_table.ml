(* Open-addressing map from non-negative int keys to int values.

   The simulators' pending-request bookkeeping sits on the hottest path
   of loop execution; stdlib [Hashtbl] allocates a bucket cell on every
   [replace] and an option on every [find_opt], which is exactly the
   garbage the allocation-free kernel is built to avoid.  This table
   probes two parallel int arrays instead: lookups and updates of an
   existing key never allocate, and inserting only allocates when the
   table grows (amortized, and bounded by the number of live keys).

   No deletion — the simulators only ever [reset] whole tables between
   loops, which keeps the capacity and just clears the keys. *)

type t = {
  mutable keys : int array;  (* -1 = empty slot *)
  mutable vals : int array;
  mutable live : int;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
}

let create capacity =
  let cap =
    let rec up c = if c >= capacity && c >= 16 then c else up (c * 2) in
    up 16
  in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap 0;
    live = 0;
    mask = cap - 1;
  }

(* Fibonacci hashing: spreads consecutive keys (block ids are dense)
   over the table before masking. *)
let slot_of t key = (key * 0x2545F4914F6CDD1D) land max_int land t.mask

let rec probe keys mask key i =
  let k = keys.(i) in
  if k = key || k = -1 then i else probe keys mask key ((i + 1) land mask)

let grow t =
  let keys = t.keys and vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = probe t.keys t.mask k (slot_of t k) in
        t.keys.(j) <- k;
        t.vals.(j) <- vals.(i)
      end)
    keys

let set t key value =
  if key < 0 then invalid_arg "Int_table.set: negative key";
  let i = probe t.keys t.mask key (slot_of t key) in
  if t.keys.(i) = -1 then begin
    t.keys.(i) <- key;
    t.vals.(i) <- value;
    t.live <- t.live + 1;
    if 2 * t.live > t.mask then grow t
  end
  else t.vals.(i) <- value

(* [find t key ~default] never allocates. *)
let find t key ~default =
  if key < 0 then default
  else
    let i = probe t.keys t.mask key (slot_of t key) in
    if t.keys.(i) = -1 then default else t.vals.(i)

let reset t =
  if t.live > 0 then begin
    Array.fill t.keys 0 (t.mask + 1) (-1);
    t.live <- 0
  end

let length t = t.live
