type t = { n_clusters : int; buffers : Set_assoc.t array }

(* Index by the subblock's word address (block, then home in the low
   bits): subblocks of one block spread over consecutive sets, which is
   what a hardware buffer indexing low address bits does. *)
let key t ~block ~home = (block * t.n_clusters) + home

let create (cfg : Config.t) =
  let sets = cfg.Config.ab_entries / cfg.Config.ab_associativity in
  {
    n_clusters = cfg.Config.n_clusters;
    buffers =
      Array.init cfg.Config.n_clusters (fun _ ->
          Set_assoc.create ~sets ~ways:cfg.Config.ab_associativity);
  }

let holds t ~cluster ~block ~home =
  Set_assoc.lookup t.buffers.(cluster) (key t ~block ~home)

let attract t ~cluster ~block ~home =
  ignore (Set_assoc.insert t.buffers.(cluster) (key t ~block ~home))

let flush t = Array.iter Set_assoc.flush t.buffers
let flush_cluster t c = Set_assoc.flush t.buffers.(c)
let occupancy t c = Set_assoc.occupancy t.buffers.(c)
