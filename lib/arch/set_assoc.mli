(** Generic set-associative tag array with true-LRU replacement.

    Keys are arbitrary non-negative integers (block numbers, or packed
    (block, module) pairs for attraction buffers); the structure maps a
    key to its set by modulo and stores the full key, so it never aliases. *)

type t

val create : sets:int -> ways:int -> t
(** @raise Invalid_argument if either argument is non-positive. *)

val sets : t -> int
val ways : t -> int

val contains : t -> int -> bool
(** Presence check without touching LRU state. *)

val lookup : t -> int -> bool
(** Presence check; on a hit the entry becomes most-recently used. *)

val insert : t -> int -> int option
(** Insert a key (MRU).  Returns the evicted key, if any.  Inserting a
    present key refreshes its LRU position and evicts nothing. *)

val invalidate : t -> int -> unit
(** Remove a key if present. *)

val flush : t -> unit
(** Empty the whole array. *)

val occupancy : t -> int
(** Number of valid entries. *)

val iter_keys : t -> (int -> unit) -> unit
