(** The word-interleaved L1 data cache (Section 3 of the paper).

    A cache block is distributed over the clusters: the words of a block
    whose interleaving units map to cluster [c] form the block's subblock
    in [c]'s cache module.  Tags are replicated in every module, so
    presence is a property of the whole block; locality is a property of
    the accessed word.  Requests to a subblock that is already in flight
    are *combined* with the pending request.

    Optionally the cache carries Attraction Buffers; remote hits then
    attract their subblock, and later accesses to it are local hits. *)

type t

val create : ?with_ab:bool -> Config.t -> t
(** [with_ab] defaults to [false]. *)

val config : t -> Config.t
val has_ab : t -> bool

val access :
  t -> ?attract:bool -> now:int -> cluster:int -> addr:int -> store:bool ->
  unit -> Access.t
(** Perform one word access at absolute cycle [now] from [cluster].
    Updates tags, pending-request state and attraction buffers; returns
    the classification and the cycle the datum is ready.
    [attract] (default [true]) lets the compiler's "attractable" hints
    suppress attraction for loads that would thrash the buffer. *)

val access_into :
  t ->
  Access.scratch ->
  attract:bool ->
  now:int ->
  cluster:int ->
  addr:int ->
  store:bool ->
  unit
(** Allocation-free variant of {!access}: identical semantics, but the
    result is written into the caller's scratch slot and [attract] is a
    mandatory label (an optional argument would box on every call).
    This is the entry point of the simulator's steady-state loop. *)

val end_of_loop : t -> unit
(** Flush attraction buffers and forget pending requests — executed
    between loops, as the paper requires for correctness. *)

val ab_occupancy : t -> int -> int
(** Valid attraction-buffer entries of one cluster (0 without ABs). *)

val resident : t -> block:int -> bool
(** Tag check without side effects (for tests). *)

(** Memory-bus traffic counters.  The word-interleaved design needs no
    coherence protocol: its traffic is plain requests and fills, which is
    the simplicity argument of the paper's comparison with the
    multiVLIW. *)
type traffic = {
  mutable remote_words : int;
      (** word requests sent over the memory buses *)
  mutable block_fills : int;  (** whole-block fills from the next level *)
  mutable attractions : int;
      (** subblocks replicated into attraction buffers *)
}

val traffic : t -> traffic
(** Live counters (mutable so the access path can bump them without
    allocating a record per access) — read, don't write. *)
