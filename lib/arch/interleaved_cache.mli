(** The word-interleaved L1 data cache (Section 3 of the paper).

    A cache block is distributed over the clusters: the words of a block
    whose interleaving units map to cluster [c] form the block's subblock
    in [c]'s cache module.  Tags are replicated in every module, so
    presence is a property of the whole block; locality is a property of
    the accessed word.  Requests to a subblock that is already in flight
    are *combined* with the pending request.

    Optionally the cache carries Attraction Buffers; remote hits then
    attract their subblock, and later accesses to it are local hits. *)

type t

val create : ?with_ab:bool -> Config.t -> t
(** [with_ab] defaults to [false]. *)

val config : t -> Config.t
val has_ab : t -> bool

val access :
  t -> ?attract:bool -> now:int -> cluster:int -> addr:int -> store:bool ->
  unit -> Access.t
(** Perform one word access at absolute cycle [now] from [cluster].
    Updates tags, pending-request state and attraction buffers; returns
    the classification and the cycle the datum is ready.
    [attract] (default [true]) lets the compiler's "attractable" hints
    suppress attraction for loads that would thrash the buffer. *)

val end_of_loop : t -> unit
(** Flush attraction buffers and forget pending requests — executed
    between loops, as the paper requires for correctness. *)

val ab_occupancy : t -> int -> int
(** Valid attraction-buffer entries of one cluster (0 without ABs). *)

val resident : t -> block:int -> bool
(** Tag check without side effects (for tests). *)

(** Memory-bus traffic counters.  The word-interleaved design needs no
    coherence protocol: its traffic is plain requests and fills, which is
    the simplicity argument of the paper's comparison with the
    multiVLIW. *)
type traffic = {
  remote_words : int;  (** word requests sent over the memory buses *)
  block_fills : int;  (** whole-block fills from the next level *)
  attractions : int;  (** subblocks replicated into attraction buffers *)
}

val traffic : t -> traffic
