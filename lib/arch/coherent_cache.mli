(** The multiVLIW memory system [Sánchez & González, MICRO-33]: one
    complete cache per cluster (2KB each for the default configuration)
    kept coherent with an MSI snoopy protocol over the memory buses.
    Data may be replicated — the effective capacity shrinks, but accesses
    to replicated data are local.

    Classification mapping used for reporting: a local-cache hit is
    [Local_hit]; a cache-to-cache transfer is [Remote_hit] (it costs the
    same bus round trip); a fill from the next level is [Local_miss];
    merged in-flight requests are [Combined]. *)

type t

val create : Config.t -> t

val access : t -> now:int -> cluster:int -> addr:int -> store:bool -> Access.t

val access_into :
  t -> Access.scratch -> now:int -> cluster:int -> addr:int -> store:bool -> unit
(** Allocation-free variant of {!access}: identical semantics, result
    written into the caller's scratch slot. *)

val end_of_loop : t -> unit
(** Forget pending-fill bookkeeping (cache contents persist; the
    multiVLIW needs no inter-loop flush). *)

val state : t -> cluster:int -> block:int -> [ `Modified | `Shared | `Invalid ]
(** Protocol state, for tests. *)

(** Protocol traffic counters — the cost side of the paper's
    "the multiVLIW has a more complex cache and bus design" argument. *)
type traffic = {
  mutable invalidations : int;
      (** lines killed in other clusters by stores *)
  mutable cache_to_cache : int;  (** transfers served by a peer cache *)
  mutable memory_fills : int;  (** fills from the next memory level *)
  mutable snoops : int;  (** bus transactions every cache had to watch *)
}

val traffic : t -> traffic
(** Live counters (mutable so the access path can bump them without
    allocating a record per access) — read, don't write. *)

