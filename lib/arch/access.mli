(** Classification of memory accesses on the interleaved-cache
    architecture (Section 3 of the paper), plus [Combined]: a request to a
    subblock that is already in flight, which is merged with the pending
    request instead of being issued. *)

type kind = Local_hit | Remote_hit | Local_miss | Remote_miss | Combined

type t = {
  kind : kind;
  ready_at : int;  (** absolute cycle at which the datum is available *)
}

val latency : Config.t -> kind -> int
(** Architectural latency of a non-combined access class.
    @raise Invalid_argument on [Combined] (its latency is the residual
    wait of the pending request). *)

val all_kinds : kind list
val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
