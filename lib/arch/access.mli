(** Classification of memory accesses on the interleaved-cache
    architecture (Section 3 of the paper), plus [Combined]: a request to a
    subblock that is already in flight, which is merged with the pending
    request instead of being issued. *)

type kind = Local_hit | Remote_hit | Local_miss | Remote_miss | Combined

type t = {
  kind : kind;
  ready_at : int;  (** absolute cycle at which the datum is available *)
}

(** Mutable result slot for the allocation-free access entry points
    ([access_into] in the cache models): the caller allocates one
    scratch up front and every access overwrites it, so the simulation
    hot loop never allocates an access record. *)
type scratch = { mutable s_kind : kind; mutable s_ready_at : int }

val scratch : unit -> scratch
(** A fresh scratch slot (initialized to a local hit at cycle 0). *)

val of_scratch : scratch -> t
(** Snapshot the scratch into an immutable {!t} (allocates). *)

val latency : Config.t -> kind -> int
(** Architectural latency of a non-combined access class.
    @raise Invalid_argument on [Combined] (its latency is the residual
    wait of the pending request). *)

val all_kinds : kind list
val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
