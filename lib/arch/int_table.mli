(** Allocation-free open-addressing map from non-negative int keys to
    int values — the pending-request bookkeeping of the cache models,
    probed on every simulated access.

    [set] and [find] never allocate once the table has grown to its
    working size; there is no per-key deletion, only {!reset} (the
    between-loops flush), which clears every binding but keeps the
    capacity. *)

type t

val create : int -> t
(** [create capacity] — initial capacity hint (rounded up to a power of
    two, at least 16). *)

val set : t -> int -> int -> unit
(** Insert or overwrite.  @raise Invalid_argument on a negative key. *)

val find : t -> int -> default:int -> int
(** [find t k ~default] is the value bound to [k], or [default].
    Never allocates. *)

val reset : t -> unit
(** Remove every binding, keeping the allocated capacity. *)

val length : t -> int
(** Number of live bindings. *)
