(* Iterative Tarjan: recursion replaced by an explicit work stack so that
   very large unrolled DDGs cannot overflow the OCaml stack. *)

let components ddg =
  let n = Ddg.n_ops ddg in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let result = ref [] in
  let visit root =
    (* Work items: (node, remaining successor edges). *)
    let work = ref [ (root, ref (Ddg.succs ddg root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, rest) :: tail -> (
          match !rest with
          | e :: more ->
              rest := more;
              let w = e.Edge.dst in
              if index.(w) < 0 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                work := (w, ref (Ddg.succs ddg w)) :: !work
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              work := tail;
              (match tail with
              | (parent, _) :: _ ->
                  lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                let comp = ref [] in
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: rest_stack ->
                      stack := rest_stack;
                      on_stack.(w) <- false;
                      comp := w :: !comp;
                      if w = v then continue := false
                done;
                result := !comp :: !result
              end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  !result

let recurrences ddg =
  let has_self_edge v =
    List.exists (fun (e : Edge.t) -> e.dst = v) (Ddg.succs ddg v)
  in
  List.filter
    (function [] -> false | [ v ] -> has_self_edge v | _ -> true)
    (components ddg)

let component_of ddg =
  let comp = Array.make (Ddg.n_ops ddg) (-1) in
  List.iteri (fun i nodes -> List.iter (fun v -> comp.(v) <- i) nodes)
    (components ddg);
  fun id -> comp.(id)
