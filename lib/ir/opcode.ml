type fu_class = Int_fu | Fp_fu | Mem_fu

type t =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp_alu
  | Fp_mul
  | Fp_div
  | Load
  | Store
  | Copy

let fu_class = function
  | Int_alu | Int_mul | Int_div | Copy -> Int_fu
  | Fp_alu | Fp_mul | Fp_div -> Fp_fu
  | Load | Store -> Mem_fu

let default_latency = function
  | Int_alu -> 1
  | Int_mul -> 2
  | Int_div -> 6
  | Fp_alu -> 2
  | Fp_mul -> 2
  | Fp_div -> 6
  | Load -> 1
  | Store -> 1
  | Copy -> 2

let is_memory = function Load | Store -> true | _ -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | Int_alu -> "add"
  | Int_mul -> "mul"
  | Int_div -> "div"
  | Fp_alu -> "fadd"
  | Fp_mul -> "fmul"
  | Fp_div -> "fdiv"
  | Load -> "load"
  | Store -> "store"
  | Copy -> "copy"

let pp ppf t = Format.pp_print_string ppf (to_string t)
