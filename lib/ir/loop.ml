type t = { name : string; ddg : Ddg.t; trip_count : int; weight : float }

let make ?(weight = 1.0) ~name ~trip_count ddg =
  if trip_count <= 0 then invalid_arg "Loop.make: non-positive trip count";
  { name; ddg; trip_count; weight }

let unrolled t ~factor =
  {
    t with
    ddg = Unroll.ddg t.ddg ~factor;
    trip_count = max 1 (t.trip_count / factor);
  }

let pp ppf t =
  Format.fprintf ppf "loop %s (trip=%d, weight=%.3f):@,%a" t.name t.trip_count
    t.weight Ddg.pp t.ddg
