type reg = int

type t = {
  id : int;
  opcode : Opcode.t;
  dests : reg list;
  srcs : reg list;
  mem : Mem_access.t option;
}

let make ?(dests = []) ?(srcs = []) ?mem ~id opcode =
  (match (Opcode.is_memory opcode, mem) with
  | true, None ->
      invalid_arg "Operation.make: memory opcode without access descriptor"
  | false, Some _ ->
      invalid_arg "Operation.make: access descriptor on non-memory opcode"
  | _ -> ());
  { id; opcode; dests; srcs; mem }

let is_memory t = Opcode.is_memory t.opcode
let is_load t = Opcode.equal t.opcode Opcode.Load
let is_store t = Opcode.equal t.opcode Opcode.Store
let with_id t id = { t with id }
let with_mem t mem = { t with mem = Some mem }

let pp ppf t =
  let pp_regs = Fmt.(list ~sep:comma int) in
  Format.fprintf ppf "n%d: %a" t.id Opcode.pp t.opcode;
  if t.dests <> [] then Format.fprintf ppf " r[%a] <-" pp_regs t.dests;
  if t.srcs <> [] then Format.fprintf ppf " r[%a]" pp_regs t.srcs;
  match t.mem with
  | None -> ()
  | Some m -> Format.fprintf ppf " @@ %a" Mem_access.pp m
