type t = {
  ops : Operation.t array;
  edges : Edge.t list;
  succs : Edge.t list array;
  preds : Edge.t list array;
}

let make ops edges =
  let n = Array.length ops in
  Array.iteri
    (fun i (o : Operation.t) ->
      if o.Operation.id <> i then invalid_arg "Ddg.make: non-dense ids")
    ops;
  let succs = Array.make n [] and preds = Array.make n [] in
  let add (e : Edge.t) =
    if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
      invalid_arg "Ddg.make: edge endpoint out of range";
    succs.(e.src) <- e :: succs.(e.src);
    preds.(e.dst) <- e :: preds.(e.dst)
  in
  List.iter add edges;
  { ops; edges; succs; preds }

let n_ops t = Array.length t.ops
let op t i = t.ops.(i)
let ops t = t.ops
let edges t = t.edges
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)

let memory_ops t =
  let acc = ref [] in
  for i = Array.length t.ops - 1 downto 0 do
    if Operation.is_memory t.ops.(i) then acc := i :: !acc
  done;
  !acc

let effective_latency ~latency (e : Edge.t) =
  match e.kind with
  | Edge.Reg_flow -> latency e.src
  | Edge.Reg_anti -> 0
  | Edge.Reg_out | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out
  | Edge.Mem_unresolved ->
      1

let default_latency t i = Opcode.default_latency t.ops.(i).Operation.opcode

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun o -> Format.fprintf ppf "%a@," Operation.pp o) t.ops;
  List.iter (fun e -> Format.fprintf ppf "%a@," Edge.pp e) t.edges;
  Format.fprintf ppf "@]"
