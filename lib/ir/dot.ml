let cluster_colors =
  [| "lightblue"; "lightgreen"; "lightsalmon"; "plum"; "khaki"; "lightcyan";
     "mistyrose"; "honeydew" |]

let emit ppf g ~color =
  Format.fprintf ppf "digraph ddg {@.  rankdir=TB;@.";
  Array.iter
    (fun (o : Operation.t) ->
      let shape = if Operation.is_memory o then "box" else "ellipse" in
      let label =
        match o.Operation.mem with
        | Some m ->
            Format.asprintf "n%d %s\\n%a" o.Operation.id
              (Opcode.to_string o.Operation.opcode)
              Mem_access.pp m
        | None ->
            Printf.sprintf "n%d %s" o.Operation.id
              (Opcode.to_string o.Operation.opcode)
      in
      Format.fprintf ppf
        "  n%d [shape=%s, label=\"%s\", style=filled, fillcolor=%s];@."
        o.Operation.id shape label (color o.Operation.id))
    (Ddg.ops g);
  List.iter
    (fun (e : Edge.t) ->
      let style = if e.Edge.distance > 0 then "dashed" else "solid" in
      let label =
        if e.Edge.distance > 0 then
          Printf.sprintf "%s d=%d" (Edge.kind_to_string e.Edge.kind)
            e.Edge.distance
        else Edge.kind_to_string e.Edge.kind
      in
      Format.fprintf ppf "  n%d -> n%d [style=%s, label=\"%s\"];@." e.Edge.src
        e.Edge.dst style label)
    (Ddg.edges g);
  Format.fprintf ppf "}@."

let ddg ppf g = emit ppf g ~color:(fun _ -> "white")

let scheduled ppf g ~cluster =
  emit ppf g ~color:(fun v ->
      cluster_colors.(cluster v mod Array.length cluster_colors))

let to_file path g =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  ddg ppf g;
  Format.pp_print_flush ppf ();
  close_out oc
