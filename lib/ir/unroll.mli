(** Loop unrolling at the DDG level.

    Unrolling by [factor] U replicates every operation U times.  Copy [k]
    of a memory operation accesses [offset + k * stride] with stride
    [U * stride] (its stride in the unrolled loop).  A dependence edge
    [(u, v, d)] becomes, for every copy [k], an edge from [u_k] to
    [v_((k + d) mod U)] with distance [(k + d) / U] — the standard
    redistribution of loop-carried dependences over unrolled copies. *)

val ddg : Ddg.t -> factor:int -> Ddg.t
(** @raise Invalid_argument if [factor < 1]. *)

val copy_index : factor:int -> int -> int
(** [copy_index ~factor id] recovers which unrolled copy an operation id
    of the unrolled DDG belongs to. *)

val original_id : factor:int -> int -> int
(** Original-loop operation id an unrolled operation came from. *)
