(** Strongly-connected components of a DDG — the loop's recurrences.

    Components are returned in reverse topological order of the condensed
    graph (Tarjan's invariant); each component lists node ids in no
    particular order. *)

val components : Ddg.t -> int list list
(** All strongly-connected components, including singletons. *)

val recurrences : Ddg.t -> int list list
(** Only genuine recurrences: components with more than one node, or a
    single node with a self-edge. *)

val component_of : Ddg.t -> (int -> int)
(** [component_of ddg id] is a dense component index for node [id];
    nodes share an index iff they share a component. *)
