(** Imperative construction of DDGs for workload generators, examples and
    tests.  Ids are handed out densely in [add] order. *)

type t

val create : unit -> t

val fresh_reg : t -> Operation.reg

val add :
  t ->
  ?dests:Operation.reg list ->
  ?srcs:Operation.reg list ->
  ?mem:Mem_access.t ->
  Opcode.t ->
  int
(** Add an operation; returns its id. *)

val dep : t -> ?kind:Edge.kind -> ?distance:int -> int -> int -> unit
(** [dep t src dst] adds a dependence edge. *)

val flow : t -> ?distance:int -> int -> int -> unit
(** [flow t src dst] adds a register-flow dependence ([Reg_flow]). *)

val n_ops : t -> int

val build : t -> Ddg.t
(** Finalize.  The builder may be reused afterwards (further additions do
    not affect already-built graphs). *)
