(** Dependence edges of the data-dependence graph.

    [distance] is the dependence distance in loop iterations (0 for
    intra-iteration dependences).  Memory-dependence kinds include
    [Mem_unresolved]: the conservative edges the paper's compiler adds when
    memory disambiguation fails; they participate in memory-dependent
    chains exactly like true memory dependences. *)

type kind =
  | Reg_flow  (** true register dependence; latency of the producer *)
  | Reg_anti  (** zero latency: both ends may share a cycle *)
  | Reg_out  (** latency 1 *)
  | Mem_flow
  | Mem_anti
  | Mem_out
  | Mem_unresolved

type t = { src : int; dst : int; kind : kind; distance : int }

val make : ?kind:kind -> ?distance:int -> src:int -> dst:int -> unit -> t
(** Defaults: [kind = Reg_flow], [distance = 0].
    @raise Invalid_argument on a negative distance. *)

val is_memory_kind : kind -> bool
(** True for the four [Mem_*] kinds — the edges that define
    memory-dependent chains. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
