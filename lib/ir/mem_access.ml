type storage = Global | Stack | Heap

type t = {
  symbol : string;
  storage : storage;
  offset : int;
  stride : int;
  granularity : int;
  footprint : int;
  indirect : bool;
}

let make ?(storage = Global) ?(offset = 0) ?(indirect = false) ?(footprint = 0)
    ~symbol ~stride ~granularity () =
  assert (granularity > 0);
  { symbol; storage; offset; stride; granularity; footprint; indirect }

let equal (a : t) (b : t) = a = b

let pp ppf t =
  Format.fprintf ppf "%s[%d%+d*i]:%dB%s" t.symbol t.offset t.stride
    t.granularity
    (if t.indirect then " (indirect)" else "")
