(** A modulo-schedulable loop: its DDG plus the dynamic information the
    paper's compiler gets from profiling (average trip count) and from the
    benchmark structure (weight in the dynamic instruction stream). *)

type t = {
  name : string;
  ddg : Ddg.t;
  trip_count : int;  (** iterations of the *original* (non-unrolled) loop *)
  weight : float;  (** share of the benchmark's dynamic instructions *)
}

val make : ?weight:float -> name:string -> trip_count:int -> Ddg.t -> t
(** @raise Invalid_argument on a non-positive trip count. *)

val unrolled : t -> factor:int -> t
(** Unroll the DDG and divide the trip count (the workload generators only
    use trip counts that are multiples of the maximum unroll factor). *)

val pp : Format.formatter -> t -> unit
