exception Infeasible

(* A captured recurrence: node ids remapped to a dense [0, n) range and
   the induced edges stored flat, so feasibility checks allocate nothing
   beyond one distance array. *)
(* One simple cycle of the recurrence: the operations whose (variable)
   latency its edges use, plus the fixed latency and distance sums. *)
type cycle = { c_ops : int array; c_fixed : int; c_dist : int }

type solver = {
  n : int;
  nodes : int array;  (** dense index -> original id *)
  srcs : int array;
  dsts : int array;
  lat_ops : int array;  (** original id of the op whose latency the edge
                            uses (Reg_flow), or -1 for fixed latency *)
  fixed : int array;  (** fixed component of the edge latency *)
  dists : int array;
  dist : int array;
      (** relaxation scratch — latency assignment runs hundreds of
          feasibility probes per solver, so the distance array is reused
          rather than allocated per probe (a solver is only ever used
          from one domain) *)
  cycles : cycle array option;
      (** the recurrence's simple cycles, when enumeration stayed within
          budget: II queries then reduce to a max of cycle ratios
          instead of a Bellman–Ford binary search *)
}

(* Simple-cycle enumeration (Tiernan-style: each cycle is discovered
   from its minimal dense node).  Dependence recurrences are small and
   sparse, so the cycle count is tiny in practice; the work budget
   guards the exponential worst case — on overrun the solver just keeps
   the Bellman–Ford path.  A latency-assignment run evaluates hundreds
   of latency vectors against one recurrence, and II = max over cycles
   of ceil(lat(c)/dist(c)) turns each of those queries into a few dozen
   integer ops. *)
let max_cycles = 512
let work_budget = 1 lsl 16

exception Budget

let enumerate_cycles ~n ~srcs ~dsts ~lat_ops ~fixed ~dists =
  let m = Array.length srcs in
  if n = 0 || m = 0 then Some [||]
  else begin
    let out = Array.make n [] in
    for i = m - 1 downto 0 do
      out.(srcs.(i)) <- i :: out.(srcs.(i))
    done;
    let cycles = ref [] and count = ref 0 and work = ref 0 in
    let on_path = Array.make n false in
    let path = ref [] in
    (* edge indices of the current path, innermost first *)
    try
      for s = 0 to n - 1 do
        let rec dfs v =
          incr work;
          if !work > work_budget then raise Budget;
          List.iter
            (fun i ->
              let w = dsts.(i) in
              if w = s then begin
                let es = i :: !path in
                let ops =
                  List.filter_map
                    (fun e -> if lat_ops.(e) >= 0 then Some lat_ops.(e) else None)
                    es
                in
                let fx = List.fold_left (fun acc e -> acc + fixed.(e)) 0 es in
                let d = List.fold_left (fun acc e -> acc + dists.(e)) 0 es in
                incr count;
                if !count > max_cycles then raise Budget;
                cycles :=
                  { c_ops = Array.of_list ops; c_fixed = fx; c_dist = d }
                  :: !cycles
              end
              else if w > s && not on_path.(w) then begin
                on_path.(w) <- true;
                path := i :: !path;
                dfs w;
                path := List.tl !path;
                on_path.(w) <- false
              end)
            out.(v)
        in
        on_path.(s) <- true;
        dfs s;
        on_path.(s) <- false
      done;
      Some (Array.of_list !cycles)
    with Budget -> None
  end

let cycle_lat c ~latency =
  let l = ref c.c_fixed in
  Array.iter (fun op -> l := !l + latency op) c.c_ops;
  !l

let solver ddg ~nodes =
  let node_arr = Array.of_list nodes in
  let n = Array.length node_arr in
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index v i) node_arr;
  let edges =
    List.filter
      (fun (e : Edge.t) ->
        Hashtbl.mem index e.src && Hashtbl.mem index e.dst)
      (Ddg.edges ddg)
  in
  let m = List.length edges in
  let srcs = Array.make m 0
  and dsts = Array.make m 0
  and lat_ops = Array.make m (-1)
  and fixed = Array.make m 0
  and dists = Array.make m 0 in
  List.iteri
    (fun i (e : Edge.t) ->
      srcs.(i) <- Hashtbl.find index e.src;
      dsts.(i) <- Hashtbl.find index e.dst;
      dists.(i) <- e.distance;
      match e.kind with
      | Edge.Reg_flow -> lat_ops.(i) <- e.src
      | Edge.Reg_anti -> fixed.(i) <- 0
      | Edge.Reg_out | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out
      | Edge.Mem_unresolved ->
          fixed.(i) <- 1)
    edges;
  let cycles = enumerate_cycles ~n ~srcs ~dsts ~lat_ops ~fixed ~dists in
  { n; nodes = node_arr; srcs; dsts; lat_ops; fixed; dists;
    dist = Array.make (max 1 n) 0; cycles }

(* A positive non-simple cycle always contains a positive simple cycle
   (cycle weights are additive over the decomposition), so checking the
   enumerated simple cycles is exactly the Bellman–Ford positive-cycle
   test. *)
let solve_feasible s ~latency ~ii =
  match s.cycles with
  | Some cs ->
      Array.for_all (fun c -> cycle_lat c ~latency <= ii * c.c_dist) cs
  | None ->
      let dist = s.dist in
      Array.fill dist 0 s.n 0;
      let m = Array.length s.srcs in
      let changed = ref true and rounds = ref 0 in
      while !changed && !rounds <= s.n do
        changed := false;
        incr rounds;
        for i = 0 to m - 1 do
          let lat =
            if s.lat_ops.(i) >= 0 then latency s.lat_ops.(i) else s.fixed.(i)
          in
          let w = lat - (ii * s.dists.(i)) in
          let cand = dist.(s.srcs.(i)) + w in
          if cand > dist.(s.dsts.(i)) then begin
            dist.(s.dsts.(i)) <- cand;
            changed := true
          end
        done
      done;
      not !changed

(* Feasibility is monotone in the II (edge weights only decrease), so
   the binary search returns the unique minimal feasible II whatever
   upper bound it starts from.  [upper_feasible] lets a caller that
   already holds a feasible II (latency assignment lowers latencies, so
   the previous II stays feasible) skip both the worst-case bound and
   its infeasibility probe. *)
let solve ?upper_feasible s ~latency =
  match s.cycles with
  | Some cs ->
      (* II = max over cycles of ceil(lat/dist); a zero-distance cycle
         with positive latency is the (only) infeasible-at-any-II case —
         the same condition the search's worst-case-bound probe detects,
         since every distance>=1 cycle's latency is below that bound. *)
      let ii = ref 1 in
      Array.iter
        (fun c ->
          let lat = cycle_lat c ~latency in
          if c.c_dist = 0 then begin
            if lat > 0 then raise Infeasible
          end
          else if lat > !ii * c.c_dist then
            ii := (lat + c.c_dist - 1) / c.c_dist)
        cs;
      !ii
  | None -> (
      let rec search lo hi =
        (* Invariant: [hi] is feasible, every ii < lo is infeasible. *)
        if lo >= hi then hi
        else
          let mid = (lo + hi) / 2 in
          if solve_feasible s ~latency ~ii:mid then search lo mid
          else search (mid + 1) hi
      in
      match upper_feasible with
      | Some upper -> search 1 upper
      | None ->
          let upper =
            Array.fold_left (fun acc v -> acc + max 1 (latency v)) 1 s.nodes
          in
          if not (solve_feasible s ~latency ~ii:upper) then raise Infeasible;
          search 1 upper)

let feasible ddg ~latency ~nodes ~ii =
  solve_feasible (solver ddg ~nodes) ~latency ~ii

let recurrence_ii ddg ~latency nodes = solve (solver ddg ~nodes) ~latency

let rec_mii ddg ~latency =
  List.fold_left
    (fun acc nodes -> max acc (recurrence_ii ddg ~latency nodes))
    1
    (Scc.recurrences ddg)
