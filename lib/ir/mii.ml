exception Infeasible

(* A captured recurrence: node ids remapped to a dense [0, n) range and
   the induced edges stored flat, so feasibility checks allocate nothing
   beyond one distance array. *)
type solver = {
  n : int;
  nodes : int array;  (** dense index -> original id *)
  srcs : int array;
  dsts : int array;
  lat_ops : int array;  (** original id of the op whose latency the edge
                            uses (Reg_flow), or -1 for fixed latency *)
  fixed : int array;  (** fixed component of the edge latency *)
  dists : int array;
}

let solver ddg ~nodes =
  let node_arr = Array.of_list nodes in
  let n = Array.length node_arr in
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index v i) node_arr;
  let edges =
    List.filter
      (fun (e : Edge.t) ->
        Hashtbl.mem index e.src && Hashtbl.mem index e.dst)
      (Ddg.edges ddg)
  in
  let m = List.length edges in
  let srcs = Array.make m 0
  and dsts = Array.make m 0
  and lat_ops = Array.make m (-1)
  and fixed = Array.make m 0
  and dists = Array.make m 0 in
  List.iteri
    (fun i (e : Edge.t) ->
      srcs.(i) <- Hashtbl.find index e.src;
      dsts.(i) <- Hashtbl.find index e.dst;
      dists.(i) <- e.distance;
      match e.kind with
      | Edge.Reg_flow -> lat_ops.(i) <- e.src
      | Edge.Reg_anti -> fixed.(i) <- 0
      | Edge.Reg_out | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out
      | Edge.Mem_unresolved ->
          fixed.(i) <- 1)
    edges;
  { n; nodes = node_arr; srcs; dsts; lat_ops; fixed; dists }

let solve_feasible s ~latency ~ii =
  let dist = Array.make s.n 0 in
  let m = Array.length s.srcs in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds <= s.n do
    changed := false;
    incr rounds;
    for i = 0 to m - 1 do
      let lat =
        if s.lat_ops.(i) >= 0 then latency s.lat_ops.(i) else s.fixed.(i)
      in
      let w = lat - (ii * s.dists.(i)) in
      let cand = dist.(s.srcs.(i)) + w in
      if cand > dist.(s.dsts.(i)) then begin
        dist.(s.dsts.(i)) <- cand;
        changed := true
      end
    done
  done;
  not !changed

let solve s ~latency =
  let upper =
    Array.fold_left (fun acc v -> acc + max 1 (latency v)) 1 s.nodes
  in
  if not (solve_feasible s ~latency ~ii:upper) then raise Infeasible;
  let rec search lo hi =
    (* Invariant: [hi] is feasible, every ii < lo is infeasible. *)
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if solve_feasible s ~latency ~ii:mid then search lo mid
      else search (mid + 1) hi
  in
  search 1 upper

let feasible ddg ~latency ~nodes ~ii =
  solve_feasible (solver ddg ~nodes) ~latency ~ii

let recurrence_ii ddg ~latency nodes = solve (solver ddg ~nodes) ~latency

let rec_mii ddg ~latency =
  List.fold_left
    (fun acc nodes -> max acc (recurrence_ii ddg ~latency nodes))
    1
    (Scc.recurrences ddg)
