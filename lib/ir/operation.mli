(** A single IR operation (a DDG node).

    Operations are identified by a dense integer id (their index in the
    owning {!Ddg.t}).  Register operands are plain integers; they are
    informational (communication insertion and liveness analysis work on
    dependence edges, not on register names). *)

type reg = int

type t = {
  id : int;
  opcode : Opcode.t;
  dests : reg list;
  srcs : reg list;
  mem : Mem_access.t option;  (** [Some _] iff [opcode] is [Load]/[Store] *)
}

val make :
  ?dests:reg list -> ?srcs:reg list -> ?mem:Mem_access.t -> id:int -> Opcode.t -> t
(** @raise Invalid_argument if a memory descriptor is given to a
    non-memory opcode or missing from a memory opcode. *)

val is_memory : t -> bool
val is_load : t -> bool
val is_store : t -> bool

val with_id : t -> int -> t
val with_mem : t -> Mem_access.t -> t

val pp : Format.formatter -> t -> unit
