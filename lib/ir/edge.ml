type kind =
  | Reg_flow
  | Reg_anti
  | Reg_out
  | Mem_flow
  | Mem_anti
  | Mem_out
  | Mem_unresolved

type t = { src : int; dst : int; kind : kind; distance : int }

let make ?(kind = Reg_flow) ?(distance = 0) ~src ~dst () =
  if distance < 0 then invalid_arg "Edge.make: negative distance";
  { src; dst; kind; distance }

let is_memory_kind = function
  | Mem_flow | Mem_anti | Mem_out | Mem_unresolved -> true
  | Reg_flow | Reg_anti | Reg_out -> false

let kind_to_string = function
  | Reg_flow -> "RF"
  | Reg_anti -> "RA"
  | Reg_out -> "RO"
  | Mem_flow -> "MF"
  | Mem_anti -> "MA"
  | Mem_out -> "MO"
  | Mem_unresolved -> "MU"

let pp ppf t =
  Format.fprintf ppf "n%d -%s(d=%d)-> n%d" t.src (kind_to_string t.kind)
    t.distance t.dst
