(** Data-dependence graph of one loop body.

    Operation ids are dense: [op t i] has [i = (op t i).Operation.id] for
    [0 <= i < n_ops t].  The graph is immutable after construction. *)

type t

val make : Operation.t array -> Edge.t list -> t
(** @raise Invalid_argument if ids are not dense [0..n-1] in order or an
    edge endpoint is out of range. *)

val n_ops : t -> int
val op : t -> int -> Operation.t
val ops : t -> Operation.t array
(** The returned array must not be mutated. *)

val edges : t -> Edge.t list
val succs : t -> int -> Edge.t list
(** Outgoing edges of a node. *)

val preds : t -> int -> Edge.t list
(** Incoming edges of a node. *)

val memory_ops : t -> int list
(** Ids of load/store operations, ascending. *)

val effective_latency : latency:(int -> int) -> Edge.t -> int
(** Scheduling latency of an edge: the constraint is
    [time dst >= time src + effective_latency edge - II * distance].
    [latency id] gives the assigned latency of operation [id] (used for
    [Reg_flow] edges).  [Reg_anti] edges have latency 0 (anti-dependent
    operations may share a cycle, as in the paper's example); [Reg_out]
    and all memory-dependence edges have latency 1 (serialization). *)

val default_latency : t -> int -> int
(** Latency function using each opcode's default latency. *)

val pp : Format.formatter -> t -> unit
