(* Copy [k] of original operation [i] gets id [i * factor + k], so both
   directions of the id mapping are pure arithmetic. *)

let copy_index ~factor id = id mod factor
let original_id ~factor id = id / factor

let unroll_op ~factor ~k (o : Operation.t) =
  let rename r = (r * factor) + k in
  let mem =
    Option.map
      (fun (m : Mem_access.t) ->
        {
          m with
          Mem_access.offset = m.Mem_access.offset + (k * m.Mem_access.stride);
          stride = factor * m.Mem_access.stride;
        })
      o.Operation.mem
  in
  {
    o with
    Operation.id = (o.Operation.id * factor) + k;
    dests = List.map rename o.Operation.dests;
    srcs = List.map rename o.Operation.srcs;
    mem;
  }

let ddg ddg0 ~factor =
  if factor < 1 then invalid_arg "Unroll.ddg: factor < 1";
  if factor = 1 then ddg0
  else begin
    let n = Ddg.n_ops ddg0 in
    let ops = Array.make (n * factor) (Ddg.op ddg0 0) in
    for i = 0 to n - 1 do
      for k = 0 to factor - 1 do
        ops.((i * factor) + k) <- unroll_op ~factor ~k (Ddg.op ddg0 i)
      done
    done;
    let edges =
      List.concat_map
        (fun (e : Edge.t) ->
          List.init factor (fun k ->
              let k' = (k + e.distance) mod factor in
              {
                e with
                Edge.src = (e.src * factor) + k;
                dst = (e.dst * factor) + k';
                distance = (k + e.distance) / factor;
              }))
        (Ddg.edges ddg0)
    in
    Ddg.make ops edges
  end
