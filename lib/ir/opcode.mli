(** Operation codes of the VLIW intermediate representation.

    The opcode determines which functional-unit class executes the
    operation and its default (non-memory) latency.  Memory operations
    ([Load]/[Store]) have variable latency; the scheduler assigns them one
    of the architectural latencies (see {!Vliw_core.Latency_assign}). *)

(** Functional-unit classes available in each cluster. *)
type fu_class = Int_fu | Fp_fu | Mem_fu

type t =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp_alu
  | Fp_mul
  | Fp_div
  | Load
  | Store
  | Copy  (** explicit inter-cluster register move, inserted by the scheduler *)

val fu_class : t -> fu_class
(** The functional-unit class that executes this opcode.  [Copy] is
    executed by the integer unit of the source cluster (it also occupies a
    register bus, which the scheduler reserves separately). *)

val default_latency : t -> int
(** Fixed latency for non-memory opcodes.  For [Load] this is the
    local-hit latency placeholder (1); the real value is assigned by the
    latency-assignment pass.  [Store] produces no register value and has
    latency 1. *)

val is_memory : t -> bool

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
