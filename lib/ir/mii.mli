(** Recurrence-constrained minimum initiation interval (RecMII).

    For a candidate II, a set of dependence constraints
    [t(dst) >= t(src) + lat(e) - II * distance(e)] is satisfiable iff the
    constraint graph has no positive-weight cycle with weights
    [lat(e) - II * distance(e)].  The II of a recurrence is the smallest
    II for which its subgraph is satisfiable.

    A {!solver} captures one recurrence's subgraph once; latency
    assignment evaluates hundreds of candidate latency vectors against
    the same recurrence, so the filtered edge set is worth keeping. *)

exception Infeasible
(** Raised when a recurrence contains a zero-distance cycle with positive
    total latency: no II can schedule it (malformed DDG). *)

type solver

val solver : Ddg.t -> nodes:int list -> solver
(** Capture the subgraph induced by [nodes]. *)

val solve : ?upper_feasible:int -> solver -> latency:(int -> int) -> int
(** Minimum feasible II of the captured recurrence under the given
    latencies.  Feasibility is monotone in the II, so the result does
    not depend on the search's starting bound; [upper_feasible] — an II
    the caller knows to be feasible — only shortens the binary search.
    @raise Infeasible on a zero-distance positive cycle (never raised
    when [upper_feasible] is supplied). *)

val solve_feasible : solver -> latency:(int -> int) -> ii:int -> bool

val feasible : Ddg.t -> latency:(int -> int) -> nodes:int list -> ii:int -> bool
(** One-shot version of {!solve_feasible}. *)

val recurrence_ii : Ddg.t -> latency:(int -> int) -> int list -> int
(** One-shot version of {!solve}. *)

val rec_mii : Ddg.t -> latency:(int -> int) -> int
(** Max of {!recurrence_ii} over all recurrences; 1 if the loop has none. *)
