type t = {
  mutable rev_ops : Operation.t list;
  mutable rev_edges : Edge.t list;
  mutable n : int;
  mutable next_reg : int;
}

let create () = { rev_ops = []; rev_edges = []; n = 0; next_reg = 0 }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let add t ?(dests = []) ?(srcs = []) ?mem opcode =
  let id = t.n in
  t.rev_ops <- Operation.make ?mem ~dests ~srcs ~id opcode :: t.rev_ops;
  t.n <- id + 1;
  t.next_reg <-
    List.fold_left (fun acc r -> max acc (r + 1)) t.next_reg (dests @ srcs);
  id

let dep t ?kind ?distance src dst =
  t.rev_edges <- Edge.make ?kind ?distance ~src ~dst () :: t.rev_edges

let flow t ?distance src dst = dep t ~kind:Edge.Reg_flow ?distance src dst

let n_ops t = t.n

let build t =
  let ops = Array.of_list (List.rev t.rev_ops) in
  Ddg.make ops (List.rev t.rev_edges)
