(** Static description of a memory operation's access pattern.

    This is the information the paper's compiler extracts statically
    (stride, element size, addressing mode) plus the storage class of the
    referenced symbol, which variable alignment (Section 4.3.4 of the
    paper) needs to decide whether padding applies. *)

(** Storage class of the referenced symbol.  Globals are mapped at the
    same address for every input; stack and heap data move between the
    profile and execution runs unless variable alignment pads them. *)
type storage = Global | Stack | Heap

type t = {
  symbol : string;  (** referenced array / variable *)
  storage : storage;
  offset : int;  (** byte offset from the symbol base at iteration 0 *)
  stride : int;  (** byte stride per original-loop iteration; 0 for scalars *)
  granularity : int;  (** accessed element size in bytes (1, 2, 4 or 8) *)
  footprint : int;
      (** size in bytes of the region the operation walks (the array);
          address generation wraps within it.  0 means "unknown". *)
  indirect : bool;
      (** address depends on a previously loaded value (a[b[i]]); the
          static stride is meaningless for such accesses *)
}

val make :
  ?storage:storage ->
  ?offset:int ->
  ?indirect:bool ->
  ?footprint:int ->
  symbol:string ->
  stride:int ->
  granularity:int ->
  unit ->
  t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
