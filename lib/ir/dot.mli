(** Graphviz export of data-dependence graphs (for debugging schedules
    and for documentation).  Memory operations are drawn as boxes,
    loop-carried edges dashed and labelled with their distance. *)

val ddg : Format.formatter -> Ddg.t -> unit

val scheduled :
  Format.formatter ->
  Ddg.t ->
  cluster:(int -> int) ->
  unit
(** Same graph with nodes coloured by their assigned cluster. *)

val to_file : string -> Ddg.t -> unit
