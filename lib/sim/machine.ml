module Arch = Vliw_arch

type arch =
  | Word_interleaved of { attraction_buffers : bool }
  | Unified of { slow : bool }
  | Multivliw

let arch_to_string = function
  | Word_interleaved { attraction_buffers = true } -> "interleaved+AB"
  | Word_interleaved { attraction_buffers = false } -> "interleaved"
  | Unified { slow = false } -> "unified(L=1)"
  | Unified { slow = true } -> "unified(L=5)"
  | Multivliw -> "multiVLIW"

type state =
  | Interleaved_state of Arch.Interleaved_cache.t
  | Unified_state of Arch.Unified_cache.t
  | Coherent_state of Arch.Coherent_cache.t

type t = { arch : arch; state : state }

let create cfg = function
  | Word_interleaved { attraction_buffers } as arch ->
      {
        arch;
        state =
          Interleaved_state
            (Arch.Interleaved_cache.create ~with_ab:attraction_buffers cfg);
      }
  | Unified { slow } as arch ->
      { arch; state = Unified_state (Arch.Unified_cache.create ~slow cfg) }
  | Multivliw as arch ->
      { arch; state = Coherent_state (Arch.Coherent_cache.create cfg) }

let arch t = t.arch
let state t = t.state

(* One machine per swept configuration: the struct-of-arrays state of a
   batched executor run.  Each entry may override the attraction-buffer
   capacity — the per-cell knob of the AB-size sweeps — while the
   plan-side geometry (clusters, interleaving) stays [cfg]'s. *)
let create_batch cfg specs =
  Array.of_list
    (List.map
       (fun (arch, ab_entries) ->
         let cfg =
           match ab_entries with
           | None -> cfg
           | Some n -> { cfg with Arch.Config.ab_entries = n }
         in
         create cfg arch)
       specs)

(* The design-space sweep's generalization: each cell brings a full
   configuration (cache geometry, latencies, AB shape), not just an AB
   capacity override.  The plan-side agreement obligations (cluster
   count, interleaving factor) are the batched executor's caller's to
   uphold — Context checks them. *)
let create_batch_cfgs specs =
  Array.of_list (List.map (fun (cfg, arch) -> create cfg arch) specs)

let access t ?(attract = true) ~now ~cluster ~addr ~store () =
  match t.state with
  | Interleaved_state c ->
      Arch.Interleaved_cache.access c ~attract ~now ~cluster ~addr ~store ()
  | Unified_state c -> Arch.Unified_cache.access c ~now ~addr
  | Coherent_state c -> Arch.Coherent_cache.access c ~now ~cluster ~addr ~store

let end_of_loop t =
  match t.state with
  | Interleaved_state c -> Arch.Interleaved_cache.end_of_loop c
  | Unified_state c -> Arch.Unified_cache.end_of_loop c
  | Coherent_state c -> Arch.Coherent_cache.end_of_loop c

let traffic_summary t =
  match t.state with
  | Interleaved_state c ->
      let tr = Arch.Interleaved_cache.traffic c in
      [
        ("remote words", tr.Arch.Interleaved_cache.remote_words);
        ("block fills", tr.Arch.Interleaved_cache.block_fills);
        ("attractions", tr.Arch.Interleaved_cache.attractions);
      ]
  | Unified_state _ -> []
  | Coherent_state c ->
      let tr = Arch.Coherent_cache.traffic c in
      [
        ("invalidations", tr.Arch.Coherent_cache.invalidations);
        ("cache-to-cache", tr.Arch.Coherent_cache.cache_to_cache);
        ("memory fills", tr.Arch.Coherent_cache.memory_fills);
        ("snoops", tr.Arch.Coherent_cache.snoops);
      ]
