(** Cycle-level execution of one modulo-scheduled loop over a memory
    system.

    VLIW lockstep stall model: the machine issues the schedule verbatim;
    when a load's datum arrives after the cycle the schedule promised
    (issue + assigned latency), the whole machine stalls for the
    difference.  Loads scheduled with a latency at least as large as the
    access's true latency therefore never stall — the property the
    latency-assignment pass is designed around.  Stores never stall the
    pipeline (nothing consumes them in-core), but their accesses are
    classified like any other.

    Compute time is [(trip_count + SC - 1) * II]; every stall cycle is
    attributed to the access class that caused it, and stalling remote
    hits are further classified by the paper's four factors. *)

val default_unclear_threshold : float
(** Preferred-cluster distribution below which an operation counts as
    having "unclear preferred cluster information" (0.9). *)

val run_loop :
  Vliw_arch.Config.t ->
  Machine.t ->
  Vliw_core.Pipeline.compiled ->
  addr_of:(op:int -> iter:int -> int) ->
  ?attractable:bool array ->
  ?unclear_threshold:float ->
  unit ->
  Stats.t
(** Execute every iteration of the compiled (already unrolled) loop,
    then signal end-of-loop to the memory system (attraction-buffer
    flush).  [addr_of] maps an operation of the *unrolled* DDG and an
    unrolled-iteration index to a byte address.

    Implementation: an access-plan kernel.  Per-operation facts (start
    cycle, cluster, parts, store/attract flags, promised latency,
    Figure-5 factor mask) are precomputed into flat arrays, the backend
    dispatch is hoisted out of the loop into one specialized inner loop
    per {!Machine.state} arm, and access results travel through mutable
    scratch slots — the steady-state loop performs no heap
    allocation. *)

val run_loop_reference :
  Vliw_arch.Config.t ->
  Machine.t ->
  Vliw_core.Pipeline.compiled ->
  addr_of:(op:int -> iter:int -> int) ->
  ?attractable:bool array ->
  ?unclear_threshold:float ->
  unit ->
  Stats.t
(** The straightforward list-based executor {!run_loop}'s kernel
    replaced, kept as the executable specification: the golden
    equivalence suite asserts both produce bit-identical {!Stats.t} on
    every backend.  Not used by the experiment drivers. *)
