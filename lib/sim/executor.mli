(** Cycle-level execution of one modulo-scheduled loop over a memory
    system.

    VLIW lockstep stall model: the machine issues the schedule verbatim;
    when a load's datum arrives after the cycle the schedule promised
    (issue + assigned latency), the whole machine stalls for the
    difference.  Loads scheduled with a latency at least as large as the
    access's true latency therefore never stall — the property the
    latency-assignment pass is designed around.  Stores never stall the
    pipeline (nothing consumes them in-core), but their accesses are
    classified like any other.

    Compute time is [(trip_count + SC - 1) * II]; every stall cycle is
    attributed to the access class that caused it, and stalling remote
    hits are further classified by the paper's four factors. *)

val default_unclear_threshold : float
(** Preferred-cluster distribution below which an operation counts as
    having "unclear preferred cluster information" (0.9). *)

val address_trace :
  Vliw_core.Pipeline.compiled ->
  addr_of:(op:int -> iter:int -> int) ->
  int array
(** The loop's full address stream as one flat array, row-major by
    iteration over the mem ops in issue order (the executor's plan
    order): element [iter * n + k] is the base address the [k]-th
    plan position resolves to on iteration [iter].  Addresses depend
    only on (op, iteration) — never on cache state — so one trace
    serves every configuration a plan is swept against; Context
    memoizes them per (plan, layout). *)

val run_loop :
  Vliw_arch.Config.t ->
  Machine.t ->
  Vliw_core.Pipeline.compiled ->
  ?addr_of:(op:int -> iter:int -> int) ->
  ?addr_trace:int array ->
  ?attractable:bool array ->
  ?unclear_threshold:float ->
  unit ->
  Stats.t
(** Execute every iteration of the compiled (already unrolled) loop,
    then signal end-of-loop to the memory system (attraction-buffer
    flush).  [addr_of] maps an operation of the *unrolled* DDG and an
    unrolled-iteration index to a byte address; [addr_trace] supplies
    the same stream pre-resolved (see {!address_trace}) so repeated
    sweeps skip re-deriving it.  At least one of the two is required;
    when both are given the trace wins.

    Implementation: an access-plan kernel.  Per-operation facts (start
    cycle, cluster, parts, store/attract flags, promised latency,
    Figure-5 factor mask) are precomputed into flat arrays, the backend
    dispatch is hoisted out of the loop into one specialized inner loop
    per {!Machine.state} arm, and access results travel through mutable
    scratch slots — the steady-state loop performs no heap
    allocation. *)

(** One configuration of a batched sweep: its own machine (cache tags,
    AB contents, pending-request tables) and, optionally, its own
    compiler attract hints (per-DDG-op flags, as for {!run_loop}). *)
type batch_cell = {
  machine : Machine.t;
  attractable : bool array option;
}

val run_loop_batched :
  Vliw_arch.Config.t ->
  batch_cell array ->
  Vliw_core.Pipeline.compiled ->
  ?addr_of:(op:int -> iter:int -> int) ->
  ?addr_trace:int array ->
  ?trip:int ->
  ?unclear_threshold:float ->
  unit ->
  Stats.t array
(** Simulate N cache configurations in lockstep over a single traversal
    of one access plan: the plan, factor masks and address stream are
    shared; per-configuration stall clocks, statistics and attract
    flags live in struct-of-arrays batch state; each mem-op's resolved
    address is dispatched to every cell before the traversal advances.
    Cells are fully independent, so each cell's result (and its
    machine's traffic counters) is bit-identical to a solo {!run_loop}
    of that configuration — asserted by the golden suite and the
    batch-composition qcheck property.

    [cfg] is the plan-side configuration; every cell must agree with it
    on the geometry the plan bakes in (cluster count, interleaving
    factor, maximum unroll).  Cache geometry, latencies and
    attraction-buffer capacity are free to differ per cell — they live
    in each cell's machine.  Returns per-cell statistics in cell
    order.

    [trip] caps the unrolled iterations simulated (clamped to
    [1 .. trip_count]; default: all): every cell is cut at the same
    point and compute time uses the cut count, so a capped run is
    exactly a shortened loop — the design-space sweep's
    fidelity/wall-clock knob.  A supplied [addr_trace] must still be
    the full-length stream. *)

val run_loop_reference :
  Vliw_arch.Config.t ->
  Machine.t ->
  Vliw_core.Pipeline.compiled ->
  addr_of:(op:int -> iter:int -> int) ->
  ?attractable:bool array ->
  ?unclear_threshold:float ->
  unit ->
  Stats.t
(** The straightforward list-based executor {!run_loop}'s kernel
    replaced, kept as the executable specification: the golden
    equivalence suite asserts both produce bit-identical {!Stats.t} on
    every backend.  Not used by the experiment drivers. *)
