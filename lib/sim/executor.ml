module Access = Vliw_arch.Access
module Arch = Vliw_arch
module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Loop = Vliw_ir.Loop
module Mem_access = Vliw_ir.Mem_access
module Operation = Vliw_ir.Operation
module Pipeline = Vliw_core.Pipeline
module Profile = Vliw_core.Profile
module Schedule = Vliw_sched.Schedule

let default_unclear_threshold = 0.9

(* Static per-operation inputs to the Figure-5 factor classification. *)
let stall_factors cfg (c : Pipeline.compiled) ~unclear_threshold op =
  let ddg = c.Pipeline.loop.Loop.ddg in
  let ni = Config.max_unroll cfg in
  match (Ddg.op ddg op).Operation.mem with
  | None -> []
  | Some m ->
      let factors = ref [] in
      let add cond f = if cond then factors := f :: !factors in
      add
        (m.Mem_access.indirect || m.Mem_access.stride mod ni <> 0)
        Stats.More_than_one_cluster;
      add
        (m.Mem_access.granularity > cfg.Config.interleaving_factor)
        Stats.Granularity;
      (match Profile.get c.Pipeline.profile op with
      | Some p ->
          add (Profile.distribution p < unclear_threshold)
            Stats.Unclear_preferred;
          add
            (c.Pipeline.schedule.Schedule.cluster.(op)
            <> Profile.preferred_cluster p)
            Stats.Not_in_preferred
      | None -> ());
      !factors

(* The mem-ops of the loop in issue order — shared by both executors so
   the access streams are identical (List.sort is stable). *)
let mem_ops_in_issue_order (c : Pipeline.compiled) =
  let sched = c.Pipeline.schedule in
  Ddg.memory_ops c.Pipeline.loop.Loop.ddg
  |> List.sort (fun a b ->
         compare sched.Schedule.start.(a) sched.Schedule.start.(b))

(* ------------------------------------------------------------------ *)
(* The access-plan kernel.

   Everything the steady-state loop needs is precomputed into flat
   arrays indexed by mem-op plan position: start cycle, cluster, parts,
   store/attract flags, promised latency, and the Figure-5 factor mask.
   The backend dispatch is hoisted out of the loop — each [Machine.state]
   arm instantiates the driver with a monomorphic access closure calling
   that cache's allocation-free [access_into] — and access results come
   back through two mutable scratch slots.  The steady-state (hit-path)
   loop performs zero heap allocation; miss paths may grow the cache's
   pending table, which is amortized and bounded by the blocks in
   flight. *)

type plan = {
  ops : int array;  (* op id, in issue order *)
  starts : int array;  (* start cycle within the II *)
  clusters : int array;
  stores : bool array;
  parts : int array;  (* subword parts an element spans *)
  promised : int array;  (* latency the schedule promised the load *)
  attracts : bool array;
  factor_masks : int array;  (* Stats.factor_mask of the op's factors *)
}

let build_plan cfg (c : Pipeline.compiled) ?attractable ~unclear_threshold ()
    =
  let ddg = c.Pipeline.loop.Loop.ddg in
  let sched = c.Pipeline.schedule in
  let i_factor = cfg.Config.interleaving_factor in
  let ops = Array.of_list (mem_ops_in_issue_order c) in
  let n = Array.length ops in
  let p =
    {
      ops;
      starts = Array.make n 0;
      clusters = Array.make n 0;
      stores = Array.make n false;
      parts = Array.make n 1;
      promised = Array.make n 0;
      attracts = Array.make n true;
      factor_masks = Array.make n 0;
    }
  in
  Array.iteri
    (fun k op ->
      let o = Ddg.op ddg op in
      p.starts.(k) <- sched.Schedule.start.(op);
      p.clusters.(k) <- sched.Schedule.cluster.(op);
      p.stores.(k) <- Operation.is_store o;
      (* Elements wider than the interleaving factor span several
         clusters: the access completes when its slowest part does and
         is classified by that part (so a double-word access can never
         be a plain local hit — Section 5.2). *)
      let granularity =
        match o.Operation.mem with
        | Some m -> m.Mem_access.granularity
        | None -> i_factor
      in
      p.parts.(k) <- max 1 ((granularity + i_factor - 1) / i_factor);
      p.promised.(k) <- c.Pipeline.latencies.(op);
      (match attractable with
      | None -> ()
      | Some flags -> p.attracts.(k) <- flags.(op));
      p.factor_masks.(k) <-
        Stats.factor_mask (stall_factors cfg c ~unclear_threshold op))
    ops;
  p

(* ------------------------------------------------------------------ *)
(* Address traces.

   The address a mem op resolves to depends only on (op, iteration) —
   never on the cache configuration — so one flat trace, laid out
   row-major by iteration over plan positions, serves every config a
   plan is swept against.  Context memoizes these per (plan, layout)
   so repeated sweeps over the same compiled loop skip re-deriving the
   stream entirely. *)

let trace_of_ops ops ~trip ~addr_of =
  let n = Array.length ops in
  let t = Array.make (n * trip) 0 in
  for iter = 0 to trip - 1 do
    let row = iter * n in
    for k = 0 to n - 1 do
      t.(row + k) <- addr_of ~op:ops.(k) ~iter
    done
  done;
  t

let address_trace (c : Pipeline.compiled) ~addr_of =
  trace_of_ops
    (Array.of_list (mem_ops_in_issue_order c))
    ~trip:c.Pipeline.loop.Loop.trip_count ~addr_of

(* Resolve the base-address source: a caller-provided memoized trace, or
   one derived on the spot from [addr_of].  Deriving costs exactly the
   address computations the un-traced kernel performed inline, so the
   steady-state loop below is a pure array read either way.  A supplied
   trace must cover the plan's full trip count even when only [trip]
   iterations will be simulated — memoized traces are always
   full-length, and the length check is the cross-check that the trace
   belongs to this plan. *)
let resolve_trace (p : plan) ~trip ~full_trip ~addr_of ~addr_trace =
  match addr_trace with
  | Some t ->
      if Array.length t <> Array.length p.ops * full_trip then
        invalid_arg "Executor: address trace length does not match the plan";
      t
  | None -> (
      match addr_of with
      | Some f -> trace_of_ops p.ops ~trip ~addr_of:f
      | None ->
          invalid_arg "Executor: either ~addr_of or ~addr_trace is required")

let run_loop cfg machine (c : Pipeline.compiled) ?addr_of ?addr_trace
    ?attractable ?(unclear_threshold = default_unclear_threshold) () =
  let trip = c.Pipeline.loop.Loop.trip_count in
  let sched = c.Pipeline.schedule in
  let ii = sched.Schedule.ii in
  let p = build_plan cfg c ?attractable ~unclear_threshold () in
  let n = Array.length p.ops in
  let i_factor = cfg.Config.interleaving_factor in
  let trace = resolve_trace p ~trip ~full_trip:trip ~addr_of ~addr_trace in
  let stats = Stats.create () in
  let stall = ref 0 in
  (* Scratch slots, allocated once: [out] receives each part's result,
     [slowest] folds the parts of one element. *)
  let out = Access.scratch () in
  let slowest = Access.scratch () in
  (* Accounting once the slowest part of an element is known. *)
  let finish k issue =
    let kind = slowest.Access.s_kind in
    Stats.count_access stats kind;
    if not p.stores.(k) then begin
      let s = slowest.Access.s_ready_at - (issue + p.promised.(k)) in
      if s > 0 then begin
        stall := !stall + s;
        Stats.count_stall stats kind ~cycles:s;
        if kind = Access.Remote_hit then
          Stats.count_stall_factor_mask stats p.factor_masks.(k)
      end
    end
  in
  (* The driver loop, instantiated once per backend arm with a
     monomorphic [access_part k ~now ~addr] writing into [out]. *)
  let drive access_part =
    for iter = 0 to trip - 1 do
      let row = iter * n in
      for k = 0 to n - 1 do
        let issue = (iter * ii) + p.starts.(k) + !stall in
        let base = trace.(row + k) in
        access_part k ~now:issue ~addr:base;
        slowest.Access.s_kind <- out.Access.s_kind;
        slowest.Access.s_ready_at <- out.Access.s_ready_at;
        for q = 1 to p.parts.(k) - 1 do
          access_part k ~now:issue ~addr:(base + (q * i_factor));
          if out.Access.s_ready_at >= slowest.Access.s_ready_at then begin
            slowest.Access.s_kind <- out.Access.s_kind;
            slowest.Access.s_ready_at <- out.Access.s_ready_at
          end
        done;
        finish k issue
      done
    done
  in
  (match Machine.state machine with
  | Machine.Interleaved_state ic ->
      drive (fun k ~now ~addr ->
          Arch.Interleaved_cache.access_into ic out ~attract:p.attracts.(k)
            ~now ~cluster:p.clusters.(k) ~addr ~store:p.stores.(k))
  | Machine.Unified_state uc ->
      drive (fun _ ~now ~addr -> Arch.Unified_cache.access_into uc out ~now ~addr)
  | Machine.Coherent_state cc ->
      drive (fun k ~now ~addr ->
          Arch.Coherent_cache.access_into cc out ~now
            ~cluster:p.clusters.(k) ~addr ~store:p.stores.(k)));
  Stats.add_compute stats
    ((trip + Schedule.stage_count sched - 1) * ii);
  Machine.end_of_loop machine;
  stats

(* ------------------------------------------------------------------ *)
(* The batched kernel: N cache configurations in lockstep over a single
   traversal of one access plan.

   Sweeps (fig6 configurations, AB sizes, the traffic ablation, the
   design-space autopilot) re-execute the same compiled plan against
   many memory-hierarchy points.  The plan, the Figure-5 factor masks
   and the address trace are identical across those points, so the
   batched driver hoists them out and keeps only what genuinely differs
   per configuration as struct-of-arrays batch state:

     - [stalls]  : each config's accumulated stall (its own clock skew),
     - [stats]   : each config's Stats accumulator,
     - [attracts]: each config's per-plan-position attract flag,
     - the machines themselves (tags, AB contents, pending Int_tables).

   The inner loop resolves each mem-op's address once per iteration and
   dispatches it to every cell.  Cells are fully independent — each has
   its own machine, stall clock and statistics — so every cell's
   per-access sequence is exactly what a solo [run_loop] would produce:
   results are bit-identical to running each config alone, which the
   golden suite and the batch-composition qcheck property assert. *)

type batch_cell = {
  machine : Machine.t;
  attractable : bool array option;
}

let run_loop_batched cfg (cells : batch_cell array) (c : Pipeline.compiled)
    ?addr_of ?addr_trace ?trip
    ?(unclear_threshold = default_unclear_threshold) () =
  let full_trip = c.Pipeline.loop.Loop.trip_count in
  (* The sweep's fidelity/wall-clock knob: simulate only the first
     [trip] unrolled iterations.  Every cell of the batch is cut at the
     same point and compute time uses the cut count, so a capped run is
     exactly a shortened loop — still bit-identical across cells, jobs
     and batch compositions. *)
  let trip =
    match trip with
    | Some t -> max 1 (min t full_trip)
    | None -> full_trip
  in
  let sched = c.Pipeline.schedule in
  let ii = sched.Schedule.ii in
  let p = build_plan cfg c ~unclear_threshold () in
  let n = Array.length p.ops in
  let m = Array.length cells in
  let i_factor = cfg.Config.interleaving_factor in
  let trace = resolve_trace p ~trip ~full_trip ~addr_of ~addr_trace in
  (* Struct-of-arrays per-config state. *)
  let stalls = Array.make m 0 in
  let stats = Array.init m (fun _ -> Stats.create ()) in
  let attracts =
    Array.map
      (fun cell ->
        match cell.attractable with
        | None -> p.attracts (* all true; shared read-only *)
        | Some flags -> Array.map (fun op -> flags.(op)) p.ops)
      cells
  in
  let out = Access.scratch () in
  let slowest = Access.scratch () in
  (* One monomorphic access closure per cell, built once: the backend
     dispatch happens here, not per access.  Cells are visited strictly
     sequentially, so a single [out] scratch slot serves them all. *)
  let access_of j =
    match Machine.state cells.(j).machine with
    | Machine.Interleaved_state ic ->
        let att = attracts.(j) in
        fun k ~now ~addr ->
          Arch.Interleaved_cache.access_into ic out ~attract:att.(k) ~now
            ~cluster:p.clusters.(k) ~addr ~store:p.stores.(k)
    | Machine.Unified_state uc ->
        fun _ ~now ~addr -> Arch.Unified_cache.access_into uc out ~now ~addr
    | Machine.Coherent_state cc ->
        fun k ~now ~addr ->
          Arch.Coherent_cache.access_into cc out ~now ~cluster:p.clusters.(k)
            ~addr ~store:p.stores.(k)
  in
  let accesses = Array.init m access_of in
  for iter = 0 to trip - 1 do
    (* Deadline tick: [m] work units (one per simulated config) every
       256 unrolled iterations — coarse enough to cost nothing, placed
       at an iteration boundary so a cancelled batch is cut at the same
       trip point regardless of host or batch composition. *)
    if iter land 255 = 0 then Vliw_parallel.Cancel.tick ~stage:"simulate" m;
    let row = iter * n in
    for k = 0 to n - 1 do
      let base = trace.(row + k) in
      let parts = p.parts.(k) in
      let slot = (iter * ii) + p.starts.(k) in
      for j = 0 to m - 1 do
        let issue = slot + stalls.(j) in
        let access = accesses.(j) in
        access k ~now:issue ~addr:base;
        slowest.Access.s_kind <- out.Access.s_kind;
        slowest.Access.s_ready_at <- out.Access.s_ready_at;
        for q = 1 to parts - 1 do
          access k ~now:issue ~addr:(base + (q * i_factor));
          if out.Access.s_ready_at >= slowest.Access.s_ready_at then begin
            slowest.Access.s_kind <- out.Access.s_kind;
            slowest.Access.s_ready_at <- out.Access.s_ready_at
          end
        done;
        let st = stats.(j) in
        let kind = slowest.Access.s_kind in
        Stats.count_access st kind;
        if not p.stores.(k) then begin
          let s = slowest.Access.s_ready_at - (issue + p.promised.(k)) in
          if s > 0 then begin
            stalls.(j) <- stalls.(j) + s;
            Stats.count_stall st kind ~cycles:s;
            if kind = Access.Remote_hit then
              Stats.count_stall_factor_mask st p.factor_masks.(k)
          end
        end
      done
    done
  done;
  let compute = (trip + Schedule.stage_count sched - 1) * ii in
  Array.iter (fun st -> Stats.add_compute st compute) stats;
  Array.iter (fun cell -> Machine.end_of_loop cell.machine) cells;
  stats

(* ------------------------------------------------------------------ *)
(* The straightforward list-based executor the kernel above replaced,
   kept as the executable specification: the golden-equivalence suite
   asserts the plan kernel produces bit-identical statistics on every
   backend.  Not used by any experiment driver. *)

let run_loop_reference cfg machine (c : Pipeline.compiled) ~addr_of
    ?attractable ?(unclear_threshold = default_unclear_threshold) () =
  let ddg = c.Pipeline.loop.Loop.ddg in
  let sched = c.Pipeline.schedule in
  let trip = c.Pipeline.loop.Loop.trip_count in
  let ii = sched.Schedule.ii in
  let mem_ops = mem_ops_in_issue_order c in
  let factors_of =
    let cache = Hashtbl.create 16 in
    fun op ->
      match Hashtbl.find_opt cache op with
      | Some f -> f
      | None ->
          let f = stall_factors cfg c ~unclear_threshold op in
          Hashtbl.add cache op f;
          f
  in
  let stats = Stats.create () in
  let stall = ref 0 in
  for iter = 0 to trip - 1 do
    List.iter
      (fun op ->
        let issue = (iter * ii) + sched.Schedule.start.(op) + !stall in
        let o = Ddg.op ddg op in
        let store = Operation.is_store o in
        let attract =
          match attractable with None -> true | Some flags -> flags.(op)
        in
        let i_factor = cfg.Config.interleaving_factor in
        let granularity =
          match o.Operation.mem with
          | Some m -> m.Vliw_ir.Mem_access.granularity
          | None -> i_factor
        in
        let parts = max 1 ((granularity + i_factor - 1) / i_factor) in
        let base_addr = addr_of ~op ~iter in
        let part p =
          Machine.access machine ~attract ~now:issue
            ~cluster:sched.Schedule.cluster.(op)
            ~addr:(base_addr + (p * i_factor))
            ~store ()
        in
        let r = ref (part 0) in
        for p = 1 to parts - 1 do
          let rp = part p in
          if rp.Access.ready_at >= !r.Access.ready_at then r := rp
        done;
        let r = !r in
        Stats.count_access stats r.Access.kind;
        if not store then begin
          let promised = issue + c.Pipeline.latencies.(op) in
          let s = r.Access.ready_at - promised in
          if s > 0 then begin
            stall := !stall + s;
            Stats.count_stall stats r.Access.kind ~cycles:s;
            if r.Access.kind = Access.Remote_hit then
              List.iter (Stats.count_stall_factor stats) (factors_of op)
          end
        end)
      mem_ops
  done;
  Stats.add_compute stats
    ((trip + Schedule.stage_count sched - 1) * ii);
  Machine.end_of_loop machine;
  stats
