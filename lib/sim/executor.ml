module Access = Vliw_arch.Access
module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Loop = Vliw_ir.Loop
module Mem_access = Vliw_ir.Mem_access
module Operation = Vliw_ir.Operation
module Pipeline = Vliw_core.Pipeline
module Profile = Vliw_core.Profile
module Schedule = Vliw_sched.Schedule

let default_unclear_threshold = 0.9

(* Static per-operation inputs to the Figure-5 factor classification. *)
let stall_factors cfg (c : Pipeline.compiled) ~unclear_threshold op =
  let ddg = c.Pipeline.loop.Loop.ddg in
  let ni = Config.max_unroll cfg in
  match (Ddg.op ddg op).Operation.mem with
  | None -> []
  | Some m ->
      let factors = ref [] in
      let add cond f = if cond then factors := f :: !factors in
      add
        (m.Mem_access.indirect || m.Mem_access.stride mod ni <> 0)
        Stats.More_than_one_cluster;
      add
        (m.Mem_access.granularity > cfg.Config.interleaving_factor)
        Stats.Granularity;
      (match Profile.get c.Pipeline.profile op with
      | Some p ->
          add (Profile.distribution p < unclear_threshold)
            Stats.Unclear_preferred;
          add
            (c.Pipeline.schedule.Schedule.cluster.(op)
            <> Profile.preferred_cluster p)
            Stats.Not_in_preferred
      | None -> ());
      !factors

let run_loop cfg machine (c : Pipeline.compiled) ~addr_of ?attractable
    ?(unclear_threshold = default_unclear_threshold) () =
  let ddg = c.Pipeline.loop.Loop.ddg in
  let sched = c.Pipeline.schedule in
  let trip = c.Pipeline.loop.Loop.trip_count in
  let ii = sched.Schedule.ii in
  let mem_ops =
    Ddg.memory_ops ddg
    |> List.sort (fun a b ->
           compare sched.Schedule.start.(a) sched.Schedule.start.(b))
  in
  let factors_of =
    let cache = Hashtbl.create 16 in
    fun op ->
      match Hashtbl.find_opt cache op with
      | Some f -> f
      | None ->
          let f = stall_factors cfg c ~unclear_threshold op in
          Hashtbl.add cache op f;
          f
  in
  let stats = Stats.create () in
  let stall = ref 0 in
  for iter = 0 to trip - 1 do
    List.iter
      (fun op ->
        let issue = (iter * ii) + sched.Schedule.start.(op) + !stall in
        let o = Ddg.op ddg op in
        let store = Operation.is_store o in
        let attract =
          match attractable with None -> true | Some flags -> flags.(op)
        in
        (* Elements wider than the interleaving factor span several
           clusters: the access completes when its slowest part does and
           is classified by that part (so a double-word access can never
           be a plain local hit — Section 5.2). *)
        let i_factor = cfg.Config.interleaving_factor in
        let granularity =
          match o.Operation.mem with
          | Some m -> m.Vliw_ir.Mem_access.granularity
          | None -> i_factor
        in
        let parts = max 1 ((granularity + i_factor - 1) / i_factor) in
        let base_addr = addr_of ~op ~iter in
        let part p =
          Machine.access machine ~attract ~now:issue
            ~cluster:sched.Schedule.cluster.(op)
            ~addr:(base_addr + (p * i_factor))
            ~store ()
        in
        let r = ref (part 0) in
        for p = 1 to parts - 1 do
          let rp = part p in
          if rp.Access.ready_at >= !r.Access.ready_at then r := rp
        done;
        let r = !r in
        Stats.count_access stats r.Access.kind;
        if not store then begin
          let promised = issue + c.Pipeline.latencies.(op) in
          let s = r.Access.ready_at - promised in
          if s > 0 then begin
            stall := !stall + s;
            Stats.count_stall stats r.Access.kind ~cycles:s;
            if r.Access.kind = Access.Remote_hit then
              List.iter (Stats.count_stall_factor stats) (factors_of op)
          end
        end)
      mem_ops
  done;
  Stats.add_compute stats
    ((trip + Schedule.stage_count sched - 1) * ii);
  Machine.end_of_loop machine;
  stats
