module Access = Vliw_arch.Access

type factor =
  | More_than_one_cluster
  | Unclear_preferred
  | Not_in_preferred
  | Granularity

let all_factors =
  [ More_than_one_cluster; Unclear_preferred; Not_in_preferred; Granularity ]

let factor_to_string = function
  | More_than_one_cluster -> "more than one cluster"
  | Unclear_preferred -> "unclear preferred info"
  | Not_in_preferred -> "not in preferred"
  | Granularity -> "granularity"

let kind_index = function
  | Access.Local_hit -> 0
  | Access.Remote_hit -> 1
  | Access.Local_miss -> 2
  | Access.Remote_miss -> 3
  | Access.Combined -> 4

let factor_index = function
  | More_than_one_cluster -> 0
  | Unclear_preferred -> 1
  | Not_in_preferred -> 2
  | Granularity -> 3

type t = {
  accesses : float array;  (** by kind *)
  stall : float array;  (** by kind *)
  factors : float array;
  mutable compute : float;
}

let create () =
  {
    accesses = Array.make 5 0.0;
    stall = Array.make 5 0.0;
    factors = Array.make 4 0.0;
    compute = 0.0;
  }

let copy t =
  {
    accesses = Array.copy t.accesses;
    stall = Array.copy t.stall;
    factors = Array.copy t.factors;
    compute = t.compute;
  }

let count_access t k = t.accesses.(kind_index k) <- t.accesses.(kind_index k) +. 1.0

let count_stall t k ~cycles =
  t.stall.(kind_index k) <- t.stall.(kind_index k) +. float_of_int cycles

let count_stall_factor t f =
  t.factors.(factor_index f) <- t.factors.(factor_index f) +. 1.0

let factor_mask fs =
  List.fold_left (fun m f -> m lor (1 lsl factor_index f)) 0 fs

let count_stall_factor_mask t m =
  for i = 0 to 3 do
    if m land (1 lsl i) <> 0 then t.factors.(i) <- t.factors.(i) +. 1.0
  done

let add_compute t c = t.compute <- t.compute +. float_of_int c

let iround x = int_of_float (Float.round x)
let accesses t k = iround t.accesses.(kind_index k)
let total_accesses t = iround (Array.fold_left ( +. ) 0.0 t.accesses)
let stall_of t k = iround t.stall.(kind_index k)
let stall_cycles t = iround (Array.fold_left ( +. ) 0.0 t.stall)
let compute_cycles t = iround t.compute
let total_cycles t = compute_cycles t + stall_cycles t
let factor_count t f = iround t.factors.(factor_index f)

let local_hit_ratio t =
  let total = Array.fold_left ( +. ) 0.0 t.accesses in
  if total = 0.0 then 0.0 else t.accesses.(kind_index Access.Local_hit) /. total

let equal a b =
  a.accesses = b.accesses && a.stall = b.stall && a.factors = b.factors
  && a.compute = b.compute

let accumulate ~into t =
  Array.iteri (fun i v -> into.accesses.(i) <- into.accesses.(i) +. v) t.accesses;
  Array.iteri (fun i v -> into.stall.(i) <- into.stall.(i) +. v) t.stall;
  Array.iteri (fun i v -> into.factors.(i) <- into.factors.(i) +. v) t.factors;
  into.compute <- into.compute +. t.compute

let scale t f =
  {
    accesses = Array.map (fun v -> v *. f) t.accesses;
    stall = Array.map (fun v -> v *. f) t.stall;
    factors = Array.map (fun v -> v *. f) t.factors;
    compute = t.compute *. f;
  }

let pp ppf t =
  let pr k = t.accesses.(kind_index k) in
  Format.fprintf ppf
    "@[<v>accesses: LH %.0f RH %.0f LM %.0f RM %.0f C %.0f@,\
     stall:    RH %.0f LM %.0f RM %.0f C %.0f@,\
     compute %.0f, stall %.0f, total %d@]"
    (pr Access.Local_hit) (pr Access.Remote_hit) (pr Access.Local_miss)
    (pr Access.Remote_miss) (pr Access.Combined)
    t.stall.(kind_index Access.Remote_hit)
    t.stall.(kind_index Access.Local_miss)
    t.stall.(kind_index Access.Remote_miss)
    t.stall.(kind_index Access.Combined)
    t.compute
    (Array.fold_left ( +. ) 0.0 t.stall)
    (total_cycles t)
