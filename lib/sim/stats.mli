(** Execution statistics gathered by the simulator — exactly the series
    the paper's figures plot: access classification (Figure 4), stall
    time by access class (Figure 6), stall-causing remote-hit factors
    (Figure 5), and compute/stall cycle totals (Figure 8). *)

(** The non-exclusive reasons a stalling remote hit can have
    (Figure 5). *)
type factor =
  | More_than_one_cluster  (** indirect, or stride not multiple of N x I *)
  | Unclear_preferred  (** accesses spread over clusters in the profile *)
  | Not_in_preferred  (** scheduled away from its preferred cluster *)
  | Granularity  (** element bigger than the interleaving factor *)

val all_factors : factor list
val factor_to_string : factor -> string

type t

val create : unit -> t
val copy : t -> t

val count_access : t -> Vliw_arch.Access.kind -> unit
val count_stall : t -> Vliw_arch.Access.kind -> cycles:int -> unit
val count_stall_factor : t -> factor -> unit

val factor_mask : factor list -> int
(** Pack a factor list into a bitmask for {!count_stall_factor_mask} —
    lets the executor precompute each operation's factors once and count
    them in its steady-state loop without touching a list. *)

val count_stall_factor_mask : t -> int -> unit
(** Count every factor present in the mask (allocation-free). *)

val add_compute : t -> int -> unit

val accesses : t -> Vliw_arch.Access.kind -> int
val total_accesses : t -> int
val stall_of : t -> Vliw_arch.Access.kind -> int
val stall_cycles : t -> int
val compute_cycles : t -> int
val total_cycles : t -> int
val factor_count : t -> factor -> int

val local_hit_ratio : t -> float
(** Local hits over all accesses. *)

val equal : t -> t -> bool
(** Exact (bit-level) equality of every counter — the golden-equivalence
    criterion between the access-plan kernel and the reference
    executor. *)

val accumulate : into:t -> t -> unit
(** Pointwise sum ([into] is mutated); used to aggregate loops into a
    benchmark and benchmarks into means. *)

val scale : t -> float -> t
(** Scaled copy — used for weighted means. *)

val pp : Format.formatter -> t -> unit
