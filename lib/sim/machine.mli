(** The memory system of one simulated processor — the dispatch point
    over the three L1 organizations the paper compares. *)

type arch =
  | Word_interleaved of { attraction_buffers : bool }
  | Unified of { slow : bool }
  | Multivliw

val arch_to_string : arch -> string

(** The concrete backend state, exposed so the executor can hoist the
    backend dispatch out of its simulation loop and run an inner loop
    specialized per memory-system implementation. *)
type state =
  | Interleaved_state of Vliw_arch.Interleaved_cache.t
  | Unified_state of Vliw_arch.Unified_cache.t
  | Coherent_state of Vliw_arch.Coherent_cache.t

type t

val create : Vliw_arch.Config.t -> arch -> t
val arch : t -> arch
val state : t -> state

val create_batch :
  Vliw_arch.Config.t -> (arch * int option) list -> t array
(** One machine per swept configuration, in input order — the per-cell
    cache state of a batched executor run.  The [int option] overrides
    [cfg]'s attraction-buffer capacity for that cell (the AB-size
    sweeps' knob); [None] keeps [cfg]'s. *)

val create_batch_cfgs : (Vliw_arch.Config.t * arch) list -> t array
(** {!create_batch} generalized to a full configuration per cell — the
    design-space sweep's cache-geometry axis.  Every cell's
    configuration must agree with the batched executor's plan-side
    configuration on cluster count and interleaving factor (cache size,
    associativity, latencies and attraction-buffer shape are free). *)

val access :
  t ->
  ?attract:bool ->
  now:int ->
  cluster:int ->
  addr:int ->
  store:bool ->
  unit ->
  Vliw_arch.Access.t
(** One word access.  [cluster] is ignored by the unified cache. *)

val end_of_loop : t -> unit
(** Attraction-buffer flush / pending-request reset between loops. *)

val traffic_summary : t -> (string * int) list
(** Architecture-specific bus/coherence traffic counters (empty for the
    unified cache, whose traffic is just its misses). *)
