module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Operation = Vliw_ir.Operation

(* Lifetimes as [def, last_use] spans in flat-schedule cycles; pressure
   at steady state: a span of length len contributes to mod-II slot m
   once per iteration instance alive there, i.e. its contribution to
   slot m is  #{ k >= 0 | def <= m + k*II <= def + len - 1  (mod
   alignment) } — computed directly by walking the span. *)

let add_span pressure ~ii ~from_cycle ~to_cycle =
  if to_cycle >= from_cycle then
    for t = from_cycle to to_cycle do
      let m = ((t mod ii) + ii) mod ii in
      pressure.(m) <- pressure.(m) + 1
    done

let max_live ddg ~latency (s : Schedule.t) =
  let ii = s.Schedule.ii in
  let per_cluster =
    Array.init s.Schedule.n_clusters (fun _ -> Array.make ii 0)
  in
  let live_end_local = Array.make (Ddg.n_ops ddg) min_int in
  (* Local readers. *)
  List.iter
    (fun (e : Edge.t) ->
      if
        e.kind = Edge.Reg_flow
        && s.Schedule.cluster.(e.src) = s.Schedule.cluster.(e.dst)
      then
        live_end_local.(e.src) <-
          max live_end_local.(e.src)
            (s.Schedule.start.(e.dst) + (ii * e.distance)))
    (Ddg.edges ddg);
  (* Departing copies extend the producer's local lifetime to the copy
     issue, and open a lifetime in the destination cluster that lasts
     until that cluster's last reader of the value. *)
  List.iter
    (fun (cp : Schedule.copy) ->
      live_end_local.(cp.Schedule.src_op) <-
        max live_end_local.(cp.Schedule.src_op) cp.Schedule.start;
      let dest_end = ref (cp.Schedule.start + 1) in
      List.iter
        (fun (e : Edge.t) ->
          if
            e.kind = Edge.Reg_flow
            && e.src = cp.Schedule.src_op
            && s.Schedule.cluster.(e.dst) = cp.Schedule.to_cluster
          then
            dest_end :=
              max !dest_end (s.Schedule.start.(e.dst) + (ii * e.distance)))
        (Ddg.edges ddg);
      add_span per_cluster.(cp.Schedule.to_cluster) ~ii
        ~from_cycle:cp.Schedule.start ~to_cycle:!dest_end)
    s.Schedule.copies;
  Array.iter
    (fun (o : Operation.t) ->
      if o.Operation.dests <> [] then begin
        let v = o.Operation.id in
        let def = s.Schedule.start.(v) in
        (* A value exists at least while its operation is in flight. *)
        let last = max live_end_local.(v) (def + latency v) in
        add_span per_cluster.(s.Schedule.cluster.(v)) ~ii ~from_cycle:def
          ~to_cycle:last
      end)
    (Ddg.ops ddg);
  Array.map (fun slots -> Array.fold_left max 0 slots) per_cluster

let total_max_live ddg ~latency s =
  Array.fold_left ( + ) 0 (max_live ddg ~latency s)
