(** Swing-modulo-scheduling node ordering [Llosa et al., PACT'96] — the
    ordering the paper adopts (its reference [13]).

    Properties the scheduler relies on:
    - recurrences are ordered first, most II-constraining first;
    - every node except (at most) one per recurrence has, at its turn,
      only predecessors or only successors among the already-ordered
      nodes, which keeps lifetimes (register pressure) low.

    SCC priorities depend only on the latencies, not on the candidate
    II, so they are computed once ({!prepare}) and reused across the II
    escalation loop. *)

type prepared

val prepare : Vliw_ir.Ddg.t -> latency:(int -> int) -> prepared
(** SCC decomposition plus per-SCC RecMII priorities. *)

val ordered : prepared -> Vliw_ir.Ddg.t -> latency:(int -> int) -> ii:int -> int list
(** A permutation of [0 .. n_ops-1] in scheduling order for one II
    attempt. *)

val order : Vliw_ir.Ddg.t -> latency:(int -> int) -> ii:int -> int list
(** One-shot [prepare] + [ordered]. *)

val depths :
  Vliw_ir.Ddg.t -> latency:(int -> int) -> ii:int -> int array * int array
(** [(estart, height)] longest-path values used by the ordering, exposed
    for the scheduler's slot windows and for tests. *)
