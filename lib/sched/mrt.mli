(** Modulo reservation table for one II attempt.

    Tracks, per cycle modulo II: functional units and issue slots per
    cluster, and the shared register buses.  Buses run at half the core
    frequency, so one transfer occupies a bus for [bus_occupancy]
    consecutive cycles; per-cycle usage is bounded by the bus count
    (transfers of successive iterations alternate over the physical
    buses, so the count model is what the hardware can sustain). *)

type t

val create : Vliw_arch.Config.t -> ii:int -> t
val ii : t -> int

val fu_free : t -> cluster:int -> fu:Vliw_ir.Opcode.fu_class -> cycle:int -> bool
(** FU of the class and an issue slot both available at [cycle mod II]. *)

val reserve_fu : t -> cluster:int -> fu:Vliw_ir.Opcode.fu_class -> cycle:int -> unit
(** @raise Invalid_argument if not free (callers must check first). *)

val issue_free : t -> cluster:int -> cycle:int -> bool
(** An issue slot only — copies go out on the register buses and do not
    occupy a functional unit. *)

val reserve_issue : t -> cluster:int -> cycle:int -> unit
(** @raise Invalid_argument if not free. *)

val reg_bus_free : t -> cycle:int -> bool
(** Can a transfer start at [cycle] without exceeding bus capacity
    anywhere in its occupancy window? *)

val bus_rejections : unit -> int
(** Monotonic per-domain count of {!reg_bus_free} probes that answered
    [false].  This is the only point in the whole compilation pipeline
    where [Config.n_reg_buses] is consulted, so a compile whose
    before/after delta is zero provably produces a byte-identical
    schedule under any larger bus count (every probe that succeeded at
    [b] buses still succeeds at [b' >= b], so the search takes the
    identical path).  The design-space sweep reads the delta (via
    {!Vliw_core.Pipeline.compiled}) to prune dominated bus levels;
    {!restore} deliberately does not roll the counter back — rejections
    count search events, not reservation state. *)

val reserve_reg_bus : t -> cycle:int -> unit
(** @raise Invalid_argument if not free. *)

val cluster_load : t -> int -> int
(** Issue slots reserved in a cluster so far (workload-balance input). *)

type snapshot

val snapshot : t -> snapshot
(** Capture the full reservation state (cheap: the table is tiny). *)

val make_snapshot : t -> snapshot
(** Allocate a snapshot buffer sized for [t] holding the current state.
    Combine with {!save} to reuse one buffer across many probes instead
    of allocating per probe. *)

val save : t -> snapshot -> unit
(** Overwrite an existing snapshot with the current state.  The snapshot
    must have been created from an Mrt of the same shape. *)

val restore : t -> snapshot -> unit
(** Roll back to a snapshot — used when a placement attempt reserved
    copy resources and then failed on a later constraint. *)
