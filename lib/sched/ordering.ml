module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Scc = Vliw_ir.Scc
module Mii = Vliw_ir.Mii

(* Longest-path relaxation with weights [lat - ii*distance], clamped at 0.
   Converges in <= n rounds when ii >= RecMII (no positive cycles). *)
let depths ddg ~latency ~ii =
  let n = Ddg.n_ops ddg in
  let estart = Array.make n 0 and height = Array.make n 0 in
  let weight e = Ddg.effective_latency ~latency e - (ii * e.Edge.distance) in
  let relax dist get_edges endpoint other =
    let changed = ref true and rounds = ref 0 in
    while !changed && !rounds <= n do
      changed := false;
      incr rounds;
      for v = 0 to n - 1 do
        List.iter
          (fun e ->
            let cand = dist.(other e) + weight e in
            if cand > dist.(endpoint e) then begin
              dist.(endpoint e) <- cand;
              changed := true
            end)
          (get_edges v)
      done
    done
  in
  relax estart (Ddg.succs ddg) (fun e -> e.Edge.dst) (fun e -> e.Edge.src);
  relax height (Ddg.preds ddg) (fun e -> e.Edge.src) (fun e -> e.Edge.dst);
  (estart, height)

type direction = Top_down | Bottom_up

type prepared = { sets : int list list }

let prepare ddg ~latency =
  (* SCC sets, most II-constraining first. *)
  let scc_priority nodes =
    match nodes with
    | [ v ]
      when not
             (List.exists (fun (e : Edge.t) -> e.dst = v) (Ddg.succs ddg v))
      ->
        0
    | _ -> Mii.recurrence_ii ddg ~latency nodes
  in
  let sets =
    Scc.components ddg
    |> List.map (fun nodes ->
           (scc_priority nodes, List.length nodes, List.fold_left min max_int nodes, nodes))
    |> List.sort (fun (p1, s1, m1, _) (p2, s2, m2, _) ->
           if p1 <> p2 then compare p2 p1
           else if s1 <> s2 then compare s2 s1
           else compare m1 m2)
    |> List.map (fun (_, _, _, nodes) -> nodes)
  in
  { sets }

let ordered prepared ddg ~latency ~ii =
  let n = Ddg.n_ops ddg in
  let estart, height = depths ddg ~latency ~ii in
  let horizon = Array.fold_left max 0 estart in
  let mobility v = max 0 (horizon - height.(v) - estart.(v)) in
  let sets = prepared.sets in
  let ordered = Array.make n false in
  let rev_order = ref [] in
  let append v =
    ordered.(v) <- true;
    rev_order := v :: !rev_order
  in
  (* Reachability restricted to unordered nodes is not needed: path nodes
     between the ordered set and the next SCC are found on the full
     graph, then filtered. *)
  let reach get_edges endpoint seeds =
    let seen = Array.make n false in
    let stack = ref seeds in
    List.iter (fun v -> seen.(v) <- true) seeds;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          List.iter
            (fun e ->
              let w = endpoint e in
              if not seen.(w) then begin
                seen.(w) <- true;
                stack := w :: !stack
              end)
            (get_edges v)
    done;
    seen
  in
  let descendants seeds = reach (Ddg.succs ddg) (fun e -> e.Edge.dst) seeds in
  let ancestors seeds = reach (Ddg.preds ddg) (fun e -> e.Edge.src) seeds in
  let in_work = Array.make n false in
  let remaining = ref 0 in
  (* The sweep repeatedly takes the minimum of the candidate set under
     the direction's (primary, mobility, id) key.  Keys are unique (the
     id tiebreak) and static for the whole sweep, so a binary heap with
     membership flags yields exactly the same node each step as the
     original fold-over-the-candidate-list — without rebuilding and
     re-sorting that list per selection. *)
  let k1 = Array.make n 0 in
  let heap = Array.make n 0 in
  let heap_size = ref 0 in
  let in_r = Array.make n false in
  let less a b =
    k1.(a) < k1.(b)
    || (k1.(a) = k1.(b)
       &&
       let ma = mobility a and mb = mobility b in
       ma < mb || (ma = mb && a < b))
  in
  let push dir v =
    if not in_r.(v) then begin
      k1.(v) <-
        (match dir with Top_down -> -height.(v) | Bottom_up -> -estart.(v));
      in_r.(v) <- true;
      let i = ref !heap_size in
      incr heap_size;
      heap.(!i) <- v;
      let continue = ref true in
      while !continue && !i > 0 do
        let p = (!i - 1) / 2 in
        if less heap.(!i) heap.(p) then begin
          let tmp = heap.(p) in
          heap.(p) <- heap.(!i);
          heap.(!i) <- tmp;
          i := p
        end
        else continue := false
      done
    end
  in
  let pop () =
    let v = heap.(0) in
    decr heap_size;
    heap.(0) <- heap.(!heap_size);
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !heap_size && less heap.(l) heap.(!s) then s := l;
      if r < !heap_size && less heap.(r) heap.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = heap.(!s) in
        heap.(!s) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !s
      end
    done;
    in_r.(v) <- false;
    v
  in
  let touches_ordered get_edges endpoint v =
    List.exists (fun e -> ordered.(endpoint e)) (get_edges v)
  in
  let inner () =
    while !remaining > 0 do
      (* Choose the sweep direction from how the working set touches the
         already-ordered nodes. *)
      let dir = ref Top_down in
      let seeded = ref false in
      for v = 0 to n - 1 do
        if
          in_work.(v)
          && touches_ordered (Ddg.preds ddg) (fun e -> e.Edge.src) v
        then begin
          seeded := true;
          push Top_down v
        end
      done;
      if not !seeded then begin
        for v = 0 to n - 1 do
          if
            in_work.(v)
            && touches_ordered (Ddg.succs ddg) (fun e -> e.Edge.dst) v
          then begin
            seeded := true;
            push Bottom_up v
          end
        done;
        if !seeded then dir := Bottom_up
        else begin
          (* No contact with the ordered set: seed with the earliest
             (estart, id) work node, sweeping top-down. *)
          let seed = ref (-1) in
          for v = n - 1 downto 0 do
            if
              in_work.(v)
              && (!seed < 0
                 || estart.(v) < estart.(!seed)
                 || (estart.(v) = estart.(!seed) && v < !seed))
            then seed := v
          done;
          push Top_down !seed
        end
      end;
      while !heap_size > 0 do
        let v = pop () in
        append v;
        in_work.(v) <- false;
        decr remaining;
        match !dir with
        | Top_down ->
            List.iter
              (fun (e : Edge.t) -> if in_work.(e.dst) then push Top_down e.dst)
              (Ddg.succs ddg v)
        | Bottom_up ->
            List.iter
              (fun (e : Edge.t) -> if in_work.(e.src) then push Bottom_up e.src)
              (Ddg.preds ddg v)
      done
    done
  in
  List.iter
    (fun set ->
      let set = List.filter (fun v -> not ordered.(v)) set in
      if set <> [] then begin
        List.iter
          (fun v ->
            in_work.(v) <- true;
            incr remaining)
          set;
        if !rev_order <> [] then begin
          (* Nodes on paths between the ordered nodes and this SCC must be
             ordered together with it so later nodes keep the
             "only preds or only succs" property. *)
          let anc_set = ancestors set and desc_set = descendants set in
          let desc_o = descendants !rev_order and anc_o = ancestors !rev_order in
          for v = 0 to n - 1 do
            if
              (not ordered.(v))
              && (not in_work.(v))
              && ((anc_set.(v) && desc_o.(v)) || (desc_set.(v) && anc_o.(v)))
            then begin
              in_work.(v) <- true;
              incr remaining
            end
          done
        end;
        inner ()
      end)
    sets;
  List.rev !rev_order

let order ddg ~latency ~ii = ordered (prepare ddg ~latency) ddg ~latency ~ii
