module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Scc = Vliw_ir.Scc
module Mii = Vliw_ir.Mii

(* Longest-path relaxation with weights [lat - ii*distance], clamped at 0.
   Converges in <= n rounds when ii >= RecMII (no positive cycles). *)
let depths ddg ~latency ~ii =
  let n = Ddg.n_ops ddg in
  let estart = Array.make n 0 and height = Array.make n 0 in
  let weight e = Ddg.effective_latency ~latency e - (ii * e.Edge.distance) in
  let relax dist get_edges endpoint other =
    let changed = ref true and rounds = ref 0 in
    while !changed && !rounds <= n do
      changed := false;
      incr rounds;
      for v = 0 to n - 1 do
        List.iter
          (fun e ->
            let cand = dist.(other e) + weight e in
            if cand > dist.(endpoint e) then begin
              dist.(endpoint e) <- cand;
              changed := true
            end)
          (get_edges v)
      done
    done
  in
  relax estart (Ddg.succs ddg) (fun e -> e.Edge.dst) (fun e -> e.Edge.src);
  relax height (Ddg.preds ddg) (fun e -> e.Edge.src) (fun e -> e.Edge.dst);
  (estart, height)

type direction = Top_down | Bottom_up

type prepared = { sets : int list list }

let prepare ddg ~latency =
  (* SCC sets, most II-constraining first. *)
  let scc_priority nodes =
    match nodes with
    | [ v ]
      when not
             (List.exists (fun (e : Edge.t) -> e.dst = v) (Ddg.succs ddg v))
      ->
        0
    | _ -> Mii.recurrence_ii ddg ~latency nodes
  in
  let sets =
    Scc.components ddg
    |> List.map (fun nodes ->
           (scc_priority nodes, List.length nodes, List.fold_left min max_int nodes, nodes))
    |> List.sort (fun (p1, s1, m1, _) (p2, s2, m2, _) ->
           if p1 <> p2 then compare p2 p1
           else if s1 <> s2 then compare s2 s1
           else compare m1 m2)
    |> List.map (fun (_, _, _, nodes) -> nodes)
  in
  { sets }

let ordered prepared ddg ~latency ~ii =
  let n = Ddg.n_ops ddg in
  let estart, height = depths ddg ~latency ~ii in
  let horizon = Array.fold_left max 0 estart in
  let mobility v = max 0 (horizon - height.(v) - estart.(v)) in
  let sets = prepared.sets in
  let ordered = Array.make n false in
  let rev_order = ref [] in
  let append v =
    ordered.(v) <- true;
    rev_order := v :: !rev_order
  in
  (* Reachability restricted to unordered nodes is not needed: path nodes
     between the ordered set and the next SCC are found on the full
     graph, then filtered. *)
  let reach get_edges endpoint seeds =
    let seen = Array.make n false in
    let stack = ref seeds in
    List.iter (fun v -> seen.(v) <- true) seeds;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          List.iter
            (fun e ->
              let w = endpoint e in
              if not seen.(w) then begin
                seen.(w) <- true;
                stack := w :: !stack
              end)
            (get_edges v)
    done;
    seen
  in
  let descendants seeds = reach (Ddg.succs ddg) (fun e -> e.Edge.dst) seeds in
  let ancestors seeds = reach (Ddg.preds ddg) (fun e -> e.Edge.src) seeds in
  let in_work = Array.make n false in
  let pick_best candidates better =
    List.fold_left
      (fun best v ->
        match best with
        | None -> Some v
        | Some b -> if better v b then Some v else Some b)
      None candidates
  in
  let work_list () =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if in_work.(v) then acc := v :: !acc
    done;
    !acc
  in
  let neighbours_of_ordered get_edges endpoint =
    List.filter
      (fun v ->
        List.exists (fun e -> ordered.(endpoint e)) (get_edges v))
      (work_list ())
  in
  let inner () =
    while work_list () <> [] do
      (* Choose the sweep direction from how the working set touches the
         already-ordered nodes. *)
      let succs_of_o = neighbours_of_ordered (Ddg.preds ddg) (fun e -> e.Edge.src) in
      let preds_of_o = neighbours_of_ordered (Ddg.succs ddg) (fun e -> e.Edge.dst) in
      let r, dir =
        if succs_of_o <> [] then (succs_of_o, Top_down)
        else if preds_of_o <> [] then (preds_of_o, Bottom_up)
        else
          let seed =
            pick_best (work_list ()) (fun v b ->
                estart.(v) < estart.(b)
                || (estart.(v) = estart.(b) && v < b))
          in
          (Option.to_list seed, Top_down)
      in
      let r = ref r and dir = ref dir in
      while !r <> [] do
        let better v b =
          let key u =
            match !dir with
            | Top_down -> (-height.(u), mobility u, u)
            | Bottom_up -> (-estart.(u), mobility u, u)
          in
          key v < key b
        in
        match pick_best !r better with
        | None -> r := []
        | Some v ->
            append v;
            in_work.(v) <- false;
            let expand =
              match !dir with
              | Top_down ->
                  List.filter_map
                    (fun (e : Edge.t) ->
                      if in_work.(e.dst) then Some e.dst else None)
                    (Ddg.succs ddg v)
              | Bottom_up ->
                  List.filter_map
                    (fun (e : Edge.t) ->
                      if in_work.(e.src) then Some e.src else None)
                    (Ddg.preds ddg v)
            in
            r :=
              List.sort_uniq compare
                (List.filter (fun u -> in_work.(u) && u <> v) (!r @ expand))
      done
    done
  in
  List.iter
    (fun set ->
      let set = List.filter (fun v -> not ordered.(v)) set in
      if set <> [] then begin
        List.iter (fun v -> in_work.(v) <- true) set;
        if !rev_order <> [] then begin
          (* Nodes on paths between the ordered nodes and this SCC must be
             ordered together with it so later nodes keep the
             "only preds or only succs" property. *)
          let anc_set = ancestors set and desc_set = descendants set in
          let desc_o = descendants !rev_order and anc_o = ancestors !rev_order in
          for v = 0 to n - 1 do
            if
              (not ordered.(v))
              && ((anc_set.(v) && desc_o.(v)) || (desc_set.(v) && anc_o.(v)))
            then in_work.(v) <- true
          done
        end;
        inner ()
      end)
    sets;
  List.rev !rev_order

let order ddg ~latency ~ii = ordered (prepare ddg ~latency) ddg ~latency ~ii
