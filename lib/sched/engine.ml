module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Opcode = Vliw_ir.Opcode
module Operation = Vliw_ir.Operation

type choice = Free | Forced of int

type hooks = {
  reset : unit -> unit;
  choice : int -> choice;
  on_scheduled : op:int -> cluster:int -> unit;
}

let default_hooks =
  { reset = ignore; choice = (fun _ -> Free); on_scheduled = (fun ~op:_ ~cluster:_ -> ()) }

(* State of one II attempt. *)
type attempt = {
  cfg : Config.t;
  ddg : Ddg.t;
  latency : int -> int;
  ii : int;
  mrt : Mrt.t;
  start : int array;  (* may be negative until normalization *)
  cluster : int array;  (* -1 = unscheduled *)
  mutable copies : Schedule.copy list;
  copy_times : (int * int, int list) Hashtbl.t;  (* (src_op, to_cluster) *)
  mem_component : int array;  (* -1 for non-memory ops *)
  component_cluster : int array;  (* -1 = not yet pinned *)
  snap : Mrt.snapshot;
      (* reusable rollback buffer — [try_cycles] saves/restores on every
         placement probe, and only one probe is live at a time *)
}

(* Memory-dependence components (the paper's chains): all their members
   must share a cluster, and two members may only be connected through a
   yet-unscheduled third, so the grouping must be known up-front — an
   edge-wise check can wedge the middle operation forever. *)
let memory_components ddg =
  let n = Ddg.n_ops ddg in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iter
    (fun (e : Edge.t) ->
      if Edge.is_memory_kind e.kind then begin
        let a = find e.src and b = find e.dst in
        if a <> b then parent.(a) <- b
      end)
    (Ddg.edges ddg);
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let root_ids = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if Operation.is_memory (Ddg.op ddg i) then begin
      let r = find i in
      let c =
        match Hashtbl.find_opt root_ids r with
        | Some c -> c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add root_ids r c;
            c
      in
      comp.(i) <- c
    end
  done;
  (comp, !next)

let scheduled a v = a.cluster.(v) >= 0

let existing_copies a ~src ~to_cluster =
  Option.value ~default:[] (Hashtbl.find_opt a.copy_times (src, to_cluster))

let record_copy a cp =
  a.copies <- cp :: a.copies;
  let key = (cp.Schedule.src_op, cp.Schedule.to_cluster) in
  Hashtbl.replace a.copy_times key (cp.Schedule.start :: existing_copies a ~src:cp.Schedule.src_op ~to_cluster:cp.Schedule.to_cluster)

(* Earliest start of [v] in cluster [c] given its scheduled predecessors. *)
let window a v c =
  let copy_lat = a.cfg.Config.reg_copy_latency in
  let estart = ref 0
  and lstart = ref max_int
  and has_pred = ref false
  and has_succ = ref false in
  List.iter
    (fun (e : Edge.t) ->
      let u = e.src in
      if scheduled a u then begin
        let cross = a.cluster.(u) <> c in
        match e.kind with
        | Edge.Reg_anti | Edge.Reg_out when cross -> ()
        | _ ->
            has_pred := true;
            let shift = a.ii * e.distance in
            let base =
              if e.kind = Edge.Reg_flow && cross then begin
                let via_new = a.start.(u) + a.latency u + copy_lat - shift in
                List.fold_left
                  (fun acc s -> min acc (s + copy_lat - shift))
                  via_new
                  (existing_copies a ~src:u ~to_cluster:c)
              end
              else a.start.(u) + Ddg.effective_latency ~latency:a.latency e - shift
            in
            if base > !estart then estart := base
      end)
    (Ddg.preds a.ddg v);
  List.iter
    (fun (e : Edge.t) ->
      let w = e.dst in
      if w <> v && scheduled a w then begin
        let cross = a.cluster.(w) <> c in
        match e.kind with
        | Edge.Reg_anti | Edge.Reg_out when cross -> ()
        | _ ->
            has_succ := true;
            let shift = a.ii * e.distance in
            let bound =
              if e.kind = Edge.Reg_flow && cross then
                a.start.(w) + shift - copy_lat - a.latency v
              else a.start.(w) - Ddg.effective_latency ~latency:a.latency e + shift
            in
            if bound < !lstart then lstart := bound
      end)
    (Ddg.succs a.ddg v);
  (* Start cycles may be negative: the flat schedule is normalized by a
     multiple of the II once the attempt succeeds. *)
  (!estart, !lstart, !has_pred, !has_succ)

(* Find and reserve a copy slot on [from_cluster] in [earliest..latest]. *)
let reserve_copy_slot a ~from_cluster ~earliest ~latest =
  let rec scan s =
    if s > latest then None
    else if
      Mrt.issue_free a.mrt ~cluster:from_cluster ~cycle:s
      && Mrt.reg_bus_free a.mrt ~cycle:s
    then begin
      Mrt.reserve_issue a.mrt ~cluster:from_cluster ~cycle:s;
      Mrt.reserve_reg_bus a.mrt ~cycle:s;
      Some s
    end
    else scan (s + 1)
  in
  if earliest > latest then None else scan earliest

exception Placement_failed

(* Try to place [v] in cluster [c] at cycle [t]; returns the copies to
   commit.  The MRT is mutated; the caller restores it on failure. *)
let try_place a v c t =
  let copy_lat = a.cfg.Config.reg_copy_latency in
  let o = Ddg.op a.ddg v in
  let fu = Opcode.fu_class o.Operation.opcode in
  if not (Mrt.fu_free a.mrt ~cluster:c ~fu ~cycle:t) then raise Placement_failed;
  let new_copies = ref [] in
  (* Copies feeding v from cross-cluster predecessors. *)
  List.iter
    (fun (e : Edge.t) ->
      let u = e.src in
      if scheduled a u && e.kind = Edge.Reg_flow && a.cluster.(u) <> c then begin
        let shift = a.ii * e.distance in
        let deadline = t + shift - copy_lat in
        let reusable ss =
          List.exists (fun s -> s + copy_lat - shift <= t) ss
        in
        let planned =
          List.exists
            (fun cp ->
              cp.Schedule.src_op = u && cp.Schedule.to_cluster = c
              && cp.Schedule.start <= deadline)
            !new_copies
        in
        if not (reusable (existing_copies a ~src:u ~to_cluster:c) || planned)
        then
          match
            reserve_copy_slot a ~from_cluster:a.cluster.(u)
              ~earliest:(a.start.(u) + a.latency u)
              ~latest:deadline
          with
          | Some s ->
              new_copies :=
                { Schedule.src_op = u; from_cluster = a.cluster.(u);
                  to_cluster = c; start = s }
                :: !new_copies
          | None -> raise Placement_failed
      end)
    (Ddg.preds a.ddg v);
  (* Copies from v to already-scheduled cross-cluster consumers: one per
     destination cluster, placed to meet the tightest consumer. *)
  let dest_deadlines = Hashtbl.create 4 in
  List.iter
    (fun (e : Edge.t) ->
      let w = e.dst in
      if w <> v && scheduled a w && e.kind = Edge.Reg_flow && a.cluster.(w) <> c
      then begin
        let deadline = a.start.(w) + (a.ii * e.distance) - copy_lat in
        let cw = a.cluster.(w) in
        let cur =
          Option.value ~default:max_int (Hashtbl.find_opt dest_deadlines cw)
        in
        Hashtbl.replace dest_deadlines cw (min cur deadline)
      end)
    (Ddg.succs a.ddg v);
  Hashtbl.iter
    (fun dest deadline ->
      match
        reserve_copy_slot a ~from_cluster:c ~earliest:(t + a.latency v)
          ~latest:deadline
      with
      | Some s ->
          new_copies :=
            { Schedule.src_op = v; from_cluster = c; to_cluster = dest;
              start = s }
            :: !new_copies
      | None -> raise Placement_failed)
    dest_deadlines;
  (* A copy reserved above may have taken the issue slot that was free
     on entry; re-check before committing. *)
  if not (Mrt.fu_free a.mrt ~cluster:c ~fu ~cycle:t) then
    raise Placement_failed;
  Mrt.reserve_fu a.mrt ~cluster:c ~fu ~cycle:t;
  !new_copies

(* Members of a memory-dependence component must share the cluster; the
   component is pinned by its first scheduled member. *)
let mem_cluster_ok a v c =
  let comp = a.mem_component.(v) in
  comp < 0
  || a.component_cluster.(comp) < 0
  || a.component_cluster.(comp) = c

let comm_cost a v c =
  let cost = ref 0 in
  List.iter
    (fun (e : Edge.t) ->
      if
        e.kind = Edge.Reg_flow && scheduled a e.src && a.cluster.(e.src) <> c
        && existing_copies a ~src:e.src ~to_cluster:c = []
      then incr cost)
    (Ddg.preds a.ddg v);
  List.iter
    (fun (e : Edge.t) ->
      if
        e.kind = Edge.Reg_flow && e.dst <> v && scheduled a e.dst
        && a.cluster.(e.dst) <> c
      then incr cost)
    (Ddg.succs a.ddg v);
  !cost

let candidate_clusters a hooks v ~allow_cross_cluster_mem =
  let all = List.init a.cfg.Config.n_clusters (fun c -> c) in
  let feasible c = allow_cross_cluster_mem || mem_cluster_ok a v c in
  match hooks.choice v with
  | Forced c -> if feasible c then [ c ] else []
  | Free ->
      all
      |> List.filter feasible
      |> List.map (fun c -> (comm_cost a v c, Mrt.cluster_load a.mrt c, c))
      |> List.sort compare
      |> List.map (fun (_, _, c) -> c)

(* Probe up to [count] cycles starting at [first], stepping by [step]
   (+1 ascending from estart, -1 descending from lstart).  Iterating the
   window directly — rather than materializing a [List.init ii] list per
   operation per II attempt — keeps the scheduler's hottest loop
   allocation-free. *)
let try_cycles a v c ~first ~count ~step =
  Mrt.save a.mrt a.snap;
  let rec loop i t =
    if i >= count then false
    else
      match try_place a v c t with
      | new_copies ->
          a.start.(v) <- t;
          a.cluster.(v) <- c;
          let comp = a.mem_component.(v) in
          if comp >= 0 && a.component_cluster.(comp) < 0 then
            a.component_cluster.(comp) <- c;
          List.iter (record_copy a) new_copies;
          true
      | exception Placement_failed ->
          Mrt.restore a.mrt a.snap;
          loop (i + 1) (t + step)
  in
  loop 0 first

let attempt cfg ddg ~latency ~order_base ~components ~hooks
    ~allow_cross_cluster_mem ~hoisted ~ii =
  hooks.reset ();
  let n = Ddg.n_ops ddg in
  let mem_component, n_components = components in
  let mrt = Mrt.create cfg ~ii in
  let a =
    {
      cfg;
      ddg;
      latency;
      ii;
      mrt;
      start = Array.make n 0;
      cluster = Array.make n (-1);
      copies = [];
      copy_times = Hashtbl.create 16;
      mem_component;
      component_cluster = Array.make (max 1 n_components) (-1);
      snap = Mrt.make_snapshot mrt;
    }
  in
  let order =
    (* Wedge recovery: nodes a previous same-II attempt could not place
       are hoisted to the front, where their window is unconstrained.
       The base ordering only depends on the II, so [try_ii] computes it
       once and shares it across hoist retries. *)
    if hoisted = [] then order_base
    else hoisted @ List.filter (fun v -> not (List.mem v hoisted)) order_base
  in
  let place v =
    let clusters = candidate_clusters a hooks v ~allow_cross_cluster_mem in
    List.exists
      (fun c ->
        let estart, lstart, has_pred, has_succ = window a v c in
        match (has_pred, has_succ) with
        | _, false -> try_cycles a v c ~first:estart ~count:ii ~step:1
        | false, true -> try_cycles a v c ~first:lstart ~count:ii ~step:(-1)
        | true, true ->
            let hi = min lstart (estart + ii - 1) in
            if hi < estart then false
            else
              try_cycles a v c ~first:estart ~count:(hi - estart + 1) ~step:1)
      clusters
  in
  let failed = ref None in
  let ok =
    List.for_all
      (fun v ->
        let placed = place v in
        if placed then hooks.on_scheduled ~op:v ~cluster:a.cluster.(v)
        else failed := Some v;
        placed)
      order
  in
  if not ok then Error !failed
  else begin
    (* Normalize: shift everything by a multiple of the II so the
       earliest issue (operation or copy) lands in [0, II). *)
    let earliest =
      List.fold_left
        (fun acc (cp : Schedule.copy) -> min acc cp.Schedule.start)
        (Array.fold_left min max_int a.start)
        a.copies
    in
    let shift =
      if earliest >= 0 then 0 else (((-earliest) + ii - 1) / ii) * ii
    in
    Ok
      {
        Schedule.ii;
        n_clusters = cfg.Config.n_clusters;
        cluster = a.cluster;
        start = Array.map (fun s -> s + shift) a.start;
        copies =
          List.rev_map
            (fun (cp : Schedule.copy) ->
              { cp with Schedule.start = cp.Schedule.start + shift })
            a.copies
          |> List.rev;
      }
  end

let max_hoist_retries = 16

(* Guaranteed fallback: a sequential schedule.  Every operation gets its
   own window of L cycles in topological order of the zero-distance
   subgraph (acyclic for any feasible loop), so every dependence holds
   with room for one cross-cluster copy per consumer cluster; II is
   n * L.  Only used when the greedy search exhausts its default budget
   on pathological graphs — never by the benchmark suite. *)
let sequential cfg ddg ~latency ~hooks ~allow_cross_cluster_mem =
  hooks.reset ();
  let n = Ddg.n_ops ddg in
  let mem_component, n_components = memory_components ddg in
  let component_cluster = Array.make (max 1 n_components) (-1) in
  (* Kahn's topological sort over distance-0 edges. *)
  let indegree = Array.make n 0 in
  List.iter
    (fun (e : Edge.t) ->
      if e.distance = 0 then indegree.(e.dst) <- indegree.(e.dst) + 1)
    (Ddg.edges ddg);
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun (e : Edge.t) ->
        if e.distance = 0 then begin
          indegree.(e.dst) <- indegree.(e.dst) - 1;
          if indegree.(e.dst) = 0 then Queue.add e.dst queue
        end)
      (Ddg.succs ddg v)
  done;
  if !seen < n then None (* zero-distance cycle: genuinely infeasible *)
  else begin
    let order = List.rev !order in
    let max_lat =
      List.fold_left (fun acc v -> max acc (latency v)) 1 order
    in
    let l = max_lat + cfg.Config.reg_copy_latency + cfg.Config.n_clusters + 2 in
    let ii = n * l in
    let start = Array.make n 0 and cluster = Array.make n 0 in
    let copies = ref [] in
    List.iteri
      (fun idx v ->
        start.(v) <- idx * l;
        let c =
          match hooks.choice v with
          | Forced c -> c
          | Free ->
              let comp = mem_component.(v) in
              if (not allow_cross_cluster_mem) && comp >= 0
                 && component_cluster.(comp) >= 0
              then component_cluster.(comp)
              else 0
        in
        cluster.(v) <- c;
        let comp = mem_component.(v) in
        if comp >= 0 && component_cluster.(comp) < 0 then
          component_cluster.(comp) <- c;
        hooks.on_scheduled ~op:v ~cluster:c)
      order;
    (* One copy per (producer, consumer-cluster) pair, staggered inside
       the producer's window so no two copies share a bus cycle. *)
    let emitted = Hashtbl.create 8 in
    List.iter
      (fun (e : Edge.t) ->
        if e.kind = Edge.Reg_flow && cluster.(e.src) <> cluster.(e.dst) then begin
          let key = (e.src, cluster.(e.dst)) in
          if not (Hashtbl.mem emitted key) then begin
            Hashtbl.add emitted key ();
            copies :=
              {
                Schedule.src_op = e.src;
                from_cluster = cluster.(e.src);
                to_cluster = cluster.(e.dst);
                start = start.(e.src) + latency e.src + cluster.(e.dst);
              }
              :: !copies
          end
        end)
      (Ddg.edges ddg);
    Some
      {
        Schedule.ii;
        n_clusters = cfg.Config.n_clusters;
        cluster;
        start;
        copies = List.rev !copies;
      }
  end

let schedule cfg ddg ~latency ?(hooks = default_hooks)
    ?(allow_cross_cluster_mem = false) ?min_ii ?max_ii () =
  let mii = Resources.mii cfg ddg ~latency in
  let lo = max 1 (Option.value ~default:mii min_ii) in
  let hi = Option.value ~default:((4 * mii) + 64) max_ii in
  let prepared = Ordering.prepare ddg ~latency in
  let components = memory_components ddg in
  let try_ii ii =
    (* The greedy pass can wedge on the node that closes a recurrence (a
       node scheduled after both its predecessors and successors, whose
       zero-distance window came out empty).  Re-running the same II
       with the wedged node placed first resolves this without
       backtracking inside an attempt. *)
    let order_base = Ordering.ordered prepared ddg ~latency ~ii in
    let rec retry hoisted k =
      match
        attempt cfg ddg ~latency ~order_base ~components ~hooks
          ~allow_cross_cluster_mem ~hoisted ~ii
      with
      | Ok s -> Some s
      | Error (Some v) when k < max_hoist_retries && not (List.mem v hoisted)
        ->
          retry (v :: hoisted) (k + 1)
      | Error _ -> None
    in
    retry [] 0
  in
  let rec loop ii =
    if ii > hi then None
    else match try_ii ii with Some s -> Some s | None -> loop (ii + 1)
  in
  match loop lo with
  | Some s -> Some s
  | None when max_ii = None ->
      (* Default budget exhausted: fall back to the guaranteed
         sequential schedule rather than fail. *)
      sequential cfg ddg ~latency ~hooks ~allow_cross_cluster_mem
  | None -> None
