module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Opcode = Vliw_ir.Opcode
module Operation = Vliw_ir.Operation

type copy = {
  src_op : int;
  from_cluster : int;
  to_cluster : int;
  start : int;
}

type t = {
  ii : int;
  n_clusters : int;
  cluster : int array;
  start : int array;
  copies : copy list;
}

let stage_count t = (Array.fold_left max 0 t.start / t.ii) + 1
let n_copies t = List.length t.copies

let ops_in_cluster t c =
  Array.fold_left (fun acc cl -> if cl = c then acc + 1 else acc) 0 t.cluster

let copies_from t c =
  List.fold_left
    (fun acc cp -> if cp.from_cluster = c then acc + 1 else acc)
    0 t.copies

let cluster_fu_usage ddg t ~cluster ~fu =
  Array.fold_left
    (fun acc (o : Operation.t) ->
      if
        t.cluster.(o.Operation.id) = cluster
        && Opcode.fu_class o.Operation.opcode = fu
      then acc + 1
      else acc)
    0 (Ddg.ops ddg)

let workload_balance t =
  let counts = Array.make t.n_clusters 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) t.cluster;
  List.iter
    (fun cp -> counts.(cp.from_cluster) <- counts.(cp.from_cluster) + 1)
    t.copies;
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 1.0 /. float_of_int t.n_clusters
  else float_of_int (Array.fold_left max 0 counts) /. float_of_int total

let validate cfg ddg ~latency ?(allow_cross_cluster_mem = false) t =
  let ( let* ) = Result.bind in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let copy_lat = cfg.Config.reg_copy_latency in
  let check_edge acc (e : Edge.t) =
    let* () = acc in
    let ts = t.start.(e.src) and td = t.start.(e.dst) in
    let cs = t.cluster.(e.src) and cd = t.cluster.(e.dst) in
    let lat = Ddg.effective_latency ~latency e in
    let slack = td - ts - lat + (t.ii * e.distance) in
    match e.kind with
    | Edge.Reg_flow when cs <> cd ->
        (* Must be routed through a copy that is itself on time. *)
        let ok =
          List.exists
            (fun cp ->
              cp.src_op = e.src && cp.to_cluster = cd
              && cp.start >= ts + latency e.src
              && td >= cp.start + copy_lat - (t.ii * e.distance))
            t.copies
        in
        if ok then Ok ()
        else err "edge %a: cross-cluster flow without a timely copy" Edge.pp e
    | Edge.Reg_anti | Edge.Reg_out when cs <> cd ->
        (* Different clusters have distinct physical registers. *)
        Ok ()
    | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out | Edge.Mem_unresolved
      when cs <> cd ->
        if allow_cross_cluster_mem then
          if slack >= 0 then Ok ()
          else err "edge %a: violated (slack %d)" Edge.pp e slack
        else err "edge %a: memory-dependent operations in clusters %d/%d"
               Edge.pp e cs cd
    | _ ->
        if slack >= 0 then Ok ()
        else err "edge %a: violated (slack %d)" Edge.pp e slack
  in
  let* () = List.fold_left check_edge (Ok ()) (Ddg.edges ddg) in
  (* Resource usage: replay every reservation into a fresh table. *)
  let mrt = Mrt.create cfg ~ii:t.ii in
  let reserve acc ~cluster ~fu ~cycle ~what =
    let* () = acc in
    if Mrt.fu_free mrt ~cluster ~fu ~cycle then begin
      Mrt.reserve_fu mrt ~cluster ~fu ~cycle;
      Ok ()
    end
    else err "%s: FU/issue overflow in cluster %d cycle %d" what cluster cycle
  in
  let* () =
    Array.fold_left
      (fun acc (o : Operation.t) ->
        reserve acc ~cluster:t.cluster.(o.Operation.id)
          ~fu:(Opcode.fu_class o.Operation.opcode)
          ~cycle:t.start.(o.Operation.id)
          ~what:(Format.asprintf "op %a" Operation.pp o))
      (Ok ()) (Ddg.ops ddg)
  in
  let* () =
    List.fold_left
      (fun acc cp ->
        let* () = acc in
        let* () =
          if Mrt.issue_free mrt ~cluster:cp.from_cluster ~cycle:cp.start
          then begin
            Mrt.reserve_issue mrt ~cluster:cp.from_cluster ~cycle:cp.start;
            Ok ()
          end
          else
            err "copy of n%d at %d: issue slots oversubscribed" cp.src_op
              cp.start
        in
        if Mrt.reg_bus_free mrt ~cycle:cp.start then begin
          Mrt.reserve_reg_bus mrt ~cycle:cp.start;
          Ok ()
        end
        else err "copy of n%d at %d: register buses oversubscribed" cp.src_op
               cp.start)
      (Ok ()) t.copies
  in
  let* () =
    Array.fold_left
      (fun acc s ->
        let* () = acc in
        if s >= 0 then Ok () else Error "operation left unscheduled")
      (Ok ()) t.start
  in
  Ok ()

let pp_kernel ddg ppf t =
  let cell = Array.make_matrix t.ii t.n_clusters [] in
  Array.iteri
    (fun v s ->
      let slot = s mod t.ii and stage = s / t.ii in
      let o = Ddg.op ddg v in
      let text =
        Printf.sprintf "%s.n%d%s"
          (Opcode.to_string o.Operation.opcode)
          v
          (if stage > 0 then Printf.sprintf "@%d" stage else "")
      in
      cell.(slot).(t.cluster.(v)) <- text :: cell.(slot).(t.cluster.(v)))
    t.start;
  List.iter
    (fun (cp : copy) ->
      let slot = cp.start mod t.ii and stage = cp.start / t.ii in
      let text =
        Printf.sprintf "cp.n%d>%d%s" cp.src_op cp.to_cluster
          (if stage > 0 then Printf.sprintf "@%d" stage else "")
      in
      cell.(slot).(cp.from_cluster) <- text :: cell.(slot).(cp.from_cluster))
    t.copies;
  let width =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc texts ->
            max acc (String.length (String.concat " " (List.rev texts))))
          acc row)
      8 cell
  in
  Format.fprintf ppf "kernel (II=%d, SC=%d):@." t.ii (stage_count t);
  Format.fprintf ppf "  cyc";
  for c = 0 to t.n_clusters - 1 do
    Format.fprintf ppf " | %-*s" width (Printf.sprintf "cluster %d" c)
  done;
  Format.fprintf ppf "@.";
  Array.iteri
    (fun slot row ->
      Format.fprintf ppf "  %3d" slot;
      Array.iter
        (fun texts ->
          Format.fprintf ppf " | %-*s" width
            (String.concat " " (List.rev texts)))
        row;
      Format.fprintf ppf "@.")
    cell

let pp ppf t =
  Format.fprintf ppf "@[<v>II=%d SC=%d copies=%d WB=%.2f@," t.ii
    (stage_count t) (n_copies t) (workload_balance t);
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "  n%d @@ cycle %d cluster %d@," i s t.cluster.(i))
    t.start;
  List.iter
    (fun cp ->
      Format.fprintf ppf "  copy n%d: %d -> %d @@ cycle %d@," cp.src_op
        cp.from_cluster cp.to_cluster cp.start)
    t.copies;
  Format.fprintf ppf "@]"
