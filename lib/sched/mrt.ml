module Config = Vliw_arch.Config
module Opcode = Vliw_ir.Opcode

type t = {
  cfg : Config.t;
  ii : int;
  int_used : int array array;  (** [cluster].(cycle) *)
  fp_used : int array array;
  mem_used : int array array;
  issue_used : int array array;
  bus_used : int array;  (** transfers holding some register bus at a cycle *)
  loads : int array;  (** issue slots per cluster, across all cycles *)
  bus_scratch : int array;
      (** reusable buffer for {!bus_window_usage} — the bus check runs on
          every copy-slot probe of the scheduler's inner loop, so it must
          not allocate *)
}

let create (cfg : Config.t) ~ii =
  if ii < 1 then invalid_arg "Mrt.create: ii < 1";
  let per_cluster () =
    Array.init cfg.Config.n_clusters (fun _ -> Array.make ii 0)
  in
  {
    cfg;
    ii;
    int_used = per_cluster ();
    fp_used = per_cluster ();
    mem_used = per_cluster ();
    issue_used = per_cluster ();
    bus_used = Array.make ii 0;
    loads = Array.make cfg.Config.n_clusters 0;
    bus_scratch = Array.make ii 0;
  }

let ii t = t.ii

let slot t cycle =
  let m = cycle mod t.ii in
  if m < 0 then m + t.ii else m

let table_and_limit t = function
  | Opcode.Int_fu -> (t.int_used, t.cfg.Config.int_fus_per_cluster)
  | Opcode.Fp_fu -> (t.fp_used, t.cfg.Config.fp_fus_per_cluster)
  | Opcode.Mem_fu -> (t.mem_used, t.cfg.Config.mem_fus_per_cluster)

let fu_free t ~cluster ~fu ~cycle =
  let c = slot t cycle in
  let table, limit = table_and_limit t fu in
  table.(cluster).(c) < limit
  && t.issue_used.(cluster).(c) < t.cfg.Config.issue_width_per_cluster

let reserve_fu t ~cluster ~fu ~cycle =
  if not (fu_free t ~cluster ~fu ~cycle) then
    invalid_arg "Mrt.reserve_fu: slot not free";
  let c = slot t cycle in
  let table, _ = table_and_limit t fu in
  table.(cluster).(c) <- table.(cluster).(c) + 1;
  t.issue_used.(cluster).(c) <- t.issue_used.(cluster).(c) + 1;
  t.loads.(cluster) <- t.loads.(cluster) + 1

let issue_free t ~cluster ~cycle =
  let c = slot t cycle in
  t.issue_used.(cluster).(c) < t.cfg.Config.issue_width_per_cluster

let reserve_issue t ~cluster ~cycle =
  if not (issue_free t ~cluster ~cycle) then
    invalid_arg "Mrt.reserve_issue: no slot free";
  let c = slot t cycle in
  t.issue_used.(cluster).(c) <- t.issue_used.(cluster).(c) + 1;
  t.loads.(cluster) <- t.loads.(cluster) + 1

(* Buses run at half frequency: a transfer starting at cycle c holds a
   bus during c .. c+occupancy-1.  With II < occupancy the window wraps
   and charges a slot more than once — that is correct: successive
   iterations' transfers are simultaneously in flight and alternate over
   the [n_reg_buses] physical buses, so per-slot usage is bounded by the
   bus count. *)
(* Returns t.bus_scratch — valid only until the next call.  Both callers
   consume the array before probing again, and an Mrt is never shared
   across domains, so the single scratch buffer is safe. *)
let bus_window_usage t ~cycle =
  let usage = t.bus_scratch in
  Array.fill usage 0 t.ii 0;
  for k = 0 to t.cfg.Config.bus_occupancy - 1 do
    let s = slot t (cycle + k) in
    usage.(s) <- usage.(s) + 1
  done;
  usage

(* Per-domain count of bus-window rejections, read as a delta around a
   whole compile (see Pipeline.compile).  [reg_bus_free] is the only
   consumer of [n_reg_buses] in the entire compilation pipeline, so a
   compile whose delta is zero never branched on the bus count anywhere
   in its search — the design-space sweep's provably-safe condition for
   skipping higher bus counts.  The counter is monotonic and never
   rolled back by [restore]: a rejection is a search event, not
   reservation state. *)
let bus_rejections_key = Domain.DLS.new_key (fun () -> ref 0)
let bus_rejections () = !(Domain.DLS.get bus_rejections_key)

let reg_bus_free t ~cycle =
  let usage = bus_window_usage t ~cycle in
  let ok = ref true in
  Array.iteri
    (fun s u ->
      if u > 0 && t.bus_used.(s) + u > t.cfg.Config.n_reg_buses then ok := false)
    usage;
  if not !ok then incr (Domain.DLS.get bus_rejections_key);
  !ok

let reserve_reg_bus t ~cycle =
  if not (reg_bus_free t ~cycle) then
    invalid_arg "Mrt.reserve_reg_bus: no bus free";
  Array.iteri
    (fun s u -> t.bus_used.(s) <- t.bus_used.(s) + u)
    (bus_window_usage t ~cycle)

let cluster_load t c = t.loads.(c)

type snapshot = {
  s_int : int array array;
  s_fp : int array array;
  s_mem : int array array;
  s_issue : int array array;
  s_bus : int array;
  s_loads : int array;
}

let copy_matrix m = Array.map Array.copy m

let make_snapshot t =
  {
    s_int = copy_matrix t.int_used;
    s_fp = copy_matrix t.fp_used;
    s_mem = copy_matrix t.mem_used;
    s_issue = copy_matrix t.issue_used;
    s_bus = Array.copy t.bus_used;
    s_loads = Array.copy t.loads;
  }

(* Overwrite [s] with the current state: the scheduler snapshots before
   every placement probe, so reusing one buffer per attempt instead of
   allocating six fresh arrays per probe keeps the inner search loop
   allocation-free. *)
let save t s =
  let blit_matrix src dst =
    Array.iteri (fun i row -> Array.blit row 0 dst.(i) 0 (Array.length row)) src
  in
  blit_matrix t.int_used s.s_int;
  blit_matrix t.fp_used s.s_fp;
  blit_matrix t.mem_used s.s_mem;
  blit_matrix t.issue_used s.s_issue;
  Array.blit t.bus_used 0 s.s_bus 0 (Array.length t.bus_used);
  Array.blit t.loads 0 s.s_loads 0 (Array.length t.loads)

let snapshot t = make_snapshot t

let restore t s =
  let blit_matrix src dst =
    Array.iteri (fun i row -> Array.blit row 0 dst.(i) 0 (Array.length row)) src
  in
  blit_matrix s.s_int t.int_used;
  blit_matrix s.s_fp t.fp_used;
  blit_matrix s.s_mem t.mem_used;
  blit_matrix s.s_issue t.issue_used;
  Array.blit s.s_bus 0 t.bus_used 0 (Array.length s.s_bus);
  Array.blit s.s_loads 0 t.loads 0 (Array.length s.s_loads)
