(** The result of modulo scheduling one loop: an initiation interval, a
    (cluster, start-cycle) placement per operation, and the explicit
    inter-cluster copy operations the scheduler inserted. *)

type copy = {
  src_op : int;  (** producer whose value is transported *)
  from_cluster : int;
  to_cluster : int;
  start : int;  (** issue cycle of the copy, same iteration as producer *)
}

type t = {
  ii : int;
  n_clusters : int;
  cluster : int array;  (** operation id -> cluster *)
  start : int array;  (** operation id -> issue cycle (flat, >= 0) *)
  copies : copy list;
}

val stage_count : t -> int
(** SC: number of overlapped iterations, [max start / ii + 1]. *)

val n_copies : t -> int

val workload_balance : t -> float
(** The paper's WB: instructions (copies included) in the most loaded
    cluster over total instructions — 1/n_clusters is perfect balance,
    1.0 fully unbalanced. *)

val ops_in_cluster : t -> int -> int
(** Operations (without copies) assigned to a cluster. *)

val copies_from : t -> int -> int
(** Copies issued from a cluster — they occupy its issue slots (and a
    register bus), not its functional units. *)

val cluster_fu_usage :
  Vliw_ir.Ddg.t -> t -> cluster:int -> fu:Vliw_ir.Opcode.fu_class -> int
(** Operations of one functional-unit class placed in one cluster, for
    re-deriving the as-assigned (rather than perfectly balanced)
    resource bound of a schedule. *)

val validate :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  latency:(int -> int) ->
  ?allow_cross_cluster_mem:bool ->
  t ->
  (unit, string) result
(** Check every dependence and resource constraint:
    - each dependence satisfied modulo II, with cross-cluster register
      flows routed through a copy that fits its own timing window;
    - memory-dependent operations in the same cluster (unless
      [allow_cross_cluster_mem], used by the no-chains ablation);
    - functional-unit / issue-width / bus capacity never exceeded. *)

val pp : Format.formatter -> t -> unit

val pp_kernel : Vliw_ir.Ddg.t -> Format.formatter -> t -> unit
(** Render the modulo-scheduled kernel as a table: one row per cycle of
    the II, one column per cluster, listing the operations (by opcode
    and id, with [stage] marks for later pipeline stages) and inserted
    copies issuing in that slot. *)
