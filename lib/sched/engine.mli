(** The clustered modulo-scheduling engine (Figure 2 of the paper, shared
    by the BASE algorithm and the interleaved-cache algorithm).

    Cluster assignment and scheduling happen in a single pass over the
    SMS node order with no backtracking: each node tries the candidate
    clusters in preference order and, within a cluster, up to II
    consecutive cycles of its dependence window; if no slot fits anywhere
    the whole attempt is abandoned and the II is increased.

    The cluster-assignment *policy* is injected through {!hooks}, which is
    how {!Vliw_core.Cluster_heuristic} implements BASE, IBC and IPBC on
    one engine: [Free] nodes go to the cluster minimizing new
    register-to-register communications (ties: workload balance), while
    [Forced] nodes (IPBC preferred clusters, chain members) have no say. *)

type choice =
  | Free
  | Forced of int

type hooks = {
  reset : unit -> unit;
      (** called at the start of every II attempt (chains re-pin, etc.) *)
  choice : int -> choice;  (** cluster policy for an operation id *)
  on_scheduled : op:int -> cluster:int -> unit;
      (** notification after an operation commits to a cluster *)
}

val default_hooks : hooks
(** Every node [Free], no state. *)

val memory_components : Vliw_ir.Ddg.t -> int array * int
(** The paper's memory-dependence chains: connected components of the
    operations under [Mem_*] edges.  Returns a dense component id per
    operation ([-1] for non-memory operations) and the component count.
    All members of a component must share a cluster when the target
    serializes memory per cluster; the engine pins them up front, and
    the exact-scheduling oracle merges their cluster variables. *)

val schedule :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  latency:(int -> int) ->
  ?hooks:hooks ->
  ?allow_cross_cluster_mem:bool ->
  ?min_ii:int ->
  ?max_ii:int ->
  unit ->
  Schedule.t option
(** [min_ii] defaults to MII = max(ResMII, RecMII).
    [allow_cross_cluster_mem] (default [false]) lifts the same-cluster
    requirement on memory-dependent operations — only the paper's
    no-chains ablation (and the globally-ordered unified/multiVLIW
    memory systems) use it.

    Completeness: if an II attempt wedges on the node that closes a
    recurrence, the same II is retried with the wedged node hoisted to
    the front of the ordering (bounded).  When [max_ii] is not given and
    the default search budget ([4 * MII + 64]) is exhausted — which the
    structured benchmark loops never do — a guaranteed sequential
    schedule (II = n x L, one operation per window) is returned instead,
    so the function is total for every feasible loop.  With an explicit
    [max_ii] the search is strictly bounded and [None] is possible.

    @raise Vliw_ir.Mii.Infeasible if the loop has a zero-distance
    positive-latency cycle (no II can ever schedule it). *)
