(** Resource-constrained minimum initiation interval. *)

val res_mii : Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> int
(** Max over functional-unit classes of
    [ceil (ops_of_class / total_fus_of_class)], also bounded by total
    issue bandwidth. *)

val mii : Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> latency:(int -> int) -> int
(** [max res_mii rec_mii]. *)
