(** Resource-constrained minimum initiation interval, and the per-cluster
    resource facts every resource-aware analysis shares (the attribution
    tower and the exact-scheduling oracle both consume these rather than
    re-deriving the [Config] field mapping). *)

val fu_classes : Vliw_ir.Opcode.fu_class list
(** All functional-unit classes, in canonical order. *)

val fu_capacity : Vliw_arch.Config.t -> Vliw_ir.Opcode.fu_class -> int
(** Units of one class in each cluster. *)

val res_mii : Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> int
(** Max over functional-unit classes of
    [ceil (ops_of_class / total_fus_of_class)], also bounded by total
    issue bandwidth. *)

val mii : Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> latency:(int -> int) -> int
(** [max res_mii rec_mii]. *)
