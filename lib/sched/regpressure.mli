(** Register-pressure estimation for a modulo schedule (MaxLive).

    A value defined by operation [u] at cycle [t_u] stays live until its
    last reader issues: [max over Reg_flow successors w of
    (t_w + II * distance)] — and with software pipelining, lifetimes
    longer than the II overlap themselves, so several iterations'
    instances are live at once.  MaxLive per cluster is the scheduler's
    classic proxy for register-file pressure (the paper discusses it as
    one of the costs of scheduling loads with large latencies).

    Cross-cluster consumers read the *copy*, not the original value: the
    producer's lifetime in its own cluster ends at the latest local
    reader or departing copy, and each copy starts a new lifetime in its
    destination cluster. *)

val max_live :
  Vliw_ir.Ddg.t -> latency:(int -> int) -> Schedule.t -> int array
(** Per-cluster MaxLive (simultaneously live values in the steady
    state). *)

val total_max_live : Vliw_ir.Ddg.t -> latency:(int -> int) -> Schedule.t -> int
(** Sum over clusters. *)
