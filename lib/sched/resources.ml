module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Opcode = Vliw_ir.Opcode
module Operation = Vliw_ir.Operation

let cdiv a b = (a + b - 1) / b
let fu_classes = [ Opcode.Int_fu; Opcode.Fp_fu; Opcode.Mem_fu ]

let fu_capacity (cfg : Config.t) = function
  | Opcode.Int_fu -> cfg.Config.int_fus_per_cluster
  | Opcode.Fp_fu -> cfg.Config.fp_fus_per_cluster
  | Opcode.Mem_fu -> cfg.Config.mem_fus_per_cluster

let res_mii (cfg : Config.t) ddg =
  let n_int = ref 0 and n_fp = ref 0 and n_mem = ref 0 in
  Array.iter
    (fun (o : Operation.t) ->
      match Opcode.fu_class o.Operation.opcode with
      | Opcode.Int_fu -> incr n_int
      | Opcode.Fp_fu -> incr n_fp
      | Opcode.Mem_fu -> incr n_mem)
    (Ddg.ops ddg);
  let n = cfg.Config.n_clusters in
  let bound count per_cluster = cdiv count (max 1 (per_cluster * n)) in
  let issue = cdiv (Ddg.n_ops ddg) (cfg.Config.issue_width_per_cluster * n) in
  List.fold_left max 1
    [
      bound !n_int cfg.Config.int_fus_per_cluster;
      bound !n_fp cfg.Config.fp_fus_per_cluster;
      bound !n_mem cfg.Config.mem_fus_per_cluster;
      issue;
    ]

let mii cfg ddg ~latency = max (res_mii cfg ddg) (Vliw_ir.Mii.rec_mii ddg ~latency)
