(** Diagnostics emitted by the static-analysis passes.

    Every pass tags its findings with a stable pass id (["ddg/endpoint"],
    ["sched/bus-capacity"], ...) so tests can assert that a deliberate
    corruption is caught by the *right* check, a severity, and a location
    string (benchmark/loop/op as the pass knows it).  [Error] means the
    artefact violates an invariant the toolchain relies on; [Warn] means
    it is legal but suspicious; [Info] is measurement-grade observation
    (e.g. lifetimes longer than the II). *)

type severity = Error | Warn | Info

type t = {
  pass : string;  (** stable pass id, ["family/check"] *)
  severity : severity;
  where : string;  (** location: benchmark/loop/op/edge as applicable *)
  message : string;
}

val error : pass:string -> where:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val warn : pass:string -> where:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val info : pass:string -> where:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_to_string : severity -> string

val n_errors : t list -> int
val n_warnings : t list -> int
val n_infos : t list -> int
val has_errors : t list -> bool

val by_pass : t list -> (string * int) list
(** Diagnostic count per pass id, sorted by pass id. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal — shared by
    every [--json] emitter so none grows its own subtly different one. *)

val to_json : t -> string
(** One JSON object: [{"pass":..., "severity":..., "where":...,
    "message":...}]. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity pass where: message]. *)

val pp_report : ?max_infos:int -> Format.formatter -> t list -> unit
(** Errors first, then warnings, then (up to [max_infos], default 0)
    infos, each on its own line. *)
