(** Offline analyzer for {!Vliw_parallel.Sync.Trace} recordings:
    Eraser-style lockset race detection refined by vector-clock
    happens-before, a lock-order-graph cycle detector, and
    condition-variable lints.

    Happens-before edges: fork → child begin, child end → join, mutex
    release → later acquire of the same mutex (condition wait counts as
    release at [Wait_begin] and acquire at [Wait_end]), condition
    signal → the wakes it causes, and every atomic operation on an
    object as both acquire and release of that object (OCaml atomics
    are SC).  Two accesses to the same cell race when they come from
    different threads, at least one writes, their vector clocks are
    unordered {e and} their locksets are disjoint — the lockset
    refinement keeps the report conservative on the side of silence
    only when a common lock provably orders the pair anyway.

    Passes emitted (all through {!Vliw_analysis.Diagnostic}):
    - [concsan/race] (error): unsynchronized conflicting cell access
    - [concsan/lock-order] (error): cycle in the acquired-while-holding
      graph — a potential deadlock even if this run got through
    - [concsan/unlock-unheld] (error): release of a mutex the thread
      does not hold
    - [concsan/lock-held-at-exit] (error): a thread that terminated
      (has an [End] event) still holding a mutex
    - [concsan/cond-signal-unlocked] (error): signal/broadcast while
      holding no mutex at all, or none of the mutexes ever associated
      with that condition by a wait
    - [concsan/cond-no-recheck] (warn): a woken waiter proceeded to
      release the mutex without re-reading any shared state — the
      [if]-instead-of-[while] shape *)

val analyze : Vliw_parallel.Sync.Trace.t -> Vliw_analysis.Diagnostic.t list
(** Deterministically ordered (by pass, then location, then message)
    and deduplicated per (pass, location). *)
