(* Cooperative virtual scheduler + sleep-set DPOR.  See the mli for the
   model; implementation notes:

   - Fibers are one-shot effect continuations.  Because continuations
     cannot be resumed twice, exploration is stateless-replay DFS: each
     interleaving re-runs the scenario from scratch, steered by the
     recorded decision prefix.  The scenario's [prepare] rebuilds all
     shared state, so replays are independent.

   - Condition-variable wait is two decisions: executing the wait
     releases the mutex and blocks the fiber (no code runs); a signal,
     broadcast or injected spurious wakeup makes it runnable again with
     a pending relock, and executing the relock resumes the fiber's
     continuation — exactly the release -> wake -> reacquire structure
     of the real primitive.

   - Abandoned executions (deadlock, stuck, sleep-set-pruned) still
     hold live continuations; they are discontinued with [Drained]
     while the shim hook is in a draining mode that turns every
     operation into a no-op, so Fun.protect finalizers (e.g. Memo's
     claim release) unwind without trying to schedule. *)

module Sync = Vliw_parallel.Sync
module Cancel = Vliw_parallel.Cancel

type failure = { pass : string; message : string; schedule : string }

type outcome = {
  name : string;
  executions : int;
  steps : int;
  truncated : bool;
  failures : failure list;
}

type scenario = {
  name : string;
  spurious_budget : int;
  prepare :
    unit -> (string * (unit -> unit)) list * (unit -> (string * string) option);
}

(* ------------------------------------------------------------- model *)

type op =
  | O_begin
  | O_lock of int
  | O_unlock of int
  | O_wait of { cond : int; mutex : int }  (* release + block *)
  | O_relock of int  (* reacquire after a wake *)
  | O_signal of { cond : int; broadcast : bool }
  | O_read of int
  | O_write of int
  | O_aload of int
  | O_astore of int
  | O_join of int
  | O_spurious of { cond : int }  (* scheduler-injected wakeup *)

type _ Effect.t += Yield : op -> unit Effect.t
type _ Effect.t += Spawned : (unit -> unit) -> int Effect.t

exception Drained

type resume_state =
  | Not_started of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

type fstate = Ready | Waiting of { cond : int } | Done_

type fiber = {
  fid : int;
  f_name : string;
  mutable resume : resume_state;
  mutable pending : op;
  mutable state : fstate;
  mutable tok : Cancel.t option;  (* the fiber's saved Cancel token *)
}

type sched = {
  mutable fibers : fiber list;  (* reverse fid order *)
  mutable nfibers : int;
  locks : (int, int) Hashtbl.t;  (* mutex id -> owning fid *)
  mutable draining : bool;
  mutable escaped : (string * exn) list;
}

let fiber_of sched fid = List.find (fun f -> f.fid = fid) sched.fibers
let fibers_in_order sched = List.rev sched.fibers

let add_fiber sched name body =
  let f =
    {
      fid = sched.nfibers;
      f_name = name;
      resume = Not_started body;
      pending = O_begin;
      state = Ready;
      tok = None;
    }
  in
  sched.nfibers <- sched.nfibers + 1;
  sched.fibers <- f :: sched.fibers;
  f

(* ------------------------------------------------------ names/strings *)

let obj id =
  match Sync.name_of_id id with
  | Some n -> n
  | None -> Printf.sprintf "#%d" id

let op_to_string = function
  | O_begin -> "begin"
  | O_lock m -> "lock(" ^ obj m ^ ")"
  | O_unlock m -> "unlock(" ^ obj m ^ ")"
  | O_wait { cond; mutex } ->
      Printf.sprintf "wait(%s,%s)" (obj cond) (obj mutex)
  | O_relock m -> "relock(" ^ obj m ^ ")"
  | O_signal { cond; broadcast } ->
      (if broadcast then "broadcast(" else "signal(") ^ obj cond ^ ")"
  | O_read c -> "read(" ^ obj c ^ ")"
  | O_write c -> "write(" ^ obj c ^ ")"
  | O_aload a -> "aload(" ^ obj a ^ ")"
  | O_astore a -> "astore(" ^ obj a ^ ")"
  | O_join f -> Printf.sprintf "join(f%d)" f
  | O_spurious { cond } -> "spurious-wake(" ^ obj cond ^ ")"

(* ------------------------------------------------------- independence *)

(* Conservative op dependence for sleep sets: control ops conflict with
   everything; same-mutex and same-condition ops conflict; cell/atomic
   accesses conflict when they share the object and one writes. *)
let mutex_foot = function
  | O_lock m | O_unlock m | O_relock m -> Some m
  | O_wait { mutex; _ } -> Some mutex
  | _ -> None

let cond_foot = function
  | O_wait { cond; _ } | O_signal { cond; _ } | O_spurious { cond } -> Some cond
  | _ -> None

let conflicts a b =
  let ctl = function O_begin | O_join _ -> true | _ -> false in
  if ctl a || ctl b then true
  else
    let same foot = match (foot a, foot b) with
      | Some x, Some y -> x = y
      | _ -> false
    in
    same mutex_foot || same cond_foot
    ||
    match (a, b) with
    | O_write c1, (O_read c2 | O_write c2)
    | O_read c1, O_write c2 ->
        c1 = c2
    | O_astore a1, (O_aload a2 | O_astore a2)
    | O_aload a1, O_astore a2 ->
        a1 = a2
    | _ -> false

(* ------------------------------------------------------------ seeding *)

(* splitmix64 finalizer — same mixer as lib/service/faults.ml. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let stream seed depth =
  let state =
    ref (mix64 (Int64.add seed (Int64.mul (Int64.of_int (depth + 1))
                                   0x9e3779b97f4a7c15L)))
  in
  fun bound ->
    state := mix64 (Int64.add !state 0x9e3779b97f4a7c15L);
    Int64.to_int (Int64.rem (Int64.logand !state Int64.max_int)
                    (Int64.of_int bound))

let shuffle seed depth lst =
  let arr = Array.of_list lst in
  let next = stream seed depth in
  for i = Array.length arr - 1 downto 1 do
    let j = next (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

(* --------------------------------------------------- fiber execution *)

let fiber_done sched fiber err =
  fiber.state <- Done_;
  fiber.resume <- Finished;
  match err with
  | None | Some Drained -> ()
  | Some e -> sched.escaped <- (fiber.f_name, e) :: sched.escaped

let handler sched fiber =
  {
    Effect.Deep.retc = (fun () -> fiber_done sched fiber None);
    exnc = (fun e -> fiber_done sched fiber (Some e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                fiber.resume <- Paused k;
                fiber.pending <- op)
        | Spawned g ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let child =
                  add_fiber sched (Printf.sprintf "f%d" sched.nfibers) g
                in
                Effect.Deep.continue k child.fid)
        | _ -> None);
  }

(* Resume the fiber until its next visible op (or completion), swapping
   the domain-local Cancel token so fibers sharing this domain keep
   their own tokens. *)
let step_run sched fiber =
  let saved = Cancel.dls_snapshot () in
  Cancel.dls_restore fiber.tok;
  (match fiber.resume with
  | Not_started g ->
      fiber.resume <- Finished;
      Effect.Deep.match_with g () (handler sched fiber)
  | Paused k ->
      fiber.resume <- Finished;
      Effect.Deep.continue k ()
  | Finished -> assert false);
  fiber.tok <- Cancel.dls_snapshot ();
  Cancel.dls_restore saved

let make_ops sched =
  let yield o = if not sched.draining then Effect.perform (Yield o) in
  {
    Sync.v_lock = (fun m -> yield (O_lock m));
    v_unlock = (fun m -> yield (O_unlock m));
    v_wait = (fun ~cond ~mutex -> yield (O_wait { cond; mutex }));
    v_signal = (fun ~broadcast cond -> yield (O_signal { cond; broadcast }));
    v_read = (fun c -> yield (O_read c));
    v_write = (fun c -> yield (O_write c));
    v_aload = (fun a -> yield (O_aload a));
    v_astore = (fun a -> yield (O_astore a));
    v_spawn =
      (fun g -> if sched.draining then -1 else Effect.perform (Spawned g));
    v_join = (fun fid -> yield (O_join fid));
  }

(* Discontinue every live continuation so Fun.protect finalizers run;
   the draining flag makes shim ops no-ops during the unwind. *)
let drain sched =
  sched.draining <- true;
  List.iter
    (fun f ->
      match f.resume with
      | Paused k -> (
          try Effect.Deep.discontinue k Drained with _ -> ())
      | Not_started _ | Finished -> f.resume <- Finished)
    sched.fibers

(* ----------------------------------------------------------- choices *)

type choice = { c_fid : int; c_op : op }

let choice_eq a b =
  a.c_fid = b.c_fid
  &&
  match (a.c_op, b.c_op) with
  | O_spurious _, O_spurious _ -> true
  | O_spurious _, _ | _, O_spurious _ -> false
  | _ -> true (* a non-spurious fiber has exactly one pending op *)

let enabled_choices sched ~spurious_left =
  List.concat_map
    (fun f ->
      match f.state with
      | Done_ -> []
      | Waiting { cond } ->
          if spurious_left > 0 then [ { c_fid = f.fid; c_op = O_spurious { cond } } ]
          else []
      | Ready -> (
          match f.pending with
          | O_lock m | O_relock m ->
              if Hashtbl.mem sched.locks m then []
              else [ { c_fid = f.fid; c_op = f.pending } ]
          | O_join target ->
              if (fiber_of sched target).state = Done_ then
                [ { c_fid = f.fid; c_op = f.pending } ]
              else []
          | op -> [ { c_fid = f.fid; c_op = op } ]))
    (fibers_in_order sched)

let execute_choice sched ch =
  let f = fiber_of sched ch.c_fid in
  match ch.c_op with
  | O_spurious _ ->
      (* wake without a signal: runnable again, must reacquire *)
      f.state <- Ready
  | O_lock m | O_relock m ->
      Hashtbl.replace sched.locks m f.fid;
      step_run sched f
  | O_unlock m ->
      Hashtbl.remove sched.locks m;
      step_run sched f
  | O_wait { cond; mutex } ->
      Hashtbl.remove sched.locks mutex;
      f.state <- Waiting { cond };
      f.pending <- O_relock mutex
      (* the continuation stays paused until the relock executes *)
  | O_signal { cond; broadcast } ->
      let wake fb =
        match fb.state with
        | Waiting w when w.cond = cond ->
            fb.state <- Ready;
            true
        | _ -> false
      in
      (if broadcast then
         List.iter (fun fb -> ignore (wake fb)) (fibers_in_order sched)
       else
         ignore
           (List.exists wake (fibers_in_order sched)));
      step_run sched f
  | O_begin | O_read _ | O_write _ | O_aload _ | O_astore _ | O_join _ ->
      step_run sched f

(* ------------------------------------------------------------ explore *)

type node = {
  n_alts : choice list;  (* seeded candidate order at this point *)
  mutable n_taken : choice;
  mutable n_slept : choice list;  (* inherited + already-explored *)
}

let blocked_description sched =
  fibers_in_order sched
  |> List.filter_map (fun f ->
         match f.state with
         | Done_ -> None
         | Waiting { cond } ->
             Some (Printf.sprintf "%s waiting on %s" f.f_name (obj cond))
         | Ready ->
             Some
               (Printf.sprintf "%s blocked at %s" f.f_name
                  (op_to_string f.pending)))
  |> String.concat "; "

let explore ?(max_execs = 2048) ?(max_steps = 4096) ?(preemption_bound = 4)
    ~seed scenario =
  let path : node option array = Array.make (max_steps + 2) None in
  let plen = ref 0 in
  let execs = ref 0 in
  let total_steps = ref 0 in
  let truncated = ref false in
  let failures : failure list ref = ref [] in
  let schedule_string upto =
    let parts = ref [] in
    for d = upto - 1 downto 0 do
      match path.(d) with
      | Some n -> parts := Printf.sprintf "f%d:%s" n.n_taken.c_fid
                      (op_to_string n.n_taken.c_op) :: !parts
      | None -> ()
    done;
    String.concat " -> " !parts
  in
  let add_failure ~depth pass message =
    if not (List.exists (fun f -> f.pass = pass) !failures) then
      failures :=
        !failures @ [ { pass; message; schedule = schedule_string depth } ]
  in
  let run_one () =
    (* Deterministic object ids per execution: replayed schedules embed
       mutex/cell ids, so every prepare must allocate the same ones. *)
    Sync.with_id_base 1_000_000 @@ fun () ->
    let roots, check = scenario.prepare () in
    let sched =
      {
        fibers = [];
        nfibers = 0;
        locks = Hashtbl.create 8;
        draining = false;
        escaped = [];
      }
    in
    List.iter (fun (name, body) -> ignore (add_fiber sched name body)) roots;
    let spurious_left = ref scenario.spurious_budget in
    let preemptions = ref 0 in
    let last_fid = ref (-1) in
    let depth = ref 0 in
    let verdict = ref `Running in
    let blocked = ref "" in
    Sync.set_virtual_ops (Some (make_ops sched));
    (* The invariant check below runs real library code (memo lookups,
       emitter state) — it must see passthrough ops, so everything that
       can yield stays inside this protect. *)
    Fun.protect ~finally:(fun () -> Sync.set_virtual_ops None) (fun () ->
    while !verdict = `Running do
      if !depth >= max_steps then verdict := `Stuck
      else if List.for_all (fun f -> f.state = Done_) sched.fibers then
        verdict := `Done
      else begin
        let en = enabled_choices sched ~spurious_left:!spurious_left in
        match en with
        | [] -> verdict := `Deadlock
        | _ ->
            let chosen =
              if !depth < !plen then
                match path.(!depth) with
                | Some n -> Some n.n_taken
                | None -> assert false
              else begin
                (* fresh decision point *)
                let ordered = shuffle seed !depth en in
                let ordered =
                  (* bounded preemption: past the budget, stay on the
                     last-run fiber whenever it is enabled *)
                  if !preemptions >= preemption_bound then
                    match
                      List.filter (fun c -> c.c_fid = !last_fid) ordered
                    with
                    | [] -> ordered
                    | stay -> stay
                  else ordered
                in
                let slept =
                  if !depth = 0 then []
                  else
                    match path.(!depth - 1) with
                    | Some p ->
                        List.filter
                          (fun c -> not (conflicts c.c_op p.n_taken.c_op))
                          p.n_slept
                    | None -> []
                in
                match
                  List.find_opt
                    (fun c -> not (List.exists (choice_eq c) slept))
                    ordered
                with
                | None -> None (* all alternatives covered elsewhere *)
                | Some c ->
                    path.(!depth) <-
                      Some { n_alts = ordered; n_taken = c; n_slept = slept };
                    plen := !depth + 1;
                    Some c
              end
            in
            (match chosen with
            | None -> verdict := `Pruned
            | Some c ->
                (match c.c_op with
                | O_spurious _ -> decr spurious_left
                | _ ->
                    if
                      !last_fid >= 0
                      && c.c_fid <> !last_fid
                      && List.exists (fun e -> e.c_fid = !last_fid) en
                    then incr preemptions;
                    last_fid := c.c_fid);
                execute_choice sched c;
                incr depth;
                incr total_steps)
      end
    done;
    (match !verdict with
    | `Deadlock -> blocked := blocked_description sched
    | _ -> ());
    (match !verdict with `Done -> () | _ -> drain sched));
    (match !verdict with
    | `Done ->
        List.iter
          (fun (fname, e) ->
            add_failure ~depth:!depth "concsan/fiber-exception"
              (Printf.sprintf "exception escaped fiber %s: %s" fname
                 (Printexc.to_string e)))
          sched.escaped;
        (match check () with
        | Some (pass, message) -> add_failure ~depth:!depth pass message
        | None -> ())
    | `Deadlock ->
        add_failure ~depth:!depth "concsan/deadlock"
          (Printf.sprintf "no fiber can make progress: %s" !blocked)
    | `Stuck ->
        add_failure ~depth:!depth "concsan/stuck"
          (Printf.sprintf
             "execution exceeded %d steps without completing (livelock?)"
             max_steps)
    | `Pruned | `Running -> ());
    !depth
  in
  let continue_ = ref true in
  while !continue_ do
    incr execs;
    let reached = run_one () in
    ignore reached;
    (* backtrack: deepest node with an unexplored, non-sleeping
       alternative *)
    let rec back d =
      if d < 0 then continue_ := false
      else
        match path.(d) with
        | None -> back (d - 1)
        | Some n -> (
            n.n_slept <- n.n_taken :: n.n_slept;
            match
              List.find_opt
                (fun c -> not (List.exists (choice_eq c) n.n_slept))
                n.n_alts
            with
            | Some c ->
                n.n_taken <- c;
                plen := d + 1;
                for i = d + 1 to max_steps + 1 do
                  path.(i) <- None
                done
            | None ->
                path.(d) <- None;
                back (d - 1))
    in
    back (!plen - 1);
    if !continue_ && !execs >= max_execs then begin
      truncated := true;
      continue_ := false
    end
  done;
  {
    name = scenario.name;
    executions = !execs;
    steps = !total_steps;
    truncated = !truncated;
    failures = !failures;
  }
