(** The concurrency sanitizer driver behind
    [vliw_repro analyze --concurrency].

    One run has three parts:
    {ol
    {- {b Recorded workloads}: the real pool (forced multi-domain via
       [~clamp:false]), the sharded single-flight memo under contention
       (including a crashing and a cancelled flight) and a scripted
       [serve] session with two worker domains all execute under
       {!Vliw_parallel.Sync.record_scope}; the traces go through
       {!Hbrace.analyze}.}
    {- {b Interleaving exploration}: every closed scenario in
       {!Scenarios.all} runs under the DPOR explorer ({!Vsched}) from
       the given seed; invariant violations, deadlocks and stuck
       executions become error diagnostics, an exhausted execution
       budget a warning ([concsan/explore-budget]).}
    {- {b Report}: human-readable or single-line JSON
       ([{"concsan":...}]) on the given formatter.}

    The scenario section is fully deterministic for a fixed seed (the
    explorer is single-threaded and never consults the clock), which is
    what {!scenario_report} exposes for byte-identity tests; the
    recorded-trace section asserts {e zero} diagnostics however the real
    domains happened to interleave. *)

type summary = {
  trace_events : int;  (** events across both recorded workloads *)
  trace_threads : int;
  scenarios : int;
  executions : int;  (** DPOR executions across all scenarios *)
  errors : int;
  warnings : int;
}

val default_seed : int64

val run : ?seed:int64 -> ?json:bool -> Format.formatter -> summary
(** Full sanitizer run; prints the report and returns the summary.
    Callers decide the exit code from [summary.errors]. *)

val scenario_report : ?seed:int64 -> unit -> string
(** Deterministic rendering of just the scenario-exploration section —
    byte-identical across runs and [--jobs] settings for a fixed
    seed. *)

val run_mutations : ?seed:int64 -> Format.formatter -> bool
(** Run every mutant in {!Mutations.all}; print one verdict line per
    mutant.  [true] iff every mutant was flagged by its expected pass
    id. *)
