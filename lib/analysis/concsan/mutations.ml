(* Known-bad concurrency mutants.  Each mutation reintroduces a classic
   bug class on purpose and names the pass id that must flag it; the
   test suite and `analyze --concurrency --mutations` fail if any
   mutant slips through undetected.  Record-mode mutants run real
   domains under {!Sync.record_scope} and feed the trace to
   {!Hbrace.analyze}; scheduler mutants run a deliberately broken
   scenario under the interleaving explorer. *)

module Sync = Vliw_parallel.Sync
module D = Vliw_analysis.Diagnostic

type t = {
  m_name : string;
  m_expected : string;  (* pass id that must appear in the report *)
  m_run : unit -> D.t list;
}

let record_diags f =
  let (), tr = Sync.record_scope f in
  Hbrace.analyze tr

let failure_diags (o : Vsched.outcome) =
  List.map
    (fun (f : Vsched.failure) ->
      D.error ~pass:f.Vsched.pass ~where:o.Vsched.name "%s [schedule: %s]"
        f.Vsched.message f.Vsched.schedule)
    o.Vsched.failures

(* 1. A branch returns without unlocking. *)
let dropped_unlock () =
  record_diags (fun () ->
      let m = Sync.mutex ~name:"mutant.m" () in
      let c = Sync.cell ~name:"mutant.data" () in
      let h =
        Sync.spawn (fun () ->
            Sync.lock m;
            Sync.write c
            (* bug: early return path forgot Sync.unlock m *))
      in
      Sync.join h)

(* 2. Two code paths take the same pair of locks in opposite orders.
   Run sequentially so the mutant itself cannot actually deadlock the
   test process — the cycle is in the order graph, not this run. *)
let lock_order_inversion () =
  record_diags (fun () ->
      let a = Sync.mutex ~name:"mutant.a" () in
      let b = Sync.mutex ~name:"mutant.b" () in
      let h1 =
        Sync.spawn (fun () ->
            Sync.lock a;
            Sync.lock b;
            Sync.unlock b;
            Sync.unlock a)
      in
      Sync.join h1;
      let h2 =
        Sync.spawn (fun () ->
            Sync.lock b;
            Sync.lock a;
            Sync.unlock a;
            Sync.unlock b)
      in
      Sync.join h2)

(* 3. A shared counter bumped by two domains with no lock and no
   atomic.  The fork edges order each worker after the parent but not
   against each other, so the writes are unordered with empty locksets
   regardless of how the real run interleaved. *)
let racy_increment () =
  record_diags (fun () ->
      let counter = ref 0 in
      let c = Sync.cell ~name:"mutant.counter" () in
      let worker () =
        for _ = 1 to 50 do
          Sync.write c;
          incr counter
        done
      in
      let h1 = Sync.spawn worker in
      let h2 = Sync.spawn worker in
      Sync.join h1;
      Sync.join h2;
      ignore !counter)

(* 4. Unlocking a mutex the thread never acquired. *)
let unlock_unheld () =
  record_diags (fun () ->
      let m = Sync.mutex ~name:"mutant.m" () in
      let h =
        Sync.spawn (fun () ->
            match Sync.unlock m with
            | () -> ()
            | exception Sys_error _ -> ())
      in
      Sync.join h)

(* 5. Signalling a condition with no lock held: the wakeup can land
   between a waiter's predicate check and its wait. *)
let signal_unlocked () =
  record_diags (fun () ->
      let cv = Sync.condition ~name:"mutant.cv" () in
      let h = Sync.spawn (fun () -> Sync.signal cv) in
      Sync.join h)

(* 6. Waiting without a predicate re-check loop.  A raw (uninstrumented)
   atomic flag makes the rendezvous deterministic without adding trace
   events: the waiter sets it under the mutex before waiting, so the
   signaller can only get the lock once the waiter is committed. *)
let wait_no_recheck () =
  record_diags (fun () ->
      let m = Sync.mutex ~name:"mutant.m" () in
      let cv = Sync.condition ~name:"mutant.cv" () in
      let gate = Sync.cell ~name:"mutant.gate" () in
      let committed = Atomic.make false in
      let waiter =
        Sync.spawn (fun () ->
            Sync.lock m;
            Atomic.set committed true;
            Sync.wait cv m;
            (* bug: proceeds without re-reading the guarded state *)
            Sync.unlock m)
      in
      let signaller =
        Sync.spawn (fun () ->
            while not (Atomic.get committed) do
              Domain.cpu_relax ()
            done;
            Sync.lock m;
            Sync.write gate;
            Sync.signal cv;
            Sync.unlock m)
      in
      Sync.join waiter;
      Sync.join signaller)

(* 7. A hand-written mini-memo whose claim is not released when the
   compute crashes: the explorer finds the schedule where the crasher
   claims first and the waiter then blocks forever.  Spurious budget 0
   so the deadlock verdict is not masked by an injected wakeup. *)
let missing_claim_release_scenario () =
  {
    Vsched.name = "mutant-missing-claim-release";
    spurious_budget = 0;
    prepare =
      (fun () ->
        let tbl : (string, [ `In_flight | `Ready of int ]) Hashtbl.t =
          Hashtbl.create 4
        in
        let c_tbl = Sync.cell ~name:"mutant.memo.table" () in
        let m = Sync.mutex ~name:"mutant.memo.lock" () in
        let cv = Sync.condition ~name:"mutant.memo.ready" () in
        let get compute =
          Sync.lock m;
          let rec claim () =
            Sync.read c_tbl;
            match Hashtbl.find_opt tbl "k" with
            | Some (`Ready v) ->
                Sync.unlock m;
                v
            | Some `In_flight ->
                Sync.wait cv m;
                claim ()
            | None ->
                Sync.write c_tbl;
                Hashtbl.replace tbl "k" `In_flight;
                Sync.unlock m;
                (* bug: no Fun.protect — a crash leaves `In_flight forever *)
                let v = compute () in
                Sync.lock m;
                Sync.write c_tbl;
                Hashtbl.replace tbl "k" (`Ready v);
                Sync.broadcast cv;
                Sync.unlock m;
                v
          in
          claim ()
        in
        let crasher () =
          match
            get (fun () ->
                Sync.read c_tbl;
                raise Exit)
          with
          | (_ : int) -> ()
          | exception Exit -> ()
        in
        let waiter () = ignore (get (fun () -> 5)) in
        ([ ("crasher", crasher); ("waiter", waiter) ], fun () -> None));
  }

let missing_claim_release ~seed () =
  failure_diags
    (Vsched.explore ~seed (missing_claim_release_scenario ()))

(* 8. `if` instead of `while` around a condition wait: after a
   broadcast wakes both consumers, the second pops an empty queue. *)
let if_instead_of_while_scenario () =
  {
    Vsched.name = "mutant-if-not-while";
    spurious_budget = 0;
    prepare =
      (fun () ->
        let items : int Queue.t = Queue.create () in
        let c_q = Sync.cell ~name:"mutant.queue" () in
        let m = Sync.mutex ~name:"mutant.q.lock" () in
        let cv = Sync.condition ~name:"mutant.q.nonempty" () in
        let underflow = ref false in
        let consumer () =
          Sync.lock m;
          Sync.read c_q;
          if Queue.is_empty items then Sync.wait cv m;
          (* bug: should loop, not fall through *)
          Sync.read c_q;
          if Queue.is_empty items then underflow := true
          else ignore (Queue.pop items);
          Sync.unlock m
        in
        let producer () =
          Sync.lock m;
          Sync.write c_q;
          Queue.push 1 items;
          Sync.broadcast cv;
          Sync.unlock m
        in
        ( [ ("c1", consumer); ("c2", consumer); ("producer", producer) ],
          fun () ->
            if !underflow then
              Some
                ( "concsan/cond-no-predicate-loop",
                  "a woken consumer found the queue empty — wait must sit \
                   in a predicate re-check loop" )
            else None ));
  }

let if_instead_of_while ~seed () =
  failure_diags (Vsched.explore ~seed (if_instead_of_while_scenario ()))

let all ~seed =
  [
    {
      m_name = "dropped-unlock";
      m_expected = "concsan/lock-held-at-exit";
      m_run = dropped_unlock;
    };
    {
      m_name = "lock-order-inversion";
      m_expected = "concsan/lock-order";
      m_run = lock_order_inversion;
    };
    {
      m_name = "racy-increment";
      m_expected = "concsan/race";
      m_run = racy_increment;
    };
    {
      m_name = "unlock-unheld";
      m_expected = "concsan/unlock-unheld";
      m_run = unlock_unheld;
    };
    {
      m_name = "signal-unlocked";
      m_expected = "concsan/cond-signal-unlocked";
      m_run = signal_unlocked;
    };
    {
      m_name = "wait-no-recheck";
      m_expected = "concsan/cond-no-recheck";
      m_run = wait_no_recheck;
    };
    {
      m_name = "missing-claim-release";
      m_expected = "concsan/deadlock";
      m_run = missing_claim_release ~seed;
    };
    {
      m_name = "if-instead-of-while";
      m_expected = "concsan/cond-no-predicate-loop";
      m_run = if_instead_of_while ~seed;
    };
  ]
