(* Driver for `vliw_repro analyze --concurrency`.  See mli. *)

module Sync = Vliw_parallel.Sync
module Pool = Vliw_parallel.Pool
module Memo = Vliw_parallel.Memo
module Cancel = Vliw_parallel.Cancel
module Serve = Vliw_service.Serve
module D = Vliw_analysis.Diagnostic
module T = Sync.Trace

type summary = {
  trace_events : int;
  trace_threads : int;
  scenarios : int;
  executions : int;
  errors : int;
  warnings : int;
}

let default_seed = 42L

(* ---------------- recorded workload 1: pool + memo under real domains *)

exception Crash_flight

let pool_and_memo_workload () =
  (* The pool path: real worker domains even on a 1-core host, a
     parallel map, then the shutdown join-all. *)
  let pool = Pool.create ~clamp:false ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      ignore (Pool.map pool (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
  (* Memo contention: three domains over overlapping keys with a cap
     small enough to force evictions. *)
  let memo = Memo.create ~shards:2 ~cap:4 () in
  let worker i () =
    for k = 0 to 7 do
      let key = Printf.sprintf "k%d" ((k + i) mod 6) in
      ignore (Memo.get memo key (fun () -> k * k))
    done
  in
  let hs = List.init 3 (fun i -> Sync.spawn (worker i)) in
  List.iter Sync.join hs;
  (* A crashing flight must release its claim... *)
  (match Memo.get memo "crash" (fun () -> raise Crash_flight) with
  | (_ : int) -> ()
  | exception Crash_flight -> ());
  ignore (Memo.get memo "crash" (fun () -> 1));
  (* ...and so must a cancelled one. *)
  let h =
    Sync.spawn (fun () ->
        let tok = Cancel.create ~budget:0 in
        match
          Cancel.with_token tok (fun () ->
              Memo.get memo "cancelled" (fun () ->
                  Cancel.tick ~stage:"concsan cancelled flight" 1;
                  2))
        with
        | (_ : int) -> ()
        | exception Cancel.Cancelled _ -> ())
  in
  Sync.join h;
  ignore (Memo.get memo "cancelled" (fun () -> 2));
  ignore (Memo.stats memo)

(* ---------------- recorded workload 2: a scripted serve session *)

let serve_requests =
  [
    {|{"req":"health"}|};
    {|{"req":"compile","bench":"gsmdec"}|};
    {|{"req":"simulate","bench":"gsmdec","trip_cap":32}|};
    {|{"req":"compile","bench":"gsmdec"}|};
    {|{"req":"compile","bench":"rasta","deadline":3}|};
    {|this is not json|};
    {|{"req":"drain"}|};
  ]

let serve_workload () =
  let r, w = Unix.pipe () in
  let payload = String.concat "\n" serve_requests ^ "\n" in
  let b = Bytes.of_string payload in
  ignore (Unix.write w b 0 (Bytes.length b));
  Unix.close w;
  let null = open_out Filename.null in
  Fun.protect
    ~finally:(fun () -> close_out_noerr null)
    (fun () ->
      ignore (Serve.run ~jobs:2 ~queue_cap:4 ~input:r ~output:null ()))

(* ---------------- scenario exploration *)

let explore_all ~seed = List.map (Vsched.explore ~seed) Scenarios.all

let scenario_diags (outcomes : Vsched.outcome list) =
  List.concat_map
    (fun (o : Vsched.outcome) ->
      let fails =
        List.map
          (fun (f : Vsched.failure) ->
            D.error ~pass:f.Vsched.pass ~where:o.Vsched.name
              "%s [schedule: %s]" f.Vsched.message f.Vsched.schedule)
          o.Vsched.failures
      in
      if o.Vsched.truncated then
        D.warn ~pass:"concsan/explore-budget" ~where:o.Vsched.name
          "execution budget exhausted after %d executions — coverage \
           incomplete"
          o.Vsched.executions
        :: fails
      else fails)
    outcomes

let render_scenarios buf (outcomes : Vsched.outcome list) =
  List.iter
    (fun (o : Vsched.outcome) ->
      Buffer.add_string buf
        (Printf.sprintf
           "scenario %-22s executions=%-5d steps=%-6d truncated=%s \
            failures=%d\n"
           o.Vsched.name o.Vsched.executions o.Vsched.steps
           (if o.Vsched.truncated then "yes" else "no")
           (List.length o.Vsched.failures));
      List.iter
        (fun (f : Vsched.failure) ->
          Buffer.add_string buf
            (Printf.sprintf "  failure %s: %s\n    schedule: %s\n"
               f.Vsched.pass f.Vsched.message f.Vsched.schedule))
        o.Vsched.failures)
    outcomes

let scenario_report ?(seed = default_seed) () =
  let buf = Buffer.create 1024 in
  render_scenarios buf (explore_all ~seed);
  Buffer.contents buf

(* ---------------- report *)

let trace_stats (tr : T.t) =
  (T.n_events tr, List.length tr.T.threads)

let json_of_run ~seed ~traces ~outcomes ~diags ~summary =
  let b = Buffer.create 4096 in
  let esc = D.json_escape in
  Buffer.add_string b
    (Printf.sprintf
       {|{"concsan":{"schema_version":1,"seed":%Ld,"traces":[|} seed);
  List.iteri
    (fun i (name, ev, th) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"name":"%s","events":%d,"threads":%d}|} (esc name)
           ev th))
    traces;
  Buffer.add_string b {|],"scenarios":[|};
  List.iteri
    (fun i (o : Vsched.outcome) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"name":"%s","executions":%d,"steps":%d,"truncated":%b,"failures":[|}
           (esc o.Vsched.name) o.Vsched.executions o.Vsched.steps
           o.Vsched.truncated);
      List.iteri
        (fun j (f : Vsched.failure) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               {|{"pass":"%s","message":"%s","schedule":"%s"}|}
               (esc f.Vsched.pass) (esc f.Vsched.message)
               (esc f.Vsched.schedule)))
        o.Vsched.failures;
      Buffer.add_string b "]}")
    outcomes;
  Buffer.add_string b {|],"diagnostics":[|};
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (D.to_json d))
    diags;
  Buffer.add_string b
    (Printf.sprintf
       {|],"summary":{"trace_events":%d,"trace_threads":%d,"scenarios":%d,"executions":%d,"errors":%d,"warnings":%d}}}|}
       summary.trace_events summary.trace_threads summary.scenarios
       summary.executions summary.errors summary.warnings);
  Buffer.contents b

let run ?(seed = default_seed) ?(json = false) ppf =
  let (), pool_trace = Sync.record_scope pool_and_memo_workload in
  let (), serve_trace = Sync.record_scope serve_workload in
  let trace_diags = Hbrace.analyze pool_trace @ Hbrace.analyze serve_trace in
  let outcomes = explore_all ~seed in
  let diags = trace_diags @ scenario_diags outcomes in
  let pe, pt = trace_stats pool_trace in
  let se, st = trace_stats serve_trace in
  let summary =
    {
      trace_events = pe + se;
      trace_threads = pt + st;
      scenarios = List.length outcomes;
      executions =
        List.fold_left (fun a (o : Vsched.outcome) -> a + o.Vsched.executions)
          0 outcomes;
      errors = D.n_errors diags;
      warnings = D.n_warnings diags;
    }
  in
  let traces = [ ("pool+memo", pe, pt); ("serve", se, st) ] in
  if json then
    Format.fprintf ppf "%s@."
      (json_of_run ~seed ~traces ~outcomes ~diags ~summary)
  else begin
    Format.fprintf ppf "== concurrency sanitizer (seed %Ld) ==@." seed;
    List.iter
      (fun (name, ev, th) ->
        Format.fprintf ppf "trace %-10s %d threads, %d events@." name th ev)
      traces;
    let buf = Buffer.create 1024 in
    render_scenarios buf outcomes;
    Format.fprintf ppf "%s" (Buffer.contents buf);
    if diags = [] then Format.fprintf ppf "diagnostics: none — clean@."
    else begin
      Format.fprintf ppf "diagnostics:@.";
      D.pp_report ppf diags
    end;
    Format.fprintf ppf "summary: %d error(s), %d warning(s) across %d \
                        scenario(s) / %d execution(s)@."
      summary.errors summary.warnings summary.scenarios summary.executions
  end;
  summary

let run_mutations ?(seed = default_seed) ppf =
  let muts = Mutations.all ~seed in
  let caught_n = ref 0 in
  List.iter
    (fun (m : Mutations.t) ->
      let diags = m.Mutations.m_run () in
      let caught =
        List.exists (fun d -> d.D.pass = m.Mutations.m_expected) diags
      in
      if caught then incr caught_n;
      Format.fprintf ppf "mutant %-24s %s (expected %s, got %d diagnostics)@."
        m.Mutations.m_name
        (if caught then "CAUGHT" else "MISSED")
        m.Mutations.m_expected (List.length diags))
    muts;
  Format.fprintf ppf "mutation suite: %d/%d caught@." !caught_n
    (List.length muts);
  !caught_n = List.length muts
