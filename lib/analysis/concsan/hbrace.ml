(* Lockset + vector-clock happens-before trace analysis.  See mli. *)

module T = Vliw_parallel.Sync.Trace
module D = Vliw_analysis.Diagnostic

(* Per-(cell, thread) we keep at most first/last read and first/last
   write: a race between two threads on a cell, if any exists, already
   shows up among those extremes, and it caps the pair comparison. *)
type access = {
  a_tid : int;
  a_write : bool;
  a_lockset : int list;
  a_epoch : int;  (* own vector-clock component at the access *)
  a_vc : int array;  (* full clock snapshot *)
}

let join dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let ordered a b =
  (* a happens-before b? *)
  a.a_epoch <= b.a_vc.(a.a_tid)

let disjoint l1 l2 = not (List.exists (fun x -> List.mem x l2) l1)

let analyze (tr : T.t) =
  let obj id =
    match List.assoc_opt id tr.T.names with
    | Some n -> n
    | None -> Printf.sprintf "#%d" id
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let threads = tr.T.threads in
  let n = List.length threads in
  let tidx =
    let h = Hashtbl.create 16 in
    List.iteri (fun i th -> Hashtbl.replace h th.T.tid i) threads;
    fun tid -> match Hashtbl.find_opt h tid with Some i -> i | None -> -1
  in

  (* -------- global prep: which mutexes guard waits on each condition *)
  let cond_mutexes : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun th ->
      List.iter
        (fun (e : T.entry) ->
          match e.T.ev with
          | T.Wait_begin { cond; mutex } ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt cond_mutexes cond)
              in
              if not (List.mem mutex cur) then
                Hashtbl.replace cond_mutexes cond (mutex :: cur)
          | _ -> ())
        th.T.events)
    threads;

  (* -------- pass 1: per-thread program order — locksets and lints *)
  let lock_edges : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let thread_name tid = Printf.sprintf "t%d" tid in
  List.iter
    (fun th ->
      let tid = th.T.tid in
      let held = ref [] in
      (* wake = Some mutex while between a Wait_end on that mutex and
         the next shared-state read; cleared by a read, re-armed by the
         next wake *)
      let wake_pending = ref None in
      let wake_cond = ref (-1) in
      List.iter
        (fun (e : T.entry) ->
          (match (!wake_pending, e.T.ev) with
          | Some m, (T.Release m' | T.Wait_begin { mutex = m'; _ })
            when m = m' ->
              add
                (D.warn ~pass:"concsan/cond-no-recheck"
                   ~where:
                     (Printf.sprintf "%s on %s" (thread_name tid)
                        (obj !wake_cond))
                   "woken waiter released %s without re-reading any shared \
                    state — condition wait outside a predicate re-check loop"
                   (obj m));
              wake_pending := None
          | Some _, (T.Read _ | T.A_load _) -> wake_pending := None
          | _ -> ());
          match e.T.ev with
          | T.Acquire m ->
              List.iter
                (fun h ->
                  if h <> m && not (Hashtbl.mem lock_edges (h, m)) then
                    Hashtbl.replace lock_edges (h, m) tid)
                !held;
              held := m :: !held
          | T.Release m ->
              if List.mem m !held then
                held := List.filter (fun x -> x <> m) !held
              else
                add
                  (D.error ~pass:"concsan/unlock-unheld"
                     ~where:
                       (Printf.sprintf "%s on %s" (thread_name tid) (obj m))
                     "released a mutex this thread does not hold")
          | T.Wait_begin { cond; mutex } ->
              if List.mem mutex !held then
                held := List.filter (fun x -> x <> mutex) !held
              else
                add
                  (D.error ~pass:"concsan/unlock-unheld"
                     ~where:
                       (Printf.sprintf "%s on %s" (thread_name tid)
                          (obj mutex))
                     "condition wait on %s without holding its mutex"
                     (obj cond))
          | T.Wait_end { cond; mutex } ->
              held := mutex :: !held;
              wake_pending := Some mutex;
              wake_cond := cond
          | T.Signal { cond; broadcast } ->
              let verb = if broadcast then "broadcast" else "signal" in
              if !held = [] then
                add
                  (D.error ~pass:"concsan/cond-signal-unlocked"
                     ~where:
                       (Printf.sprintf "%s on %s" (thread_name tid) (obj cond))
                     "%s while holding no mutex — waiters can miss the wakeup"
                     verb)
              else (
                match Hashtbl.find_opt cond_mutexes cond with
                | Some ms when disjoint ms !held ->
                    add
                      (D.error ~pass:"concsan/cond-signal-unlocked"
                         ~where:
                           (Printf.sprintf "%s on %s" (thread_name tid)
                              (obj cond))
                         "%s while holding none of the mutexes waiters of \
                          this condition use"
                         verb)
                | _ -> ())
          | T.End ->
              List.iter
                (fun m ->
                  add
                    (D.error ~pass:"concsan/lock-held-at-exit"
                       ~where:
                         (Printf.sprintf "%s on %s" (thread_name tid) (obj m))
                       "thread terminated still holding this mutex"))
                !held
          | T.Read _ | T.Write _ | T.A_load _ | T.A_store _ | T.Fork _
          | T.Begin _ | T.Join _ | T.Note _ ->
              ())
        th.T.events)
    threads;

  (* -------- lock-order cycles *)
  let succs m =
    Hashtbl.fold (fun (a, b) _ acc -> if a = m then b :: acc else acc)
      lock_edges []
  in
  let reaches src dst =
    let seen = Hashtbl.create 8 in
    let rec go m =
      m = dst
      || (not (Hashtbl.mem seen m))
         && begin
              Hashtbl.replace seen m ();
              List.exists go (succs m)
            end
    in
    go src
  in
  let reported = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (m1, m2) tid ->
      if m1 < m2 && reaches m2 m1 then begin
        let key = (m1, m2) in
        if not (Hashtbl.mem reported key) then begin
          Hashtbl.replace reported key ();
          let tid' =
            match Hashtbl.find_opt lock_edges (m2, m1) with
            | Some t -> t
            | None -> tid
          in
          add
            (D.error ~pass:"concsan/lock-order"
               ~where:(Printf.sprintf "%s <-> %s" (obj m1) (obj m2))
               "lock-order cycle: t%d acquires %s while holding %s, t%d \
                (or a path) acquires them in the opposite order — potential \
                deadlock"
               tid (obj m2) (obj m1) tid')
        end
      end)
    lock_edges;

  (* -------- pass 2: vector clocks over the global stamp order *)
  let merged =
    List.concat_map
      (fun th -> List.map (fun e -> (th.T.tid, e)) th.T.events)
      threads
    |> List.sort (fun (_, a) (_, b) -> compare a.T.stamp b.T.stamp)
  in
  let vc = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  let held = Array.make n [] in
  let mutex_clock : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let atomic_clock : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let cond_clock : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let fork_clock : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let end_clock : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let accesses : (int, access list ref) Hashtbl.t = Hashtbl.create 32 in
  let bump i = vc.(i).(i) <- vc.(i).(i) + 1 in
  let acquire_from tbl key i =
    match Hashtbl.find_opt tbl key with
    | Some c -> join vc.(i) c
    | None -> ()
  in
  let release_to tbl key i =
    Hashtbl.replace tbl key (Array.copy vc.(i));
    bump i
  in
  let record_access cell i ~write =
    let ls = held.(i) in
    let a =
      {
        a_tid = i;
        a_write = write;
        a_lockset = ls;
        a_epoch = vc.(i).(i);
        a_vc = Array.copy vc.(i);
      }
    in
    let r =
      match Hashtbl.find_opt accesses cell with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace accesses cell r;
          r
    in
    (* Keep first and latest per (thread, kind).  Events arrive in
       stamp order, so within a thread the new access is the latest:
       with two kept already, it replaces the later one. *)
    let same, other =
      List.partition (fun x -> x.a_tid = i && x.a_write = write) !r
    in
    let kept =
      match List.sort (fun x y -> compare x.a_epoch y.a_epoch) same with
      | [] -> [ a ]
      | first :: _ -> [ first; a ]
    in
    r := kept @ other
  in
  List.iter
    (fun (tid, (e : T.entry)) ->
      let i = tidx tid in
      if i >= 0 then
        match e.T.ev with
        | T.Acquire m | T.Wait_end { mutex = m; _ } ->
            acquire_from mutex_clock m i;
            (match e.T.ev with
            | T.Wait_end { cond; _ } -> acquire_from cond_clock cond i
            | _ -> ());
            held.(i) <- m :: held.(i)
        | T.Release m | T.Wait_begin { mutex = m; _ } ->
            held.(i) <- List.filter (fun x -> x <> m) held.(i);
            release_to mutex_clock m i
        | T.Signal { cond; _ } -> release_to cond_clock cond i
        | T.A_load a | T.A_store a ->
            acquire_from atomic_clock a i;
            Hashtbl.replace atomic_clock a (Array.copy vc.(i));
            bump i
        | T.Fork { child } -> release_to fork_clock child i
        | T.Begin { parent = _ } -> acquire_from fork_clock tid i
        | T.End -> release_to end_clock tid i
        | T.Join { child } -> acquire_from end_clock child i
        | T.Read c -> record_access c i ~write:false
        | T.Write c -> record_access c i ~write:true
        | T.Note _ -> ())
    merged;

  (* -------- race detection over the kept access extremes *)
  Hashtbl.iter
    (fun cell r ->
      let al = !r in
      let race =
        List.exists
          (fun a ->
            List.exists
              (fun b ->
                a.a_tid <> b.a_tid
                && (a.a_write || b.a_write)
                && (not (ordered a b))
                && (not (ordered b a))
                && disjoint a.a_lockset b.a_lockset
                &&
                (add
                   (D.error ~pass:"concsan/race"
                      ~where:(obj cell)
                      "unsynchronized %s by t%d and %s by t%d (no \
                       happens-before edge, disjoint locksets)"
                      (if a.a_write then "write" else "read")
                      a.a_tid
                      (if b.a_write then "write" else "read")
                      b.a_tid);
                 true))
              al)
          al
      in
      ignore race)
    accesses;

  (* -------- deterministic order + (pass, where) dedup *)
  let cmp (a : D.t) (b : D.t) =
    compare (a.D.pass, a.D.where, a.D.message) (b.D.pass, b.D.where, b.D.message)
  in
  let sorted = List.sort cmp !diags in
  let rec dedup = function
    | a :: b :: rest when a.D.pass = b.D.pass && a.D.where = b.D.where ->
        dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted
