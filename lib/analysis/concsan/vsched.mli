(** The deterministic interleaving explorer: a cooperative virtual
    scheduler over effect-based fibers, exploring closed scenarios under
    sleep-set DPOR with a bounded-preemption budget.

    A {e scenario} is real production code (Memo gets, the serve
    emitter/queue, ...) run through the {!Vliw_parallel.Sync} shim: each
    shim operation performs an effect, the scheduler executes its
    semantics on a model of the mutexes/conditions, and at every step
    one enabled fiber is chosen.  Exploration is a stateless-replay DFS
    over schedule prefixes; sleep sets prune interleavings that only
    commute independent operations, and a preemption budget bounds the
    context-switch depth (the classic CHESS observation: real bugs need
    few preemptions).  A [spurious_budget] additionally lets the
    explorer inject spurious condition-variable wakeups, which is what
    catches [if]-instead-of-[while] wait bugs.

    Everything is deterministic: the candidate order at each decision
    point is a [splitmix64] permutation of the seed, so a run is
    replayable from [(scenario, seed)] alone and byte-identical across
    [--jobs] settings (the explorer itself is single-domain). *)

type failure = {
  pass : string;  (** diagnostic pass id, e.g. ["concsan/deadlock"] *)
  message : string;
  schedule : string;  (** the decision prefix that exposed it *)
}

type outcome = {
  name : string;
  executions : int;  (** interleavings actually run *)
  steps : int;  (** scheduler decisions across all executions *)
  truncated : bool;  (** hit the execution budget before exhausting *)
  failures : failure list;  (** deduplicated by pass id *)
}

type scenario = {
  name : string;
  spurious_budget : int;
      (** max scheduler-injected spurious wakeups per execution *)
  prepare :
    unit -> (string * (unit -> unit)) list * (unit -> (string * string) option);
      (** Build fresh shared state and return the root fibers
          (name, body) plus a post-execution invariant check returning
          [Some (pass, message)] on violation.  Called once per
          explored interleaving. *)
}

val explore :
  ?max_execs:int ->
  ?max_steps:int ->
  ?preemption_bound:int ->
  seed:int64 ->
  scenario ->
  outcome
(** Explore the scenario's interleavings.  [max_execs] (default 2048)
    bounds the number of interleavings ([truncated] reports hitting
    it); [max_steps] (default 4096) bounds one execution's decisions —
    exceeding it is reported as [concsan/stuck] (livelock); a deadlock
    (non-done fibers, nothing enabled) is [concsan/deadlock].  Must be
    called from a domain with no virtual hook installed (not
    reentrant). *)
