(* Closed scenarios for the interleaving explorer.  Each [prepare]
   builds fresh shared state and returns root fibers running the *real*
   production code (Memo single-flight, the serve Emitter/Wq) through
   the Sync shim, plus an invariant checked after every completed
   interleaving.  Deadlocks and livelocks are reported by the explorer
   itself; the checks here are about values.

   Every scenario gets a spurious-wakeup budget of 1 unless stated
   otherwise: all the production wait loops are predicate re-check
   loops, so an injected spurious wake must never break an invariant —
   and it is exactly what exposes if-instead-of-while mutants. *)

module Memo = Vliw_parallel.Memo
module Cancel = Vliw_parallel.Cancel
module Sync = Vliw_parallel.Sync
module Serve = Vliw_service.Serve

exception Boom

(* A cell accessed inside memo computations purely to give the
   explorer a scheduling point mid-compute. *)
let scratch () = Sync.cell ~name:"scenario.scratch" ()

let memo_single_flight =
  {
    Vsched.name = "memo-single-flight";
    spurious_budget = 1;
    prepare =
      (fun () ->
        let memo = Memo.create ~shards:1 () in
        let sc = scratch () in
        let computes = ref 0 in
        let results = Array.make 2 None in
        let getter i () =
          results.(i) <-
            Some
              (Memo.get memo "k" (fun () ->
                   Sync.read sc;
                   incr computes;
                   41))
        in
        ( [ ("a", getter 0); ("b", getter 1) ],
          fun () ->
            if !computes <> 1 then
              Some
                ( "concsan/single-flight",
                  Printf.sprintf "key computed %d times, want exactly 1"
                    !computes )
            else if results <> [| Some 41; Some 41 |] then
              Some ("concsan/single-flight", "a getter saw a wrong value")
            else None ));
  }

let memo_crash_release =
  {
    Vsched.name = "memo-crash-release";
    spurious_budget = 1;
    prepare =
      (fun () ->
        let memo = Memo.create ~shards:1 () in
        let sc = scratch () in
        let b_result = ref None in
        let crasher () =
          match
            Memo.get memo "k" (fun () ->
                Sync.read sc;
                raise Boom)
          with
          | (_ : int) -> ()
          | exception Boom -> ()
        in
        let waiter () =
          b_result :=
            Some
              (Memo.get memo "k" (fun () ->
                   Sync.read sc;
                   7))
        in
        ( [ ("crasher", crasher); ("waiter", waiter) ],
          fun () ->
            if !b_result <> Some 7 then
              Some
                ( "concsan/claim-release",
                  "waiter did not obtain the value after a crashed flight" )
            else if Memo.find_opt memo "k" <> Some 7 then
              Some
                ( "concsan/claim-release",
                  "memo left poisoned after a crashed flight" )
            else None ));
  }

(* The Cancel variant of crash-release: a flight tripped by a budget
   must release its claim so any waiter can re-claim — this is the
   scenario the qcheck property in test/ drives across seeds. *)
let memo_cancel_release =
  {
    Vsched.name = "memo-cancel-release";
    spurious_budget = 1;
    prepare =
      (fun () ->
        let memo = Memo.create ~shards:1 () in
        let sc = scratch () in
        let waiter_result = ref None in
        let cancelled () =
          let token = Cancel.create ~budget:0 in
          match
            Cancel.with_token token (fun () ->
                Memo.get memo "k" (fun () ->
                    Sync.read sc;
                    Cancel.tick ~stage:"scenario compute" 1;
                    99))
          with
          | (_ : int) -> ()
          | exception Cancel.Cancelled _ -> ()
        in
        let waiter () =
          waiter_result :=
            Some
              (Memo.get memo "k" (fun () ->
                   Sync.read sc;
                   9))
        in
        ( [ ("cancelled", cancelled); ("waiter", waiter) ],
          fun () ->
            if !waiter_result <> Some 9 then
              Some
                ( "concsan/claim-release",
                  "cancelled flight's slot was not re-claimable by the \
                   waiter" )
            else None ));
  }

let emitter_in_order =
  {
    Vsched.name = "emitter-in-order";
    spurious_budget = 1;
    prepare =
      (fun () ->
        let out = ref [] in
        let em = Serve.Emitter.create ~write:(fun l -> out := l :: !out) () in
        let emit_one seq () = Serve.Emitter.emit em seq (Printf.sprintf "l%d" seq) in
        let barrier () =
          Serve.Emitter.wait_until em 3;
          out := "barrier" :: !out
        in
        ( [
            ("e2", emit_one 2);
            ("e0", emit_one 0);
            ("e1", emit_one 1);
            ("barrier", barrier);
          ],
          fun () ->
            let got = List.rev !out in
            if got <> [ "l0"; "l1"; "l2"; "barrier" ] then
              Some
                ( "concsan/emit-order",
                  "lines out of order: " ^ String.concat "," got )
            else None ));
  }

let wq_shed_drain =
  {
    Vsched.name = "wq-shed-drain";
    spurious_budget = 1;
    prepare =
      (fun () ->
        let q = Serve.Wq.create 1 in
        let executed = ref [] in
        let accepted = ref 0 in
        let producer () =
          for i = 0 to 2 do
            if Serve.Wq.push q (fun () -> executed := i :: !executed) then
              incr accepted
          done;
          Serve.Wq.stop q
        in
        let worker () = Serve.Wq.worker q in
        ( [ ("producer", producer); ("worker", worker) ],
          fun () ->
            let ran = List.rev !executed in
            if List.length ran <> !accepted then
              Some
                ( "concsan/wq-drain",
                  Printf.sprintf
                    "accepted %d tasks but executed %d — stop must drain \
                     accepted work"
                    !accepted (List.length ran) )
            else if !accepted < 1 then
              Some ("concsan/wq-drain", "queue shed every push at cap 1")
            else if List.sort compare ran <> ran then
              Some ("concsan/wq-drain", "tasks executed out of FIFO order")
            else None ));
  }

let all =
  [
    memo_single_flight;
    memo_crash_release;
    memo_cancel_release;
    emitter_in_order;
    wq_shed_drain;
  ]
