module Config = Vliw_arch.Config
module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module WL = Vliw_workloads
module Pool = Vliw_parallel.Pool
module D = Diagnostic

type loop_report = {
  bench : string;
  loop : string;
  target : Pipeline.target;
  unroll_factor : int;
  considered : (int * int) list;
  attribution : Attribution.report;
  locality : Locality.bounds option;
  lints : D.t list;
  oracle : Oracle.certification option;
      (** exact-scheduling certificate, for II>MII loops when requested *)
}

type oracle_row = {
  o_bench : string;
  o_loop : string;
  o_target : string;
  o_unroll : int;
  o_attr_mii : int;
  o_cert : Oracle.certification;
}

type summary = {
  benchmarks : int;
  loops : int;
  gaps : int;
  lints : int;
  leaderboard : oracle_row list;  (** [] unless the oracle ran *)
}

(* JSON consumers key off this to detect the leaderboard extension.
   Version 2: added schema_version itself and the "leaderboard" array.
   Version 3: each loop object carries an "oracle" field — null when the
   oracle was not attempted for that loop, otherwise a certificate
   summary — so budget exhaustion ("unknown(budget)" with work spent and
   the floor proven so far) is distinguishable from "not attempted". *)
let schema_version = 3

(* The compile targets of the [analyze] matrix (the simulation backends
   are irrelevant here — explain never simulates). *)
let targets =
  [
    Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
    Pipeline.Interleaved { heuristic = `Ibc; chains = true };
    Pipeline.Unified { slow = true };
    Pipeline.Multivliw;
  ]

let explain_bench cfg ~seed ?oracle_budget
    ?(oracle_memo = fun (_ : string) f -> f ())
    (bench : WL.Benchspec.t) =
  let profile_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed
  in
  let exec_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed
  in
  let profiler = WL.Profiling.profiler cfg profile_layout in
  List.concat_map
    (fun target ->
      List.map
        (fun loop ->
          let c =
            Pipeline.compile cfg ~target
              ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
          in
          let where =
            Printf.sprintf "%s/%s[%s]" bench.WL.Benchspec.name
              loop.Loop.name
              (Pipeline.target_to_string target)
          in
          let locality =
            match target with
            | Pipeline.Interleaved _ ->
                Some (Locality.analyze cfg exec_layout c)
            | Pipeline.Unified _ | Pipeline.Multivliw -> None
          in
          let attribution = Attribution.attribute cfg c in
          let oracle =
            match oracle_budget with
            | Some budget
              when attribution.Attribution.ii > attribution.Attribution.mii ->
                let ddg = c.Pipeline.loop.Loop.ddg in
                let latencies = c.Pipeline.latencies in
                let key =
                  Printf.sprintf "oracle|%s|%s|%s|seed=%d|budget=%d|cfg=%s"
                    bench.WL.Benchspec.name loop.Loop.name
                    (Pipeline.target_to_string target)
                    seed budget (Config.fingerprint cfg)
                in
                Some
                  (oracle_memo key (fun () ->
                       Oracle.certify cfg ddg
                         ~latency:(fun i -> latencies.(i))
                         ~allow_cross_cluster_mem:
                           (Pipeline.allow_cross_cluster_mem target)
                         ~budget
                         ~heuristic_ii:attribution.Attribution.ii ()))
            | _ -> None
          in
          {
            bench = bench.WL.Benchspec.name;
            loop = loop.Loop.name;
            target;
            unroll_factor = c.Pipeline.unroll_factor;
            considered = c.Pipeline.considered;
            attribution;
            locality;
            lints = Attribution.missed_locality cfg exec_layout ~where c;
            oracle;
          })
        (WL.Benchspec.loops bench))
    targets

(* ------------------------------------------------------------- report *)

let pp_loop ppf (r : loop_report) =
  let a = r.attribution in
  Format.fprintf ppf "  %-12s %-22s UF=%-2d II=%-3d MII=%-3d floor=%-3d %s"
    r.loop
    (Pipeline.target_to_string r.target)
    r.unroll_factor a.Attribution.ii a.Attribution.mii
    a.Attribution.mii_floor a.Attribution.binding;
  if a.Attribution.budget <> [] then
    Format.fprintf ppf "; losses: %s"
      (String.concat ", "
         (List.map
            (fun (t : Attribution.term) ->
              Printf.sprintf "%s=%d" t.Attribution.cause t.Attribution.cycles)
            a.Attribution.budget));
  Option.iter
    (fun (b : Locality.bounds) ->
      Format.fprintf ppf "; locality %dL/%dR/%dM" b.Locality.n_local
        b.Locality.n_remote b.Locality.n_mixed)
    r.locality;
  Format.fprintf ppf "@."

let json_of_loop (r : loop_report) =
  let a = r.attribution in
  let bound (b : Attribution.bound) =
    Printf.sprintf {|{"name":"%s","value":%d}|}
      (D.json_escape b.Attribution.name)
      b.Attribution.value
  in
  let budget =
    String.concat ","
      (List.map
         (fun (t : Attribution.term) ->
           Printf.sprintf {|{"cause":"%s","cycles":%d}|}
             (D.json_escape t.Attribution.cause)
             t.Attribution.cycles)
         a.Attribution.budget)
  in
  let considered =
    String.concat ","
      (List.map (fun (f, est) -> Printf.sprintf "[%d,%d]" f est) r.considered)
  in
  let locality =
    match r.locality with
    | None -> "null"
    | Some b ->
        Printf.sprintf
          {|{"n_local":%d,"n_remote":%d,"n_mixed":%d,"trip_local":%d,"trip_remote":%d,"trip_total":%d}|}
          b.Locality.n_local b.Locality.n_remote b.Locality.n_mixed
          b.Locality.trip_local b.Locality.trip_remote b.Locality.trip_total
  in
  let lints = String.concat "," (List.map D.to_json r.lints) in
  let oracle =
    match r.oracle with
    | None -> "null" (* not attempted: no budget given or II = MII *)
    | Some c ->
        Printf.sprintf
          {|{"verdict":"%s","minimal_ii":%s,"proven_floor":%d,"decisions":%d,"conflicts":%d}|}
          (Oracle.verdict_to_string c.Oracle.verdict)
          (match c.Oracle.minimal_ii with
          | Some m -> string_of_int m
          | None -> "null")
          c.Oracle.infeasible_below c.Oracle.decisions c.Oracle.conflicts
  in
  Printf.sprintf
    {|{"bench":"%s","loop":"%s","target":"%s","unroll":%d,"considered":[%s],"ii":%d,"mii":%d,"mii_floor":%d,"rec_mii":%d,"rec_mii_floor":%d,"res_mii":%d,"cluster_bound":%s,"copy_bound":%s,"bus_bound":%d,"binding":"%s","budget":[%s],"locality":%s,"lints":[%s],"oracle":%s}|}
    (D.json_escape r.bench) (D.json_escape r.loop)
    (D.json_escape (Pipeline.target_to_string r.target))
    r.unroll_factor considered a.Attribution.ii a.Attribution.mii
    a.Attribution.mii_floor a.Attribution.rec_mii
    a.Attribution.rec_mii_floor a.Attribution.res_mii
    (bound a.Attribution.cluster_bound)
    (bound a.Attribution.copy_bound)
    a.Attribution.bus_bound
    (D.json_escape a.Attribution.binding)
    budget locality lints oracle

(* ------------------------------------------------------- leaderboard *)

let row_of_report (r : loop_report) cert =
  {
    o_bench = r.bench;
    o_loop = r.loop;
    o_target = Pipeline.target_to_string r.target;
    o_unroll = r.unroll_factor;
    o_attr_mii = r.attribution.Attribution.mii;
    o_cert = cert;
  }

let proven_label (c : Oracle.certification) =
  match c.Oracle.minimal_ii with
  | Some m -> string_of_int m
  | None ->
      Printf.sprintf "[%d,%d]" c.Oracle.infeasible_below c.Oracle.heuristic_ii

let pp_leaderboard ppf rows ~budget =
  Format.fprintf ppf
    "optimality leaderboard (%d loops with II>MII, budget=%d \
     decisions/conflicts per II probe):@."
    (List.length rows) budget;
  Format.fprintf ppf "  %-10s %-12s %-22s %3s %3s %6s %-8s %s@." "bench"
    "loop" "target" "UF" "II" "floor" "proven" "verdict";
  List.iter
    (fun row ->
      let c = row.o_cert in
      (* Budget-exhausted rows carry their partial result inline: the
         work already sunk and the infeasibility floor it bought, so an
         "unknown(budget)" is visibly different from "never tried". *)
      let budget_note =
        match c.Oracle.verdict with
        | Oracle.Unknown ->
            Printf.sprintf "  [spent %d decisions+conflicts, minimum >= %d proven]"
              (c.Oracle.decisions + c.Oracle.conflicts)
              c.Oracle.infeasible_below
        | Oracle.Optimal | Oracle.Hardware_bound | Oracle.Heuristic_gap -> ""
      in
      Format.fprintf ppf "  %-10s %-12s %-22s %3d %3d %6d %-8s %s%s%s@."
        row.o_bench row.o_loop row.o_target row.o_unroll
        c.Oracle.heuristic_ii c.Oracle.floor (proven_label c)
        (Oracle.verdict_to_string c.Oracle.verdict)
        budget_note
        (if Oracle.sound c then "" else "  SOUNDNESS VIOLATION"))
    rows

let json_of_row row =
  let c = row.o_cert in
  let witness =
    match c.Oracle.witness with
    | None -> "null"
    | Some _ ->
        Printf.sprintf {|{"errors":%d,"warnings":%d}|}
          (D.n_errors c.Oracle.witness_diags)
          (D.n_warnings c.Oracle.witness_diags)
  in
  let probes =
    String.concat ","
      (List.map
         (fun (p : Oracle.probe) ->
           Printf.sprintf
             {|{"ii":%d,"result":"%s","decisions":%d,"conflicts":%d}|}
             p.Oracle.p_ii
             (match p.Oracle.p_sat with
             | Oracle.Feasible _ -> "sat"
             | Oracle.Infeasible -> "unsat"
             | Oracle.Out_of_budget -> "budget")
             p.Oracle.p_stats.Cpsolver.decisions
             p.Oracle.p_stats.Cpsolver.conflicts)
         c.Oracle.probes)
  in
  Printf.sprintf
    {|{"bench":"%s","loop":"%s","target":"%s","unroll":%d,"heuristic_ii":%d,"attribution_mii":%d,"floor":%d,"minimal_ii":%s,"infeasible_below":%d,"verdict":"%s","witness":%s,"probes":[%s],"decisions":%d,"conflicts":%d,"sound":%b}|}
    (D.json_escape row.o_bench) (D.json_escape row.o_loop)
    (D.json_escape row.o_target) row.o_unroll c.Oracle.heuristic_ii
    row.o_attr_mii c.Oracle.floor
    (match c.Oracle.minimal_ii with
    | Some m -> string_of_int m
    | None -> "null")
    c.Oracle.infeasible_below
    (Oracle.verdict_to_string c.Oracle.verdict)
    witness probes c.Oracle.decisions c.Oracle.conflicts (Oracle.sound c)

let run_all ?(cfg = Config.default) ?(seed = 7) ?benchmarks ?(json = false)
    ?oracle_budget
    ?(oracle_memo = fun (_ : string) f -> f ()) ppf =
  let benches =
    match benchmarks with
    | None -> WL.Mediabench.all
    | Some names -> List.map WL.Mediabench.find names
  in
  let per_bench =
    Pool.map_ordered
      (fun b -> explain_bench cfg ~seed ?oracle_budget ~oracle_memo b)
      benches
  in
  let reports = List.concat per_bench in
  let leaderboard =
    List.filter_map
      (fun r -> Option.map (row_of_report r) r.oracle)
      reports
  in
  let summary =
    {
      benchmarks = List.length benches;
      loops = List.length reports;
      gaps =
        List.fold_left
          (fun acc r ->
            if r.attribution.Attribution.ii > r.attribution.Attribution.mii
            then acc + 1
            else acc)
          0 reports;
      lints =
        List.fold_left
          (fun acc (r : loop_report) -> acc + List.length r.lints)
          0 reports;
      leaderboard;
    }
  in
  if json then begin
    Format.fprintf ppf
      "{@.  \"schema_version\": %d,@.  \"summary\": \
       {\"benchmarks\":%d,\"loops\":%d,\"gaps\":%d,\"lints\":%d},@."
      schema_version summary.benchmarks summary.loops summary.gaps
      summary.lints;
    Format.fprintf ppf "  \"loops\": [@.";
    List.iteri
      (fun i r ->
        Format.fprintf ppf "    %s%s@." (json_of_loop r)
          (if i < List.length reports - 1 then "," else ""))
      reports;
    Format.fprintf ppf "  ],@.";
    Format.fprintf ppf "  \"leaderboard\": [@.";
    List.iteri
      (fun i row ->
        Format.fprintf ppf "    %s%s@." (json_of_row row)
          (if i < List.length leaderboard - 1 then "," else ""))
      leaderboard;
    Format.fprintf ppf "  ]@.}@."
  end
  else begin
    List.iter
      (fun bench_reports ->
        match bench_reports with
        | [] -> ()
        | first :: _ ->
            Format.fprintf ppf "%s@." first.bench;
            List.iter (fun r -> pp_loop ppf r) bench_reports;
            List.iter
              (fun (r : loop_report) ->
                List.iter (fun d -> Format.fprintf ppf "%a@." D.pp d) r.lints)
              bench_reports)
      per_bench;
    (match oracle_budget with
    | Some budget when leaderboard <> [] ->
        pp_leaderboard ppf leaderboard ~budget
    | _ -> ());
    Format.fprintf ppf
      "explain: %d benchmarks, %d loop reports, %d with II above MII, %d \
       missed-locality lints@."
      summary.benchmarks summary.loops summary.gaps summary.lints;
    match oracle_budget with
    | Some _ ->
        let count v =
          List.length
            (List.filter
               (fun row -> row.o_cert.Oracle.verdict = v)
               leaderboard)
        in
        let unsound =
          List.length
            (List.filter (fun row -> not (Oracle.sound row.o_cert)) leaderboard)
        in
        Format.fprintf ppf
          "oracle: %d/%d closed (%d optimal, %d hardware-bound, %d \
           heuristic-gap, %d unknown), %d soundness violations@."
          (List.length leaderboard - count Oracle.Unknown)
          (List.length leaderboard)
          (count Oracle.Optimal)
          (count Oracle.Hardware_bound)
          (count Oracle.Heuristic_gap)
          (count Oracle.Unknown)
          unsound
    | None -> ()
  end;
  summary
