module Config = Vliw_arch.Config
module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module WL = Vliw_workloads
module Pool = Vliw_parallel.Pool
module D = Diagnostic

type loop_report = {
  bench : string;
  loop : string;
  target : Pipeline.target;
  unroll_factor : int;
  considered : (int * int) list;
  attribution : Attribution.report;
  locality : Locality.bounds option;
  lints : D.t list;
}

type summary = { benchmarks : int; loops : int; gaps : int; lints : int }

(* The compile targets of the [analyze] matrix (the simulation backends
   are irrelevant here — explain never simulates). *)
let targets =
  [
    Pipeline.Interleaved { heuristic = `Ipbc; chains = true };
    Pipeline.Interleaved { heuristic = `Ibc; chains = true };
    Pipeline.Unified { slow = true };
    Pipeline.Multivliw;
  ]

let explain_bench cfg ~seed (bench : WL.Benchspec.t) =
  let profile_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed
  in
  let exec_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed
  in
  let profiler = WL.Profiling.profiler cfg profile_layout in
  List.concat_map
    (fun target ->
      List.map
        (fun loop ->
          let c =
            Pipeline.compile cfg ~target
              ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop
          in
          let where =
            Printf.sprintf "%s/%s[%s]" bench.WL.Benchspec.name
              loop.Loop.name
              (Pipeline.target_to_string target)
          in
          let locality =
            match target with
            | Pipeline.Interleaved _ ->
                Some (Locality.analyze cfg exec_layout c)
            | Pipeline.Unified _ | Pipeline.Multivliw -> None
          in
          {
            bench = bench.WL.Benchspec.name;
            loop = loop.Loop.name;
            target;
            unroll_factor = c.Pipeline.unroll_factor;
            considered = c.Pipeline.considered;
            attribution = Attribution.attribute cfg c;
            locality;
            lints = Attribution.missed_locality cfg exec_layout ~where c;
          })
        (WL.Benchspec.loops bench))
    targets

(* ------------------------------------------------------------- report *)

let pp_loop ppf (r : loop_report) =
  let a = r.attribution in
  Format.fprintf ppf "  %-12s %-22s UF=%-2d II=%-3d MII=%-3d floor=%-3d %s"
    r.loop
    (Pipeline.target_to_string r.target)
    r.unroll_factor a.Attribution.ii a.Attribution.mii
    a.Attribution.mii_floor a.Attribution.binding;
  if a.Attribution.budget <> [] then
    Format.fprintf ppf "; losses: %s"
      (String.concat ", "
         (List.map
            (fun (t : Attribution.term) ->
              Printf.sprintf "%s=%d" t.Attribution.cause t.Attribution.cycles)
            a.Attribution.budget));
  Option.iter
    (fun (b : Locality.bounds) ->
      Format.fprintf ppf "; locality %dL/%dR/%dM" b.Locality.n_local
        b.Locality.n_remote b.Locality.n_mixed)
    r.locality;
  Format.fprintf ppf "@."

let json_of_loop (r : loop_report) =
  let a = r.attribution in
  let bound (b : Attribution.bound) =
    Printf.sprintf {|{"name":"%s","value":%d}|}
      (D.json_escape b.Attribution.name)
      b.Attribution.value
  in
  let budget =
    String.concat ","
      (List.map
         (fun (t : Attribution.term) ->
           Printf.sprintf {|{"cause":"%s","cycles":%d}|}
             (D.json_escape t.Attribution.cause)
             t.Attribution.cycles)
         a.Attribution.budget)
  in
  let considered =
    String.concat ","
      (List.map (fun (f, est) -> Printf.sprintf "[%d,%d]" f est) r.considered)
  in
  let locality =
    match r.locality with
    | None -> "null"
    | Some b ->
        Printf.sprintf
          {|{"n_local":%d,"n_remote":%d,"n_mixed":%d,"trip_local":%d,"trip_remote":%d,"trip_total":%d}|}
          b.Locality.n_local b.Locality.n_remote b.Locality.n_mixed
          b.Locality.trip_local b.Locality.trip_remote b.Locality.trip_total
  in
  let lints = String.concat "," (List.map D.to_json r.lints) in
  Printf.sprintf
    {|{"bench":"%s","loop":"%s","target":"%s","unroll":%d,"considered":[%s],"ii":%d,"mii":%d,"mii_floor":%d,"rec_mii":%d,"rec_mii_floor":%d,"res_mii":%d,"cluster_bound":%s,"copy_bound":%s,"bus_bound":%d,"binding":"%s","budget":[%s],"locality":%s,"lints":[%s]}|}
    (D.json_escape r.bench) (D.json_escape r.loop)
    (D.json_escape (Pipeline.target_to_string r.target))
    r.unroll_factor considered a.Attribution.ii a.Attribution.mii
    a.Attribution.mii_floor a.Attribution.rec_mii
    a.Attribution.rec_mii_floor a.Attribution.res_mii
    (bound a.Attribution.cluster_bound)
    (bound a.Attribution.copy_bound)
    a.Attribution.bus_bound
    (D.json_escape a.Attribution.binding)
    budget locality lints

let run_all ?(cfg = Config.default) ?(seed = 7) ?benchmarks ?(json = false)
    ppf =
  let benches =
    match benchmarks with
    | None -> WL.Mediabench.all
    | Some names -> List.map WL.Mediabench.find names
  in
  let per_bench =
    Pool.map_ordered (fun b -> explain_bench cfg ~seed b) benches
  in
  let reports = List.concat per_bench in
  let summary =
    {
      benchmarks = List.length benches;
      loops = List.length reports;
      gaps =
        List.fold_left
          (fun acc r ->
            if r.attribution.Attribution.ii > r.attribution.Attribution.mii
            then acc + 1
            else acc)
          0 reports;
      lints =
        List.fold_left
          (fun acc (r : loop_report) -> acc + List.length r.lints)
          0 reports;
    }
  in
  if json then begin
    Format.fprintf ppf
      "{@.  \"summary\": \
       {\"benchmarks\":%d,\"loops\":%d,\"gaps\":%d,\"lints\":%d},@."
      summary.benchmarks summary.loops summary.gaps summary.lints;
    Format.fprintf ppf "  \"loops\": [@.";
    List.iteri
      (fun i r ->
        Format.fprintf ppf "    %s%s@." (json_of_loop r)
          (if i < List.length reports - 1 then "," else ""))
      reports;
    Format.fprintf ppf "  ]@.}@."
  end
  else begin
    List.iter
      (fun bench_reports ->
        match bench_reports with
        | [] -> ()
        | first :: _ ->
            Format.fprintf ppf "%s@." first.bench;
            List.iter (fun r -> pp_loop ppf r) bench_reports;
            List.iter
              (fun (r : loop_report) ->
                List.iter (fun d -> Format.fprintf ppf "%a@." D.pp d) r.lints)
              bench_reports)
      per_bench;
    Format.fprintf ppf
      "explain: %d benchmarks, %d loop reports, %d with II above MII, %d \
       missed-locality lints@."
      summary.benchmarks summary.loops summary.gaps summary.lints
  end;
  summary
