(** Deep schedule verifier: everything {!Vliw_sched.Schedule.validate}
    checks, re-derived independently of {!Vliw_sched.Mrt}, plus the
    copy-dataflow, lifetime and register-pressure analyses the quick
    validator skips.

    Pass ids (family ["sched/"]):
    - ["sched/validate"] — {!Vliw_sched.Schedule.validate} rejected the
      schedule (error);
    - ["sched/range"] — placement arrays of the wrong length, negative
      start cycle, or cluster outside [0, n_clusters) (error);
    - ["sched/dependence"] — a same-cluster dependence edge violated
      modulo II (error; independent slack recomputation);
    - ["sched/mem-colocate"] — a memory-dependence edge spans clusters
      although the target serializes memory per cluster (error);
    - ["sched/copy-coverage"] — a cross-cluster register consumer not
      reached by any timely copy (error);
    - ["sched/copy-cluster"] — a copy departing from a cluster other
      than its producer's, or to its own cluster (error);
    - ["sched/copy-early"] — a copy issued before its producer's value
      exists (error);
    - ["sched/orphan-copy"] — a copy no consumer reads (warn);
    - ["sched/ambiguous-copy"] — a consumer reached by more than one
      timely copy of the same value (info: legal redundancy);
    - ["sched/fu-capacity"] — per-class functional units oversubscribed
      in some (cluster, cycle mod II) slot (error);
    - ["sched/issue-width"] — issue slots oversubscribed, copies
      included (error);
    - ["sched/bus-capacity"] — half-frequency register-bus windows
      oversubscribed; the [bus_occupancy]-cycle windows are re-derived
      here from the copy list alone (error);
    - ["sched/lifetime"] — a value lives longer than the II, so several
      iterations' instances overlap (info: the simulator's stall-on-use
      model needs no modulo variable expansion, but the count sizes the
      rotating-register requirement of real hardware);
    - ["sched/regpressure"] — per-cluster MaxLive above [reg_limit]
      (warn). *)

val default_reg_limit : int
(** 64 registers per cluster. *)

val verify :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  latency:(int -> int) ->
  ?allow_cross_cluster_mem:bool ->
  ?reg_limit:int ->
  ?where:string ->
  Vliw_sched.Schedule.t ->
  Diagnostic.t list
