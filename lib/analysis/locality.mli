(** Static cluster-locality analysis by abstract interpretation.

    Every word-interleaved access lands on cluster
    [addr / interleaving_factor mod n_clusters], so which cluster an
    operation's address stream touches is fully determined by the
    addresses' residues modulo [n_clusters * interleaving_factor].  The
    analysis interprets each memory descriptor — symbol base, offset,
    stride, footprint wrap, indirect walk, all *after* unrolling baked
    the 4-step assignment's factor into offset and stride — in a
    congruence lattice over exactly those residues, and classifies the
    operation against its assigned cluster:

    - [Local]: every address of every part provably lands on the
      assigned cluster;
    - [Remote]: no address of any part can land on the assigned
      cluster;
    - [Mixed]: the abstract stream spans both.

    The classifications roll up into per-loop bounds that the dynamic
    statistics of a simulation run must satisfy — the conservation law
    {!check_stats} enforces on every benchmark x backend cell of the
    [analyze] sweep. *)

(** The congruence lattice: sets of address residues modulo a fixed
    modulus, ordered by inclusion.  [bot] is the empty stream, [top]
    every residue.  Join is set union; the lattice has finite height
    (the modulus), so {!widen} can stay precise and still terminate. *)
module Lattice : sig
  type t

  val modulus : t -> int

  val bot : modulus:int -> t
  val top : modulus:int -> t

  val of_residue : modulus:int -> int -> t
  (** Singleton abstract stream; the residue is reduced into
      [0, modulus).  @raise Invalid_argument if [modulus < 1]. *)

  val join : t -> t -> t
  (** @raise Invalid_argument on mismatched moduli. *)

  val widen : t -> t -> t
  (** Widening for ascending chains.  The lattice height is bounded by
      the modulus, so widening is simply the join — included (and
      property-tested) to pin down the interface contract:
      [leq a (widen a b)] and [leq b (widen a b)]. *)

  val leq : t -> t -> bool
  val equal : t -> t -> bool
  val is_bot : t -> bool
  val mem : t -> int -> bool
  (** [mem t r] — is residue [r mod modulus] in the abstract stream? *)

  val shift : t -> int -> t
  (** Abstract effect of adding a constant to every address. *)

  val step_closure : t -> int -> t
  (** Smallest superset closed under adding [step]: the abstract effect
      of an arbitrary number of [+step] increments (iteration count is
      abstracted away).  [step_closure t 0 = t]. *)

  val residues : t -> int list
  (** Ascending members of the set. *)

  val cardinal : t -> int
  val pp : Format.formatter -> t -> unit
end

val locality_modulus : Vliw_arch.Config.t -> int
(** [n_clusters * interleaving_factor] — the period of the
    address-to-cluster map.  Every coarser congruence (e.g. modulo
    [interleaving_factor * block_size]) projects onto this one. *)

val op_stream :
  Vliw_arch.Config.t ->
  Vliw_workloads.Layout.t ->
  Vliw_ir.Mem_access.t ->
  Lattice.t
(** Abstract address stream of one descriptor under the given layout:
    the residues of [base + offset + k*g] where [g] generates every
    reachable address delta (gcd of stride and footprint for strided
    streams, the granularity for indirect walks).  Sound for any trip
    count — possibly a strict superset of the addresses a finite run
    visits. *)

type verdict = Local | Remote | Mixed

val verdict_to_string : verdict -> string

val classify :
  Vliw_arch.Config.t -> assigned:int -> parts:int -> Lattice.t -> verdict
(** Fold the stream's residues (including the [+q*interleaving_factor]
    part offsets of elements wider than one interleaving unit) through
    the address-to-cluster map and compare with the assigned cluster. *)

type op_verdict = {
  op : int;
  assigned : int;  (** cluster the schedule placed the operation on *)
  clusters : int list;  (** clusters the abstract stream can touch *)
  verdict : verdict;
}

type bounds = {
  verdicts : op_verdict list;
  trip : int;
  n_local : int;  (** provably-local ops *)
  n_remote : int;
  n_mixed : int;
  trip_local : int;  (** [trip * n_local] — accesses that must stay local *)
  trip_remote : int;
  trip_total : int;  (** [trip * n_mem_ops] *)
}

val analyze :
  Vliw_arch.Config.t ->
  Vliw_workloads.Layout.t ->
  Vliw_core.Pipeline.compiled ->
  bounds
(** Classify every memory operation of a compiled loop against its
    assigned cluster and roll the verdicts up into the loop's static
    locality bounds. *)

val check_stats :
  attraction_buffers:bool ->
  bounds:bounds ->
  stats:Vliw_sim.Stats.t ->
  where:string ->
  Diagnostic.t list
(** The conservation law: dynamic element classifications must respect
    the static bounds.  With [B = bounds], writing LH/RH/LM/RM/CB for
    the element counts by kind:

    - ["locality/remote-bound"]: RH + RM <= trip_total - trip_local —
      a provably-local element can never be classified remote;
    - ["locality/local-bound"]: LH + LM <= trip_total - trip_remote
      (without attraction buffers), LM <= trip_total - trip_remote
      (with them — an attraction-buffer hit legitimately turns a
      provably-remote word into a local hit);
    - ["locality/local-floor"]: LH + LM + CB >= trip_local;
    - ["locality/remote-floor"]: RH + RM + CB >= trip_remote (without
      attraction buffers only).

    Violating any of these is an [Error]: either the abstract
    interpretation is unsound or the simulator misclassified an
    access. *)

val summary_diag : bounds:bounds -> where:string -> Diagnostic.t
(** One info-severity diagnostic (pass ["locality/summary"]) recording
    the per-loop verdict counts, for the verbose report. *)
