type severity = Error | Warn | Info

type t = {
  pass : string;
  severity : severity;
  where : string;
  message : string;
}

let make severity ~pass ~where fmt =
  Format.kasprintf (fun message -> { pass; severity; where; message }) fmt

let error ~pass ~where fmt = make Error ~pass ~where fmt
let warn ~pass ~where fmt = make Warn ~pass ~where fmt
let info ~pass ~where fmt = make Info ~pass ~where fmt

let severity_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

let count s ds =
  List.fold_left (fun acc d -> if d.severity = s then acc + 1 else acc) 0 ds

let n_errors ds = count Error ds
let n_warnings ds = count Warn ds
let n_infos ds = count Info ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let by_pass ds =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.pass
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.pass)))
    ds;
  Hashtbl.fold (fun pass n acc -> (pass, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"pass":"%s","severity":"%s","where":"%s","message":"%s"}|}
    (json_escape d.pass)
    (severity_to_string d.severity)
    (json_escape d.where) (json_escape d.message)

let pp ppf d =
  Format.fprintf ppf "%-5s %-22s %s: %s"
    (severity_to_string d.severity)
    d.pass d.where d.message

let pp_report ?(max_infos = 0) ppf ds =
  let of_sev s = List.filter (fun d -> d.severity = s) ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (of_sev Error);
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (of_sev Warn);
  let infos = of_sev Info in
  let rec take n = function
    | d :: rest when n > 0 ->
        Format.fprintf ppf "%a@." pp d;
        take (n - 1) rest
    | rest ->
        if rest <> [] then
          Format.fprintf ppf "... and %d more info diagnostics@."
            (List.length rest)
  in
  take max_infos infos
