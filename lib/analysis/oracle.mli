(** Exact modulo-scheduling oracle: a constraint-programming encoder over
    {!Cpsolver} that decides, for one (loop, configuration, II), whether
    any cluster assignment, slot assignment and copy placement satisfies
    every constraint the pipeline's schedules obey — and, iterating the
    II upward from the resource/recurrence floor, certifies the minimal
    feasible II (or a budget-exhausted bracket).

    Trust story: the oracle itself is never trusted.  Every SAT answer
    is realized into a concrete {!Vliw_sched.Schedule.t} witness and
    re-checked by the independent {!Verify_schedule} deep verifier; an
    infeasibility answer is an exhaustive-search proof whose soundness
    rests only on the constraint encoding being a {e relaxation} of what
    the verifier demands (every verifier-legal schedule satisfies the
    encoding — the encoding drops nothing).

    Scope: the oracle optimizes {e placement} — cluster assignment,
    issue slots, copy insertion — for the same fixed problem the
    heuristic scheduler solved: the DDG after unrolling, with the
    latency vector the pipeline assigned.  It does not revisit unroll
    factors or latency assignment, so "optimal" verdicts are relative to
    that fixed input, which is exactly the question the leaderboard
    asks (is the {e scheduler} leaving cycles on the table?).

    Budgets count solver decisions and conflicts, never wall-clock, so
    results are byte-identical across hosts and [--jobs] settings. *)

type decision =
  | Feasible of Vliw_sched.Schedule.t
      (** a witness schedule at this II (realize + verify it yourself,
          or use {!certify} which does both) *)
  | Infeasible  (** exhaustive search proof: no schedule exists *)
  | Out_of_budget

val decide :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  latency:(int -> int) ->
  ?allow_cross_cluster_mem:bool ->
  ?reg_limit:int ->
  ii:int ->
  budget:int ->
  unit ->
  decision * Cpsolver.stats
(** Decide one II.  [budget] bounds both solver decisions and conflicts
    for this probe.  [reg_limit], when given, additionally rejects total
    assignments whose canonical earliest-start realization exceeds the
    per-cluster MaxLive limit (the heuristic pipeline only warns on
    pressure, so the leaderboard runs without it). *)

type verdict =
  | Optimal  (** heuristic II = certified minimum = MII floor *)
  | Hardware_bound
      (** heuristic II = certified minimum > MII floor: the gap over MII
          is forced by copies/buses/capacity, not by the heuristic *)
  | Heuristic_gap  (** certified minimum < heuristic II *)
  | Unknown  (** budget exhausted before the bracket closed *)

val verdict_to_string : verdict -> string
(** ["optimal"], ["hardware-bound"], ["heuristic-gap"],
    ["unknown(budget)"]. *)

type probe = {
  p_ii : int;
  p_sat : decision;
  p_stats : Cpsolver.stats;
}

type certification = {
  floor : int;  (** search floor: MII under the assigned latencies *)
  heuristic_ii : int;  (** the standing verified upper bound *)
  minimal_ii : int option;  (** certified minimum when the bracket closed *)
  infeasible_below : int;
      (** every II with [floor <= II < infeasible_below] carries an
          exhaustive-search infeasibility proof *)
  verdict : verdict;
  witness : Vliw_sched.Schedule.t option;
      (** oracle witness, present exactly on [Heuristic_gap] *)
  witness_diags : Diagnostic.t list;
      (** {!Verify_schedule} report for [witness] ([] when none) *)
  probes : probe list;  (** per-II search outcomes, ascending II *)
  decisions : int;  (** totals across probes *)
  conflicts : int;
}

val default_budget : int
(** Per-II decision/conflict budget used by the leaderboard when
    [--oracle-budget] is not given: 300_000. *)

val lower_bound :
  Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> latency:(int -> int) -> int
(** The certified floor {!certify} starts from: ResMII joined with the
    RecMII of the flow/memory edge subgraph.  Deliberately {e not}
    [Resources.mii]: cross-cluster [Reg_anti]/[Reg_out] dependences are
    unconstrained in this machine model, so recurrences containing them
    can legally schedule below the classic RecMII by splitting across
    clusters — the oracle may certify a minimum below the attribution
    tower's MII in that case. *)

val certify :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  latency:(int -> int) ->
  ?allow_cross_cluster_mem:bool ->
  ?reg_limit:int ->
  ?budget:int ->
  heuristic_ii:int ->
  unit ->
  certification
(** Iterate {!decide} for II = floor, floor+1, .. until SAT, until every
    II below [heuristic_ii] is refuted, or until a probe runs out of
    budget.  The first SAT witness is verified through
    {!Verify_schedule.verify}; its error/warning counts land in
    [witness_diags] (an error there is a soundness violation — the
    leaderboard and CI treat it as fatal, the oracle only reports it). *)

val sound : certification -> bool
(** No soundness violation visible: the certified minimum (if any) does
    not exceed the heuristic II, and the witness (if any) verified with
    zero errors. *)
