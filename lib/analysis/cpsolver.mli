(** A small self-contained finite-domain constraint solver: the search
    core under {!Oracle}.

    The solver owns variables (dense integer domains), a trail, and a
    propagation queue; constraints live entirely in client code as
    {!on_assign} watchers that prune domains ({!remove}), force values
    ({!assign}) and signal dead ends by raising {!Conflict}.  Search is
    chronological depth-first branch-and-bound over a caller-supplied
    static variable order with caller-supplied value orders — no
    randomization, no timers, no learning: given the same model and
    budgets the solver visits the identical tree on every host, which is
    what makes oracle leaderboards byte-identical across machines and
    [--jobs] settings.

    Budgets count {e decisions} (value choices tried) and {e conflicts}
    (dead ends hit), never wall-clock. *)

type t

exception Conflict
(** Raised by {!remove}/{!assign} on domain wipe-out, and by watchers to
    reject a partial assignment.  The search engine catches it and
    backtracks; user code outside a watcher should not. *)

val create : unit -> t

val new_var : t -> size:int -> int
(** A fresh variable with domain [{0, .., size-1}]; returns its id (ids
    are dense, in creation order).  @raise Invalid_argument if
    [size <= 0].  A size-1 variable is born assigned (and will be
    propagated). *)

val n_vars : t -> int

val value : t -> int -> int
(** Assigned value of a variable, or [-1] while unassigned. *)

val is_assigned : t -> int -> bool

val mem : t -> int -> int -> bool
(** [mem t v x] — is value [x] still in the domain of [v]? *)

val domain_count : t -> int -> int

val remove : t -> int -> int -> unit
(** Prune one value (no-op if already absent).  Trailed.  Raises
    {!Conflict} on wipe-out; a domain reduced to one value becomes
    assigned and is queued for propagation. *)

val assign : t -> int -> int -> unit
(** Reduce a domain to a single value (watchers use this for forced
    moves).  Raises {!Conflict} if the value is absent or the variable
    is already assigned differently. *)

val on_assign : t -> (int -> unit) -> unit
(** Register a watcher called (in registration order) with each
    variable's id once it becomes assigned — by search decision or by
    propagation.  Watchers may inspect any variable, prune, force
    assignments, and raise {!Conflict}. *)

val post_undo : t -> (unit -> unit) -> unit
(** Push a closure run on backtrack past this point — how watchers keep
    side state (resource counters) consistent with the trail. *)

val propagate : t -> unit
(** Drain the propagation queue (watchers may extend it).  Called by the
    search engine after every decision; call it once by hand after
    posting initial unary constraints to surface root-level conflicts
    (it raises {!Conflict} like any propagation). *)

type result = Sat | Unsat | Budget_exhausted

type stats = {
  decisions : int;  (** value choices tried, root included *)
  conflicts : int;  (** dead ends the search backtracked from *)
  propagations : int;  (** watcher invocations *)
}

val solve :
  t ->
  ?values:(int -> int list) ->
  order:int array ->
  max_decisions:int ->
  max_conflicts:int ->
  unit ->
  result * stats
(** Depth-first search assigning the variables of [order] (already
    assigned ones are skipped) in sequence.  [values v] proposes
    candidate values for [v] in preference order — it is consulted at
    node entry, may depend on the current partial assignment, and is
    filtered against the live domain (default: ascending).  Returns
    [Sat] with every variable of [order] assigned (the model is left in
    the witness state), [Unsat] after exhausting the tree, or
    [Budget_exhausted] as soon as either budget would be exceeded.  The
    solver state is only meaningful afterwards in the [Sat] case. *)
