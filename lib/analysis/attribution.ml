module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Loop = Vliw_ir.Loop
module Mii = Vliw_ir.Mii
module Opcode = Vliw_ir.Opcode
module Operation = Vliw_ir.Operation
module Chains = Vliw_core.Chains
module Latency_assign = Vliw_core.Latency_assign
module Pipeline = Vliw_core.Pipeline
module Resources = Vliw_sched.Resources
module Schedule = Vliw_sched.Schedule
module D = Diagnostic

type bound = { name : string; value : int }
type term = { cause : string; cycles : int }

type report = {
  ii : int;
  mii : int;
  mii_floor : int;
  rec_mii : int;
  rec_mii_floor : int;
  res_mii : int;
  cluster_bound : bound;
  copy_bound : bound;
  bus_bound : int;
  binding : string;
  budget : term list;
}

let cdiv a b = (a + b - 1) / b
let fu_classes = Resources.fu_classes
let fu_capacity = Resources.fu_capacity

let fu_name = function
  | Opcode.Int_fu -> "int FUs"
  | Opcode.Fp_fu -> "fp FUs"
  | Opcode.Mem_fu -> "mem FUs"

let max_bound first rest =
  List.fold_left (fun best b -> if b.value > best.value then b else best)
    first rest

(* As-placed per-cluster bound over the operations alone: unlike
   [Resources.res_mii]'s perfect-balance estimate, this charges each
   cluster with what the schedule actually put there. *)
let cluster_bound cfg ddg (sched : Schedule.t) =
  let bounds = ref [] in
  for c = 0 to sched.Schedule.n_clusters - 1 do
    List.iter
      (fun fu ->
        let used = Schedule.cluster_fu_usage ddg sched ~cluster:c ~fu in
        bounds :=
          {
            name = Printf.sprintf "cluster %d %s" c (fu_name fu);
            value = cdiv used (max 1 (fu_capacity cfg fu));
          }
          :: !bounds)
      fu_classes;
    bounds :=
      {
        name = Printf.sprintf "cluster %d issue width" c;
        value =
          cdiv (Schedule.ops_in_cluster sched c)
            cfg.Config.issue_width_per_cluster;
      }
      :: !bounds
  done;
  max_bound { name = "cluster issue width"; value = 0 } !bounds

(* Copies occupy issue slots in their source cluster, so the issue bound
   with copies counted can exceed the ops-only bound above. *)
let copy_bound cfg (sched : Schedule.t) =
  let bounds = ref [] in
  for c = 0 to sched.Schedule.n_clusters - 1 do
    bounds :=
      {
        name = Printf.sprintf "cluster %d issue width incl. copies" c;
        value =
          cdiv
            (Schedule.ops_in_cluster sched c + Schedule.copies_from sched c)
            cfg.Config.issue_width_per_cluster;
      }
      :: !bounds
  done;
  max_bound { name = "issue width incl. copies"; value = 0 } !bounds

let bus_bound cfg (sched : Schedule.t) =
  cdiv
    (Schedule.n_copies sched * cfg.Config.bus_occupancy)
    (max 1 cfg.Config.n_reg_buses)

let attribute cfg (c : Pipeline.compiled) =
  let ddg = c.Pipeline.loop.Loop.ddg in
  let sched = c.Pipeline.schedule in
  let ii = sched.Schedule.ii in
  let latencies = c.Pipeline.latencies in
  let rec_mii = Mii.rec_mii ddg ~latency:(fun i -> latencies.(i)) in
  let mode = Pipeline.mode_of_target cfg c.Pipeline.target in
  let ladder_bottom =
    match List.rev (Latency_assign.levels cfg mode) with
    | bottom :: _ -> bottom
    | [] -> 1
  in
  let floor_latency i =
    if Operation.is_load (Ddg.op ddg i) then min ladder_bottom latencies.(i)
    else latencies.(i)
  in
  let rec_mii_floor = Mii.rec_mii ddg ~latency:floor_latency in
  let res_mii = Resources.res_mii cfg ddg in
  let cluster_bound = cluster_bound cfg ddg sched in
  let copy_bound = copy_bound cfg sched in
  let bus_bound = bus_bound cfg sched in
  let mii = max rec_mii res_mii in
  let mii_floor = max rec_mii_floor res_mii in
  (* Telescope the bound tower: each step charges its cause with exactly
     the cycles by which it raises the tightest bound so far, so the
     terms sum to [ii - mii_floor] by construction. *)
  let b1 = mii in
  let b2 = max b1 cluster_bound.value in
  let b3 = max b2 copy_bound.value in
  let b4 = max b3 bus_bound in
  let budget =
    [
      { cause = "latency-assignment inflation"; cycles = mii - mii_floor };
      { cause = "cluster imbalance"; cycles = b2 - b1 };
      { cause = "copy issue pressure"; cycles = b3 - b2 };
      { cause = "register-bus saturation"; cycles = b4 - b3 };
      { cause = "scheduler residual"; cycles = ii - b4 };
    ]
    |> List.filter (fun t -> t.cycles > 0)
    |> List.stable_sort (fun a b -> compare b.cycles a.cycles)
  in
  let binding =
    if ii > b4 then "scheduler residual"
    else
      let named =
        [
          ("recurrences (assigned latencies)", rec_mii);
          ("global resources (perfect balance)", res_mii);
          (cluster_bound.name, cluster_bound.value);
          (copy_bound.name, copy_bound.value);
          ("register buses", bus_bound);
        ]
      in
      match List.find_opt (fun (_, v) -> v = ii) named with
      | Some (n, _) -> n
      | None -> "scheduler residual"
  in
  {
    ii;
    mii;
    mii_floor;
    rec_mii;
    rec_mii_floor;
    res_mii;
    cluster_bound;
    copy_bound;
    bus_bound;
    binding;
    budget;
  }

let summary_diag ~report ~where =
  let top =
    match report.budget with
    | [] -> "none (II = ideal MII)"
    | t :: _ -> Printf.sprintf "%s (%d)" t.cause t.cycles
  in
  D.info ~pass:"attr/summary" ~where
    "II=%d MII=%d floor=%d binding=%s top-loss=%s" report.ii report.mii
    report.mii_floor report.binding top

(* ------------------------------------------------ missed-locality lint *)

let class_index = function
  | Opcode.Int_fu -> 0
  | Opcode.Fp_fu -> 1
  | Opcode.Mem_fu -> 2

(* Re-run the per-cluster window math with one chain moved from its
   pinned cluster to the alternative home, copies left in place (an
   estimate: repinning would also re-route copies, which this does not
   model). *)
let rebound_after_move cfg ddg (sched : Schedule.t) ~members ~from_cluster
    ~to_cluster =
  let n = sched.Schedule.n_clusters in
  let fu_used = Array.make_matrix n 3 0 in
  let ops = Array.make n 0 in
  Array.iter
    (fun (o : Operation.t) ->
      let cl = sched.Schedule.cluster.(o.Operation.id) in
      let k = class_index (Opcode.fu_class o.Operation.opcode) in
      fu_used.(cl).(k) <- fu_used.(cl).(k) + 1;
      ops.(cl) <- ops.(cl) + 1)
    (Ddg.ops ddg);
  List.iter
    (fun op ->
      let o = Ddg.op ddg op in
      let k = class_index (Opcode.fu_class o.Operation.opcode) in
      fu_used.(from_cluster).(k) <- fu_used.(from_cluster).(k) - 1;
      fu_used.(to_cluster).(k) <- fu_used.(to_cluster).(k) + 1;
      ops.(from_cluster) <- ops.(from_cluster) - 1;
      ops.(to_cluster) <- ops.(to_cluster) + 1)
    members;
  let worst = ref 0 in
  for c = 0 to n - 1 do
    List.iter
      (fun fu ->
        worst :=
          max !worst
            (cdiv fu_used.(c).(class_index fu) (max 1 (fu_capacity cfg fu))))
      fu_classes;
    worst :=
      max !worst
        (cdiv
           (ops.(c) + Schedule.copies_from sched c)
           cfg.Config.issue_width_per_cluster)
  done;
  !worst

let missed_locality cfg layout ~where (c : Pipeline.compiled) =
  match c.Pipeline.target with
  | Pipeline.Unified _ | Pipeline.Multivliw
  | Pipeline.Interleaved { chains = false; _ } ->
      []
  | Pipeline.Interleaved { chains = true; _ } ->
      let ddg = c.Pipeline.loop.Loop.ddg in
      let sched = c.Pipeline.schedule in
      let latencies = c.Pipeline.latencies in
      let bounds = Locality.analyze cfg layout c in
      let verdict_of = Hashtbl.create 16 in
      List.iter
        (fun (v : Locality.op_verdict) ->
          Hashtbl.replace verdict_of v.Locality.op v)
        bounds.Locality.verdicts;
      List.concat
        (List.mapi
           (fun chain members ->
             let home =
               (* Provable home: every member's abstract stream touches
                  exactly one cluster, the same one for all of them. *)
               List.fold_left
                 (fun acc op ->
                   match (acc, Hashtbl.find_opt verdict_of op) with
                   | Some _, Some { Locality.clusters = [ h ]; _ } -> (
                       match acc with
                       | Some `Any -> Some (`Home h)
                       | Some (`Home h') when h' = h -> acc
                       | _ -> None)
                   | _ -> None)
                 (Some `Any) members
             in
             match home with
             | Some (`Home home) when home <> sched.Schedule.cluster.(List.hd members)
               ->
                 let pinned = sched.Schedule.cluster.(List.hd members) in
                 let stall_saving =
                   List.fold_left
                     (fun acc op ->
                       if Operation.is_load (Ddg.op ddg op) then
                         acc + max 0 (cfg.Config.lat_remote_hit - latencies.(op))
                       else acc)
                     0 members
                 in
                 let new_bound =
                   rebound_after_move cfg ddg sched ~members
                     ~from_cluster:pinned ~to_cluster:home
                 in
                 let cost = max 0 (new_bound - sched.Schedule.ii) in
                 if stall_saving > cost then
                   [
                     D.warn ~pass:"attr/missed-locality" ~where
                       "chain %d (%d mem ops) pinned to cluster %d but \
                        provably homed on cluster %d: repinning saves ~%d \
                        stall cycles/iteration at resource cost %d"
                       chain (List.length members) pinned home stall_saving
                       cost;
                   ]
                 else []
             | _ -> [])
           (Chains.chains c.Pipeline.chains))
