(** II-bound attribution: where does each cycle of the achieved II go?

    A modulo schedule's II is wedged between a tower of lower bounds —
    recurrences under the ladder-bottom latencies, the same recurrences
    after latency assignment traded II for stall coverage, the
    perfect-balance resource bound, the as-placed per-cluster FU/issue
    pressure, the issue slots eaten by inter-cluster copies, and the
    register-bus windows those copies occupy.  {!attribute} re-derives
    every bound for a compiled loop and telescopes them into a ranked
    cycle-loss budget whose terms sum exactly to [ii - mii_floor], so
    every cycle above the ideal MII is attributed to exactly one cause.

    The {!missed_locality} lint closes the loop with the locality
    analysis: a chain whose members are all provably homed on one
    cluster, yet pinned elsewhere by IBC/IPBC, is flagged together with
    the estimated per-iteration cycle delta of repinning it (stall
    saving minus the resource-bound increase from re-running the
    per-cluster window math under the alternative pin). *)

type bound = {
  name : string;  (** human-readable constraint, e.g. ["cluster 2 mem FUs"] *)
  value : int;  (** the II this constraint alone forces *)
}

type term = {
  cause : string;
  cycles : int;  (** >= 0; the budget's terms sum to [ii - mii_floor] *)
}

type report = {
  ii : int;  (** achieved initiation interval *)
  mii : int;  (** [max rec_mii res_mii] under the assigned latencies *)
  mii_floor : int;
      (** the same with every load at the latency ladder's bottom — the
          II the loop could reach if no stall had to be covered *)
  rec_mii : int;
  rec_mii_floor : int;
  res_mii : int;  (** perfect-balance resource bound *)
  cluster_bound : bound;
      (** tightest as-placed per-cluster FU / issue bound (copies
          excluded) *)
  copy_bound : bound;
      (** tightest per-cluster issue bound counting the copies each
          cluster must also issue *)
  bus_bound : int;
      (** [ceil (n_copies * bus_occupancy / n_reg_buses)] — every copy
          holds a register bus for [bus_occupancy] cycles of the window *)
  binding : string;
      (** the constraint matching the achieved II, or ["scheduler
          residual"] when the II sits strictly above every bound *)
  budget : term list;
      (** ranked by cycles, zero terms dropped; sums to [ii - mii_floor] *)
}

val attribute : Vliw_arch.Config.t -> Vliw_core.Pipeline.compiled -> report

val summary_diag : report:report -> where:string -> Diagnostic.t
(** Info-severity one-liner (pass ["attr/summary"]): achieved II, both
    MIIs, the binding constraint and the top budget term. *)

val missed_locality :
  Vliw_arch.Config.t ->
  Vliw_workloads.Layout.t ->
  where:string ->
  Vliw_core.Pipeline.compiled ->
  Diagnostic.t list
(** Warn-severity lints (pass ["attr/missed-locality"]), one per chain
    that is provably homed — every member's abstract address stream
    touches exactly one cluster, the same for all members — on a cluster
    other than the one the heuristic pinned it to, when the estimated
    per-iteration stall saving of repinning exceeds the estimated
    resource-bound cost.  Empty for targets without chain pinning. *)
