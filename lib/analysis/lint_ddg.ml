module Edge = Vliw_ir.Edge
module Operation = Vliw_ir.Operation
module Opcode = Vliw_ir.Opcode
module Mem_access = Vliw_ir.Mem_access
module Ddg = Vliw_ir.Ddg
module Mii = Vliw_ir.Mii
module D = Diagnostic

let max_sane_distance = 64

(* ------------------------------------------------------- structural *)

let edge_where where (e : Edge.t) =
  Printf.sprintf "%s/edge n%d->n%d(%s,d%d)" where e.src e.dst
    (Edge.kind_to_string e.kind) e.distance

let lint_ops ~where ops =
  let n = Array.length ops in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iteri
    (fun i (o : Operation.t) ->
      let w = Printf.sprintf "%s/n%d" where o.Operation.id in
      if o.Operation.id <> i then
        add
          (D.error ~pass:"ddg/op-id" ~where:w
             "operation id %d at index %d: ids must be dense 0..%d"
             o.Operation.id i (n - 1));
      if Opcode.equal o.Operation.opcode Opcode.Copy then
        add
          (D.error ~pass:"ddg/copy-opcode" ~where:w
             "Copy opcode in a source DDG: copies are scheduler artefacts");
      match (Opcode.is_memory o.Operation.opcode, o.Operation.mem) with
      | true, None ->
          add
            (D.error ~pass:"ddg/mem-descriptor" ~where:w
               "%s without a memory-access descriptor"
               (Opcode.to_string o.Operation.opcode))
      | false, Some _ ->
          add
            (D.error ~pass:"ddg/mem-descriptor" ~where:w
               "non-memory %s carries a memory-access descriptor"
               (Opcode.to_string o.Operation.opcode))
      | false, None -> ()
      | true, Some m ->
          let g = m.Mem_access.granularity in
          if not (List.mem g [ 1; 2; 4; 8 ]) then
            add
              (D.error ~pass:"ddg/mem-descriptor" ~where:w
                 "granularity %dB is not an element size (1/2/4/8)" g);
          if m.Mem_access.footprint < 0 then
            add
              (D.error ~pass:"ddg/mem-descriptor" ~where:w
                 "negative footprint %d" m.Mem_access.footprint);
          if m.Mem_access.footprint > 0 && m.Mem_access.footprint < g then
            add
              (D.error ~pass:"ddg/mem-descriptor" ~where:w
                 "footprint %dB smaller than one %dB element"
                 m.Mem_access.footprint g);
          if m.Mem_access.offset < 0 then
            add
              (D.error ~pass:"ddg/mem-descriptor" ~where:w
                 "negative base offset %d" m.Mem_access.offset);
          if
            (not m.Mem_access.indirect)
            && m.Mem_access.stride <> 0
            && m.Mem_access.stride mod g <> 0
          then
            add
              (D.info ~pass:"ddg/mem-stride" ~where:w
                 "stride %dB not a multiple of the %dB granularity"
                 m.Mem_access.stride g))
    ops;
  List.rev !diags

let lint_edges ~where n edges =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let in_range v = v >= 0 && v < n in
  List.iter
    (fun (e : Edge.t) ->
      let w = edge_where where e in
      if not (in_range e.src && in_range e.dst) then
        add
          (D.error ~pass:"ddg/endpoint" ~where:w
             "endpoint outside the %d-operation loop body" n);
      if e.distance < 0 then
        add (D.error ~pass:"ddg/negative-distance" ~where:w "distance %d < 0" e.distance)
      else if e.distance > max_sane_distance then
        add
          (D.warn ~pass:"ddg/absurd-distance" ~where:w
             "distance %d exceeds any plausible unroll/recurrence span (> %d)"
             e.distance max_sane_distance);
      if e.src = e.dst && e.distance = 0 then
        add
          (D.error ~pass:"ddg/self-zero" ~where:w
             "self-edge with distance 0 depends on its own result in the \
              same iteration"))
    edges;
  (* Duplicate / subsumed edges: group by (src, dst, kind). *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (e : Edge.t) ->
      let key = (e.src, e.dst, e.kind) in
      Hashtbl.replace groups key
        (e :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    edges;
  Hashtbl.iter
    (fun _ es ->
      match es with
      | [] | [ _ ] -> ()
      | es ->
          let es =
            List.sort (fun (a : Edge.t) (b : Edge.t) -> compare a.distance b.distance) es
          in
          let min_d = (List.hd es).Edge.distance in
          let seen = Hashtbl.create 4 in
          List.iter
            (fun (e : Edge.t) ->
              let w = edge_where where e in
              if Hashtbl.mem seen e.distance then
                add
                  (D.error ~pass:"ddg/duplicate-edge" ~where:w
                     "edge duplicated verbatim")
              else begin
                Hashtbl.add seen e.distance ();
                if e.distance > min_d then
                  add
                    (D.warn ~pass:"ddg/redundant-edge" ~where:w
                       "subsumed by the same dependence at distance %d" min_d)
              end)
            es)
    groups;
  (* Operations with no incident edge cannot belong to the loop body's
     dataflow (a single-operation loop is its own body). *)
  if n > 1 then begin
    let touched = Array.make n false in
    List.iter
      (fun (e : Edge.t) ->
        if in_range e.src then touched.(e.src) <- true;
        if in_range e.dst then touched.(e.dst) <- true)
      edges;
    Array.iteri
      (fun v t ->
        if not t then
          add
            (D.warn ~pass:"ddg/unreachable" ~where:(Printf.sprintf "%s/n%d" where v)
               "operation has no dependence edge: unreachable from the \
                loop body's dataflow"))
      touched
  end;
  List.rev !diags

(* ----------------------------------------- independent RecMII check *)

(* Kosaraju SCCs over the raw edge list — deliberately not
   {!Vliw_ir.Scc}, so the comparison below exercises two independent
   implementations. *)
let sccs n edges =
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun (e : Edge.t) ->
      succs.(e.src) <- e.dst :: succs.(e.src);
      preds.(e.dst) <- e.src :: preds.(e.dst))
    edges;
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs1 v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs1 succs.(v);
      order := v :: !order
    end
  in
  for v = 0 to n - 1 do
    dfs1 v
  done;
  let comp = Array.make n (-1) in
  let rec dfs2 v c =
    if comp.(v) < 0 then begin
      comp.(v) <- c;
      List.iter (fun u -> dfs2 u c) preds.(v)
    end
  in
  let c = ref 0 in
  List.iter
    (fun v ->
      if comp.(v) < 0 then begin
        dfs2 v !c;
        incr c
      end)
    !order;
  comp

(* Bellman-Ford longest-path feasibility: the constraint system
   [t(dst) >= t(src) + lat - ii * distance] over [members] is
   satisfiable iff no positive-weight cycle exists. *)
let feasible ~members ~edges ~latency ~ii =
  let n = Array.length members in
  let pot = Array.map (fun _ -> 0) members in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add index v i) members;
  let weight (e : Edge.t) =
    Ddg.effective_latency ~latency e - (ii * e.Edge.distance)
  in
  let relax () =
    List.fold_left
      (fun changed (e : Edge.t) ->
        let s = Hashtbl.find index e.src and d = Hashtbl.find index e.dst in
        let cand = pot.(s) + weight e in
        if cand > pot.(d) then begin
          pot.(d) <- cand;
          true
        end
        else changed)
      false edges
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := relax ();
    incr rounds
  done;
  not !changed

let recurrence_components n edges =
  let comp = sccs n edges in
  let members = Hashtbl.create 8 in
  Array.iteri
    (fun v c ->
      Hashtbl.replace members c
        (v :: Option.value ~default:[] (Hashtbl.find_opt members c)))
    comp;
  let self_edge v =
    List.exists (fun (e : Edge.t) -> e.src = v && e.dst = v) edges
  in
  Hashtbl.fold
    (fun c vs acc ->
      match vs with
      | [ v ] when not (self_edge v) -> acc
      | vs ->
          let vs = Array.of_list vs in
          let inner =
            List.filter
              (fun (e : Edge.t) -> comp.(e.src) = c && comp.(e.dst) = c)
              edges
          in
          (vs, inner) :: acc)
    members []

exception Zero_cycle

let independent_rec_mii_raw n edges ~latency =
  let recs = recurrence_components n edges in
  List.fold_left
    (fun acc (members, inner) ->
      (* A cycle of zero-distance edges with positive total latency is
         infeasible at any II: detectable as infeasibility over the
         distance-0 subgraph (where the II term vanishes). *)
      let zero_edges =
        List.filter (fun (e : Edge.t) -> e.Edge.distance = 0) inner
      in
      if not (feasible ~members ~edges:zero_edges ~latency ~ii:1) then
        raise Zero_cycle;
      let hi =
        1
        + List.fold_left
            (fun s e -> s + max 0 (Ddg.effective_latency ~latency e))
            0 inner
      in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if feasible ~members ~edges:inner ~latency ~ii:mid then
            search lo mid
          else search (mid + 1) hi
      in
      max acc (search 1 hi))
    1 recs

let independent_rec_mii ddg ~latency =
  match
    independent_rec_mii_raw (Ddg.n_ops ddg) (Ddg.edges ddg) ~latency
  with
  | ii -> ii
  | exception Zero_cycle ->
      invalid_arg "Lint_ddg.independent_rec_mii: zero-distance positive cycle"

let lint_mii ~where n ops edges ~latency =
  let latency =
    match latency with
    | Some f -> f
    | None -> fun i -> Opcode.default_latency ops.(i).Operation.opcode
  in
  match independent_rec_mii_raw n edges ~latency with
  | exception Zero_cycle ->
      [
        D.error ~pass:"ddg/zero-cycle" ~where
          "a zero-distance cycle has positive total latency: no II can \
           schedule this loop";
      ]
  | ind -> (
      match Mii.rec_mii (Ddg.make ops edges) ~latency with
      | exception Mii.Infeasible ->
          [
            D.error ~pass:"ddg/zero-cycle" ~where
              "Mii.rec_mii raised Infeasible on a graph the independent \
               check accepts (RecMII %d)"
              ind;
          ]
      | lib when lib <> ind ->
          [
            D.error ~pass:"ddg/recmii" ~where
              "Mii.rec_mii = %d but the independent recurrence check \
               computes %d"
              lib ind;
          ]
      | _ -> [])

(* ------------------------------------------------------ entry points *)

let lint_raw ?latency ?(where = "ddg") ops edges =
  let n = Array.length ops in
  let structural = lint_ops ~where ops @ lint_edges ~where n edges in
  (* The semantic passes assume a well-formed graph. *)
  if D.has_errors structural then structural
  else structural @ lint_mii ~where n ops edges ~latency

let lint ?latency ?where ddg =
  lint_raw ?latency ?where (Ddg.ops ddg) (Ddg.edges ddg)
