module Config = Vliw_arch.Config
module Latency_assign = Vliw_core.Latency_assign
module D = Diagnostic

let check ?(where = "config") (cfg : Config.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> add (D.error ~pass:"config/validate" ~where "%s" msg));
  let positive =
    [
      ("n_clusters", cfg.Config.n_clusters);
      ("int_fus_per_cluster", cfg.Config.int_fus_per_cluster);
      ("fp_fus_per_cluster", cfg.Config.fp_fus_per_cluster);
      ("mem_fus_per_cluster", cfg.Config.mem_fus_per_cluster);
      ("issue_width_per_cluster", cfg.Config.issue_width_per_cluster);
      ("n_reg_buses", cfg.Config.n_reg_buses);
      ("n_mem_buses", cfg.Config.n_mem_buses);
      ("bus_occupancy", cfg.Config.bus_occupancy);
      ("reg_copy_latency", cfg.Config.reg_copy_latency);
      ("cache_size", cfg.Config.cache_size);
      ("block_size", cfg.Config.block_size);
      ("associativity", cfg.Config.associativity);
      ("interleaving_factor", cfg.Config.interleaving_factor);
      ("ab_entries", cfg.Config.ab_entries);
      ("ab_associativity", cfg.Config.ab_associativity);
    ]
  in
  List.iter
    (fun (name, v) ->
      if v < 1 then
        add (D.error ~pass:"config/positive" ~where "%s = %d must be >= 1" name v))
    positive;
  if List.for_all (fun (_, v) -> v >= 1) positive then begin
    if cfg.Config.cache_size mod cfg.Config.interleaving_factor <> 0 then
      add
        (D.error ~pass:"config/geometry" ~where
           "interleaving factor %dB does not divide the %dB cache"
           cfg.Config.interleaving_factor cfg.Config.cache_size);
    let module_size = cfg.Config.cache_size / cfg.Config.n_clusters in
    let set_size = cfg.Config.block_size * cfg.Config.associativity in
    if module_size < set_size || module_size mod set_size <> 0 then
      add
        (D.error ~pass:"config/geometry" ~where
           "a %dB cache module cannot hold whole %d-way sets of %dB blocks"
           module_size cfg.Config.associativity cfg.Config.block_size);
    if cfg.Config.block_size / cfg.Config.n_clusters < cfg.Config.interleaving_factor
    then
      add
        (D.error ~pass:"config/geometry" ~where
           "the %dB per-cluster subblock is smaller than one %dB \
            interleaving unit"
           (cfg.Config.block_size / cfg.Config.n_clusters)
           cfg.Config.interleaving_factor);
    if cfg.Config.ab_entries < cfg.Config.ab_associativity then
      add
        (D.error ~pass:"config/geometry" ~where
           "%d AB entries cannot form one %d-way set" cfg.Config.ab_entries
           cfg.Config.ab_associativity);
    (* The latency-assignment ladder must offer 4 ascending levels. *)
    let ladder = Latency_assign.levels cfg Latency_assign.Four_level in
    let ascending = List.rev ladder in
    (if List.length ascending <> 4
        || List.sort compare ascending <> ascending
     then
       add
         (D.error ~pass:"config/latency-ladder" ~where
            "latency table [%s] is not 4 ascending assignment levels"
            (String.concat "; " (List.map string_of_int ascending)))
     else
       let distinct = List.sort_uniq compare ascending in
       if List.length distinct <> 4 then
         add
           (D.warn ~pass:"config/latency-ladder" ~where
              "latency table [%s] has duplicate levels: the assignment \
               ladder collapses to %d levels"
              (String.concat "; " (List.map string_of_int ascending))
              (List.length distinct)));
    (* Table 2 derives remote latencies from the bus model: one bus hop
       each way at half frequency around the access. *)
    let bus_round_trip = 2 * cfg.Config.bus_occupancy in
    if cfg.Config.lat_remote_hit <> cfg.Config.lat_local_hit + bus_round_trip
    then
      add
        (D.warn ~pass:"config/latency-derivation" ~where
           "remote hit %d != local hit %d + bus round trip %d"
           cfg.Config.lat_remote_hit cfg.Config.lat_local_hit bus_round_trip);
    (* Table 2: a remote miss is a remote request that then misses —
       the full remote-hit path stacked on the local-miss fill. *)
    if
      cfg.Config.lat_remote_miss
      <> cfg.Config.lat_local_miss + cfg.Config.lat_remote_hit
    then
      add
        (D.warn ~pass:"config/latency-derivation" ~where
           "remote miss %d != local miss %d + remote hit %d"
           cfg.Config.lat_remote_miss cfg.Config.lat_local_miss
           cfg.Config.lat_remote_hit)
  end;
  List.rev !diags
