(** The whole-toolchain analysis driver.

    Runs every pass family — config validator, DDG linter, deep schedule
    verifier, address-plan cross-check and sim-invariant auditor — over
    every benchmark of the suite, on all four memory-system backends and
    both cluster heuristics, and renders a per-benchmark summary plus
    every error/warn diagnostic. *)

type summary = {
  benchmarks : int;
  loops : int;  (** loop x target compilations checked *)
  cells : int;  (** benchmark x backend x heuristic simulation cells *)
  errors : int;
  warnings : int;
  infos : int;
}

val compiled_diags :
  Vliw_arch.Config.t -> Vliw_core.Pipeline.compiled -> Diagnostic.t list
(** Linter (assigned latencies) + deep verifier over one compilation
    result — the body of the [--check] hook. *)

val install_check_hook : unit -> unit
(** Make every subsequent {!Vliw_core.Pipeline.compile} run
    {!compiled_diags} on its result and raise [Failure] (with the full
    report) on any error-severity diagnostic.  Idempotent; this is the
    [--check] flag of the CLI. *)

val run_all :
  ?cfg:Vliw_arch.Config.t ->
  ?seed:int ->
  ?benchmarks:string list ->
  ?verbose:bool ->
  ?json:bool ->
  Format.formatter ->
  summary
(** Analyze the given benchmarks (default: the whole suite) and print
    the report.  Benchmarks are analyzed through the parallel domain
    pool; the rendered report is deterministic regardless of job count.
    [verbose] additionally prints info-severity diagnostics.  [json]
    replaces the human-readable report with one machine-readable JSON
    document (summary, per-benchmark counts, diagnostics — infos
    included only with [verbose]). *)

val ok : summary -> bool
(** No error-severity diagnostics. *)
