module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Opcode = Vliw_ir.Opcode
module Scc = Vliw_ir.Scc
module Engine = Vliw_sched.Engine
module Resources = Vliw_sched.Resources
module Schedule = Vliw_sched.Schedule
module Regpressure = Vliw_sched.Regpressure
module S = Cpsolver

type decision = Feasible of Schedule.t | Infeasible | Out_of_budget

(* b > 0 *)
let ceil_div a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

let class_index = function
  | Opcode.Int_fu -> 0
  | Opcode.Fp_fu -> 1
  | Opcode.Mem_fu -> 2

(* One potential inter-cluster transfer: the value of [cu] delivered to
   cluster [cd].  One variable per (producer, destination) is enough:
   every consumer's timeliness window shares the same lower bound (the
   producer's completion), so whenever separate copies could serve the
   consumers, the earliest of them serves all — and frees resources. *)
type copy_info = {
  cu : int;  (** producer op *)
  cd : int;  (** destination cluster *)
  cuvar : int;  (** solver var of the producer's cluster *)
  consumers : (int * int) list;  (** (consumer op, distance), cross-capable *)
  cpvar : int;  (** slot in [0, ii), or [ii] = absent *)
}

let decide cfg ddg ~latency ?(allow_cross_cluster_mem = false) ?reg_limit ~ii
    ~budget () =
  if ii <= 0 then invalid_arg "Oracle.decide: ii must be positive";
  let n = Ddg.n_ops ddg in
  if n = 0 then invalid_arg "Oracle.decide: empty loop";
  let nc = cfg.Config.n_clusters in
  let width = cfg.Config.issue_width_per_cluster in
  let occ = cfg.Config.bus_occupancy in
  let nbuses = cfg.Config.n_reg_buses in
  let copy_lat = cfg.Config.reg_copy_latency in
  let absent = ii in
  let s = S.create () in
  (* --- variables ------------------------------------------------- *)
  (* Cluster variables; memory-dependence chain members share one (the
     verifier rejects split chains unless [allow_cross_cluster_mem]). *)
  let cvar = Array.make n (-1) in
  if allow_cross_cluster_mem then
    for o = 0 to n - 1 do
      cvar.(o) <- S.new_var s ~size:nc
    done
  else begin
    let comp, ncomp = Engine.memory_components ddg in
    let comp_var = Array.make (max 1 ncomp) (-1) in
    for o = 0 to n - 1 do
      let c = comp.(o) in
      if c >= 0 then begin
        if comp_var.(c) < 0 then comp_var.(c) <- S.new_var s ~size:nc;
        cvar.(o) <- comp_var.(c)
      end
      else cvar.(o) <- S.new_var s ~size:nc
    done
  end;
  let svar = Array.make n (-1) in
  for o = 0 to n - 1 do
    svar.(o) <- S.new_var s ~size:ii
  done;
  let copies = ref [] and ncopies = ref 0 in
  let copy_idx = Array.make (n * nc) (-1) in
  for u = 0 to n - 1 do
    let consumers =
      List.filter_map
        (fun (e : Edge.t) ->
          if e.Edge.kind = Edge.Reg_flow && cvar.(e.Edge.dst) <> cvar.(u) then
            Some (e.Edge.dst, e.Edge.distance)
          else None)
        (Ddg.succs ddg u)
    in
    if consumers <> [] then
      for d = 0 to nc - 1 do
        let v = S.new_var s ~size:(ii + 1) in
        copy_idx.((u * nc) + d) <- !ncopies;
        copies :=
          { cu = u; cd = d; cuvar = cvar.(u); consumers; cpvar = v }
          :: !copies;
        incr ncopies
      done
  done;
  let copies = Array.of_list (List.rev !copies) in
  let ncopies = !ncopies in
  let nvars = S.n_vars s in
  (* --- variable metadata ----------------------------------------- *)
  let var_kind = Array.make nvars (-1) in
  let var_obj = Array.make nvars (-1) in
  let var_ops = Array.make nvars [] in
  for o = n - 1 downto 0 do
    var_kind.(cvar.(o)) <- 0;
    var_ops.(cvar.(o)) <- o :: var_ops.(cvar.(o))
  done;
  for o = 0 to n - 1 do
    var_kind.(svar.(o)) <- 1;
    var_obj.(svar.(o)) <- o
  done;
  Array.iteri
    (fun i cp ->
      var_kind.(cp.cpvar) <- 2;
      var_obj.(cp.cpvar) <- i)
    copies;
  let cluster_vars = List.sort_uniq compare (Array.to_list cvar) in
  let copies_of_cv = Array.make nvars [] in
  Array.iteri
    (fun i cp ->
      let watch v =
        if not (List.mem i copies_of_cv.(v)) then
          copies_of_cv.(v) <- i :: copies_of_cv.(v)
      in
      watch cp.cuvar;
      List.iter (fun (w, _) -> watch cvar.(w)) cp.consumers)
    copies;
  Array.iteri (fun v l -> copies_of_cv.(v) <- List.rev l) copies_of_cv;
  (* --- recurrences (positive-cycle feasibility checks) ----------- *)
  let recs = Array.of_list (Scc.recurrences ddg) in
  let nrecs = Array.length recs in
  let rec_members = Array.map Array.of_list recs in
  let in_rec =
    Array.map
      (fun members ->
        let b = Array.make n false in
        Array.iter (fun o -> b.(o) <- true) members;
        b)
      rec_members
  in
  let rec_idx =
    Array.map
      (fun members ->
        let idx = Array.make n (-1) in
        Array.iteri (fun i o -> idx.(o) <- i) members;
        idx)
      rec_members
  in
  let rec_edges =
    Array.map
      (fun r ->
        List.filter
          (fun (e : Edge.t) -> r.(e.Edge.src) && r.(e.Edge.dst))
          (Ddg.edges ddg))
      in_rec
  in
  let recs_of_var = Array.make nvars [] in
  let add_rec v r =
    if not (List.mem r recs_of_var.(v)) then
      recs_of_var.(v) <- r :: recs_of_var.(v)
  in
  for r = nrecs - 1 downto 0 do
    Array.iter
      (fun o ->
        add_rec cvar.(o) r;
        add_rec svar.(o) r)
      rec_members.(r)
  done;
  Array.iter
    (fun cp ->
      for r = nrecs - 1 downto 0 do
        if
          in_rec.(r).(cp.cu)
          && List.exists (fun (w, _) -> in_rec.(r).(w)) cp.consumers
        then add_rec cp.cpvar r
      done)
    copies;
  (* --- shared mutable constraint state (trailed via post_undo) --- *)
  let ops_class =
    Array.map
      (fun (o : Vliw_ir.Operation.t) ->
        class_index (Opcode.fu_class o.Vliw_ir.Operation.opcode))
      (Ddg.ops ddg)
  in
  let cap =
    Array.of_list (List.map (Resources.fu_capacity cfg) Resources.fu_classes)
  in
  let ops_of_class = Array.make 3 [] in
  for o = n - 1 downto 0 do
    ops_of_class.(ops_class.(o)) <- o :: ops_of_class.(ops_class.(o))
  done;
  let ops_in = Array.make nc 0 in
  let class_in = Array.make_matrix 3 nc 0 in
  let copies_from = Array.make nc 0 in
  let active_copies = ref 0 in
  let un_class = Array.make 3 0 in
  Array.iter (fun k -> un_class.(k) <- un_class.(k) + 1) ops_class;
  let un_ops = ref n in
  let fu_cnt = Array.init 3 (fun _ -> Array.make_matrix nc ii 0) in
  let issue_cnt = Array.make_matrix nc ii 0 in
  let bus_cnt = Array.make ii 0 in
  let op_accounted = Array.make n false in
  let copy_active = Array.make ncopies false in
  let copy_accounted = Array.make ncopies false in
  let unassigned_vars = ref nvars in
  (* Aggregate feasibility over whole clusters: every unassigned op must
     still fit some cluster's leftover class capacity and issue room. *)
  let check_residuals () =
    for k = 0 to 2 do
      let free = ref 0 in
      for c = 0 to nc - 1 do
        free := !free + max 0 ((cap.(k) * ii) - class_in.(k).(c))
      done;
      if !free < un_class.(k) then raise S.Conflict
    done;
    let free = ref 0 in
    for c = 0 to nc - 1 do
      free := !free + max 0 ((width * ii) - ops_in.(c) - copies_from.(c))
    done;
    if !free < !un_ops then raise S.Conflict
  in
  let bump_fu k c sl =
    fu_cnt.(k).(c).(sl) <- fu_cnt.(k).(c).(sl) + 1;
    S.post_undo s (fun () -> fu_cnt.(k).(c).(sl) <- fu_cnt.(k).(c).(sl) - 1);
    if fu_cnt.(k).(c).(sl) > cap.(k) then raise S.Conflict;
    if fu_cnt.(k).(c).(sl) = cap.(k) then
      List.iter
        (fun o ->
          if S.value s cvar.(o) = c && not (S.is_assigned s svar.(o)) then
            S.remove s svar.(o) sl)
        ops_of_class.(k)
  in
  let bump_issue c sl =
    issue_cnt.(c).(sl) <- issue_cnt.(c).(sl) + 1;
    S.post_undo s (fun () -> issue_cnt.(c).(sl) <- issue_cnt.(c).(sl) - 1);
    if issue_cnt.(c).(sl) > width then raise S.Conflict;
    if issue_cnt.(c).(sl) = width then begin
      for o = 0 to n - 1 do
        if S.value s cvar.(o) = c && not (S.is_assigned s svar.(o)) then
          S.remove s svar.(o) sl
      done;
      Array.iter
        (fun cp ->
          if S.value s cp.cuvar = c && not (S.is_assigned s cp.cpvar) then
            S.remove s cp.cpvar sl)
        copies
    end
  in
  (* no further transfer may start in a slot whose occupancy window
     covers a bus-saturated cycle *)
  let bump_bus sl =
    bus_cnt.(sl) <- bus_cnt.(sl) + 1;
    S.post_undo s (fun () -> bus_cnt.(sl) <- bus_cnt.(sl) - 1);
    if bus_cnt.(sl) > nbuses then raise S.Conflict;
    if bus_cnt.(sl) = nbuses then
      Array.iter
        (fun cp ->
          if not (S.is_assigned s cp.cpvar) then
            for off = 0 to occ - 1 do
              let cand = (sl - off) mod ii in
              let cand = if cand < 0 then cand + ii else cand in
              S.remove s cp.cpvar cand
            done)
        copies
  in
  let try_account_op o =
    if
      (not op_accounted.(o))
      && S.is_assigned s cvar.(o)
      && S.is_assigned s svar.(o)
    then begin
      op_accounted.(o) <- true;
      S.post_undo s (fun () -> op_accounted.(o) <- false);
      let c = S.value s cvar.(o) and sl = S.value s svar.(o) in
      bump_fu ops_class.(o) c sl;
      bump_issue c sl
    end
  in
  let account_copy i =
    let cp = copies.(i) in
    if
      (not copy_accounted.(i))
      && S.is_assigned s cp.cpvar
      && S.value s cp.cpvar < absent
    then begin
      copy_accounted.(i) <- true;
      S.post_undo s (fun () -> copy_accounted.(i) <- false);
      let sl = S.value s cp.cpvar in
      let c = S.value s cp.cuvar in
      assert (c >= 0);
      bump_issue c sl;
      for w = 0 to occ - 1 do
        bump_bus ((sl + w) mod ii)
      done
    end
  in
  let activate i =
    if not copy_active.(i) then begin
      let cp = copies.(i) in
      copy_active.(i) <- true;
      S.post_undo s (fun () -> copy_active.(i) <- false);
      incr active_copies;
      S.post_undo s (fun () -> decr active_copies);
      if !active_copies * occ > nbuses * ii then raise S.Conflict;
      let c = S.value s cp.cuvar in
      copies_from.(c) <- copies_from.(c) + 1;
      S.post_undo s (fun () -> copies_from.(c) <- copies_from.(c) - 1);
      if ops_in.(c) + copies_from.(c) > width * ii then raise S.Conflict;
      check_residuals ();
      S.remove s cp.cpvar absent
    end
  in
  let update_activity i =
    let cp = copies.(i) in
    let all_assigned =
      List.for_all (fun (w, _) -> S.is_assigned s cvar.(w)) cp.consumers
    in
    let some_in_d =
      List.exists (fun (w, _) -> S.value s cvar.(w) = cp.cd) cp.consumers
    in
    if S.is_assigned s cp.cuvar then begin
      let cu = S.value s cp.cuvar in
      if cu = cp.cd then S.assign s cp.cpvar absent
      else if some_in_d then activate i
      else if all_assigned then S.assign s cp.cpvar absent
    end
    else if all_assigned && not some_in_d then S.assign s cp.cpvar absent
  in
  let cluster_assigned v =
    let c = S.value s v in
    List.iter
      (fun o ->
        let k = ops_class.(o) in
        ops_in.(c) <- ops_in.(c) + 1;
        class_in.(k).(c) <- class_in.(k).(c) + 1;
        un_class.(k) <- un_class.(k) - 1;
        decr un_ops;
        S.post_undo s (fun () ->
            ops_in.(c) <- ops_in.(c) - 1;
            class_in.(k).(c) <- class_in.(k).(c) + (-1);
            un_class.(k) <- un_class.(k) + 1;
            incr un_ops))
      var_ops.(v);
    for k = 0 to 2 do
      if class_in.(k).(c) > cap.(k) * ii then raise S.Conflict
    done;
    if ops_in.(c) + copies_from.(c) > width * ii then raise S.Conflict;
    check_residuals ();
    List.iter try_account_op var_ops.(v);
    List.iter update_activity copies_of_cv.(v)
  in
  (* Positive-cycle check of the k-difference system restricted to one
     recurrence.  Edges whose cluster form is still open are skipped
     (sound: fewer constraints); unassigned slots use the best-case
     bound s_a - s_b >= -(ii-1), so a reported cycle is a genuine
     infeasibility even mid-search and exact on full assignments. *)
  let check_rec r =
    let idx = rec_idx.(r) in
    let m = Array.length rec_members.(r) in
    let edges = ref [] and nnodes = ref m and positive = ref false in
    let slot o = if S.is_assigned s svar.(o) then S.value s svar.(o) else -1 in
    let weight l d sa sb =
      let lo = (if sa >= 0 then sa else 0) - (if sb >= 0 then sb else ii - 1) in
      ceil_div (l - (ii * d) + lo) ii
    in
    let add a b w =
      if w > 0 then positive := true;
      edges := (a, b, w) :: !edges
    in
    List.iter
      (fun (e : Edge.t) ->
        let a = e.Edge.src and b = e.Edge.dst and d = e.Edge.distance in
        let ca = S.value s cvar.(a) and cb = S.value s cvar.(b) in
        let direct l = add idx.(a) idx.(b) (weight l d (slot a) (slot b)) in
        match e.Edge.kind with
        | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out | Edge.Mem_unresolved
          ->
            direct 1
        | Edge.Reg_anti -> if ca >= 0 && ca = cb then direct 0
        | Edge.Reg_out -> if ca >= 0 && ca = cb then direct 1
        | Edge.Reg_flow ->
            if ca >= 0 && cb >= 0 then
              if ca = cb then direct (latency a)
              else begin
                let i = copy_idx.((a * nc) + cb) in
                let cp = copies.(i) in
                let scp =
                  if S.is_assigned s cp.cpvar && S.value s cp.cpvar < absent
                  then S.value s cp.cpvar
                  else -1
                in
                let nid = !nnodes in
                incr nnodes;
                add idx.(a) nid (weight (latency a) 0 (slot a) scp);
                add nid idx.(b) (weight copy_lat d scp (slot b))
              end)
      rec_edges.(r);
    if !positive then begin
      let nn = !nnodes in
      let dist = Array.make nn 0 in
      let es = !edges in
      let relax () =
        List.fold_left
          (fun changed (a, b, w) ->
            if dist.(a) + w > dist.(b) then begin
              dist.(b) <- dist.(a) + w;
              true
            end
            else changed)
          false es
      in
      let rec go pass = if pass > nn then true else relax () && go (pass + 1) in
      if go 0 then raise S.Conflict
    end
  in
  (* Canonical earliest-start realization of a total assignment: resolve
     each op's iteration offset k via longest paths in the exact
     k-difference system (converges — every cycle was proved
     non-positive), then shift flat times down by a multiple of II. *)
  let realize () =
    let nactive = ref 0 in
    let cp_node = Array.make (max 1 ncopies) (-1) in
    Array.iteri
      (fun i cp ->
        if S.is_assigned s cp.cpvar && S.value s cp.cpvar < absent then begin
          cp_node.(i) <- n + !nactive;
          incr nactive
        end)
      copies;
    let total = n + !nactive in
    let slot_of = Array.make total 0 in
    for o = 0 to n - 1 do
      slot_of.(o) <- S.value s svar.(o)
    done;
    Array.iteri
      (fun i cp ->
        if cp_node.(i) >= 0 then slot_of.(cp_node.(i)) <- S.value s cp.cpvar)
      copies;
    let edges = ref [] in
    let add a b l d =
      edges :=
        (a, b, ceil_div (l - (ii * d) + slot_of.(a) - slot_of.(b)) ii)
        :: !edges
    in
    List.iter
      (fun (e : Edge.t) ->
        let a = e.Edge.src and b = e.Edge.dst and d = e.Edge.distance in
        let ca = S.value s cvar.(a) and cb = S.value s cvar.(b) in
        match e.Edge.kind with
        | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out | Edge.Mem_unresolved
          ->
            add a b 1 d
        | Edge.Reg_anti -> if ca = cb then add a b 0 d
        | Edge.Reg_out -> if ca = cb then add a b 1 d
        | Edge.Reg_flow ->
            if ca = cb then add a b (latency a) d
            else begin
              let nid = cp_node.(copy_idx.((a * nc) + cb)) in
              add a nid (latency a) 0;
              add nid b copy_lat d
            end)
      (Ddg.edges ddg);
    let k = Array.make total 0 in
    let changed = ref true and guard = ref 0 in
    while !changed do
      changed := false;
      incr guard;
      assert (!guard <= total + 2);
      List.iter
        (fun (a, b, w) ->
          if k.(a) + w > k.(b) then begin
            k.(b) <- k.(a) + w;
            changed := true
          end)
        !edges
    done;
    let t = Array.init total (fun x -> (ii * k.(x)) + slot_of.(x)) in
    let mn = Array.fold_left min max_int t in
    let shift = mn / ii * ii in
    let cluster = Array.make n 0 and start = Array.make n 0 in
    for o = 0 to n - 1 do
      cluster.(o) <- S.value s cvar.(o);
      start.(o) <- t.(o) - shift
    done;
    let cps = ref [] in
    for i = ncopies - 1 downto 0 do
      if cp_node.(i) >= 0 then begin
        let cp = copies.(i) in
        cps :=
          {
            Schedule.src_op = cp.cu;
            from_cluster = S.value s cp.cuvar;
            to_cluster = cp.cd;
            start = t.(cp_node.(i)) - shift;
          }
          :: !cps
      end
    done;
    { Schedule.ii; n_clusters = nc; cluster; start; copies = !cps }
  in
  let on_var v =
    decr unassigned_vars;
    S.post_undo s (fun () -> incr unassigned_vars);
    (match var_kind.(v) with
    | 0 -> cluster_assigned v
    | 1 -> try_account_op var_obj.(v)
    | _ -> account_copy var_obj.(v));
    List.iter check_rec recs_of_var.(v);
    match reg_limit with
    | Some limit when !unassigned_vars = 0 ->
        let ml = Regpressure.max_live ddg ~latency (realize ()) in
        if Array.exists (fun x -> x > limit) ml then raise S.Conflict
    | _ -> ()
  in
  S.on_assign s on_var;
  (* --- decision order and value orders --------------------------- *)
  let anchor = ref (-1) in
  let order =
    let seen = Array.make nvars false in
    let out = ref [] in
    let push v =
      if not seen.(v) then begin
        seen.(v) <- true;
        if var_kind.(v) = 1 && !anchor < 0 then anchor := v;
        out := v :: !out
      end
    in
    Array.iter (fun members -> Array.iter (fun o -> push cvar.(o)) members)
      rec_members;
    let rest = List.filter (fun v -> not seen.(v)) cluster_vars in
    List.iter push
      (List.sort
         (fun a b ->
           let la = List.length var_ops.(a) and lb = List.length var_ops.(b) in
           if la <> lb then compare lb la else compare a b)
         rest);
    Array.iter (fun members -> Array.iter (fun o -> push svar.(o)) members)
      rec_members;
    for o = 0 to n - 1 do
      push svar.(o)
    done;
    Array.iter (fun cp -> push cp.cpvar) copies;
    Array.of_list (List.rev !out)
  in
  let nothing_placed () =
    let ok = ref true in
    for o = 0 to n - 1 do
      if S.is_assigned s svar.(o) then ok := false
    done;
    Array.iter
      (fun cp ->
        if S.is_assigned s cp.cpvar && S.value s cp.cpvar < absent then
          ok := false)
      copies;
    !ok
  in
  let values v =
    match var_kind.(v) with
    | 0 ->
        (* value symmetry: clusters are interchangeable, so the next
           undecided variable need only try used labels plus one *)
        let mx =
          List.fold_left
            (fun acc w ->
              if S.is_assigned s w then max acc (S.value s w) else acc)
            (-1) cluster_vars
        in
        List.init (min nc (mx + 2)) (fun i -> i)
    | 1 ->
        (* shift symmetry: pin the first placement to slot 0 *)
        if v = !anchor && nothing_placed () then [ 0 ]
        else List.init ii (fun i -> i)
    | _ -> List.init (ii + 1) (fun i -> i)
  in
  let result, stats =
    S.solve s ~values ~order ~max_decisions:budget ~max_conflicts:budget ()
  in
  match result with
  | S.Sat -> (Feasible (realize ()), stats)
  | S.Unsat -> (Infeasible, stats)
  | S.Budget_exhausted -> (Out_of_budget, stats)

(* ------------------------------------------------------------------ *)

type verdict = Optimal | Hardware_bound | Heuristic_gap | Unknown

let verdict_to_string = function
  | Optimal -> "optimal"
  | Hardware_bound -> "hardware-bound"
  | Heuristic_gap -> "heuristic-gap"
  | Unknown -> "unknown(budget)"

type probe = { p_ii : int; p_sat : decision; p_stats : S.stats }

type certification = {
  floor : int;
  heuristic_ii : int;
  minimal_ii : int option;
  infeasible_below : int;
  verdict : verdict;
  witness : Schedule.t option;
  witness_diags : Diagnostic.t list;
  probes : probe list;
  decisions : int;
  conflicts : int;
}

let default_budget = 300_000

(* A certified lower bound for the oracle's problem.  Resources.mii is
   NOT one: its RecMII assumes every recurrence edge constrains the
   schedule, but cross-cluster Reg_anti/Reg_out dependences are
   unconstrained in this machine model, so a recurrence containing them
   can legally be split below RecMII.  Only cycles of flow and memory
   edges survive clustering (copies make flow edges longer, never
   shorter; memory edges keep their latency in every placement). *)
let lower_bound cfg ddg ~latency =
  let kept =
    List.filter
      (fun (e : Edge.t) ->
        match e.Edge.kind with
        | Edge.Reg_anti | Edge.Reg_out -> false
        | Edge.Reg_flow | Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out
        | Edge.Mem_unresolved ->
            true)
      (Ddg.edges ddg)
  in
  max
    (Resources.res_mii cfg ddg)
    (Vliw_ir.Mii.rec_mii (Ddg.make (Ddg.ops ddg) kept) ~latency)

let certify cfg ddg ~latency ?(allow_cross_cluster_mem = false) ?reg_limit
    ?(budget = default_budget) ~heuristic_ii () =
  let floor = min (lower_bound cfg ddg ~latency) heuristic_ii in
  let probes = ref [] and dec = ref 0 and conf = ref 0 in
  let finish ~minimal ~infeasible_below ~verdict ~witness ~witness_diags =
    {
      floor;
      heuristic_ii;
      minimal_ii = minimal;
      infeasible_below;
      verdict;
      witness;
      witness_diags;
      probes = List.rev !probes;
      decisions = !dec;
      conflicts = !conf;
    }
  in
  let module Cancel = Vliw_parallel.Cancel in
  let stage_of ii =
    Printf.sprintf "oracle probe ii=%d (floor %d, minimum >= %d proven)" ii
      floor ii
  in
  let rec probe ii =
    if ii >= heuristic_ii then
      finish ~minimal:(Some heuristic_ii) ~infeasible_below:heuristic_ii
        ~verdict:(if heuristic_ii = floor then Optimal else Hardware_bound)
        ~witness:None ~witness_diags:[]
    else begin
      (* A request deadline reuses the solver's own budget machinery: cap
         this probe's decision budget by the token's remaining work units
         so cancellation lands on a deterministic solver decision count,
         never a wall-clock instant.  [max 1] keeps the probe well-formed
         when the token is already dry — it exhausts immediately. *)
      let effective_budget =
        match Cancel.remaining () with
        | None -> budget
        | Some r -> min budget (max 1 r)
      in
      Cancel.set_stage (stage_of ii);
      let d, st =
        decide cfg ddg ~latency ~allow_cross_cluster_mem ?reg_limit ~ii
          ~budget:effective_budget ()
      in
      probes := { p_ii = ii; p_sat = d; p_stats = st } :: !probes;
      dec := !dec + st.S.decisions;
      conf := !conf + st.S.conflicts;
      (* Completed search effort counts against the deadline whatever the
         probe concluded; the check below decides whether to continue. *)
      Cancel.charge (st.S.decisions + st.S.conflicts);
      match d with
      | Infeasible ->
          Cancel.check ~stage:(stage_of (ii + 1)) ();
          probe (ii + 1)
      | Out_of_budget when effective_budget < budget ->
          (* The deadline, not the oracle's own budget, was the binding
             constraint: surface it as a cancellation so the service can
             report "timeout" with this probe as partial attribution. *)
          Cancel.cancel ~stage:(stage_of ii) ()
      | Out_of_budget ->
          finish ~minimal:None ~infeasible_below:ii ~verdict:Unknown
            ~witness:None ~witness_diags:[]
      | Feasible w ->
          let diags =
            Verify_schedule.verify cfg ddg ~latency ~allow_cross_cluster_mem
              ~where:"oracle" w
          in
          finish ~minimal:(Some ii) ~infeasible_below:ii ~verdict:Heuristic_gap
            ~witness:(Some w) ~witness_diags:diags
    end
  in
  probe floor

let sound c =
  (match c.minimal_ii with Some m -> m <= c.heuristic_ii | None -> true)
  && Diagnostic.n_errors c.witness_diags = 0
