(** The [explain] driver: static diagnosis of every compiled schedule.

    Where [analyze] asks "does the toolchain hold its invariants?",
    [explain] asks "why is this schedule exactly this fast?".  For every
    benchmark x target x loop it compiles (no simulation), runs the
    {!Attribution} bound tower plus the {!Locality} classifier, and
    renders per loop: achieved II against both MIIs, the binding
    constraint, the ranked cycle-loss budget, the provable locality
    verdict counts, the unroll candidates the selective search weighed,
    and any missed-locality lints. *)

type loop_report = {
  bench : string;
  loop : string;
  target : Vliw_core.Pipeline.target;
  unroll_factor : int;
  considered : (int * int) list;
      (** unroll candidates (factor, estimated Texec) the search scored *)
  attribution : Attribution.report;
  locality : Locality.bounds option;
      (** [None] for targets without cluster-locality (unified,
          multiVLIW) *)
  lints : Diagnostic.t list;  (** missed-locality warnings *)
  oracle : Oracle.certification option;
      (** present when the oracle ran and this loop had II > MII *)
}

type oracle_row = {
  o_bench : string;
  o_loop : string;
  o_target : string;
  o_unroll : int;
  o_attr_mii : int;  (** the attribution tower's MII (incl. anti/out) *)
  o_cert : Oracle.certification;
}

type summary = {
  benchmarks : int;
  loops : int;
  gaps : int;  (** loops whose achieved II exceeds their MII *)
  lints : int;
  leaderboard : oracle_row list;
      (** one row per II>MII loop when the oracle ran; [] otherwise *)
}

val schema_version : int
(** Version stamp of the [explain --json] (and [analyze --json])
    document shape; bumped on any breaking field change. *)

val explain_bench :
  Vliw_arch.Config.t ->
  seed:int ->
  ?oracle_budget:int ->
  ?oracle_memo:
    (string -> (unit -> Oracle.certification) -> Oracle.certification) ->
  Vliw_workloads.Benchspec.t ->
  loop_report list
(** All loop reports of one benchmark, every target of the [analyze]
    matrix, loops in program order.  When [oracle_budget] is given, each
    II>MII loop is certified through {!Oracle.certify} (memoized via
    [oracle_memo], keyed on bench/loop/target/seed/budget/config). *)

val run_all :
  ?cfg:Vliw_arch.Config.t ->
  ?seed:int ->
  ?benchmarks:string list ->
  ?json:bool ->
  ?oracle_budget:int ->
  ?oracle_memo:
    (string -> (unit -> Oracle.certification) -> Oracle.certification) ->
  Format.formatter ->
  summary
(** Explain the given benchmarks (default: the whole suite); benchmarks
    run through the parallel domain pool, output is deterministic.
    [json] emits one machine-readable JSON document instead of the
    table.  [oracle_budget] switches the optimality leaderboard on: per
    II>MII loop, heuristic II / proven optimal II / verdict, with
    deterministic decision-count budgets so the output is byte-identical
    for any [--jobs].  [oracle_memo] (default: compute directly) lets
    the caller back certifications with a cache. *)
