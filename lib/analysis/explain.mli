(** The [explain] driver: static diagnosis of every compiled schedule.

    Where [analyze] asks "does the toolchain hold its invariants?",
    [explain] asks "why is this schedule exactly this fast?".  For every
    benchmark x target x loop it compiles (no simulation), runs the
    {!Attribution} bound tower plus the {!Locality} classifier, and
    renders per loop: achieved II against both MIIs, the binding
    constraint, the ranked cycle-loss budget, the provable locality
    verdict counts, the unroll candidates the selective search weighed,
    and any missed-locality lints. *)

type loop_report = {
  bench : string;
  loop : string;
  target : Vliw_core.Pipeline.target;
  unroll_factor : int;
  considered : (int * int) list;
      (** unroll candidates (factor, estimated Texec) the search scored *)
  attribution : Attribution.report;
  locality : Locality.bounds option;
      (** [None] for targets without cluster-locality (unified,
          multiVLIW) *)
  lints : Diagnostic.t list;  (** missed-locality warnings *)
}

type summary = {
  benchmarks : int;
  loops : int;
  gaps : int;  (** loops whose achieved II exceeds their MII *)
  lints : int;
}

val explain_bench :
  Vliw_arch.Config.t -> seed:int -> Vliw_workloads.Benchspec.t ->
  loop_report list
(** All loop reports of one benchmark, every target of the [analyze]
    matrix, loops in program order. *)

val run_all :
  ?cfg:Vliw_arch.Config.t ->
  ?seed:int ->
  ?benchmarks:string list ->
  ?json:bool ->
  Format.formatter ->
  summary
(** Explain the given benchmarks (default: the whole suite); benchmarks
    run through the parallel domain pool, output is deterministic.
    [json] emits one machine-readable JSON document instead of the
    table. *)
