(** Machine-description validator (Table 2 consistency).

    Pass ids (family ["config/"]):
    - ["config/validate"] — {!Vliw_arch.Config.validate} rejected the
      configuration (error);
    - ["config/positive"] — a count that must be at least 1 is not
      (clusters, FUs, issue width, buses, occupancy, sizes, AB geometry)
      (error);
    - ["config/geometry"] — cache geometry inconsistent: interleaving
      factor must divide the cache size, every cluster's module must
      hold at least one whole set, the per-cluster subblock must hold at
      least one interleaving unit, AB entries at least one set (error);
    - ["config/latency-ladder"] — the four-level interleaved latency
      table does not provide 4 distinct assignment levels in strictly
      ascending order (error if not ascending or not 4 entries, warn on
      duplicates — the latency-assignment ladder collapses);
    - ["config/latency-derivation"] — remote latencies inconsistent
      with the bus model ([remote hit = local hit + 2 x bus occupancy],
      [remote miss - local miss = remote hit - local hit]) (warn:
      legal configuration, but no longer Table 2's machine). *)

val check : ?where:string -> Vliw_arch.Config.t -> Diagnostic.t list
