module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Schedule = Vliw_sched.Schedule
module Machine = Vliw_sim.Machine
module Executor = Vliw_sim.Executor
module Stats = Vliw_sim.Stats
module WL = Vliw_workloads
module Pool = Vliw_parallel.Pool
module D = Diagnostic

type summary = {
  benchmarks : int;
  loops : int;
  cells : int;
  errors : int;
  warnings : int;
  infos : int;
}

let ok s = s.errors = 0

(* ------------------------------------------------- per-compile check *)

let compiled_diags cfg (c : Pipeline.compiled) =
  let latency i = c.Pipeline.latencies.(i) in
  let where =
    Printf.sprintf "%s[%s,UF=%d]" c.Pipeline.source.Loop.name
      (Pipeline.target_to_string c.Pipeline.target)
      c.Pipeline.unroll_factor
  in
  Lint_ddg.lint ~latency ~where c.Pipeline.loop.Loop.ddg
  @ Verify_schedule.verify cfg c.Pipeline.loop.Loop.ddg ~latency
      ~allow_cross_cluster_mem:
        (Pipeline.allow_cross_cluster_mem c.Pipeline.target)
      ~where c.Pipeline.schedule

let install_check_hook () =
  Pipeline.check_hook :=
    fun cfg c ->
      let diags = compiled_diags cfg c in
      if D.has_errors diags then
        Format.kasprintf failwith
          "--check: %d invariant violation(s) in the schedule of %s:@.%a"
          (D.n_errors diags) c.Pipeline.source.Loop.name
          (fun ppf ds -> D.pp_report ppf ds)
          diags

(* ------------------------------------------------- benchmark sweeps *)

(* Targets x backends of one benchmark cell matrix: the two interleaved
   heuristics each simulate with and without attraction buffers; the
   unified and multiVLIW targets have one backend each. *)
let target_matrix =
  [
    ( Pipeline.Interleaved { heuristic = `Ipbc; chains = true },
      [ Machine.Word_interleaved { attraction_buffers = true };
        Machine.Word_interleaved { attraction_buffers = false } ] );
    ( Pipeline.Interleaved { heuristic = `Ibc; chains = true },
      [ Machine.Word_interleaved { attraction_buffers = true };
        Machine.Word_interleaved { attraction_buffers = false } ] );
    (Pipeline.Unified { slow = true }, [ Machine.Unified { slow = true } ]);
    (Pipeline.Multivliw, [ Machine.Multivliw ]);
  ]

type bench_result = {
  name : string;
  b_loops : int;
  b_cells : int;
  diags : D.t list;
}

let analyze_bench cfg ~seed (bench : WL.Benchspec.t) =
  let profile_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Profile_run ~seed
  in
  let exec_layout =
    WL.Layout.create cfg ~aligned:true ~run:WL.Layout.Execution_run ~seed
  in
  let profiler = WL.Profiling.profiler cfg profile_layout in
  let diags = ref [] in
  let loops = ref 0 in
  let cells = ref 0 in
  let emit ds = diags := List.rev_append ds !diags in
  List.iter
    (fun (target, archs) ->
      let compiled =
        List.map
          (fun loop ->
            Pipeline.compile cfg ~target
              ~strategy:Vliw_core.Unroll_select.Selective ~profiler loop)
          (WL.Benchspec.loops bench)
      in
      (* Static locality bounds, per compiled loop: computed once here,
         cross-checked against the dynamic stats of every interleaved
         backend cell below. *)
      let compiled =
        List.map
          (fun (c : Pipeline.compiled) ->
            let bounds =
              match target with
              | Pipeline.Interleaved _ ->
                  Some (Locality.analyze cfg exec_layout c)
              | Pipeline.Unified _ | Pipeline.Multivliw -> None
            in
            (c, bounds))
          compiled
      in
      List.iter
        (fun ((c : Pipeline.compiled), bounds) ->
          incr loops;
          let where =
            Printf.sprintf "%s/%s[%s]" bench.WL.Benchspec.name
              c.Pipeline.source.Loop.name
              (Pipeline.target_to_string target)
          in
          (* Source DDG under default latencies, compiled (unrolled) DDG
             under the assigned latencies. *)
          emit (Lint_ddg.lint ~where:(where ^ "/src") c.Pipeline.source.Loop.ddg);
          emit
            (Lint_ddg.lint
               ~latency:(fun i -> c.Pipeline.latencies.(i))
               ~where c.Pipeline.loop.Loop.ddg);
          emit
            (Verify_schedule.verify cfg c.Pipeline.loop.Loop.ddg
               ~latency:(fun i -> c.Pipeline.latencies.(i))
               ~allow_cross_cluster_mem:
                 (Pipeline.allow_cross_cluster_mem target)
               ~where c.Pipeline.schedule);
          emit (Audit_sim.audit_addr_plan exec_layout c.Pipeline.loop.Loop.ddg ~where ());
          emit [ Attribution.summary_diag ~report:(Attribution.attribute cfg c) ~where ];
          emit (Attribution.missed_locality cfg exec_layout ~where c);
          Option.iter
            (fun b -> emit [ Locality.summary_diag ~bounds:b ~where ])
            bounds)
        compiled;
      (* Widest element of this target's access stream, in interleaving
         units — the traffic laws are exact only for single-part
         elements (see {!Audit_sim.audit_traffic}). *)
      let max_parts =
        List.fold_left
          (fun acc ((c : Pipeline.compiled), _) ->
            List.fold_left
              (fun acc op ->
                match (Ddg.op c.Pipeline.loop.Loop.ddg op).Vliw_ir.Operation.mem
                with
                | None -> acc
                | Some m ->
                    let g = m.Vliw_ir.Mem_access.granularity in
                    max acc
                      ((g + cfg.Config.interleaving_factor - 1)
                      / cfg.Config.interleaving_factor))
              acc
              (Ddg.memory_ops c.Pipeline.loop.Loop.ddg))
          1 compiled
      in
      List.iter
        (fun arch ->
          incr cells;
          let where =
            Printf.sprintf "%s[%s->%s]" bench.WL.Benchspec.name
              (Pipeline.target_to_string target)
              (Machine.arch_to_string arch)
          in
          let machine = Machine.create cfg arch in
          let agg = Stats.create () in
          List.iter
            (fun ((c : Pipeline.compiled), bounds) ->
              let ddg = c.Pipeline.loop.Loop.ddg in
              let addr_of = WL.Layout.addr_fn exec_layout ddg in
              let stats = Executor.run_loop cfg machine c ~addr_of () in
              let loop_where =
                Printf.sprintf "%s/%s" where c.Pipeline.source.Loop.name
              in
              emit
                (Audit_sim.audit_stats ~arch
                   ~n_mem_ops:(List.length (Ddg.memory_ops ddg))
                   ~trip:c.Pipeline.loop.Loop.trip_count
                   ~ii:c.Pipeline.schedule.Schedule.ii
                   ~stage_count:(Schedule.stage_count c.Pipeline.schedule)
                   ~where:loop_where stats);
              (* The locality conservation law: the dynamic local/remote
                 classification must stay inside the static bounds. *)
              (match (arch, bounds) with
              | Machine.Word_interleaved { attraction_buffers }, Some b ->
                  emit
                    (Locality.check_stats ~attraction_buffers ~bounds:b
                       ~stats ~where:loop_where)
              | _ -> ());
              Stats.accumulate ~into:agg stats)
            compiled;
          emit
            (Audit_sim.audit_traffic ~arch ~stats:agg
               ~traffic:(Machine.traffic_summary machine)
               ~max_parts ~where ()))
        archs)
    target_matrix;
  {
    name = bench.WL.Benchspec.name;
    b_loops = !loops;
    b_cells = !cells;
    diags = List.rev !diags;
  }

let summary_json ?(extra = "") name (s : summary) =
  Printf.sprintf
    {|"%s":{"benchmarks":%d,"loops":%d,"cells":%d,"errors":%d,"warnings":%d,"infos":%d,"ok":%b%s}|}
    name s.benchmarks s.loops s.cells s.errors s.warnings s.infos (ok s) extra

let print_json ppf ~verbose ~config_diags ~results ~all_diags summary =
  let diags =
    List.filter (fun d -> verbose || d.D.severity <> D.Info) all_diags
  in
  Format.fprintf ppf "{@.  \"schema_version\": %d,@.  %s,@."
    Explain.schema_version
    (summary_json "summary" summary);
  Format.fprintf ppf "  \"config_ok\": %b,@."
    (not (D.has_errors config_diags));
  Format.fprintf ppf "  \"benchmarks\": [@.";
  List.iteri
    (fun i r ->
      Format.fprintf ppf
        "    {\"name\":\"%s\",\"loops\":%d,\"cells\":%d,\"errors\":%d,\"warnings\":%d,\"infos\":%d}%s@."
        (D.json_escape r.name) r.b_loops r.b_cells (D.n_errors r.diags)
        (D.n_warnings r.diags) (D.n_infos r.diags)
        (if i < List.length results - 1 then "," else ""))
    results;
  Format.fprintf ppf "  ],@.  \"diagnostics\": [@.";
  List.iteri
    (fun i d ->
      Format.fprintf ppf "    %s%s@." (D.to_json d)
        (if i < List.length diags - 1 then "," else ""))
    diags;
  Format.fprintf ppf "  ]@.}@."

let run_all ?(cfg = Config.default) ?(seed = 7) ?benchmarks
    ?(verbose = false) ?(json = false) ppf =
  let benches =
    match benchmarks with
    | None -> WL.Mediabench.all
    | Some names -> List.map WL.Mediabench.find names
  in
  let config_diags = Check_config.check cfg in
  let results =
    Pool.map_ordered (fun b -> analyze_bench cfg ~seed b) benches
  in
  let all_diags =
    config_diags @ List.concat_map (fun r -> r.diags) results
  in
  if json then begin
    let summary =
      {
        benchmarks = List.length results;
        loops = List.fold_left (fun acc r -> acc + r.b_loops) 0 results;
        cells = List.fold_left (fun acc r -> acc + r.b_cells) 0 results;
        errors = D.n_errors all_diags;
        warnings = D.n_warnings all_diags;
        infos = D.n_infos all_diags;
      }
    in
    print_json ppf ~verbose ~config_diags ~results ~all_diags summary;
    summary
  end
  else begin
  Format.fprintf ppf "config: %s@."
    (if D.has_errors config_diags then "INVALID"
     else if config_diags = [] then "ok"
     else Printf.sprintf "ok (%d warnings)" (D.n_warnings config_diags));
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %2d loop compiles  %d cells  %s@." r.name
        r.b_loops r.b_cells
        (if D.has_errors r.diags then
           Printf.sprintf "%d ERRORS" (D.n_errors r.diags)
         else if D.n_warnings r.diags > 0 then
           Printf.sprintf "ok (%d warnings, %d infos)" (D.n_warnings r.diags)
             (D.n_infos r.diags)
         else Printf.sprintf "ok (%d infos)" (D.n_infos r.diags)))
    results;
  D.pp_report ~max_infos:(if verbose then max_int else 0) ppf all_diags;
  let summary =
    {
      benchmarks = List.length results;
      loops = List.fold_left (fun acc r -> acc + r.b_loops) 0 results;
      cells = List.fold_left (fun acc r -> acc + r.b_cells) 0 results;
      errors = D.n_errors all_diags;
      warnings = D.n_warnings all_diags;
      infos = D.n_infos all_diags;
    }
  in
  Format.fprintf ppf
    "analyze: %d benchmarks, %d loop compiles, %d simulation cells — %d \
     errors, %d warnings, %d infos@."
    summary.benchmarks summary.loops summary.cells summary.errors
    summary.warnings summary.infos;
  if summary.errors = 0 then
    Format.fprintf ppf "all invariants hold@."
  else begin
    Format.fprintf ppf "diagnostics by pass:@.";
    List.iter
      (fun (pass, n) -> Format.fprintf ppf "  %-24s %d@." pass n)
      (D.by_pass (List.filter (fun d -> d.D.severity = D.Error) all_diags))
  end;
  summary
  end
