module Access = Vliw_arch.Access
module Ddg = Vliw_ir.Ddg
module Operation = Vliw_ir.Operation
module Machine = Vliw_sim.Machine
module Stats = Vliw_sim.Stats
module Layout = Vliw_workloads.Layout
module D = Diagnostic

let audit_stats ~arch ~n_mem_ops ~trip ~ii ~stage_count ?(where = "sim") stats
    =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun k ->
      if Stats.accesses stats k < 0 then
        add
          (D.error ~pass:"sim/negative" ~where "negative %s count %d"
             (Access.kind_to_string k) (Stats.accesses stats k));
      if Stats.stall_of stats k < 0 then
        add
          (D.error ~pass:"sim/negative" ~where "negative %s stall %d"
             (Access.kind_to_string k) (Stats.stall_of stats k)))
    Access.all_kinds;
  let expected_accesses = trip * n_mem_ops in
  if Stats.total_accesses stats <> expected_accesses then
    add
      (D.error ~pass:"sim/access-count" ~where
         "%d accesses recorded; %d iterations x %d memory ops = %d expected"
         (Stats.total_accesses stats) trip n_mem_ops expected_accesses);
  let expected_compute = (trip + stage_count - 1) * ii in
  if Stats.compute_cycles stats <> expected_compute then
    add
      (D.error ~pass:"sim/compute" ~where
         "%d compute cycles; (trip %d + SC %d - 1) x II %d = %d expected"
         (Stats.compute_cycles stats) trip stage_count ii expected_compute);
  if Stats.stall_of stats Access.Local_hit <> 0 then
    add
      (D.error ~pass:"sim/local-hit-stall" ~where
         "%d stall cycles attributed to local hits: promised latencies \
          always cover a local hit"
         (Stats.stall_of stats Access.Local_hit));
  (* Access classes a backend can never produce. *)
  let forbid k why =
    if Stats.accesses stats k <> 0 || Stats.stall_of stats k <> 0 then
      add
        (D.error ~pass:"sim/class" ~where "%d %s accesses (%d stall): %s"
           (Stats.accesses stats k) (Access.kind_to_string k)
           (Stats.stall_of stats k) why)
  in
  (match arch with
  | Machine.Unified _ ->
      forbid Access.Remote_hit "a unified cache has no remote accesses";
      forbid Access.Remote_miss "a unified cache has no remote accesses"
  | Machine.Multivliw ->
      forbid Access.Remote_miss
        "multiVLIW misses fill from the next level as local misses"
  | Machine.Word_interleaved _ -> ());
  (* A Figure-5 factor is counted at most once per stalling remote hit. *)
  List.iter
    (fun f ->
      if Stats.factor_count stats f > Stats.accesses stats Access.Remote_hit
      then
        add
          (D.error ~pass:"sim/factor-bound" ~where
             "factor %S counted %d times with only %d remote hits"
             (Stats.factor_to_string f) (Stats.factor_count stats f)
             (Stats.accesses stats Access.Remote_hit)))
    Stats.all_factors;
  List.rev !diags

let audit_traffic ~arch ~stats ~traffic ?(max_parts = 1) ?(where = "sim") ()
    =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let get key = List.assoc_opt key traffic in
  let expect_keys keys =
    List.iter
      (fun (key, _) ->
        if not (List.mem key keys) then
          add
            (D.error ~pass:"sim/traffic-keys" ~where
               "unexpected traffic counter %S for %s" key
               (Machine.arch_to_string arch)))
      traffic;
    List.iter
      (fun key ->
        if get key = None then
          add
            (D.error ~pass:"sim/traffic-keys" ~where
               "missing traffic counter %S for %s" key
               (Machine.arch_to_string arch)))
      keys
  in
  (* Traffic counters bump once per *part* access — an element wider than
     the interleaving factor issues one cache access per interleaving
     unit — while [Stats] classifies each element once, by its slowest
     part.  With [max_parts = 1] the two views coincide and the laws are
     exact equalities; with wider elements a filling or remote part can
     be shadowed by a slower sibling (typically the element's own
     in-flight fill, classified Combined), so each law relaxes to a
     lower bound from the elements that *were* classified that way plus
     a [max_parts]-scaled upper bound over the kinds that can hide such
     a part. *)
  let balance pass key expected why =
    match get key with
    | None -> () (* expect_keys already reported it *)
    | Some v ->
        if v <> expected then
          add
            (D.error ~pass ~where "%s = %d but %s = %d" key v why expected)
  in
  let bounded pass key ~lower ~upper ~lower_why ~upper_why =
    match get key with
    | None -> ()
    | Some v ->
        if v < lower then
          add
            (D.error ~pass ~where "%s = %d below %s = %d" key v lower_why
               lower)
        else if v > upper then
          add
            (D.error ~pass ~where
               "%s = %d above %d parts x %s = %d" key v max_parts upper_why
               upper)
  in
  let rh = Stats.accesses stats Access.Remote_hit in
  let lm = Stats.accesses stats Access.Local_miss in
  let rm = Stats.accesses stats Access.Remote_miss in
  let cb = Stats.accesses stats Access.Combined in
  (match arch with
  | Machine.Word_interleaved { attraction_buffers } ->
      expect_keys [ "remote words"; "block fills"; "attractions" ];
      if max_parts <= 1 then begin
        balance "sim/remote-balance" "remote words" (rh + rm)
          "remote hits + remote misses";
        balance "sim/fill-balance" "block fills" (lm + rm) "misses"
      end
      else begin
        bounded "sim/remote-balance" "remote words" ~lower:(rh + rm)
          ~upper:(max_parts * (rh + rm + lm + cb))
          ~lower_why:"remote hits + remote misses"
          ~upper_why:"(remote + miss + combined) elements";
        bounded "sim/fill-balance" "block fills" ~lower:(lm + rm)
          ~upper:(max_parts * (lm + rm + cb))
          ~lower_why:"misses" ~upper_why:"(miss + combined) elements"
      end;
      (match (get "attractions", get "remote words") with
      | None, _ -> ()
      | Some a, _ when not attraction_buffers ->
          if a <> 0 then
            add
              (D.error ~pass:"sim/attraction-bound" ~where
                 "%d attractions with attraction buffers disabled" a)
      | Some a, rw ->
          (* Every attraction coincides with a remote-hit part, which
             also bumps the remote-word counter. *)
          let cap = match rw with Some rw -> min rw (max_parts * rh) | None -> max_parts * rh in
          if a > cap then
            add
              (D.error ~pass:"sim/attraction-bound" ~where
                 "%d attractions exceed the %d remote-hit parts that could \
                  have triggered them"
                 a cap))
  | Machine.Multivliw -> (
      expect_keys [ "invalidations"; "cache-to-cache"; "memory fills"; "snoops" ];
      if max_parts <= 1 then begin
        balance "sim/remote-balance" "cache-to-cache" rh "remote hits";
        balance "sim/fill-balance" "memory fills" lm "local misses"
      end
      else begin
        bounded "sim/remote-balance" "cache-to-cache" ~lower:rh
          ~upper:(max_parts * (rh + lm + cb))
          ~lower_why:"remote hits"
          ~upper_why:"(remote hit + miss + combined) elements";
        bounded "sim/fill-balance" "memory fills" ~lower:lm
          ~upper:(max_parts * (lm + cb))
          ~lower_why:"local misses" ~upper_why:"(miss + combined) elements"
      end;
      match (get "snoops", get "cache-to-cache", get "memory fills") with
      | Some s, Some c2c, Some fills ->
          if s < c2c + fills then
            add
              (D.error ~pass:"sim/snoop-balance" ~where
                 "%d snoops below the %d bus transactions that must have \
                  been watched"
                 s (c2c + fills))
      | _ -> ())
  | Machine.Unified _ ->
      expect_keys [];
      if rh <> 0 || rm <> 0 then
        add
          (D.error ~pass:"sim/class" ~where
             "unified cache reported %d remote hits / %d remote misses" rh rm));
  List.rev !diags

let audit_addr_plan layout ddg ?(samples = 64) ?(where = "sim") () =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let staged = Layout.addr_fn layout ddg in
  (* Geometric iteration samples: early iterations, then doublings so
     footprint wrap-arounds are crossed. *)
  let iters =
    List.sort_uniq compare
      (List.init samples (fun i ->
           if i < 8 then i else 1 lsl (4 + ((i - 8) mod 24))))
  in
  List.iter
    (fun op ->
      let o = Ddg.op ddg op in
      match o.Operation.mem with
      | None -> ()
      | Some m ->
          let w = Printf.sprintf "%s/n%d(%s)" where op m.Vliw_ir.Mem_access.symbol in
          List.iter
            (fun iter ->
              let planned = staged ~op ~iter in
              let direct = Layout.address layout m ~op ~iter in
              if planned <> direct then
                add
                  (D.error ~pass:"sim/addr-plan" ~where:w
                     "iteration %d: staged plan yields %#x, direct \
                      computation %#x"
                     iter planned direct);
              let g = m.Vliw_ir.Mem_access.granularity in
              if g > 0 && planned mod g <> 0 then
                add
                  (D.error ~pass:"sim/addr-align" ~where:w
                     "iteration %d: address %#x not aligned to %dB" iter
                     planned g))
            iters)
    (Ddg.memory_ops ddg);
  List.rev !diags
