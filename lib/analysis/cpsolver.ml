exception Conflict

type entry =
  | Removed of int * int
  | Became_assigned of int
  | Undo_fn of (unit -> unit)

type var = {
  offset : int;  (** slice of [present] *)
  size : int;
}

type t = {
  mutable vars : var array;
  mutable n : int;
  mutable present : Bytes.t;  (** concatenated domain bitmaps, one byte per value *)
  mutable used : int;  (** bytes of [present] in use *)
  mutable count : int array;  (** live domain size per var *)
  mutable assigned : int array;  (** value, or -1 *)
  mutable trail : entry list;
  queue : int Queue.t;
  mutable watchers : (int -> unit) list;  (** registration order *)
  mutable props : int;
}

let create () =
  {
    vars = [||];
    n = 0;
    present = Bytes.create 256;
    used = 0;
    count = [||];
    assigned = [||];
    trail = [];
    queue = Queue.create ();
    watchers = [];
    props = 0;
  }

let n_vars t = t.n

let grow_arrays t =
  let cap = Array.length t.vars in
  if t.n >= cap then begin
    let cap' = max 16 (2 * cap) in
    let g a d = Array.init cap' (fun i -> if i < Array.length a then a.(i) else d) in
    t.vars <- g t.vars { offset = 0; size = 0 };
    t.count <- g t.count 0;
    t.assigned <- g t.assigned (-1)
  end

let new_var t ~size =
  if size <= 0 then invalid_arg "Cpsolver.new_var: size must be positive";
  grow_arrays t;
  if t.used + size > Bytes.length t.present then begin
    let cap' = max (2 * Bytes.length t.present) (t.used + size) in
    let b = Bytes.make cap' '\001' in
    Bytes.blit t.present 0 b 0 t.used;
    t.present <- b
  end;
  Bytes.fill t.present t.used size '\001';
  let v = t.n in
  t.vars.(v) <- { offset = t.used; size };
  t.count.(v) <- size;
  t.assigned.(v) <- -1;
  t.used <- t.used + size;
  t.n <- t.n + 1;
  if size = 1 then begin
    (* born assigned; propagate like any other assignment *)
    t.assigned.(v) <- 0;
    Queue.add v t.queue
  end;
  v

let value t v = t.assigned.(v)
let is_assigned t v = t.assigned.(v) >= 0

let mem t v x =
  let { offset; size } = t.vars.(v) in
  x >= 0 && x < size && Bytes.get t.present (offset + x) <> '\000'

let domain_count t v = t.count.(v)

let became_assigned t v =
  (* count just hit 1: find the survivor *)
  let { offset; size } = t.vars.(v) in
  let x = ref (-1) in
  for i = 0 to size - 1 do
    if Bytes.get t.present (offset + i) <> '\000' then x := i
  done;
  t.assigned.(v) <- !x;
  t.trail <- Became_assigned v :: t.trail;
  Queue.add v t.queue

let remove t v x =
  if mem t v x then begin
    if t.assigned.(v) = x then raise Conflict;
    Bytes.set t.present (t.vars.(v).offset + x) '\000';
    t.count.(v) <- t.count.(v) - 1;
    t.trail <- Removed (v, x) :: t.trail;
    if t.count.(v) = 0 then raise Conflict;
    if t.count.(v) = 1 && t.assigned.(v) < 0 then became_assigned t v
  end

let assign t v x =
  if not (mem t v x) then raise Conflict;
  if t.assigned.(v) >= 0 then begin
    if t.assigned.(v) <> x then raise Conflict
  end
  else
    let { size; _ } = t.vars.(v) in
    for y = 0 to size - 1 do
      if y <> x then remove t v y
    done

let on_assign t f = t.watchers <- t.watchers @ [ f ]
let post_undo t f = t.trail <- Undo_fn f :: t.trail

let propagate t =
  while not (Queue.is_empty t.queue) do
    let v = Queue.pop t.queue in
    List.iter
      (fun f ->
        t.props <- t.props + 1;
        f v)
      t.watchers
  done

let undo_to t mark =
  Queue.clear t.queue;
  while t.trail != mark do
    match t.trail with
    | [] -> assert false (* mark is always a suffix of the trail *)
    | e :: rest ->
        t.trail <- rest;
        (match e with
        | Removed (v, x) ->
            Bytes.set t.present (t.vars.(v).offset + x) '\001';
            t.count.(v) <- t.count.(v) + 1
        | Became_assigned v -> t.assigned.(v) <- -1
        | Undo_fn f -> f ())
  done

type result = Sat | Unsat | Budget_exhausted
type stats = { decisions : int; conflicts : int; propagations : int }

exception Budget

let default_values t v = List.init t.vars.(v).size (fun i -> i)

let solve t ?values ~order ~max_decisions ~max_conflicts () =
  let values = match values with Some f -> f | None -> default_values t in
  let decisions = ref 0 and conflicts = ref 0 in
  (* Chronological DFS.  [dfs i] assigns order.(i..); exhausting a
     node's candidate values fails the node (false), undone by the
     caller's trail mark. *)
  let rec dfs i =
    let rec next i =
      if i >= Array.length order then -1
      else if is_assigned t order.(i) then next (i + 1)
      else i
    in
    let i = next i in
    if i < 0 then true
    else
      let v = order.(i) in
      try_values v (List.filter (mem t v) (values v)) (i + 1)
  and try_values v cands i =
    match cands with
    | [] -> false
    | x :: rest ->
        incr decisions;
        if !decisions > max_decisions then raise Budget;
        let mark = t.trail in
        let ok =
          try
            assign t v x;
            propagate t;
            dfs i
          with Conflict ->
            incr conflicts;
            if !conflicts > max_conflicts then begin
              undo_to t mark;
              raise Budget
            end;
            false
        in
        if ok then true
        else begin
          undo_to t mark;
          try_values v rest i
        end
  in
  let res =
    try
      propagate t;
      if dfs 0 then Sat else Unsat
    with
    | Conflict -> Unsat
    | Budget -> Budget_exhausted
  in
  (res, { decisions = !decisions; conflicts = !conflicts; propagations = t.props })
