(** Simulator-invariant auditor: conservation laws the lockstep executor
    and the memory-system backends must satisfy on every run, plus the
    staged-address-plan cross-check.

    Pass ids (family ["sim/"]):
    - ["sim/access-count"] — accesses (hits + misses + combined) differ
      from [trip_count x memory ops]: the executor issued, merged or
      dropped an access it should not have (error);
    - ["sim/compute"] — compute cycles differ from
      [(trip + SC - 1) x II] (error);
    - ["sim/local-hit-stall"] — stall cycles attributed to local hits:
      impossible, every promised latency at least covers a local hit
      (error);
    - ["sim/negative"] — a negative statistics counter (error);
    - ["sim/class"] — an access class the backend cannot produce (a
      unified cache has no remote accesses; the multiVLIW's fills are
      local misses) (error);
    - ["sim/factor-bound"] — a Figure-5 factor counted more often than
      remote hits occurred (error);
    - ["sim/remote-balance"] — interleaved bus words differ from
      remote hits + remote misses (error);
    - ["sim/fill-balance"] — block fills from the next level differ
      from the misses that must have caused them (error);
    - ["sim/attraction-bound"] — more subblocks attracted than
      remote-hit parts, or attractions with buffers disabled (error);
    - ["sim/snoop-balance"] — multiVLIW snoops below the transactions
      that must have appeared on the bus (error);
    - ["sim/traffic-keys"] — a backend reporting traffic counters it
      does not have (error);
    - ["sim/addr-plan"] — the staged {!Vliw_workloads.Layout.addr_fn}
      plan disagrees with the direct {!Vliw_workloads.Layout.address}
      computation on a sampled (op, iteration) (error);
    - ["sim/addr-align"] — a generated address not aligned to its
      access granularity (error). *)

val audit_stats :
  arch:Vliw_sim.Machine.arch ->
  n_mem_ops:int ->
  trip:int ->
  ii:int ->
  stage_count:int ->
  ?where:string ->
  Vliw_sim.Stats.t ->
  Diagnostic.t list
(** Per-loop conservation laws over one {!Vliw_sim.Executor.run_loop}
    result. *)

val audit_traffic :
  arch:Vliw_sim.Machine.arch ->
  stats:Vliw_sim.Stats.t ->
  traffic:(string * int) list ->
  ?max_parts:int ->
  ?where:string ->
  unit ->
  Diagnostic.t list
(** Traffic-balance laws.  [stats] must aggregate *every* access the
    machine behind [traffic] ever served (fresh machine, all loops
    accumulated), otherwise the balances do not close.

    [max_parts] (default 1) is the widest element in the access stream,
    in interleaving units: [ceil (granularity / interleaving_factor)]
    maximized over the memory ops.  Traffic counters bump once per part
    while [stats] classifies whole elements by their slowest part, so
    the balances are exact equalities only when [max_parts = 1]; wider
    elements relax them to lower/upper bounds (a filling part is
    typically shadowed by the element's own in-flight fill and the
    element lands in the Combined class). *)

val audit_addr_plan :
  Vliw_workloads.Layout.t ->
  Vliw_ir.Ddg.t ->
  ?samples:int ->
  ?where:string ->
  unit ->
  Diagnostic.t list
(** Cross-check the staged per-DDG address plan against the unstaged
    per-access computation on [samples] (default 64) iteration indices
    per memory operation (geometrically spaced so wrap-around points are
    hit), and check granularity alignment. *)
