module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Opcode = Vliw_ir.Opcode
module Operation = Vliw_ir.Operation
module Schedule = Vliw_sched.Schedule
module Regpressure = Vliw_sched.Regpressure
module D = Diagnostic

let default_reg_limit = 64

let check_range cfg ddg ~where (t : Schedule.t) =
  let n = Ddg.n_ops ddg in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if t.Schedule.ii < 1 then
    add (D.error ~pass:"sched/range" ~where "II %d < 1" t.Schedule.ii);
  if t.Schedule.n_clusters <> cfg.Config.n_clusters then
    add
      (D.error ~pass:"sched/range" ~where
         "schedule built for %d clusters on a %d-cluster machine"
         t.Schedule.n_clusters cfg.Config.n_clusters);
  if Array.length t.Schedule.cluster <> n || Array.length t.Schedule.start <> n
  then
    add
      (D.error ~pass:"sched/range" ~where
         "placement arrays sized %d/%d for a %d-operation DDG"
         (Array.length t.Schedule.cluster)
         (Array.length t.Schedule.start)
         n)
  else
    for v = 0 to n - 1 do
      let w = Printf.sprintf "%s/n%d" where v in
      if t.Schedule.start.(v) < 0 then
        add
          (D.error ~pass:"sched/range" ~where:w "start cycle %d < 0"
             t.Schedule.start.(v));
      if t.Schedule.cluster.(v) < 0 || t.Schedule.cluster.(v) >= cfg.Config.n_clusters
      then
        add
          (D.error ~pass:"sched/range" ~where:w "cluster %d outside [0, %d)"
             t.Schedule.cluster.(v) cfg.Config.n_clusters)
    done;
  List.rev !diags

let check_dependences ddg ~latency ~allow_cross_cluster_mem ~where
    (t : Schedule.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (e : Edge.t) ->
      let w =
        Printf.sprintf "%s/edge n%d->n%d(%s,d%d)" where e.src e.dst
          (Edge.kind_to_string e.kind) e.distance
      in
      let ts = t.Schedule.start.(e.src) and td = t.Schedule.start.(e.dst) in
      let cs = t.Schedule.cluster.(e.src) and cd = t.Schedule.cluster.(e.dst) in
      let lat = Ddg.effective_latency ~latency e in
      let slack = td - ts - lat + (t.Schedule.ii * e.distance) in
      match e.kind with
      | Edge.Reg_flow when cs <> cd -> () (* the copy-coverage pass *)
      | (Edge.Reg_anti | Edge.Reg_out) when cs <> cd -> ()
      | (Edge.Mem_flow | Edge.Mem_anti | Edge.Mem_out | Edge.Mem_unresolved)
        when cs <> cd ->
          if not allow_cross_cluster_mem then
            add
              (D.error ~pass:"sched/mem-colocate" ~where:w
                 "memory-dependent operations split over clusters %d/%d" cs cd)
          else if slack < 0 then
            add
              (D.error ~pass:"sched/dependence" ~where:w
                 "violated modulo II=%d (slack %d)" t.Schedule.ii slack)
      | _ ->
          if slack < 0 then
            add
              (D.error ~pass:"sched/dependence" ~where:w
                 "violated modulo II=%d (slack %d)" t.Schedule.ii slack))
    (Ddg.edges ddg);
  List.rev !diags

let check_copies cfg ddg ~latency ~where (t : Schedule.t) =
  let copy_lat = cfg.Config.reg_copy_latency in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Per-copy sanity. *)
  List.iter
    (fun (cp : Schedule.copy) ->
      let w =
        Printf.sprintf "%s/copy n%d@%d->c%d" where cp.Schedule.src_op
          cp.Schedule.start cp.Schedule.to_cluster
      in
      if cp.Schedule.from_cluster <> t.Schedule.cluster.(cp.Schedule.src_op)
      then
        add
          (D.error ~pass:"sched/copy-cluster" ~where:w
             "copy departs cluster %d but its producer lives in cluster %d"
             cp.Schedule.from_cluster
             t.Schedule.cluster.(cp.Schedule.src_op));
      if cp.Schedule.to_cluster = cp.Schedule.from_cluster then
        add
          (D.error ~pass:"sched/copy-cluster" ~where:w
             "copy to its own cluster %d" cp.Schedule.to_cluster);
      if cp.Schedule.to_cluster < 0
         || cp.Schedule.to_cluster >= cfg.Config.n_clusters
      then
        add
          (D.error ~pass:"sched/copy-cluster" ~where:w
             "destination cluster %d outside [0, %d)" cp.Schedule.to_cluster
             cfg.Config.n_clusters);
      let ready =
        t.Schedule.start.(cp.Schedule.src_op) + latency cp.Schedule.src_op
      in
      if cp.Schedule.start < ready then
        add
          (D.error ~pass:"sched/copy-early" ~where:w
             "issued at %d before the producer's value exists at %d"
             cp.Schedule.start ready);
      (* Orphan: no cross-cluster register consumer in its destination. *)
      let feeds_someone =
        List.exists
          (fun (e : Edge.t) ->
            e.kind = Edge.Reg_flow
            && t.Schedule.cluster.(e.dst) = cp.Schedule.to_cluster
            && t.Schedule.cluster.(e.dst)
               <> t.Schedule.cluster.(cp.Schedule.src_op))
          (Ddg.succs ddg cp.Schedule.src_op)
      in
      if not feeds_someone then
        add
          (D.warn ~pass:"sched/orphan-copy" ~where:w
             "no consumer in cluster %d reads this copy"
             cp.Schedule.to_cluster))
    t.Schedule.copies;
  (* Coverage: every cross-cluster register consumer served by a timely
     copy — and how many serve it. *)
  List.iter
    (fun (e : Edge.t) ->
      if e.kind = Edge.Reg_flow then begin
        let cs = t.Schedule.cluster.(e.src)
        and cd = t.Schedule.cluster.(e.dst) in
        if cs <> cd then begin
          let ts = t.Schedule.start.(e.src)
          and td = t.Schedule.start.(e.dst) in
          let timely =
            List.filter
              (fun (cp : Schedule.copy) ->
                cp.Schedule.src_op = e.src
                && cp.Schedule.to_cluster = cd
                && cp.Schedule.start >= ts + latency e.src
                && td >= cp.Schedule.start + copy_lat - (t.Schedule.ii * e.distance))
              t.Schedule.copies
          in
          let w =
            Printf.sprintf "%s/edge n%d->n%d(flow,d%d)" where e.src e.dst
              e.distance
          in
          match timely with
          | [] ->
              add
                (D.error ~pass:"sched/copy-coverage" ~where:w
                   "cross-cluster consumer (clusters %d->%d) reached by no \
                    timely copy"
                   cs cd)
          | [ _ ] -> ()
          | several ->
              add
                (D.info ~pass:"sched/ambiguous-copy" ~where:w
                   "consumer reached by %d timely copies of the same value"
                   (List.length several))
        end
      end)
    (Ddg.edges ddg);
  List.rev !diags

(* Resource re-derivation — deliberately without {!Vliw_sched.Mrt}: flat
   count tables rebuilt from the placement and copy list alone. *)
let check_resources cfg ddg ~where (t : Schedule.t) =
  let ii = t.Schedule.ii in
  let n_cl = cfg.Config.n_clusters in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let fu = Array.init 3 (fun _ -> Array.make_matrix n_cl ii 0) in
  let issue = Array.make_matrix n_cl ii 0 in
  let class_index = function
    | Opcode.Int_fu -> 0
    | Opcode.Fp_fu -> 1
    | Opcode.Mem_fu -> 2
  in
  Array.iter
    (fun (o : Operation.t) ->
      let v = o.Operation.id in
      let c = t.Schedule.cluster.(v)
      and s = t.Schedule.start.(v) mod ii in
      let k = class_index (Opcode.fu_class o.Operation.opcode) in
      fu.(k).(c).(s) <- fu.(k).(c).(s) + 1;
      issue.(c).(s) <- issue.(c).(s) + 1)
    (Ddg.ops ddg);
  List.iter
    (fun (cp : Schedule.copy) ->
      let s = cp.Schedule.start mod ii in
      issue.(cp.Schedule.from_cluster).(s) <-
        issue.(cp.Schedule.from_cluster).(s) + 1)
    t.Schedule.copies;
  let limits =
    [|
      ("integer", cfg.Config.int_fus_per_cluster);
      ("floating-point", cfg.Config.fp_fus_per_cluster);
      ("memory", cfg.Config.mem_fus_per_cluster);
    |]
  in
  for c = 0 to n_cl - 1 do
    for s = 0 to ii - 1 do
      let w = Printf.sprintf "%s/cluster%d.cycle%d" where c s in
      Array.iteri
        (fun k (name, limit) ->
          if fu.(k).(c).(s) > limit then
            add
              (D.error ~pass:"sched/fu-capacity" ~where:w
                 "%d %s operations in a slot with %d %s FU(s)" fu.(k).(c).(s)
                 name limit name))
        limits;
      if issue.(c).(s) > cfg.Config.issue_width_per_cluster then
        add
          (D.error ~pass:"sched/issue-width" ~where:w
             "%d issues (copies included) exceed the %d-wide issue slot"
             issue.(c).(s) cfg.Config.issue_width_per_cluster)
    done
  done;
  (* Half-frequency register buses: a transfer starting at cycle c holds
     a bus during c .. c+occupancy-1; with II < occupancy the window
     wraps and charges a slot more than once (successive iterations'
     transfers are in flight simultaneously). *)
  let bus = Array.make ii 0 in
  List.iter
    (fun (cp : Schedule.copy) ->
      for k = 0 to cfg.Config.bus_occupancy - 1 do
        let s = (cp.Schedule.start + k) mod ii in
        bus.(s) <- bus.(s) + 1
      done)
    t.Schedule.copies;
  Array.iteri
    (fun s u ->
      if u > cfg.Config.n_reg_buses then
        add
          (D.error ~pass:"sched/bus-capacity" ~where:(Printf.sprintf "%s/cycle%d" where s)
             "%d concurrent transfers on %d half-frequency register buses" u
             cfg.Config.n_reg_buses))
    bus;
  List.rev !diags

let check_lifetimes ddg ~latency ~reg_limit ~where (t : Schedule.t) =
  let ii = t.Schedule.ii in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = Ddg.n_ops ddg in
  for u = 0 to n - 1 do
    let last_use = ref min_int in
    List.iter
      (fun (e : Edge.t) ->
        if e.kind = Edge.Reg_flow
           && t.Schedule.cluster.(e.dst) = t.Schedule.cluster.(u)
        then
          last_use :=
            max !last_use (t.Schedule.start.(e.dst) + (ii * e.distance)))
      (Ddg.succs ddg u);
    List.iter
      (fun (cp : Schedule.copy) ->
        if cp.Schedule.src_op = u then
          last_use := max !last_use cp.Schedule.start)
      t.Schedule.copies;
    if !last_use > min_int then begin
      let len = !last_use - t.Schedule.start.(u) in
      if len > ii then
        add
          (D.info ~pass:"sched/lifetime" ~where:(Printf.sprintf "%s/n%d" where u)
             "value lives %d cycles > II=%d: %d iteration instances \
              overlap (modulo expansion assumed)"
             len ii
             (((len - 1) / ii) + 1))
    end
  done;
  let pressure = Regpressure.max_live ddg ~latency t in
  Array.iteri
    (fun c live ->
      if live > reg_limit then
        add
          (D.warn ~pass:"sched/regpressure" ~where:(Printf.sprintf "%s/cluster%d" where c)
             "MaxLive %d exceeds the %d-register budget" live reg_limit))
    pressure;
  List.rev !diags

let verify cfg ddg ~latency ?(allow_cross_cluster_mem = false)
    ?(reg_limit = default_reg_limit) ?(where = "sched") (t : Schedule.t) =
  let range = check_range cfg ddg ~where t in
  if D.has_errors range then range
  else
    let validate =
      match
        Schedule.validate cfg ddg ~latency ~allow_cross_cluster_mem t
      with
      | Ok () -> []
      | Error msg -> [ D.error ~pass:"sched/validate" ~where "%s" msg ]
    in
    range @ validate
    @ check_dependences ddg ~latency ~allow_cross_cluster_mem ~where t
    @ check_copies cfg ddg ~latency ~where t
    @ check_resources cfg ddg ~where t
    @ check_lifetimes ddg ~latency ~reg_limit ~where t
