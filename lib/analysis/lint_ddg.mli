(** DDG linter: structural and semantic sanity of a loop body's
    data-dependence graph.

    Pass ids (family ["ddg/"]):
    - ["ddg/op-id"] — operation ids not dense [0..n-1] (error);
    - ["ddg/endpoint"] — edge endpoint outside [0, n) (error);
    - ["ddg/negative-distance"] — iteration distance < 0 (error);
    - ["ddg/absurd-distance"] — iteration distance > 64 (warn);
    - ["ddg/self-zero"] — self-edge with distance 0 (error);
    - ["ddg/duplicate-edge"] — two edges identical in (src, dst, kind,
      distance) (error);
    - ["ddg/redundant-edge"] — same (src, dst, kind) at a larger
      distance, subsumed by the tighter edge (warn);
    - ["ddg/unreachable"] — an operation with no incident edges in a
      multi-operation loop body (warn);
    - ["ddg/copy-opcode"] — a [Copy] opcode in a source DDG: copies are
      scheduler artefacts and never DDG nodes (error);
    - ["ddg/mem-descriptor"] — [Mem_access] inconsistent with the opcode
      class, or geometrically nonsensical (error);
    - ["ddg/mem-stride"] — stride not a multiple of the granularity on a
      direct access (info: legal, but interleaving-phase analysis is
      weaker for such streams);
    - ["ddg/zero-cycle"] — a zero-distance cycle with positive total
      latency: no II can schedule the loop (error);
    - ["ddg/recmii"] — {!Vliw_ir.Mii.rec_mii} disagrees with an
      independent reimplementation (Bellman-Ford positive-cycle
      feasibility, binary-searched per recurrence) (error).

    The raw entry point takes the operation array and edge list directly
    so corrupted graphs that {!Vliw_ir.Ddg.make} would reject (mutation
    tests, future frontends) can still be linted. *)

val max_sane_distance : int
(** Iteration distances above this are flagged as absurd (64: no unroll
    factor or recurrence in the suite comes close). *)

val lint_raw :
  ?latency:(int -> int) ->
  ?where:string ->
  Vliw_ir.Operation.t array ->
  Vliw_ir.Edge.t list ->
  Diagnostic.t list
(** Lint a graph given as raw parts.  [latency] defaults to the opcode
    default latency; pass the assigned latencies to lint a scheduled
    loop's DDG.  Semantic passes (zero-cycle, recmii) only run when the
    structural passes found no error. *)

val lint :
  ?latency:(int -> int) -> ?where:string -> Vliw_ir.Ddg.t -> Diagnostic.t list

val independent_rec_mii : Vliw_ir.Ddg.t -> latency:(int -> int) -> int
(** The linter's own RecMII: max over its own SCC decomposition of the
    smallest II accepted by Bellman-Ford positive-cycle detection.
    Exposed for tests.  @raise Invalid_argument on a zero-distance
    positive cycle. *)
