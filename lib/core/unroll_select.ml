module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Mem_access = Vliw_ir.Mem_access
module Operation = Vliw_ir.Operation

type strategy = No_unrolling | Unroll_times_n | Ouf_unrolling | Selective

let strategy_to_string = function
  | No_unrolling -> "no-unroll"
  | Unroll_times_n -> "unrollxN"
  | Ouf_unrolling -> "OUF"
  | Selective -> "selective"

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let individual_factor (cfg : Config.t) ~hit_rate (m : Mem_access.t) =
  let ni = Config.max_unroll cfg in
  if m.Mem_access.indirect || hit_rate <= 0.0
     || m.Mem_access.granularity > cfg.Config.interleaving_factor
  then None
  else
    let s = ((m.Mem_access.stride mod ni) + ni) mod ni in
    Some (ni / gcd ni s)

let ouf cfg ddg ~profile =
  let ni = Config.max_unroll cfg in
  let factor =
    Array.fold_left
      (fun acc (o : Operation.t) ->
        match (o.Operation.mem, Profile.get profile o.Operation.id) with
        | Some m, Some p -> (
            match individual_factor cfg ~hit_rate:p.Profile.hit_rate m with
            | Some u -> lcm acc u
            | None -> acc)
        | _ -> acc)
      1 (Ddg.ops ddg)
  in
  min factor ni

let candidate_factors cfg ddg ~profile strategy =
  match strategy with
  | No_unrolling -> [ 1 ]
  | Unroll_times_n -> [ cfg.Config.n_clusters ]
  | Ouf_unrolling -> [ ouf cfg ddg ~profile ]
  | Selective ->
      List.sort_uniq compare [ 1; cfg.Config.n_clusters; ouf cfg ddg ~profile ]

let estimated_cycles ~trip_count ~ii ~stage_count =
  (trip_count + stage_count - 1) * ii
