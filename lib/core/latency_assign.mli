(** Latency assignment for memory instructions (Section 4.3.1, Step 2).

    Every load starts at the largest latency (remote miss — or plain miss
    for the two-level BASE variant).  Then, one recurrence at a time
    (most II-constraining first), latencies of selectively chosen loads
    are lowered so that the recurrence no longer constrains the loop
    beyond its MII.  Each candidate change is scored with the benefit
    function  B = (oldII - newII) / (newSTALL - oldSTALL), where the
    stall estimates come from the profiled hit rate and local-access
    ratio.  Once a recurrence reaches the MII, remaining slack is given
    back to the last-changed instruction (its latency is raised until the
    recurrence II equals the MII exactly).

    Stores always keep their 1-cycle latency, as in the paper. *)

type mode =
  | Two_level of { hit : int; miss : int }
      (** BASE algorithm for a unified cache (also used for the
          multiVLIW, which has no remote *word* accesses) *)
  | Four_level
      (** interleaved cache: local/remote x hit/miss latencies from the
          configuration *)

val levels : Vliw_arch.Config.t -> mode -> int list
(** The latency ladder, descending (largest first). *)

val expected_stall :
  Vliw_arch.Config.t -> mode:mode -> Profile.op_profile -> lat:int -> float
(** E[max 0 (actual - lat)] over the access classes — the paper's
    newSTALL/oldSTALL estimate (reproduces the worked example's table). *)

val benefit :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  mode:mode ->
  profile:Profile.t ->
  latencies:int array ->
  recurrence:int list ->
  op:int ->
  to_lat:int ->
  float * float
(** [(delta_ii, delta_stall)] of lowering [op] to [to_lat] within
    [recurrence]; B is their ratio (infinite on a zero denominator). *)

val assign :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  mode:mode ->
  profile:Profile.t ->
  int array
(** The assigned latency of every operation (non-memory operations keep
    their opcode latency). *)

val target_mii :
  Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> mode:mode -> int
(** The loop MII if every load had the smallest latency of the ladder —
    the fixed point the reduction aims for. *)
