(** The complete compilation pipeline of the paper:
    unroll -> assign latencies -> order -> assign clusters & schedule,
    with the unrolling factor chosen by scheduling every candidate and
    keeping the fastest estimate (selective unrolling).

    The [profiler] callback stands for the profile run: given a
    (possibly unrolled) loop it returns hit rates and per-cluster access
    distributions measured on the *profile* data set
    ({!Vliw_workloads.Profiling} provides it). *)

type target =
  | Interleaved of { heuristic : [ `Ibc | `Ipbc ]; chains : bool }
      (** the word-interleaved cache processor; [chains = false] is the
          no-chains ablation *)
  | Unified of { slow : bool }  (** BASE algorithm, 1- or 5-cycle cache *)
  | Multivliw  (** coherent caches, scheduled like BASE with local
                   hit/miss latencies *)

type compiled = {
  source : Vliw_ir.Loop.t;
  target : target;
  unroll_factor : int;
  loop : Vliw_ir.Loop.t;  (** the unrolled loop actually scheduled *)
  profile : Profile.t;  (** profile of the unrolled loop's operations *)
  latencies : int array;
  chains : Chains.t;
  schedule : Vliw_sched.Schedule.t;
  estimated_cycles : int;
  considered : (int * int) list;
      (** (unroll factor, estimated Texec) of every candidate the
          selective search scheduled, ascending factor order — the
          provenance of [unroll_factor].  Empty when the record was built
          outside {!compile} (e.g. for a single forced factor). *)
  bus_window_rejections : int;
      (** How many register-bus window probes the whole selective search
          rejected ({!Vliw_sched.Mrt.bus_rejections} delta across every
          candidate factor and II attempt).  Zero proves the schedule is
          byte-identical under any larger [n_reg_buses] — the bus check
          is the pipeline's only reader of the bus count — which is the
          design-space sweep's sound pruning condition.  Zero (vacuously)
          when the record was built outside {!compile}. *)
}

exception Scheduling_failed of string

val check_hook : (Vliw_arch.Config.t -> compiled -> unit) ref
(** Debug hook invoked on every {!compile} result before it is returned
    (default: no-op).  [Vliw_analysis.Analyze.install_check_hook] points
    it at the linter + deep schedule verifier — the CLI's [--check]
    flag.  The installed function must be thread-safe: compiles run
    concurrently on the experiment engine's worker domains. *)

val mode_of_target : Vliw_arch.Config.t -> target -> Latency_assign.mode

val allow_cross_cluster_mem : target -> bool
(** True for architectures whose hardware orders memory accesses
    globally (unified cache, multiVLIW coherence) and for the no-chains
    ablation. *)

val target_to_string : target -> string

val compile :
  Vliw_arch.Config.t ->
  target:target ->
  strategy:Unroll_select.strategy ->
  profiler:(Vliw_ir.Loop.t -> Profile.t) ->
  Vliw_ir.Loop.t ->
  compiled
(** @raise Scheduling_failed if no candidate factor schedules (does not
    happen for well-formed loops — the engine escalates the II). *)
