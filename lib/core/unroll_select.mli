(** Unrolling-factor computation and selective unrolling (Section 4.3.1,
    Step 1).

    A memory instruction with known stride S (bytes), profiled hit rate
    > 0 and granularity <= the interleaving factor gets the individual
    factor  Ui = NI / gcd(NI, S mod NI)  with NI = clusters x interleaving;
    the loop's optimal unrolling factor (OUF) is lcm(Ui) capped at NI.
    After OUF unrolling every such instruction has a stride multiple of
    NI, i.e. it accesses a single cluster in every iteration.

    Selective unrolling schedules the loop with factors {1, N, OUF} and
    keeps the one minimizing estimated execution time
    (avg_iterations + SC - 1) x II. *)

type strategy = No_unrolling | Unroll_times_n | Ouf_unrolling | Selective

val strategy_to_string : strategy -> string

val individual_factor :
  Vliw_arch.Config.t -> hit_rate:float -> Vliw_ir.Mem_access.t -> int option
(** [None] when the instruction does not qualify (indirect access, zero
    hit rate, or granularity above the interleaving factor). *)

val ouf : Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> profile:Profile.t -> int
(** lcm of the individual factors, capped at N x I; 1 if no instruction
    qualifies. *)

val candidate_factors :
  Vliw_arch.Config.t -> Vliw_ir.Ddg.t -> profile:Profile.t -> strategy -> int list
(** Factors the strategy considers, deduplicated, ascending. *)

val estimated_cycles : trip_count:int -> ii:int -> stage_count:int -> int
(** The paper's Texec formula for one unrolled loop body. *)
