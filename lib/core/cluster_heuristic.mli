(** Cluster-assignment heuristics (Section 4.3.1, Step 4; Section 4.3.2).

    - [All_free] — the BASE behaviour: every instruction goes to the
      cluster minimizing register-to-register communication, balance as
      tie-break.  Used for the unified-cache processor and (as "IBC") for
      the multiVLIW, whose coherence protocol needs no chains.
    - [Ibc] — Interleaved Build Chains: memory instructions are placed
      like any other, but the moment the *first* instruction of a
      memory-dependent chain is scheduled, the rest of its chain is
      pinned to that cluster.
    - [Ipbc] — Interleaved Pre-Build Chains: chains are resolved before
      scheduling; every chain (and hence every memory instruction) is
      pinned to its average preferred cluster, computed from the profiled
      per-cluster access counts of its members.
    - [Preferred_no_chains] — the paper's no-chains ablation: each memory
      instruction is pinned to its own preferred cluster, correctness
      constraints dropped. *)

type policy =
  | All_free
  | Ibc of Chains.t
  | Ipbc of Chains.t * Profile.t
  | Preferred_no_chains of Profile.t

val hooks : Vliw_ir.Ddg.t -> policy -> Vliw_sched.Engine.hooks

val chain_cluster : Chains.t -> Profile.t -> int -> int
(** The average preferred cluster of a chain: the cluster with the
    largest access-weighted vote over the chain's members. *)

val chain_votes : Chains.t -> Profile.t -> int -> float array
(** The per-cluster access-weighted vote vector {!chain_cluster} reduces
    with argmax — the profile evidence behind an IPBC pin, exposed so
    the attribution analyzer can report how contested the pin was and
    what the runner-up cluster would have been. *)
