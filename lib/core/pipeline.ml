module Config = Vliw_arch.Config
module Loop = Vliw_ir.Loop
module Engine = Vliw_sched.Engine
module Schedule = Vliw_sched.Schedule

type target =
  | Interleaved of { heuristic : [ `Ibc | `Ipbc ]; chains : bool }
  | Unified of { slow : bool }
  | Multivliw

type compiled = {
  source : Loop.t;
  target : target;
  unroll_factor : int;
  loop : Loop.t;
  profile : Profile.t;
  latencies : int array;
  chains : Chains.t;
  schedule : Schedule.t;
  estimated_cycles : int;
  considered : (int * int) list;
  bus_window_rejections : int;
}

exception Scheduling_failed of string

let check_hook : (Config.t -> compiled -> unit) ref = ref (fun _ _ -> ())

let mode_of_target (cfg : Config.t) = function
  | Interleaved _ -> Latency_assign.Four_level
  | Unified { slow } ->
      let hit =
        if slow then cfg.Config.lat_unified_slow else cfg.Config.lat_unified_fast
      in
      Latency_assign.Two_level { hit; miss = hit + cfg.Config.lat_next_level }
  | Multivliw ->
      Latency_assign.Two_level
        { hit = cfg.Config.lat_local_hit; miss = cfg.Config.lat_local_miss }

let allow_cross_cluster_mem = function
  | Interleaved { chains; _ } -> not chains
  | Unified _ | Multivliw -> true

let target_to_string = function
  | Interleaved { heuristic = `Ibc; chains = true } -> "interleaved/IBC"
  | Interleaved { heuristic = `Ipbc; chains = true } -> "interleaved/IPBC"
  | Interleaved { heuristic = `Ibc; chains = false } ->
      "interleaved/IBC-nochains"
  | Interleaved { heuristic = `Ipbc; chains = false } ->
      "interleaved/IPBC-nochains"
  | Unified { slow = false } -> "unified/L1"
  | Unified { slow = true } -> "unified/L5"
  | Multivliw -> "multiVLIW"

let policy_of_target target ~chains ~profile =
  match target with
  | Interleaved { heuristic = `Ibc; chains = true } ->
      Cluster_heuristic.Ibc chains
  | Interleaved { heuristic = `Ipbc; chains = true } ->
      Cluster_heuristic.Ipbc (chains, profile)
  | Interleaved { heuristic = `Ipbc; chains = false } ->
      Cluster_heuristic.Preferred_no_chains profile
  | Multivliw ->
      (* The paper schedules the multiVLIW with the IBC heuristic: its
         coherence protocol makes cross-cluster memory dependences legal,
         but keeping a chain together avoids MSI ping-pong. *)
      Cluster_heuristic.Ibc chains
  | Interleaved { heuristic = `Ibc; chains = false } | Unified _ ->
      Cluster_heuristic.All_free

let compile_factor cfg ~target ~profiler ~source ~base_profile factor =
  (* One deterministic work unit per candidate factor: a request deadline
     cancels the selective search between factors, never mid-schedule. *)
  Vliw_parallel.Cancel.tick ~stage:("compile " ^ source.Loop.name) 1;
  let loop = Loop.unrolled source ~factor in
  (* Unrolling by 1 shares the source's DDG and trip count, so its
     profile is the base profile already in hand — re-profiling it would
     repeat the most expensive phase of a selective compile. *)
  let profile = if factor = 1 then base_profile else profiler loop in
  let mode = mode_of_target cfg target in
  let latencies =
    Latency_assign.assign cfg loop.Loop.ddg ~mode ~profile
  in
  let chains = Chains.build loop.Loop.ddg in
  let policy = policy_of_target target ~chains ~profile in
  let hooks = Cluster_heuristic.hooks loop.Loop.ddg policy in
  match
    Engine.schedule cfg loop.Loop.ddg
      ~latency:(fun i -> latencies.(i))
      ~hooks
      ~allow_cross_cluster_mem:(allow_cross_cluster_mem target)
      ()
  with
  | None ->
      raise
        (Scheduling_failed
           (Printf.sprintf "loop %s, unroll factor %d" source.Loop.name factor))
  | Some schedule ->
      let estimated_cycles =
        Unroll_select.estimated_cycles ~trip_count:loop.Loop.trip_count
          ~ii:schedule.Schedule.ii
          ~stage_count:(Schedule.stage_count schedule)
      in
      {
        source;
        target;
        unroll_factor = factor;
        loop;
        profile;
        latencies;
        chains;
        schedule;
        estimated_cycles;
        considered = [];
        bus_window_rejections = 0;
      }

let compile cfg ~target ~strategy ~profiler source =
  (* Delta of the per-domain bus-window rejection counter around the
     WHOLE selective search — every candidate factor, every II attempt,
     every latency-assignment probe.  Zero means the search never
     branched on the bus count, so the result is provably identical
     under any larger [n_reg_buses] (see Mrt.bus_rejections); the
     design-space sweep prunes on exactly this. *)
  let rejections0 = Vliw_sched.Mrt.bus_rejections () in
  let base_profile = profiler source in
  let factors =
    Unroll_select.candidate_factors cfg source.Loop.ddg ~profile:base_profile
      strategy
  in
  let candidates =
    List.map (compile_factor cfg ~target ~profiler ~source ~base_profile) factors
  in
  match candidates with
  | [] -> raise (Scheduling_failed source.Loop.name)
  | first :: rest ->
      (* Candidates come in ascending factor order; on an exact Texec tie
         the larger factor wins — its locality is free. *)
      let best =
        List.fold_left
          (fun best c ->
            if c.estimated_cycles <= best.estimated_cycles then c else best)
          first rest
      in
      let best =
        {
          best with
          considered =
            List.map (fun c -> (c.unroll_factor, c.estimated_cycles)) candidates;
          bus_window_rejections =
            Vliw_sched.Mrt.bus_rejections () - rejections0;
        }
      in
      !check_hook cfg best;
      best
