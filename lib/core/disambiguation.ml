module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Mem_access = Vliw_ir.Mem_access
module Operation = Vliw_ir.Operation

(* Dependence between two accesses of the same symbol.  [a] is the
   earlier operation in program order. *)
let analyse (a : Mem_access.t) (b : Mem_access.t) =
  if a.Mem_access.symbol <> b.Mem_access.symbol then `Independent
  else if a.Mem_access.indirect || b.Mem_access.indirect then `Unresolved
  else if a.Mem_access.stride <> b.Mem_access.stride then `Unresolved
  else if a.Mem_access.stride = 0 then
    (* Two scalars: conflict iff their element ranges overlap. *)
    if
      a.Mem_access.offset < b.Mem_access.offset + b.Mem_access.granularity
      && b.Mem_access.offset < a.Mem_access.offset + a.Mem_access.granularity
    then `Conflict 0
    else `Independent
  else begin
    let s = a.Mem_access.stride in
    let delta = b.Mem_access.offset - a.Mem_access.offset in
    (* a at iteration i+d touches b's iteration-i element when
       o_a + s*(i+d) = o_b + s*i, i.e. s*d = delta. *)
    if delta mod s = 0 then `Conflict (delta / s)
    else if
      (* Unequal phases can still overlap when elements are wider than
         the phase gap. *)
      abs (delta mod s) < max a.Mem_access.granularity b.Mem_access.granularity
    then `Unresolved
    else `Independent
  end

let kind_of ~first_is_store ~second_is_store =
  match (first_is_store, second_is_store) with
  | true, false -> Edge.Mem_flow
  | false, true -> Edge.Mem_anti
  | true, true -> Edge.Mem_out
  | false, false -> assert false

let dependences ddg =
  let mem_ops = Ddg.memory_ops ddg in
  let already_connected a b =
    List.exists
      (fun (e : Edge.t) -> Edge.is_memory_kind e.kind && e.dst = b)
      (Ddg.succs ddg a)
    || List.exists
         (fun (e : Edge.t) -> Edge.is_memory_kind e.kind && e.dst = a)
         (Ddg.succs ddg b)
  in
  let edges = ref [] in
  let add e = edges := e :: !edges in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            (* a < b: a is earlier in program order. *)
            let oa = Ddg.op ddg a and ob = Ddg.op ddg b in
            let sa = Operation.is_store oa and sb = Operation.is_store ob in
            if (sa || sb) && not (already_connected a b) then
              let ma = Option.get oa.Operation.mem
              and mb = Option.get ob.Operation.mem in
              match analyse ma mb with
              | `Independent -> ()
              | `Unresolved ->
                  add (Edge.make ~kind:Edge.Mem_unresolved ~src:a ~dst:b ())
              | `Conflict d ->
                  (* d > 0: the later iteration of [a] touches [b]'s
                     element -> loop-carried b -> a; d <= 0: a -> b with
                     distance -d. *)
                  if d > 0 then
                    add
                      (Edge.make
                         ~kind:(kind_of ~first_is_store:sb ~second_is_store:sa)
                         ~distance:d ~src:b ~dst:a ())
                  else
                    add
                      (Edge.make
                         ~kind:(kind_of ~first_is_store:sa ~second_is_store:sb)
                         ~distance:(-d) ~src:a ~dst:b ()))
          rest;
        pairs rest
  in
  pairs mem_ops;
  List.rev !edges

let augment ddg =
  match dependences ddg with
  | [] -> ddg
  | extra -> Ddg.make (Ddg.ops ddg) (Ddg.edges ddg @ extra)
