module Ddg = Vliw_ir.Ddg
module Operation = Vliw_ir.Operation
module Engine = Vliw_sched.Engine

type policy =
  | All_free
  | Ibc of Chains.t
  | Ipbc of Chains.t * Profile.t
  | Preferred_no_chains of Profile.t

let chain_votes chains profile c =
  Profile.weighted_accesses profile (Chains.members chains c)

let chain_cluster chains profile c =
  let votes = chain_votes chains profile c in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > votes.(!best) then best := i) votes;
  !best

let hooks ddg = function
  | All_free -> Engine.default_hooks
  | Ibc chains ->
      let pinned = Array.make (Chains.n_chains chains) None in
      {
        Engine.reset = (fun () -> Array.fill pinned 0 (Array.length pinned) None);
        choice =
          (fun v ->
            match Chains.chain_of chains v with
            | None -> Engine.Free
            | Some c -> (
                match pinned.(c) with
                | Some cl -> Engine.Forced cl
                | None -> Engine.Free));
        on_scheduled =
          (fun ~op ~cluster ->
            match Chains.chain_of chains op with
            | Some c when pinned.(c) = None -> pinned.(c) <- Some cluster
            | Some _ | None -> ());
      }
  | Ipbc (chains, profile) ->
      let resolved =
        Array.init (Chains.n_chains chains) (chain_cluster chains profile)
      in
      {
        Engine.default_hooks with
        choice =
          (fun v ->
            match Chains.chain_of chains v with
            | None -> Engine.Free
            | Some c -> Engine.Forced resolved.(c));
      }
  | Preferred_no_chains profile ->
      {
        Engine.default_hooks with
        choice =
          (fun v ->
            if Operation.is_memory (Ddg.op ddg v) then
              match Profile.get profile v with
              | Some p -> Engine.Forced (Profile.preferred_cluster p)
              | None -> Engine.Free
            else Engine.Free);
      }
