(** Compile-time memory disambiguation.

    The paper relies on IMPACT's memory disambiguation [Cheng 2000] to
    produce the memory-dependence edges its chains are built from; this
    module is the equivalent substrate for our IR.  For every pair of
    memory operations where at least one is a store:

    - different symbols never alias (symbols are distinct objects);
    - equal-stride direct accesses alias iff their offset difference is a
      multiple of the stride (the dependence distance) and, when it is
      not, they provably never conflict — no edge;
    - unequal strides, zero strides with overlapping element ranges, and
      indirect accesses on the same symbol cannot be disambiguated: a
      conservative [Mem_unresolved] edge is added, exactly the paper's
      "when the compiler is not able to disambiguate memory references
      it always stays on the conservative side".

    True dependences get their precise kind: store->load [Mem_flow],
    load->store [Mem_anti], store->store [Mem_out], directed from the
    earlier operation (program order = operation id) with the computed
    iteration distance. *)

val dependences : Vliw_ir.Ddg.t -> Vliw_ir.Edge.t list
(** The memory-dependence edges implied by the access descriptors
    (excluding pairs already connected by an explicit memory edge). *)

val augment : Vliw_ir.Ddg.t -> Vliw_ir.Ddg.t
(** The same DDG with {!dependences} added. *)
