(** Memory-dependent chains (Section 4.3.2 of the paper).

    A chain is a connected component of the undirected graph whose
    vertices are the loop's memory operations and whose edges are the
    memory-dependence edges (true dependences *and* the conservative
    edges added when disambiguation fails).  All operations of a chain
    must be scheduled in the same cluster: the hardware serializes memory
    accesses within a cluster, which is what guarantees correctness. *)

type t

val build : Vliw_ir.Ddg.t -> t

val chain_of : t -> int -> int option
(** Chain index of a memory operation; [None] for non-memory ops. *)

val chains : t -> int list list
(** All chains (including singletons), each a list of operation ids. *)

val members : t -> int -> int list
(** Operations of one chain. *)

val n_chains : t -> int

val longest : t -> int
(** Size of the largest chain (unrolling makes chains longer — one of
    the paper's reasons for *selective* unrolling). *)
