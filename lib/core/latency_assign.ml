module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Mii = Vliw_ir.Mii
module Operation = Vliw_ir.Operation
module Scc = Vliw_ir.Scc
module Resources = Vliw_sched.Resources

type mode = Two_level of { hit : int; miss : int } | Four_level

let levels (cfg : Config.t) = function
  | Two_level { hit; miss } -> [ miss; hit ]
  | Four_level ->
      [
        cfg.Config.lat_remote_miss;
        cfg.Config.lat_local_miss;
        cfg.Config.lat_remote_hit;
        cfg.Config.lat_local_hit;
      ]

let class_probabilities ~mode (cfg : Config.t) (p : Profile.op_profile) =
  let h = p.Profile.hit_rate in
  match mode with
  | Two_level { hit; miss } -> [ (h, hit); (1.0 -. h, miss) ]
  | Four_level ->
      let l = Profile.local_ratio p in
      [
        (l *. h, cfg.Config.lat_local_hit);
        ((1.0 -. l) *. h, cfg.Config.lat_remote_hit);
        (l *. (1.0 -. h), cfg.Config.lat_local_miss);
        ((1.0 -. l) *. (1.0 -. h), cfg.Config.lat_remote_miss);
      ]

let expected_stall cfg ~mode p ~lat =
  List.fold_left
    (fun acc (prob, class_lat) ->
      acc +. (prob *. float_of_int (max 0 (class_lat - lat))))
    0.0
    (class_probabilities ~mode cfg p)

let is_load ddg i = Operation.is_load (Ddg.op ddg i)

let initial_latencies cfg ddg ~mode =
  let top = List.hd (levels cfg mode) in
  Array.init (Ddg.n_ops ddg) (fun i ->
      if is_load ddg i then top else Ddg.default_latency ddg i)

let optimistic_latencies cfg ddg ~mode =
  let levels = levels cfg mode in
  let bottom = List.nth levels (List.length levels - 1) in
  Array.init (Ddg.n_ops ddg) (fun i ->
      if is_load ddg i then bottom else Ddg.default_latency ddg i)

let target_mii cfg ddg ~mode =
  let lat = optimistic_latencies cfg ddg ~mode in
  Resources.mii cfg ddg ~latency:(fun i -> lat.(i))

let solve_with solver latencies = Mii.solve solver ~latency:(fun i -> latencies.(i))

let benefit cfg ddg ~mode ~profile ~latencies ~recurrence ~op ~to_lat =
  let solver = Mii.solver ddg ~nodes:recurrence in
  let old_ii = solve_with solver latencies in
  let saved = latencies.(op) in
  latencies.(op) <- to_lat;
  let new_ii = solve_with solver latencies in
  latencies.(op) <- saved;
  match Profile.get profile op with
  | None -> invalid_arg "Latency_assign.benefit: not a memory operation"
  | Some p ->
      let d_stall =
        expected_stall cfg ~mode p ~lat:to_lat
        -. expected_stall cfg ~mode p ~lat:saved
      in
      (float_of_int (old_ii - new_ii), d_stall)

(* Raise [op]'s latency as far as the recurrence tolerates at [target]
   ("the last memory instruction whose latency has been changed is
   increased so that the II of the recurrence is equal to the MII"). *)
let restore_slack ddg ~solver latencies ~recurrence ~op ~target =
  let fits lat =
    let saved = latencies.(op) in
    latencies.(op) <- lat;
    let ok =
      Mii.solve_feasible solver ~latency:(fun i -> latencies.(i)) ~ii:target
    in
    latencies.(op) <- saved;
    ok
  in
  let total_distance =
    (* Upper bound on useful slack: raising latency by target*D cannot
       keep the recurrence II at [target] beyond this. *)
    let n = Ddg.n_ops ddg in
    let in_set = Array.make n false in
    List.iter (fun v -> in_set.(v) <- true) recurrence;
    List.fold_left
      (fun acc (e : Edge.t) ->
        if in_set.(e.src) && in_set.(e.dst) then acc + e.distance else acc)
      0 (Ddg.edges ddg)
  in
  let lo = latencies.(op) and hi = latencies.(op) + (target * (total_distance + 1)) in
  (* Largest feasible latency in [lo, hi]; feasibility is downward closed. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if fits mid then search mid hi else search lo (mid - 1)
  in
  if fits lo then latencies.(op) <- search lo hi

let assign cfg ddg ~mode ~profile =
  let ladder = levels cfg mode in
  let latencies = initial_latencies cfg ddg ~mode in
  let target = target_mii cfg ddg ~mode in
  let recurrences =
    Scc.recurrences ddg
    |> List.map (fun nodes ->
           let solver = Mii.solver ddg ~nodes in
           (solve_with solver latencies, solver, nodes))
    |> List.sort (fun (a, _, na) (b, _, nb) ->
           if a <> b then compare b a
           else compare (List.fold_left min max_int na)
                  (List.fold_left min max_int nb))
    |> List.map (fun (_, s, nodes) -> (s, nodes))
  in
  let reduce (solver, recurrence) =
    let loads =
      List.filter
        (fun v -> is_load ddg v && Option.is_some (Profile.get profile v))
        recurrence
    in
    if loads = [] then ()
    else begin
      let last_changed = ref None in
      let continue = ref true in
      (* The loop only ever lowers latencies, so the last solved II stays
         a feasible upper bound for every candidate probe — carrying it
         (and the committed candidate's II) keeps each probe's binary
         search short instead of restarting from the worst-case bound. *)
      let cur_ii = ref (solve_with solver latencies) in
      while !continue && !cur_ii > target do
        let old_ii = !cur_ii in
        (* Best (B, delta_ii) over every load x lower-level candidate. *)
        let best = ref None in
        List.iter
          (fun m ->
            let saved = latencies.(m) in
            let p = Option.get (Profile.get profile m) in
            let old_stall = expected_stall cfg ~mode p ~lat:saved in
            List.iter
              (fun l' ->
                if l' < saved then begin
                  latencies.(m) <- l';
                  let new_ii =
                    Mii.solve solver ~upper_feasible:old_ii
                      ~latency:(fun i -> latencies.(i))
                  in
                  latencies.(m) <- saved;
                  let d_ii = float_of_int (old_ii - new_ii) in
                  let d_stall =
                    expected_stall cfg ~mode p ~lat:l' -. old_stall
                  in
                  let b =
                    if d_stall <= 1e-9 then infinity else d_ii /. d_stall
                  in
                  let key = (b, d_ii, -m, -l') in
                  match !best with
                  | Some (bk, _, _, _) when bk >= key -> ()
                  | _ -> best := Some (key, m, l', new_ii)
                end)
              ladder)
          loads;
        match !best with
        | None -> continue := false
        | Some (_, m, l', new_ii) ->
            latencies.(m) <- l';
            last_changed := Some m;
            cur_ii := new_ii
      done;
      match !last_changed with
      | Some m when !cur_ii < target ->
          restore_slack ddg ~solver latencies ~recurrence ~op:m ~target
      | Some _ | None -> ()
    end
  in
  List.iter reduce recurrences;
  latencies
