module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Operation = Vliw_ir.Operation
module Schedule = Vliw_sched.Schedule

let attraction_benefit (p : Profile.op_profile) ~assigned_cluster =
  let remote_fraction =
    if assigned_cluster < Array.length p.Profile.cluster_fractions then
      1.0 -. p.Profile.cluster_fractions.(assigned_cluster)
    else 1.0
  in
  float_of_int p.Profile.accesses *. p.Profile.hit_rate *. remote_fraction

let attractable (cfg : Config.t) ddg ~profile ~(schedule : Schedule.t) ?k () =
  let k = Option.value ~default:(max 1 (cfg.Config.ab_entries / 2)) k in
  let n = Ddg.n_ops ddg in
  let scored = ref [] in
  for i = 0 to n - 1 do
    if Operation.is_load (Ddg.op ddg i) then
      match Profile.get profile i with
      | Some p ->
          let b =
            attraction_benefit p ~assigned_cluster:schedule.Schedule.cluster.(i)
          in
          if b > 0.0 then scored := (b, i) :: !scored
      | None -> ()
  done;
  let flags = Array.make n false in
  !scored
  |> List.sort (fun (b1, i1) (b2, i2) ->
         if b1 <> b2 then compare b2 b1 else compare i1 i2)
  |> List.filteri (fun rank _ -> rank < k)
  |> List.iter (fun (_, i) -> flags.(i) <- true);
  flags
