(** Profiling information for memory operations — what the paper obtains
    by running the benchmark on the *profile data set*: hit rates and the
    distribution of each operation's accesses over the clusters (from
    which the preferred cluster and the local-access ratio derive). *)

type op_profile = {
  hit_rate : float;  (** profiled cache hit rate in [0, 1] *)
  cluster_fractions : float array;
      (** fraction of the operation's accesses homed at each cluster;
          sums to 1 *)
  accesses : int;  (** dynamic access count in the profile run *)
}

type t = op_profile option array
(** Indexed by operation id; [None] for non-memory operations. *)

val make_op :
  hit_rate:float -> cluster_fractions:float array -> accesses:int -> op_profile
(** @raise Invalid_argument if the hit rate is outside [0, 1]. *)

val empty : n_ops:int -> t

val preferred_cluster : op_profile -> int
(** Cluster receiving the largest access fraction (lowest id on ties). *)

val distribution : op_profile -> float
(** The paper's "distribution of the preferred cluster information":
    the largest per-cluster fraction — 1 when concentrated, 1/N when
    equally spread. *)

val local_ratio : op_profile -> float
(** Expected ratio of local accesses if the operation is scheduled in its
    preferred cluster (= {!distribution}). *)

val get : t -> int -> op_profile option
val weighted_accesses : t -> int list -> float array
(** Sum of per-cluster access counts over a set of operations — used to
    pick a chain's "average preferred cluster". *)
