module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Operation = Vliw_ir.Operation

type t = { chain : int array; groups : int list array }

(* Union-find over operation ids, restricted to memory operations. *)
let build ddg =
  let n = Ddg.n_ops ddg in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter
    (fun (e : Edge.t) -> if Edge.is_memory_kind e.kind then union e.src e.dst)
    (Ddg.edges ddg);
  let chain = Array.make n (-1) in
  let root_to_chain = Hashtbl.create 16 in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if Operation.is_memory (Ddg.op ddg i) then begin
      let r = find i in
      let c =
        match Hashtbl.find_opt root_to_chain r with
        | Some c -> c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add root_to_chain r c;
            c
      in
      chain.(i) <- c
    end
  done;
  let groups = Array.make !next [] in
  for i = n - 1 downto 0 do
    let c = chain.(i) in
    if c >= 0 then groups.(c) <- i :: groups.(c)
  done;
  { chain; groups }

let chain_of t i = if t.chain.(i) < 0 then None else Some t.chain.(i)
let chains t = Array.to_list t.groups
let members t c = t.groups.(c)
let n_chains t = Array.length t.groups
let longest t = Array.fold_left (fun acc g -> max acc (List.length g)) 0 t.groups
