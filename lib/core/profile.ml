type op_profile = {
  hit_rate : float;
  cluster_fractions : float array;
  accesses : int;
}

type t = op_profile option array

let make_op ~hit_rate ~cluster_fractions ~accesses =
  if hit_rate < 0.0 || hit_rate > 1.0 then
    invalid_arg "Profile.make_op: hit rate outside [0, 1]";
  { hit_rate; cluster_fractions; accesses }

let empty ~n_ops = Array.make n_ops None

let preferred_cluster p =
  let best = ref 0 in
  Array.iteri
    (fun i f -> if f > p.cluster_fractions.(!best) then best := i)
    p.cluster_fractions;
  !best

let distribution p = Array.fold_left max 0.0 p.cluster_fractions
let local_ratio = distribution
let get (t : t) i = t.(i)

let weighted_accesses (t : t) ops =
  let n_clusters =
    List.fold_left
      (fun acc i ->
        match t.(i) with
        | Some p -> max acc (Array.length p.cluster_fractions)
        | None -> acc)
      1 ops
  in
  let totals = Array.make n_clusters 0.0 in
  List.iter
    (fun i ->
      match t.(i) with
      | Some p ->
          Array.iteri
            (fun c f ->
              totals.(c) <- totals.(c) +. (f *. float_of_int p.accesses))
            p.cluster_fractions
      | None -> ())
    ops;
  totals
