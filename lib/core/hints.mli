(** Compiler "attractable" hints (Section 5.2, last paragraph).

    When a loop schedules more remote-access instructions into one
    cluster than the Attraction Buffer can hold, attracting everything
    thrashes the buffer.  The compiler scores each load by the stall
    reduction it can expect from attraction and marks only the top K as
    attractable, with K bounded by the buffer capacity. *)

val attraction_benefit :
  Profile.op_profile -> assigned_cluster:int -> float
(** Expected remote hits per profile run: accesses x hit-rate x fraction
    of references not homed at the assigned cluster.  Remote *hits* are
    what attraction converts into local hits. *)

val attractable :
  Vliw_arch.Config.t ->
  Vliw_ir.Ddg.t ->
  profile:Profile.t ->
  schedule:Vliw_sched.Schedule.t ->
  ?k:int ->
  unit ->
  bool array
(** Per-operation flag; [k] defaults to half the configured buffer entry
    count — a strided load keeps about two subblocks in flight (the one
    it walks and the one it is entering), so K = entries/2 instructions
    is what fits without overflow.  Loads only — stores do not attract
    data in this design. *)
