module Config = Vliw_arch.Config
module Set_assoc = Vliw_arch.Set_assoc
module Ddg = Vliw_ir.Ddg
module Loop = Vliw_ir.Loop
module Operation = Vliw_ir.Operation
module Profile = Vliw_core.Profile

let iteration_cap = 4096

(* Like the executor, the profiler walks trip_count x mem-ops accesses,
   so its inner loop runs on flat per-op arrays and the staged
   [Layout.addr_fn] plan — no per-access closure, [Ddg.op] lookup or
   symbol hashing. *)
let profile_loop (cfg : Config.t) layout (loop : Loop.t) =
  let ddg = loop.Loop.ddg in
  let n = Ddg.n_ops ddg in
  let mem_ops = Ddg.memory_ops ddg in
  let n_blocks = cfg.Config.cache_size / cfg.Config.block_size in
  let tags =
    Set_assoc.create
      ~sets:(n_blocks / cfg.Config.associativity)
      ~ways:cfg.Config.associativity
  in
  let hits = Array.make n 0 in
  let counts = Array.make n 0 in
  let clusters = Array.make_matrix n cfg.Config.n_clusters 0 in
  let iters = min loop.Loop.trip_count iteration_cap in
  let i_factor = cfg.Config.interleaving_factor in
  let ops = Array.of_list mem_ops in
  let nm = Array.length ops in
  let parts = Array.make nm 1 in
  Array.iteri
    (fun k op ->
      let granularity =
        match (Ddg.op ddg op).Operation.mem with
        | Some m -> m.Vliw_ir.Mem_access.granularity
        | None -> i_factor
      in
      parts.(k) <- max 1 ((granularity + i_factor - 1) / i_factor))
    ops;
  let addr_of = Layout.addr_fn layout ddg in
  for iter = 0 to iters - 1 do
    for k = 0 to nm - 1 do
      let op = ops.(k) in
      let addr = addr_of ~op ~iter in
      let block = Config.block_of_addr cfg addr in
      if Set_assoc.lookup tags block then hits.(op) <- hits.(op) + 1
      else ignore (Set_assoc.insert tags block);
      for p = 1 to parts.(k) - 1 do
        let bp = Config.block_of_addr cfg (addr + (p * i_factor)) in
        if not (Set_assoc.lookup tags bp) then ignore (Set_assoc.insert tags bp)
      done;
      counts.(op) <- counts.(op) + 1;
      let c = Config.cluster_of_addr cfg addr in
      clusters.(op).(c) <- clusters.(op).(c) + 1
    done
  done;
  let profile = Profile.empty ~n_ops:n in
  List.iter
    (fun op ->
      let total = max 1 counts.(op) in
      let fractions =
        Array.map (fun c -> float_of_int c /. float_of_int total) clusters.(op)
      in
      profile.(op) <-
        Some
          (Profile.make_op
             ~hit_rate:(float_of_int hits.(op) /. float_of_int total)
             ~cluster_fractions:fractions ~accesses:counts.(op)))
    mem_ops;
  profile

let profiler = profile_loop
