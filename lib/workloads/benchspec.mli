(** One benchmark of the suite: a named set of loop kernels.

    The kernels' modulo-scheduled loops stand for the ~80% of the
    dynamic instruction stream the paper modulo-schedules; each loop
    carries a weight for the workload-balance weighted mean. *)

type t = {
  name : string;
  description : string;
  kernels : Kernel.spec list;
}

val loops : t -> Vliw_ir.Loop.t list

val dominant_size : t -> int * float
(** (granularity in bytes, share of dynamic memory accesses) of the most
    common access size — the "Main data size" column of Table 1. *)

val indirect_share : t -> float
(** Fraction of dynamic memory accesses that are indirect. *)

val n_memory_refs : t -> int
