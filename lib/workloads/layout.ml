module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Mem_access = Vliw_ir.Mem_access
module Operation = Vliw_ir.Operation

type run = Profile_run | Execution_run

type t = {
  cfg : Config.t;
  aligned : bool;
  run : run;
  seed : int;
  bases : (string, int) Hashtbl.t;
}

let create cfg ~aligned ~run ~seed =
  { cfg; aligned; run; seed; bases = Hashtbl.create 32 }

let run_of t = t.run
let aligned t = t.aligned

let run_salt = function Profile_run -> 0x5052 | Execution_run -> 0x4558

let string_hash s = Prng.hash2 (Hashtbl.hash s) 0x1234567

(* Address space: spread symbols over 1MB so distinct arrays rarely
   overlap, word-aligned. *)
let space = 1 lsl 20

let base_of t (m : Mem_access.t) =
  match Hashtbl.find_opt t.bases m.Mem_access.symbol with
  | Some b -> b
  | None ->
      let h = string_hash m.Mem_access.symbol in
      let b =
        match m.Mem_access.storage with
        | Mem_access.Global ->
            (* Same address whatever the input: no run salt. *)
            h mod space / 4 * 4
        | Mem_access.Stack | Mem_access.Heap ->
            let h = Prng.hash2 h (run_salt t.run + t.seed) in
            let raw = h mod space / 4 * 4 in
            if t.aligned then
              let ni = Config.max_unroll t.cfg in
              (raw + ni - 1) / ni * ni
            else raw
      in
      Hashtbl.add t.bases m.Mem_access.symbol b;
      b

let address t (m : Mem_access.t) ~op ~iter =
  let base = base_of t m in
  let g = m.Mem_access.granularity in
  let fp = if m.Mem_access.footprint > 0 then m.Mem_access.footprint else space in
  let off =
    if m.Mem_access.indirect then
      (* A stable pseudo-random walk of the footprint, different between
         the two runs (different input data drive the indices). *)
      let h = Prng.hash2 (string_hash m.Mem_access.symbol + op) (iter + run_salt t.run + t.seed) in
      h mod (max 1 (fp / g)) * g
    else m.Mem_access.offset + (iter * m.Mem_access.stride) mod fp
  in
  base + off

(* The simulator and profiler call the address function once per
   simulated access, so [addr_fn] is staged: applying it to a DDG
   precomputes a flat per-operation address plan (symbol base, offset,
   stride, footprint, indirect-walk seed), and the returned closure is
   pure int arithmetic — no symbol hashing, no hashtable probe, no
   allocation per access. *)
let addr_fn t ddg =
  let n = Ddg.n_ops ddg in
  let is_mem = Array.make n false in
  let base_off = Array.make n 0 in
  (* base + offset for strided ops; bare base for indirect ops *)
  let stride = Array.make n 0 in
  let fp = Array.make n 1 in
  let indirect = Array.make n false in
  let islots = Array.make n 1 in  (* max 1 (footprint / granularity) *)
  let gran = Array.make n 1 in
  let ihash = Array.make n 0 in
  let salt = run_salt t.run + t.seed in
  Array.iter
    (fun (o : Operation.t) ->
      match o.Operation.mem with
      | None -> ()
      | Some m ->
          let op = o.Operation.id in
          let base = base_of t m in
          let g = m.Mem_access.granularity in
          let f =
            if m.Mem_access.footprint > 0 then m.Mem_access.footprint
            else space
          in
          is_mem.(op) <- true;
          fp.(op) <- f;
          gran.(op) <- g;
          if m.Mem_access.indirect then begin
            indirect.(op) <- true;
            base_off.(op) <- base;
            islots.(op) <- max 1 (f / g);
            ihash.(op) <- string_hash m.Mem_access.symbol + op
          end
          else begin
            base_off.(op) <- base + m.Mem_access.offset;
            stride.(op) <- m.Mem_access.stride
          end)
    (Ddg.ops ddg);
  fun ~op ~iter ->
    if not is_mem.(op) then
      invalid_arg "Layout.addr_fn: not a memory operation"
    else if indirect.(op) then
      let h = Prng.hash2 ihash.(op) (iter + salt) in
      base_off.(op) + (h mod islots.(op) * gran.(op))
    else base_off.(op) + ((iter * stride.(op)) mod fp.(op))
