module Config = Vliw_arch.Config
module Ddg = Vliw_ir.Ddg
module Mem_access = Vliw_ir.Mem_access
module Operation = Vliw_ir.Operation

type run = Profile_run | Execution_run

type t = {
  cfg : Config.t;
  aligned : bool;
  run : run;
  seed : int;
  bases : (string, int) Hashtbl.t;
}

let create cfg ~aligned ~run ~seed =
  { cfg; aligned; run; seed; bases = Hashtbl.create 32 }

let run_of t = t.run
let aligned t = t.aligned

let run_salt = function Profile_run -> 0x5052 | Execution_run -> 0x4558

let string_hash s = Prng.hash2 (Hashtbl.hash s) 0x1234567

(* Address space: spread symbols over 1MB so distinct arrays rarely
   overlap, word-aligned. *)
let space = 1 lsl 20

let base_of t (m : Mem_access.t) =
  match Hashtbl.find_opt t.bases m.Mem_access.symbol with
  | Some b -> b
  | None ->
      let h = string_hash m.Mem_access.symbol in
      let b =
        match m.Mem_access.storage with
        | Mem_access.Global ->
            (* Same address whatever the input: no run salt. *)
            h mod space / 4 * 4
        | Mem_access.Stack | Mem_access.Heap ->
            let h = Prng.hash2 h (run_salt t.run + t.seed) in
            let raw = h mod space / 4 * 4 in
            if t.aligned then
              let ni = Config.max_unroll t.cfg in
              (raw + ni - 1) / ni * ni
            else raw
      in
      Hashtbl.add t.bases m.Mem_access.symbol b;
      b

let address t (m : Mem_access.t) ~op ~iter =
  let base = base_of t m in
  let g = m.Mem_access.granularity in
  let fp = if m.Mem_access.footprint > 0 then m.Mem_access.footprint else space in
  let off =
    if m.Mem_access.indirect then
      (* A stable pseudo-random walk of the footprint, different between
         the two runs (different input data drive the indices). *)
      let h = Prng.hash2 (string_hash m.Mem_access.symbol + op) (iter + run_salt t.run + t.seed) in
      h mod (max 1 (fp / g)) * g
    else m.Mem_access.offset + (iter * m.Mem_access.stride) mod fp
  in
  base + off

let addr_fn t ddg ~op ~iter =
  match (Ddg.op ddg op).Operation.mem with
  | Some m -> address t m ~op ~iter
  | None -> invalid_arg "Layout.addr_fn: not a memory operation"
