(** Data layout of one benchmark run: where every symbol lives, and the
    address stream of every memory operation.

    Two independent layouts stand in for the paper's two data sets:
    - [Profile_run] — the input used to profile (hit rates, preferred
      clusters);
    - [Execution_run] — the input used to measure.

    Global symbols get the same base address in both runs (the linker
    fixed it).  Stack and heap symbols get run-dependent bases —
    *unless* variable alignment is on, in which case stack frames and
    [malloc] results are padded to an N x I boundary (Section 4.3.4), so
    their interleaving phase is the same in every run. *)

type run = Profile_run | Execution_run

type t

val create : Vliw_arch.Config.t -> aligned:bool -> run:run -> seed:int -> t

val run_of : t -> run
val aligned : t -> bool

val base_of : t -> Vliw_ir.Mem_access.t -> int
(** Base address of the access's symbol in this layout (cached: the two
    mentions of a symbol agree). *)

val address : t -> Vliw_ir.Mem_access.t -> op:int -> iter:int -> int
(** Byte address of iteration [iter] of an operation: for strided
    accesses [base + offset + (iter * stride) mod footprint]; for
    indirect accesses a deterministic pseudo-random element of the
    footprint.  Always aligned to the access granularity. *)

val addr_fn :
  t -> Vliw_ir.Ddg.t -> op:int -> iter:int -> int
(** The simulator-facing closure over a whole DDG.  Staged: apply it to
    the layout and DDG *once* — that application precomputes a flat
    per-operation address plan, and the resulting closure is pure int
    arithmetic (no symbol hashing or hashtable probes per access).
    @raise Invalid_argument if [op] is not a memory operation. *)
