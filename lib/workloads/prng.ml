type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let next_int t ~bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

let next_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bits /. 9007199254740992.0 (* 2^53 *)

let hash2 a b =
  let z = Int64.add (Int64.mul (Int64.of_int a) golden) (Int64.of_int b) in
  (* Keep 62 bits so the result fits OCaml's int non-negatively. *)
  Int64.to_int (Int64.shift_right_logical (mix z) 2)
