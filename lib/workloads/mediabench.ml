module Mem_access = Vliw_ir.Mem_access

let ld = Kernel.load
let st = Kernel.store
let heap = Mem_access.Heap
let stack = Mem_access.Stack

(* Shorthand: a benchmark. *)
let bench name description kernels = { Benchspec.name; description; kernels }

(* ------------------------------------------------------------------ *)
(* epic: image compression by pyramid decomposition.  4-byte data;
   memory-dependent chains cost it dearly (local hit ratio -37%), and
   one loop schedules 19 chained memory operations into one cluster,
   overflowing the Attraction Buffer (Section 5.2). *)

let epicdec =
  let unquantize =
    (* 19 memory operations in a single unresolved chain. *)
    let refs =
      (* Offsets a block apart: the unrolled loop keeps ~30 subblocks
         live, overflowing a 16-entry Attraction Buffer (Section 5.2). *)
      List.init 14 (fun i ->
          ld ~storage:heap ~footprint:4096
            ~offset:((32 * i) + (4 * (i mod 4)))
            ~chain:0 "epic_qimg")
      @ List.init 5 (fun i ->
            st ~storage:heap ~footprint:4096
              ~offset:((32 * i) + (4 * (i mod 4)))
              ~chain:0 ~carried:(i = 0) "epic_qimg")
    in
    Kernel.make ~weight:2.0 ~compute_per_load:1 ~name:"unquantize"
      ~trip_count:1600 refs
  in
  let build_tree =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~accumulators:1
      ~name:"build_tree" ~trip_count:1600
      [
        ld ~storage:heap ~footprint:2048 ~chain:0 "epic_sym";
        ld ~storage:heap ~footprint:2048 ~offset:4 ~chain:0 "epic_freq";
        st ~storage:heap ~footprint:2048 ~chain:0 ~carried:true "epic_sym";
      ]
  in
  let filter =
    Kernel.make ~weight:2.0 ~compute_per_load:3 ~use_fp:true ~name:"filter"
      ~trip_count:3200
      [
        ld ~storage:heap ~footprint:16384 "epic_img";
        ld ~storage:heap ~footprint:16384 ~offset:4 "epic_img";
        ld ~footprint:256 "epic_kernel";
        ld ~footprint:256 ~offset:4 "epic_kernel";
        st ~storage:heap ~footprint:16384 "epic_out";
      ]
  in
  let collapse =
    Kernel.make ~weight:0.5 ~compute_per_load:2 ~name:"collapse"
      ~trip_count:1600
      [
        ld ~granularity:2 ~stride:2 ~footprint:1024 "epic_lut";
        ld ~storage:heap ~footprint:4096 "epic_pyr2";
        st ~storage:heap ~footprint:4096 "epic_res";
      ]
  in
  bench "epicdec" "EPIC decoder: pyramid reconstruction, chain-heavy"
    [ unquantize; build_tree; filter; collapse ]

let epicenc =
  let quantize =
    (* Indirect bin lookups: "unclear" preferred-cluster information
       (distribution 0.57 in the paper). *)
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~name:"quantize"
      ~trip_count:1600
      [
        ld ~storage:heap ~footprint:16384 "enc_img";
        ld ~indirect:true ~footprint:2048 "enc_bins";
        ld ~indirect:true ~footprint:2048 ~offset:4 "enc_bins";
        st ~storage:heap ~footprint:16384 "enc_q";
      ]
  in
  let dct =
    Kernel.make ~weight:2.0 ~compute_per_load:3 ~use_fp:true ~name:"dct"
      ~trip_count:3200
      [
        ld ~storage:heap ~footprint:16384 "enc_img2";
        ld ~storage:heap ~footprint:16384 ~offset:4 "enc_img2";
        ld ~footprint:128 "enc_coef";
        st ~storage:heap ~footprint:16384 "enc_tmp";
      ]
  in
  let reduce =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~accumulators:1
      ~name:"reduce" ~trip_count:1600
      [
        ld ~storage:heap ~footprint:8192 "enc_tmp2";
        ld ~storage:stack ~footprint:512 "enc_acc";
        st ~storage:stack ~footprint:512 ~carried:true "enc_acc";
      ]
  in
  let upsample =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~use_fp:true ~name:"upsample"
      ~trip_count:1600
      [
        ld ~storage:heap ~footprint:8192 "enc_lo";
        ld ~storage:heap ~footprint:8192 ~offset:4 "enc_lo";
        st ~storage:heap ~footprint:16384 "enc_hi";
      ]
  in
  bench "epicenc" "EPIC encoder: DCT + quantization with indirect bins"
    [ quantize; dct; reduce; upsample ]

(* ------------------------------------------------------------------ *)
(* g721: ADPCM voice codec.  2-byte samples, tiny working set: nearly
   everything hits, stall time is negligible (the paper omits its stall
   bars). *)

let g721 name salt =
  let predict =
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~accumulators:2
      ~name:"predict" ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:384 (salt ^ "_b");
        ld ~granularity:2 ~stride:2 ~footprint:384 ~offset:2 (salt ^ "_dq");
        ld ~granularity:2 ~stride:2 ~footprint:384 ~offset:4 (salt ^ "_w");
        st ~granularity:2 ~stride:2 ~footprint:384 ~carried:true (salt ^ "_b");
      ]
  in
  let update =
    Kernel.make ~weight:1.5 ~compute_per_load:2 ~name:"update"
      ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:256 (salt ^ "_y");
        ld ~granularity:2 ~stride:2 ~footprint:256 ~offset:2 (salt ^ "_yl");
        st ~granularity:2 ~stride:2 ~footprint:256 (salt ^ "_out");
      ]
  in
  let tables =
    Kernel.make ~weight:0.5 ~compute_per_load:1 ~name:"tables"
      ~trip_count:1600
      [
        ld ~footprint:512 (salt ^ "_qtab");
        st ~granularity:2 ~stride:2 ~footprint:256 ~storage:stack
          (salt ^ "_stk");
      ]
  in
  let reconstruct =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~accumulators:1
      ~name:"reconstruct" ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:256 (salt ^ "_dqln");
        ld ~granularity:2 ~stride:2 ~footprint:256 ~offset:2 (salt ^ "_sr");
        st ~granularity:2 ~stride:2 ~footprint:256 (salt ^ "_sr2");
      ]
  in
  bench name "G.721 ADPCM: tiny working set, negligible stall"
    [ predict; update; tables; reconstruct ]

let g721dec = g721 "g721dec" "g7d"
let g721enc = g721 "g721enc" "g7e"

(* ------------------------------------------------------------------ *)
(* gsm: full-rate speech codec.  99% 2-byte data.  gsmdec holds the
   paper's variable-alignment example: a dynamically allocated 120 x 2B
   array walked with a 16-byte stride whose preferred cluster moves with
   the input unless malloc results are padded. *)

let gsm name salt =
  let lpc =
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~accumulators:1 ~name:"lpc"
      ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:480 ~storage:heap (salt ^ "_so");
        ld ~granularity:2 ~stride:2 ~footprint:480 ~offset:2 ~storage:heap
          (salt ^ "_so");
        ld ~granularity:2 ~stride:2 ~footprint:480 ~storage:heap (salt ^ "_L");
        st ~granularity:2 ~stride:2 ~footprint:480 ~storage:heap (salt ^ "_d");
      ]
  in
  let dyn16 =
    (* The Section 4.3.4 example: 2-byte elements, 16-byte stride,
       dynamically allocated. *)
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~name:"dyn16"
      ~trip_count:1600
      [
        ld ~granularity:2 ~stride:16 ~footprint:240 ~storage:heap
          ~self_carried:true (salt ^ "_dyn");
        st ~granularity:2 ~stride:2 ~footprint:480 ~storage:heap
          (salt ^ "_xm");
      ]
  in
  let filt =
    Kernel.make ~weight:2.0 ~compute_per_load:3 ~accumulators:1 ~name:"filt"
      ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:64 (salt ^ "_rp");
        ld ~granularity:2 ~stride:2 ~footprint:640 ~storage:heap ~chain:0
          (salt ^ "_u");
        ld ~granularity:2 ~stride:2 ~footprint:640 ~offset:8 ~storage:heap
          ~chain:0 (salt ^ "_u");
        st ~granularity:2 ~stride:2 ~footprint:640 ~storage:heap ~chain:0
          ~carried:true (salt ^ "_u");
      ]
  in
  let shortterm =
    Kernel.make ~weight:1.5 ~compute_per_load:2 ~name:"shortterm"
      ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:320 (salt ^ "_rrp");
        ld ~granularity:2 ~stride:2 ~footprint:640 ~storage:heap
          (salt ^ "_sk");
        st ~granularity:2 ~stride:2 ~footprint:640 ~storage:heap
          (salt ^ "_sk2");
      ]
  in
  bench name "GSM 06.10: 2-byte samples, alignment-sensitive dynamic array"
    [ lpc; dyn16; filt; shortterm ]

let gsmdec = gsm "gsmdec" "gsd"
let gsmenc = gsm "gsmenc" "gse"

(* ------------------------------------------------------------------ *)
(* jpeg: 1-byte pixels dominate the decoder (53%), with 40% indirect
   accesses (Huffman and color lookup tables) and very unclear preferred
   clusters (distribution 0.81). *)

let jpegdec =
  let color =
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~name:"color"
      ~trip_count:3200
      [
        ld ~granularity:1 ~stride:1 ~footprint:8192 ~storage:heap "jpd_ycc";
        ld ~granularity:1 ~stride:1 ~footprint:8192 ~offset:1 ~storage:heap
          "jpd_ycc";
        st ~granularity:1 ~stride:1 ~footprint:8192 ~storage:heap "jpd_rgb";
      ]
  in
  let huffman =
    Kernel.make ~weight:1.0 ~compute_per_load:1 ~name:"huffman"
      ~trip_count:800
      [
        ld ~granularity:1 ~indirect:true ~footprint:1024 ~self_carried:true
          "jpd_htab";
        ld ~granularity:1 ~indirect:true ~footprint:1024 "jpd_htab2";
        ld ~granularity:1 ~indirect:true ~footprint:2048 "jpd_sym";
        st ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap "jpd_coef";
      ]
  in
  let idct =
    Kernel.make ~weight:1.5 ~compute_per_load:3 ~name:"idct"
      ~trip_count:1600
      [
        ld ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap "jpd_blk";
        ld ~indirect:true ~footprint:1024 "jpd_quant";
        st ~granularity:1 ~stride:1 ~footprint:4096 ~storage:heap "jpd_pix";
      ]
  in
  let upsample =
    Kernel.make ~weight:1.0 ~compute_per_load:1 ~name:"upsample"
      ~trip_count:1600
      [
        ld ~granularity:1 ~stride:2 ~footprint:4096 ~storage:heap "jpd_cb";
        ld ~granularity:1 ~stride:2 ~footprint:4096 ~storage:heap "jpd_cr";
        st ~granularity:1 ~stride:1 ~footprint:8192 ~storage:heap "jpd_up";
      ]
  in
  bench "jpegdec" "JPEG decoder: byte pixels, heavy indirect table lookups"
    [ color; huffman; idct; upsample ]

let jpegenc =
  let fdct =
    (* The paper's loop 67: IBC finds a tighter II than IPBC, which pays
       extra register-to-register communications. *)
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~use_fp:true ~name:"fdct"
      ~trip_count:3200
      [
        ld ~storage:heap ~footprint:8192 "jpe_blk";
        ld ~storage:heap ~footprint:8192 ~offset:4 "jpe_blk";
        ld ~storage:heap ~footprint:8192 ~offset:8 "jpe_blk";
        ld ~footprint:256 "jpe_coef";
        st ~storage:heap ~footprint:8192 "jpe_tmp";
        st ~storage:heap ~footprint:8192 ~offset:4 "jpe_tmp";
      ]
  in
  let sample =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~name:"sample"
      ~trip_count:1600
      [
        ld ~granularity:1 ~stride:2 ~footprint:8192 ~storage:heap "jpe_in";
        ld ~granularity:1 ~stride:2 ~footprint:8192 ~offset:1 ~storage:heap
          "jpe_in";
        st ~storage:heap ~footprint:4096 "jpe_samp";
      ]
  in
  let huff =
    Kernel.make ~weight:0.5 ~compute_per_load:1 ~accumulators:1 ~name:"huff"
      ~trip_count:800
      [
        ld ~indirect:true ~footprint:1024 ~self_carried:true "jpe_htab";
        ld ~indirect:true ~footprint:1024 "jpe_code";
        ld ~storage:heap ~footprint:2048 "jpe_zz";
        st ~granularity:1 ~stride:1 ~footprint:2048 ~storage:heap "jpe_out";
      ]
  in
  bench "jpegenc" "JPEG encoder: 4-byte DCT data, some indirect tables"
    [ fdct; sample; huff ]

(* ------------------------------------------------------------------ *)
(* mpeg2dec: about half of all accesses are double precision (8 bytes,
   wider than the interleaving factor) — always partly remote, but kept
   out of recurrences, so the scheduler hides them behind large
   latencies and they cause no stall (Section 5.2). *)

let mpeg2dec =
  let motion =
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~name:"motion"
      ~trip_count:1600
      [
        ld ~granularity:8 ~stride:8 ~footprint:32768 ~storage:heap "mpg_ref";
        ld ~granularity:8 ~stride:8 ~footprint:32768 ~offset:8 ~storage:heap
          "mpg_ref";
        ld ~granularity:8 ~stride:8 ~footprint:32768 ~storage:heap "mpg_cur";
        st ~granularity:8 ~stride:8 ~footprint:32768 ~storage:heap "mpg_out";
      ]
  in
  let idct =
    Kernel.make ~weight:1.5 ~compute_per_load:3 ~name:"idct"
      ~trip_count:1600
      [
        ld ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap ~chain:0
          "mpg_blk";
        ld ~granularity:2 ~stride:2 ~footprint:2048 ~offset:8 ~storage:heap
          ~chain:0 "mpg_blk";
        st ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap ~chain:0
          ~carried:true "mpg_blk";
      ]
  in
  let addblock =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~name:"addblock"
      ~trip_count:1600
      [
        ld ~granularity:8 ~stride:8 ~footprint:16384 ~storage:heap "mpg_pred";
        ld ~granularity:1 ~stride:1 ~footprint:4096 ~storage:heap "mpg_pix";
        st ~granularity:1 ~stride:1 ~footprint:4096 ~storage:heap "mpg_pix2";
      ]
  in
  let recon =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~name:"recon"
      ~trip_count:1600
      [
        ld ~granularity:8 ~stride:8 ~footprint:32768 ~storage:heap "mpg_fwd";
        ld ~granularity:8 ~stride:8 ~footprint:32768 ~storage:heap "mpg_bwd";
        st ~granularity:8 ~stride:8 ~footprint:32768 ~storage:heap "mpg_rec";
      ]
  in
  bench "mpeg2dec" "MPEG-2 decoder: ~50% double-precision accesses"
    [ motion; idct; addblock; recon ]

(* ------------------------------------------------------------------ *)
(* pegwit: elliptic-curve cryptography.  2-byte digits; the decoder is
   almost entirely indirect (93%), the encoder much less (13%). *)

let pegwitdec =
  let gf_mul =
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~name:"gf_mul"
      ~trip_count:3200
      [
        ld ~granularity:2 ~indirect:true ~footprint:1024 "pwd_log";
        ld ~granularity:2 ~indirect:true ~footprint:1024 "pwd_alog";
        ld ~granularity:2 ~indirect:true ~footprint:2048 "pwd_a";
        ld ~granularity:2 ~indirect:true ~footprint:2048 "pwd_b";
        st ~granularity:2 ~stride:2 ~footprint:2048 ~storage:stack "pwd_r";
      ]
  in
  let gf_reduce =
    Kernel.make ~weight:1.0 ~compute_per_load:1 ~name:"gf_reduce"
      ~trip_count:800
      [
        ld ~granularity:2 ~indirect:true ~footprint:2048 "pwd_p";
        ld ~granularity:2 ~indirect:true ~footprint:1024 "pwd_mask";
        ld ~granularity:2 ~indirect:true ~footprint:2048 ~self_carried:true
          "pwd_t";
      ]
  in
  let hash =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~accumulators:1 ~name:"hash"
      ~trip_count:1600
      [
        ld ~granularity:2 ~indirect:true ~footprint:1024 "pwd_sbox";
        ld ~granularity:2 ~indirect:true ~footprint:1024 "pwd_sbox2";
        ld ~granularity:4 ~stride:4 ~footprint:2048 ~storage:heap "pwd_msg";
        st ~granularity:2 ~stride:2 ~footprint:512 ~storage:stack "pwd_h";
      ]
  in
  bench "pegwitdec" "Pegwit decryption: 93% indirect GF(2^m) table walks"
    [ gf_mul; gf_reduce; hash ]

let pegwitenc =
  let gf_add =
    Kernel.make ~weight:2.0 ~compute_per_load:2 ~name:"gf_add"
      ~trip_count:3200
      [
        ld ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap "pwe_a";
        ld ~granularity:2 ~stride:2 ~footprint:2048 ~offset:2 ~storage:heap
          "pwe_b";
        st ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap "pwe_r";
      ]
  in
  let shift =
    Kernel.make ~weight:1.5 ~compute_per_load:2 ~accumulators:1 ~name:"shift"
      ~trip_count:3200
      [
        ld ~granularity:2 ~indirect:true ~footprint:1024 "pwe_tab";
        ld ~granularity:2 ~stride:2 ~footprint:1024 ~storage:stack "pwe_v";
        st ~granularity:2 ~stride:2 ~footprint:1024 ~storage:stack
          ~carried:true "pwe_v";
      ]
  in
  let sponge =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~name:"sponge"
      ~trip_count:1600
      [
        ld ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap "pwe_msg";
        ld ~granularity:4 ~stride:4 ~footprint:512 "pwe_key";
        st ~granularity:2 ~stride:2 ~footprint:2048 ~storage:heap "pwe_ct";
      ]
  in
  bench "pegwitenc" "Pegwit encryption: mostly strided digits, 13% indirect"
    [ gf_add; shift; sponge ]

(* ------------------------------------------------------------------ *)
(* pgp: multiprecision arithmetic.  4-byte digits in long chains of
   dependent loads/stores (disambiguation fails over digit arrays), the
   chains costing 25%/20% of the local hit ratio. *)

let pgp name salt chain_weight ~byte_io =
  let mp_mul =
    let refs =
      List.init 6 (fun i ->
          ld ~storage:heap ~footprint:64 ~offset:(4 * i) ~chain:0
            (salt ^ "_x"))
      @ [
          ld ~storage:heap ~footprint:64 ~offset:4 ~chain:0 (salt ^ "_y");
          st ~storage:heap ~footprint:64 ~chain:0 ~carried:true (salt ^ "_x");
        ]
    in
    Kernel.make ~weight:chain_weight ~compute_per_load:2 ~name:"mp_mul"
      ~trip_count:1600 refs
  in
  let mp_add =
    Kernel.make ~weight:1.5 ~compute_per_load:1 ~accumulators:1
      ~name:"mp_add" ~trip_count:3200
      [
        ld ~storage:heap ~footprint:2048 ~chain:0 (salt ^ "_u");
        ld ~storage:heap ~footprint:2048 ~offset:8 ~chain:0 (salt ^ "_v");
        st ~storage:heap ~footprint:2048 ~chain:0 (salt ^ "_w");
      ]
  in
  let sieve =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~name:"sieve"
      ~trip_count:1600
      [
        ld ~storage:heap ~footprint:8192 (salt ^ "_s");
        ld ~granularity:1 ~stride:1 ~footprint:4096 (salt ^ "_bits");
        st ~storage:heap ~footprint:8192 (salt ^ "_s2");
      ]
  in
  let armor =
    (* Radix-64 armoring: byte I/O, encoder only. *)
    Kernel.make ~weight:1.0 ~compute_per_load:1 ~name:"armor"
      ~trip_count:3200
      [
        ld ~granularity:1 ~stride:1 ~footprint:4096 ~storage:heap
          (salt ^ "_raw");
        ld ~granularity:1 ~indirect:true ~footprint:256 (salt ^ "_b64");
        st ~granularity:1 ~stride:1 ~footprint:4096 ~storage:heap
          (salt ^ "_arm");
      ]
  in
  bench name "PGP multiprecision arithmetic: chain-bound digit loops"
    (if byte_io then [ mp_mul; mp_add; sieve; armor ]
     else [ mp_mul; mp_add; sieve ])

let pgpdec = pgp "pgpdec" "pgd" 2.0 ~byte_io:false
let pgpenc = pgp "pgpenc" "pge" 1.5 ~byte_io:true

(* ------------------------------------------------------------------ *)
(* rasta: speech feature extraction; floating-point filterbanks over
   4-byte data with chained state updates. *)

let rasta =
  let filterbank =
    Kernel.make ~weight:2.0 ~compute_per_load:3 ~use_fp:true
      ~name:"filterbank" ~trip_count:3200
      [
        ld ~storage:heap ~footprint:4096 ~chain:0 "ras_spec";
        ld ~storage:heap ~footprint:4096 ~offset:4 ~chain:0 "ras_spec";
        ld ~footprint:512 "ras_wts";
        st ~storage:heap ~footprint:4096 ~chain:0 ~carried:true "ras_spec";
      ]
  in
  let bandpass =
    Kernel.make ~weight:1.5 ~compute_per_load:2 ~use_fp:true ~name:"bandpass"
      ~trip_count:3200
      [
        ld ~storage:heap ~footprint:128 ~chain:0 "ras_hist";
        ld ~storage:heap ~footprint:128 ~offset:8 ~chain:0 "ras_hist";
        st ~storage:heap ~footprint:128 ~chain:0 ~carried:true "ras_hist";
      ]
  in
  let cepstrum =
    Kernel.make ~weight:1.0 ~compute_per_load:2 ~use_fp:true ~accumulators:1
      ~name:"cepstrum" ~trip_count:1600
      [
        ld ~storage:heap ~footprint:4096 "ras_env";
        ld ~footprint:256 "ras_cos";
        st ~storage:stack ~footprint:512 "ras_cep";
      ]
  in
  let spectrum =
    Kernel.make ~weight:1.0 ~compute_per_load:3 ~use_fp:true ~accumulators:1
      ~name:"spectrum" ~trip_count:1600
      [
        ld ~storage:heap ~footprint:4096 "ras_fft";
        ld ~storage:heap ~footprint:4096 ~offset:4 "ras_fft";
        st ~storage:heap ~footprint:2048 "ras_pow";
      ]
  in
  bench "rasta" "RASTA speech analysis: FP filterbanks with chained state"
    [ filterbank; bandpass; cepstrum; spectrum ]

let all =
  [
    epicdec; epicenc; g721dec; g721enc; gsmdec; gsmenc; jpegdec; jpegenc;
    mpeg2dec; pegwitdec; pegwitenc; pgpdec; pgpenc; rasta;
  ]

let names = List.map (fun (b : Benchspec.t) -> b.Benchspec.name) all

let find name =
  List.find (fun (b : Benchspec.t) -> b.Benchspec.name = name) all
