(** Loop-kernel generator: builds modulo-schedulable loop DDGs from a
    compact description of their memory streams and compute shape.

    Each memory reference produces a load (followed by a configurable
    compute chain) or a store (consuming the latest computed value).
    References sharing a [chain] group are linked by unresolved memory
    dependences, so they form one memory-dependent chain.  A store with
    [carried = true] writes what the next iteration's load of the same
    symbol reads (Mem_flow distance 1 back to it plus the intra-iteration
    anti-dependence), creating a recurrence that contains memory
    operations — the situation the latency-assignment pass exists for. *)

type mem_ref = {
  symbol : string;
  storage : Vliw_ir.Mem_access.storage;
  granularity : int;
  stride : int;  (** bytes per iteration *)
  footprint : int;  (** bytes of the underlying array *)
  offset : int;
  indirect : bool;
  is_store : bool;
  chain : int option;  (** memory-dependence group *)
  carried : bool;  (** stores only: loop-carried dependence to the load *)
  self_carried : bool;
      (** loads only: next iteration's address depends on this load's
          value (pointer chase / decoder state machine) — a one-node
          recurrence whose II tracks the load's assigned latency *)
}

val load :
  ?storage:Vliw_ir.Mem_access.storage ->
  ?granularity:int ->
  ?stride:int ->
  ?footprint:int ->
  ?offset:int ->
  ?indirect:bool ->
  ?chain:int ->
  ?self_carried:bool ->
  string ->
  mem_ref
(** Defaults: global, 4-byte elements, stride = granularity, 2KB
    footprint, direct, unchained. *)

val store :
  ?storage:Vliw_ir.Mem_access.storage ->
  ?granularity:int ->
  ?stride:int ->
  ?footprint:int ->
  ?offset:int ->
  ?chain:int ->
  ?carried:bool ->
  string ->
  mem_ref

type spec = {
  name : string;
  trip_count : int;
  weight : float;
  refs : mem_ref list;
  compute_per_load : int;  (** ALU chain length after each load *)
  use_fp : bool;  (** alternate integer and floating-point ALU ops *)
  accumulators : int;  (** extra loop-carried scalar recurrences *)
}

val make :
  ?weight:float ->
  ?compute_per_load:int ->
  ?use_fp:bool ->
  ?accumulators:int ->
  name:string ->
  trip_count:int ->
  mem_ref list ->
  spec

val build : spec -> Vliw_ir.Loop.t
(** @raise Invalid_argument on an empty reference list. *)
