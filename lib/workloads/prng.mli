(** Deterministic pseudo-random numbers (splitmix64).

    Everything in the workload suite is seeded explicitly so that every
    run of every experiment is byte-for-byte reproducible; the OCaml
    [Random] module and wall-clock seeds are deliberately not used. *)

type t

val create : seed:int -> t

val next_int : t -> bound:int -> int
(** Uniform in [0, bound); @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** Uniform in [0, 1). *)

val hash2 : int -> int -> int
(** Stateless 64-bit mix of two integers — non-negative result.  Used
    for stable per-(symbol, iteration) address streams. *)
