(** The profile run: replay a loop's address streams on a cache-presence
    model and record, per memory operation, its hit rate and the
    distribution of its accesses over the clusters.  This is the
    information the paper's compiler gets from profiling with the
    *profile data set* (Table 1). *)

val iteration_cap : int
(** Profiling replays at most this many iterations per loop (4096); hit
    rates and cluster distributions converge far earlier. *)

val profile_loop :
  Vliw_arch.Config.t -> Layout.t -> Vliw_ir.Loop.t -> Vliw_core.Profile.t

val profiler :
  Vliw_arch.Config.t -> Layout.t -> Vliw_ir.Loop.t -> Vliw_core.Profile.t
(** The closure shape {!Vliw_core.Pipeline.compile} expects (it calls it
    on every unrolled candidate). *)
