module Builder = Vliw_ir.Builder
module Edge = Vliw_ir.Edge
module Loop = Vliw_ir.Loop
module Mem_access = Vliw_ir.Mem_access
module Opcode = Vliw_ir.Opcode

type mem_ref = {
  symbol : string;
  storage : Mem_access.storage;
  granularity : int;
  stride : int;
  footprint : int;
  offset : int;
  indirect : bool;
  is_store : bool;
  chain : int option;
  carried : bool;
  self_carried : bool;
}

let load ?(storage = Mem_access.Global) ?(granularity = 4) ?stride
    ?(footprint = 2048) ?(offset = 0) ?(indirect = false) ?chain
    ?(self_carried = false) symbol =
  {
    symbol;
    storage;
    granularity;
    stride = Option.value ~default:granularity stride;
    footprint;
    offset;
    indirect;
    is_store = false;
    chain;
    carried = false;
    self_carried;
  }

let store ?(storage = Mem_access.Global) ?(granularity = 4) ?stride
    ?(footprint = 2048) ?(offset = 0) ?chain ?(carried = false) symbol =
  {
    symbol;
    storage;
    granularity;
    stride = Option.value ~default:granularity stride;
    footprint;
    offset;
    indirect = false;
    is_store = true;
    chain;
    carried;
    self_carried = false;
  }

type spec = {
  name : string;
  trip_count : int;
  weight : float;
  refs : mem_ref list;
  compute_per_load : int;
  use_fp : bool;
  accumulators : int;
}

let make ?(weight = 1.0) ?(compute_per_load = 2) ?(use_fp = false)
    ?(accumulators = 0) ~name ~trip_count refs =
  { name; trip_count; weight; refs; compute_per_load; use_fp; accumulators }

let mem_access_of_ref r =
  Mem_access.make ~storage:r.storage ~offset:r.offset ~indirect:r.indirect
    ~footprint:r.footprint ~symbol:r.symbol ~stride:r.stride
    ~granularity:r.granularity ()

let build spec =
  if spec.refs = [] then invalid_arg "Kernel.build: no memory references";
  let b = Builder.create () in
  (* Per-reference bookkeeping for chain edges and carried stores. *)
  let mem_ids = ref [] in  (* (ref, op id), program order *)
  let last_value = ref None in  (* most recent value-producing op *)
  let last_load = ref None in
  let alu_opcode k = if spec.use_fp && k mod 2 = 1 then Opcode.Fp_alu else Opcode.Int_alu in
  List.iter
    (fun r ->
      if r.is_store then begin
        let value =
          match !last_value with
          | Some v -> v
          | None ->
              let c = Builder.add b ~dests:[ Builder.fresh_reg b ] Opcode.Int_alu in
              last_value := Some c;
              c
        in
        let s =
          Builder.add b ~srcs:[ Builder.fresh_reg b ]
            ~mem:(mem_access_of_ref r) Opcode.Store
        in
        Builder.flow b value s;
        mem_ids := (r, s) :: !mem_ids
      end
      else begin
        let dst = Builder.fresh_reg b in
        let l = Builder.add b ~dests:[ dst ] ~mem:(mem_access_of_ref r) Opcode.Load in
        (* An indirect access computes its address from an earlier load. *)
        (match (r.indirect, !last_load) with
        | true, Some prev -> Builder.flow b prev l
        | _ -> ());
        (* Pointer chase / decoder state: the next iteration's address
           comes from this load's value. *)
        if r.self_carried then Builder.flow b ~distance:1 l l;
        last_load := Some l;
        (* Compute chain fed by the load. *)
        let chain_end = ref l in
        for k = 0 to spec.compute_per_load - 1 do
          let c =
            Builder.add b
              ~dests:[ Builder.fresh_reg b ]
              ~srcs:[ Builder.fresh_reg b ]
              (alu_opcode k)
          in
          Builder.flow b !chain_end c;
          chain_end := c
        done;
        last_value := Some !chain_end;
        mem_ids := (r, l) :: !mem_ids
      end)
    spec.refs;
  let mem_ids = List.rev !mem_ids in
  (* Chain groups: consecutive members linked by unresolved memory
     dependences. *)
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (r, id) ->
      match r.chain with
      | Some g ->
          let prev = Hashtbl.find_opt groups g in
          (match prev with
          | Some p -> Builder.dep b ~kind:Edge.Mem_unresolved p id
          | None -> ());
          Hashtbl.replace groups g id
      | None -> ())
    mem_ids;
  (* Carried stores: loop-carried flow back to the earlier load of the
     same symbol (plus the intra-iteration anti-dependence), forming a
     recurrence through memory. *)
  List.iter
    (fun (r, sid) ->
      if r.is_store && r.carried then
        match
          List.find_opt
            (fun (r', _) -> (not r'.is_store) && r'.symbol = r.symbol)
            mem_ids
        with
        | Some (_, lid) ->
            Builder.dep b ~kind:Edge.Mem_flow ~distance:1 sid lid;
            Builder.dep b ~kind:Edge.Mem_anti lid sid
        | None -> ())
    mem_ids;
  (* Scalar accumulators: classic loop-carried ALU recurrences. *)
  for _ = 1 to spec.accumulators do
    let a =
      Builder.add b
        ~dests:[ Builder.fresh_reg b ]
        ~srcs:[ Builder.fresh_reg b ]
        Opcode.Int_alu
    in
    Builder.flow b ~distance:1 a a;
    match !last_value with Some v -> Builder.flow b v a | None -> ()
  done;
  Loop.make ~weight:spec.weight ~name:spec.name ~trip_count:spec.trip_count
    (Builder.build b)
