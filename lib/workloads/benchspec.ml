type t = { name : string; description : string; kernels : Kernel.spec list }

let loops t = List.map Kernel.build t.kernels

let dynamic_counts t f =
  List.fold_left
    (fun acc (k : Kernel.spec) ->
      List.fold_left
        (fun acc (r : Kernel.mem_ref) ->
          let key = f r in
          let cur = Option.value ~default:0 (List.assoc_opt key acc) in
          (key, cur + k.Kernel.trip_count) :: List.remove_assoc key acc)
        acc k.Kernel.refs)
    [] t.kernels

let total_dynamic t =
  List.fold_left
    (fun acc (k : Kernel.spec) ->
      acc + (k.Kernel.trip_count * List.length k.Kernel.refs))
    0 t.kernels

let dominant_size t =
  let by_size = dynamic_counts t (fun r -> r.Kernel.granularity) in
  let size, count =
    List.fold_left
      (fun ((_, bc) as best) ((_, c) as cand) ->
        if c > bc then cand else best)
      (4, 0) by_size
  in
  (size, float_of_int count /. float_of_int (max 1 (total_dynamic t)))

let indirect_share t =
  let by_ind = dynamic_counts t (fun r -> r.Kernel.indirect) in
  let ind = Option.value ~default:0 (List.assoc_opt true by_ind) in
  float_of_int ind /. float_of_int (max 1 (total_dynamic t))

let n_memory_refs t =
  List.fold_left
    (fun acc (k : Kernel.spec) -> acc + List.length k.Kernel.refs)
    0 t.kernels
