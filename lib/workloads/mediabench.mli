(** The synthetic Mediabench suite.

    Fourteen benchmarks mirroring the measurable characteristics the
    paper reports for its Mediabench subset (Table 1 and Section 5.2):
    dominant access size, indirect-access share, importance of
    memory-dependent chains, double-precision share, negligible-stall
    benchmarks, the epicdec loop whose 19-instruction chain overflows the
    Attraction Buffer, and the gsmdec dynamically-allocated array whose
    preferred cluster moves between inputs (the variable-alignment
    example).  See DESIGN.md for the substitution rationale. *)

val all : Benchspec.t list
(** The 14 benchmarks, in the paper's order. *)

val names : string list

val find : string -> Benchspec.t
(** @raise Not_found for an unknown name. *)
