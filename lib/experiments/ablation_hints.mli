(** Section 5.2 ablation: "attractable" compiler hints.

    The 19-instruction chain of epicdec's unquantize loop lands in one
    cluster and overflows the Attraction Buffer.  Marking only the top-K
    loads as attractable (K = buffer entries) stops the thrashing; the
    paper reports stall reductions of 20%/32% (8-entry) and 13%/6%
    (16-entry) in that loop for IPBC/IBC. *)

val table : Context.t -> Vliw_report.Table.t
(** Rows: heuristic x buffer size; columns: stall without/with hints for
    the overflowing loop and for the whole benchmark. *)

val run : Format.formatter -> Context.t -> unit
