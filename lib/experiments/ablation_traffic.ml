module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Machine = Vliw_sim.Machine
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

(* One batched run per benchmark (parallel across benchmarks); the
   column labels come from the first row's counters instead of a
   redundant extra simulation. *)
let traffic_table ctx ~title ~spec ~arch =
  let rows =
    Pool.map_ordered
      (fun bench ->
        match Context.run_batch ctx bench spec [ Context.cell arch ] with
        | [ (_, tr) ] ->
            ( bench.WL.Benchspec.name,
              List.map fst tr,
              List.map (fun (_, v) -> float_of_int v) tr )
        | _ -> assert false)
      WL.Mediabench.all
  in
  let columns = match rows with (_, labels, _) :: _ -> labels | [] -> [] in
  let rows = List.map (fun (name, _, vs) -> (name, vs)) rows in
  Table.make ~title ~columns (rows @ [ Context.amean rows ])

let interleaved_table ctx =
  traffic_table ctx ~title:"Bus traffic, word-interleaved cache (IPBC + AB)"
    ~spec:(Context.interleaved `Ipbc)
    ~arch:(Machine.Word_interleaved { attraction_buffers = true })

let multivliw_table ctx =
  traffic_table ctx ~title:"Coherence traffic, multiVLIW (MSI snoopy protocol)"
    ~spec:
      { Context.target = Pipeline.Multivliw; strategy = US.Selective;
        aligned = true }
    ~arch:Machine.Multivliw

let tables ctx = [ interleaved_table ctx; multivliw_table ctx ]

let run ppf ctx =
  List.iter
    (fun t ->
      Table.render ~precision:0 ppf t;
      Format.pp_print_newline ppf ())
    (tables ctx);
  Format.fprintf ppf
    "(the interleaved design needs no invalidations or snoops — the \
     simplicity the paper trades 7%% of cycle count for)@.@."
