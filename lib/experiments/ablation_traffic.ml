module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Machine = Vliw_sim.Machine
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

let interleaved_table ctx =
  let rows =
    Pool.map_ordered
      (fun bench ->
        let _, tr =
          Context.run_traffic ctx bench (Context.interleaved `Ipbc)
            ~arch:(Machine.Word_interleaved { attraction_buffers = true })
            ()
        in
        ( bench.WL.Benchspec.name,
          List.map (fun (_, v) -> float_of_int v) tr ))
      WL.Mediabench.all
  in
  let columns =
    match WL.Mediabench.all with
    | b :: _ ->
        let _, tr =
          Context.run_traffic ctx b (Context.interleaved `Ipbc)
            ~arch:(Machine.Word_interleaved { attraction_buffers = true })
            ()
        in
        List.map fst tr
    | [] -> []
  in
  Table.make ~title:"Bus traffic, word-interleaved cache (IPBC + AB)"
    ~columns (rows @ [ Context.amean rows ])

let multivliw_table ctx =
  let spec =
    { Context.target = Pipeline.Multivliw; strategy = US.Selective;
      aligned = true }
  in
  let run bench =
    Context.run_traffic ctx bench spec ~arch:Machine.Multivliw ()
  in
  let rows =
    Pool.map_ordered
      (fun bench ->
        let _, tr = run bench in
        ( bench.WL.Benchspec.name,
          List.map (fun (_, v) -> float_of_int v) tr ))
      WL.Mediabench.all
  in
  let columns =
    match WL.Mediabench.all with
    | b :: _ -> List.map fst (snd (run b))
    | [] -> []
  in
  Table.make ~title:"Coherence traffic, multiVLIW (MSI snoopy protocol)"
    ~columns (rows @ [ Context.amean rows ])

let tables ctx = [ interleaved_table ctx; multivliw_table ctx ]

let run ppf ctx =
  List.iter
    (fun t ->
      Table.render ~precision:0 ppf t;
      Format.pp_print_newline ppf ())
    (tables ctx);
  Format.fprintf ppf
    "(the interleaved design needs no invalidations or snoops — the \
     simplicity the paper trades 7%% of cycle count for)@.@."
