(* The design-space exploration autopilot: fleet-scale Config sweeps.

   The paper evaluates ONE machine point (Table 2); this driver chews
   through a grid of them — clusters x interleaving factor x register
   buses x attraction-buffer capacity x cache geometry — and reports the
   Pareto frontier of IPBC cycles vs inter-cluster traffic vs a stylized
   hardware-cost model.  Three structural facts keep the cost scaling
   with DISTINCT SCHEDULES, not total cells:

   1. Plan groups.  The scheduler can only see four of the swept
      dimensions (clusters, interleaving, bus count, bus occupancy; see
      Mrt) — cache geometry and AB shape are simulation-side, because
      profiling runs at the sweep's shared base geometry.  All cells of
      a (clusters, interleaving, occupancy, buses) group therefore share
      one compiled plan, fetched once per benchmark through the shared
      sharded memo (Context.with_cfg keeps one memo across every config;
      keys embed the fingerprint).

   2. Lockstep batches.  Each plan group's cells ride ONE batched
      traversal of each loop's access plan per benchmark
      (Executor.run_loop_batched): the plan, factor masks and memoized
      address trace are shared, only cache state, stall clocks and
      statistics are per-cell.  Groups fan out across the domain pool;
      Pool.map_ordered keeps the output byte-identical at any --jobs.

   3. Constraint-guided pruning.  Bus levels ascend per family
      (clusters, interleaving, occupancy); a level whose whole-suite
      compile never REJECTED a placement on a register-bus window
      (Pipeline.bus_window_rejections = 0 for every loop) provably
      compiles byte-identically at every higher bus count — the bus
      check is the pipeline's only reader of the bus count, so a
      rejection-free search takes the identical path with more buses.
      Higher levels then simulate identically and cost strictly more
      (the cost model is strictly increasing in buses), i.e. every
      skipped cell is dominated by its twin at the rejection-free level:
      pruning can never drop a frontier point, which the golden suite
      asserts against the exhaustive sweep.  Attribution's
      binding-constraint output names what binds INSTEAD of buses in the
      prune log.

      Note the rule deliberately does NOT prune on Attribution's bounds
      alone ("cluster pressure binds, skip more buses"): transient bus
      conflicts redirect placements even in loops whose final bound
      tower shows bus slack, so bound-based pruning drops real frontier
      points.  Counting actual rejections is the sound strengthening. *)

module Config = Vliw_arch.Config
module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Memo = Vliw_parallel.Memo
module Stats = Vliw_sim.Stats
module Machine = Vliw_sim.Machine
module Table = Vliw_report.Table
module Attribution = Vliw_analysis.Attribution
module WL = Vliw_workloads

(* ------------------------------------------------------------- grids *)

type grid = {
  clusters : int list;
  interleavings : int list;
  buses : int list;
  occupancies : int list;
  cache_sizes : int list;
  associativities : int list;
  ab_capacities : int list;  (* 0 = no attraction buffers *)
  max_unroll_cap : int;
      (* families whose N x I exceeds this are skipped: the selective
         unroller's candidate set (and compile time) grows with the
         maximum unroll, and N x I = 32 is already an order of magnitude
         slower to compile than the paper's 16 *)
}

let default_grid =
  {
    clusters = [ 2; 4 ];
    interleavings = [ 2; 4; 8 ];
    buses = [ 1; 2; 4; 8; 16 ];
    occupancies = [ 2 ];
    cache_sizes = [ 2048; 4096; 8192; 16384 ];
    associativities = [ 1; 2; 4 ];
    ab_capacities = [ 0; 2; 4; 8; 16; 32 ];
    max_unroll_cap = 16;
  }

(* Small enough for `dune runtest` / CI yet with a bus level to prune:
   2-cluster, interleave-2 plans are bus-light, so the whole suite
   compiles rejection-free at 8 buses and the 16-bus level is skipped. *)
let smoke_grid =
  {
    clusters = [ 2 ];
    interleavings = [ 2 ];
    buses = [ 2; 8; 16 ];
    occupancies = [ 2 ];
    cache_sizes = [ 4096; 8192 ];
    associativities = [ 2 ];
    ab_capacities = [ 0; 16 ];
    max_unroll_cap = 16;
  }

(* ------------------------------------------------------- enumeration *)

type family = {
  f_clusters : int;
  f_interleaving : int;
  f_occupancy : int;
  f_levels : (Config.t * (Config.t * int) list) list;
      (* ascending bus order: (plan config, cells); a cell is its full
         simulation config plus the grid's AB capacity (0 = AB off, in
         which case the config keeps the base AB fields unused) *)
}

let plan_config base ~clusters ~interleaving ~buses ~occupancy =
  {
    base with
    Config.n_clusters = clusters;
    interleaving_factor = interleaving;
    n_reg_buses = buses;
    bus_occupancy = occupancy;
  }

let cell_config plan ~cache_size ~associativity ~ab =
  let c = { plan with Config.cache_size; associativity } in
  if ab > 0 then { c with Config.ab_entries = ab } else c

let valid c = Result.is_ok (Config.validate c)

(* Every emitted configuration is Config.validate-clean by
   construction: candidate plan and cell configs are filtered, so a
   grid may freely mix dimensions that only combine pairwise (the
   qcheck property pins this down). *)
let enumerate ?(base = Config.default) grid =
  let buses = List.sort_uniq compare grid.buses in
  List.concat_map
    (fun clusters ->
      List.concat_map
        (fun interleaving ->
          List.filter_map
            (fun occupancy ->
              if clusters * interleaving > grid.max_unroll_cap then None
              else
                let levels =
                  List.filter_map
                    (fun b ->
                      let plan =
                        plan_config base ~clusters ~interleaving ~buses:b
                          ~occupancy
                      in
                      if not (valid plan) then None
                      else
                        let cells =
                          List.concat_map
                            (fun cache_size ->
                              List.concat_map
                                (fun associativity ->
                                  List.filter_map
                                    (fun ab ->
                                      let c =
                                        cell_config plan ~cache_size
                                          ~associativity ~ab
                                      in
                                      if valid c then Some (c, ab) else None)
                                    grid.ab_capacities)
                                grid.associativities)
                            grid.cache_sizes
                        in
                        Some (plan, cells))
                    buses
                in
                if levels = [] then None
                else Some { f_clusters = clusters; f_interleaving = interleaving;
                            f_occupancy = occupancy; f_levels = levels })
            grid.occupancies)
        grid.interleavings)
    grid.clusters

let grid_cells fams =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc (_, cells) -> acc + List.length cells) acc
        f.f_levels)
    0 fams

(* --------------------------------------------------------- cost model *)

(* A stylized relative-area model — NOT from the paper, just a monotone
   tie-breaker that makes "more hardware" cost more: per-cluster FU/RF
   area, cache SRAM, way comparators, bank decoders (clusters x
   interleaving banks), bus wiring (strictly increasing in the bus
   count — the pruning-soundness argument needs skipped higher-bus
   twins to cost strictly more), and AB CAM entries per cluster. *)
let hardware_cost ~clusters ~interleaving ~buses ~occupancy ~cache_size
    ~associativity ~ab =
  (4.0 *. float_of_int clusters)
  +. (float_of_int cache_size /. 1024.0)
  +. (0.5 *. float_of_int (associativity - 1))
  +. (0.25 *. float_of_int (clusters * interleaving))
  +. (float_of_int (buses * occupancy))
  +. (0.125 *. float_of_int (ab * clusters))

(* ------------------------------------------------------------ results *)

type cell_result = {
  r_clusters : int;
  r_interleaving : int;
  r_buses : int;
  r_occupancy : int;
  r_cache_size : int;
  r_associativity : int;
  r_ab : int;
  r_cycles : int;
  r_traffic : int;
  r_cost : float;
}

let cell_label r =
  Printf.sprintf "c%d·i%d·b%d·o%d %dK/%dw ab%d" r.r_clusters r.r_interleaving
    r.r_buses r.r_occupancy
    (r.r_cache_size / 1024)
    r.r_associativity r.r_ab

type pruned_family = {
  p_family : string;  (* Config.short_name of the rejection-free level *)
  p_at_buses : int;
  p_skipped_buses : int list;
  p_skipped_cells : int;
  p_binding : string;  (* what binds instead of buses, per Attribution *)
}

type result = {
  grid_cells_total : int;
  plan_groups : int;
  compiled_groups : int;
  evaluated : cell_result list;
  frontier : cell_result list;
  pruned : pruned_family list;
  pruned_cells : int;
}

(* --------------------------------------------------------------- sweep *)

let spec = Context.interleaved `Ipbc

(* Inter-cluster traffic: words served from remote modules plus
   attraction-buffer fills — both cross the inter-cluster buses.  Block
   fills come from the next memory level, not other clusters. *)
let traffic_of summary =
  let get k = match List.assoc_opt k summary with Some v -> v | None -> 0 in
  get "remote words" + get "attractions"

(* The dominant binding constraint over a family's loops at one bus
   level — the prune log's "what binds instead of buses". *)
let dominant_binding plan compiled_lists =
  let tally = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (List.iter (fun c ->
         let b = (Attribution.attribute plan c).Attribution.binding in
         incr total;
         Hashtbl.replace tally b
           (1 + Option.value ~default:0 (Hashtbl.find_opt tally b))))
    compiled_lists;
  let best =
    Hashtbl.fold
      (fun b n acc ->
        match acc with
        | Some (_, m) when m >= n -> acc
        | _ -> Some (b, n))
      tally None
  in
  match best with
  | None -> "none"
  | Some (b, n) -> Printf.sprintf "%s (%d/%d loops)" b n !total

let sweep ?(grid = default_grid) ?benches ?(prune = true) ?(trip_cap = 512)
    ctx =
  let benches =
    match benches with Some b -> b | None -> WL.Mediabench.all
  in
  let base = Context.cfg ctx in
  let fams = Array.of_list (enumerate ~base grid) in
  let nf = Array.length fams in
  let n_levels =
    Array.fold_left (fun a f -> max a (List.length f.f_levels)) 0 fams
  in
  (* Phase A: bus-ascension compiles, level-synchronous so each level's
     (family x benchmark) compiles fan out across the pool together.
     compiled_up_to.(fi) = how many bus levels of family fi were
     compiled; alive.(fi) = false once a rejection-free level proved the
     rest of the family's levels redundant. *)
  let alive = Array.make nf true in
  let compiled_up_to = Array.make nf 0 in
  let pruned = ref [] in
  for level = 0 to n_levels - 1 do
    let units =
      List.concat
        (List.filteri
           (fun fi _ -> alive.(fi) && level < List.length fams.(fi).f_levels)
           (Array.to_list (Array.mapi (fun fi f -> (fi, f)) fams))
        |> List.map (fun (fi, _) -> List.map (fun b -> (fi, b)) benches))
    in
    let rejections =
      Pool.map_ordered
        (fun (fi, bench) ->
          let plan, _ = List.nth fams.(fi).f_levels level in
          let c = Context.with_cfg ctx plan in
          let compiled = Context.compiled c bench spec in
          ( fi,
            List.fold_left
              (fun acc (cm : Pipeline.compiled) ->
                acc + cm.Pipeline.bus_window_rejections)
              0 compiled ))
        units
    in
    let per_family = Hashtbl.create 8 in
    List.iter
      (fun (fi, r) ->
        Hashtbl.replace per_family fi
          (r + Option.value ~default:0 (Hashtbl.find_opt per_family fi)))
      rejections;
    (* Families in index order — Hashtbl.iter order would leak into the
       pruned log and break jobs-independence of the rendered output. *)
    for fi = 0 to nf - 1 do
      match Hashtbl.find_opt per_family fi with
      | None -> ()
      | Some total_rej ->
        compiled_up_to.(fi) <- level + 1;
        let f = fams.(fi) in
        let skipped =
          List.filteri (fun l _ -> l > level) f.f_levels
        in
        if prune && total_rej = 0 && skipped <> [] then begin
          alive.(fi) <- false;
          let plan, _ = List.nth f.f_levels level in
          let compiled_lists =
            List.map
              (fun b -> Context.compiled (Context.with_cfg ctx plan) b spec)
              benches
          in
          pruned :=
            {
              p_family = Config.short_name plan;
              p_at_buses = plan.Config.n_reg_buses;
              p_skipped_buses =
                List.map (fun (p, _) -> p.Config.n_reg_buses) skipped;
              p_skipped_cells =
                List.fold_left
                  (fun acc (_, cells) -> acc + List.length cells)
                  0 skipped;
              p_binding = dominant_binding plan compiled_lists;
            }
            :: !pruned
        end
    done
  done;
  (* Phase B: batched simulations of every compiled plan group, one
     (group x benchmark) unit per pool task.  Group order is the
     enumeration order, so the evaluated-cell list (and hence the
     frontier) is a pure function of the grid and the prune decisions —
     never of the job count. *)
  let groups =
    List.concat
      (List.concat
         (List.init nf (fun fi ->
              List.init compiled_up_to.(fi) (fun level -> [ (fi, level) ]))))
  in
  let sim_units =
    List.concat_map
      (fun (fi, level) -> List.map (fun b -> (fi, level, b)) benches)
      groups
  in
  let sims =
    Pool.map_ordered
      (fun (fi, level, bench) ->
        let plan, cells = List.nth fams.(fi).f_levels level in
        let c = Context.with_cfg ctx plan in
        let bcells =
          List.map
            (fun (ccfg, ab) ->
              Context.cell ~cfg:ccfg
                (Machine.Word_interleaved { attraction_buffers = ab > 0 }))
            cells
        in
        List.map
          (fun (stats, traffic) ->
            (Stats.total_cycles stats, traffic_of traffic))
          (Context.run_batch c bench spec ~trip_cap bcells))
      sim_units
  in
  (* Fold the per-benchmark per-cell numbers back into group totals. *)
  let by_unit = List.combine sim_units sims in
  let evaluated =
    List.concat_map
      (fun (fi, level) ->
        let plan, cells = List.nth fams.(fi).f_levels level in
        let n = List.length cells in
        let cyc = Array.make n 0 and tra = Array.make n 0 in
        List.iter
          (fun ((fi', level', _), per_cell) ->
            if fi' = fi && level' = level then
              List.iteri
                (fun j (c, t) ->
                  cyc.(j) <- cyc.(j) + c;
                  tra.(j) <- tra.(j) + t)
                per_cell)
          by_unit;
        List.mapi
          (fun j (ccfg, ab) ->
            {
              r_clusters = plan.Config.n_clusters;
              r_interleaving = plan.Config.interleaving_factor;
              r_buses = plan.Config.n_reg_buses;
              r_occupancy = plan.Config.bus_occupancy;
              r_cache_size = ccfg.Config.cache_size;
              r_associativity = ccfg.Config.associativity;
              r_ab = ab;
              r_cycles = cyc.(j);
              r_traffic = tra.(j);
              r_cost =
                hardware_cost ~clusters:plan.Config.n_clusters
                  ~interleaving:plan.Config.interleaving_factor
                  ~buses:plan.Config.n_reg_buses
                  ~occupancy:plan.Config.bus_occupancy
                  ~cache_size:ccfg.Config.cache_size
                  ~associativity:ccfg.Config.associativity ~ab;
            })
          cells)
      groups
  in
  let frontier =
    List.map (fun p -> p.Pareto.tag)
      (Pareto.frontier
         (List.map
            (fun r ->
              Pareto.point r
                [|
                  float_of_int r.r_cycles; float_of_int r.r_traffic; r.r_cost;
                |])
            evaluated))
  in
  let pruned = List.rev !pruned in
  {
    grid_cells_total = grid_cells (Array.to_list fams);
    plan_groups =
      Array.fold_left (fun a f -> a + List.length f.f_levels) 0 fams;
    compiled_groups = Array.fold_left ( + ) 0 compiled_up_to;
    evaluated;
    frontier;
    pruned;
    pruned_cells =
      List.fold_left (fun a p -> a + p.p_skipped_cells) 0 pruned;
  }

(* ----------------------------------------------------------- reporting *)

let frontier_table ?max_rows r =
  let rows =
    List.map
      (fun c ->
        ( cell_label c,
          [ float_of_int c.r_cycles; float_of_int c.r_traffic; c.r_cost ] ))
      r.frontier
  in
  let rows =
    match max_rows with
    | Some n when List.length rows > n -> List.filteri (fun i _ -> i < n) rows
    | _ -> rows
  in
  Table.make
    ~title:
      (Printf.sprintf "DSE Pareto frontier (%d of %d evaluated cells)"
         (List.length r.frontier) (List.length r.evaluated))
    ~columns:[ "cycles"; "traffic"; "cost" ]
    rows

let pp_human ppf r =
  Format.fprintf ppf
    "grid: %d cells in %d plan groups; compiled %d groups, evaluated %d \
     cells, pruning skipped %d cells@."
    r.grid_cells_total r.plan_groups r.compiled_groups
    (List.length r.evaluated) r.pruned_cells;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "pruned %s: buses {%s} skipped (%d cells) — zero bus-window \
         rejections at %d buses; binds on %s@."
        p.p_family
        (String.concat ", " (List.map string_of_int p.p_skipped_buses))
        p.p_skipped_cells p.p_at_buses p.p_binding)
    r.pruned;
  Table.render ppf (frontier_table r);
  Format.pp_print_newline ppf ()

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json ppf ?wall_s ?cells_per_s ~memo r =
  let p fmt = Format.fprintf ppf fmt in
  p "{@.";
  p "  \"schema\": 1,@.";
  p "  \"grid_cells\": %d,@." r.grid_cells_total;
  p "  \"plan_groups\": %d,@." r.plan_groups;
  p "  \"compiled_groups\": %d,@." r.compiled_groups;
  p "  \"evaluated_cells\": %d,@." (List.length r.evaluated);
  p "  \"pruned_cells\": %d,@." r.pruned_cells;
  (match wall_s with Some w -> p "  \"wall_s\": %.3f,@." w | None -> ());
  (match cells_per_s with
  | Some c -> p "  \"cells_per_s\": %.1f,@." c
  | None -> ());
  p "  \"pruned\": [@.";
  List.iteri
    (fun i pr ->
      p "    {\"family\": \"%s\", \"at_buses\": %d, \"skipped_buses\": [%s], \
         \"skipped_cells\": %d, \"binding\": \"%s\"}%s@."
        (json_escape pr.p_family) pr.p_at_buses
        (String.concat ", " (List.map string_of_int pr.p_skipped_buses))
        pr.p_skipped_cells (json_escape pr.p_binding)
        (if i = List.length r.pruned - 1 then "" else ","))
    r.pruned;
  p "  ],@.";
  p "  \"memo\": {@.";
  List.iteri
    (fun i (name, (s : Memo.stats)) ->
      p "    \"%s\": {\"size\": %d, \"hits\": %d, \"misses\": %d, \
         \"evictions\": %d}%s@."
        (json_escape name) s.Memo.size s.Memo.hits s.Memo.misses
        s.Memo.evictions
        (if i = List.length memo - 1 then "" else ","))
    memo;
  p "  },@.";
  p "  \"frontier\": [@.";
  List.iteri
    (fun i c ->
      p "    {\"clusters\": %d, \"interleaving\": %d, \"buses\": %d, \
         \"occupancy\": %d, \"cache_size\": %d, \"associativity\": %d, \
         \"ab\": %d, \"cycles\": %d, \"traffic\": %d, \"cost\": %.3f}%s@."
        c.r_clusters c.r_interleaving c.r_buses c.r_occupancy c.r_cache_size
        c.r_associativity c.r_ab c.r_cycles c.r_traffic c.r_cost
        (if i = List.length r.frontier - 1 then "" else ","))
    r.frontier;
  p "  ]@.";
  p "}@."
