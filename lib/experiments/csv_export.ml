module Table = Vliw_report.Table

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* squeeze dashes and trim *)
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !last_dash then Buffer.add_char buf '-';
        last_dash := true
      end
      else begin
        Buffer.add_char buf c;
        last_dash := false
      end)
    s;
  let s = Buffer.contents buf in
  let s = if String.length s > 60 then String.sub s 0 60 else s in
  if String.length s > 0 && s.[String.length s - 1] = '-' then
    String.sub s 0 (String.length s - 1)
  else s

let all_tables ctx =
  Fig4.tables ctx @ Fig5.tables ctx @ Fig6.tables ctx
  @ [ Fig7.table ctx ]
  @ Fig8.tables ctx
  @ [ Ablation_interleave.table ~seed:7; Ablation_clusters.table ~seed:7 ]

let write_table ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slug (Table.title t) ^ ".csv") in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Table.render_csv ppf t;
  Format.pp_print_flush ppf ();
  close_out oc;
  path

let export ~dir ctx = List.map (write_table ~dir) (all_tables ctx)

(* The sweep's frontier as one CSV, row per frontier cell (every
   dimension spelled out, not just the label, so external tooling can
   pivot on any axis). *)
let frontier ~dir (r : Dse.result) =
  let t =
    Table.make ~title:"dse pareto frontier"
      ~columns:
        [
          "clusters"; "interleaving"; "buses"; "occupancy"; "cache_size";
          "associativity"; "ab"; "cycles"; "traffic"; "cost";
        ]
      (List.map
         (fun (c : Dse.cell_result) ->
           ( Dse.cell_label c,
             [
               float_of_int c.Dse.r_clusters;
               float_of_int c.Dse.r_interleaving;
               float_of_int c.Dse.r_buses;
               float_of_int c.Dse.r_occupancy;
               float_of_int c.Dse.r_cache_size;
               float_of_int c.Dse.r_associativity;
               float_of_int c.Dse.r_ab;
               float_of_int c.Dse.r_cycles;
               float_of_int c.Dse.r_traffic;
               c.Dse.r_cost;
             ] ))
         r.Dse.frontier)
  in
  write_table ~dir t

(* The oracle leaderboard as one CSV at an explicit path (explain
   --csv).  Mixed string/int cells, so it bypasses the float-typed
   Table and writes rows directly; fields here never need quoting
   (bench/loop/target/verdict are [a-z0-9_-] identifiers). *)
let leaderboard ~path rows =
  let oc = open_out path in
  output_string oc
    "bench,loop,target,unroll,heuristic_ii,attribution_mii,floor,minimal_ii,infeasible_below,verdict,witness_errors,decisions,conflicts,sound\n";
  List.iter
    (fun (row : Vliw_analysis.Explain.oracle_row) ->
      let c = row.Vliw_analysis.Explain.o_cert in
      let module O = Vliw_analysis.Oracle in
      Printf.fprintf oc "%s,%s,%s,%d,%d,%d,%d,%s,%d,%s,%d,%d,%d,%b\n"
        row.Vliw_analysis.Explain.o_bench row.Vliw_analysis.Explain.o_loop
        row.Vliw_analysis.Explain.o_target row.Vliw_analysis.Explain.o_unroll
        c.O.heuristic_ii row.Vliw_analysis.Explain.o_attr_mii c.O.floor
        (match c.O.minimal_ii with Some m -> string_of_int m | None -> "")
        c.O.infeasible_below
        (O.verdict_to_string c.O.verdict)
        (Vliw_analysis.Diagnostic.n_errors c.O.witness_diags)
        c.O.decisions c.O.conflicts (O.sound c))
    rows;
  close_out oc;
  path

let run ppf ctx =
  let paths = export ~dir:"results" ctx in
  Format.fprintf ppf "wrote %d CSV files:@." (List.length paths);
  List.iter (fun p -> Format.fprintf ppf "  %s@." p) paths
