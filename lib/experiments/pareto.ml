(* Pareto frontiers over n-objective minimization — the design-space
   sweep's reporting core.

   Deliberately the naive O(n^2) filter: the sweep emits a few thousand
   cells at most, determinism matters more than asymptotics here, and
   the filter preserves input order (so `--jobs 1` and `--jobs 2`
   render identical frontiers from identical cell lists).  Points with
   exactly equal objective vectors do not dominate each other — all of
   them survive, which is what makes frontier equality between the
   pruned and the exhaustive sweep an exact set comparison. *)

type 'a point = { tag : 'a; objectives : float array }

let point tag objectives = { tag; objectives }

(* [dominates a b]: a is no worse everywhere and strictly better
   somewhere.  Vectors must have equal length (the caller builds every
   point from the same objective list). *)
let dominates a b =
  let n = Array.length a in
  if n <> Array.length b then
    invalid_arg "Pareto.dominates: objective arity mismatch";
  let no_worse = ref true in
  let better = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then no_worse := false
    else if a.(i) < b.(i) then better := true
  done;
  !no_worse && !better

let frontier points =
  List.filter
    (fun p ->
      not
        (List.exists (fun q -> dominates q.objectives p.objectives) points))
    points
