module Table = Vliw_report.Table
module WL = Vliw_workloads

(* "Main data size" column of the paper's Table 1: (bytes, share). *)
let paper =
  [
    ("epicdec", (4, 0.84)); ("epicenc", (4, 0.89)); ("g721dec", (2, 0.89));
    ("g721enc", (2, 0.917)); ("gsmdec", (2, 0.99)); ("gsmenc", (2, 0.99));
    ("jpegdec", (1, 0.53)); ("jpegenc", (4, 0.70)); ("mpeg2dec", (8, 0.49));
    ("pegwitdec", (2, 0.758)); ("pegwitenc", (2, 0.836));
    ("pgpdec", (4, 0.921)); ("pgpenc", (4, 0.732)); ("rasta", (4, 0.95));
  ]

let table =
  let rows =
    List.map
      (fun bench ->
        let size, share = WL.Benchspec.dominant_size bench in
        let p_size, p_share = List.assoc bench.WL.Benchspec.name paper in
        ( bench.WL.Benchspec.name,
          [
            float_of_int size; share; float_of_int p_size; p_share;
            WL.Benchspec.indirect_share bench;
          ] ))
      WL.Mediabench.all
  in
  Table.make ~title:"Table 1: dominant access size of the generated suite"
    ~note:"ours vs. paper; last column: generated indirect-access share"
    ~columns:[ "size"; "share"; "paper-size"; "paper-share"; "indirect" ]
    rows

let run ppf =
  Table.render ppf table;
  Format.pp_print_newline ppf ()
