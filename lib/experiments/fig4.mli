(** Figure 4: classification of memory accesses under the IPBC heuristic
    for (i) no unrolling + alignment, (ii) OUF unrolling without
    alignment, (iii) OUF unrolling + alignment, and (iv) OUF + alignment
    without memory-dependent chains. *)

val variants : (string * Context.spec) list

val tables : Context.t -> Vliw_report.Table.t list
(** One access-class table per variant plus a local-hit-ratio summary. *)

val local_hit_gains : Context.t -> float * float
(** (gain from alignment under OUF, gain from unrolling under alignment)
    in absolute local-hit-ratio points, averaged over the suite — the
    paper reports +20% and +27%. *)

val run : Format.formatter -> Context.t -> unit
