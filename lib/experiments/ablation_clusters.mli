(** Scalability sweep (the introduction's motivation for fully
    distributed designs): 2, 4 and 8 clusters, word-interleaved cache
    with Attraction Buffers and the IPBC heuristic.  Total L1 capacity
    and bus counts are held at the Table-2 values; only the partitioning
    changes. *)

val cluster_counts : int list
val table : seed:int -> Vliw_report.Table.t
val run : Format.formatter -> Context.t -> unit
