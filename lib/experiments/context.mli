(** Shared machinery for the experiment drivers: compilation caching and
    the benchmark -> statistics runner.

    Every figure reuses compilations of the same (benchmark, target,
    unroll strategy, alignment) combination, so compiled loops are
    memoized per context on a thread-safe sharded single-flight table
    ({!Vliw_parallel.Memo}); a second table memoizes each compiled
    plan's execution-run address trace, so repeated sweeps over the
    same plan skip re-deriving the address stream.  One context can be
    shared by all worker domains of the parallel experiment engine.

    Sweeps that pit many memory-hierarchy points against one compiled
    plan should go through {!run_batch}: the batched executor traverses
    the plan once and dispatches each resolved address to every cell,
    which is where the fig6 / traffic / AB-size sweeps get their
    wall-clock win.  Batching happens inside the calling worker domain;
    drivers parallelize across plans via {!Vliw_parallel.Pool}. *)

type t

val create :
  ?cfg:Vliw_arch.Config.t ->
  ?seed:int ->
  ?compile_cap:int ->
  ?trace_cap:int ->
  unit ->
  t
(** [compile_cap] / [trace_cap] bound the two memos (FIFO eviction; see
    {!Vliw_parallel.Memo}) so fleet-scale sweeps cannot grow memory
    without bound.  The defaults (1024 compile entries, 8192 traces)
    are far above any single figure's working set; eviction only costs
    a recompute, never a result. *)

val cfg : t -> Vliw_arch.Config.t

val with_cfg : t -> Vliw_arch.Config.t -> t
(** A sibling context for another machine configuration $(b,sharing)
    the memo tables — the design-space sweep compiles each
    schedule-relevant config once through one shared memo this way.
    Safe because every memo key embeds the config fingerprint. *)

val memo_stats : t -> (string * Vliw_parallel.Memo.stats) list
(** Hit/miss/eviction counters and resident sizes of the compile,
    address-trace and oracle memos (labelled ["compiles"], ["traces"]
    and ["oracles"]). *)

val oracle_memo :
  t ->
  string ->
  (unit -> Vliw_analysis.Oracle.certification) ->
  Vliw_analysis.Oracle.certification
(** Single-flight memo for exact-II certifications, for threading into
    {!Vliw_analysis.Explain.run_all} as its [oracle_memo] — a given
    (bench, loop, target, seed, budget, config) key is searched at most
    once per process regardless of [--jobs].  The key is built by the
    explain driver and already embeds the config fingerprint. *)

type spec = {
  target : Vliw_core.Pipeline.target;
  strategy : Vliw_core.Unroll_select.strategy;
  aligned : bool;
}

val interleaved :
  ?chains:bool ->
  ?strategy:Vliw_core.Unroll_select.strategy ->
  ?aligned:bool ->
  [ `Ibc | `Ipbc ] ->
  spec
(** Convenience constructor; defaults: chains on, selective unrolling,
    alignment on. *)

val cache_key : t -> Vliw_workloads.Benchspec.t -> spec -> string
(** The memo key for a (benchmark, spec) pair.  Includes the context's
    seed and a {!Vliw_arch.Config.fingerprint} of its configuration, so
    entries can never be shared across differing machine configs. *)

val compiled : t -> Vliw_workloads.Benchspec.t -> spec -> Vliw_core.Pipeline.compiled list
(** Compile (or fetch from cache) every loop of the benchmark.
    Thread-safe: the memo shard owning the key is mutex-guarded with
    per-key single-flight, so concurrent callers of the same key block
    until the first finishes rather than compiling twice, and callers
    of different keys usually proceed on independent shard locks. *)

val run :
  t ->
  Vliw_workloads.Benchspec.t ->
  spec ->
  arch:Vliw_sim.Machine.arch ->
  ?ab_entries:int ->
  ?hints:bool ->
  unit ->
  Vliw_sim.Stats.t
(** Compile and execute the whole benchmark on one memory system,
    aggregating loop statistics.  [ab_entries] overrides the
    attraction-buffer capacity; [hints] enables the compiler's
    "attractable" marking with K = buffer entries (Section 5.2). *)

val run_loops :
  t ->
  Vliw_workloads.Benchspec.t ->
  spec ->
  arch:Vliw_sim.Machine.arch ->
  ?ab_entries:int ->
  ?hints:bool ->
  unit ->
  (Vliw_core.Pipeline.compiled * Vliw_sim.Stats.t) list
(** Per-loop variant of {!run} (used by the per-loop ablations). *)

val run_traffic :
  t ->
  Vliw_workloads.Benchspec.t ->
  spec ->
  arch:Vliw_sim.Machine.arch ->
  unit ->
  Vliw_sim.Stats.t * (string * int) list
(** Like {!run}, also returning the memory system's traffic counters. *)

type cell = {
  cell_arch : Vliw_sim.Machine.arch;
  cell_cfg : Vliw_arch.Config.t option;
  cell_ab_entries : int option;
  cell_hints : bool;
}
(** One memory-hierarchy point of a batched sweep: architecture, an
    optional full per-cell configuration (the design-space sweep's
    cache-geometry axis — must agree with the context's config on
    cluster count and interleaving factor, which the plan bakes in), an
    optional attraction-buffer capacity override applied on top, and
    whether the compiler's attractable hints are applied (with K
    derived from the cell's own AB capacity, as in {!run}). *)

val cell :
  ?cfg:Vliw_arch.Config.t ->
  ?ab_entries:int ->
  ?hints:bool ->
  Vliw_sim.Machine.arch ->
  cell
(** Convenience constructor; [hints] defaults to [false]. *)

val run_batch :
  t ->
  Vliw_workloads.Benchspec.t ->
  spec ->
  ?trip_cap:int ->
  cell list ->
  (Vliw_sim.Stats.t * (string * int) list) list
(** Compile the benchmark once, then simulate every cell in lockstep
    over a single traversal of each loop's access plan
    ({!Vliw_sim.Executor.run_loop_batched}).  Returns per-cell
    aggregated statistics and traffic counters, in cell order — each
    bit-identical to the corresponding {!run} / {!run_traffic} call.

    [trip_cap] (source iterations per loop; default unlimited) cuts
    every loop after [ceil (trip_cap / unroll_factor)] unrolled
    iterations — the design-space sweep's fidelity/wall-clock knob;
    counting source iterations keeps differently-unrolled plans
    simulating the same work. *)

val run_batch_loops :
  t ->
  Vliw_workloads.Benchspec.t ->
  spec ->
  ?trip_cap:int ->
  cell list ->
  (Vliw_core.Pipeline.compiled * Vliw_sim.Stats.t list) list
(** Per-loop variant of {!run_batch}: for each compiled loop, the
    statistics of every cell (cell order), for drivers that break
    results down by loop. *)

val weighted_balance : Vliw_core.Pipeline.compiled list -> float
(** Loop-weight-weighted mean of the schedules' workload balance — the
    paper's per-benchmark WB. *)

val amean : (string * float list) list -> string * float list
(** Arithmetic-mean row over the given rows. *)
