(** Table 1 self-check: the generated suite's dominant access sizes and
    indirect shares, next to the paper's reported numbers. *)

val table : Vliw_report.Table.t
val run : Format.formatter -> unit
