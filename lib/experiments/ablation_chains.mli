(** Section 5.4 ablation: breaking memory-dependent chains.

    epicdec is the benchmark the chains hurt most; compiling its loops
    without chain constraints (the what-if version the paper proposes to
    select with runtime check code) tightens the schedules, raises the
    local-hit ratio and cuts stall time. *)

val table : Context.t -> Vliw_report.Table.t
val run : Format.formatter -> Context.t -> unit
