module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }
let target_loop = "unquantize"

let loop_stall ctx spec ~ab_entries ~hints =
  let per_loop = Context.run_loops ctx (WL.Mediabench.find "epicdec") spec ~arch ~ab_entries ~hints () in
  let in_loop =
    List.fold_left
      (fun acc ((c : Pipeline.compiled), s) ->
        if c.Pipeline.source.Loop.name = target_loop then
          acc + Stats.stall_cycles s
        else acc)
      0 per_loop
  in
  let total =
    List.fold_left (fun acc (_, s) -> acc + Stats.stall_cycles s) 0 per_loop
  in
  (in_loop, total)

let table ctx =
  let cells =
    List.concat_map
      (fun (hname, spec) ->
        List.map (fun entries -> (hname, spec, entries)) [ 8; 16 ])
      [
        ("IPBC", Context.interleaved `Ipbc);
        ("IBC", Context.interleaved `Ibc);
      ]
  in
  let rows =
    Pool.map_ordered
      (fun (hname, spec, entries) ->
        let l0, t0 = loop_stall ctx spec ~ab_entries:entries ~hints:false in
        let l1, t1 = loop_stall ctx spec ~ab_entries:entries ~hints:true in
        ( Printf.sprintf "%s AB-%d" hname entries,
          [
            float_of_int l0; float_of_int l1;
            (if l0 = 0 then 0.0
             else 100.0 *. (1.0 -. (float_of_int l1 /. float_of_int l0)));
            float_of_int t0; float_of_int t1;
          ] ))
      cells
  in
  Table.make
    ~title:
      "Attractable hints (epicdec): stall cycles of the 19-op-chain loop \
       and the whole benchmark"
    ~columns:
      [ "loop"; "loop+hints"; "loop red. %"; "bench"; "bench+hints" ]
    rows

let run ppf ctx =
  Table.render ~precision:0 ppf (table ctx);
  Format.fprintf ppf
    "(paper: loop stall reduced 20%%/32%% with 8-entry and 13%%/6%% with \
     16-entry buffers for IPBC/IBC)@.@."
