module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }
let target_loop = "unquantize"

(* All four (AB size, hints) points of one heuristic share the compiled
   plan, so they run as a single four-cell batch over one trace
   traversal; the two heuristics are the parallel units. *)
let table ctx =
  let specs =
    [ ("IPBC", Context.interleaved `Ipbc); ("IBC", Context.interleaved `Ibc) ]
  in
  let cells =
    List.concat_map
      (fun entries ->
        [
          Context.cell ~ab_entries:entries ~hints:false arch;
          Context.cell ~ab_entries:entries ~hints:true arch;
        ])
      [ 8; 16 ]
  in
  let rows =
    Pool.map_ordered
      (fun (hname, spec) ->
        let per_loop =
          Context.run_batch_loops ctx (WL.Mediabench.find "epicdec") spec cells
        in
        let stall j ~in_loop_only =
          List.fold_left
            (fun acc ((c : Pipeline.compiled), stats) ->
              if
                (not in_loop_only)
                || c.Pipeline.source.Loop.name = target_loop
              then acc + Stats.stall_cycles (List.nth stats j)
              else acc)
            0 per_loop
        in
        List.map
          (fun (entries, j0, j1) ->
            let l0 = stall j0 ~in_loop_only:true
            and l1 = stall j1 ~in_loop_only:true in
            let t0 = stall j0 ~in_loop_only:false
            and t1 = stall j1 ~in_loop_only:false in
            ( Printf.sprintf "%s AB-%d" hname entries,
              [
                float_of_int l0; float_of_int l1;
                (if l0 = 0 then 0.0
                 else 100.0 *. (1.0 -. (float_of_int l1 /. float_of_int l0)));
                float_of_int t0; float_of_int t1;
              ] ))
          [ (8, 0, 1); (16, 2, 3) ])
      specs
    |> List.concat
  in
  Table.make
    ~title:
      "Attractable hints (epicdec): stall cycles of the 19-op-chain loop \
       and the whole benchmark"
    ~columns:
      [ "loop"; "loop+hints"; "loop red. %"; "bench"; "bench+hints" ]
    rows

let run ppf ctx =
  Table.render ~precision:0 ppf (table ctx);
  Format.fprintf ppf
    "(paper: loop stall reduced 20%%/32%% with 8-entry and 13%%/6%% with \
     16-entry buffers for IPBC/IBC)@.@."
