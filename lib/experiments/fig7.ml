module Pool = Vliw_parallel.Pool
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

let variants =
  [
    ("no unrolling", Context.interleaved ~strategy:US.No_unrolling `Ipbc);
    ("OUF", Context.interleaved ~strategy:US.Ouf_unrolling `Ipbc);
    ( "OUF no chains",
      Context.interleaved ~chains:false ~strategy:US.Ouf_unrolling `Ipbc );
  ]

let table ctx =
  let rows =
    Pool.map_ordered
      (fun bench ->
        ( bench.WL.Benchspec.name,
          List.map
            (fun (_, spec) ->
              Context.weighted_balance (Context.compiled ctx bench spec))
            variants ))
      WL.Mediabench.all
  in
  Table.make
    ~title:"Figure 7: workload balance under IPBC (0.25 = perfect, 1.0 = worst)"
    ~columns:(List.map fst variants) rows

let run ppf ctx =
  Table.render ppf (table ctx);
  Format.pp_print_newline ppf ()
