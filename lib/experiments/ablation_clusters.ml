module Config = Vliw_arch.Config
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let cluster_counts = [ 2; 4; 8 ]

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }

let table ~seed =
  let contexts =
    List.map
      (fun n ->
        let cfg = { Config.default with Config.n_clusters = n } in
        (match Config.validate cfg with
        | Ok () -> ()
        | Error e -> invalid_arg e);
        (n, Context.create ~cfg ~seed ()))
      cluster_counts
  in
  let rows =
    Pool.map_ordered
      (fun bench ->
        ( bench.WL.Benchspec.name,
          List.map
            (fun (_, ctx) ->
              float_of_int
                (Stats.total_cycles
                   (Context.run ctx bench (Context.interleaved `Ipbc) ~arch ())))
            contexts ))
      WL.Mediabench.all
  in
  let rows = rows @ [ Context.amean rows ] in
  Table.make
    ~title:"Cluster-count sweep: total cycles, IPBC + Attraction Buffers"
    ~note:
      "more clusters add issue/FU bandwidth but spread the cache thinner \
       and lengthen communication"
    ~columns:(List.map (Printf.sprintf "%d clusters") cluster_counts)
    rows

let run ppf _ctx =
  Table.render ~precision:0 ppf (table ~seed:7);
  Format.pp_print_newline ppf ()
