(** Section 5.1 discussion: the interleaving factor should match the
    dominant access size — "if a processor is to be built for the gsm
    family of applications, a 2-byte interleaving factor would match
    better the applications' characteristics".  Sweeps I in {2, 4, 8}
    bytes and reports total cycles (IPBC + Attraction Buffers). *)

val factors : int list

val table : seed:int -> Vliw_report.Table.t
(** Fresh contexts per factor (the machine configuration changes). *)

val run : Format.formatter -> Context.t -> unit
