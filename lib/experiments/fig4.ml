module Access = Vliw_arch.Access
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

let variants =
  [
    ("no-unroll+align", Context.interleaved ~strategy:US.No_unrolling `Ipbc);
    ( "OUF w/o align",
      Context.interleaved ~strategy:US.Ouf_unrolling ~aligned:false `Ipbc );
    ("OUF+align", Context.interleaved ~strategy:US.Ouf_unrolling `Ipbc);
    ( "OUF+align no-chains",
      Context.interleaved ~chains:false ~strategy:US.Ouf_unrolling `Ipbc );
  ]

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = false }

let classes =
  [
    Access.Local_hit; Access.Remote_hit; Access.Local_miss;
    Access.Remote_miss; Access.Combined;
  ]

let fractions stats =
  let total = float_of_int (max 1 (Stats.total_accesses stats)) in
  List.map (fun k -> float_of_int (Stats.accesses stats k) /. total) classes

let stats_for ctx spec =
  Pool.map_ordered
    (fun bench ->
      (bench.WL.Benchspec.name, Context.run ctx bench spec ~arch ()))
    WL.Mediabench.all

let tables ctx =
  let per_variant =
    List.map
      (fun (label, spec) ->
        let rows =
          List.map (fun (n, s) -> (n, fractions s)) (stats_for ctx spec)
        in
        let rows = rows @ [ Context.amean rows ] in
        Table.make
          ~title:(Printf.sprintf "Figure 4 [%s]: memory access classes" label)
          ~columns:
            [ "local hit"; "remote hit"; "local miss"; "remote miss"; "comb" ]
          rows)
      variants
  in
  let summary =
    let rows =
      Pool.map_ordered
        (fun bench ->
          ( bench.WL.Benchspec.name,
            List.map
              (fun (_, spec) ->
                Stats.local_hit_ratio (Context.run ctx bench spec ~arch ()))
              variants ))
        WL.Mediabench.all
    in
    let rows = rows @ [ Context.amean rows ] in
    Table.make ~title:"Figure 4 summary: local-hit ratio per variant (IPBC)"
      ~columns:(List.map fst variants) rows
  in
  per_variant @ [ summary ]

let mean_local_hit ctx spec =
  let rows = stats_for ctx spec in
  List.fold_left (fun acc (_, s) -> acc +. Stats.local_hit_ratio s) 0.0 rows
  /. float_of_int (List.length rows)

let local_hit_gains ctx =
  let v label = List.assoc label variants in
  let align_gain =
    mean_local_hit ctx (v "OUF+align") -. mean_local_hit ctx (v "OUF w/o align")
  in
  let unroll_gain =
    mean_local_hit ctx (v "OUF+align")
    -. mean_local_hit ctx (v "no-unroll+align")
  in
  (align_gain, unroll_gain)

let run ppf ctx =
  List.iter (fun t -> Table.render ppf t; Format.pp_print_newline ppf ()) (tables ctx);
  let align_gain, unroll_gain = local_hit_gains ctx in
  Format.fprintf ppf
    "Local-hit ratio gain from variable alignment (OUF): %+.1f points \
     (paper: ~+20)@.Local-hit ratio gain from OUF unrolling (aligned): %+.1f \
     points (paper: ~+27)@."
    (100.0 *. align_gain) (100.0 *. unroll_gain)
