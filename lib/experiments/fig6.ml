module Access = Vliw_arch.Access
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let no_ab = Vliw_sim.Machine.Word_interleaved { attraction_buffers = false }
let with_ab = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }

let configs ctx bench =
  let ibc = Context.interleaved `Ibc and ipbc = Context.interleaved `Ipbc in
  [
    ("IBC", Context.run ctx bench ibc ~arch:no_ab ());
    ("IBC+AB", Context.run ctx bench ibc ~arch:with_ab ());
    ("IPBC", Context.run ctx bench ipbc ~arch:no_ab ());
    ("IPBC+AB", Context.run ctx bench ipbc ~arch:with_ab ());
  ]

(* The paper omits g721dec/g721enc from this figure: their stall time is
   negligible. *)
let plotted_benchmarks ctx =
  Pool.map_ordered
    (fun b ->
      ( b,
        Stats.stall_cycles
          (Context.run ctx b (Context.interleaved `Ibc) ~arch:no_ab ())
        > 0 ))
    WL.Mediabench.all
  |> List.filter_map (fun (b, keep) -> if keep then Some b else None)

let stall_kinds =
  [ Access.Remote_hit; Access.Local_miss; Access.Remote_miss; Access.Combined ]

let tables ctx =
  let benches = plotted_benchmarks ctx in
  let normalized =
    let rows =
      Pool.map_ordered
        (fun bench ->
          let runs = configs ctx bench in
          let base =
            float_of_int (max 1 (Stats.stall_cycles (List.assoc "IBC" runs)))
          in
          ( bench.WL.Benchspec.name,
            List.map
              (fun (_, s) -> float_of_int (Stats.stall_cycles s) /. base)
              runs ))
        benches
    in
    let rows = rows @ [ Context.amean rows ] in
    Table.make
      ~title:"Figure 6: stall time normalized to IBC without Attraction Buffers"
      ~columns:[ "IBC"; "IBC+AB"; "IPBC"; "IPBC+AB" ]
      rows
  in
  let breakdown heuristic_label spec =
    let rows =
      Pool.map_ordered
        (fun bench ->
          let s = Context.run ctx bench spec ~arch:no_ab () in
          let total = float_of_int (max 1 (Stats.stall_cycles s)) in
          ( bench.WL.Benchspec.name,
            List.map
              (fun k -> float_of_int (Stats.stall_of s k) /. total)
              stall_kinds ))
        benches
    in
    let rows = rows @ [ Context.amean rows ] in
    Table.make
      ~title:
        (Printf.sprintf "Figure 6 [%s, no AB]: stall share by access class"
           heuristic_label)
      ~columns:[ "remote hit"; "local miss"; "remote miss"; "comb" ]
      rows
  in
  [
    normalized;
    breakdown "IBC" (Context.interleaved `Ibc);
    breakdown "IPBC" (Context.interleaved `Ipbc);
  ]

let mean f xs =
  match xs with
  | [] -> 0.0
  | _ ->
      (* Evaluate the cells in parallel, then fold in input order so the
         floating-point sum is identical to the sequential run. *)
      let vs = Pool.map_ordered f xs in
      List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let ab_reduction ctx =
  let benches = plotted_benchmarks ctx in
  let reduction spec =
    mean
      (fun b ->
        let without = Stats.stall_cycles (Context.run ctx b spec ~arch:no_ab ()) in
        let with_ = Stats.stall_cycles (Context.run ctx b spec ~arch:with_ab ()) in
        if without = 0 then 0.0
        else 1.0 -. (float_of_int with_ /. float_of_int without))
      benches
  in
  (reduction (Context.interleaved `Ibc), reduction (Context.interleaved `Ipbc))

let remote_hit_share ctx =
  let benches = plotted_benchmarks ctx in
  let share spec =
    mean
      (fun b ->
        let s = Context.run ctx b spec ~arch:no_ab () in
        let total = Stats.stall_cycles s in
        if total = 0 then 0.0
        else
          float_of_int (Stats.stall_of s Access.Remote_hit)
          /. float_of_int total)
      benches
  in
  (share (Context.interleaved `Ibc), share (Context.interleaved `Ipbc))

let run ppf ctx =
  List.iter
    (fun t ->
      Table.render ppf t;
      Format.pp_print_newline ppf ())
    (tables ctx);
  let r_ibc, r_ipbc = ab_reduction ctx in
  let s_ibc, s_ipbc = remote_hit_share ctx in
  Format.fprintf ppf
    "Attraction Buffers reduce stall by %.0f%% (IBC, paper: 34%%) and \
     %.0f%% (IPBC, paper: 29%%)@.Remote hits cause %.0f%% (IBC, paper: \
     76%%) and %.0f%% (IPBC, paper: 72%%) of stall@."
    (100.0 *. r_ibc) (100.0 *. r_ipbc) (100.0 *. s_ibc) (100.0 *. s_ipbc)
