module Access = Vliw_arch.Access
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let no_ab = Vliw_sim.Machine.Word_interleaved { attraction_buffers = false }
let with_ab = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }

(* The figure's four configurations are two memory-hierarchy points
   (with/without Attraction Buffers) per compiled plan (IBC, IPBC): the
   sweep groups them by plan and runs each plan's pair as ONE batched
   traversal, parallel across (benchmark, plan) through the domain
   pool.  Every unique cell is simulated exactly once; the tables and
   the summary statistics below all read from this sweep. *)

type sweep = (WL.Benchspec.t * (string * Stats.t) list) list

let sweep ctx : sweep =
  let specs = [ (`Ibc, [ "IBC"; "IBC+AB" ]); (`Ipbc, [ "IPBC"; "IPBC+AB" ]) ] in
  let units =
    List.concat_map
      (fun b -> List.map (fun (h, labels) -> (b, h, labels)) specs)
      WL.Mediabench.all
  in
  let results =
    Pool.map_ordered
      (fun (b, h, labels) ->
        let stats =
          List.map fst
            (Context.run_batch ctx b (Context.interleaved h)
               [ Context.cell no_ab; Context.cell with_ab ])
        in
        (b, List.combine labels stats))
      units
  in
  (* Each benchmark contributed its IBC pair then its IPBC pair;
     stitch them back into one row of four configurations. *)
  let rec stitch = function
    | (b, ibc) :: (_, ipbc) :: rest -> (b, ibc @ ipbc) :: stitch rest
    | [] -> []
    | [ _ ] -> assert false
  in
  stitch results

(* The paper omits g721dec/g721enc from this figure: their stall time is
   negligible. *)
let plotted sw =
  List.filter
    (fun (_, runs) -> Stats.stall_cycles (List.assoc "IBC" runs) > 0)
    sw

let stall_kinds =
  [ Access.Remote_hit; Access.Local_miss; Access.Remote_miss; Access.Combined ]

let tables_of sw =
  let rows_src = plotted sw in
  let normalized =
    let rows =
      List.map
        (fun ((bench : WL.Benchspec.t), runs) ->
          let base =
            float_of_int (max 1 (Stats.stall_cycles (List.assoc "IBC" runs)))
          in
          ( bench.WL.Benchspec.name,
            List.map
              (fun (_, s) -> float_of_int (Stats.stall_cycles s) /. base)
              runs ))
        rows_src
    in
    let rows = rows @ [ Context.amean rows ] in
    Table.make
      ~title:"Figure 6: stall time normalized to IBC without Attraction Buffers"
      ~columns:[ "IBC"; "IBC+AB"; "IPBC"; "IPBC+AB" ]
      rows
  in
  let breakdown heuristic_label =
    let rows =
      List.map
        (fun ((bench : WL.Benchspec.t), runs) ->
          let s = List.assoc heuristic_label runs in
          let total = float_of_int (max 1 (Stats.stall_cycles s)) in
          ( bench.WL.Benchspec.name,
            List.map
              (fun k -> float_of_int (Stats.stall_of s k) /. total)
              stall_kinds ))
        rows_src
    in
    let rows = rows @ [ Context.amean rows ] in
    Table.make
      ~title:
        (Printf.sprintf "Figure 6 [%s, no AB]: stall share by access class"
           heuristic_label)
      ~columns:[ "remote hit"; "local miss"; "remote miss"; "comb" ]
      rows
  in
  [ normalized; breakdown "IBC"; breakdown "IPBC" ]

let tables ctx = tables_of (sweep ctx)

let mean f xs =
  match xs with
  | [] -> 0.0
  | _ ->
      let vs = List.map f xs in
      List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let ab_reduction_of sw =
  let rows = plotted sw in
  let reduction without_label with_label =
    mean
      (fun (_, runs) ->
        let without = Stats.stall_cycles (List.assoc without_label runs) in
        let with_ = Stats.stall_cycles (List.assoc with_label runs) in
        if without = 0 then 0.0
        else 1.0 -. (float_of_int with_ /. float_of_int without))
      rows
  in
  (reduction "IBC" "IBC+AB", reduction "IPBC" "IPBC+AB")

let ab_reduction ctx = ab_reduction_of (sweep ctx)

let remote_hit_share_of sw =
  let rows = plotted sw in
  let share label =
    mean
      (fun (_, runs) ->
        let s = List.assoc label runs in
        let total = Stats.stall_cycles s in
        if total = 0 then 0.0
        else
          float_of_int (Stats.stall_of s Access.Remote_hit)
          /. float_of_int total)
      rows
  in
  (share "IBC", share "IPBC")

let remote_hit_share ctx = remote_hit_share_of (sweep ctx)

let run ppf ctx =
  let sw = sweep ctx in
  List.iter
    (fun t ->
      Table.render ppf t;
      Format.pp_print_newline ppf ())
    (tables_of sw);
  let r_ibc, r_ipbc = ab_reduction_of sw in
  let s_ibc, s_ipbc = remote_hit_share_of sw in
  Format.fprintf ppf
    "Attraction Buffers reduce stall by %.0f%% (IBC, paper: 34%%) and \
     %.0f%% (IPBC, paper: 29%%)@.Remote hits cause %.0f%% (IBC, paper: \
     76%%) and %.0f%% (IPBC, paper: 72%%) of stall@."
    (100.0 *. r_ibc) (100.0 *. r_ipbc) (100.0 *. s_ibc) (100.0 *. s_ipbc)
