(** The paper's worked example (Section 4.3.3, Figure 3): an 8-node DDG
    with two recurrences.  REC1 holds two loads (n1: hit rate 0.6, n2:
    hit rate 0.9, both with local-access ratio 0.5); REC2 holds one load
    feeding a divide.  With remote-miss/local-miss/remote-hit/local-hit
    latencies of 15/10/5/1, the paper's latency assignment ends with
    n2 = 1 (local hit), n6 = 1, and n1 = 4 (local hit plus the
    recurrence's slack).

    Node ids: 0 = n1 (load), 1 = n2 (load), 2 = n3 (add), 3 = n4
    (store), 4 = n5 (sub), 5 = n6 (load), 6 = n7 (div), 7 = n8 (add). *)

val ddg : unit -> Vliw_ir.Ddg.t
val profile : unit -> Vliw_core.Profile.t

val n1 : int
val n2 : int
val n6 : int

val rec1 : Vliw_ir.Ddg.t -> int list
(** Node set of REC1 as found by SCC analysis. *)

val benefit_table :
  Context.t -> (string * int * float * float * float) list
(** STEP-1 rows: (node label, target latency, delta II, delta stall, B)
    for every candidate reduction of n1 and n2 from remote miss. *)

val assigned : Context.t -> int array
(** Run the full latency assignment on the example. *)

val run : Format.formatter -> Context.t -> unit
