module Ddg = Vliw_ir.Ddg
module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Schedule = Vliw_sched.Schedule
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

let strategies =
  [
    US.No_unrolling; US.Unroll_times_n; US.Ouf_unrolling; US.Selective;
  ]

let totals ctx bench strategy =
  let compiled =
    Context.compiled ctx bench (Context.interleaved ~strategy `Ipbc)
  in
  let cycles =
    List.fold_left
      (fun acc (c : Pipeline.compiled) -> acc + c.Pipeline.estimated_cycles)
      0 compiled
  in
  let code =
    List.fold_left
      (fun acc (c : Pipeline.compiled) ->
        acc
        + (Ddg.n_ops c.Pipeline.loop.Loop.ddg
           + Schedule.n_copies c.Pipeline.schedule)
          * Schedule.stage_count c.Pipeline.schedule)
      0 compiled
  in
  (cycles, code)

let table_of ctx ~title pick =
  let rows =
    Pool.map_ordered
      (fun bench ->
        ( bench.WL.Benchspec.name,
          List.map
            (fun s -> float_of_int (pick (totals ctx bench s)))
            strategies ))
      WL.Mediabench.all
  in
  Table.make ~title
    ~columns:(List.map US.strategy_to_string strategies)
    (rows @ [ Context.amean rows ])

let tables ctx =
  [
    table_of ctx
      ~title:"Unrolling strategies: estimated execution cycles (IPBC)" fst;
    table_of ctx
      ~title:
        "Unrolling strategies: static code size (kernel ops x stage count)"
      snd;
  ]

let run ppf ctx =
  List.iter
    (fun t ->
      Table.render ~precision:0 ppf t;
      Format.pp_print_newline ppf ())
    (tables ctx);
  Format.fprintf ppf
    "(selective unrolling matches the fastest estimate per loop while \
     OUF maximizes locality at a code-size cost)@.@."
