(** Memory-system traffic comparison (the hardware-complexity argument
    of Sections 5.3/6): the word-interleaved cache moves words and block
    fills over plain buses, while the multiVLIW pays a snoopy coherence
    protocol — invalidations, cache-to-cache transfers and snoops on
    every bus transaction. *)

val tables : Context.t -> Vliw_report.Table.t list
val run : Format.formatter -> Context.t -> unit
