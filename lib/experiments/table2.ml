let run ppf ctx =
  Format.fprintf ppf "Table 2: configuration parameters@.%a@.@."
    Vliw_arch.Config.pp (Context.cfg ctx)
