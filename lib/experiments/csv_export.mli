(** Write every figure's tables as CSV files (for external plotting). *)

val all_tables : Context.t -> Vliw_report.Table.t list
(** Every table of fig4..fig8 plus the two sweeps. *)

val export : dir:string -> Context.t -> string list
(** Write each table as [dir/<slug>.csv]; returns the paths written. *)

val frontier : dir:string -> Dse.result -> string
(** Write a sweep's Pareto frontier as [dir/dse-pareto-frontier.csv],
    one row per frontier cell with every swept dimension as its own
    column; returns the path written. *)

val leaderboard :
  path:string -> Vliw_analysis.Explain.oracle_row list -> string
(** Write the oracle optimality leaderboard ([explain --oracle --csv])
    to [path], one row per certified II>MII loop: heuristic II,
    attribution MII, certified floor, proven minimal II (empty when the
    bracket stayed open), infeasibility frontier, verdict, witness
    verification errors, total decisions/conflicts, soundness flag.
    Returns the path written. *)

val run : Format.formatter -> Context.t -> unit
(** Export into [results/] and list the files. *)
