(** Write every figure's tables as CSV files (for external plotting). *)

val all_tables : Context.t -> Vliw_report.Table.t list
(** Every table of fig4..fig8 plus the two sweeps. *)

val export : dir:string -> Context.t -> string list
(** Write each table as [dir/<slug>.csv]; returns the paths written. *)

val frontier : dir:string -> Dse.result -> string
(** Write a sweep's Pareto frontier as [dir/dse-pareto-frontier.csv],
    one row per frontier cell with every swept dimension as its own
    column; returns the path written. *)

val run : Format.formatter -> Context.t -> unit
(** Export into [results/] and list the files. *)
