(** The four unrolling options of Section 5.1 — no unrolling, unroll x N,
    OUF unrolling, and selective unrolling — compared on estimated
    execution cycles and static code size (kernel operations times stage
    count, the prologue/epilogue cost the paper cites as a reason for
    *selective* unrolling). *)

val tables : Context.t -> Vliw_report.Table.t list
val run : Format.formatter -> Context.t -> unit
