module Builder = Vliw_ir.Builder
module Ddg = Vliw_ir.Ddg
module Edge = Vliw_ir.Edge
module Mem_access = Vliw_ir.Mem_access
module Opcode = Vliw_ir.Opcode
module Latency_assign = Vliw_core.Latency_assign
module Profile = Vliw_core.Profile

let n1 = 0
let n2 = 1
let n3 = 2
let n4 = 3
let n5 = 4
let n6 = 5
let n7 = 6
let n8 = 7

let mem symbol = Mem_access.make ~symbol ~stride:4 ~granularity:4 ()

let ddg () =
  let b = Builder.create () in
  let add ?mem opcode = Builder.add b ?mem opcode ~dests:[ Builder.fresh_reg b ] in
  let _n1 = add ~mem:(mem "a") Opcode.Load in
  let _n2 = add ~mem:(mem "b") Opcode.Load in
  let _n3 = add Opcode.Fp_alu in
  (* n3: 2-cycle add *)
  let _n4 = Builder.add b ~mem:(mem "c") ~srcs:[ 2 ] Opcode.Store in
  let _n5 = add Opcode.Int_alu in
  let _n6 = add ~mem:(mem "d") Opcode.Load in
  let _n7 = add Opcode.Int_div in
  let _n8 = add Opcode.Int_alu in
  (* REC1: n1 -> n2 -> n3 -> n4 -MA(d=1)-> n1 *)
  Builder.flow b n1 n2;
  Builder.flow b n2 n3;
  Builder.flow b n3 n4;
  Builder.dep b ~kind:Edge.Mem_anti ~distance:1 n4 n1;
  (* n5 feeds the REC1 load. *)
  Builder.flow b n5 n1;
  (* REC2: n6 -> n7 -> n8 -(d=1)-> n6 *)
  Builder.flow b n6 n7;
  Builder.flow b n7 n8;
  Builder.flow b ~distance:1 n8 n6;
  Builder.build b

let profile () =
  let p = Profile.empty ~n_ops:8 in
  let set i ~hit ~fractions =
    p.(i) <-
      Some
        (Profile.make_op ~hit_rate:hit ~cluster_fractions:fractions
           ~accesses:1000)
  in
  set n1 ~hit:0.6 ~fractions:[| 0.5; 0.5; 0.0; 0.0 |];
  set n2 ~hit:0.9 ~fractions:[| 0.5; 0.5; 0.0; 0.0 |];
  set n4 ~hit:0.9 ~fractions:[| 0.25; 0.5; 0.25; 0.0 |];
  set n6 ~hit:0.9 ~fractions:[| 0.0; 1.0; 0.0; 0.0 |];
  p

let rec1 ddg =
  List.find (List.mem n1) (Vliw_ir.Scc.recurrences ddg)

let label = function
  | 0 -> "n1" | 1 -> "n2" | 5 -> "n6" | i -> Printf.sprintf "n%d?" i

let benefit_table ctx =
  let cfg = Context.cfg ctx in
  let g = ddg () in
  let profile = profile () in
  let latencies = Array.init (Ddg.n_ops g) (Ddg.default_latency g) in
  latencies.(n1) <- cfg.Vliw_arch.Config.lat_remote_miss;
  latencies.(n2) <- cfg.Vliw_arch.Config.lat_remote_miss;
  latencies.(n6) <- cfg.Vliw_arch.Config.lat_remote_miss;
  let recurrence = rec1 g in
  List.concat_map
    (fun op ->
      List.filter_map
        (fun to_lat ->
          if to_lat >= latencies.(op) then None
          else
            let d_ii, d_stall =
              Latency_assign.benefit cfg g ~mode:Latency_assign.Four_level
                ~profile ~latencies ~recurrence ~op ~to_lat
            in
            let b = if d_stall <= 0.0 then infinity else d_ii /. d_stall in
            Some (label op, to_lat, d_ii, d_stall, b))
        (Latency_assign.levels cfg Latency_assign.Four_level))
    [ n1; n2 ]

let assigned ctx =
  Latency_assign.assign (Context.cfg ctx) (ddg ())
    ~mode:Latency_assign.Four_level ~profile:(profile ())

let run ppf ctx =
  Format.fprintf ppf
    "Worked example (Section 4.3.3): STEP 1 benefit table@.";
  Format.fprintf ppf "  %-4s %-8s %6s %8s %8s@." "node" "to lat" "dII"
    "dStall" "B";
  List.iter
    (fun (l, to_lat, d_ii, d_stall, b) ->
      Format.fprintf ppf "  %-4s %-8d %6.0f %8.2f %8.2f@." l to_lat d_ii
        d_stall b)
    (benefit_table ctx);
  let lat = assigned ctx in
  Format.fprintf ppf
    "Final assignment: n1 = %d (paper: 4), n2 = %d (paper: 1), n6 = %d \
     (paper: 1)@."
    lat.(n1) lat.(n2) lat.(n6);
  let g = ddg () in
  let target =
    Latency_assign.target_mii (Context.cfg ctx) g
      ~mode:Latency_assign.Four_level
  in
  Format.fprintf ppf "Loop MII with optimistic latencies: %d (paper: 8)@.@."
    target
