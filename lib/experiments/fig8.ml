module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Machine = Vliw_sim.Machine
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

let with_ab = Machine.Word_interleaved { attraction_buffers = true }

let configurations =
  [
    ("IPBC", Context.interleaved `Ipbc, with_ab);
    ("IBC", Context.interleaved `Ibc, with_ab);
    ( "MultiVLIW",
      { Context.target = Pipeline.Multivliw; strategy = US.Selective;
        aligned = true },
      Machine.Multivliw );
    ( "Unified(L=5)",
      { Context.target = Pipeline.Unified { slow = true };
        strategy = US.Selective; aligned = true },
      Machine.Unified { slow = true } );
  ]

let baseline =
  ( { Context.target = Pipeline.Unified { slow = false };
      strategy = US.Selective; aligned = true },
    Machine.Unified { slow = false } )

let stats_of ctx bench (spec, arch) = Context.run ctx bench spec ~arch ()

let tables ctx =
  let cells =
    Pool.map_ordered
      (fun bench ->
        let base =
          float_of_int
            (max 1 (Stats.total_cycles (stats_of ctx bench baseline)))
        in
        let totals, stalls =
          List.split
            (List.map
               (fun (_, spec, arch) ->
                 let s = stats_of ctx bench (spec, arch) in
                 ( float_of_int (Stats.total_cycles s) /. base,
                   float_of_int (Stats.stall_cycles s) /. base ))
               configurations)
        in
        (bench.WL.Benchspec.name, totals, stalls))
      WL.Mediabench.all
  in
  let rows_total = List.map (fun (n, t, _) -> (n, t)) cells in
  let rows_stall = List.map (fun (n, _, s) -> (n, s)) cells in
  let columns = List.map (fun (n, _, _) -> n) configurations in
  let finish rows = rows @ [ Context.amean rows ] in
  [
    Table.make
      ~title:
        "Figure 8: total cycles normalized to the unified cache with 1-cycle \
         latency"
      ~columns (finish rows_total);
    Table.make
      ~title:"Figure 8 (stall component of the normalized cycles)"
      ~columns (finish rows_stall);
  ]

let headline ctx =
  match tables ctx with
  | total :: _ ->
      ignore total;
      let rows =
        Pool.map_ordered
          (fun bench ->
            let base =
              float_of_int
                (max 1 (Stats.total_cycles (stats_of ctx bench baseline)))
            in
            ( bench.WL.Benchspec.name,
              List.map
                (fun (_, spec, arch) ->
                  float_of_int (Stats.total_cycles (stats_of ctx bench (spec, arch)))
                  /. base)
                configurations ))
          WL.Mediabench.all
      in
      let _, means = Context.amean rows in
      List.map2 (fun (n, _, _) m -> (n, m)) configurations means
  | [] -> []

let run ppf ctx =
  List.iter
    (fun t ->
      Table.render ppf t;
      Format.pp_print_newline ppf ())
    (tables ctx);
  let hs = headline ctx in
  List.iter
    (fun (n, m) -> Format.fprintf ppf "AMEAN %-12s %.3f x Unified(L=1)@." n m)
    hs;
  match
    ( List.assoc_opt "IPBC" hs, List.assoc_opt "IBC" hs,
      List.assoc_opt "Unified(L=5)" hs, List.assoc_opt "MultiVLIW" hs )
  with
  | Some ipbc, Some ibc, Some u5, Some mv ->
      Format.fprintf ppf
        "Speedup over Unified(L=5): IPBC %+.0f%% (paper: +5%%), IBC %+.0f%% \
         (paper: +10%%)@.Cycle-count vs multiVLIW: IPBC %+.0f%%, IBC %+.0f%% \
         (paper: ~+7%% degradation)@."
        (100.0 *. ((u5 /. ipbc) -. 1.0))
        (100.0 *. ((u5 /. ibc) -. 1.0))
        (100.0 *. ((ipbc /. mv) -. 1.0))
        (100.0 *. ((ibc /. mv) -. 1.0))
  | _ -> ()
