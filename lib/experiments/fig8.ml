module Pipeline = Vliw_core.Pipeline
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Machine = Vliw_sim.Machine
module Table = Vliw_report.Table
module US = Vliw_core.Unroll_select
module WL = Vliw_workloads

let with_ab = Machine.Word_interleaved { attraction_buffers = true }

let configurations =
  [
    ("IPBC", Context.interleaved `Ipbc, with_ab);
    ("IBC", Context.interleaved `Ibc, with_ab);
    ( "MultiVLIW",
      { Context.target = Pipeline.Multivliw; strategy = US.Selective;
        aligned = true },
      Machine.Multivliw );
    ( "Unified(L=5)",
      { Context.target = Pipeline.Unified { slow = true };
        strategy = US.Selective; aligned = true },
      Machine.Unified { slow = true } );
  ]

let baseline =
  ( { Context.target = Pipeline.Unified { slow = false };
      strategy = US.Selective; aligned = true },
    Machine.Unified { slow = false } )

(* Each configuration compiles a different plan, so cells cannot share a
   batch across configurations — instead every (benchmark, point) pair
   becomes one parallel unit (a single-cell batch reusing the memoized
   plan and trace), computed once and shared by the tables and the
   headline instead of being re-simulated per consumer. *)
type sweep = (string * float list * float list) list
(* benchmark name, per-configuration normalized totals and stalls *)

let sweep ctx : sweep =
  let points =
    baseline :: List.map (fun (_, spec, arch) -> (spec, arch)) configurations
  in
  let stride = List.length points in
  let units =
    List.concat_map
      (fun b -> List.map (fun p -> (b, p)) points)
      WL.Mediabench.all
  in
  let stats =
    Pool.map_ordered
      (fun (b, (spec, arch)) ->
        match Context.run_batch ctx b spec [ Context.cell arch ] with
        | [ (s, _) ] -> s
        | _ -> assert false)
      units
  in
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | x :: tl ->
          let group, rest = take (k - 1) tl in
          (x :: group, rest)
      | [] -> assert false
  in
  let rec chunk = function
    | [] -> []
    | rest ->
        let group, rest = take stride rest in
        group :: chunk rest
  in
  List.map2
    (fun (b : WL.Benchspec.t) group ->
      match group with
      | base :: confs ->
          let base = float_of_int (max 1 (Stats.total_cycles base)) in
          ( b.WL.Benchspec.name,
            List.map
              (fun s -> float_of_int (Stats.total_cycles s) /. base)
              confs,
            List.map
              (fun s -> float_of_int (Stats.stall_cycles s) /. base)
              confs )
      | [] -> assert false)
    WL.Mediabench.all (chunk stats)

let tables_of (sw : sweep) =
  let rows_total = List.map (fun (n, t, _) -> (n, t)) sw in
  let rows_stall = List.map (fun (n, _, s) -> (n, s)) sw in
  let columns = List.map (fun (n, _, _) -> n) configurations in
  let finish rows = rows @ [ Context.amean rows ] in
  [
    Table.make
      ~title:
        "Figure 8: total cycles normalized to the unified cache with 1-cycle \
         latency"
      ~columns (finish rows_total);
    Table.make
      ~title:"Figure 8 (stall component of the normalized cycles)"
      ~columns (finish rows_stall);
  ]

let tables ctx = tables_of (sweep ctx)

let headline_of (sw : sweep) =
  let rows = List.map (fun (n, t, _) -> (n, t)) sw in
  let _, means = Context.amean rows in
  List.map2 (fun (n, _, _) m -> (n, m)) configurations means

let headline ctx = headline_of (sweep ctx)

let run ppf ctx =
  let sw = sweep ctx in
  List.iter
    (fun t ->
      Table.render ppf t;
      Format.pp_print_newline ppf ())
    (tables_of sw);
  let hs = headline_of sw in
  List.iter
    (fun (n, m) -> Format.fprintf ppf "AMEAN %-12s %.3f x Unified(L=1)@." n m)
    hs;
  match
    ( List.assoc_opt "IPBC" hs, List.assoc_opt "IBC" hs,
      List.assoc_opt "Unified(L=5)" hs, List.assoc_opt "MultiVLIW" hs )
  with
  | Some ipbc, Some ibc, Some u5, Some mv ->
      Format.fprintf ppf
        "Speedup over Unified(L=5): IPBC %+.0f%% (paper: +5%%), IBC %+.0f%% \
         (paper: +10%%)@.Cycle-count vs multiVLIW: IPBC %+.0f%%, IBC %+.0f%% \
         (paper: ~+7%% degradation)@."
        (100.0 *. ((u5 /. ipbc) -. 1.0))
        (100.0 *. ((u5 /. ibc) -. 1.0))
        (100.0 *. ((ipbc /. mv) -. 1.0))
        (100.0 *. ((ibc /. mv) -. 1.0))
  | _ -> ()
