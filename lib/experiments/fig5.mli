(** Figure 5: classification of the remote hits that generate stall time
    by the paper's four (non-exclusive) factors, for IBC and IPBC with
    selective unrolling. *)

val tables : Context.t -> Vliw_report.Table.t list
val run : Format.formatter -> Context.t -> unit
