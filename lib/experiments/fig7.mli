(** Figure 7: workload balance for IPBC with (i) no unrolling, (ii) OUF
    unrolling, and (iii) OUF unrolling without memory-dependent chains.
    0.25 is perfect balance on four clusters; 1.0 fully unbalanced. *)

val table : Context.t -> Vliw_report.Table.t
val run : Format.formatter -> Context.t -> unit
