module Config = Vliw_arch.Config
module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Unroll_select = Vliw_core.Unroll_select
module Schedule = Vliw_sched.Schedule
module WL = Vliw_workloads
module Sim = Vliw_sim

(* The compile memo is shared by every worker domain of the parallel
   experiment engine, so it is mutex-guarded with per-key single-flight:
   the first domain to ask for a key claims it (In_flight) and compiles
   outside the lock; latecomers block on the condition until the result
   lands.  No (bench, spec) pair is ever compiled twice.

   The memo is sharded by key hash: domains asking for different keys
   contend on different locks, and a broadcast after a compile only
   wakes waiters of that shard rather than every blocked domain.
   Single-flight still holds per key because a key always maps to the
   same shard. *)
type entry = In_flight | Ready of Pipeline.compiled list

type shard = {
  cache : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  ready : Condition.t;
}

let n_shards = 16 (* power of two: shard index is a mask of the hash *)

type t = { cfg : Config.t; seed : int; shards : shard array }

let create ?(cfg = Config.default) ?(seed = 7) () =
  {
    cfg;
    seed;
    shards =
      Array.init n_shards (fun _ ->
          {
            cache = Hashtbl.create 8;
            lock = Mutex.create ();
            ready = Condition.create ();
          });
  }

let shard_for t key = t.shards.(Hashtbl.hash key land (n_shards - 1))

let cfg t = t.cfg

type spec = {
  target : Pipeline.target;
  strategy : Unroll_select.strategy;
  aligned : bool;
}

let interleaved ?(chains = true) ?(strategy = Unroll_select.Selective)
    ?(aligned = true) heuristic =
  { target = Pipeline.Interleaved { heuristic; chains }; strategy; aligned }

(* The config fingerprint (and seed) make the key self-contained: a memo
   entry can never leak across differing machine configurations even if
   contexts are ever pooled or serialized. *)
let cache_key t bench spec =
  Printf.sprintf "%s|%s|%s|%b|seed=%d|cfg=%s" bench.WL.Benchspec.name
    (Pipeline.target_to_string spec.target)
    (Unroll_select.strategy_to_string spec.strategy)
    spec.aligned t.seed
    (Config.fingerprint t.cfg)

let compile_uncached t bench spec =
  let layout =
    WL.Layout.create t.cfg ~aligned:spec.aligned ~run:WL.Layout.Profile_run
      ~seed:t.seed
  in
  let profiler = WL.Profiling.profiler t.cfg layout in
  List.map
    (Pipeline.compile t.cfg ~target:spec.target ~strategy:spec.strategy
       ~profiler)
    (WL.Benchspec.loops bench)

let compiled t bench spec =
  let key = cache_key t bench spec in
  let sh = shard_for t key in
  Mutex.lock sh.lock;
  let rec claim () =
    match Hashtbl.find_opt sh.cache key with
    | Some (Ready cs) ->
        Mutex.unlock sh.lock;
        `Hit cs
    | Some In_flight ->
        Condition.wait sh.ready sh.lock;
        claim ()
    | None ->
        Hashtbl.replace sh.cache key In_flight;
        Mutex.unlock sh.lock;
        `Miss
  in
  match claim () with
  | `Hit cs -> cs
  | `Miss -> (
      match compile_uncached t bench spec with
      | cs ->
          Mutex.lock sh.lock;
          Hashtbl.replace sh.cache key (Ready cs);
          Condition.broadcast sh.ready;
          Mutex.unlock sh.lock;
          cs
      | exception e ->
          (* Release the claim so waiters retry (and fail) themselves
             instead of blocking forever. *)
          Mutex.lock sh.lock;
          Hashtbl.remove sh.cache key;
          Condition.broadcast sh.ready;
          Mutex.unlock sh.lock;
          raise e)

let run_loops_on t bench spec ~machine ~cfg ?(hints = false) () =
  let exec_layout =
    WL.Layout.create cfg ~aligned:spec.aligned ~run:WL.Layout.Execution_run
      ~seed:t.seed
  in
  List.map
    (fun (c : Pipeline.compiled) ->
      let ddg = c.Pipeline.loop.Loop.ddg in
      let addr_of = WL.Layout.addr_fn exec_layout ddg in
      let attractable =
        if hints then
          Some
            (Vliw_core.Hints.attractable cfg ddg ~profile:c.Pipeline.profile
               ~schedule:c.Pipeline.schedule ())
        else None
      in
      (c, Sim.Executor.run_loop cfg machine c ~addr_of ?attractable ()))
    (compiled t bench spec)

let effective_cfg t ab_entries =
  match ab_entries with
  | None -> t.cfg
  | Some n -> { t.cfg with Config.ab_entries = n }

let run_loops t bench spec ~arch ?ab_entries ?hints () =
  let cfg = effective_cfg t ab_entries in
  let machine = Sim.Machine.create cfg arch in
  run_loops_on t bench spec ~machine ~cfg ?hints ()

let run t bench spec ~arch ?ab_entries ?hints () =
  let agg = Sim.Stats.create () in
  List.iter
    (fun (_, s) -> Sim.Stats.accumulate ~into:agg s)
    (run_loops t bench spec ~arch ?ab_entries ?hints ());
  agg

let run_traffic t bench spec ~arch () =
  let cfg = effective_cfg t None in
  let machine = Sim.Machine.create cfg arch in
  let agg = Sim.Stats.create () in
  List.iter
    (fun (_, s) -> Sim.Stats.accumulate ~into:agg s)
    (run_loops_on t bench spec ~machine ~cfg ());
  (agg, Sim.Machine.traffic_summary machine)

let weighted_balance cs =
  let total_w =
    List.fold_left
      (fun acc (c : Pipeline.compiled) -> acc +. c.Pipeline.loop.Loop.weight)
      0.0 cs
  in
  let sum =
    List.fold_left
      (fun acc (c : Pipeline.compiled) ->
        acc
        +. (c.Pipeline.loop.Loop.weight
           *. Schedule.workload_balance c.Pipeline.schedule))
      0.0 cs
  in
  if total_w = 0.0 then 0.0 else sum /. total_w

let amean rows =
  match rows with
  | [] -> ("AMEAN", [])
  | (_, first) :: _ ->
      let n = List.length rows in
      let sums = Array.make (List.length first) 0.0 in
      List.iter
        (fun (_, values) ->
          List.iteri (fun i v -> sums.(i) <- sums.(i) +. v) values)
        rows;
      ( "AMEAN",
        Array.to_list (Array.map (fun s -> s /. float_of_int n) sums) )
