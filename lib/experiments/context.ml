module Config = Vliw_arch.Config
module Loop = Vliw_ir.Loop
module Memo = Vliw_parallel.Memo
module Pipeline = Vliw_core.Pipeline
module Unroll_select = Vliw_core.Unroll_select
module Schedule = Vliw_sched.Schedule
module WL = Vliw_workloads
module Sim = Vliw_sim

(* Both memos are shared by every worker domain of the parallel
   experiment engine; Vliw_parallel.Memo provides the sharded,
   single-flight concurrency discipline (no key is ever computed
   twice, waiters block per shard rather than on one global lock). *)
type t = {
  cfg : Config.t;
  seed : int;
  compiles : Pipeline.compiled list Memo.t;
  traces : int array Memo.t;
      (* per-plan address traces, keyed by (compile key, loop index) *)
  oracles : Vliw_analysis.Oracle.certification Memo.t;
      (* exact-II certifications, keyed by
         bench/loop/target/seed/budget/config — see Explain.explain_bench *)
}

(* Default memo bounds: far above what any single-figure run touches
   (the whole suite across every spec is under a hundred compile keys)
   yet a hard ceiling for fleet-scale sweeps, whose distinct
   (benchmark, config) keys scale with the grid.  Eviction only costs a
   recompute, so results never depend on the caps. *)
let default_compile_cap = 1024
let default_trace_cap = 8192
let default_oracle_cap = 1024

let create ?(cfg = Config.default) ?(seed = 7)
    ?(compile_cap = default_compile_cap) ?(trace_cap = default_trace_cap) () =
  {
    cfg;
    seed;
    compiles = Memo.create ~cap:compile_cap ();
    traces = Memo.create ~cap:trace_cap ();
    oracles = Memo.create ~cap:default_oracle_cap ();
  }

let cfg t = t.cfg

(* The design-space sweep's entry point into the memo machinery: a
   sibling context for another machine configuration SHARING the memo
   tables.  Safe because every key embeds the configuration fingerprint
   — entries of different configs can coexist but never collide. *)
let with_cfg t cfg = { t with cfg }

let memo_stats t =
  [
    ("compiles", Memo.stats t.compiles);
    ("traces", Memo.stats t.traces);
    ("oracles", Memo.stats t.oracles);
  ]

(* The explain driver threads this through its workers so a (loop,
   budget, config) certification is only ever searched once per process,
   whatever --jobs is; single-flight means concurrent requesters of the
   same key block on one search rather than racing it. *)
let oracle_memo t key f = Memo.get t.oracles key f

type spec = {
  target : Pipeline.target;
  strategy : Unroll_select.strategy;
  aligned : bool;
}

let interleaved ?(chains = true) ?(strategy = Unroll_select.Selective)
    ?(aligned = true) heuristic =
  { target = Pipeline.Interleaved { heuristic; chains }; strategy; aligned }

(* The config fingerprint (and seed) make the key self-contained: a memo
   entry can never leak across differing machine configurations even if
   contexts are ever pooled or serialized. *)
let cache_key t bench spec =
  Printf.sprintf "%s|%s|%s|%b|seed=%d|cfg=%s" bench.WL.Benchspec.name
    (Pipeline.target_to_string spec.target)
    (Unroll_select.strategy_to_string spec.strategy)
    spec.aligned t.seed
    (Config.fingerprint t.cfg)

let compile_uncached t bench spec =
  let layout =
    WL.Layout.create t.cfg ~aligned:spec.aligned ~run:WL.Layout.Profile_run
      ~seed:t.seed
  in
  let profiler = WL.Profiling.profiler t.cfg layout in
  List.map
    (Pipeline.compile t.cfg ~target:spec.target ~strategy:spec.strategy
       ~profiler)
    (WL.Benchspec.loops bench)

let compiled t bench spec =
  Memo.get t.compiles (cache_key t bench spec) (fun () ->
      compile_uncached t bench spec)

(* The execution-run address stream of one compiled loop, memoized per
   (benchmark, spec, loop).  Addresses depend on the layout only through
   alignment, the seed and [Config.max_unroll] — none of which the
   per-cell knobs (AB capacity, backend choice) can change — so the
   trace is keyed and derived on the context's base configuration and
   shared by every configuration the plan is swept against. *)
let trace t bench spec ~index (c : Pipeline.compiled) =
  let key = Printf.sprintf "%s|loop=%d|trace" (cache_key t bench spec) index in
  Memo.get t.traces key (fun () ->
      let exec_layout =
        WL.Layout.create t.cfg ~aligned:spec.aligned
          ~run:WL.Layout.Execution_run ~seed:t.seed
      in
      Sim.Executor.address_trace c
        ~addr_of:(WL.Layout.addr_fn exec_layout c.Pipeline.loop.Loop.ddg))

let effective_cfg t ab_entries =
  match ab_entries with
  | None -> t.cfg
  | Some n -> { t.cfg with Config.ab_entries = n }

let attractable_flags cfg (c : Pipeline.compiled) =
  Vliw_core.Hints.attractable cfg c.Pipeline.loop.Loop.ddg
    ~profile:c.Pipeline.profile ~schedule:c.Pipeline.schedule ()

let run_loops_on t bench spec ~machine ~cfg ?(hints = false) () =
  List.mapi
    (fun index (c : Pipeline.compiled) ->
      let addr_trace = trace t bench spec ~index c in
      let attractable =
        if hints then Some (attractable_flags cfg c) else None
      in
      (c, Sim.Executor.run_loop cfg machine c ~addr_trace ?attractable ()))
    (compiled t bench spec)

let run_loops t bench spec ~arch ?ab_entries ?hints () =
  let cfg = effective_cfg t ab_entries in
  let machine = Sim.Machine.create cfg arch in
  run_loops_on t bench spec ~machine ~cfg ?hints ()

let run t bench spec ~arch ?ab_entries ?hints () =
  let agg = Sim.Stats.create () in
  List.iter
    (fun (_, s) -> Sim.Stats.accumulate ~into:agg s)
    (run_loops t bench spec ~arch ?ab_entries ?hints ());
  agg

let run_traffic t bench spec ~arch () =
  let cfg = effective_cfg t None in
  let machine = Sim.Machine.create cfg arch in
  let agg = Sim.Stats.create () in
  List.iter
    (fun (_, s) -> Sim.Stats.accumulate ~into:agg s)
    (run_loops_on t bench spec ~machine ~cfg ());
  (agg, Sim.Machine.traffic_summary machine)

(* ------------------------------------------------------------------ *)
(* Batched sweeps: many cache configurations over one compiled plan.

   A cell is one memory-hierarchy point of a sweep.  All cells of a
   batch share the compiled plan and its memoized address trace; each
   keeps its own machine across every loop of the benchmark (cache
   contents legitimately survive from loop to loop, as in the
   non-batched runner) and its own statistics.  Batching happens
   *within* the calling worker domain — the experiment drivers
   parallelize across plans and batch the configurations inside. *)

type cell = {
  cell_arch : Sim.Machine.arch;
  cell_cfg : Config.t option;
  cell_ab_entries : int option;
  cell_hints : bool;
}

let cell ?cfg ?ab_entries ?(hints = false) arch =
  {
    cell_arch = arch;
    cell_cfg = cfg;
    cell_ab_entries = ab_entries;
    cell_hints = hints;
  }

(* The full configuration one cell simulates under: its own config when
   given (the design-space sweep's cache-geometry axis), the context's
   otherwise, with the AB-capacity override applied on top either
   way. *)
let cell_cfg t cl =
  let base = match cl.cell_cfg with Some c -> c | None -> t.cfg in
  match cl.cell_ab_entries with
  | None -> base
  | Some n -> { base with Config.ab_entries = n }

(* A cell config may vary everything simulation-side, but the plan bakes
   in the cluster count and interleaving factor — a mismatch would have
   the executor issuing to clusters the cell's cache doesn't map. *)
let check_cell_geometry t cl =
  let c = cell_cfg t cl in
  if
    c.Config.n_clusters <> t.cfg.Config.n_clusters
    || c.Config.interleaving_factor <> t.cfg.Config.interleaving_factor
  then
    invalid_arg
      "Context: batch cell config disagrees with the plan on cluster count \
       or interleaving factor"

let batch_machines_and_loops t bench spec ?trip_cap cells =
  List.iter (check_cell_geometry t) cells;
  let machines =
    Sim.Machine.create_batch_cfgs
      (List.map (fun cl -> (cell_cfg t cl, cl.cell_arch)) cells)
  in
  let cells_a = Array.of_list cells in
  (* [trip_cap] counts SOURCE iterations, so differently-unrolled plans
     simulate the same amount of source work (up to the last partial
     unrolled iteration): the per-plan cut is ceil(cap / unroll). *)
  let trip_of (c : Pipeline.compiled) =
    match trip_cap with
    | None -> None
    | Some cap when cap <= 0 -> None
    | Some cap ->
        let uf = max 1 c.Pipeline.unroll_factor in
        Some ((cap + uf - 1) / uf)
  in
  let per_loop =
    List.mapi
      (fun index (c : Pipeline.compiled) ->
        let addr_trace = trace t bench spec ~index c in
        let bcells =
          Array.mapi
            (fun j cl ->
              {
                Sim.Executor.machine = machines.(j);
                attractable =
                  (if cl.cell_hints then
                     Some (attractable_flags (cell_cfg t cl) c)
                   else None);
              })
            cells_a
        in
        let stats =
          Sim.Executor.run_loop_batched t.cfg bcells c ~addr_trace
            ?trip:(trip_of c) ()
        in
        (c, Array.to_list stats))
      (compiled t bench spec)
  in
  (machines, per_loop)

let run_batch_loops t bench spec ?trip_cap cells =
  snd (batch_machines_and_loops t bench spec ?trip_cap cells)

let run_batch t bench spec ?trip_cap cells =
  let machines, per_loop = batch_machines_and_loops t bench spec ?trip_cap cells in
  let aggs = Array.map (fun _ -> Sim.Stats.create ()) machines in
  List.iter
    (fun (_, stats) ->
      List.iteri
        (fun j s -> Sim.Stats.accumulate ~into:aggs.(j) s)
        stats)
    per_loop;
  Array.to_list
    (Array.mapi
       (fun j agg -> (agg, Sim.Machine.traffic_summary machines.(j)))
       aggs)

let weighted_balance cs =
  let total_w =
    List.fold_left
      (fun acc (c : Pipeline.compiled) -> acc +. c.Pipeline.loop.Loop.weight)
      0.0 cs
  in
  let sum =
    List.fold_left
      (fun acc (c : Pipeline.compiled) ->
        acc
        +. (c.Pipeline.loop.Loop.weight
           *. Schedule.workload_balance c.Pipeline.schedule))
      0.0 cs
  in
  if total_w = 0.0 then 0.0 else sum /. total_w

let amean rows =
  match rows with
  | [] -> ("AMEAN", [])
  | (_, first) :: _ ->
      let n = List.length rows in
      let sums = Array.make (List.length first) 0.0 in
      List.iter
        (fun (_, values) ->
          List.iteri (fun i v -> sums.(i) <- sums.(i) +. v) values)
        rows;
      ( "AMEAN",
        Array.to_list (Array.map (fun s -> s /. float_of_int n) sums) )
