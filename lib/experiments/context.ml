module Config = Vliw_arch.Config
module Loop = Vliw_ir.Loop
module Pipeline = Vliw_core.Pipeline
module Unroll_select = Vliw_core.Unroll_select
module Schedule = Vliw_sched.Schedule
module WL = Vliw_workloads
module Sim = Vliw_sim

type t = {
  cfg : Config.t;
  seed : int;
  cache : (string, Pipeline.compiled list) Hashtbl.t;
}

let create ?(cfg = Config.default) ?(seed = 7) () =
  { cfg; seed; cache = Hashtbl.create 64 }

let cfg t = t.cfg

type spec = {
  target : Pipeline.target;
  strategy : Unroll_select.strategy;
  aligned : bool;
}

let interleaved ?(chains = true) ?(strategy = Unroll_select.Selective)
    ?(aligned = true) heuristic =
  { target = Pipeline.Interleaved { heuristic; chains }; strategy; aligned }

let cache_key bench spec =
  Printf.sprintf "%s|%s|%s|%b" bench.WL.Benchspec.name
    (Pipeline.target_to_string spec.target)
    (Unroll_select.strategy_to_string spec.strategy)
    spec.aligned

let compiled t bench spec =
  let key = cache_key bench spec in
  match Hashtbl.find_opt t.cache key with
  | Some cs -> cs
  | None ->
      let layout =
        WL.Layout.create t.cfg ~aligned:spec.aligned ~run:WL.Layout.Profile_run
          ~seed:t.seed
      in
      let profiler = WL.Profiling.profiler t.cfg layout in
      let cs =
        List.map
          (Pipeline.compile t.cfg ~target:spec.target ~strategy:spec.strategy
             ~profiler)
          (WL.Benchspec.loops bench)
      in
      Hashtbl.replace t.cache key cs;
      cs

let run_loops_on t bench spec ~machine ~cfg ?(hints = false) () =
  let exec_layout =
    WL.Layout.create cfg ~aligned:spec.aligned ~run:WL.Layout.Execution_run
      ~seed:t.seed
  in
  List.map
    (fun (c : Pipeline.compiled) ->
      let ddg = c.Pipeline.loop.Loop.ddg in
      let addr_of = WL.Layout.addr_fn exec_layout ddg in
      let attractable =
        if hints then
          Some
            (Vliw_core.Hints.attractable cfg ddg ~profile:c.Pipeline.profile
               ~schedule:c.Pipeline.schedule ())
        else None
      in
      (c, Sim.Executor.run_loop cfg machine c ~addr_of ?attractable ()))
    (compiled t bench spec)

let effective_cfg t ab_entries =
  match ab_entries with
  | None -> t.cfg
  | Some n -> { t.cfg with Config.ab_entries = n }

let run_loops t bench spec ~arch ?ab_entries ?hints () =
  let cfg = effective_cfg t ab_entries in
  let machine = Sim.Machine.create cfg arch in
  run_loops_on t bench spec ~machine ~cfg ?hints ()

let run t bench spec ~arch ?ab_entries ?hints () =
  let agg = Sim.Stats.create () in
  List.iter
    (fun (_, s) -> Sim.Stats.accumulate ~into:agg s)
    (run_loops t bench spec ~arch ?ab_entries ?hints ());
  agg

let run_traffic t bench spec ~arch () =
  let cfg = effective_cfg t None in
  let machine = Sim.Machine.create cfg arch in
  let agg = Sim.Stats.create () in
  List.iter
    (fun (_, s) -> Sim.Stats.accumulate ~into:agg s)
    (run_loops_on t bench spec ~machine ~cfg ());
  (agg, Sim.Machine.traffic_summary machine)

let weighted_balance cs =
  let total_w =
    List.fold_left
      (fun acc (c : Pipeline.compiled) -> acc +. c.Pipeline.loop.Loop.weight)
      0.0 cs
  in
  let sum =
    List.fold_left
      (fun acc (c : Pipeline.compiled) ->
        acc
        +. (c.Pipeline.loop.Loop.weight
           *. Schedule.workload_balance c.Pipeline.schedule))
      0.0 cs
  in
  if total_w = 0.0 then 0.0 else sum /. total_w

let amean rows =
  match rows with
  | [] -> ("AMEAN", [])
  | (_, first) :: _ ->
      let n = List.length rows in
      let sums = Array.make (List.length first) 0.0 in
      List.iter
        (fun (_, values) ->
          List.iteri (fun i v -> sums.(i) <- sums.(i) +. v) values)
        rows;
      ( "AMEAN",
        Array.to_list (Array.map (fun s -> s /. float_of_int n) sums) )
