(** Design-space exploration autopilot: fleet-scale [Config] sweeps
    with Pareto frontiers and constraint-guided pruning.

    Enumerates a grid of clusters x interleaving factor x register
    buses x attraction-buffer capacity x cache geometry, compiles each
    distinct (benchmark, schedule-relevant config) once through the
    shared sharded memo, runs each plan group's cells as lockstep
    batches ({!Vliw_sim.Executor.run_loop_batched}) fanned across the
    domain pool, and reports the Pareto frontier of IPBC cycles vs
    inter-cluster traffic vs a stylized hardware-cost model.  Output is
    byte-identical at any [--jobs].

    Pruning: bus levels ascend per (clusters, interleaving, occupancy)
    family; a level whose whole-suite compile incurred zero register-bus
    window rejections ({!Vliw_core.Pipeline.compiled}'s
    [bus_window_rejections]) provably compiles byte-identically at
    every higher bus count, whose cells are then dominated (identical
    cycles and traffic, strictly higher cost) — so pruning never drops
    a frontier point.  {!Vliw_analysis.Attribution} names the
    constraint that binds instead of buses in the prune log. *)

type grid = {
  clusters : int list;
  interleavings : int list;
  buses : int list;
  occupancies : int list;
  cache_sizes : int list;
  associativities : int list;
  ab_capacities : int list;  (** [0] = no attraction buffers *)
  max_unroll_cap : int;
      (** skip families whose [clusters * interleaving] (the maximum
          unroll) exceeds this — selective-unroll compile time explodes
          past the paper's 16 *)
}

val default_grid : grid
(** 2 or 4 clusters x interleave {2,4,8} (capped at N x I <= 16) x
    buses {1,2,4,8,16} x cache {2..16 KB} x associativity {1,2,4} x AB
    {0,2,..,32}: 1800 cells in 25 plan groups. *)

val smoke_grid : grid
(** A seconds-scale grid for `dune runtest` / CI with one bus level to
    prune. *)

type family = {
  f_clusters : int;
  f_interleaving : int;
  f_occupancy : int;
  f_levels : (Vliw_arch.Config.t * (Vliw_arch.Config.t * int) list) list;
      (** ascending bus order: (plan config, cells); each cell is its
          full simulation config plus the grid AB capacity (0 = off) *)
}

val enumerate : ?base:Vliw_arch.Config.t -> grid -> family list
(** Expand a grid into plan-group families.  Every emitted plan and
    cell configuration is [Config.validate]-clean by construction —
    invalid dimension combinations are filtered, not errors (the qcheck
    property pins this down). *)

val grid_cells : family list -> int
(** Total cells over every family and bus level. *)

val hardware_cost :
  clusters:int ->
  interleaving:int ->
  buses:int ->
  occupancy:int ->
  cache_size:int ->
  associativity:int ->
  ab:int ->
  float
(** The stylized relative-area model (not from the paper): strictly
    increasing in the bus count, which the pruning-soundness argument
    relies on. *)

type cell_result = {
  r_clusters : int;
  r_interleaving : int;
  r_buses : int;
  r_occupancy : int;
  r_cache_size : int;
  r_associativity : int;
  r_ab : int;
  r_cycles : int;  (** total IPBC cycles summed over the benchmarks *)
  r_traffic : int;  (** remote words + attractions, summed *)
  r_cost : float;  (** {!hardware_cost} *)
}

val cell_label : cell_result -> string

type pruned_family = {
  p_family : string;
  p_at_buses : int;
  p_skipped_buses : int list;
  p_skipped_cells : int;
  p_binding : string;
}

type result = {
  grid_cells_total : int;
  plan_groups : int;
  compiled_groups : int;
  evaluated : cell_result list;  (** enumeration order; prune-skipped
                                     cells excluded *)
  frontier : cell_result list;  (** Pareto-minimal evaluated cells *)
  pruned : pruned_family list;
  pruned_cells : int;
}

val sweep :
  ?grid:grid ->
  ?benches:Vliw_workloads.Benchspec.t list ->
  ?prune:bool ->
  ?trip_cap:int ->
  Context.t ->
  result
(** Run the sweep on the context's memo tables ([benches] defaults to
    the whole suite).  [trip_cap] (source iterations per loop; [<= 0]
    = unlimited; default 512) is the fidelity/wall-clock knob — every
    cell of a group is cut identically, so relative comparisons stand.
    Deterministic: the result is a pure function of (grid, benches,
    prune, trip_cap, context config/seed) — never of [--jobs]. *)

val frontier_table : ?max_rows:int -> result -> Vliw_report.Table.t

val pp_human : Format.formatter -> result -> unit
(** Prune log + frontier table + one summary line. *)

val pp_json :
  Format.formatter ->
  ?wall_s:float ->
  ?cells_per_s:float ->
  memo:(string * Vliw_parallel.Memo.stats) list ->
  result ->
  unit
(** Machine-readable document: totals, prune log, memo hit/miss/eviction
    counters, the full frontier, and (when given) wall-clock figures. *)
