(** Table 2: the simulated configuration. *)

val run : Format.formatter -> Context.t -> unit
