(** Figure 6: stall time by access class for IBC/IPBC with and without
    Attraction Buffers, normalized per benchmark to IBC without buffers.
    Also reports the suite-wide stall reduction the buffers bring
    (the paper: -34% for IBC, -29% for IPBC). *)

val tables : Context.t -> Vliw_report.Table.t list

val ab_reduction : Context.t -> float * float
(** (IBC, IPBC) mean relative stall reduction from Attraction Buffers
    over benchmarks with non-zero stall. *)

val remote_hit_share : Context.t -> float * float
(** (IBC, IPBC) mean share of stall due to remote hits without buffers
    (the paper: 76% and 72%). *)

val run : Format.formatter -> Context.t -> unit
