(** Pareto frontiers over n-objective minimization — how the
    design-space sweep reports its (cycles, traffic, hardware cost)
    trade-off surface. *)

type 'a point = { tag : 'a; objectives : float array }

val point : 'a -> float array -> 'a point

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse than [b] in every objective and
    strictly better in at least one (minimization).  Equal vectors do
    not dominate each other.
    @raise Invalid_argument on arity mismatch. *)

val frontier : 'a point list -> 'a point list
(** The non-dominated subset, in input order.  Points with exactly
    equal objective vectors all survive, so the frontier of a list is a
    deterministic function of the list — the property the sweep's
    jobs-independence and pruning-soundness golden tests compare. *)
