module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = false }

let factor_fractions stats =
  let total =
    List.fold_left
      (fun acc f -> acc + Stats.factor_count stats f)
      0 Stats.all_factors
  in
  List.map
    (fun f ->
      float_of_int (Stats.factor_count stats f) /. float_of_int (max 1 total))
    Stats.all_factors

let table_for ctx label spec =
  let rows =
    Pool.map_ordered
      (fun bench ->
        let s = Context.run ctx bench spec ~arch () in
        (* The paper drops benchmarks whose remote-hit stall is
           negligible from this figure. *)
        if Stats.stall_of s Vliw_arch.Access.Remote_hit = 0 then None
        else Some (bench.WL.Benchspec.name, factor_fractions s))
      WL.Mediabench.all
    |> List.filter_map Fun.id
  in
  Table.make
    ~title:
      (Printf.sprintf
         "Figure 5 [%s]: stalling remote hits by factor (shares of factor \
          counts)"
         label)
    ~note:"factors are not mutually exclusive"
    ~columns:(List.map Stats.factor_to_string Stats.all_factors)
    rows

let tables ctx =
  [
    table_for ctx "IBC" (Context.interleaved `Ibc);
    table_for ctx "IPBC" (Context.interleaved `Ipbc);
  ]

let run ppf ctx =
  List.iter
    (fun t ->
      Table.render ppf t;
      Format.pp_print_newline ppf ())
    (tables ctx)
