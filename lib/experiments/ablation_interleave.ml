module Config = Vliw_arch.Config
module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let factors = [ 2; 4; 8 ]

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }

let table ~seed =
  let contexts =
    List.map
      (fun i ->
        let cfg = { Config.default with Config.interleaving_factor = i } in
        (match Config.validate cfg with
        | Ok () -> ()
        | Error e -> invalid_arg e);
        (i, Context.create ~cfg ~seed ()))
      factors
  in
  let rows =
    Pool.map_ordered
      (fun bench ->
        ( bench.WL.Benchspec.name,
          List.map
            (fun (_, ctx) ->
              float_of_int
                (Stats.total_cycles
                   (Context.run ctx bench (Context.interleaved `Ipbc) ~arch ())))
            contexts ))
      WL.Mediabench.all
  in
  let rows = rows @ [ Context.amean rows ] in
  Table.make
    ~title:"Interleaving-factor sweep: total cycles, IPBC + Attraction Buffers"
    ~note:"the gsm/g721/pegwit 2-byte benchmarks prefer 2-byte interleaving"
    ~columns:(List.map (Printf.sprintf "I=%dB") factors)
    rows

let run ppf _ctx =
  Table.render ~precision:0 ppf (table ~seed:7);
  Format.pp_print_newline ppf ()
