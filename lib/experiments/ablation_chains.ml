module Pool = Vliw_parallel.Pool
module Stats = Vliw_sim.Stats
module Table = Vliw_report.Table
module WL = Vliw_workloads

let arch = Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }

let table ctx =
  let bench = WL.Mediabench.find "epicdec" in
  let row label spec =
    let s = Context.run ctx bench spec ~arch () in
    let compiled = Context.compiled ctx bench spec in
    ( label,
      [
        float_of_int (Stats.compute_cycles s);
        float_of_int (Stats.stall_cycles s);
        Stats.local_hit_ratio s;
        Context.weighted_balance compiled;
      ] )
  in
  Table.make
    ~title:"Breaking chains (epicdec, IPBC): with vs. without memory chains"
    ~columns:[ "compute"; "stall"; "local-hit"; "balance" ]
    (Pool.map_ordered
       (fun (label, spec) -> row label spec)
       [
         ("chains", Context.interleaved `Ipbc);
         ("no chains", Context.interleaved ~chains:false `Ipbc);
       ])

let run ppf ctx =
  Table.render ppf (table ctx);
  Format.fprintf ppf
    "(paper: the no-chain versions have tighter schedules, fewer remote \
     accesses and use the Attraction Buffers better)@.@."
