(** Figure 8: cycle counts of the four architecture configurations —
    word-interleaved cache with IPBC / IBC (16-entry Attraction
    Buffers), multiVLIW, and unified cache with a 5-cycle latency —
    normalized per benchmark to the unified cache with an (optimistic)
    1-cycle latency.  Compute and stall time are reported separately. *)

val tables : Context.t -> Vliw_report.Table.t list

val headline : Context.t -> (string * float) list
(** Suite AMEAN of normalized total cycles per configuration.  Paper
    shapes: IPBC ~1.18, IBC ~1.11, interleaved ~= multiVLIW (+7%), and
    both beat Unified(L=5) by 5% (IPBC) / 10% (IBC). *)

val run : Format.formatter -> Context.t -> unit
