(** A fixed-size pool of OCaml 5 domains over a mutex/condition work
    queue — the experiment engine's parallel substrate.

    The pool exists so the paper artefact can evaluate independent
    (benchmark, spec, architecture) cells concurrently while keeping the
    rendered reports byte-identical to a sequential run: {!map_ordered}
    preserves input order, and with [jobs = 1] no domain is ever
    spawned, so [--jobs 1] reproduces today's single-core behaviour
    exactly.

    Nested calls are safe: a task that itself calls {!map_ordered} (or
    {!map}) runs the inner map sequentially inside its worker domain
    rather than deadlocking on the shared queue. *)

type t
(** A pool of worker domains.  Workers live until {!shutdown}. *)

val create : ?clamp:bool -> ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [effective_jobs jobs] worker domains.
    [jobs] defaults to [Domain.recommended_domain_count ()].  An
    effective count [<= 1] creates a poolless handle that runs
    everything in the calling domain.  [~clamp:false] skips the
    hardware-parallelism clamp (still capped at [max_jobs]) — for the
    concurrency sanitizer and teardown tests, which need real worker
    domains even on a 1-core host; production callers should keep the
    default. *)

val jobs : t -> int
(** Worker-domain count the pool actually runs with (1 = sequential);
    may be lower than the [~jobs] requested — see {!effective_jobs}. *)

val effective_jobs : int -> int
(** How many worker domains a pool created with [~jobs] would actually
    spawn on this machine: the request clamped to [1 .. max_jobs] and to
    [Domain.recommended_domain_count ()].  Oversubscribing domains is a
    net loss (every domain joins stop-the-world minor collections), so
    requests beyond the hardware's parallelism degrade gracefully to
    what the host can truly run — on a 1-core host any [--jobs n] is
    effectively sequential rather than 2x slower. *)

val shutdown : t -> unit
(** Ask the workers to exit once the queue drains and join them.
    Idempotent.  Submitting to a shut-down pool runs sequentially.
    Every worker is joined even if a join re-raises a worker's escaped
    exception (the first failure propagates after all joins finish), so
    a dying worker can never orphan the remaining domains. *)

val unsafe_inject_for_test : t -> (unit -> unit) -> bool
(** Enqueue a raw task with none of {!map}'s exception capture — a
    raising task kills its worker domain.  Exists solely so the
    teardown regression test can drive {!shutdown}'s join-all path
    against a dead worker; never call it from production code.  Returns
    [false] on a poolless or stopped pool. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map on an explicit pool.  Exceptions
    raised by [f] are re-raised in the caller — the one belonging to the
    earliest input element, matching what sequential [List.map] would
    have raised first. *)

val default_jobs : unit -> int
(** The job count used by {!map_ordered} when [?jobs] is omitted.
    Initially [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Set the default job count (clamped to [>= 1]) — the [--jobs] flag.
    Shuts down and lazily re-creates the shared pool if the size
    changed. *)

val sequential_scope : (unit -> 'a) -> 'a
(** Run the callback with every nested {!map} / {!map_ordered} forced
    sequential in the calling domain (the same mechanism that keeps a
    worker's nested maps from deadlocking on the shared queue).  The
    compile service wraps each request handler in this: the request is
    the unit of parallelism, and the handler's domain-local
    {!Cancel} token must observe all of its own work.  Restores the
    previous behaviour on exit, even on exception. *)

val map_ordered : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_ordered ?jobs f xs] maps [f] over [xs] on the shared pool,
    returning results in input order.  [?jobs] overrides the default
    for this call only (a temporary pool is used when it differs from
    the shared pool's size).  [jobs = 1] is exactly [List.map f xs]. *)
