(** Cooperative, deterministic cancellation tokens — the compile
    service's per-request deadline mechanism.

    A token carries a budget counted in {e work units}, never
    wall-clock: instrumented code calls {!tick} at coarse deterministic
    points (one unit per candidate factor the selective search
    schedules, one unit per cell per 256-iteration chunk of a batched
    simulation, one unit per solver decision/conflict of an oracle
    probe), so a given computation under a given budget is cancelled at
    exactly the same point on every host and at every [--jobs] setting —
    a timed-out request produces byte-identical output on replay.

    The active token lives in domain-local storage: {!with_token}
    installs one for the dynamic extent of a request handler, and every
    {!tick} in library code is a no-op when no token is installed, so
    the one-shot CLI paths pay a single DLS read per tick site.

    Cancellation is an ordinary exception ({!Cancelled}); computations
    interrupted inside a {!Memo} single-flight slot release the claim on
    the way out (see {!Memo.get}), so a cancelled request never poisons
    a memo entry — the next requester of the key simply recomputes. *)

exception
  Cancelled of {
    stage : string;  (** last stage label, the partial attribution *)
    spent : int;  (** work units consumed when the budget tripped *)
    budget : int;
  }

type t

val create : budget:int -> t
(** A fresh token; [budget] is clamped to [>= 0].  The token trips when
    strictly more than [budget] units have been charged. *)

val budget : t -> int

val spent : t -> int
(** Work units charged so far (deterministic for a deterministic
    computation). *)

val with_token : t -> (unit -> 'a) -> 'a
(** Install [t] as the calling domain's active token for the duration
    of the callback (restoring any previously-installed token after,
    even on exception).  Tokens are per-domain: work fanned out to
    other domains is not covered — the service runs each request
    entirely in one worker domain ({!Pool.sequential_scope}). *)

val active : unit -> t option
(** The calling domain's installed token, if any. *)

val dls_snapshot : unit -> t option
(** The raw domain-local token slot — {!dls_restore} puts it back.  For
    the concurrency sanitizer's virtual scheduler, which swaps the slot
    around every fiber switch so fibers sharing one domain keep their
    own tokens.  Ordinary code should use {!with_token}. *)

val dls_restore : t option -> unit

val remaining : unit -> int option
(** [Some (budget - spent)] (clamped to [>= 0]) for the installed
    token; [None] when no token is installed.  The oracle caps each
    probe's decision budget with this, which is how a deadline reuses
    the solver's deterministic budget machinery. *)

val set_stage : string -> unit
(** Update the installed token's stage label (no-op without one) — the
    string reported as partial attribution if the budget trips. *)

val charge : int -> unit
(** Add work units to the installed token {e without} checking the
    budget — for code that wants to account completed work but return
    its result even when the deadline has just passed (the oracle
    charges a finished probe before deciding whether to continue). *)

val check : ?stage:string -> unit -> unit
(** Raise {!Cancelled} if the installed token is over budget.  No-op
    without a token. *)

val tick : ?stage:string -> int -> unit
(** [charge] then [check]: the one-call form used at pipeline and
    executor tick sites. *)

val cancel : ?stage:string -> unit -> 'a
(** Raise {!Cancelled} from the installed token unconditionally (used
    when a capped sub-computation reports that the cap — not its own
    budget — was the binding constraint).  Raises [Invalid_argument]
    when no token is installed: only instrumented request paths may
    call it. *)
