(* Instrumentation shim: passthrough / record / virtual.  See sync.mli. *)

module Trace = struct
  type event =
    | Acquire of int
    | Release of int
    | Wait_begin of { cond : int; mutex : int }
    | Wait_end of { cond : int; mutex : int }
    | Signal of { cond : int; broadcast : bool }
    | Read of int
    | Write of int
    | A_load of int
    | A_store of int
    | Fork of { child : int }
    | Begin of { parent : int }
    | End
    | Join of { child : int }
    | Note of string

  type entry = { stamp : int; ev : event }
  type thread = { tid : int; events : entry list }
  type t = { threads : thread list; names : (int * string) list }

  let name_of t id =
    match List.assoc_opt id t.names with
    | Some n -> n
    | None -> Printf.sprintf "#%d" id

  let n_events t =
    List.fold_left (fun acc th -> acc + List.length th.events) 0 t.threads
end

(* ------------------------------------------------------------ objects *)

type mutex = { m : Mutex.t; m_id : int }
type condition = { c : Condition.t; c_id : int }
type cell = { cell_id : int }
type atomic = { a : int Atomic.t; a_id : int }

let next_obj = Atomic.make 0
let names_mutex = Mutex.create ()
let names : (int, string) Hashtbl.t = Hashtbl.create 64

let new_obj name =
  let id = Atomic.fetch_and_add next_obj 1 in
  (match name with
  | None -> ()
  | Some n ->
      Mutex.lock names_mutex;
      Hashtbl.replace names id n;
      Mutex.unlock names_mutex);
  id

let with_id_base base f =
  let saved = Atomic.exchange next_obj base in
  Fun.protect ~finally:(fun () -> Atomic.set next_obj saved) f

let name_of_id id =
  Mutex.lock names_mutex;
  let n = Hashtbl.find_opt names id in
  Mutex.unlock names_mutex;
  n

let mutex ?name () = { m = Mutex.create (); m_id = new_obj name }
let condition ?name () = { c = Condition.create (); c_id = new_obj name }
let cell ?name () = { cell_id = new_obj name }
let atomic ?name v = { a = Atomic.make v; a_id = new_obj name }
let id_of_mutex m = m.m_id
let id_of_condition c = c.c_id
let id_of_cell c = c.cell_id
let id_of_atomic a = a.a_id

(* ---------------------------------------------------------- recording *)

(* [active] > 0 while a record scope is open anywhere in the process;
   the common passthrough case is one atomic load + one branch (plus the
   domain-local virtual-hook read). *)
let active = Atomic.make 0
let generation = Atomic.make 0
let stamp_counter = Atomic.make 0
let next_tid = Atomic.make 0

(* Serializes atomic-object operations with their stamps while
   recording, so per-object stamp order matches real execution order. *)
let atomic_order = Mutex.create ()

type local = { tid : int; gen : int; mutable buf : Trace.entry list }

(* tid -> the same [local] the owning domain appends to.  Guarded by
   [names_mutex] (registration is rare); snapshot happens after all
   in-scope threads are joined. *)
let logs : (int, local) Hashtbl.t = Hashtbl.create 16

let local_key : local option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let register_local l =
  Mutex.lock names_mutex;
  Hashtbl.replace logs l.tid l;
  Mutex.unlock names_mutex

let my_local () =
  let slot = Domain.DLS.get local_key in
  let gen = Atomic.get generation in
  match !slot with
  | Some l when l.gen = gen -> l
  | _ ->
      let l = { tid = Atomic.fetch_and_add next_tid 1; gen; buf = [] } in
      register_local l;
      slot := Some l;
      l

let adopt_local l =
  let slot = Domain.DLS.get local_key in
  slot := Some l

let recording () = Atomic.get active > 0

let record ev =
  if recording () then begin
    let l = my_local () in
    if l.gen = Atomic.get generation then begin
      let stamp = Atomic.fetch_and_add stamp_counter 1 in
      l.buf <- { Trace.stamp; ev } :: l.buf
    end
  end

(* ------------------------------------------------------- virtual hook *)

type virtual_ops = {
  v_lock : int -> unit;
  v_unlock : int -> unit;
  v_wait : cond:int -> mutex:int -> unit;
  v_signal : broadcast:bool -> int -> unit;
  v_read : int -> unit;
  v_write : int -> unit;
  v_aload : int -> unit;
  v_astore : int -> unit;
  v_spawn : (unit -> unit) -> int;
  v_join : int -> unit;
}

let virtual_key : virtual_ops option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_virtual_ops v = Domain.DLS.get virtual_key := v
let vops () = !(Domain.DLS.get virtual_key)

(* --------------------------------------------------------- operations *)

let lock mu =
  match vops () with
  | Some v -> v.v_lock mu.m_id
  | None ->
      if Atomic.get active = 0 then Mutex.lock mu.m
      else begin
        Mutex.lock mu.m;
        record (Trace.Acquire mu.m_id)
      end

let unlock mu =
  match vops () with
  | Some v -> v.v_unlock mu.m_id
  | None ->
      if Atomic.get active = 0 then Mutex.unlock mu.m
      else begin
        (* stamped while still holding the mutex *)
        record (Trace.Release mu.m_id);
        Mutex.unlock mu.m
      end

let wait cond mu =
  match vops () with
  | Some v -> v.v_wait ~cond:cond.c_id ~mutex:mu.m_id
  | None ->
      if Atomic.get active = 0 then Condition.wait cond.c mu.m
      else begin
        record (Trace.Wait_begin { cond = cond.c_id; mutex = mu.m_id });
        Condition.wait cond.c mu.m;
        record (Trace.Wait_end { cond = cond.c_id; mutex = mu.m_id })
      end

let signal cond =
  match vops () with
  | Some v -> v.v_signal ~broadcast:false cond.c_id
  | None ->
      if Atomic.get active = 0 then Condition.signal cond.c
      else begin
        record (Trace.Signal { cond = cond.c_id; broadcast = false });
        Condition.signal cond.c
      end

let broadcast cond =
  match vops () with
  | Some v -> v.v_signal ~broadcast:true cond.c_id
  | None ->
      if Atomic.get active = 0 then Condition.broadcast cond.c
      else begin
        record (Trace.Signal { cond = cond.c_id; broadcast = true });
        Condition.broadcast cond.c
      end

let read cl =
  match vops () with
  | Some v -> v.v_read cl.cell_id
  | None -> if Atomic.get active <> 0 then record (Trace.Read cl.cell_id)

let write cl =
  match vops () with
  | Some v -> v.v_write cl.cell_id
  | None -> if Atomic.get active <> 0 then record (Trace.Write cl.cell_id)

let get at =
  match vops () with
  | Some v ->
      v.v_aload at.a_id;
      Atomic.get at.a
  | None ->
      if Atomic.get active = 0 then Atomic.get at.a
      else begin
        Mutex.lock atomic_order;
        let r = Atomic.get at.a in
        record (Trace.A_load at.a_id);
        Mutex.unlock atomic_order;
        r
      end

let set at x =
  match vops () with
  | Some v ->
      v.v_astore at.a_id;
      Atomic.set at.a x
  | None ->
      if Atomic.get active = 0 then Atomic.set at.a x
      else begin
        Mutex.lock atomic_order;
        Atomic.set at.a x;
        record (Trace.A_store at.a_id);
        Mutex.unlock atomic_order
      end

let add at n =
  match vops () with
  | Some v ->
      v.v_astore at.a_id;
      ignore (Atomic.fetch_and_add at.a n)
  | None ->
      if Atomic.get active = 0 then ignore (Atomic.fetch_and_add at.a n)
      else begin
        Mutex.lock atomic_order;
        ignore (Atomic.fetch_and_add at.a n);
        record (Trace.A_store at.a_id);
        Mutex.unlock atomic_order
      end

let note msg = if recording () then record (Trace.Note msg)

(* --------------------------------------------------------- spawn/join *)

type 'a outcome = Done of 'a | Raised of exn

type 'a handle =
  | H_domain of { d : 'a Domain.t; child : int option }
  | H_virtual of { fid : int; result : 'a outcome option ref }

let spawn f =
  match vops () with
  | Some v ->
      let result = ref None in
      let fid =
        v.v_spawn (fun () ->
            match f () with
            | x -> result := Some (Done x)
            | exception e -> result := Some (Raised e))
      in
      H_virtual { fid; result }
  | None ->
      if not (recording ()) then H_domain { d = Domain.spawn f; child = None }
      else begin
        let parent = (my_local ()).tid in
        let gen = Atomic.get generation in
        let child = { tid = Atomic.fetch_and_add next_tid 1; gen; buf = [] } in
        register_local child;
        record (Trace.Fork { child = child.tid });
        let d =
          Domain.spawn (fun () ->
              adopt_local child;
              record (Trace.Begin { parent });
              Fun.protect ~finally:(fun () -> record Trace.End) f)
        in
        H_domain { d; child = Some child.tid }
      end

let join h =
  match h with
  | H_domain { d; child } ->
      let fin () =
        match child with
        | Some c when recording () -> record (Trace.Join { child = c })
        | _ -> ()
      in
      let r = try Domain.join d with e -> fin (); raise e in
      fin ();
      r
  | H_virtual { fid; result } -> (
      (match vops () with
      | Some v -> v.v_join fid
      | None ->
          invalid_arg "Sync.join: virtual handle outside virtual scheduler");
      match !result with
      | Some (Done x) -> x
      | Some (Raised e) -> raise e
      | None -> invalid_arg "Sync.join: virtual fiber not finished")

(* ------------------------------------------------------- record scope *)

(* Serializes record scopes process-wide. *)
let scope_mutex = Mutex.create ()

let record_scope f =
  Mutex.lock scope_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock scope_mutex)
    (fun () ->
      Mutex.lock names_mutex;
      Hashtbl.reset logs;
      Mutex.unlock names_mutex;
      Atomic.set stamp_counter 0;
      Atomic.set next_tid 0;
      Atomic.incr generation;
      (* the caller is tid 0 *)
      ignore (my_local () : local);
      Atomic.incr active;
      let v =
        Fun.protect
          ~finally:(fun () -> Atomic.decr active)
          (fun () ->
            let v = f () in
            record Trace.End;
            v)
      in
      Mutex.lock names_mutex;
      let threads =
        Hashtbl.fold
          (fun tid (l : local) acc ->
            { Trace.tid; events = List.rev l.buf } :: acc)
          logs []
        |> List.sort (fun a b -> compare a.Trace.tid b.Trace.tid)
      in
      let nm = Hashtbl.fold (fun id n acc -> (id, n) :: acc) names [] in
      Mutex.unlock names_mutex;
      (v, { Trace.threads; names = List.sort compare nm }))
