(** The concurrency-sanitizer instrumentation shim.

    Every synchronization primitive the parallel substrate uses —
    mutexes, condition variables, atomics, domain spawn/join — and every
    *annotated* shared-cell access goes through this module instead of
    the stdlib.  The shim has three modes:

    - {b passthrough} (the default): one atomic flag load and a
      domain-local read per operation, then the real stdlib call.  No
      events, no allocation — the production configuration the
      BENCH_compile.json cells are measured under.
    - {b record} (inside {!record_scope}): the real operation still
      runs, and an event carrying a globally-ordered stamp is appended
      to the calling domain's private append-only log.  The collected
      {!Trace.t} feeds the offline lockset / happens-before race
      detector, the lock-order deadlock lint and the condition-variable
      lints in [Vliw_concsan].
    - {b virtual} (when {!set_virtual_ops} installed a hook for the
      calling domain): the operation is diverted to a cooperative
      virtual scheduler — no stdlib call happens at all.  This is how
      the DPOR interleaving explorer runs {e real} [Memo] / service
      code single-threadedly while controlling every scheduling point.

    Stamp discipline: mutex events are stamped while the real mutex is
    held, and atomic-object operations are serialized with their stamp
    under a private lock while recording, so the per-object stamp order
    always agrees with the real execution order — the property the
    happens-before construction relies on. *)

type mutex
type condition

type cell
(** A marker for one shared non-atomic memory location (or a coherent
    group of locations guarded as a unit, e.g. one [Hashtbl]).  Cells
    carry no data — call {!read}/{!write} next to the real access so
    the race detector can see it. *)

type atomic
(** An [int Atomic.t] wrapped so loads and stores are traced and induce
    happens-before edges (every access is treated as acquire/release,
    matching the OCaml memory model's SC atomics). *)

val mutex : ?name:string -> unit -> mutex
val condition : ?name:string -> unit -> condition
val cell : ?name:string -> unit -> cell
val atomic : ?name:string -> int -> atomic

val lock : mutex -> unit
val unlock : mutex -> unit

val wait : condition -> mutex -> unit
(** Must be called holding [mutex], inside a predicate re-check loop —
    the trace lint [concsan/cond-no-recheck] flags wakes that proceed
    without re-reading any shared state. *)

val signal : condition -> unit
val broadcast : condition -> unit

val read : cell -> unit
val write : cell -> unit

val get : atomic -> int
val set : atomic -> int -> unit
val add : atomic -> int -> unit
(** [add a n] is an atomic fetch-and-add (result discarded). *)

val note : string -> unit
(** Free-form annotation appended to the trace when recording (no-op
    otherwise) — e.g. [Cancel] marks budget trips with it. *)

type 'a handle
(** A spawned thread of execution: a real [Domain.t] in passthrough and
    record modes, a virtual fiber under the interleaving explorer. *)

val spawn : (unit -> 'a) -> 'a handle
(** [Domain.spawn] with fork-edge bookkeeping: when recording, the
    parent logs a fork event and the child's log opens with a matching
    begin event, giving the analyzer its fork happens-before edge. *)

val join : 'a handle -> 'a
(** [Domain.join] (re-raising the thread's exception, like the real
    one), with the matching join happens-before edge when recording. *)

(* ------------------------------------------------------------ traces *)

module Trace : sig
  type event =
    | Acquire of int  (** mutex id *)
    | Release of int
    | Wait_begin of { cond : int; mutex : int }
        (** about to release [mutex] and block — counts as a release *)
    | Wait_end of { cond : int; mutex : int }
        (** woken and reacquired [mutex] — counts as an acquire *)
    | Signal of { cond : int; broadcast : bool }
    | Read of int  (** cell id *)
    | Write of int
    | A_load of int  (** atomic id *)
    | A_store of int  (** atomic store or read-modify-write *)
    | Fork of { child : int }  (** child thread id *)
    | Begin of { parent : int }
    | End  (** thread function returned (normally or by exception) *)
    | Join of { child : int }
    | Note of string

  type entry = { stamp : int; ev : event }
  (** [stamp] is a global sequence number consistent with the per-object
      real-time order of synchronization operations. *)

  type thread = { tid : int; events : entry list (* program order *) }
  type t = { threads : thread list; names : (int * string) list }

  val name_of : t -> int -> string
  (** Human name of an object id ("pool.queue", ...), or ["#<id>"]. *)

  val n_events : t -> int
end

val record_scope : (unit -> 'a) -> 'a * Trace.t
(** Run the callback with recording enabled in every domain and return
    the collected trace.  Scopes are serialized process-wide; threads
    spawned inside the scope should be joined inside it (a domain that
    outlives the scope simply stops logging).  Thread ids are assigned
    from 0 (the calling domain) in registration order. *)

(* ------------------------------------------- virtual-scheduler hook *)

type virtual_ops = {
  v_lock : int -> unit;
  v_unlock : int -> unit;
  v_wait : cond:int -> mutex:int -> unit;
  v_signal : broadcast:bool -> int -> unit;
  v_read : int -> unit;
  v_write : int -> unit;
  v_aload : int -> unit;
  v_astore : int -> unit;
  v_spawn : (unit -> unit) -> int;  (** returns the fiber id *)
  v_join : int -> unit;
}

val set_virtual_ops : virtual_ops option -> unit
(** Install (or clear) the calling domain's virtual-scheduler hook.
    While installed, every shim operation in this domain calls the hook
    instead of the stdlib — the DPOR explorer installs it around each
    explored execution.  Other domains are unaffected. *)

val with_id_base : int -> (unit -> 'a) -> 'a
(** Run the callback with the object-id counter moved to [base],
    restoring it after (even on exception).  The DPOR explorer wraps
    each explored execution in this so a scenario's [prepare] allocates
    the {e same} ids on every replay — its recorded schedules stay
    valid across executions.  Pick a base far above what production
    code ever allocates (the explorer uses 1_000_000) so the replayed
    ids cannot collide with live objects, and never run two id-based
    sessions (explorer or {!record_scope}) concurrently. *)

val name_of_id : int -> string option
(** The [?name] an object id was created with, if any — shared by
    traces and the virtual scheduler's failure messages. *)

val id_of_mutex : mutex -> int
val id_of_condition : condition -> int
val id_of_cell : cell -> int
val id_of_atomic : atomic -> int
(** Object ids, for scenario invariants that want to talk about the
    same ids the virtual scheduler sees. *)
