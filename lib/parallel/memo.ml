(* A thread-safe, sharded, single-flight memo table.

   This is the concurrency substrate the experiment engine's compile
   memo was built on, extracted so any per-context cache (compiled
   loops, per-plan address traces, ...) can reuse it: the first domain
   to ask for a key claims it (In_flight) and computes outside the
   lock; latecomers block on the shard's condition until the result
   lands.  No key is ever computed twice.

   The table is sharded by key hash: domains asking for different keys
   contend on different locks, and a broadcast after a computation only
   wakes waiters of that shard rather than every blocked domain.
   Single-flight still holds per key because a key always maps to the
   same shard. *)

type 'a entry = In_flight | Ready of 'a

type 'a shard = {
  cache : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  ready : Condition.t;
}

type 'a t = { mask : int; shards : 'a shard array }

let create ?(shards = 16) () =
  (* Power-of-two shard count: the shard index is a mask of the hash. *)
  let n =
    let rec up c = if c >= shards then c else up (c * 2) in
    up 1
  in
  {
    mask = n - 1;
    shards =
      Array.init n (fun _ ->
          {
            cache = Hashtbl.create 8;
            lock = Mutex.create ();
            ready = Condition.create ();
          });
  }

let shard_for t key = t.shards.(Hashtbl.hash key land t.mask)

let get t key compute =
  let sh = shard_for t key in
  Mutex.lock sh.lock;
  let rec claim () =
    match Hashtbl.find_opt sh.cache key with
    | Some (Ready v) ->
        Mutex.unlock sh.lock;
        `Hit v
    | Some In_flight ->
        Condition.wait sh.ready sh.lock;
        claim ()
    | None ->
        Hashtbl.replace sh.cache key In_flight;
        Mutex.unlock sh.lock;
        `Miss
  in
  match claim () with
  | `Hit v -> v
  | `Miss -> (
      match compute () with
      | v ->
          Mutex.lock sh.lock;
          Hashtbl.replace sh.cache key (Ready v);
          Condition.broadcast sh.ready;
          Mutex.unlock sh.lock;
          v
      | exception e ->
          (* Release the claim so waiters retry (and fail) themselves
             instead of blocking forever. *)
          Mutex.lock sh.lock;
          Hashtbl.remove sh.cache key;
          Condition.broadcast sh.ready;
          Mutex.unlock sh.lock;
          raise e)

let find_opt t key =
  let sh = shard_for t key in
  Mutex.lock sh.lock;
  let r =
    match Hashtbl.find_opt sh.cache key with
    | Some (Ready v) -> Some v
    | Some In_flight | None -> None
  in
  Mutex.unlock sh.lock;
  r

let length t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let n =
        Hashtbl.fold
          (fun _ e acc -> match e with Ready _ -> acc + 1 | In_flight -> acc)
          sh.cache 0
      in
      Mutex.unlock sh.lock;
      acc + n)
    0 t.shards
