(* A thread-safe, sharded, single-flight memo table.

   This is the concurrency substrate the experiment engine's compile
   memo was built on, extracted so any per-context cache (compiled
   loops, per-plan address traces, ...) can reuse it: the first domain
   to ask for a key claims it (In_flight) and computes outside the
   lock; latecomers block on the shard's condition until the result
   lands.  No key is ever computed twice concurrently.

   The table is sharded by key hash: domains asking for different keys
   contend on different locks, and a broadcast after a computation only
   wakes waiters of that shard rather than every blocked domain.
   Single-flight still holds per key because a key always maps to the
   same shard.

   Capacity: an optional bound caps the number of completed entries so
   fleet-scale sweeps (thousands of distinct configurations through one
   memo) cannot grow memory without bound.  The cap is enforced per
   shard (total capacity is the per-shard cap times the shard count,
   i.e. at least the requested cap); eviction is FIFO over each shard's
   completed keys.  Evicting only trades speed for memory — an evicted
   key is simply recomputed on its next request, with the same
   single-flight discipline — so results never depend on the cap.

   All synchronization goes through the Sync shim so the concurrency
   sanitizer can record and replay it; the hit/miss/eviction counters
   are atomics, so stats are exact even though hits are counted under
   the shard lock while other shards mutate theirs concurrently. *)

type 'a entry = In_flight | Ready of 'a

type 'a shard = {
  cache : (string, 'a entry) Hashtbl.t;
  c_cache : Sync.cell;  (* race-detector marker for [cache] + [order] *)
  order : string Queue.t;  (* completed keys, oldest first (FIFO) *)
  lock : Sync.mutex;
  ready : Sync.condition;
  hits : Sync.atomic;
  misses : Sync.atomic;
  evictions : Sync.atomic;
}

type 'a t = { mask : int; shard_cap : int option; shards : 'a shard array }

type stats = { size : int; hits : int; misses : int; evictions : int }

let create ?(shards = 16) ?cap () =
  (* Power-of-two shard count: the shard index is a mask of the hash. *)
  let n =
    let rec up c = if c >= shards then c else up (c * 2) in
    up 1
  in
  let shard_cap =
    match cap with
    | None -> None
    | Some c -> Some (max 1 ((max 1 c + n - 1) / n))
  in
  {
    mask = n - 1;
    shard_cap;
    shards =
      Array.init n (fun i ->
          let name fmt = Printf.sprintf fmt i in
          {
            cache = Hashtbl.create 8;
            c_cache = Sync.cell ~name:(name "memo.shard%d.cache") ();
            order = Queue.create ();
            lock = Sync.mutex ~name:(name "memo.shard%d.lock") ();
            ready = Sync.condition ~name:(name "memo.shard%d.ready") ();
            hits = Sync.atomic ~name:(name "memo.shard%d.hits") 0;
            misses = Sync.atomic ~name:(name "memo.shard%d.misses") 0;
            evictions = Sync.atomic ~name:(name "memo.shard%d.evictions") 0;
          });
  }

let shard_for t key = t.shards.(Hashtbl.hash key land t.mask)

(* Caller holds [sh.lock].  The queue mirrors the shard's Ready keys
   exactly (an In_flight claim is only queued once it completes, and an
   evicted key leaves the queue at eviction), so popping the front
   always names a live completed entry. *)
let evict_over_cap t sh =
  match t.shard_cap with
  | None -> ()
  | Some cap ->
      while Queue.length sh.order > cap do
        let victim = Queue.pop sh.order in
        Sync.write sh.c_cache;
        Hashtbl.remove sh.cache victim;
        Sync.add sh.evictions 1
      done

let get t key compute =
  let sh = shard_for t key in
  Sync.lock sh.lock;
  let rec claim () =
    Sync.read sh.c_cache;
    match Hashtbl.find_opt sh.cache key with
    | Some (Ready v) ->
        (* Waiters who blocked on another domain's In_flight claim land
           here too: they never computed, so they count as hits. *)
        Sync.add sh.hits 1;
        Sync.unlock sh.lock;
        `Hit v
    | Some In_flight ->
        Sync.wait sh.ready sh.lock;
        claim ()
    | None ->
        Sync.add sh.misses 1;
        Sync.write sh.c_cache;
        Hashtbl.replace sh.cache key In_flight;
        Sync.unlock sh.lock;
        `Miss
  in
  match claim () with
  | `Hit v -> v
  | `Miss -> (
      match compute () with
      | v ->
          Sync.lock sh.lock;
          Sync.write sh.c_cache;
          Hashtbl.replace sh.cache key (Ready v);
          Queue.push key sh.order;
          evict_over_cap t sh;
          Sync.broadcast sh.ready;
          Sync.unlock sh.lock;
          v
      | exception e ->
          (* Release the claim so waiters retry (and fail) themselves
             instead of blocking forever. *)
          Sync.lock sh.lock;
          Sync.write sh.c_cache;
          Hashtbl.remove sh.cache key;
          Sync.broadcast sh.ready;
          Sync.unlock sh.lock;
          raise e)

let find_opt t key =
  let sh = shard_for t key in
  Sync.lock sh.lock;
  Sync.read sh.c_cache;
  let r =
    match Hashtbl.find_opt sh.cache key with
    | Some (Ready v) -> Some v
    | Some In_flight | None -> None
  in
  Sync.unlock sh.lock;
  r

let length t =
  Array.fold_left
    (fun acc sh ->
      Sync.lock sh.lock;
      Sync.read sh.c_cache;
      let n =
        Hashtbl.fold
          (fun _ e acc -> match e with Ready _ -> acc + 1 | In_flight -> acc)
          sh.cache 0
      in
      Sync.unlock sh.lock;
      acc + n)
    0 t.shards

let stats t =
  Array.fold_left
    (fun acc sh ->
      Sync.lock sh.lock;
      Sync.read sh.c_cache;
      let size = Queue.length sh.order in
      Sync.unlock sh.lock;
      {
        size = acc.size + size;
        hits = acc.hits + Sync.get sh.hits;
        misses = acc.misses + Sync.get sh.misses;
        evictions = acc.evictions + Sync.get sh.evictions;
      })
    { size = 0; hits = 0; misses = 0; evictions = 0 }
    t.shards
