(* A fixed-size domain pool over a mutex/condition work queue.

   No dependencies beyond the stdlib: workers are domains blocking on a
   Condition until work arrives or shutdown is requested.  Each map call
   submits one closure per input element; the closures write into a
   caller-owned slot array, so the pool itself never needs to know the
   element types.  Completion is tracked per batch with a dedicated
   mutex/condition pair, which keeps unrelated concurrent batches
   (there are none today, but nothing forbids them) from waking each
   other spuriously.

   All synchronization runs through the Sync shim so the concurrency
   sanitizer can record the pool's real lock/queue traffic. *)

let max_jobs = 64

(* Spawning more domains than the hardware can run in parallel is a net
   loss, not a no-op: every domain participates in stop-the-world minor
   collections, so oversubscribed workers add synchronization cost on
   top of plain time-slicing.  On a single-core host this made
   [--jobs 2] run the fig4 sweep ~2x *slower* than [--jobs 1]. *)
let hw_parallelism = Domain.recommended_domain_count ()

let effective_jobs requested = max 1 (min (min requested max_jobs) hw_parallelism)

type task = unit -> unit

type shared = {
  mutex : Sync.mutex;
  work : Sync.condition;  (* signalled on enqueue and on shutdown *)
  queue : task Queue.t;
  c_queue : Sync.cell;  (* race-detector marker for [queue] *)
  mutable stop : bool;
  c_stop : Sync.cell;
  mutable workers : unit Sync.handle list;
}

type t = { jobs : int; shared : shared option }

(* Set in every worker domain: a task that itself maps must run the
   inner map sequentially — if every worker blocked waiting for nested
   sub-tasks sitting behind it in the same queue, the pool would
   deadlock. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* The compile service runs each request handler under this scope so a
   handler that calls a pool-mapping driver (analyze, explain, ...)
   stays entirely in its own worker domain: requests are the unit of
   parallelism there, and the request's Cancel token (domain-local)
   must see every tick of its own work. *)
let sequential_scope f =
  let saved = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key saved) f

let worker_loop shared () =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Sync.lock shared.mutex;
    let idle () =
      Sync.read shared.c_queue;
      Sync.read shared.c_stop;
      Queue.is_empty shared.queue && not shared.stop
    in
    while idle () do
      Sync.wait shared.work shared.mutex
    done;
    (* On shutdown the queue is drained before exiting, so no submitted
       batch is ever abandoned. *)
    if Queue.is_empty shared.queue then Sync.unlock shared.mutex
    else begin
      Sync.write shared.c_queue;
      let task = Queue.pop shared.queue in
      Sync.unlock shared.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?(clamp = true) ?jobs () =
  let requested = match jobs with None -> hw_parallelism | Some j -> j in
  let jobs =
    if clamp then effective_jobs requested else max 1 (min requested max_jobs)
  in
  if jobs <= 1 then { jobs = 1; shared = None }
  else begin
    let shared =
      {
        mutex = Sync.mutex ~name:"pool.mutex" ();
        work = Sync.condition ~name:"pool.work" ();
        queue = Queue.create ();
        c_queue = Sync.cell ~name:"pool.queue" ();
        stop = false;
        c_stop = Sync.cell ~name:"pool.stop" ();
        workers = [];
      }
    in
    shared.workers <- List.init jobs (fun _ -> Sync.spawn (worker_loop shared));
    { jobs; shared = Some shared }
  end

let jobs t = t.jobs

(* Join every worker even if some join raises (a worker domain died on
   an escaped exception): losing one worker must not orphan the rest.
   The first failure propagates unwrapped once all are joined. *)
let join_all workers =
  let first_exn = ref None in
  List.iter
    (fun d ->
      match Sync.join d with
      | () -> ()
      | exception e ->
          if !first_exn = None then
            first_exn := Some (e, Printexc.get_raw_backtrace ()))
    workers;
  match !first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let shutdown t =
  match t.shared with
  | None -> ()
  | Some s ->
      Sync.lock s.mutex;
      Sync.read s.c_stop;
      if s.stop then Sync.unlock s.mutex
      else begin
        Sync.write s.c_stop;
        s.stop <- true;
        Sync.broadcast s.work;
        let workers = s.workers in
        s.workers <- [];
        Sync.unlock s.mutex;
        join_all workers
      end

(* Test-only (see pool.mli): enqueue a raw task with none of map's
   exception capture, so the teardown path can be exercised against a
   worker that dies mid-flight. *)
let unsafe_inject_for_test t task =
  match t.shared with
  | None -> false
  | Some s ->
      Sync.lock s.mutex;
      Sync.read s.c_stop;
      let accepted = not s.stop in
      if accepted then begin
        Sync.write s.c_queue;
        Queue.add task s.queue;
        Sync.signal s.work
      end;
      Sync.unlock s.mutex;
      accepted

(* Enqueue the batch and block until every task has run.  Tasks must not
   raise (map's wrapper catches everything into its slot array). *)
let run_batch s tasks =
  let n = List.length tasks in
  let finished = ref 0 in
  let c_finished = Sync.cell ~name:"pool.batch.finished" () in
  let done_m = Sync.mutex ~name:"pool.batch.mutex" ()
  and done_c = Sync.condition ~name:"pool.batch.done" () in
  let wrap task () =
    task ();
    Sync.lock done_m;
    Sync.write c_finished;
    incr finished;
    if !finished = n then Sync.signal done_c;
    Sync.unlock done_m
  in
  Sync.lock s.mutex;
  Sync.write s.c_queue;
  List.iter (fun task -> Queue.add (wrap task) s.queue) tasks;
  Sync.broadcast s.work;
  Sync.unlock s.mutex;
  Sync.lock done_m;
  let pending () =
    Sync.read c_finished;
    !finished < n
  in
  while pending () do
    Sync.wait done_c done_m
  done;
  Sync.unlock done_m

type ('b, 'e) slot = ('b, 'e) result option

let map t f xs =
  let usable s =
    Sync.lock s.mutex;
    Sync.read s.c_stop;
    let u = not s.stop in
    Sync.unlock s.mutex;
    u
  in
  match (t.shared, xs) with
  | None, _ | _, ([] | [ _ ]) -> List.map f xs
  | Some s, _ ->
      if Domain.DLS.get in_worker_key || not (usable s) then List.map f xs
      else begin
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let slots : ('b, exn * Printexc.raw_backtrace) slot array =
          Array.make n None
        in
        (* One marker per slot: distinct indices are distinct memory. *)
        let slot_cells =
          Array.init n (fun _ -> Sync.cell ~name:"pool.map.slot" ())
        in
        let tasks =
          List.init n (fun i () ->
              Sync.write slot_cells.(i);
              slots.(i) <-
                Some
                  (match f arr.(i) with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ())))
        in
        run_batch s tasks;
        (* Re-raise the earliest failure — what sequential List.map
           would have raised first. *)
        Array.iteri
          (fun i slot ->
            Sync.read slot_cells.(i);
            match slot with
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) -> ()
            | None -> assert false (* run_batch waited for every task *))
          slots;
        List.init n (fun i ->
            match slots.(i) with Some (Ok v) -> v | _ -> assert false)
      end

(* ------------------------------------------------- shared default pool *)

let default_lock = Mutex.create ()
let default_pool : t option ref = ref None
let default_jobs_v = ref (Domain.recommended_domain_count ())
let default_jobs () = !default_jobs_v

let set_default_jobs j =
  let j = max 1 j in
  Mutex.lock default_lock;
  let old = if j <> !default_jobs_v then !default_pool else None in
  if j <> !default_jobs_v then default_pool := None;
  default_jobs_v := j;
  Mutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

let shared_pool () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create ~jobs:!default_jobs_v () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_lock;
  t

let map_ordered ?jobs f xs =
  match jobs with
  | Some j when j <= 1 -> List.map f xs
  | None -> map (shared_pool ()) f xs
  | Some j when j = default_jobs () -> map (shared_pool ()) f xs
  | Some j ->
      let t = create ~jobs:j () in
      Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
