(* A fixed-size domain pool over a mutex/condition work queue.

   No dependencies beyond the stdlib: workers are Domain.t values
   blocking on a Condition until work arrives or shutdown is requested.
   Each map call submits one closure per input element; the closures
   write into a caller-owned slot array, so the pool itself never needs
   to know the element types.  Completion is tracked per batch with a
   dedicated mutex/condition pair, which keeps unrelated concurrent
   batches (there are none today, but nothing forbids them) from waking
   each other spuriously. *)

let max_jobs = 64

(* Spawning more domains than the hardware can run in parallel is a net
   loss, not a no-op: every domain participates in stop-the-world minor
   collections, so oversubscribed workers add synchronization cost on
   top of plain time-slicing.  On a single-core host this made
   [--jobs 2] run the fig4 sweep ~2x *slower* than [--jobs 1]. *)
let hw_parallelism = Domain.recommended_domain_count ()

let effective_jobs requested = max 1 (min (min requested max_jobs) hw_parallelism)

type task = unit -> unit

type shared = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled on enqueue and on shutdown *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

type t = { jobs : int; shared : shared option }

(* Set in every worker domain: a task that itself maps must run the
   inner map sequentially — if every worker blocked waiting for nested
   sub-tasks sitting behind it in the same queue, the pool would
   deadlock. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* The compile service runs each request handler under this scope so a
   handler that calls a pool-mapping driver (analyze, explain, ...)
   stays entirely in its own worker domain: requests are the unit of
   parallelism there, and the request's Cancel token (domain-local)
   must see every tick of its own work. *)
let sequential_scope f =
  let saved = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key saved) f

let worker_loop shared () =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock shared.mutex;
    while Queue.is_empty shared.queue && not shared.stop do
      Condition.wait shared.work shared.mutex
    done;
    (* On shutdown the queue is drained before exiting, so no submitted
       batch is ever abandoned. *)
    if Queue.is_empty shared.queue then Mutex.unlock shared.mutex
    else begin
      let task = Queue.pop shared.queue in
      Mutex.unlock shared.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let requested = match jobs with None -> hw_parallelism | Some j -> j in
  let jobs = effective_jobs requested in
  if jobs <= 1 then { jobs = 1; shared = None }
  else begin
    let shared =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        queue = Queue.create ();
        stop = false;
        workers = [];
      }
    in
    shared.workers <- List.init jobs (fun _ -> Domain.spawn (worker_loop shared));
    { jobs; shared = Some shared }
  end

let jobs t = t.jobs

let shutdown t =
  match t.shared with
  | None -> ()
  | Some s ->
      Mutex.lock s.mutex;
      if s.stop then Mutex.unlock s.mutex
      else begin
        s.stop <- true;
        Condition.broadcast s.work;
        Mutex.unlock s.mutex;
        List.iter Domain.join s.workers;
        s.workers <- []
      end

(* Enqueue the batch and block until every task has run.  Tasks must not
   raise (map's wrapper catches everything into its slot array). *)
let run_batch s tasks =
  let n = List.length tasks in
  let finished = ref 0 in
  let done_m = Mutex.create () and done_c = Condition.create () in
  let wrap task () =
    task ();
    Mutex.lock done_m;
    incr finished;
    if !finished = n then Condition.signal done_c;
    Mutex.unlock done_m
  in
  Mutex.lock s.mutex;
  List.iter (fun task -> Queue.add (wrap task) s.queue) tasks;
  Condition.broadcast s.work;
  Mutex.unlock s.mutex;
  Mutex.lock done_m;
  while !finished < n do
    Condition.wait done_c done_m
  done;
  Mutex.unlock done_m

type ('b, 'e) slot = ('b, 'e) result option

let map t f xs =
  let usable s =
    Mutex.lock s.mutex;
    let u = not s.stop in
    Mutex.unlock s.mutex;
    u
  in
  match (t.shared, xs) with
  | None, _ | _, ([] | [ _ ]) -> List.map f xs
  | Some s, _ ->
      if Domain.DLS.get in_worker_key || not (usable s) then List.map f xs
      else begin
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let slots : ('b, exn * Printexc.raw_backtrace) slot array =
          Array.make n None
        in
        let tasks =
          List.init n (fun i () ->
              slots.(i) <-
                Some
                  (match f arr.(i) with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ())))
        in
        run_batch s tasks;
        (* Re-raise the earliest failure — what sequential List.map
           would have raised first. *)
        Array.iter
          (function
            | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
            | Some (Ok _) -> ()
            | None -> assert false (* run_batch waited for every task *))
          slots;
        List.init n (fun i ->
            match slots.(i) with Some (Ok v) -> v | _ -> assert false)
      end

(* ------------------------------------------------- shared default pool *)

let default_lock = Mutex.create ()
let default_pool : t option ref = ref None
let default_jobs_v = ref (Domain.recommended_domain_count ())
let default_jobs () = !default_jobs_v

let set_default_jobs j =
  let j = max 1 j in
  Mutex.lock default_lock;
  let old = if j <> !default_jobs_v then !default_pool else None in
  if j <> !default_jobs_v then default_pool := None;
  default_jobs_v := j;
  Mutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

let shared_pool () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create ~jobs:!default_jobs_v () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_lock;
  t

let map_ordered ?jobs f xs =
  match jobs with
  | Some j when j <= 1 -> List.map f xs
  | None -> map (shared_pool ()) f xs
  | Some j when j = default_jobs () -> map (shared_pool ()) f xs
  | Some j ->
      let t = create ~jobs:j () in
      Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
