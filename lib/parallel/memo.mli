(** A thread-safe, sharded, string-keyed memo table with per-key
    single-flight — the substrate under the experiment engine's compile
    and address-trace caches.

    Sharding: each shard owns its own mutex/condition, so worker
    domains asking for different keys usually proceed on independent
    locks.  Single-flight: the first caller of a key computes it
    outside the lock while latecomers block until the value lands, so
    no key is ever computed twice concurrently — even under a
    full-fan-in race.

    Capacity: an optional [cap] bounds the completed entries (FIFO
    eviction, enforced per shard) so fleet-scale sweeps cannot grow a
    memo without bound; an evicted key is simply recomputed on its next
    request, so results never depend on the cap — only speed does. *)

type 'a t

type stats = {
  size : int;  (** completed entries currently resident *)
  hits : int;  (** [get] calls answered from the table *)
  misses : int;  (** [get] calls that had to compute *)
  evictions : int;  (** completed entries dropped by the cap *)
}

val create : ?shards:int -> ?cap:int -> unit -> 'a t
(** [create ~shards ~cap ()] makes an empty memo with at least [shards]
    shards (rounded up to a power of two; default 16).  [cap] bounds
    the completed entries: it is split evenly across shards (rounded
    up, so total capacity is at least [cap]); omitted means
    unbounded. *)

val get : 'a t -> string -> (unit -> 'a) -> 'a
(** [get t key compute] returns the memoized value for [key], invoking
    [compute] (outside the shard lock) at most once per key at a time
    across all domains; callers that block on another domain's
    computation count as hits.  If [compute] raises, the claim is
    released so another caller can retry, and the exception
    propagates. *)

val find_opt : 'a t -> string -> 'a option
(** Non-blocking lookup: [Some v] only if [key] is fully computed. *)

val length : 'a t -> int
(** Number of completed entries (in-flight claims excluded). *)

val stats : 'a t -> stats
(** Aggregate hit/miss/eviction counters and resident size. *)
