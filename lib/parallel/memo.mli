(** A thread-safe, sharded, string-keyed memo table with per-key
    single-flight — the substrate under the experiment engine's compile
    and address-trace caches.

    Sharding: each shard owns its own mutex/condition, so worker
    domains asking for different keys usually proceed on independent
    locks.  Single-flight: the first caller of a key computes it
    outside the lock while latecomers block until the value lands, so
    no key is ever computed twice — even under a full-fan-in race. *)

type 'a t

val create : ?shards:int -> unit -> 'a t
(** [create ~shards ()] makes an empty memo with at least [shards]
    shards (rounded up to a power of two; default 16). *)

val get : 'a t -> string -> (unit -> 'a) -> 'a
(** [get t key compute] returns the memoized value for [key], invoking
    [compute] (outside the shard lock) exactly once per key across all
    domains.  If [compute] raises, the claim is released so another
    caller can retry, and the exception propagates. *)

val find_opt : 'a t -> string -> 'a option
(** Non-blocking lookup: [Some v] only if [key] is fully computed. *)

val length : 'a t -> int
(** Number of completed entries (in-flight claims excluded). *)
