(* Deterministic cooperative cancellation: a per-domain token charged
   in work units at fixed instrumentation points.  Wall-clock never
   enters the decision, so a request that times out does so at the same
   tick on every host and --jobs setting — the property the compile
   service's byte-identical-replay guarantee rests on. *)

exception Cancelled of { stage : string; spent : int; budget : int }

type t = { budget : int; mutable spent : int; mutable stage : string }

let create ~budget = { budget = max 0 budget; spent = 0; stage = "start" }
let budget t = t.budget
let spent t = t.spent

(* One token per domain: the service installs it in the worker domain
   that owns the request, and Pool.sequential_scope keeps every nested
   map in that same domain, so the token covers the whole handler. *)
let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_token t f =
  let saved = Domain.DLS.get key in
  Domain.DLS.set key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

let active () = Domain.DLS.get key

(* The concurrency sanitizer's virtual scheduler multiplexes many
   fibers over one domain; it snapshots/restores the domain-local token
   around every fiber switch so each fiber keeps its own token. *)
let dls_snapshot () = Domain.DLS.get key
let dls_restore saved = Domain.DLS.set key saved

let remaining () =
  match Domain.DLS.get key with
  | None -> None
  | Some t -> Some (max 0 (t.budget - t.spent))

let set_stage s =
  match Domain.DLS.get key with None -> () | Some t -> t.stage <- s

let charge n =
  match Domain.DLS.get key with
  | None -> ()
  | Some t -> t.spent <- t.spent + n

let trip t =
  Sync.note
    (Printf.sprintf "cancel: tripped at stage %s (%d/%d units)" t.stage t.spent
       t.budget);
  raise (Cancelled { stage = t.stage; spent = t.spent; budget = t.budget })

let check ?stage () =
  match Domain.DLS.get key with
  | None -> ()
  | Some t ->
      (match stage with Some s -> t.stage <- s | None -> ());
      if t.spent > t.budget then trip t

let tick ?stage n =
  match Domain.DLS.get key with
  | None -> ()
  | Some t ->
      (match stage with Some s -> t.stage <- s | None -> ());
      t.spent <- t.spent + n;
      if t.spent > t.budget then trip t

let cancel ?stage () =
  match Domain.DLS.get key with
  | None -> invalid_arg "Cancel.cancel: no token installed"
  | Some t ->
      (match stage with Some s -> t.stage <- s | None -> ());
      trip t
