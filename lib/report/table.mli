(** Plain-text tables for the benchmark harness: one per reproduced
    figure/table, with aligned columns and an optional stacked-bar
    rendering for the paper's bar charts. *)

type t

val make :
  title:string -> ?note:string -> columns:string list ->
  (string * float list) list -> t
(** Rows are (label, values); every row must have one value per column.
    @raise Invalid_argument on a ragged row. *)

val render : ?precision:int -> Format.formatter -> t -> unit

val render_csv : Format.formatter -> t -> unit

val bar : width:int -> float -> string
(** A horizontal bar for a value in [0, 1]; values outside are clamped. *)

val stacked_bar : width:int -> float list -> string
(** One character class per segment, proportional widths; segments use
    '#', '=', '+', '-', '.' in order. *)

val title : t -> string
val columns : t -> string list
val rows : t -> (string * float list) list
