type t = {
  title : string;
  note : string option;
  columns : string list;
  rows : (string * float list) list;
}

let make ~title ?note ~columns rows =
  let width = List.length columns in
  List.iter
    (fun (label, values) ->
      if List.length values <> width then
        invalid_arg
          (Printf.sprintf "Table.make: row %S has %d values, expected %d"
             label (List.length values) width))
    rows;
  { title; note; columns; rows }

let render ?(precision = 3) ppf t =
  let label_width =
    List.fold_left
      (fun acc (l, _) -> max acc (String.length l))
      (String.length "benchmark") t.rows
  in
  let col_width =
    List.fold_left (fun acc c -> max acc (String.length c)) (precision + 4)
      t.columns
  in
  Format.fprintf ppf "%s@." t.title;
  (match t.note with Some n -> Format.fprintf ppf "  (%s)@." n | None -> ());
  Format.fprintf ppf "  %-*s" label_width "";
  List.iter (fun c -> Format.fprintf ppf "  %*s" col_width c) t.columns;
  Format.fprintf ppf "@.";
  List.iter
    (fun (label, values) ->
      Format.fprintf ppf "  %-*s" label_width label;
      List.iter
        (fun v -> Format.fprintf ppf "  %*.*f" col_width precision v)
        values;
      Format.fprintf ppf "@.")
    t.rows

let render_csv ppf t =
  Format.fprintf ppf "benchmark,%s@." (String.concat "," t.columns);
  List.iter
    (fun (label, values) ->
      Format.fprintf ppf "%s,%s@." label
        (String.concat "," (List.map (Printf.sprintf "%.6f") values)))
    t.rows

let bar ~width v =
  let v = Float.max 0.0 (Float.min 1.0 v) in
  let n = int_of_float (Float.round (v *. float_of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '

let segment_chars = [| '#'; '='; '+'; '-'; '.' |]

let stacked_bar ~width segments =
  let total = List.fold_left ( +. ) 0.0 segments in
  if total <= 0.0 then String.make width ' '
  else begin
    let buf = Buffer.create width in
    let consumed = ref 0 in
    List.iteri
      (fun i v ->
        let remaining = List.length segments - 1 - i in
        let n =
          if remaining = 0 then width - !consumed
          else int_of_float (Float.round (v /. total *. float_of_int width))
        in
        let n = max 0 (min n (width - !consumed)) in
        Buffer.add_string buf
          (String.make n segment_chars.(i mod Array.length segment_chars));
        consumed := !consumed + n)
      segments;
    Buffer.contents buf
  end

let title t = t.title
let columns t = t.columns
let rows t = t.rows
