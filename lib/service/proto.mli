(** Wire protocol of the resident compile service: newline-delimited
    JSON, one request per line, one response line per request.

    The toolchain deliberately has no JSON dependency, so this module
    carries a small self-contained value type, a strict
    recursive-descent parser (depth-limited, whole-line: trailing bytes
    after the document are an error), and the string printer the
    response builders use.  The decoder half maps a parsed document onto
    the closed request vocabulary with structured errors for every way a
    line can be wrong — the service's first robustness layer: malformed
    input must yield an ["error"] response, never an exception and never
    a silent drop. *)

(** A parsed JSON document.  Numbers with a fraction or exponent parse
    as [Float]; everything else integral as [Int]. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Strict parse of one complete document.  Rejects trailing non-space
    bytes, unterminated strings, bad escapes, nesting deeper than
    {!max_depth}, and anything else off-grammar — with a
    position-carrying message. *)

val max_depth : int
(** Nesting bound of {!parse} (defense against pathological input). *)

val to_string : json -> string
(** Canonical single-line rendering (objects keep field order). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

(** One decoded service request. *)
type request =
  | Compile of { bench : string; heuristic : [ `Ibc | `Ipbc ]; chains : bool }
  | Simulate of {
      bench : string;
      arch : Vliw_sim.Machine.arch;
      heuristic : [ `Ibc | `Ipbc ];
      ab_entries : int option;
      hints : bool;
      trip_cap : int option;
    }
  | Analyze of { bench : string option }
  | Explain of { bench : string option }
  | Oracle of { bench : string option; budget : int }
  | Sweep_cell of {
      bench : string;
      buses : int option;
      ab_entries : int option;
      cache_size : int option;
      associativity : int option;
      trip_cap : int;
    }
  | Health
  | Drain

val request_kind : request -> string
(** The wire name of the request ("compile", "simulate", ...). *)

type envelope = {
  id : string option;  (** client-chosen correlation id, echoed back *)
  deadline : int option;  (** work-unit budget; [None] = effectively unbounded *)
  req : request;
}

type decode_error = {
  kind : string;
      (** one of "parse", "not_object", "unknown_request", "bad_field",
          "unknown_field", "missing_field" *)
  detail : string;
}

val decode : string -> (envelope, decode_error) result
(** Decode one request line.  Strict: the top level must be an object
    with a string ["req"] naming a known request, every other field must
    belong to that request's schema with the right type, and unknown
    fields are rejected rather than ignored (a typo'd option silently
    doing nothing is a robustness bug, not a convenience). *)

val arch_of_string : string -> Vliw_sim.Machine.arch option
(** The CLI's architecture vocabulary: "interleaved", "interleaved+ab",
    "multivliw", "unified1", "unified5". *)
