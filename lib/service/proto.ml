(* Newline-delimited JSON wire protocol: hand-rolled value type, strict
   recursive-descent parser and strict envelope decoder.  See the mli
   for the robustness contract; the short version is that every way a
   request line can be wrong maps to a structured [decode_error]. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let max_depth = 32

(* ------------------------------------------------------------ printer *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f ->
      (* %.17g round-trips every float; trim the common integral case. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.17g" f
  | String s -> "\"" ^ escape s ^ "\""
  | List xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) fields)
      ^ "}"

(* ------------------------------------------------------------- parser *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> advance (); Buffer.add_char b '"'
             | '\\' -> advance (); Buffer.add_char b '\\'
             | '/' -> advance (); Buffer.add_char b '/'
             | 'b' -> advance (); Buffer.add_char b '\b'
             | 'f' -> advance (); Buffer.add_char b '\012'
             | 'n' -> advance (); Buffer.add_char b '\n'
             | 'r' -> advance (); Buffer.add_char b '\r'
             | 't' -> advance (); Buffer.add_char b '\t'
             | 'u' -> advance (); utf8_add b (hex4 ())
             | _ -> fail "bad escape");
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control byte in string"
      | c ->
          advance ();
          Buffer.add_char b c;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "integer out of range"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected byte 0x%02x" (Char.code c))
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------ decoder *)

type request =
  | Compile of { bench : string; heuristic : [ `Ibc | `Ipbc ]; chains : bool }
  | Simulate of {
      bench : string;
      arch : Vliw_sim.Machine.arch;
      heuristic : [ `Ibc | `Ipbc ];
      ab_entries : int option;
      hints : bool;
      trip_cap : int option;
    }
  | Analyze of { bench : string option }
  | Explain of { bench : string option }
  | Oracle of { bench : string option; budget : int }
  | Sweep_cell of {
      bench : string;
      buses : int option;
      ab_entries : int option;
      cache_size : int option;
      associativity : int option;
      trip_cap : int;
    }
  | Health
  | Drain

let request_kind = function
  | Compile _ -> "compile"
  | Simulate _ -> "simulate"
  | Analyze _ -> "analyze"
  | Explain _ -> "explain"
  | Oracle _ -> "oracle"
  | Sweep_cell _ -> "sweep-cell"
  | Health -> "health"
  | Drain -> "drain"

type envelope = { id : string option; deadline : int option; req : request }
type decode_error = { kind : string; detail : string }

exception Reject of decode_error

let reject kind detail = raise (Reject { kind; detail })

let arch_of_string = function
  | "interleaved" ->
      Some (Vliw_sim.Machine.Word_interleaved { attraction_buffers = false })
  | "interleaved+ab" ->
      Some (Vliw_sim.Machine.Word_interleaved { attraction_buffers = true })
  | "multivliw" -> Some Vliw_sim.Machine.Multivliw
  | "unified1" -> Some (Vliw_sim.Machine.Unified { slow = false })
  | "unified5" -> Some (Vliw_sim.Machine.Unified { slow = true })
  | _ -> None

(* A tiny field cursor: [take] consumes fields out of the object and
   [finish] rejects anything left over, which is what makes unknown
   fields a structured error rather than a silent no-op. *)
let take fields name =
  match List.assoc_opt name !fields with
  | None -> None
  | Some v ->
      fields := List.remove_assoc name !fields;
      Some v

let finish fields =
  match !fields with
  | [] -> ()
  | (k, _) :: _ -> reject "unknown_field" (Printf.sprintf "field %S" k)

let str fields name =
  match take fields name with
  | None -> None
  | Some (String s) -> Some s
  | Some _ -> reject "bad_field" (Printf.sprintf "%S must be a string" name)

let int_field fields name =
  match take fields name with
  | None -> None
  | Some (Int i) -> Some i
  | Some _ -> reject "bad_field" (Printf.sprintf "%S must be an integer" name)

let bool_field fields name =
  match take fields name with
  | None -> None
  | Some (Bool b) -> Some b
  | Some _ -> reject "bad_field" (Printf.sprintf "%S must be a boolean" name)

let pos_int fields name =
  match int_field fields name with
  | Some i when i <= 0 ->
      reject "bad_field" (Printf.sprintf "%S must be positive" name)
  | v -> v

let required kind = function
  | Some v -> v
  | None -> reject "missing_field" (Printf.sprintf "%S is required" kind)

let heuristic_field fields =
  match str fields "heuristic" with
  | None | Some "ipbc" -> `Ipbc
  | Some "ibc" -> `Ibc
  | Some other ->
      reject "bad_field"
        (Printf.sprintf "\"heuristic\" must be \"ibc\" or \"ipbc\", not %S"
           other)

let decode line =
  match parse line with
  | Error msg -> Error { kind = "parse"; detail = msg }
  | Ok (Obj obj) -> (
      try
        let fields = ref obj in
        let id = str fields "id" in
        let deadline = pos_int fields "deadline" in
        let kind = required "req" (str fields "req") in
        let req =
          match kind with
          | "compile" ->
              let bench = required "bench" (str fields "bench") in
              let heuristic = heuristic_field fields in
              let chains = Option.value ~default:true (bool_field fields "chains") in
              Compile { bench; heuristic; chains }
          | "simulate" ->
              let bench = required "bench" (str fields "bench") in
              let arch =
                match str fields "arch" with
                | None -> Vliw_sim.Machine.Word_interleaved { attraction_buffers = true }
                | Some a -> (
                    match arch_of_string a with
                    | Some arch -> arch
                    | None ->
                        reject "bad_field"
                          (Printf.sprintf "unknown architecture %S" a))
              in
              let heuristic = heuristic_field fields in
              let ab_entries = pos_int fields "ab_entries" in
              let hints = Option.value ~default:false (bool_field fields "hints") in
              let trip_cap = pos_int fields "trip_cap" in
              Simulate { bench; arch; heuristic; ab_entries; hints; trip_cap }
          | "analyze" -> Analyze { bench = str fields "bench" }
          | "explain" -> Explain { bench = str fields "bench" }
          | "oracle" ->
              let bench = str fields "bench" in
              let budget = Option.value ~default:2000 (pos_int fields "budget") in
              Oracle { bench; budget }
          | "sweep-cell" ->
              let bench = required "bench" (str fields "bench") in
              let buses = pos_int fields "buses" in
              let ab_entries = pos_int fields "ab_entries" in
              let cache_size = pos_int fields "cache_size" in
              let associativity = pos_int fields "associativity" in
              let trip_cap = Option.value ~default:512 (pos_int fields "trip_cap") in
              Sweep_cell
                { bench; buses; ab_entries; cache_size; associativity; trip_cap }
          | "health" -> Health
          | "drain" -> Drain
          | other -> reject "unknown_request" (Printf.sprintf "%S" other)
        in
        finish fields;
        Ok { id; deadline; req }
      with Reject e -> Error e)
  | Ok _ -> Error { kind = "not_object"; detail = "request must be a JSON object" }
