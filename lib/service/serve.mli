(** The resident compile service: a long-lived loop over a
    newline-delimited JSON transport that shares one
    {!Vliw_experiments.Context} (all three sharded single-flight memos)
    across every request of a session.

    The robustness contract, in order of the failure taxonomy:
    {ul
    {- Malformed, unknown, ill-typed and oversized request lines get a
       structured ["error"] response — never a crash, never a silent
       drop.  Exactly one response line is emitted per request line,
       always.}
    {- Per-request deadlines are cooperative {!Vliw_parallel.Cancel}
       budgets counted in work units, never wall-clock, so a timed-out
       request returns the same ["timeout"] response (with stage-level
       partial attribution) on every host and every [--jobs] setting,
       and a cancelled computation releases its single-flight memo claim
       rather than poisoning it.}
    {- Any exception escaping a request handler — including
       [Out_of_memory] and injected chaos crashes — is caught at the
       worker boundary and reported as ["internal_error"] with a
       sanitized exception identity; the memos, the pool and the service
       stay live for the next request.}
    {- The [jobs > 1] dispatch queue is bounded: when it is full the
       request is shed with an ["overloaded"] response instead of
       growing memory without bound, and a high-watermark counter
       records the worst depth seen.}
    {- [drain] (request, SIGINT via [drain_flag], or EOF) finishes
       in-flight work, refuses the rest of the stream, and emits one
       final ["drained"] line carrying session counters and memo
       statistics.}}

    Responses are emitted strictly in request order (an internal
    reorder buffer holds out-of-order completions), which is what makes
    a session replay byte-identical across [--jobs] settings for
    non-shed requests.  Wall-clock timing is opt-in ([wall_times]) for
    the same reason. *)

val schema_version : int
(** Version stamp on every response line. *)

type counters = {
  accepted : int;  (** request lines read (including malformed ones) *)
  ok : int;  (** ["ok"] responses, health included *)
  errors : int;  (** decode + structured request errors *)
  timeouts : int;
  internal_errors : int;
  shed : int;  (** ["overloaded"] responses *)
  high_watermark : int;  (** worst dispatch-queue depth observed *)
}

type outcome = {
  counters : counters;
  reason : string;  (** "request", "sigint" or "eof" *)
}

(** The service's in-order response emitter, exposed so the concurrency
    sanitizer's virtual scheduler can drive the {e real} reorder-buffer
    logic in closed scenarios.  [emit] delivers completed responses in
    strict sequence order through [write] regardless of completion
    order; [wait_until t n] blocks until every sequence below [n] has
    been written (the health/drain barrier). *)
module Emitter : sig
  type t

  val create :
    ?flush:(unit -> unit) -> write:(string -> unit) -> unit -> t

  val emit : t -> int -> string -> unit
  val wait_until : t -> int -> unit
end

(** The bounded dispatch queue behind [jobs > 1], exposed for the same
    reason: the queue-full shed vs. drain-barrier scenario explores this
    exact code.  [push] returns [false] (shed) on a full or stopped
    queue; [worker] loops until [stop] and the queue has drained;
    [stop] does not join the workers — callers do. *)
module Wq : sig
  type t

  val create : int -> t
  val push : t -> (unit -> unit) -> bool
  val worker : t -> unit
  val stop : t -> unit
  val watermark : t -> int
end

val run :
  ?jobs:int ->
  ?queue_cap:int ->
  ?chaos:int ->
  ?wall_times:bool ->
  ?max_line:int ->
  ?default_deadline:int ->
  ?drain_flag:bool Atomic.t ->
  ?ctx:Vliw_experiments.Context.t ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  outcome
(** Serve one session: read request lines from [input] until a drain
    trigger, write response lines to [output], return the session's
    counters.

    [jobs] (default 1) is the number of dedicated worker domains; [1]
    handles everything inline in the reader.  Unlike the experiment
    pool this count is {e not} clamped to the hardware's parallelism —
    a worker blocked on a single-flight memo wait occupies no core, and
    tests must be able to exercise the concurrent path on a 1-core CI
    host.  [queue_cap] (default 128) bounds the dispatch queue.
    [chaos] seeds a deterministic {!Faults} plan.  [wall_times] adds a
    per-response ["ms"] field and the queue high-watermark to the
    drained line (off by default: wall-clock breaks replay
    byte-identity).  [max_line] (default 65536) bounds a request line.
    [default_deadline] is the work-unit budget for requests that carry
    no ["deadline"] field (default: effectively unbounded).
    [drain_flag] is polled between reads — the SIGINT hook.  [ctx]
    (default: fresh) is the shared compile/trace/oracle memo context. *)
